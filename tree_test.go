package dsssp

import (
	"strings"
	"testing"
	"testing/quick"

	"dsssp/internal/graph"
)

func TestSSSPTreeBasics(t *testing.T) {
	g := graph.Grid2D(5, 5, graph.UniformWeights(7, 3))
	res, err := SSSPTree(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(g, map[NodeID]int64{0: 0}); err != nil {
		t.Fatal(err)
	}
	want := graph.Dijkstra(g, 0)
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("dist[%d]=%d, want %d", v, res.Dist[v], want[v])
		}
	}
	// The path from the far corner must start there, end at the source,
	// and telescope the distance.
	p, err := res.PathTo(24)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 24 || p[len(p)-1] != 0 {
		t.Fatalf("path endpoints %v", p)
	}
	var total int64
	for i := 0; i+1 < len(p); i++ {
		found := false
		for _, h := range g.Adj(p[i]) {
			if h.To == p[i+1] {
				total += h.W
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("path hop %d-%d not an edge", p[i], p[i+1])
		}
	}
	if total != res.Dist[24] {
		t.Fatalf("path weight %d != dist %d", total, res.Dist[24])
	}
}

func TestCSSPTreeMultiSource(t *testing.T) {
	g := graph.Clusters(3, 6, 4, graph.UniformWeights(5, 5), 5)
	sources := map[NodeID]int64{0: 0, 10: 2}
	res, err := CSSPTree(g, sources, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(g, sources); err != nil {
		t.Fatal(err)
	}
}

func TestTreeUnreachable(t *testing.T) {
	g := graph.Disconnected(2, 5, 1, graph.UnitWeights, 2)
	res, err := SSSPTree(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 5; v < 10; v++ {
		if res.Dist[v] != Inf {
			t.Fatalf("unreachable node %d has finite distance %d", v, res.Dist[v])
		}
		if res.Parent[v] != -1 {
			t.Fatalf("unreachable node %d has parent %d", v, res.Parent[v])
		}
		p, err := res.PathTo(NodeID(v))
		if err == nil || p != nil {
			t.Fatalf("unreachable node %d: want a descriptive error, got path %v err %v", v, p, err)
		}
		if !strings.Contains(err.Error(), "unreachable") {
			t.Fatalf("error not descriptive: %v", err)
		}
	}
}

// TestPathToCorruptTree: a parent cycle must yield an error, not an
// unbounded loop (or a panic).
func TestPathToCorruptTree(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights)
	res, err := SSSPTree(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res.Parent[1], res.Parent[2] = 2, 1 // corrupt: 1↔2 cycle
	p, err := res.PathTo(3)
	if err == nil {
		t.Fatalf("corrupt tree walked to %v without error", p)
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("error not descriptive: %v", err)
	}
	if _, err := res.PathTo(99); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	// An out-of-range parent pointer must error too, not index-panic.
	res.Parent[1], res.Parent[2] = 0, 1 // restore the chain
	res.Parent[1] = 99
	if _, err := res.PathTo(3); err == nil || !strings.Contains(err.Error(), "out-of-range parent") {
		t.Fatalf("corrupt parent pointer: want descriptive error, got %v", err)
	}
}

func TestTreeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 3
		g := graph.RandomConnected(n, n/2, graph.UniformWeights(6, seed), seed)
		res, err := SSSPTree(g, 0, nil)
		if err != nil {
			return false
		}
		return res.Verify(g, map[NodeID]int64{0: 0}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
