package dsssp

import (
	"testing"
	"testing/quick"

	"dsssp/internal/graph"
)

func TestSSSPTreeBasics(t *testing.T) {
	g := graph.Grid2D(5, 5, graph.UniformWeights(7, 3))
	res, err := SSSPTree(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(g, map[NodeID]int64{0: 0}); err != nil {
		t.Fatal(err)
	}
	want := graph.Dijkstra(g, 0)
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("dist[%d]=%d, want %d", v, res.Dist[v], want[v])
		}
	}
	// The path from the far corner must start there, end at the source,
	// and telescope the distance.
	p := res.PathTo(24)
	if p[0] != 24 || p[len(p)-1] != 0 {
		t.Fatalf("path endpoints %v", p)
	}
	var total int64
	for i := 0; i+1 < len(p); i++ {
		found := false
		for _, h := range g.Adj(p[i]) {
			if h.To == p[i+1] {
				total += h.W
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("path hop %d-%d not an edge", p[i], p[i+1])
		}
	}
	if total != res.Dist[24] {
		t.Fatalf("path weight %d != dist %d", total, res.Dist[24])
	}
}

func TestCSSPTreeMultiSource(t *testing.T) {
	g := graph.Clusters(3, 6, 4, graph.UniformWeights(5, 5), 5)
	sources := map[NodeID]int64{0: 0, 10: 2}
	res, err := CSSPTree(g, sources, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(g, sources); err != nil {
		t.Fatal(err)
	}
}

func TestTreeUnreachable(t *testing.T) {
	g := graph.Disconnected(2, 5, 1, graph.UnitWeights, 2)
	res, err := SSSPTree(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 5; v < 10; v++ {
		if res.Parent[v] != -1 {
			t.Fatalf("unreachable node %d has parent %d", v, res.Parent[v])
		}
		if res.PathTo(NodeID(v)) != nil {
			t.Fatalf("unreachable node %d has a path", v)
		}
	}
}

func TestTreeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 3
		g := graph.RandomConnected(n, n/2, graph.UniformWeights(6, seed), seed)
		res, err := SSSPTree(g, 0, nil)
		if err != nil {
			return false
		}
		return res.Verify(g, map[NodeID]int64{0: 0}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
