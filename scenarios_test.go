package dsssp

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestInvalidModelErrorConsistent: SSSP, CSSP, and BFS must reject an
// invalid Options.Model with the same descriptive error (the zero value
// still defaults to ModelCongest).
func TestInvalidModelErrorConsistent(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.SortAdj()
	bad := &Options{Model: Model(99)}
	_, errS := SSSP(g, 0, bad)
	_, errC := CSSP(g, map[NodeID]int64{0: 0}, bad)
	_, errB := BFS(g, map[NodeID]bool{0: true}, 2, bad)
	_, errA := APSP(g, bad, 1)
	for name, err := range map[string]error{"SSSP": errS, "CSSP": errC, "BFS": errB, "APSP": errA} {
		if err == nil {
			t.Fatalf("%s accepted Model(99)", name)
		}
		if !strings.Contains(err.Error(), "invalid Options.Model 99") {
			t.Errorf("%s error not descriptive: %v", name, err)
		}
	}
	if errS.Error() != errC.Error() || errC.Error() != errB.Error() || errB.Error() != errA.Error() {
		t.Errorf("errors differ:\n%v\n%v\n%v\n%v", errS, errC, errB, errA)
	}
	// The zero value still means CONGEST.
	if _, err := SSSP(g, 0, &Options{}); err != nil {
		t.Fatalf("zero-value Options rejected: %v", err)
	}
	if _, err := SSSP(g, 0, nil); err != nil {
		t.Fatalf("nil Options rejected: %v", err)
	}
}

// TestAPSPParallelDeterministic: APSP fans its per-source instances over a
// worker pool; the result must be identical to a sequential run.
func TestAPSPParallelDeterministic(t *testing.T) {
	g := NewGraph(12)
	for i := 0; i < 11; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), int64(i%3+1))
	}
	g.AddEdge(0, 6, 2)
	g.AddEdge(3, 11, 5)
	g.SortAdj()
	seq, err := APSP(g, &Options{Workers: 1}, 42)
	if err != nil {
		t.Fatal(err)
	}
	par, err := APSP(g, &Options{Workers: 8}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel APSP differs:\nseq %+v\npar %+v", seq, par)
	}
}

// TestRunScenariosLibraryEntry: the library entry point drives the harness
// end to end and verifies every scenario.
func TestRunScenariosLibraryEntry(t *testing.T) {
	rep, err := RunScenarios(context.Background(), []string{"congest-bellman-ford/*"}, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenarios == 0 || rep.Failures != 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if names := ScenarioNames(true); len(names) == 0 {
		t.Fatal("no scenario names")
	}
	if _, err := RunScenarios(context.Background(), []string{"typo*pattern"}, true, 1); err == nil {
		t.Fatal("bogus pattern accepted")
	}
}

// TestRunScenariosEmptyFilter: a blank filter must be a descriptive error,
// never an empty report with zero failures that masquerades as a passing
// sweep (the classic mistyped-shell-variable CI hole). nil and "all" still
// mean "everything".
func TestRunScenariosEmptyFilter(t *testing.T) {
	for _, patterns := range [][]string{{}, {""}, {"  "}, {"", " "}} {
		rep, err := RunScenarios(context.Background(), patterns, true, 1)
		if err == nil {
			t.Fatalf("patterns %q: want a descriptive error, got a report with %d scenarios", patterns, rep.Scenarios)
		}
		if !strings.Contains(err.Error(), "empty scenario filter") {
			t.Errorf("patterns %q: error not descriptive: %v", patterns, err)
		}
	}
	// nil still sweeps everything (only check selection, not a full run).
	names := ScenarioNames(true)
	if len(names) == 0 {
		t.Fatal("no scenarios")
	}
	rep, err := RunScenarios(context.Background(), []string{names[0]}, true, 1)
	if err != nil || rep.Scenarios != 1 {
		t.Fatalf("single-name filter failed: %+v, %v", rep, err)
	}
}
