// Benchmarks covering the paper's quantitative claims, one per experiment
// E1–E9. The scenario harness (internal/harness, driven by cmd/dsssp-bench)
// sweeps the same quantities across the full workload registry and records
// them in EXPERIMENTS.md; these testing.B targets give repeatable single
// numbers per claim for quick comparisons.
package dsssp

import (
	"fmt"
	"testing"

	"dsssp/internal/baseline"
	"dsssp/internal/bfs"
	"dsssp/internal/core"
	"dsssp/internal/decomp"
	"dsssp/internal/energybfs"
	"dsssp/internal/forest"
	"dsssp/internal/graph"
	"dsssp/internal/proto"
	"dsssp/internal/simnet"
)

// BenchmarkE1CongestCSSP — Theorem 2.6: Õ(n) time, polylog congestion.
func BenchmarkE1CongestCSSP(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		g := graph.RandomConnected(n, 2*n, graph.UniformWeights(int64(n), 7), 7)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var met simnet.Metrics
			for i := 0; i < b.N; i++ {
				var err error
				_, _, met, err = core.RunSSSP(g, 0, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(met.Rounds)/float64(n), "rounds/n")
			b.ReportMetric(float64(met.MaxEdgeMessages), "maxEdgeMsgs")
		})
	}
}

// BenchmarkE1CongestCSSPIntra — the same E1 run under intra-round
// parallelism (simnet worker pool). Results are byte-identical at every
// worker count (see internal/simnet parallel differential tests); this
// benchmark measures only the wall-time effect, and feeds the speedup
// table in EXPERIMENTS.md ("Intra-round parallel speedup").
func BenchmarkE1CongestCSSPIntra(b *testing.B) {
	for _, n := range []int{64, 256} {
		g := graph.RandomConnected(n, 2*n, graph.UniformWeights(int64(n), 7), 7)
		for _, w := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, _, err := core.RunSSSP(g, 0, core.Options{Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE1Baselines — the comparison points of Section 1.1.
func BenchmarkE1Baselines(b *testing.B) {
	g := graph.RandomConnected(128, 256, graph.UniformWeights(128, 7), 7)
	b.Run("bellman-ford", func(b *testing.B) {
		b.ReportAllocs()
		var met simnet.Metrics
		for i := 0; i < b.N; i++ {
			var err error
			_, met, err = baseline.BellmanFord(g, 0)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(met.MaxEdgeMessages), "maxEdgeMsgs")
	})
	b.Run("dijkstra", func(b *testing.B) {
		b.ReportAllocs()
		var met simnet.Metrics
		for i := 0; i < b.N; i++ {
			var err error
			_, met, err = baseline.Dijkstra(g, 0)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(met.Rounds), "rounds")
	})
}

// BenchmarkE2Cutter — Lemma 2.1: O(n/ε) rounds, O(1) congestion.
func BenchmarkE2Cutter(b *testing.B) {
	g := graph.RandomConnected(256, 512, graph.UniformWeights(256, 5), 5)
	w := graph.WeightedDiameterUpper(g) / 4
	for _, eps := range [][2]int64{{1, 2}, {1, 8}} {
		b.Run(fmt.Sprintf("eps=%d/%d", eps[0], eps[1]), func(b *testing.B) {
			b.ReportAllocs()
			var met simnet.Metrics
			for i := 0; i < b.N; i++ {
				var err error
				_, met, err = bfs.RunCutter(g, map[graph.NodeID]int64{0: 0}, w, eps[0], eps[1])
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(met.Rounds), "rounds")
			b.ReportMetric(float64(met.MaxEdgeMessages), "maxEdgeMsgs")
		})
	}
}

// BenchmarkE3Forest — Theorem 2.2: O(n log n) time, polylog congestion.
func BenchmarkE3Forest(b *testing.B) {
	for _, n := range []int{128, 512} {
		g := graph.RandomConnected(n, n, graph.UnitWeights, 3)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var met simnet.Metrics
			for i := 0; i < b.N; i++ {
				eng := simnet.New(g, simnet.Config{Model: simnet.Congest})
				res, err := eng.Run(func(c *simnet.Ctx) {
					mb := proto.NewMailbox(c)
					forest.Build(mb, forest.Params{Tag: 1, StartRound: 0, SizeBound: int64(c.N())})
				})
				if err != nil {
					b.Fatal(err)
				}
				met = res.Metrics
			}
			b.ReportMetric(float64(met.Rounds), "rounds")
			b.ReportMetric(float64(met.MaxEdgeMessages), "maxEdgeMsgs")
		})
	}
}

// BenchmarkE4Covers — Theorems 3.10/3.11 interface: cover construction.
func BenchmarkE4Covers(b *testing.B) {
	g := graph.RandomConnected(256, 512, graph.UnitWeights, 3)
	b.Run("n=256", func(b *testing.B) {
		b.ReportAllocs()
		var cv *decomp.Cover
		for i := 0; i < b.N; i++ {
			var err error
			cv, err = decomp.Build(g, nil, nil, 128)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(cv.MaxOverlap()), "maxOverlap")
		b.ReportMetric(float64(len(cv.Layers)), "layers")
	})
}

// BenchmarkE5EnergyBFS — Theorems 3.8/3.13: Õ(D) time, low energy.
func BenchmarkE5EnergyBFS(b *testing.B) {
	for _, n := range []int{128, 256} {
		g := graph.Path(n, graph.UnitWeights)
		b.Run(fmt.Sprintf("path/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var met simnet.Metrics
			for i := 0; i < b.N; i++ {
				var err error
				_, met, err = energybfs.RunBFS(g, map[graph.NodeID]int64{0: 0}, int64(n-1))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(met.MaxAwake), "maxAwake")
			b.ReportMetric(float64(met.Rounds), "rounds")
		})
	}
}

// BenchmarkE6EnergyForest — Theorem 3.1: low-energy forest.
func BenchmarkE6EnergyForest(b *testing.B) {
	g := graph.RandomConnected(256, 256, graph.UnitWeights, 3)
	b.Run("n=256", func(b *testing.B) {
		b.ReportAllocs()
		var met simnet.Metrics
		for i := 0; i < b.N; i++ {
			eng := simnet.New(g, simnet.Config{Model: simnet.Sleeping})
			res, err := eng.Run(func(c *simnet.Ctx) {
				mb := proto.NewMailbox(c)
				forest.Build(mb, forest.Params{Tag: 1, StartRound: 0, SizeBound: int64(c.N())})
			})
			if err != nil {
				b.Fatal(err)
			}
			met = res.Metrics
		}
		b.ReportMetric(float64(met.MaxAwake), "maxAwake")
	})
}

// BenchmarkE7EnergySSSP — Theorem 3.15 / Theorem 1.1.
func BenchmarkE7EnergySSSP(b *testing.B) {
	g := graph.RandomConnected(20, 10, graph.UniformWeights(4, 7), 7)
	b.Run("n=20", func(b *testing.B) {
		b.ReportAllocs()
		var met simnet.Metrics
		for i := 0; i < b.N; i++ {
			var err error
			_, _, met, err = core.RunEnergySSSP(g, 0, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(met.MaxAwake), "maxAwake")
		b.ReportMetric(float64(met.Rounds), "rounds")
	})
}

// BenchmarkE8APSP — Section 1.1: APSP composition.
func BenchmarkE8APSP(b *testing.B) {
	g := graph.RandomConnected(32, 64, graph.UniformWeights(32, 11), 11)
	b.Run("n=32", func(b *testing.B) {
		b.ReportAllocs()
		var res *APSPResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = APSP(g, nil, 42)
			if err != nil {
				b.Fatal(err)
			}
		}
		c := res.Composition
		b.ReportMetric(float64(c.MakespanRandom), "makespanRandom")
		b.ReportMetric(float64(c.MakespanSequential), "makespanSeq")
	})
}

// BenchmarkE9Ablations — ε sweep of the cutter inside the full recursion.
func BenchmarkE9Ablations(b *testing.B) {
	g := graph.RandomConnected(64, 64, graph.UniformWeights(64, 13), 13)
	for _, eps := range [][2]int64{{1, 4}, {1, 2}, {3, 4}} {
		b.Run(fmt.Sprintf("eps=%d/%d", eps[0], eps[1]), func(b *testing.B) {
			b.ReportAllocs()
			var met simnet.Metrics
			for i := 0; i < b.N; i++ {
				var err error
				_, _, met, err = core.RunSSSP(g, 0, core.Options{EpsNum: eps[0], EpsDen: eps[1]})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(met.Rounds), "rounds")
			b.ReportMetric(float64(met.MaxEdgeMessages), "maxEdgeMsgs")
		})
	}
}
