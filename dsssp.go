// Package dsssp is a reproduction of "A Near-Optimal Low-Energy
// Deterministic Distributed SSSP with Ramifications on Congestion and APSP"
// (Ghaffari & Trygub, PODC 2024): deterministic distributed shortest-path
// algorithms on a simulated synchronous message-passing network, in two
// models:
//
//   - ModelCongest — the classic CONGEST model; the CSSP/SSSP algorithms
//     run in Õ(n) rounds with poly(log n) messages per edge
//     (Theorems 2.6/2.7), which lets n instances be scheduled concurrently
//     for APSP in Õ(n) rounds (Section 1.1).
//   - ModelSleeping — the sleeping (energy) model; nodes sleep almost
//     always and each spends only polylogarithmically many awake rounds
//     (Theorems 1.1/3.8/3.15).
//
// Quick start:
//
//	g := dsssp.NewGraph(4)
//	g.AddEdge(0, 1, 2)
//	g.AddEdge(1, 2, 1)
//	g.AddEdge(2, 3, 5)
//	res, err := dsssp.SSSP(g, 0, nil)
//	// res.Dist == [0 2 3 8], res.Metrics.MaxEdgeMessages is polylog.
//
// The packages under internal/ hold the building blocks: the round/energy
// simulator (simnet), graph substrate (graph), tree coordination (proto),
// Boruvka spanning forests (forest), the approximate cutter (bfs), sparse
// covers (decomp), the sleeping-model BFS (energybfs), the core recursion
// (core), classic baselines (baseline), and the APSP scheduling composition
// (sched).
package dsssp

import (
	"fmt"
	"runtime"

	"dsssp/internal/baseline"
	"dsssp/internal/core"
	"dsssp/internal/energybfs"
	"dsssp/internal/graph"
	"dsssp/internal/sched"
	"dsssp/internal/simnet"
)

// Model selects the execution model.
type Model int

// Available models.
const (
	// ModelCongest is the synchronous CONGEST model (Section 2).
	ModelCongest Model = iota + 1
	// ModelSleeping is the sleeping/energy model (Section 3).
	ModelSleeping
)

func (m Model) String() string {
	switch m {
	case ModelCongest:
		return "congest"
	case ModelSleeping:
		return "sleeping"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Inf marks an unreachable node (or one beyond a threshold).
const Inf = graph.Inf

// NodeID identifies a node (0..n-1).
type NodeID = graph.NodeID

// Graph re-exports the weighted undirected graph type.
type Graph = graph.Graph

// NewGraph returns an empty graph with n nodes. Graphs are simple:
// re-adding an existing edge {u,v} keeps the minimum of the weights and
// returns the existing edge ID instead of growing the graph (see
// Graph.AddEdge), so a graph is a pure function of its edge set — the
// property the serving layer's content-addressed result cache keys on.
func NewGraph(n int) *Graph { return graph.New(n) }

// EdgeDelta is one edge mutation (insert / delete / reweight) in a batched
// graph update; see ApplyDeltas.
type EdgeDelta = graph.EdgeDelta

// Edge-delta operations, re-exported for ApplyDeltas batches.
const (
	DeltaInsert   = graph.DeltaInsert
	DeltaDelete   = graph.DeltaDelete
	DeltaReweight = graph.DeltaReweight
)

// ApplyDeltas returns a new graph equal to g with the edge deltas applied
// in order, leaving g untouched. Inserting an existing pair merges under
// the same keep-min policy as AddEdge and the result is rebuilt in
// canonical edge order, so a patched graph remains a pure function of its
// edge set — the invariant the serving layer's dynamic-graph revisions and
// content-addressed cache rely on.
func ApplyDeltas(g *Graph, deltas []EdgeDelta) (*Graph, error) {
	return graph.ApplyDeltas(g, deltas)
}

// WitnessParents extracts the canonical min-ID shortest-path tree implied
// by an exact distance vector: parent[v] is the lowest-numbered neighbor u
// with dist[u] + w(u,v) == dist[v] (-1 at the source and at unreachable
// nodes). It is a pure function of (g, dist) and matches SSSPTree's Parent
// byte-for-byte, which is what lets the serving layer rebuild a remembered
// tree after a patch (affected-region repair) without re-running the
// engine. dist must be exact for source; inexact vectors panic.
func WitnessParents(g *Graph, source NodeID, dist []int64) []NodeID {
	return graph.WitnessParents(g, source, dist)
}

// Metrics re-exports the simulator's complexity measures: Rounds (time),
// MaxEdgeMessages (congestion), MaxAwake (energy), Messages, and more.
type Metrics = simnet.Metrics

// Options tunes a run.
type Options struct {
	// Model selects CONGEST (default) or the sleeping model.
	Model Model
	// EpsNum/EpsDen is the cutter ε in (0,1); defaults to 1/2.
	EpsNum, EpsDen int64
	// MaxRounds caps the simulation (0 = a generous default).
	MaxRounds int64
	// StrictCongest enforces the strict CONGEST bandwidth model on
	// SSSP/CSSP/APSP runs (ModelCongest only): every message is sized and
	// the run fails loudly if any exceeds the O(log n)-bit budget.
	// Result.Metrics.MaxMessageBits then reports the largest message seen.
	StrictCongest bool
	// Workers bounds the worker pool used by APSP's per-source instances
	// (0 = runtime.NumCPU(); 1 = sequential). SSSP/CSSP/BFS ignore it; use
	// IntraWorkers to parallelize a single simulation.
	Workers int
	// IntraWorkers parallelizes a single simulation across cores: each
	// round's node resumes fan out over this many goroutines and re-merge
	// at a deterministic barrier, so results — Metrics, span ledger, error
	// text — are byte-identical to a sequential run for every value. 0 or
	// 1 means sequential. Applies to SSSP/CSSP (and each APSP instance;
	// compose with Workers carefully — the two pools multiply). The BFS
	// baselines stay sequential.
	IntraWorkers int
	// RecordPhases attaches the per-phase span ledger: on SSSP/CSSP runs
	// Result.Metrics.Spans breaks the run's rounds/messages/awake rounds
	// down by pipeline phase and recursion depth (an exact partition of
	// the totals), and on APSP runs APSPResult.Composition.Spans carries
	// the ledger merged over all composed instances. Opt-in: the ledger
	// adds a little engine bookkeeping per message and wake.
	RecordPhases bool
}

// resolved validates the options once and normalizes the zero value: a nil
// Options or a zero Model means ModelCongest; any other unknown Model is
// rejected here with a descriptive error, so SSSP/CSSP/BFS all fail
// consistently instead of each reporting its own opaque variant.
func (o *Options) resolved() (Model, core.Options, error) {
	m := ModelCongest
	copt := core.Options{}
	if o != nil {
		if o.Model != 0 {
			m = o.Model
		}
		copt = core.Options{EpsNum: o.EpsNum, EpsDen: o.EpsDen, MaxRounds: o.MaxRounds, StrictCongest: o.StrictCongest, RecordPhases: o.RecordPhases, Workers: o.IntraWorkers}
	}
	switch m {
	case ModelCongest, ModelSleeping:
		if copt.StrictCongest && m != ModelCongest {
			return 0, core.Options{}, fmt.Errorf(
				"dsssp: Options.StrictCongest applies to ModelCongest only (got %s)", m)
		}
		return m, copt, nil
	default:
		return 0, core.Options{}, fmt.Errorf(
			"dsssp: invalid Options.Model %d: use ModelCongest (%d), ModelSleeping (%d), or leave it zero for the CONGEST default",
			int(m), int(ModelCongest), int(ModelSleeping))
	}
}

func (o *Options) workers() int {
	if o == nil || o.Workers == 0 {
		return runtime.NumCPU()
	}
	return o.Workers
}

// Result is the outcome of a distance computation.
type Result struct {
	// Dist[v] is the exact distance (Inf if unreachable).
	Dist []int64
	// Metrics holds time/congestion/energy measurements.
	Metrics Metrics
	// SubproblemsMax is the maximum number of recursion subproblems any
	// node participated in (Lemma 2.4 bounds it by O(log D)).
	SubproblemsMax int
}

// SSSP computes exact single-source shortest paths from source with the
// paper's algorithm in the selected model.
func SSSP(g *Graph, source NodeID, opts *Options) (*Result, error) {
	return CSSP(g, map[NodeID]int64{source: 0}, opts)
}

// CSSP computes exact closest-source distances dist(S,v) = min over sources
// s of offset(s)+dist(s,v) (Definition 2.3 with offsets).
func CSSP(g *Graph, sources map[NodeID]int64, opts *Options) (*Result, error) {
	m, copt, err := opts.resolved()
	if err != nil {
		return nil, err
	}
	var (
		d   []int64
		st  core.Stats
		met simnet.Metrics
	)
	if m == ModelCongest {
		d, st, met, err = core.RunCSSP(g, sources, copt)
	} else {
		d, st, met, err = core.RunEnergyCSSP(g, sources, copt)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{Dist: d, Metrics: met}
	for _, k := range st.Subproblems {
		if k > res.SubproblemsMax {
			res.SubproblemsMax = k
		}
	}
	return res, nil
}

// BFS computes hop distances from the sources up to the threshold. In
// ModelSleeping it uses the cover-driven low-energy BFS (Theorem 3.13/3.14);
// in ModelCongest the plain distributed BFS.
func BFS(g *Graph, sources map[NodeID]bool, threshold int64, opts *Options) (*Result, error) {
	m, copt, err := opts.resolved()
	if err != nil {
		return nil, err
	}
	if copt.StrictCongest {
		// The CONGEST-side BFS baseline simulates in the sleeping engine
		// (always awake) for the energy contrast, so the strict bandwidth
		// budget does not attach to it.
		return nil, fmt.Errorf("dsssp: Options.StrictCongest is supported for SSSP/CSSP/APSP, not BFS")
	}
	if m == ModelSleeping {
		src := make(map[NodeID]int64, len(sources))
		for s := range sources {
			src[s] = 0
		}
		d, met, err := energybfs.RunBFS(g, src, threshold)
		if err != nil {
			return nil, err
		}
		return &Result{Dist: d, Metrics: met}, nil
	}
	src := make(map[NodeID]bool, len(sources))
	for s := range sources {
		src[s] = true
	}
	d, met, err := baseline.AlwaysAwakeBFS(g, src, threshold)
	if err != nil {
		return nil, err
	}
	return &Result{Dist: d, Metrics: met}, nil
}

// APSPResult reports the scheduling composition of n SSSP instances
// (Section 1.1's APSP implication).
type APSPResult struct {
	// Dist[s][v] is the exact distance from s to v.
	Dist [][]int64
	// Composition holds dilation, congestion, and makespans (aligned,
	// random-delay, sequential).
	Composition sched.Composition
}

// APSP computes all-pairs shortest paths by running one CSSP instance per
// source, recording each instance's edge usage, and composing the traces
// under random-delay scheduling (seeded). The per-instance polylog
// congestion is what makes the random-delay makespan Õ(n).
//
// The per-source instances are independent simulations and are fanned out
// over Options.Workers goroutines (default runtime.NumCPU()); traces are
// composed in source order, so the result is identical to a sequential run.
func APSP(g *Graph, opts *Options, seed int64) (*APSPResult, error) {
	return APSPFrom(g, nil, opts, seed)
}

// APSPFrom is APSP restricted to the given sources (nil means all n). The
// per-source instances run and compose exactly as in APSP, so for the same
// seed a source's distance row is identical whether it was computed in a
// full or a partial fan-out — which is what lets the serving layer's
// incremental path recompute only the sources an edge delta dirtied and
// reuse every other cached row verbatim. Dist rows for sources outside the
// set stay nil, and Composition covers only the instances actually run.
func APSPFrom(g *Graph, sources []NodeID, opts *Options, seed int64) (*APSPResult, error) {
	_, copt, err := opts.resolved()
	if err != nil {
		return nil, err
	}
	out := &APSPResult{Dist: make([][]int64, g.N())}
	runner := func(g *Graph, s NodeID) (sched.Trace, error) {
		d, _, met, tr, err := core.RunCSSPTraced(g, map[NodeID]int64{s: 0}, copt)
		if err != nil {
			return sched.Trace{}, err
		}
		out.Dist[s] = d
		return sched.Trace{Entries: tr, Rounds: met.Rounds, MaxMessageBits: met.MaxMessageBits, Spans: met.Spans}, nil
	}
	comp, err := sched.APSPParallel(g, sources, runner, seed, opts.workers())
	if err != nil {
		return nil, err
	}
	out.Composition = comp
	return out, nil
}
