module dsssp

go 1.24
