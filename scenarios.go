package dsssp

import (
	"context"
	"fmt"
	"strings"

	"dsssp/internal/harness"
)

// ScenarioResult is one scenario's machine-readable outcome; ScenarioReport
// is a whole sweep. They alias the internal harness types so tests, the
// dsssp-bench CLI, and the serving layer all consume the same schema.
type (
	ScenarioResult = harness.Result
	ScenarioReport = harness.Report
)

// SweepCancelError is the descriptive error a cancelled sweep returns
// alongside its partial report: Completed/Skipped/Total count the scenarios
// that ran versus those abandoned, and it unwraps to the context's error.
type SweepCancelError = harness.CancelError

// SweepOptions tunes RunScenariosWith.
type SweepOptions struct {
	// Quick shrinks scenario sizes to smoke-test scale.
	Quick bool
	// Parallel bounds the worker pool (0 = runtime.NumCPU()).
	Parallel int
	// Perf attaches the machine-dependent wall-time sidecar to every
	// result (see harness.RunOptions.Perf).
	Perf bool
	// Progress, if non-nil, is called after each scenario completes with
	// (completed count, total, that scenario's result). Calls are
	// serialized but arrive in completion order — the hook long-running
	// services use to surface live sweep progress.
	Progress func(done, total int, r ScenarioResult)
}

// ScenarioNames lists the default suite's scenario names (the values
// accepted by RunScenarios patterns and dsssp-bench -scenarios).
func ScenarioNames(quick bool) []string {
	return harness.Default(quick).Names()
}

// RunScenarios sweeps the default scenario suite: patterns select scenarios
// by exact name or glob, where '*' matches any run of characters including
// '/' and '?' exactly one — "congest-sssp/*" selects every CONGEST SSSP
// scenario, and nil or "all" selects everything. A non-nil filter that
// contains only empty/blank patterns is a descriptive error, not an empty
// sweep: an empty report with zero failures is indistinguishable from
// success, which is exactly how a mistyped shell variable would silently
// disable a CI gate. quick shrinks sizes to smoke-test scale, and parallel
// bounds the worker pool (0 = runtime.NumCPU()). Results are deterministic
// — the same arguments yield a byte-identical report at any parallelism —
// and each scenario is verified against its sequential reference, so a
// report with Failures == 0 (and Scenarios > 0) is both a benchmark and a
// correctness check.
func RunScenarios(ctx context.Context, patterns []string, quick bool, parallel int) (ScenarioReport, error) {
	return RunScenariosWith(ctx, patterns, SweepOptions{Quick: quick, Parallel: parallel})
}

// RunScenariosWith is RunScenarios with the full option set: per-scenario
// progress callbacks and the perf sidecar, on top of the quick/parallel
// knobs. Cancelling the context stops the sweep at scenario granularity:
// the partial report is still returned (undispatched scenarios appear as
// explicitly skipped failures) together with a *SweepCancelError naming
// how many scenarios completed, so a cancelled sweep never reads as an
// ordinary short one.
func RunScenariosWith(ctx context.Context, patterns []string, opt SweepOptions) (ScenarioReport, error) {
	if patterns != nil {
		cleaned := patterns[:0:0]
		for _, p := range patterns {
			if p = strings.TrimSpace(p); p != "" {
				cleaned = append(cleaned, p)
			}
		}
		if len(cleaned) == 0 {
			return ScenarioReport{}, fmt.Errorf(
				"dsssp: empty scenario filter: pass nil or \"all\" to sweep everything, or name scenarios/globs (see ScenarioNames)")
		}
		patterns = cleaned
	}
	reg := harness.Default(opt.Quick)
	scns, err := reg.Select(patterns)
	if err != nil {
		return ScenarioReport{}, err
	}
	if len(scns) == 0 {
		return ScenarioReport{}, fmt.Errorf("dsssp: scenario filter %v selected nothing — an empty report would masquerade as success", patterns)
	}
	results, err := harness.Run(ctx, scns, harness.RunOptions{Parallel: opt.Parallel, Perf: opt.Perf, Progress: opt.Progress})
	return harness.BuildReport("default", opt.Quick, results), err
}
