package dsssp

import (
	"context"
	"fmt"
	"strings"

	"dsssp/internal/harness"
)

// ScenarioResult is one scenario's machine-readable outcome; ScenarioReport
// is a whole sweep. They alias the internal harness types so tests, the
// dsssp-bench CLI, and future services all consume the same schema.
type (
	ScenarioResult = harness.Result
	ScenarioReport = harness.Report
)

// ScenarioNames lists the default suite's scenario names (the values
// accepted by RunScenarios patterns and dsssp-bench -scenarios).
func ScenarioNames(quick bool) []string {
	return harness.Default(quick).Names()
}

// RunScenarios sweeps the default scenario suite: patterns select scenarios
// by exact name or glob, where '*' matches any run of characters including
// '/' and '?' exactly one — "congest-sssp/*" selects every CONGEST SSSP
// scenario, and nil or "all" selects everything. A non-nil filter that
// contains only empty/blank patterns is a descriptive error, not an empty
// sweep: an empty report with zero failures is indistinguishable from
// success, which is exactly how a mistyped shell variable would silently
// disable a CI gate. quick shrinks sizes to smoke-test scale, and parallel
// bounds the worker pool (0 = runtime.NumCPU()). Results are deterministic
// — the same arguments yield a byte-identical report at any parallelism —
// and each scenario is verified against its sequential reference, so a
// report with Failures == 0 (and Scenarios > 0) is both a benchmark and a
// correctness check.
func RunScenarios(ctx context.Context, patterns []string, quick bool, parallel int) (ScenarioReport, error) {
	if patterns != nil {
		cleaned := patterns[:0:0]
		for _, p := range patterns {
			if p = strings.TrimSpace(p); p != "" {
				cleaned = append(cleaned, p)
			}
		}
		if len(cleaned) == 0 {
			return ScenarioReport{}, fmt.Errorf(
				"dsssp: empty scenario filter: pass nil or \"all\" to sweep everything, or name scenarios/globs (see ScenarioNames)")
		}
		patterns = cleaned
	}
	reg := harness.Default(quick)
	scns, err := reg.Select(patterns)
	if err != nil {
		return ScenarioReport{}, err
	}
	if len(scns) == 0 {
		return ScenarioReport{}, fmt.Errorf("dsssp: scenario filter %v selected nothing — an empty report would masquerade as success", patterns)
	}
	results, err := harness.Run(ctx, scns, harness.RunOptions{Parallel: parallel})
	return harness.BuildReport("default", quick, results), err
}
