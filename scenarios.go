package dsssp

import (
	"context"

	"dsssp/internal/harness"
)

// ScenarioResult is one scenario's machine-readable outcome; ScenarioReport
// is a whole sweep. They alias the internal harness types so tests, the
// dsssp-bench CLI, and future services all consume the same schema.
type (
	ScenarioResult = harness.Result
	ScenarioReport = harness.Report
)

// ScenarioNames lists the default suite's scenario names (the values
// accepted by RunScenarios patterns and dsssp-bench -scenarios).
func ScenarioNames(quick bool) []string {
	return harness.Default(quick).Names()
}

// RunScenarios sweeps the default scenario suite: patterns select scenarios
// by exact name or glob, where '*' matches any run of characters including
// '/' and '?' exactly one — "congest-sssp/*" selects every CONGEST SSSP
// scenario (nil, empty, or "all" selects everything); quick shrinks sizes
// to smoke-test scale, and parallel bounds
// the worker pool (0 = runtime.NumCPU()). Results are deterministic — the
// same arguments yield a byte-identical report at any parallelism — and
// each scenario is verified against its sequential reference, so a report
// with Failures == 0 is both a benchmark and a correctness check.
func RunScenarios(ctx context.Context, patterns []string, quick bool, parallel int) (ScenarioReport, error) {
	reg := harness.Default(quick)
	scns, err := reg.Select(patterns)
	if err != nil {
		return ScenarioReport{}, err
	}
	results, err := harness.Run(ctx, scns, harness.RunOptions{Parallel: parallel})
	return harness.BuildReport("default", quick, results), err
}
