// Routing: builds all-pairs routing tables for a small ISP-like topology by
// running one low-congestion SSSP per router and scheduling all instances
// concurrently with random delays (the paper's APSP implication,
// Section 1.1). Prints the routing table of one router and the scheduling
// numbers showing why polylog congestion matters.
package main

import (
	"fmt"
	"log"

	"dsssp"
	"dsssp/internal/graph"
)

func main() {
	// Clustered topology: 6 PoPs of 8 routers each, ring-connected.
	g := graph.Clusters(6, 8, 6, graph.UniformWeights(10, 4), 4)
	res, err := dsssp.APSP(g, nil, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Next-hop table for router 0 toward every destination: the neighbor w
	// minimizing dist(w, dst) + weight(0, w).
	fmt.Println("router 0 routing table (dst -> next hop, distance):")
	for dst := 1; dst < 12; dst++ {
		best, bestVia := dsssp.Inf+1, dsssp.NodeID(0)
		for _, h := range g.Adj(0) {
			if d := res.Dist[dst][h.To] + h.W; d < best {
				best, bestVia = d, h.To
			}
		}
		fmt.Printf("  %2d -> via %2d (dist %d)\n", dst, bestVia, res.Dist[0][dst])
	}

	c := res.Composition
	fmt.Printf("\nscheduling %d concurrent SSSP instances:\n", g.N())
	fmt.Printf("  per-instance dilation T = %d rounds\n", c.Dilation)
	fmt.Printf("  worst edge congestion C = %d messages\n", c.Congestion)
	fmt.Printf("  makespan aligned      = %d\n", c.MakespanAligned)
	fmt.Printf("  makespan random-delay = %d   (theory: Õ(C+T) = Õ(%d))\n",
		c.MakespanRandom, c.Congestion+c.Dilation)
	fmt.Printf("  makespan sequential   = %d\n", c.MakespanSequential)
}
