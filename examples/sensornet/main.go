// Sensornet: the paper's motivating scenario for the sleeping model — a
// battery-powered sensor corridor computing hop distances from its gateway.
// Compares the cover-driven low-energy BFS (Theorem 3.13) against the
// always-awake baseline across growing deployments. Both compute identical
// distances; the measure of interest is the awake fraction: the baseline is
// awake 100% of its runtime by definition, while the low-energy algorithm's
// awake share of its (longer) schedule keeps falling as the network grows —
// the paper's asymptotic separation (polylog energy vs Θ(D)) emerging
// through the large polylog constants (the paper's own bounds carry
// log^18-type factors).
package main

import (
	"fmt"
	"log"

	"dsssp"
	"dsssp/internal/graph"
)

func main() {
	fmt.Println("sensor corridor: BFS from the gateway (node 0)")
	fmt.Printf("%6s %6s | %10s %10s %8s | %10s %10s %8s\n",
		"", "", "low-energy", "", "", "always-awake", "", "")
	fmt.Printf("%6s %6s | %10s %10s %8s | %10s %10s %8s\n",
		"n", "D", "rounds", "maxAwake", "awake%", "rounds", "maxAwake", "awake%")
	for _, n := range []int{128, 256, 512} {
		g := graph.Path(n, graph.UnitWeights)
		d := int64(n - 1)
		low, err := dsssp.BFS(g, map[dsssp.NodeID]bool{0: true}, d,
			&dsssp.Options{Model: dsssp.ModelSleeping})
		if err != nil {
			log.Fatal(err)
		}
		base, err := dsssp.BFS(g, map[dsssp.NodeID]bool{0: true}, d,
			&dsssp.Options{Model: dsssp.ModelCongest})
		if err != nil {
			log.Fatal(err)
		}
		for v := range low.Dist {
			if low.Dist[v] != base.Dist[v] {
				log.Fatalf("distance mismatch at node %d", v)
			}
		}
		pct := func(m dsssp.Metrics) float64 { return 100 * float64(m.MaxAwake) / float64(m.Rounds) }
		fmt.Printf("%6d %6d | %10d %10d %7.1f%% | %10d %10d %7.1f%%\n",
			n, d, low.Metrics.Rounds, low.Metrics.MaxAwake, pct(low.Metrics),
			base.Metrics.Rounds, base.Metrics.MaxAwake, pct(base.Metrics))
	}
	fmt.Println("\nDistances agree on every run. The low-energy node sleeps through")
	fmt.Println("an ever-larger share of the schedule as the corridor grows, while")
	fmt.Println("the baseline is awake for its entire Θ(D) runtime.")
}
