// Decomposition: builds the layered sparse covers of Section 3.2 over a
// clustered graph and prints the structure — layers, radii, cluster counts,
// per-node overlap — the scaffolding the low-energy BFS activates cluster
// by cluster.
package main

import (
	"fmt"
	"log"

	"dsssp/internal/decomp"
	"dsssp/internal/graph"
)

func main() {
	g := graph.Clusters(8, 8, 6, graph.UnitWeights, 9)
	maxDist := int64(g.N() / 2)
	cv, err := decomp.Build(g, nil, nil, maxDist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; covering distances up to %d\n", g.N(), g.M(), maxDist)
	fmt.Printf("%5s %8s %9s %9s %8s\n", "layer", "radius", "clusters", "maxDepth", "period")
	for j, l := range cv.Layers {
		fmt.Printf("%5d %8d %9d %9d %8d\n", j, l.Radius, l.Clusters, l.MaxDepth, l.Period)
	}
	fmt.Printf("\ntotal clusters: %d\n", cv.ClusterCount)
	fmt.Printf("max clusters any node belongs to: %d (cap %d)\n",
		cv.MaxOverlap(), int(decomp.Stretch(g.N()))*len(cv.Layers)*2)
	fmt.Printf("max cluster trees through any edge: %d\n", cv.MaxEdgeTreeOverlap(g))

	// Show the cover property for one node: its radius-ball at layer 1 is
	// inside a single cluster.
	fmt.Println("\nevery node's B^j-ball is contained in one layer-j cluster")
	fmt.Println("(Definition 3.2's cover property; verified by the test suite).")
}
