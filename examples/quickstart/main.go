// Quickstart: exact SSSP on a small weighted graph with the paper's
// low-congestion algorithm, printing distances and the complexity metrics
// the theorems bound.
package main

import (
	"fmt"
	"log"

	"dsssp"
)

func main() {
	// A weighted ring with a chord.
	g := dsssp.NewGraph(6)
	g.AddEdge(0, 1, 4)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 7)
	g.AddEdge(3, 4, 2)
	g.AddEdge(4, 5, 3)
	g.AddEdge(5, 0, 5)
	g.AddEdge(1, 4, 2) // chord
	g.SortAdj()

	res, err := dsssp.SSSP(g, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact distances from node 0:")
	for v, d := range res.Dist {
		fmt.Printf("  node %d: %d\n", v, d)
	}
	fmt.Printf("rounds: %d, messages: %d, max messages on any edge: %d\n",
		res.Metrics.Rounds, res.Metrics.Messages, res.Metrics.MaxEdgeMessages)
	fmt.Printf("max recursion subproblems per node (Lemma 2.4): %d\n", res.SubproblemsMax)
}
