package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"dsssp/internal/graph"
)

// canonicalGraphDigest hashes the graph's canonical content: node count
// plus the edge set as (u,v,w) triples with u<v, sorted. Thanks to the
// keep-min AddEdge policy the edge set is duplicate-free, so two graphs
// hash equal iff they are the same weighted graph — regardless of how
// (inline vs generator, in which insertion order) they were described.
func canonicalGraphDigest(g *graph.Graph) [32]byte {
	es := g.Edges()
	sort.Slice(es, func(a, b int) bool {
		if es[a].U != es[b].U {
			return es[a].U < es[b].U
		}
		return es[a].V < es[b].V
	})
	h := sha256.New()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(int64(g.N()))
	put(int64(len(es)))
	for _, e := range es {
		put(int64(e.U))
		put(int64(e.V))
		put(e.W)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// queryKeyParts is the graph-independent half of a cache key: endpoint ×
// normalized options × query operands. Splitting the key this way is what
// makes edge-granular invalidation cheap — a PATCH that leaves a source
// untouched re-addresses its entries by hashing the *same* parts against
// the new revision digest (keyFromDigest), no recomputation and no
// knowledge of the original request needed beyond this string.
func queryKeyParts(endpoint string, o QueryOptions, operands string) string {
	// Normalize the option encoding so semantically identical requests
	// share an entry: the model default is spelled out, the ε default 1/2
	// is applied, and the fraction is reduced.
	model := o.Model
	if model == "" {
		model = "congest"
	}
	en, ed := o.EpsNum, o.EpsDen
	if en == 0 && ed == 0 {
		en, ed = 1, 2
	}
	if g := gcd(en, ed); g > 1 {
		en, ed = en/g, ed/g
	}
	return fmt.Sprintf("%s|model=%s|eps=%d/%d|strict=%v|maxr=%d|phases=%v|%s",
		endpoint, model, en, ed, o.StrictCongest, o.MaxRounds, o.RecordPhases, operands)
}

// keyFromDigest addresses one query result by graph-revision digest plus
// the normalized parts string.
func keyFromDigest(digest [32]byte, parts string) string {
	h := sha256.Sum256(fmt.Appendf(nil, "%x|%s", digest, parts))
	return hex.EncodeToString(h[:])
}

// queryKey is the content address of one query result: endpoint ×
// canonical graph (its revision digest, for registered graphs) ×
// normalized options × query operands. Two requests with the same key are
// the same computation, so the cache may serve either's bytes for both.
// Only options that can change the response bytes participate:
// QueryOptions.Workers (intra-round parallelism) is deliberately absent,
// because the parallel engine is byte-identical to the sequential one —
// folding it in would split one computation across cache entries for no
// reason (pinned by TestQueryKeyIgnoresWorkers).
func queryKey(endpoint string, g *graph.Graph, o QueryOptions, operands string) string {
	return keyFromDigest(canonicalGraphDigest(g), queryKeyParts(endpoint, o, operands))
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}
