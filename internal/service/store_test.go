package service

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"dsssp/internal/harness"
)

func tinyReport(scenario string, rounds int64) harness.Report {
	return harness.BuildReport("default", true, []harness.Result{{
		Scenario: scenario, Family: "random", Model: "congest", Alg: "sssp",
		N: 8, M: 12, Rounds: rounds, MaxEdgeMessages: 4, Messages: 40,
		Envelope: harness.Envelope{Rounds: 1000, Congestion: 100},
		DistHash: "ffff", OK: true,
	}})
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(filepath.Join(t.TempDir(), "history"))
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)
	e1, err := st.Save(tinyReport("a", 100), "abc123", t0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := st.Save(tinyReport("a", 110), "abc124", t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != e1.Name || entries[1].Name != e2.Name {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Rev != "abc123" || !entries[0].Stamp.Equal(t0) {
		t.Fatalf("entry 0 = %+v", entries[0])
	}
	rep, err := st.Load(e2.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Rounds != 110 {
		t.Fatalf("loaded report = %+v", rep)
	}
}

// TestStoreAppendOnly: saving twice at the same instant must never
// overwrite — the second save nudges its stamp.
func TestStoreAppendOnly(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)
	e1, err := st.Save(tinyReport("a", 100), "rev", t0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := st.Save(tinyReport("a", 200), "rev", t0)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Name == e2.Name {
		t.Fatalf("collision overwrote: %s", e1.Name)
	}
	entries, err := st.List()
	if err != nil || len(entries) != 2 {
		t.Fatalf("entries = %+v, err %v", entries, err)
	}
	// Chronological order survives the nudge.
	if !entries[0].Stamp.Before(entries[1].Stamp) {
		t.Fatalf("stamps out of order: %v, %v", entries[0].Stamp, entries[1].Stamp)
	}
}

func TestStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"notes.md", ".tmp-bench-123", "BENCH_garbage.json", "BENCH_nounderscore"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Save(tinyReport("a", 1), "rev", time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("foreign files leaked into the listing: %+v", entries)
	}
}

func TestStoreLoadRejectsTraversal(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"../secret.json", "/etc/passwd", "nope.json"} {
		if _, err := st.Load(name); err == nil {
			t.Fatalf("Load(%q) should fail", name)
		}
	}
}

func TestSanitizeRev(t *testing.T) {
	cases := map[string]string{
		"abc123":        "abc123",
		"v1.2-rc3":      "v1.2-rc3",
		"../../evil":    "....evil",
		"has_underscor": "hasunderscor",
		"":              "unknown",
		"///":           "unknown",
	}
	for in, want := range cases {
		if got := sanitizeRev(in); got != want {
			t.Errorf("sanitizeRev(%q) = %q, want %q", in, got, want)
		}
	}
}
