package service

import (
	"container/list"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"dsssp/internal/graph"
	"dsssp/internal/incr"
)

// GraphRegistry holds the registered (dynamic) graphs: content-derived
// handles pointing at a chain of revisions, each revision an immutable
// graph snapshot plus the per-source result traces (exact distance rows
// and the cache-entry addresses derived from them) that internal/incr
// classifies on every PATCH. Queries resolve a handle to the head
// revision's snapshot and proceed exactly like inline queries — the
// revision digest is the cache key's graph half — so a query racing a
// PATCH sees exactly the pre- or the post-revision result, never a mix.
//
// The registry is byte-budgeted: graphs (and their traces) are charged an
// approximate resident footprint and whole graphs are evicted LRU when the
// budget overflows. Evicting a graph drops registry state only — its
// content-addressed cache entries stay valid and age out of the result
// cache on their own.
type GraphRegistry struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	cache  *Cache
	graphs map[string]*regGraph
	lru    *list.List // of *regGraph; front = most recently used
	now    func() time.Time

	// Telemetry hooks, bound by the server after construction (tests may
	// leave them nil).
	m *serverMetrics

	// Monotonic counters for RegistryStats.
	revisions int64 // revisions ever created (registrations + patches)
	evictions int64
}

type regGraph struct {
	id        string
	el        *list.Element
	createdAt time.Time
	patchedAt time.Time
	head      *revision
	bytes     int64
}

// revision is one immutable point in a graph's history. The graph snapshot
// is never mutated after construction — PATCH builds a fresh one — so any
// query holding a resolved revision can simulate on it lock-free.
type revision struct {
	num    int
	digest [32]byte
	g      *graph.Graph
	// traces maps source → its exact distance row plus the cache-entry
	// parts derived from it. The sentinel apspTraceKey tracks whole-APSP
	// response bodies, which cover every source at once.
	traces map[graph.NodeID]*sourceTrace
}

// apspTraceKey indexes the pseudo-trace holding whole-APSP body entries;
// such an entry survives a PATCH only if every one of the n sources is
// provably untouched.
const apspTraceKey = graph.NodeID(-1)

type sourceTrace struct {
	dist    []int64 // nil for apspTraceKey
	entries map[string]struct{}
	bytes   int64
}

// NewGraphRegistry returns a registry with the given byte budget, wired to
// the cache it migrates/invalidates entries in.
func NewGraphRegistry(budget int64, cache *Cache, now func() time.Time) *GraphRegistry {
	if now == nil {
		now = time.Now
	}
	return &GraphRegistry{
		budget: budget,
		cache:  cache,
		graphs: make(map[string]*regGraph),
		lru:    list.New(),
		now:    now,
	}
}

func (r *GraphRegistry) bindMetrics(m *serverMetrics) { r.m = m }

// GraphInfo is the wire form of one registered graph.
type GraphInfo struct {
	ID string `json:"id"`
	// Revision counts from 1 at registration; every PATCH increments it.
	Revision int `json:"revision"`
	// Digest is the head revision's canonical content digest (hex); it is
	// the graph half of every cache key minted for this revision.
	Digest string `json:"digest"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	// Bytes is the approximate resident footprint charged against the
	// registry budget (graph + cached traces).
	Bytes         int64 `json:"bytes"`
	TracedSources int   `json:"traced_sources"`
	CreatedAtNS   int64 `json:"created_at_ns"`
	PatchedAtNS   int64 `json:"patched_at_ns,omitempty"`
}

// graphBytes approximates a snapshot's resident footprint: two adjacency
// halves plus an index-map entry per edge, a slice header per node.
func graphBytes(g *graph.Graph) int64 {
	return int64(g.N())*24 + int64(g.M())*48
}

func traceBytes(dist []int64) int64 { return int64(len(dist))*8 + 64 }

// Register adds the graph under a content-derived handle and returns its
// info. Registration is idempotent: posting a graph whose content matches
// an existing handle's head revision returns that handle (created=false).
// If the handle's graph has since been patched away from this content, a
// disambiguated handle is minted — handles are stable names for histories,
// not for contents.
func (r *GraphRegistry) Register(g *graph.Graph) (GraphInfo, bool) {
	digest := canonicalGraphDigest(g)
	r.mu.Lock()
	defer r.mu.Unlock()
	base := "g-" + hex.EncodeToString(digest[:8])
	id := base
	for k := 2; ; k++ {
		rg, ok := r.graphs[id]
		if !ok {
			break
		}
		if rg.head.digest == digest {
			r.touchLocked(rg)
			return r.infoLocked(rg), false
		}
		id = fmt.Sprintf("%s-%d", base, k)
	}
	rg := &regGraph{
		id:        id,
		createdAt: r.now(),
		head: &revision{
			num:    1,
			digest: digest,
			g:      g,
			traces: make(map[graph.NodeID]*sourceTrace),
		},
		bytes: graphBytes(g),
	}
	rg.el = r.lru.PushFront(rg)
	r.graphs[id] = rg
	r.bytes += rg.bytes
	r.revisions++
	r.evictLocked(rg)
	return r.infoLocked(rg), true
}

// Resolve returns the head revision snapshot for a query: the immutable
// graph, its digest (the cache key's graph half), and the revision number.
func (r *GraphRegistry) Resolve(id string) (*graph.Graph, [32]byte, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok {
		return nil, [32]byte{}, 0, notfoundf("no registered graph %q (evicted or never registered)", id)
	}
	r.touchLocked(rg)
	return rg.head.g, rg.head.digest, rg.head.num, nil
}

// Get returns a registered graph's info.
func (r *GraphRegistry) Get(id string) (GraphInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok {
		return GraphInfo{}, false
	}
	return r.infoLocked(rg), true
}

// List returns every registered graph, most recently used first.
func (r *GraphRegistry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, len(r.graphs))
	for el := r.lru.Front(); el != nil; el = el.Next() {
		out = append(out, r.infoLocked(el.Value.(*regGraph)))
	}
	return out
}

// Remove drops a registered graph (its cache entries stay and age out).
func (r *GraphRegistry) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok {
		return false
	}
	r.dropLocked(rg)
	return true
}

// PatchInfo is the wire form of one applied edge-delta batch — the
// revision transition plus the classification outcome, which is also the
// observability story: DirtyFraction is what the reuse histogram records.
type PatchInfo struct {
	ID             string `json:"id"`
	Revision       int    `json:"revision"`
	ParentRevision int    `json:"parent_revision"`
	Digest         string `json:"digest"`
	N              int    `json:"n"`
	M              int    `json:"m"`
	DeltasApplied  int    `json:"deltas_applied"`
	// Effects counts deltas that actually changed a weight (keep-min
	// no-op inserts and same-weight reweights resolve away).
	Effects int `json:"effects"`
	// SourcesKept / SourcesDropped classify the parent revision's traced
	// sources: kept = untouched (results carried forward verbatim),
	// dropped = dirty (will recompute on next query).
	SourcesKept    int     `json:"sources_kept"`
	SourcesDropped int     `json:"sources_dropped"`
	DirtyFraction  float64 `json:"dirty_fraction"`
	// EntriesMigrated / EntriesInvalidated count result-cache entries
	// re-addressed to the new revision vs dropped — the edge-granular
	// invalidation ledger.
	EntriesMigrated    int `json:"entries_migrated"`
	EntriesInvalidated int `json:"entries_invalidated"`
}

// Patch applies an edge-delta batch to the graph's head revision: builds
// the patched snapshot, classifies every traced source against the deltas
// (internal/incr), migrates untouched sources' traces and cache entries to
// the new revision's keys, invalidates dirty sources' entries, and swaps
// the head. The whole transition happens under the registry lock, so
// concurrent queries resolve either the old head (and serve its still-
// consistent snapshot) or the new one — never a mix.
func (r *GraphRegistry) Patch(id string, deltas []graph.EdgeDelta) (PatchInfo, error) {
	if len(deltas) == 0 {
		return PatchInfo{}, badf("empty delta batch")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok {
		return PatchInfo{}, notfoundf("no registered graph %q (evicted or never registered)", id)
	}
	old := rg.head
	ng, err := graph.ApplyDeltas(old.g, deltas)
	if err != nil {
		return PatchInfo{}, badRequest{err}
	}
	effects, err := incr.Effects(old.g, deltas)
	if err != nil {
		return PatchInfo{}, badRequest{err} // unreachable after ApplyDeltas, but loud beats silent
	}
	newDigest := canonicalGraphDigest(ng)
	next := &revision{
		num:    old.num + 1,
		digest: newDigest,
		g:      ng,
		traces: make(map[graph.NodeID]*sourceTrace, len(old.traces)),
	}

	info := PatchInfo{
		ID: id, Revision: next.num, ParentRevision: old.num,
		Digest: hex.EncodeToString(newDigest[:]),
		N:      ng.N(), M: ng.M(),
		DeltasApplied: len(deltas), Effects: len(effects),
	}
	distTraced := 0
	for src, tr := range old.traces {
		if src == apspTraceKey {
			continue // classified below, against all sources
		}
		distTraced++
		if incr.SourceDirty(effects, tr.dist) {
			info.SourcesDropped++
			info.EntriesInvalidated += r.dropEntriesLocked(old.digest, tr)
			continue
		}
		info.SourcesKept++
		info.EntriesMigrated += r.migrateTraceLocked(old.digest, newDigest, tr)
		next.traces[src] = tr
	}
	// Whole-APSP bodies cover every source at once: they survive only when
	// all n sources are traced and none is dirty.
	if tr, ok := old.traces[apspTraceKey]; ok {
		if info.SourcesDropped == 0 && distTraced == old.g.N() {
			info.EntriesMigrated += r.migrateTraceLocked(old.digest, newDigest, tr)
			next.traces[apspTraceKey] = tr
		} else {
			info.EntriesInvalidated += r.dropEntriesLocked(old.digest, tr)
		}
	}
	if classified := info.SourcesKept + info.SourcesDropped; classified > 0 {
		info.DirtyFraction = float64(info.SourcesDropped) / float64(classified)
		if r.m != nil {
			r.m.patchDirtyFraction.Observe(info.DirtyFraction)
		}
	}
	if r.m != nil {
		r.m.incrEntriesMigrated.Add(int64(info.EntriesMigrated))
		r.m.incrEntriesInvalidated.Add(int64(info.EntriesInvalidated))
	}

	// Swap the head and re-account: dropped traces refund their bytes.
	var traceB int64
	for _, tr := range next.traces {
		traceB += tr.bytes
	}
	newBytes := graphBytes(ng) + traceB
	r.bytes += newBytes - rg.bytes
	rg.bytes = newBytes
	rg.head = next
	rg.patchedAt = r.now()
	r.revisions++
	r.touchLocked(rg)
	r.evictLocked(rg)
	return info, nil
}

// migrateTraceLocked re-addresses a trace's cache entries from the old to
// the new revision digest, pruning entries the cache has since evicted.
func (r *GraphRegistry) migrateTraceLocked(oldDigest, newDigest [32]byte, tr *sourceTrace) int {
	migrated := 0
	for parts := range tr.entries {
		if r.cache.Copy(keyFromDigest(oldDigest, parts), keyFromDigest(newDigest, parts)) {
			migrated++
		} else {
			delete(tr.entries, parts) // evicted under us; nothing to carry
			tr.bytes -= int64(len(parts))
		}
	}
	return migrated
}

// dropEntriesLocked invalidates a dirty trace's cache entries.
func (r *GraphRegistry) dropEntriesLocked(digest [32]byte, tr *sourceTrace) int {
	keys := make([]string, 0, len(tr.entries))
	for parts := range tr.entries {
		keys = append(keys, keyFromDigest(digest, parts))
	}
	return r.cache.Invalidate(keys...)
}

// Record attaches a computed source result to the graph's head revision:
// the exact distance row (what incr classifies against) and, optionally,
// the cache-entry parts string minted for the response (what a future
// PATCH migrates or invalidates). Dropped silently when digest no longer
// names the head — the computation raced a PATCH and its revision is gone;
// its cache entry is unreachable from the new head anyway.
func (r *GraphRegistry) Record(id string, digest [32]byte, src graph.NodeID, dist []int64, parts string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok || rg.head.digest != digest {
		return
	}
	r.recordLocked(rg, src, dist, parts)
	r.evictLocked(rg)
}

// RecordRows batch-records per-source distance rows (an APSP run's yield)
// plus the whole-body entry under the apspTraceKey pseudo-source.
func (r *GraphRegistry) RecordRows(id string, digest [32]byte, rows map[graph.NodeID][]int64, bodyParts string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok || rg.head.digest != digest {
		return
	}
	for src, dist := range rows {
		r.recordLocked(rg, src, dist, "")
	}
	if bodyParts != "" {
		r.recordLocked(rg, apspTraceKey, nil, bodyParts)
	}
	r.evictLocked(rg)
}

func (r *GraphRegistry) recordLocked(rg *regGraph, src graph.NodeID, dist []int64, parts string) {
	tr, ok := rg.head.traces[src]
	if !ok {
		// Respect the byte budget at admission: traces are an accelerator,
		// not a correctness requirement, so an over-budget graph simply
		// stops accumulating them (queries still work, just without reuse).
		cost := traceBytes(dist)
		if r.budget > 0 && rg.bytes+cost > r.budget {
			return
		}
		tr = &sourceTrace{dist: dist, entries: make(map[string]struct{}), bytes: cost}
		rg.head.traces[src] = tr
		rg.bytes += cost
		r.bytes += cost
	}
	if parts != "" {
		if _, dup := tr.entries[parts]; !dup {
			tr.entries[parts] = struct{}{}
			tr.bytes += int64(len(parts))
			rg.bytes += int64(len(parts))
			r.bytes += int64(len(parts))
		}
	}
}

// Rows snapshots the distance rows valid at the given revision digest
// (nil when the digest is stale or unknown). The rows are shared immutable
// slices — callers must not write through them.
func (r *GraphRegistry) Rows(id string, digest [32]byte) map[graph.NodeID][]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok || rg.head.digest != digest {
		return nil
	}
	out := make(map[graph.NodeID][]int64, len(rg.head.traces))
	for src, tr := range rg.head.traces {
		if src != apspTraceKey && tr.dist != nil {
			out[src] = tr.dist
		}
	}
	return out
}

// touchLocked marks a graph most-recently-used.
func (r *GraphRegistry) touchLocked(rg *regGraph) { r.lru.MoveToFront(rg.el) }

// evictLocked drops least-recently-used graphs until the budget holds,
// never evicting the graph that triggered the sweep (keep, at minimum,
// what the caller is actively using).
func (r *GraphRegistry) evictLocked(keep *regGraph) {
	if r.budget <= 0 {
		return
	}
	for r.bytes > r.budget {
		back := r.lru.Back()
		if back == nil {
			break
		}
		rg := back.Value.(*regGraph)
		if rg == keep {
			break
		}
		r.dropLocked(rg)
		r.evictions++
	}
}

func (r *GraphRegistry) dropLocked(rg *regGraph) {
	r.lru.Remove(rg.el)
	delete(r.graphs, rg.id)
	r.bytes -= rg.bytes
}

func (r *GraphRegistry) infoLocked(rg *regGraph) GraphInfo {
	info := GraphInfo{
		ID:            rg.id,
		Revision:      rg.head.num,
		Digest:        hex.EncodeToString(rg.head.digest[:]),
		N:             rg.head.g.N(),
		M:             rg.head.g.M(),
		Bytes:         rg.bytes,
		TracedSources: len(rg.head.traces),
		CreatedAtNS:   rg.createdAt.UnixNano(),
	}
	if !rg.patchedAt.IsZero() {
		info.PatchedAtNS = rg.patchedAt.UnixNano()
	}
	return info
}

// RegistryStats is the registry's observable state (GET /v1/stats and the
// dsssp_graphs_* metrics).
type RegistryStats struct {
	Graphs int `json:"graphs"`
	// Revisions counts revisions ever created (registrations + patches),
	// monotonically.
	Revisions int64 `json:"revisions"`
	Evictions int64 `json:"evictions"`
	BytesUsed int64 `json:"bytes_used"`
	Budget    int64 `json:"bytes_budget"`
}

// Stats snapshots the registry counters.
func (r *GraphRegistry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RegistryStats{
		Graphs:    len(r.graphs),
		Revisions: r.revisions,
		Evictions: r.evictions,
		BytesUsed: r.bytes,
		Budget:    r.budget,
	}
}
