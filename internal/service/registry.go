package service

import (
	"container/list"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"dsssp/internal/graph"
	"dsssp/internal/incr"
)

// GraphRegistry holds the registered (dynamic) graphs: content-derived
// handles pointing at a chain of revisions, each revision an immutable
// graph snapshot plus the per-source result traces (exact distance rows
// and the cache-entry addresses derived from them) that internal/incr
// classifies on every PATCH. Queries resolve a handle to the head
// revision's snapshot and proceed exactly like inline queries — the
// revision digest is the cache key's graph half — so a query racing a
// PATCH sees exactly the pre- or the post-revision result, never a mix.
//
// The registry is byte-budgeted: graphs (and their traces) are charged an
// approximate resident footprint and whole graphs are evicted LRU when the
// budget overflows. Evicting a graph drops registry state only — its
// content-addressed cache entries stay valid and age out of the result
// cache on their own.
type GraphRegistry struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	cache  *Cache
	graphs map[string]*regGraph
	lru    *list.List // of *regGraph; front = most recently used
	now    func() time.Time

	// Telemetry hooks, bound by the server after construction (tests may
	// leave them nil).
	m *serverMetrics

	// Monotonic counters for RegistryStats.
	revisions int64 // revisions ever created (registrations + patches)
	evictions int64

	// dir, when non-empty, is the persistence directory: registered graphs
	// and their traces are spilled to <dir>/<id>.json on register/PATCH and
	// reloaded on startup (see persist.go).
	dir string
}

type regGraph struct {
	id        string
	el        *list.Element
	createdAt time.Time
	patchedAt time.Time
	head      *revision
	bytes     int64
}

// revision is one immutable point in a graph's history. The graph snapshot
// is never mutated after construction — PATCH builds a fresh one — so any
// query holding a resolved revision can simulate on it lock-free.
type revision struct {
	num    int
	digest [32]byte
	g      *graph.Graph
	// traces maps source → its exact distance row plus the cache-entry
	// parts derived from it. The sentinel apspTraceKey tracks whole-APSP
	// response bodies, which cover every source at once.
	traces map[graph.NodeID]*sourceTrace
	// stale maps source → the last exact trace it had before a PATCH
	// dirtied it, plus the base-weight ledger needed to repair it
	// (incr.Repair) instead of recomputing from scratch. A source is in
	// traces or stale, never both.
	stale map[graph.NodeID]*staleTrace
}

// apspTraceKey indexes the pseudo-trace holding whole-APSP body entries;
// such an entry survives a PATCH only if every one of the n sources is
// provably untouched.
const apspTraceKey = graph.NodeID(-1)

type sourceTrace struct {
	dist []int64 // nil for apspTraceKey
	// parent is the deterministic min-ID witness tree for dist, nil when it
	// was never derived (a trace without a parent tree migrates and serves
	// but cannot be repaired once dirty).
	parent  []graph.NodeID
	entries map[string]struct{}
	bytes   int64
}

// staleTrace is a dirty source's remembered structure: the distance row and
// witness tree that were exact at some past revision, plus the base-weight
// ledger — canonical pair key → that pair's weight on the trace's graph
// (-1 for absent) for every pair patched since. incr.NetChanges resolves
// the ledger against the head graph into the repair engine's input; the
// first-touch-wins discipline (see Patch) keeps it composable across
// stacked patches.
type staleTrace struct {
	dist   []int64
	parent []graph.NodeID
	base   map[uint64]int64
	bytes  int64
}

// NewGraphRegistry returns a registry with the given byte budget, wired to
// the cache it migrates/invalidates entries in.
func NewGraphRegistry(budget int64, cache *Cache, now func() time.Time) *GraphRegistry {
	if now == nil {
		now = time.Now
	}
	return &GraphRegistry{
		budget: budget,
		cache:  cache,
		graphs: make(map[string]*regGraph),
		lru:    list.New(),
		now:    now,
	}
}

func (r *GraphRegistry) bindMetrics(m *serverMetrics) { r.m = m }

// GraphInfo is the wire form of one registered graph.
type GraphInfo struct {
	ID string `json:"id"`
	// Revision counts from 1 at registration; every PATCH increments it.
	Revision int `json:"revision"`
	// Digest is the head revision's canonical content digest (hex); it is
	// the graph half of every cache key minted for this revision.
	Digest string `json:"digest"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	// Bytes is the approximate resident footprint charged against the
	// registry budget (graph + cached traces).
	Bytes         int64 `json:"bytes"`
	TracedSources int   `json:"traced_sources"`
	// StaleSources counts dirty sources holding a repairable stale trace.
	StaleSources int   `json:"stale_sources,omitempty"`
	CreatedAtNS  int64 `json:"created_at_ns"`
	PatchedAtNS  int64 `json:"patched_at_ns,omitempty"`
}

// graphBytes approximates a snapshot's resident footprint: two adjacency
// halves plus an index-map entry per edge, a slice header per node.
func graphBytes(g *graph.Graph) int64 {
	return int64(g.N())*24 + int64(g.M())*48
}

func traceBytes(dist []int64, parent []graph.NodeID) int64 {
	return int64(len(dist))*8 + int64(len(parent))*4 + 64
}

func staleTraceBytes(st *staleTrace) int64 {
	return int64(len(st.dist))*8 + int64(len(st.parent))*4 + int64(len(st.base))*16 + 96
}

// Register adds the graph under a content-derived handle and returns its
// info. Registration is idempotent: posting a graph whose content matches
// an existing handle's head revision returns that handle (created=false).
// If the handle's graph has since been patched away from this content, a
// disambiguated handle is minted — handles are stable names for histories,
// not for contents.
func (r *GraphRegistry) Register(g *graph.Graph) (GraphInfo, bool) {
	digest := canonicalGraphDigest(g)
	r.mu.Lock()
	defer r.mu.Unlock()
	base := "g-" + hex.EncodeToString(digest[:8])
	id := base
	for k := 2; ; k++ {
		rg, ok := r.graphs[id]
		if !ok {
			break
		}
		if rg.head.digest == digest {
			r.touchLocked(rg)
			return r.infoLocked(rg), false
		}
		id = fmt.Sprintf("%s-%d", base, k)
	}
	rg := &regGraph{
		id:        id,
		createdAt: r.now(),
		head: &revision{
			num:    1,
			digest: digest,
			g:      g,
			traces: make(map[graph.NodeID]*sourceTrace),
			stale:  make(map[graph.NodeID]*staleTrace),
		},
		bytes: graphBytes(g),
	}
	rg.el = r.lru.PushFront(rg)
	r.graphs[id] = rg
	r.bytes += rg.bytes
	r.revisions++
	r.evictLocked(rg)
	r.spillLocked(rg)
	return r.infoLocked(rg), true
}

// Resolve returns the head revision snapshot for a query: the immutable
// graph, its digest (the cache key's graph half), and the revision number.
func (r *GraphRegistry) Resolve(id string) (*graph.Graph, [32]byte, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok {
		return nil, [32]byte{}, 0, notfoundf("no registered graph %q (evicted or never registered)", id)
	}
	r.touchLocked(rg)
	return rg.head.g, rg.head.digest, rg.head.num, nil
}

// Get returns a registered graph's info.
func (r *GraphRegistry) Get(id string) (GraphInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok {
		return GraphInfo{}, false
	}
	return r.infoLocked(rg), true
}

// List returns every registered graph, most recently used first.
func (r *GraphRegistry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, len(r.graphs))
	for el := r.lru.Front(); el != nil; el = el.Next() {
		out = append(out, r.infoLocked(el.Value.(*regGraph)))
	}
	return out
}

// Remove drops a registered graph (its cache entries stay and age out).
func (r *GraphRegistry) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok {
		return false
	}
	r.dropLocked(rg)
	return true
}

// PatchInfo is the wire form of one applied edge-delta batch — the
// revision transition plus the classification outcome, which is also the
// observability story: DirtyFraction is what the reuse histogram records.
type PatchInfo struct {
	ID             string `json:"id"`
	Revision       int    `json:"revision"`
	ParentRevision int    `json:"parent_revision"`
	Digest         string `json:"digest"`
	N              int    `json:"n"`
	M              int    `json:"m"`
	DeltasApplied  int    `json:"deltas_applied"`
	// Effects counts deltas that actually changed a weight (keep-min
	// no-op inserts and same-weight reweights resolve away).
	Effects int `json:"effects"`
	// SourcesKept / SourcesDropped classify the parent revision's traced
	// sources: kept = untouched (results carried forward verbatim),
	// dropped = dirty (cache entries invalidated). SourcesRepairable is the
	// subset of dropped sources demoted to a stale trace + base-weight
	// ledger instead of being forgotten — the next query repairs them
	// (incr.Repair) rather than recomputing from scratch.
	SourcesKept       int     `json:"sources_kept"`
	SourcesDropped    int     `json:"sources_dropped"`
	SourcesRepairable int     `json:"sources_repairable"`
	DirtyFraction     float64 `json:"dirty_fraction"`
	// EntriesMigrated / EntriesInvalidated count result-cache entries
	// re-addressed to the new revision vs dropped — the edge-granular
	// invalidation ledger.
	EntriesMigrated    int `json:"entries_migrated"`
	EntriesInvalidated int `json:"entries_invalidated"`
}

// Patch applies an edge-delta batch to the graph's head revision: builds
// the patched snapshot, classifies every traced source against the deltas
// (internal/incr), migrates untouched sources' traces and cache entries to
// the new revision's keys, invalidates dirty sources' entries, and swaps
// the head. The whole transition happens under the registry lock, so
// concurrent queries resolve either the old head (and serve its still-
// consistent snapshot) or the new one — never a mix.
func (r *GraphRegistry) Patch(id string, deltas []graph.EdgeDelta) (PatchInfo, error) {
	if len(deltas) == 0 {
		return PatchInfo{}, badf("empty delta batch")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok {
		return PatchInfo{}, notfoundf("no registered graph %q (evicted or never registered)", id)
	}
	old := rg.head
	ng, err := graph.ApplyDeltas(old.g, deltas)
	if err != nil {
		return PatchInfo{}, badRequest{err}
	}
	effects, err := incr.Effects(old.g, deltas)
	if err != nil {
		return PatchInfo{}, badRequest{err} // unreachable after ApplyDeltas, but loud beats silent
	}
	newDigest := canonicalGraphDigest(ng)
	next := &revision{
		num:    old.num + 1,
		digest: newDigest,
		g:      ng,
		traces: make(map[graph.NodeID]*sourceTrace, len(old.traces)),
		stale:  make(map[graph.NodeID]*staleTrace, len(old.stale)),
	}

	info := PatchInfo{
		ID: id, Revision: next.num, ParentRevision: old.num,
		Digest: hex.EncodeToString(newDigest[:]),
		N:      ng.N(), M: ng.M(),
		DeltasApplied: len(deltas), Effects: len(effects),
	}
	distTraced := 0
	for src, tr := range old.traces {
		if src == apspTraceKey {
			continue // classified below, against all sources
		}
		distTraced++
		if incr.SourceDirty(effects, tr.dist) {
			info.SourcesDropped++
			info.EntriesInvalidated += r.dropEntriesLocked(old.digest, tr)
			// Demote rather than forget: the trace was exact on old.g, so a
			// ledger of this batch's pairs at their old.g weights is exactly
			// what incr.Repair needs to catch it up on a later query. A
			// trace without a witness tree can't be repaired — drop it.
			if tr.parent != nil {
				st := &staleTrace{dist: tr.dist, parent: tr.parent, base: baseLedger(old.g, effects)}
				st.bytes = staleTraceBytes(st)
				next.stale[src] = st
				info.SourcesRepairable++
			}
			continue
		}
		info.SourcesKept++
		info.EntriesMigrated += r.migrateTraceLocked(old.digest, newDigest, tr)
		next.traces[src] = tr
	}
	// Sources already stale from earlier patches stay repairable: extend
	// their ledgers with this batch's pairs — first touch wins, at old.g
	// weights, which are the trace-time weights for any pair not already in
	// the ledger (an earlier patch touching it would have recorded it).
	for src, st := range old.stale {
		for _, e := range effects {
			k := incr.PairKey(e.U, e.V)
			if _, ok := st.base[k]; !ok {
				st.base[k] = incr.BaseWeight(old.g, e.U, e.V)
			}
		}
		st.bytes = staleTraceBytes(st)
		next.stale[src] = st
		info.SourcesRepairable++
	}
	// Whole-APSP bodies cover every source at once: they survive only when
	// all n sources are traced and none is dirty.
	if tr, ok := old.traces[apspTraceKey]; ok {
		if info.SourcesDropped == 0 && distTraced == old.g.N() {
			info.EntriesMigrated += r.migrateTraceLocked(old.digest, newDigest, tr)
			next.traces[apspTraceKey] = tr
		} else {
			info.EntriesInvalidated += r.dropEntriesLocked(old.digest, tr)
		}
	}
	if classified := info.SourcesKept + info.SourcesDropped; classified > 0 {
		info.DirtyFraction = float64(info.SourcesDropped) / float64(classified)
		if r.m != nil {
			r.m.patchDirtyFraction.Observe(info.DirtyFraction)
		}
	}
	if r.m != nil {
		r.m.incrEntriesMigrated.Add(int64(info.EntriesMigrated))
		r.m.incrEntriesInvalidated.Add(int64(info.EntriesInvalidated))
	}

	// Swap the head and re-account: dropped traces refund their bytes,
	// demoted and extended stale traces charge theirs.
	var traceB int64
	for _, tr := range next.traces {
		traceB += tr.bytes
	}
	for _, st := range next.stale {
		traceB += st.bytes
	}
	newBytes := graphBytes(ng) + traceB
	r.bytes += newBytes - rg.bytes
	rg.bytes = newBytes
	rg.head = next
	rg.patchedAt = r.now()
	r.revisions++
	r.touchLocked(rg)
	r.evictLocked(rg)
	r.spillLocked(rg)
	return info, nil
}

// baseLedger opens a dirty trace's base-weight ledger from the batch that
// dirtied it: each patched pair at its pre-patch (= trace-time) weight.
func baseLedger(g *graph.Graph, effects []incr.Effect) map[uint64]int64 {
	base := make(map[uint64]int64, len(effects))
	for _, e := range effects {
		k := incr.PairKey(e.U, e.V)
		if _, ok := base[k]; !ok {
			base[k] = incr.BaseWeight(g, e.U, e.V)
		}
	}
	return base
}

// migrateTraceLocked re-addresses a trace's cache entries from the old to
// the new revision digest, pruning entries the cache has since evicted.
func (r *GraphRegistry) migrateTraceLocked(oldDigest, newDigest [32]byte, tr *sourceTrace) int {
	migrated := 0
	for parts := range tr.entries {
		if r.cache.Copy(keyFromDigest(oldDigest, parts), keyFromDigest(newDigest, parts)) {
			migrated++
		} else {
			delete(tr.entries, parts) // evicted under us; nothing to carry
			tr.bytes -= int64(len(parts))
		}
	}
	return migrated
}

// dropEntriesLocked invalidates a dirty trace's cache entries.
func (r *GraphRegistry) dropEntriesLocked(digest [32]byte, tr *sourceTrace) int {
	keys := make([]string, 0, len(tr.entries))
	for parts := range tr.entries {
		keys = append(keys, keyFromDigest(digest, parts))
	}
	return r.cache.Invalidate(keys...)
}

// Record attaches a computed source result to the graph's head revision:
// the exact distance row (what incr classifies against), its min-ID
// witness tree (what incr.Repair restarts from; nil when not derived) and,
// optionally, the cache-entry parts string minted for the response (what a
// future PATCH migrates or invalidates). Admitting an exact trace
// supersedes any stale trace for the same source. Dropped silently when
// digest no longer names the head — the computation raced a PATCH and its
// revision is gone; its cache entry is unreachable from the new head
// anyway.
func (r *GraphRegistry) Record(id string, digest [32]byte, src graph.NodeID, dist []int64, parent []graph.NodeID, parts string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok || rg.head.digest != digest {
		return
	}
	r.recordLocked(rg, src, dist, parent, parts)
	r.evictLocked(rg)
}

// RecordRows batch-records per-source traces (an APSP run's yield) plus
// the whole-body entry under the apspTraceKey pseudo-source.
func (r *GraphRegistry) RecordRows(id string, digest [32]byte, rows map[graph.NodeID]incr.Trace, bodyParts string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok || rg.head.digest != digest {
		return
	}
	for src, tr := range rows {
		r.recordLocked(rg, src, tr.Dist, tr.Parent, "")
	}
	if bodyParts != "" {
		r.recordLocked(rg, apspTraceKey, nil, nil, bodyParts)
	}
	r.evictLocked(rg)
}

func (r *GraphRegistry) recordLocked(rg *regGraph, src graph.NodeID, dist []int64, parent []graph.NodeID, parts string) {
	tr, ok := rg.head.traces[src]
	if !ok {
		// Respect the byte budget at admission: traces are an accelerator,
		// not a correctness requirement, so an over-budget graph simply
		// stops accumulating them (queries still work, just without reuse).
		cost := traceBytes(dist, parent)
		if r.budget > 0 && rg.bytes+cost > r.budget {
			return // the stale trace, if any, stays usable
		}
		tr = &sourceTrace{dist: dist, parent: parent, entries: make(map[string]struct{}), bytes: cost}
		rg.head.traces[src] = tr
		rg.bytes += cost
		r.bytes += cost
		// The exact trace supersedes the stale one it was repaired from.
		if st, stale := rg.head.stale[src]; stale {
			delete(rg.head.stale, src)
			rg.bytes -= st.bytes
			r.bytes -= st.bytes
		}
	} else if tr.parent == nil && parent != nil {
		// A row recorded without its tree (APSP yield) gains one later.
		add := int64(len(parent)) * 4
		tr.parent = parent
		tr.bytes += add
		rg.bytes += add
		r.bytes += add
	}
	if parts != "" {
		if _, dup := tr.entries[parts]; !dup {
			tr.entries[parts] = struct{}{}
			tr.bytes += int64(len(parts))
			rg.bytes += int64(len(parts))
			r.bytes += int64(len(parts))
		}
	}
}

// Repairable returns what the repair path needs for a source at the given
// head digest: its remembered trace and the net changes separating the
// trace's graph from the head. An exact head trace (with a witness tree)
// returns zero changes — repair degenerates to serving the trace in O(n),
// no simulation. A stale trace returns its resolved ledger. ok=false
// means no usable structure: full recomputation is the only option. The
// returned slices are shared immutable state — callers must not write
// through them (incr.Repair copies before writing).
func (r *GraphRegistry) Repairable(id string, digest [32]byte, src graph.NodeID) (incr.Trace, []incr.NetChange, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok || rg.head.digest != digest {
		return incr.Trace{}, nil, false
	}
	if tr, ok := rg.head.traces[src]; ok && tr.dist != nil && tr.parent != nil {
		return incr.Trace{Dist: tr.dist, Parent: tr.parent}, nil, true
	}
	if st, ok := rg.head.stale[src]; ok {
		return incr.Trace{Dist: st.dist, Parent: st.parent}, incr.NetChanges(st.base, rg.head.g), true
	}
	return incr.Trace{}, nil, false
}

// Rows snapshots the distance rows valid at the given revision digest
// (nil when the digest is stale or unknown). The rows are shared immutable
// slices — callers must not write through them.
func (r *GraphRegistry) Rows(id string, digest [32]byte) map[graph.NodeID][]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok || rg.head.digest != digest {
		return nil
	}
	out := make(map[graph.NodeID][]int64, len(rg.head.traces))
	for src, tr := range rg.head.traces {
		if src != apspTraceKey && tr.dist != nil {
			out[src] = tr.dist
		}
	}
	return out
}

// touchLocked marks a graph most-recently-used.
func (r *GraphRegistry) touchLocked(rg *regGraph) { r.lru.MoveToFront(rg.el) }

// evictLocked drops least-recently-used graphs until the budget holds,
// never evicting the graph that triggered the sweep (keep, at minimum,
// what the caller is actively using).
func (r *GraphRegistry) evictLocked(keep *regGraph) {
	if r.budget <= 0 {
		return
	}
	for r.bytes > r.budget {
		back := r.lru.Back()
		if back == nil {
			break
		}
		rg := back.Value.(*regGraph)
		if rg == keep {
			break
		}
		r.dropLocked(rg)
		r.evictions++
	}
}

func (r *GraphRegistry) dropLocked(rg *regGraph) {
	r.lru.Remove(rg.el)
	delete(r.graphs, rg.id)
	r.bytes -= rg.bytes
	r.unspillLocked(rg.id)
}

func (r *GraphRegistry) infoLocked(rg *regGraph) GraphInfo {
	info := GraphInfo{
		ID:            rg.id,
		Revision:      rg.head.num,
		Digest:        hex.EncodeToString(rg.head.digest[:]),
		N:             rg.head.g.N(),
		M:             rg.head.g.M(),
		Bytes:         rg.bytes,
		TracedSources: len(rg.head.traces),
		StaleSources:  len(rg.head.stale),
		CreatedAtNS:   rg.createdAt.UnixNano(),
	}
	if !rg.patchedAt.IsZero() {
		info.PatchedAtNS = rg.patchedAt.UnixNano()
	}
	return info
}

// RegistryStats is the registry's observable state (GET /v1/stats and the
// dsssp_graphs_* metrics).
type RegistryStats struct {
	Graphs int `json:"graphs"`
	// Revisions counts revisions ever created (registrations + patches),
	// monotonically.
	Revisions int64 `json:"revisions"`
	Evictions int64 `json:"evictions"`
	BytesUsed int64 `json:"bytes_used"`
	Budget    int64 `json:"bytes_budget"`
	// StaleTraces counts dirty sources currently awaiting repair across
	// every registered graph.
	StaleTraces int `json:"stale_traces"`
}

// Stats snapshots the registry counters.
func (r *GraphRegistry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	stale := 0
	for _, rg := range r.graphs {
		stale += len(rg.head.stale)
	}
	return RegistryStats{
		Graphs:      len(r.graphs),
		Revisions:   r.revisions,
		Evictions:   r.evictions,
		BytesUsed:   r.bytes,
		Budget:      r.budget,
		StaleTraces: stale,
	}
}
