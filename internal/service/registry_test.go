package service

import (
	"strings"
	"testing"

	"dsssp/internal/graph"
	"dsssp/internal/incr"
)

// ciGraph is the square-plus-slack-chord graph the CI smoke test also
// uses: 0-1-2-3-0 at unit weight plus {0,2} at weight 10. From source 0
// the chord is slack; from source 1 it is slack too — but *reweighting*
// the chord down to 1 dirties source 0 (0→2 improves to 1) while source 1
// provably cannot improve (its distance to both endpoints is already ≤ 1).
func ciGraph() *graph.Graph {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 1)
	g.AddEdge(0, 2, 10)
	g.SortAdj()
	return g
}

func TestRegistryRegisterIdempotent(t *testing.T) {
	r := NewGraphRegistry(1<<20, NewCache(1<<20), nil)
	info1, created := r.Register(ciGraph())
	if !created || info1.Revision != 1 {
		t.Fatalf("first register: created=%v info=%+v", created, info1)
	}
	if !strings.HasPrefix(info1.ID, "g-") {
		t.Fatalf("handle %q not content-derived", info1.ID)
	}
	info2, created := r.Register(ciGraph())
	if created || info2.ID != info1.ID {
		t.Fatalf("re-register: created=%v id=%q want %q", created, info2.ID, info1.ID)
	}
	if st := r.Stats(); st.Graphs != 1 || st.Revisions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRegistryHandleDisambiguationAfterPatch(t *testing.T) {
	r := NewGraphRegistry(1<<20, NewCache(1<<20), nil)
	info1, _ := r.Register(ciGraph())
	if _, err := r.Patch(info1.ID, []graph.EdgeDelta{{Op: graph.DeltaReweight, U: 0, V: 2, W: 1}}); err != nil {
		t.Fatal(err)
	}
	// The handle now points at different content; registering the original
	// content again must mint a fresh handle, not hijack the history.
	info2, created := r.Register(ciGraph())
	if !created || info2.ID == info1.ID {
		t.Fatalf("re-register after patch: created=%v id=%q (original %q)", created, info2.ID, info1.ID)
	}
}

func TestRegistryPatchMigratesAndInvalidates(t *testing.T) {
	cache := NewCache(1 << 20)
	r := NewGraphRegistry(1<<20, cache, nil)
	info, _ := r.Register(ciGraph())
	g, digest, _, err := r.Resolve(info.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Trace sources 0 and 1 with their exact rows and one cache entry each.
	parts := map[graph.NodeID]string{0: "sssp|src=0", 1: "sssp|src=1"}
	for _, src := range []graph.NodeID{0, 1} {
		dist := graph.Dijkstra(g, src)
		key := keyFromDigest(digest, parts[src])
		if _, _, err := cache.GetOrCompute(key, func() ([]byte, error) {
			return []byte("body-" + parts[src]), nil
		}); err != nil {
			t.Fatal(err)
		}
		r.Record(info.ID, digest, src, dist, nil, parts[src])
	}

	// Reweight the chord down to 1: dirties source 0, not source 1.
	pi, err := r.Patch(info.ID, []graph.EdgeDelta{{Op: graph.DeltaReweight, U: 0, V: 2, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if pi.Revision != 2 || pi.SourcesKept != 1 || pi.SourcesDropped != 1 {
		t.Fatalf("patch info = %+v", pi)
	}
	if pi.EntriesMigrated != 1 || pi.EntriesInvalidated != 1 {
		t.Fatalf("entry ledger = %+v", pi)
	}
	if pi.DirtyFraction != 0.5 {
		t.Fatalf("dirty fraction = %v, want 0.5", pi.DirtyFraction)
	}

	_, newDigest, rev, err := r.Resolve(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rev != 2 || newDigest == digest {
		t.Fatalf("head did not advance: rev=%d", rev)
	}
	// Source 1's entry was re-addressed to the new revision; source 0's is
	// gone under both digests.
	if body, hit, _ := cache.GetOrCompute(keyFromDigest(newDigest, parts[1]), nope(t)); !hit || string(body) != "body-sssp|src=1" {
		t.Fatalf("untouched source's entry not migrated: hit=%v body=%q", hit, body)
	}
	if _, hit, _ := cache.GetOrCompute(keyFromDigest(newDigest, parts[0]), miss()); hit {
		t.Fatal("dirty source's entry reachable under the new revision")
	}
	if _, hit, _ := cache.GetOrCompute(keyFromDigest(digest, parts[0]), miss()); hit {
		t.Fatal("dirty source's entry still resident under the old revision")
	}
}

// nope fails the test if the computation runs (the entry must be a hit).
func nope(t *testing.T) func() ([]byte, error) {
	return func() ([]byte, error) {
		t.Helper()
		t.Error("expected a cache hit, computation ran")
		return []byte("computed"), nil
	}
}

// miss is a sentinel computation for presence probes.
func miss() func() ([]byte, error) {
	return func() ([]byte, error) { return []byte("probe"), nil }
}

func TestRegistryWholeAPSPBodySurvival(t *testing.T) {
	cache := NewCache(1 << 20)
	r := NewGraphRegistry(1<<20, cache, nil)
	info, _ := r.Register(ciGraph())
	g, digest, _, _ := r.Resolve(info.ID)

	// Trace all four sources plus the whole-APSP body.
	rows := make(map[graph.NodeID]incr.Trace, g.N())
	for s := 0; s < g.N(); s++ {
		rows[graph.NodeID(s)] = incr.Trace{Dist: graph.Dijkstra(g, graph.NodeID(s))}
	}
	const apspParts = "apsp|seed=0"
	cache.GetOrCompute(keyFromDigest(digest, apspParts), miss())
	r.RecordRows(info.ID, digest, rows, apspParts)

	// An increase of the slack chord touches no source at all: every trace
	// and the whole-APSP body survive into revision 2.
	pi, err := r.Patch(info.ID, []graph.EdgeDelta{{Op: graph.DeltaReweight, U: 0, V: 2, W: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if pi.SourcesDropped != 0 || pi.SourcesKept != 4 {
		t.Fatalf("slack increase dirtied sources: %+v", pi)
	}
	_, d2, _, _ := r.Resolve(info.ID)
	if _, hit, _ := cache.GetOrCompute(keyFromDigest(d2, apspParts), miss()); !hit {
		t.Fatal("whole-APSP body not migrated despite all sources untouched")
	}

	// Deleting a tight edge dirties some source → the APSP body must go.
	if _, err := r.Patch(info.ID, []graph.EdgeDelta{{Op: graph.DeltaDelete, U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	_, d3, _, _ := r.Resolve(info.ID)
	if _, hit, _ := cache.GetOrCompute(keyFromDigest(d3, apspParts), miss()); hit {
		t.Fatal("whole-APSP body survived a dirtying patch")
	}
}

func TestRegistryEvictionLRU(t *testing.T) {
	// Budget sized for exactly two ciGraph-scale graphs.
	one := graphBytes(ciGraph())
	r := NewGraphRegistry(2*one+one/2, NewCache(1<<20), nil)

	mk := func(extraW int64) *graph.Graph {
		g := graph.New(4)
		g.AddEdge(0, 1, 1)
		g.AddEdge(1, 2, 1)
		g.AddEdge(2, 3, 1)
		g.AddEdge(0, 3, 1)
		g.AddEdge(0, 2, 10+extraW) // distinct content per graph
		g.SortAdj()
		return g
	}
	a, _ := r.Register(mk(0))
	b, _ := r.Register(mk(1))
	c, _ := r.Register(mk(2))
	if st := r.Stats(); st.Graphs != 2 || st.Evictions != 1 {
		t.Fatalf("stats after third register = %+v", st)
	}
	if _, ok := r.Get(a.ID); ok {
		t.Fatal("LRU graph survived the eviction sweep")
	}
	for _, id := range []string{b.ID, c.ID} {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("recently-used graph %s evicted", id)
		}
	}
	// Touch b (making c the LRU), register a fourth: c must go, b stays.
	if _, _, _, err := r.Resolve(b.ID); err != nil {
		t.Fatal(err)
	}
	d, _ := r.Register(mk(3))
	if _, ok := r.Get(c.ID); ok {
		t.Fatal("LRU graph c survived")
	}
	if _, ok := r.Get(b.ID); !ok {
		t.Fatal("recently-touched b evicted instead of LRU")
	}
	if _, ok := r.Get(d.ID); !ok {
		t.Fatal("the graph that triggered the sweep was evicted")
	}
}

func TestRegistryTraceAdmissionBudget(t *testing.T) {
	// Budget barely above the bare graph: trace admission must stop rather
	// than evict the graph out from under itself.
	g := ciGraph()
	r := NewGraphRegistry(graphBytes(g)+traceBytes(make([]int64, 4), nil)+8, NewCache(1<<20), nil)
	info, _ := r.Register(g)
	_, digest, _, _ := r.Resolve(info.ID)
	for s := 0; s < 4; s++ {
		r.Record(info.ID, digest, graph.NodeID(s), graph.Dijkstra(g, graph.NodeID(s)), nil, "")
	}
	got, _ := r.Get(info.ID)
	if got.TracedSources != 1 {
		t.Fatalf("traced %d sources under a one-trace budget", got.TracedSources)
	}
	if st := r.Stats(); st.BytesUsed > st.Budget {
		t.Fatalf("budget overrun: %+v", st)
	}
	// The graph itself must still be resident and resolvable.
	if _, _, _, err := r.Resolve(info.ID); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryRecordStaleDigestDropped(t *testing.T) {
	r := NewGraphRegistry(1<<20, NewCache(1<<20), nil)
	info, _ := r.Register(ciGraph())
	g, oldDigest, _, _ := r.Resolve(info.ID)
	if _, err := r.Patch(info.ID, []graph.EdgeDelta{{Op: graph.DeltaReweight, U: 0, V: 2, W: 1}}); err != nil {
		t.Fatal(err)
	}
	// A computation that raced the patch reports against the old digest:
	// silently dropped, never attached to the new head.
	r.Record(info.ID, oldDigest, 0, graph.Dijkstra(g, 0), nil, "sssp|src=0")
	got, _ := r.Get(info.ID)
	if got.TracedSources != 0 {
		t.Fatalf("stale-digest record attached to the new head: %+v", got)
	}
}
