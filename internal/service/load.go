package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"dsssp/internal/obs/trace"
)

// LoadOptions tunes the service-load workload: Concurrency clients fire
// Requests total POST /v1/sssp queries drawn round-robin from Graphs
// distinct generator specs of size N. With Requests >> Graphs the steady
// state is cache-hit dominated, so the measured throughput is the serving
// layer's — not the simulator's.
type LoadOptions struct {
	Concurrency int `json:"concurrency"`
	Requests    int `json:"requests"`
	Graphs      int `json:"graphs"`
	N           int `json:"n"`
}

func (o *LoadOptions) applyDefaults() {
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.Graphs <= 0 {
		o.Graphs = 4
	}
	if o.N <= 0 {
		o.N = 48
	}
}

// LoadReport is the service-load outcome.
type LoadReport struct {
	Options  LoadOptions `json:"options"`
	Requests int         `json:"requests"`
	// Hits/Misses count the X-Dsssp-Cache verdicts; HitRate = Hits/Requests.
	Hits    int     `json:"hits"`
	Misses  int     `json:"misses"`
	Errors  int     `json:"errors"`
	HitRate float64 `json:"hit_rate"`
	WallNS  int64   `json:"wall_ns"`
	// RPS is end-to-end request throughput over the run.
	RPS float64 `json:"rps"`
	// P50NS / P99NS are client-observed per-request latency percentiles.
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`
	// P99Traces are the trace IDs of the slowest requests (at or above
	// the p99), slowest first — each load run mints a traceparent per
	// request, so a bad percentile is directly drillable in the server's
	// /debug/traces instead of being an anonymous number.
	P99Traces []TraceRef `json:"p99_traces,omitempty"`
	// FirstError carries one representative failure for diagnosis.
	FirstError string `json:"first_error,omitempty"`
}

// TraceRef points a load-report outlier at a concrete server-side trace
// in the flight recorder.
type TraceRef struct {
	TraceID   string `json:"trace_id"`
	LatencyNS int64  `json:"latency_ns"`
	// Served records how the request was answered (hit/miss for the
	// static workload; reused/repaired/recomputed for the dynamic one).
	Served string `json:"served,omitempty"`
}

// p99TraceRefs returns the sample's p99 and the refs at or above it,
// slowest first, capped so a report stays a report (the full recorder is
// one /debug/traces call away).
func p99TraceRefs(samples []TraceRef) (p99 int64, slowest []TraceRef) {
	const maxRefs = 5
	if len(samples) == 0 {
		return 0, nil
	}
	sorted := make([]TraceRef, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].LatencyNS > sorted[b].LatencyNS })
	p99 = sorted[(len(sorted)-1)-int(0.99*float64(len(sorted)-1))].LatencyNS
	for _, s := range sorted {
		if s.LatencyNS < p99 || len(slowest) == maxRefs {
			break
		}
		slowest = append(slowest, s)
	}
	return p99, slowest
}

// RunLoad hammers a running server with concurrent SSSP queries and
// measures cache-hit throughput. client may be nil (http.DefaultClient).
func RunLoad(ctx context.Context, client *http.Client, baseURL string, opt LoadOptions) (LoadReport, error) {
	opt.applyDefaults()
	if client == nil {
		client = http.DefaultClient
	}
	bodies := make([][]byte, opt.Graphs)
	for i := range bodies {
		b, err := json.Marshal(SSSPRequest{
			Graph: GraphSpec{
				Family: "random", N: opt.N, Seed: int64(i + 1),
				Weights: &WeightSpec{Kind: "uniform", MaxW: int64(opt.N)},
			},
		})
		if err != nil {
			return LoadReport{}, err
		}
		bodies[i] = b
	}

	var (
		mu      sync.Mutex
		rep     = LoadReport{Options: opt, Requests: opt.Requests}
		samples []TraceRef
		wg      sync.WaitGroup
	)
	idx := make(chan int)
	start := time.Now()
	for c := 0; c < opt.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				reqStart := time.Now()
				hit, _, traceID, err := oneLoadRequest(ctx, client, baseURL, bodies[i%len(bodies)])
				latNS := time.Since(reqStart).Nanoseconds()
				mu.Lock()
				switch {
				case err != nil:
					rep.Errors++
					if rep.FirstError == "" {
						rep.FirstError = err.Error()
					}
				case hit:
					rep.Hits++
				default:
					rep.Misses++
				}
				if err == nil {
					served := "miss"
					if hit {
						served = "hit"
					}
					samples = append(samples, TraceRef{TraceID: traceID, LatencyNS: latNS, Served: served})
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < opt.Requests; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			i = opt.Requests // stop dispatching; workers drain
		}
	}
	close(idx)
	wg.Wait()
	rep.WallNS = time.Since(start).Nanoseconds()
	rep.Requests = rep.Hits + rep.Misses + rep.Errors
	if rep.Requests > 0 {
		rep.HitRate = float64(rep.Hits) / float64(rep.Requests)
	}
	if rep.WallNS > 0 {
		rep.RPS = float64(rep.Requests) / (float64(rep.WallNS) / 1e9)
	}
	if len(samples) > 0 {
		lats := make([]time.Duration, len(samples))
		for i, s := range samples {
			lats[i] = time.Duration(s.LatencyNS)
		}
		rep.P50NS, _ = percentiles(lats)
		rep.P99NS, rep.P99Traces = p99TraceRefs(samples)
	}
	return rep, ctx.Err()
}

// oneLoadRequest fires a single SSSP query and reports how it was
// served: hit is the X-Dsssp-Cache verdict, incr is the X-Dsssp-Incr
// verdict ("repaired"/"recomputed", empty off the registered path).
// Each request carries a freshly minted traceparent so its server-side
// span tree is addressable in the flight recorder by the returned
// traceID — that is what turns a p99 number into a p99 explanation.
func oneLoadRequest(ctx context.Context, client *http.Client, baseURL string, body []byte) (hit bool, incr, traceID string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/sssp", bytes.NewReader(body))
	if err != nil {
		return false, "", "", err
	}
	req.Header.Set("Content-Type", "application/json")
	sc := trace.MintContext()
	req.Header.Set(trace.TraceparentHeader, sc.Traceparent())
	traceID = sc.TraceID.String()
	resp, err := client.Do(req)
	if err != nil {
		return false, "", traceID, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, "", traceID, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, "", traceID, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(payload))
	}
	return resp.Header.Get("X-Dsssp-Cache") == "hit", resp.Header.Get("X-Dsssp-Incr"), traceID, nil
}
