package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// LoadOptions tunes the service-load workload: Concurrency clients fire
// Requests total POST /v1/sssp queries drawn round-robin from Graphs
// distinct generator specs of size N. With Requests >> Graphs the steady
// state is cache-hit dominated, so the measured throughput is the serving
// layer's — not the simulator's.
type LoadOptions struct {
	Concurrency int `json:"concurrency"`
	Requests    int `json:"requests"`
	Graphs      int `json:"graphs"`
	N           int `json:"n"`
}

func (o *LoadOptions) applyDefaults() {
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.Graphs <= 0 {
		o.Graphs = 4
	}
	if o.N <= 0 {
		o.N = 48
	}
}

// LoadReport is the service-load outcome.
type LoadReport struct {
	Options  LoadOptions `json:"options"`
	Requests int         `json:"requests"`
	// Hits/Misses count the X-Dsssp-Cache verdicts; HitRate = Hits/Requests.
	Hits    int     `json:"hits"`
	Misses  int     `json:"misses"`
	Errors  int     `json:"errors"`
	HitRate float64 `json:"hit_rate"`
	WallNS  int64   `json:"wall_ns"`
	// RPS is end-to-end request throughput over the run.
	RPS float64 `json:"rps"`
	// FirstError carries one representative failure for diagnosis.
	FirstError string `json:"first_error,omitempty"`
}

// RunLoad hammers a running server with concurrent SSSP queries and
// measures cache-hit throughput. client may be nil (http.DefaultClient).
func RunLoad(ctx context.Context, client *http.Client, baseURL string, opt LoadOptions) (LoadReport, error) {
	opt.applyDefaults()
	if client == nil {
		client = http.DefaultClient
	}
	bodies := make([][]byte, opt.Graphs)
	for i := range bodies {
		b, err := json.Marshal(SSSPRequest{
			Graph: GraphSpec{
				Family: "random", N: opt.N, Seed: int64(i + 1),
				Weights: &WeightSpec{Kind: "uniform", MaxW: int64(opt.N)},
			},
		})
		if err != nil {
			return LoadReport{}, err
		}
		bodies[i] = b
	}

	var (
		mu  sync.Mutex
		rep = LoadReport{Options: opt, Requests: opt.Requests}
		wg  sync.WaitGroup
	)
	idx := make(chan int)
	start := time.Now()
	for c := 0; c < opt.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				hit, _, err := oneLoadRequest(ctx, client, baseURL, bodies[i%len(bodies)])
				mu.Lock()
				switch {
				case err != nil:
					rep.Errors++
					if rep.FirstError == "" {
						rep.FirstError = err.Error()
					}
				case hit:
					rep.Hits++
				default:
					rep.Misses++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < opt.Requests; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			i = opt.Requests // stop dispatching; workers drain
		}
	}
	close(idx)
	wg.Wait()
	rep.WallNS = time.Since(start).Nanoseconds()
	rep.Requests = rep.Hits + rep.Misses + rep.Errors
	if rep.Requests > 0 {
		rep.HitRate = float64(rep.Hits) / float64(rep.Requests)
	}
	if rep.WallNS > 0 {
		rep.RPS = float64(rep.Requests) / (float64(rep.WallNS) / 1e9)
	}
	return rep, ctx.Err()
}

// oneLoadRequest fires a single SSSP query and reports how it was
// served: hit is the X-Dsssp-Cache verdict, incr is the X-Dsssp-Incr
// verdict ("repaired"/"recomputed", empty off the registered path).
func oneLoadRequest(ctx context.Context, client *http.Client, baseURL string, body []byte) (hit bool, incr string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/sssp", bytes.NewReader(body))
	if err != nil {
		return false, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false, "", err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return false, "", fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(payload))
	}
	return resp.Header.Get("X-Dsssp-Cache") == "hit", resp.Header.Get("X-Dsssp-Incr"), nil
}
