package service

import (
	"encoding/json"
	"testing"

	"dsssp/internal/graph"
)

// TestWeightSeedContract pins the spec-seed contract: the weight stream
// folds every spec axis (family, n, weight kind, max_w) in with the
// structure seed, so specs differing in any axis — even under the shared
// omitted-seed default 0 — draw distinct weight streams, and the exact
// derivation is frozen (changing it would silently repoint every cached
// generator-spec result).
func TestWeightSeedContract(t *testing.T) {
	base := GraphSpec{Family: "random", N: 32, Seed: 0, Weights: &WeightSpec{Kind: "uniform", MaxW: 32}}

	// Frozen derivation: these constants ARE the wire contract.
	if got := weightSeed(base); got != -876701056665859529 {
		t.Fatalf("weightSeed(random/32/uniform/32/seed=0) = %d, want -876701056665859529 (derivation changed?)", got)
	}
	expander := base
	expander.Family = "expander"
	if got := weightSeed(expander); got != -714274277480059329 {
		t.Fatalf("weightSeed(expander/32/uniform/32/seed=0) = %d, want -714274277480059329 (derivation changed?)", got)
	}

	// Determinism: the same spec always names the same stream.
	if weightSeed(base) != weightSeed(base) {
		t.Fatal("weightSeed is not deterministic")
	}

	// Distinctness along every axis, seed held at the default 0.
	seen := map[int64]string{weightSeed(base): "base"}
	for name, mut := range map[string]func(*GraphSpec){
		"family": func(s *GraphSpec) { s.Family = "expander" },
		"n":      func(s *GraphSpec) { s.N = 64 },
		"kind":   func(s *GraphSpec) { s.Weights = &WeightSpec{Kind: "zero-heavy", MaxW: 32} },
		"max_w":  func(s *GraphSpec) { s.Weights = &WeightSpec{Kind: "uniform", MaxW: 64} },
		"seed":   func(s *GraphSpec) { s.Seed = 1 },
	} {
		spec := base
		mut(&spec)
		ws := weightSeed(spec)
		if prev, dup := seen[ws]; dup {
			t.Errorf("weightSeed collides between %q and %q (%d)", name, prev, ws)
		}
		seen[ws] = name
	}

	// End to end: same n, same bare seed, different family ⇒ different
	// uniform weight multisets (the aliasing the fold exists to prevent).
	gr, err := buildGeneratorGraph(base, 4096)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := buildGeneratorGraph(expander, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if weightMultiset(gr)["sum"] == weightMultiset(ge)["sum"] && weightMultiset(gr)["xor"] == weightMultiset(ge)["xor"] {
		t.Fatal("random and expander specs sharing seed 0 drew indistinguishable weight streams")
	}
}

func weightMultiset(g *graph.Graph) map[string]int64 {
	var sum, xor int64
	for _, e := range g.Edges() {
		sum += e.W
		xor ^= e.W * 1099511628211
	}
	return map[string]int64{"sum": sum, "xor": xor}
}

// TestQueryKeyIgnoresWorkers pins the cache-key contract for the
// intra-round parallelism knob: QueryOptions.Workers cannot change
// response bytes, so it must not split cache entries.
func TestQueryKeyIgnoresWorkers(t *testing.T) {
	g := graph.Path(8, graph.UnitWeights)
	for _, o := range []QueryOptions{
		{},
		{Model: "sleeping", EpsNum: 1, EpsDen: 4},
		{StrictCongest: true, RecordPhases: true},
	} {
		seq := o
		seq.Workers = 0
		par := o
		par.Workers = 8
		if queryKey("sssp", g, seq, "src=0") != queryKey("sssp", g, par, "src=0") {
			t.Fatalf("queryKey differs across Workers for options %+v", o)
		}
	}
}

// TestParallelQueryBytesMatchSequential runs the same query against a
// server that forces sequential simulation and one allowed to honor the
// parallel request, asserting byte-identical response bodies — the
// property that justifies keeping Workers out of the cache key.
func TestParallelQueryBytesMatchSequential(t *testing.T) {
	seqSrv, err := New(Config{HistoryDir: t.TempDir(), Workers: 2, MaxIntraWorkers: 1, Rev: "test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(seqSrv.Close)
	parSrv, err := New(Config{HistoryDir: t.TempDir(), Workers: 2, MaxIntraWorkers: 4, Rev: "test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(parSrv.Close)

	body := `{"graph":{"family":"expander","n":48,"seed":5,"weights":{"kind":"uniform","max_w":48}},"source":3,"options":{"record_phases":true,"workers":4}}`
	ws := do(t, seqSrv, "POST", "/v1/sssp", body)
	wp := do(t, parSrv, "POST", "/v1/sssp", body)
	if ws.Code != 200 || wp.Code != 200 {
		t.Fatalf("status sequential=%d parallel=%d", ws.Code, wp.Code)
	}
	if ws.Body.String() != wp.Body.String() {
		t.Fatalf("parallel simulation changed response bytes:\nsequential: %s\nparallel:   %s", ws.Body.String(), wp.Body.String())
	}

	// And on one server, a request differing only in workers is the same
	// computation: the second is a cache hit serving the first's bytes.
	again := do(t, parSrv, "POST", "/v1/sssp",
		`{"graph":{"family":"expander","n":48,"seed":5,"weights":{"kind":"uniform","max_w":48}},"source":3,"options":{"record_phases":true}}`)
	if again.Header().Get("X-Dsssp-Cache") != "hit" {
		t.Fatal("request differing only in options.workers missed the cache")
	}
	if again.Body.String() != wp.Body.String() {
		t.Fatal("cache hit served different bytes")
	}

	// Out-of-range worker requests are the client's fault.
	bad := do(t, parSrv, "POST", "/v1/sssp", `{"graph":{"family":"path","n":8},"options":{"workers":-1}}`)
	if bad.Code != 400 {
		t.Fatalf("negative workers: status %d, want 400", bad.Code)
	}
	var e ErrorResponse
	if err := json.Unmarshal(bad.Body.Bytes(), &e); err != nil {
		t.Fatalf("non-JSON 400 body: %v", err)
	}
}
