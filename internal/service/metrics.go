package service

import (
	"strings"

	"dsssp/internal/harness"
	"dsssp/internal/obs"
)

// serverMetrics is the server's telemetry surface, rendered at
// GET /metrics. Event-shaped signals are counters/histograms updated
// inline on the hot paths; level-shaped signals owned by other subsystems
// (cache occupancy, history size) are read at scrape time from those
// subsystems' own stats, so there is exactly one source of truth per
// number — /v1/stats and /metrics can never disagree.
type serverMetrics struct {
	reg *obs.Registry

	// HTTP surface.
	requests *obs.CounterVec   // endpoint, code
	latency  *obs.HistogramVec // endpoint
	inFlight *obs.GaugeVec     // endpoint

	// Query worker pool.
	queueDepth *obs.Gauge     // requests waiting for a worker slot
	poolBusy   *obs.Gauge     // worker slots currently held
	queueWait  *obs.Histogram // seconds spent waiting for a slot

	// Per-phase round distribution (the paper's envelope structure, per
	// live query): one histogram series per pipeline phase key.
	phaseRounds *obs.HistogramVec // phase

	// Sweep-job lifecycle.
	jobsActive   *obs.GaugeVec   // state ∈ {queued, running}
	jobsFinished *obs.CounterVec // state ∈ {done, failed, cancelled}

	slowQueries *obs.Counter

	// Dynamic-graph (registered) serving path: per-source reuse outcomes
	// and the per-PATCH classification ledger.
	incrSourcesReused      *obs.Counter
	incrSourcesRecomputed  *obs.Counter
	incrEntriesMigrated    *obs.Counter
	incrEntriesInvalidated *obs.Counter
	patchDirtyFraction     *obs.Histogram

	// Affected-region repair: dirty sources rebuilt from their stale trace
	// instead of recomputed from scratch, the fraction of the graph each
	// repair touched, its wall time, and how often repair declined
	// (no trace, or over the affected-fraction cutoff).
	incrSourcesRepaired    *obs.Counter
	incrRepairFallbacks    *obs.Counter
	repairAffectedFraction *obs.Histogram
	repairSeconds          *obs.Histogram

	// Per-phase wall-time split of successful repairs (carve/seed/settle/
	// witness) — the served:"repaired" counterpart of phaseRounds, so a
	// repaired query has a breakdown story like a computed one.
	repairPhaseSeconds *obs.HistogramVec // phase
}

func newServerMetrics(cfg *Config, cache *Cache, store *Store, registry *GraphRegistry) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{
		reg: r,
		requests: r.CounterVec("dsssp_http_requests_total",
			"HTTP requests served, by endpoint and status code.", "endpoint", "code"),
		latency: r.HistogramVec("dsssp_http_request_duration_seconds",
			"End-to-end request latency in seconds, by endpoint.", obs.LatencyBuckets, "endpoint"),
		inFlight: r.GaugeVec("dsssp_http_in_flight",
			"Requests currently being served, by endpoint.", "endpoint"),
		queueDepth: r.Gauge("dsssp_query_queue_depth",
			"Query requests waiting for a worker-pool slot."),
		poolBusy: r.Gauge("dsssp_query_pool_busy",
			"Worker-pool slots currently executing a query."),
		queueWait: r.Histogram("dsssp_query_queue_wait_seconds",
			"Seconds a query miss waited for a worker-pool slot.", obs.LatencyBuckets),
		phaseRounds: r.HistogramVec("dsssp_phase_rounds",
			"Per-query simulated rounds attributed to each pipeline phase.",
			obs.ExpBuckets(1, 2, 18), "phase"),
		jobsActive: r.GaugeVec("dsssp_sweep_jobs_active",
			"Sweep jobs currently queued or running, by state.", "state"),
		jobsFinished: r.CounterVec("dsssp_sweep_jobs_finished_total",
			"Sweep jobs reaching a terminal state, by state.", "state"),
		slowQueries: r.Counter("dsssp_slow_queries_total",
			"Requests slower than the configured slow-query threshold."),
		incrSourcesReused: r.Counter("dsssp_incr_sources_reused_total",
			"Registered-graph per-source results served from cache/traces without recomputation."),
		incrSourcesRecomputed: r.Counter("dsssp_incr_sources_recomputed_total",
			"Registered-graph per-source results that had to be recomputed."),
		incrEntriesMigrated: r.Counter("dsssp_incr_entries_migrated_total",
			"Result-cache entries re-addressed to a new graph revision on PATCH (untouched sources)."),
		incrEntriesInvalidated: r.Counter("dsssp_incr_entries_invalidated_total",
			"Result-cache entries invalidated on PATCH (dirty sources)."),
		patchDirtyFraction: r.Histogram("dsssp_incr_patch_dirty_fraction",
			"Per-PATCH fraction of traced sources classified dirty (recompute-needed).",
			[]float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}),
		incrSourcesRepaired: r.Counter("dsssp_incr_sources_repaired_total",
			"Dirty sources served by affected-region repair of a stale trace (no full recomputation)."),
		incrRepairFallbacks: r.Counter("dsssp_incr_repair_fallbacks_total",
			"Repair attempts that fell back to full recomputation (affected region over the cutoff)."),
		repairAffectedFraction: r.Histogram("dsssp_incr_affected_fraction",
			"Per-repair fraction of vertices whose label was rebuilt.",
			[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1}),
		repairSeconds: r.Histogram("dsssp_incr_repair_seconds",
			"Wall seconds spent in affected-region repair (successful or abandoned).",
			obs.LatencyBuckets),
		repairPhaseSeconds: r.HistogramVec("dsssp_repair_phase_seconds",
			"Wall seconds a successful repair spent in each phase (carve, seed, settle, witness).",
			obs.ExpBuckets(1e-6, 4, 12), "phase"),
	}
	r.Gauge("dsssp_query_pool_workers", "Configured worker-pool size.").Set(int64(cfg.Workers))
	r.GaugeFunc("dsssp_graphs_registered",
		"Graphs currently resident in the dynamic-graph registry.",
		func() float64 { return float64(registry.Stats().Graphs) })
	r.CounterFunc("dsssp_graph_revisions_total",
		"Graph revisions ever created (registrations plus PATCHes).",
		func() float64 { return float64(registry.Stats().Revisions) })
	r.CounterFunc("dsssp_graph_evictions_total",
		"Registered graphs evicted under the registry byte budget.",
		func() float64 { return float64(registry.Stats().Evictions) })
	r.GaugeFunc("dsssp_graph_registry_bytes",
		"Approximate resident bytes of registered graphs and their traces.",
		func() float64 { return float64(registry.Stats().BytesUsed) })

	// Cache and store counters live in their subsystems (they predate the
	// registry and also feed /v1/stats); surface them at scrape time.
	r.CounterFunc("dsssp_cache_hits_total",
		"Result-cache hits, including singleflight-shared computations.",
		func() float64 { return float64(cache.Stats().Hits) })
	r.CounterFunc("dsssp_cache_misses_total",
		"Result-cache misses (computations actually run).",
		func() float64 { return float64(cache.Stats().Misses) })
	r.CounterFunc("dsssp_cache_evictions_total",
		"Result-cache LRU evictions under the byte budget.",
		func() float64 { return float64(cache.Stats().Evictions) })
	r.CounterFunc("dsssp_cache_singleflight_dedup_total",
		"Concurrent identical misses served by another request's in-flight computation.",
		func() float64 { return float64(cache.Stats().SingleflightDedup) })
	r.GaugeFunc("dsssp_cache_entries",
		"Result-cache entries resident.",
		func() float64 { return float64(cache.Stats().Entries) })
	r.GaugeFunc("dsssp_cache_bytes_used",
		"Result-cache bytes resident.",
		func() float64 { return float64(cache.Stats().BytesUsed) })
	r.GaugeFunc("dsssp_cache_bytes_budget",
		"Result-cache byte budget.",
		func() float64 { return float64(cache.Stats().Budget) })
	r.CounterFunc("dsssp_store_appends_total",
		"Sweep reports appended to the history store by this process.",
		func() float64 { return float64(store.Appends()) })
	r.CounterFunc("dsssp_store_append_bytes_total",
		"Bytes of sweep reports appended by this process.",
		func() float64 { return float64(store.AppendBytes()) })
	r.GaugeFunc("dsssp_store_reports",
		"Report files in the history directory (scrape-time directory scan).",
		func() float64 { st, _ := store.Stats(); return float64(st.Reports) })
	r.GaugeFunc("dsssp_store_bytes",
		"Total bytes of report files in the history directory.",
		func() float64 { st, _ := store.Stats(); return float64(st.Bytes) })
	return m
}

// observePhases feeds one query's per-phase round breakdown into the
// per-phase histograms — the bridge from the span ledger (PR 4) to the
// scrape surface. Called once per computed (not cached) query. traceID,
// when non-empty (the query was sampled), rides along as each bucket's
// exemplar so a dashboard outlier deep-links into /debug/traces.
func (m *serverMetrics) observePhases(phases []harness.PhaseStat, traceID string) {
	for _, ph := range phases {
		if ph.Rounds > 0 {
			m.phaseRounds.With(ph.Phase).ObserveExemplar(float64(ph.Rounds), traceID)
		}
	}
}

// endpointLabel maps a request path to a bounded label vocabulary so an
// attacker spraying random paths cannot mint unbounded metric series.
func endpointLabel(path string) string {
	switch path {
	case "/v1/sssp", "/v1/apsp", "/v1/path", "/v1/sweeps", "/v1/trends", "/v1/stats", "/v1/graphs":
		return strings.TrimPrefix(path, "/v1/")
	case "/healthz":
		return "healthz"
	case "/metrics":
		return "metrics"
	}
	if strings.HasPrefix(path, "/v1/sweeps/") {
		return "sweeps/{id}"
	}
	if strings.HasPrefix(path, "/v1/graphs/") {
		return "graphs/{id}"
	}
	return "other"
}
