package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dsssp/internal/benchdiff"
)

// TestEndToEnd is the acceptance test for the serving layer, run against a
// real httptest server (and under -race in CI): concurrent identical
// queries dedup into cache hits with byte-identical responses, a sweep job
// survives submit → progress → completion and lands its report in the
// history store, and /v1/trends over the stored history agrees with
// internal/benchdiff run pairwise.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep test")
	}
	srv := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	t.Run("concurrent-identical-queries", func(t *testing.T) { e2eConcurrentQueries(t, ts) })
	t.Run("sweep-job-lifecycle", func(t *testing.T) { e2eSweepJob(t, ts, srv, 0) })
	t.Run("second-sweep-and-trends", func(t *testing.T) {
		e2eSweepJob(t, ts, srv, 1)
		e2eTrends(t, ts, srv)
	})
	t.Run("sweep-cancellation", func(t *testing.T) { e2eSweepCancel(t, ts) })
	t.Run("service-load", func(t *testing.T) { e2eLoad(t, ts) })
}

func e2eConcurrentQueries(t *testing.T, ts *httptest.Server) {
	const clients = 8
	body := `{"graph":{"family":"expander","n":48,"seed":5,"weights":{"kind":"uniform","max_w":48}},"source":3}`
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
		hits   int
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sssp", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			payload, err := io.ReadAll(resp.Body)
			if err != nil || resp.StatusCode != 200 {
				t.Errorf("status %d err %v: %s", resp.StatusCode, err, payload)
				return
			}
			mu.Lock()
			bodies = append(bodies, payload)
			if resp.Header.Get("X-Dsssp-Cache") == "hit" {
				hits++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(bodies) != clients {
		t.Fatalf("only %d/%d responses", len(bodies), clients)
	}
	if hits < 1 {
		t.Fatal("no cache hits across concurrent identical requests")
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs byte-wise from response 0", i)
		}
	}
}

// e2eSweepPatterns is the tiny quick-suite subset the sweep jobs run.
var e2eSweepPatterns = []string{"congest-bellman-ford/random/*", "congest-dijkstra/random/*"}

func e2eSweepJob(t *testing.T, ts *httptest.Server, srv *Server, priorReports int) {
	payload, _ := json.Marshal(SweepRequest{Patterns: e2eSweepPatterns, Quick: true, Parallel: 2})
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var job JobStatus
	mustDecode(t, resp, http.StatusAccepted, &job)
	if job.ID == "" || (job.State != JobQueued && job.State != JobRunning) {
		t.Fatalf("submitted job = %+v", job)
	}

	job = waitForJob(t, ts, job.ID, 60*time.Second)
	if job.State != JobDone {
		t.Fatalf("job finished in state %q (error %q)", job.State, job.Error)
	}
	if job.Done != job.Total || job.Total == 0 || job.Failures != 0 {
		t.Fatalf("job progress = %+v", job)
	}
	if job.StartedAt == nil || job.FinishedAt == nil || job.Report == "" {
		t.Fatalf("job bookkeeping = %+v", job)
	}

	// The report landed in the history store and is loadable.
	entries, err := srv.Store().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != priorReports+1 {
		t.Fatalf("history has %d reports, want %d", len(entries), priorReports+1)
	}
	rep, err := srv.Store().Load(job.Report)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenarios != job.Total || rep.Failures != 0 || !rep.Quick {
		t.Fatalf("stored report = scenarios %d failures %d quick %v", rep.Scenarios, rep.Failures, rep.Quick)
	}
}

func waitForJob(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var job JobStatus
		mustDecode(t, resp, http.StatusOK, &job)
		switch job.State {
		case JobDone, JobFailed, JobCancelled:
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q after %v (%d/%d)", id, job.State, timeout, job.Done, job.Total)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func e2eTrends(t *testing.T, ts *httptest.Server, srv *Server) {
	resp, err := http.Get(ts.URL + "/v1/trends")
	if err != nil {
		t.Fatal(err)
	}
	var trend benchdiff.Trend
	mustDecode(t, resp, http.StatusOK, &trend)
	if trend.Schema != benchdiff.TrendSchema || len(trend.Labels) != 2 || len(trend.Steps) != 1 {
		t.Fatalf("trend = schema %q labels %v steps %+v", trend.Schema, trend.Labels, trend.Steps)
	}
	if !trend.OK || !trend.Steps[0].OK {
		t.Fatalf("identical back-to-back sweeps must not regress: %+v", trend.Steps)
	}

	// Consistency with benchdiff run pairwise over the same stored files.
	entries, err := srv.Store().List()
	if err != nil || len(entries) != 2 {
		t.Fatalf("history entries = %v (err %v)", entries, err)
	}
	old, err := srv.Store().Load(entries[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	new_, err := srv.Store().Load(entries[1].Name)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := benchdiff.Compare(old, new_, benchdiff.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, delta := range diff.Deltas {
		var st *benchdiff.ScenarioTrend
		for i := range trend.Scenarios {
			if trend.Scenarios[i].Scenario == delta.Scenario {
				st = &trend.Scenarios[i]
			}
		}
		if st == nil {
			t.Fatalf("scenario %q missing from the trend", delta.Scenario)
		}
		for _, md := range delta.Metrics {
			series := append(append([]benchdiff.TrendSeries(nil), st.Metrics...), st.Phases...)
			for _, s := range series {
				if s.Metric != md.Metric {
					continue
				}
				if s.Ratios[0] != md.OldRatio || s.Ratios[1] != md.NewRatio {
					t.Fatalf("%s/%s: trend ratios (%v, %v) disagree with pairwise benchdiff (%v, %v)",
						delta.Scenario, md.Metric, s.Ratios[0], s.Ratios[1], md.OldRatio, md.NewRatio)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no overlapping metrics checked between trend and pairwise diff")
	}

	// The markdown rendering serves too.
	resp, err = http.Get(ts.URL + "/v1/trends?format=markdown")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	md, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !bytes.Contains(md, []byte("# Bench trends")) {
		t.Fatalf("markdown trends: %d %s", resp.StatusCode, md)
	}
}

func e2eSweepCancel(t *testing.T, ts *httptest.Server) {
	// A full (non-quick) whole-suite sweep takes long enough to cancel.
	payload, _ := json.Marshal(SweepRequest{Quick: false, Parallel: 1})
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var job JobStatus
	mustDecode(t, resp, http.StatusAccepted, &job)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+job.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	mustDecode(t, resp, http.StatusOK, &job)

	job = waitForJob(t, ts, job.ID, 60*time.Second)
	if job.State != JobCancelled {
		t.Fatalf("cancelled job ended as %q (error %q)", job.State, job.Error)
	}
	if job.Report != "" {
		t.Fatal("cancelled job must not store a partial report")
	}
	if job.Error == "" || !strings.Contains(job.Error, "cancel") {
		t.Fatalf("cancelled job error %q is not descriptive", job.Error)
	}
}

func e2eLoad(t *testing.T, ts *httptest.Server) {
	rep, err := RunLoad(t.Context(), ts.Client(), ts.URL, LoadOptions{
		Concurrency: 4, Requests: 40, Graphs: 2, N: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("load errors: %d (first: %s)", rep.Errors, rep.FirstError)
	}
	if rep.Requests != 40 || rep.Hits < rep.Requests/2 {
		t.Fatalf("load report = %+v (want hit-dominated)", rep)
	}
	if rep.RPS <= 0 || rep.WallNS <= 0 {
		t.Fatalf("load throughput = %+v", rep)
	}
}

func mustDecode(t *testing.T, resp *http.Response, status int, into any) {
	t.Helper()
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != status {
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, status, payload)
	}
	if err := json.Unmarshal(payload, into); err != nil {
		t.Fatalf("decoding %s: %v", payload, err)
	}
}
