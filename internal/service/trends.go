package service

import (
	"net/http"
	"strconv"

	"dsssp/internal/benchdiff"
	"dsssp/internal/harness"
)

// defaultTrendChain bounds how many reports a trend chains when the
// request does not say (last=N overrides, in either direction): the
// history is append-only and unbounded, so an uncapped default would make
// every /v1/trends poll O(entire history) in parse time and columns.
const defaultTrendChain = 32

// handleTrends is GET /v1/trends: chain the stored bench history through
// internal/benchdiff into per-scenario and per-phase envelope-ratio time
// series. Query parameters:
//
//	last=N            chain the most recent N comparable reports (default 32)
//	format=markdown   render the trend table instead of JSON
//
// Only reports of one suite flavor are comparable; the chain uses the
// flavor of the newest stored report and skips older reports of other
// flavors (a full sweep stored between quick sweeps must not poison the
// quick trend). X-Dsssp-Trend-Skipped carries the skip count. Reports are
// loaded newest-first and loading stops once the chain is full, so the
// cost of a poll is bounded by the chain length, not the history size.
func (s *Server) handleTrends(w http.ResponseWriter, r *http.Request) {
	entries, err := s.store.List()
	if err != nil {
		s.replyError(w, err)
		return
	}
	if len(entries) < 2 {
		writeError(w, http.StatusNotFound,
			"trends need at least 2 stored reports, history has %d — submit sweeps via POST /v1/sweeps", len(entries))
		return
	}
	limit := defaultTrendChain
	if n, err := strconv.Atoi(r.URL.Query().Get("last")); err == nil && n >= 2 {
		limit = n
	}
	// Newest first: the newest report defines the suite flavor, and the
	// loop stops as soon as the chain is full.
	var (
		chain   []harness.Report
		labels  []string
		flavor  [2]any
		skipped int
	)
	flavorOf := func(rep harness.Report) [2]any { return [2]any{rep.Suite, rep.Quick} }
	for i := len(entries) - 1; i >= 0 && len(chain) < limit; i-- {
		rep, err := s.store.Load(entries[i].Name)
		if err != nil {
			s.replyError(w, err)
			return
		}
		if len(chain) == 0 {
			flavor = flavorOf(rep)
		} else if flavorOf(rep) != flavor {
			skipped++
			continue
		}
		chain = append(chain, rep)
		labels = append(labels, entries[i].Label())
	}
	// Chronological order for Chain (oldest first).
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
		labels[i], labels[j] = labels[j], labels[i]
	}
	if len(chain) < 2 {
		writeError(w, http.StatusNotFound,
			"only %d stored report(s) share the newest report's suite flavor (%d skipped) — trends need 2", len(chain), skipped)
		return
	}
	trend, err := benchdiff.Chain(chain, labels, benchdiff.DefaultThresholds())
	if err != nil {
		s.replyError(w, err)
		return
	}
	w.Header().Set("X-Dsssp-Trend-Skipped", strconv.Itoa(skipped))
	if r.URL.Query().Get("format") == "markdown" {
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		if err := benchdiff.WriteTrendMarkdown(w, trend); err != nil {
			s.replyError(w, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, trend)
}
