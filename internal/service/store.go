package service

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"dsssp/internal/harness"
)

// Store is the append-only bench history: one BENCH_*.json report file per
// completed sweep, named by UTC timestamp and git revision so plain
// lexicographic filename order is chronological order. It is the
// persistence layer behind GET /v1/trends — dsssp-diff reads the same
// files directly (`dsssp-diff -trend trend.md $(ls history/BENCH_*.json)`).
type Store struct {
	dir string

	// appends/appendBytes count reports written by this process (the
	// directory may also hold reports from earlier lives; Stats walks it).
	appends     atomic.Int64
	appendBytes atomic.Int64
}

// storePrefix/storeSuffix frame every history filename:
// BENCH_<stamp>_<rev>.json with stamp = UTC 20060102T150405.000000000.
const (
	storePrefix = "BENCH_"
	storeSuffix = ".json"
	stampLayout = "20060102T150405.000000000"
)

// OpenStore opens (creating if needed) a history directory.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: history dir must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: creating history dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the backing directory.
func (st *Store) Dir() string { return st.dir }

// Entry is one stored report.
type Entry struct {
	// Name is the bare filename (the job API's stable report reference).
	Name string `json:"name"`
	// Stamp is the UTC completion time encoded in the name.
	Stamp time.Time `json:"stamp"`
	// Rev is the git revision label the server was started with.
	Rev string `json:"rev"`
}

// Label is the short human form used as a trend column header.
func (e Entry) Label() string {
	return e.Stamp.Format("01-02T15:04:05") + "@" + e.Rev
}

// Save appends a report to the history, named by now and rev. The report
// is written to a temp file first and the final name is claimed with an
// atomic link, so a concurrent List never sees a half-written report and
// a concurrent Save can never overwrite one (same-instant savers — two
// daemons sharing a history dir, say — collide on the link and nudge
// their stamp forward instead). Append-only means no overwrite, ever.
func (st *Store) Save(rep harness.Report, rev string, now time.Time) (Entry, error) {
	rev = sanitizeRev(rev)
	now = now.UTC()
	tmp, err := os.CreateTemp(st.dir, ".tmp-bench-*")
	if err != nil {
		return Entry{}, err
	}
	defer os.Remove(tmp.Name())
	if err := harness.WriteJSON(tmp, rep); err != nil {
		tmp.Close()
		return Entry{}, err
	}
	if err := tmp.Close(); err != nil {
		return Entry{}, err
	}
	for {
		e := Entry{Name: storePrefix + now.Format(stampLayout) + "_" + rev + storeSuffix, Stamp: now, Rev: rev}
		switch err := os.Link(tmp.Name(), filepath.Join(st.dir, e.Name)); {
		case err == nil:
			st.appends.Add(1)
			if fi, err := os.Stat(filepath.Join(st.dir, e.Name)); err == nil {
				st.appendBytes.Add(fi.Size())
			}
			return e, nil
		case errors.Is(err, fs.ErrExist):
			now = now.Add(time.Nanosecond)
		default:
			return Entry{}, err
		}
	}
}

// sanitizeRev keeps the revision label filename- and parser-safe: it
// becomes a single path-free token with no separators ('_' splits the
// filename fields), defaulting to "unknown".
func sanitizeRev(rev string) string {
	var b strings.Builder
	for _, r := range rev {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "unknown"
	}
	return b.String()
}

// List returns the stored entries, oldest first. Files not matching the
// naming scheme are ignored (the directory may hold temp files or notes).
func (st *Store) List() ([]Entry, error) {
	des, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, storePrefix) || !strings.HasSuffix(name, storeSuffix) {
			continue
		}
		core := strings.TrimSuffix(strings.TrimPrefix(name, storePrefix), storeSuffix)
		stampStr, rev, ok := strings.Cut(core, "_")
		if !ok {
			continue
		}
		stamp, err := time.Parse(stampLayout, stampStr)
		if err != nil {
			continue
		}
		out = append(out, Entry{Name: name, Stamp: stamp.UTC(), Rev: rev})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out, nil
}

// Appends returns the number of reports this process has written.
func (st *Store) Appends() int64 { return st.appends.Load() }

// AppendBytes returns the bytes of reports this process has written.
func (st *Store) AppendBytes() int64 { return st.appendBytes.Load() }

// StoreStats is the history store's observable state (GET /v1/stats):
// what is on disk now, plus what this process contributed.
type StoreStats struct {
	// Reports/Bytes describe the report files currently in the directory.
	Reports int   `json:"reports"`
	Bytes   int64 `json:"bytes"`
	// Appends/AppendBytes count reports written by this process.
	Appends     int64 `json:"appends"`
	AppendBytes int64 `json:"append_bytes"`
}

// Stats walks the history directory and snapshots the append counters.
func (st *Store) Stats() (StoreStats, error) {
	entries, err := st.List()
	if err != nil {
		return StoreStats{}, err
	}
	out := StoreStats{Reports: len(entries), Appends: st.appends.Load(), AppendBytes: st.appendBytes.Load()}
	for _, e := range entries {
		if fi, err := os.Stat(filepath.Join(st.dir, e.Name)); err == nil {
			out.Bytes += fi.Size()
		}
	}
	return out, nil
}

// Load reads one stored report by entry name.
func (st *Store) Load(name string) (harness.Report, error) {
	if name != filepath.Base(name) || !strings.HasPrefix(name, storePrefix) {
		return harness.Report{}, fmt.Errorf("service: invalid report name %q", name)
	}
	f, err := os.Open(filepath.Join(st.dir, name))
	if err != nil {
		return harness.Report{}, err
	}
	defer f.Close()
	return harness.ReadJSON(f)
}
