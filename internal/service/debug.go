package service

import (
	"net/http"
	"strconv"
	"time"

	"dsssp/internal/obs/trace"
)

// TraceHandler serves the flight recorder. Mount it on the PRIVATE debug
// listener (next to pprof) — traces carry request paths and graph IDs:
//
//	GET /debug/traces                  newest-first trace list (JSON array)
//	GET /debug/traces?min_ms=250       only traces at least this slow
//	GET /debug/traces?status=422       only this exact HTTP status
//	GET /debug/traces?errors=1         only errored traces
//	GET /debug/traces?endpoint=sssp    only this endpoint label
//	GET /debug/traces?limit=20         cap the list (default 100)
//	GET /debug/traces?format=jsonl     one trace per line (the CI artifact)
//	GET /debug/traces/{id}             one trace by 32-hex ID (404 when
//	                                   evicted or never sampled)
func (s *Server) TraceHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/traces", s.handleTraceList)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)
	return mux
}

// traceFilter parses the list endpoint's query parameters; unparsable
// numbers are 400s (a typo must not silently widen the filter).
func traceFilter(r *http.Request) (trace.Filter, error) {
	var fl trace.Filter
	q := r.URL.Query()
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fl, badf("bad min_ms %q: %v", v, err)
		}
		fl.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("status"); v != "" {
		st, err := strconv.Atoi(v)
		if err != nil {
			return fl, badf("bad status %q: %v", v, err)
		}
		fl.Status = st
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fl, badf("bad limit %q: %v", v, err)
		}
		fl.Limit = n
	}
	switch q.Get("errors") {
	case "", "0", "false":
	case "1", "true":
		fl.Errors = true
	default:
		return fl, badf("bad errors %q: want 0/1", q.Get("errors"))
	}
	fl.Endpoint = q.Get("endpoint")
	return fl, nil
}

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	fl, err := traceFilter(r)
	if err != nil {
		s.replyError(w, err)
		return
	}
	rec := s.tracer.Recorder()
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/jsonl")
		rec.WriteJSONL(w, fl)
		return
	}
	traces := rec.Traces(fl)
	if traces == nil {
		traces = []*trace.Trace{} // an empty recorder is [], not null
	}
	writeJSON(w, http.StatusOK, traces)
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t := s.tracer.Recorder().Get(id)
	if t == nil {
		s.replyError(w, notfoundf("no trace %q in the flight recorder (evicted, unsampled, or never seen)", id))
		return
	}
	writeJSON(w, http.StatusOK, t)
}
