package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustCompute(t *testing.T, c *Cache, key string, body []byte) (got []byte, hit bool) {
	t.Helper()
	got, hit, err := c.GetOrCompute(key, func() ([]byte, error) { return body, nil })
	if err != nil {
		t.Fatal(err)
	}
	return got, hit
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1 << 20)
	body := []byte("hello")
	got, hit := mustCompute(t, c, "k", body)
	if hit || !bytes.Equal(got, body) {
		t.Fatalf("first access: hit=%v body=%q", hit, got)
	}
	got, hit = mustCompute(t, c, "k", []byte("should not be computed"))
	if !hit || !bytes.Equal(got, body) {
		t.Fatalf("second access: hit=%v body=%q", hit, got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.BytesUsed != entryCost("k", body) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheEvictionUnderByteBudget(t *testing.T) {
	// Budget for exactly two entries (each: 100-byte body + 2-byte key +
	// the fixed per-entry overhead).
	body := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 100) }
	budget := 2 * entryCost("k0", body(0))
	c := NewCache(budget)
	for i := 0; i < 3; i++ {
		mustCompute(t, c, fmt.Sprintf("k%d", i), body(i))
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 || st.BytesUsed != budget {
		t.Fatalf("stats after overflow = %+v", st)
	}
	// k0 was least recently used and must be gone; k1, k2 remain.
	if _, hit := mustCompute(t, c, "k1", nil); !hit {
		t.Fatal("k1 should have survived")
	}
	if _, hit := mustCompute(t, c, "k2", nil); !hit {
		t.Fatal("k2 should have survived")
	}
	if _, hit := mustCompute(t, c, "k0", body(0)); hit {
		t.Fatal("k0 should have been evicted")
	}
	// Touch order decides the victim: refresh k2, insert k3 — k1 goes.
	st = c.Stats() // k0's reinsert evicted one more
	mustCompute(t, c, "k2", nil)
	mustCompute(t, c, "k3", body(3))
	if _, hit := mustCompute(t, c, "k2", nil); !hit {
		t.Fatal("recently-touched k2 evicted instead of LRU")
	}
	if c.Stats().Evictions <= st.Evictions {
		t.Fatalf("no eviction recorded: %+v", c.Stats())
	}
}

// TestCacheCostIncludesKeyAndOverhead pins the accounting fix: an entry is
// charged for its key and fixed per-entry overhead, not just its body.
// Under body-only accounting a flood of tiny entries would never overflow
// the budget while the real heap footprint (keys, list elements, map
// buckets) grew without bound.
func TestCacheCostIncludesKeyAndOverhead(t *testing.T) {
	c := NewCache(1 << 10)
	mustCompute(t, c, "some-64-char-hex-key-standing-in-for-a-sha256-address", []byte{})
	st := c.Stats()
	if want := entryCost("some-64-char-hex-key-standing-in-for-a-sha256-address", nil); st.BytesUsed != want {
		t.Fatalf("empty-body entry charged %d bytes, want %d (key + overhead)", st.BytesUsed, want)
	}
	if st.BytesUsed <= entryOverhead {
		t.Fatalf("charge %d does not include the key", st.BytesUsed)
	}

	// 1-byte bodies under a budget that holds ~7 full entries but would
	// hold hundreds under body-only accounting: eviction must kick in.
	c = NewCache(1 << 10)
	for i := 0; i < 300; i++ {
		mustCompute(t, c, fmt.Sprintf("key-%03d", i), []byte{byte(i)})
	}
	st = c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("tiny-body flood evicted nothing: %+v", st)
	}
	if st.BytesUsed > st.Budget {
		t.Fatalf("budget overrun: %+v", st)
	}
	if want := int64(st.Entries) * entryCost("key-000", []byte{0}); st.BytesUsed != want {
		t.Fatalf("resident charge %d, want %d entries x %d", st.BytesUsed, st.Entries, entryCost("key-000", []byte{0}))
	}
}

func TestCacheOversizedBodyNotStored(t *testing.T) {
	c := NewCache(10)
	big := bytes.Repeat([]byte("x"), 100)
	if got, hit := mustCompute(t, c, "big", big); hit || !bytes.Equal(got, big) {
		t.Fatalf("oversized compute: hit=%v", hit)
	}
	if st := c.Stats(); st.Entries != 0 || st.BytesUsed != 0 {
		t.Fatalf("oversized body was stored: %+v", st)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(1 << 10)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute("k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("error result was cached: %+v", st)
	}
	// The key still works after a failure.
	if got, hit := mustCompute(t, c, "k", []byte("ok")); hit || string(got) != "ok" {
		t.Fatalf("retry after error: hit=%v got=%q", hit, got)
	}
}

// TestCachePanicReleasesFlight: a panicking computation must release the
// flight (followers unblock, the key stays usable) while the panic itself
// propagates to the leader.
func TestCachePanicReleasesFlight(t *testing.T) {
	c := NewCache(1 << 10)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the leader")
			}
		}()
		c.GetOrCompute("k", func() ([]byte, error) { panic("boom") })
	}()
	// The key is not poisoned: no stale flight, no bogus entry.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if got, hit := mustCompute(t, c, "k", []byte("ok")); hit || string(got) != "ok" {
			t.Errorf("post-panic compute: hit=%v got=%q", hit, got)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("request after a panicking leader hung — flight not released")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("stats after recovery = %+v", st)
	}
}

// TestCacheLeaderCancellationHandoff: a flight leader failing with a
// context cancellation (its client hung up) must not poison the waiting
// followers — one of them takes over and computes.
func TestCacheLeaderCancellationHandoff(t *testing.T) {
	c := NewCache(1 << 10)
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.GetOrCompute("k", func() ([]byte, error) {
			close(leaderIn)
			<-leaderGo
			return nil, context.Canceled // the leader's request died
		})
	}()
	<-leaderIn // the follower only starts once the flight exists
	var followerBody []byte
	var followerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		followerBody, _, followerErr = c.GetOrCompute("k", func() ([]byte, error) {
			return []byte("follower-computed"), nil
		})
	}()
	// Give the follower a moment to block on the leader's flight, then
	// let the leader fail. (If the follower hasn't parked yet it simply
	// finds no flight after the leader exits — same outcome.)
	time.Sleep(10 * time.Millisecond)
	close(leaderGo)
	wg.Wait()
	if !errors.Is(leaderErr, context.Canceled) {
		t.Fatalf("leader error = %v", leaderErr)
	}
	if followerErr != nil || string(followerBody) != "follower-computed" {
		t.Fatalf("follower did not take over: body=%q err=%v", followerBody, followerErr)
	}
}

// TestCacheSingleflight: concurrent identical misses run the computation
// once; every follower gets the leader's bytes and counts as a hit.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(1 << 10)
	var calls atomic.Int64
	gate := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, waiters)
	hits := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, hit, err := c.GetOrCompute("k", func() ([]byte, error) {
				calls.Add(1)
				<-gate // hold every concurrent caller in the flight
				return []byte("computed-once"), nil
			})
			if err != nil {
				t.Error(err)
			}
			bodies[i], hits[i] = body, hit
		}()
	}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	leaderMisses, followerHits := 0, 0
	for i := range bodies {
		if !bytes.Equal(bodies[i], []byte("computed-once")) {
			t.Fatalf("waiter %d got %q", i, bodies[i])
		}
		if hits[i] {
			followerHits++
		} else {
			leaderMisses++
		}
	}
	if leaderMisses != 1 || followerHits != waiters-1 {
		t.Fatalf("misses=%d hits=%d, want 1/%d", leaderMisses, followerHits, waiters-1)
	}
}
