package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// DynamicLoadOptions tunes the dynamic-graph workload: one graph of size N
// is registered, then Concurrency clients fire Requests SSSP queries drawn
// round-robin from Sources distinct sources against its handle while the
// dispatcher interleaves a single-edge PATCH every PatchEvery queries.
// This is the APSP-style serving pattern the incremental path exists for —
// many per-source results over a slowly mutating graph — and the report
// splits latency by how each query was served (reused from cache vs
// recomputed), which is the measured win.
type DynamicLoadOptions struct {
	Concurrency int   `json:"concurrency"`
	Requests    int   `json:"requests"`
	N           int   `json:"n"`
	Sources     int   `json:"sources"`
	PatchEvery  int   `json:"patch_every"`
	Seed        int64 `json:"seed"`
	// ExpectRepair turns the run into an assertion: if the PATCH stream
	// dirtied at least one repairable source but no query was served by
	// affected-region repair, the run fails instead of silently measuring
	// the full-recompute path.
	ExpectRepair bool `json:"expect_repair,omitempty"`
}

func (o *DynamicLoadOptions) applyDefaults() {
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Requests <= 0 {
		o.Requests = 400
	}
	if o.N <= 0 {
		o.N = 256
	}
	if o.Sources <= 0 {
		o.Sources = 32
	}
	if o.Sources > o.N {
		o.Sources = o.N
	}
	if o.PatchEvery <= 0 {
		o.PatchEvery = 50
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// DynamicLoadReport is the dynamic-graph workload outcome. Reused counts
// queries answered from the cache (trace survived every PATCH since the
// last recompute); Repaired counts dirty sources rebuilt from their stale
// trace by affected-region repair; Recomputed counts full simulations.
// The three-way latency split is the point: reused queries cost a map
// lookup, repaired ones an affected-region rebuild, recomputed ones a
// full simulation.
type DynamicLoadReport struct {
	Options DynamicLoadOptions `json:"options"`
	GraphID string             `json:"graph_id"`
	// FinalRevision is the graph's revision after the run (1 + patches applied).
	FinalRevision int `json:"final_revision"`

	Requests   int     `json:"requests"`
	Patches    int     `json:"patches"`
	Reused     int     `json:"reused"`
	Repaired   int     `json:"repaired"`
	Recomputed int     `json:"recomputed"`
	Errors     int     `json:"errors"`
	ReuseRate  float64 `json:"reuse_rate"`
	// DirtiedSources sums the per-PATCH count of traced sources that went
	// dirty with a stale trace kept — the population repair could serve.
	DirtiedSources int `json:"dirtied_sources"`

	ReusedP50NS     int64 `json:"reused_p50_ns"`
	ReusedP99NS     int64 `json:"reused_p99_ns"`
	RepairedP50NS   int64 `json:"repaired_p50_ns"`
	RepairedP99NS   int64 `json:"repaired_p99_ns"`
	RecomputedP50NS int64 `json:"recomputed_p50_ns"`
	RecomputedP99NS int64 `json:"recomputed_p99_ns"`

	WallNS int64   `json:"wall_ns"`
	RPS    float64 `json:"rps"`
	// P99Traces are the trace IDs of the slowest requests across all three
	// serving classes, slowest first, each tagged with how it was served —
	// the tail of a dynamic run is almost always recomputes, and the refs
	// make that checkable against /debug/traces instead of guessable.
	P99Traces  []TraceRef `json:"p99_traces,omitempty"`
	FirstError string     `json:"first_error,omitempty"`
}

// RunLoadDynamic drives the dynamic-graph workload against a running
// server: register, then interleave PATCHes with per-source queries and
// measure the reuse rate and the latency split. client may be nil.
func RunLoadDynamic(ctx context.Context, client *http.Client, baseURL string, opt DynamicLoadOptions) (DynamicLoadReport, error) {
	opt.applyDefaults()
	if client == nil {
		client = http.DefaultClient
	}
	rep := DynamicLoadReport{Options: opt}

	// Register the graph, and materialize the same generator spec locally:
	// the PATCH stream needs real edges to reweight, and the spec is a pure
	// function of its fields, so the local build matches the server's.
	spec := GraphSpec{
		Family: "random", N: opt.N, Seed: opt.Seed,
		Weights: &WeightSpec{Kind: "uniform", MaxW: int64(opt.N)},
	}
	g, err := buildGraph(spec, opt.N, 1<<30)
	if err != nil {
		return rep, err
	}
	edges := g.Edges()
	var info GraphInfo
	if err := postJSON(ctx, client, baseURL+"/v1/graphs", RegisterRequest{Graph: spec}, &info); err != nil {
		return rep, fmt.Errorf("registering graph: %w", err)
	}
	rep.GraphID = info.ID
	rep.FinalRevision = info.Revision

	queryBodies := make([][]byte, opt.Sources)
	for s := range queryBodies {
		b, err := json.Marshal(SSSPRequest{Graph: GraphSpec{ID: info.ID}, Source: int64(s)})
		if err != nil {
			return rep, err
		}
		queryBodies[s] = b
	}

	var (
		mu                           sync.Mutex
		reused, repaired, recomputed []time.Duration
		samples                      []TraceRef
		wg                           sync.WaitGroup
	)
	idx := make(chan int)
	start := time.Now()
	for c := 0; c < opt.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				hit, incr, traceID, err := oneLoadRequest(ctx, client, baseURL, queryBodies[i%len(queryBodies)])
				d := time.Since(t0)
				mu.Lock()
				switch {
				case err != nil:
					rep.Errors++
					if rep.FirstError == "" {
						rep.FirstError = err.Error()
					}
				case hit:
					reused = append(reused, d)
				case incr == "repaired":
					repaired = append(repaired, d)
				default:
					recomputed = append(recomputed, d)
				}
				if err == nil {
					served := "recomputed"
					switch {
					case hit:
						served = "reused"
					case incr == "repaired":
						served = "repaired"
					}
					samples = append(samples, TraceRef{TraceID: traceID, LatencyNS: d.Nanoseconds(), Served: served})
				}
				mu.Unlock()
			}
		}()
	}

	// The dispatcher owns the PATCH stream: every PatchEvery queries it
	// reweights one random edge (alternating +1 / back to original), so
	// queries and mutations genuinely interleave. Weight changes of ±1
	// exercise both classification directions — increases keep non-tight
	// sources, decreases keep sources the new weight cannot improve.
	rng := rand.New(rand.NewSource(opt.Seed))
	bumped := make(map[int]bool)
	dispatch := func(i int) bool {
		select {
		case idx <- i:
			return true
		case <-ctx.Done():
			return false
		}
	}
	for i := 0; i < opt.Requests; i++ {
		if i > 0 && i%opt.PatchEvery == 0 && len(edges) > 0 {
			ei := rng.Intn(len(edges))
			e := edges[ei]
			w := e.W + 1
			if bumped[ei] {
				w = e.W
			}
			bumped[ei] = !bumped[ei]
			var pi PatchInfo
			err := patchJSON(ctx, client, fmt.Sprintf("%s/v1/graphs/%s/edges", baseURL, info.ID), PatchRequest{
				Deltas: []DeltaJSON{{Op: "reweight", U: int64(e.U), V: int64(e.V), W: w}},
			}, &pi)
			mu.Lock()
			if err != nil {
				rep.Errors++
				if rep.FirstError == "" {
					rep.FirstError = fmt.Sprintf("patch: %v", err)
				}
			} else {
				rep.Patches++
				rep.FinalRevision = pi.Revision
				rep.DirtiedSources += pi.SourcesRepairable
			}
			mu.Unlock()
		}
		if !dispatch(i) {
			break
		}
	}
	close(idx)
	wg.Wait()

	rep.WallNS = time.Since(start).Nanoseconds()
	rep.Reused, rep.Repaired, rep.Recomputed = len(reused), len(repaired), len(recomputed)
	rep.Requests = rep.Reused + rep.Repaired + rep.Recomputed + rep.Errors
	if served := rep.Reused + rep.Repaired + rep.Recomputed; served > 0 {
		// Repaired queries avoided a full simulation too: count them on the
		// reuse side of the rate.
		rep.ReuseRate = float64(rep.Reused+rep.Repaired) / float64(served)
	}
	rep.ReusedP50NS, rep.ReusedP99NS = percentiles(reused)
	rep.RepairedP50NS, rep.RepairedP99NS = percentiles(repaired)
	rep.RecomputedP50NS, rep.RecomputedP99NS = percentiles(recomputed)
	_, rep.P99Traces = p99TraceRefs(samples)
	if rep.WallNS > 0 {
		rep.RPS = float64(rep.Requests) / (float64(rep.WallNS) / 1e9)
	}
	if opt.ExpectRepair && rep.DirtiedSources > 0 && rep.Repaired == 0 {
		return rep, fmt.Errorf("expect-repair: %d sources went dirty with stale traces kept but no query was served by repair", rep.DirtiedSources)
	}
	return rep, ctx.Err()
}

// percentiles returns the p50 and p99 of the sample in nanoseconds (0,0
// for an empty sample).
func percentiles(ds []time.Duration) (p50, p99 int64) {
	if len(ds) == 0 {
		return 0, 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	at := func(q float64) int64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i].Nanoseconds()
	}
	return at(0.50), at(0.99)
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	return doJSON(ctx, client, http.MethodPost, url, in, out)
}

func patchJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	return doJSON(ctx, client, http.MethodPatch, url, in, out)
}

func doJSON(ctx context.Context, client *http.Client, method, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, bytes.TrimSpace(payload))
	}
	if out != nil {
		return json.Unmarshal(payload, out)
	}
	return nil
}
