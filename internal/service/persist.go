package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dsssp/internal/graph"
)

// Registry persistence: with -registry-dir set, every registered graph is
// spilled to <dir>/<id>.json on register and PATCH (and on Flush, which
// the server calls at shutdown so traces accumulated by queries survive
// too), and reloaded on startup — a redeploy doesn't forget every
// registered graph. Files are written whole via temp + rename in the same
// directory, so a crash mid-write leaves either the old file or the new
// one, never a torn read. Cache-entry addresses are deliberately NOT
// persisted: the result cache starts empty after a restart, and the first
// query per source re-mints them; distance rows, witness trees and stale
// ledgers — the expensive state — all survive.

// persistedGraph is the on-disk form of one registered graph.
type persistedGraph struct {
	ID        string           `json:"id"`
	Revision  int              `json:"revision"`
	N         int              `json:"n"`
	Edges     [][3]int64       `json:"edges"` // [u, v, w] triples
	CreatedNS int64            `json:"created_at_ns"`
	PatchedNS int64            `json:"patched_at_ns,omitempty"`
	Traces    []persistedTrace `json:"traces,omitempty"`
	Stale     []persistedStale `json:"stale,omitempty"`
}

type persistedTrace struct {
	Src    int32          `json:"src"`
	Dist   []int64        `json:"dist"`
	Parent []graph.NodeID `json:"parent,omitempty"`
}

type persistedStale struct {
	Src    int32          `json:"src"`
	Dist   []int64        `json:"dist"`
	Parent []graph.NodeID `json:"parent"`
	// The base-weight ledger, split into parallel arrays (JSON objects
	// can't key on uint64 without string round-trips).
	BaseKeys    []uint64 `json:"base_keys"`
	BaseWeights []int64  `json:"base_weights"`
}

// EnablePersistence turns on spill-to-disk under dir (created if missing)
// and reloads every graph already spilled there, least recently patched
// first so the LRU order favors recent activity. Returns how many graphs
// were restored. Call once, before the registry is shared.
func (r *GraphRegistry) EnablePersistence(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var loaded []*persistedGraph
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return 0, err
		}
		var pg persistedGraph
		if err := json.Unmarshal(raw, &pg); err != nil {
			return 0, fmt.Errorf("registry persistence: %s: %w", e.Name(), err)
		}
		loaded = append(loaded, &pg)
	}
	sort.Slice(loaded, func(a, b int) bool { return recencyNS(loaded[a]) < recencyNS(loaded[b]) })

	r.mu.Lock()
	defer r.mu.Unlock()
	r.dir = dir
	restored := 0
	for _, pg := range loaded {
		if err := r.restoreLocked(pg); err != nil {
			return restored, fmt.Errorf("registry persistence: %s: %w", pg.ID, err)
		}
		restored++
	}
	return restored, nil
}

func recencyNS(pg *persistedGraph) int64 {
	if pg.PatchedNS != 0 {
		return pg.PatchedNS
	}
	return pg.CreatedNS
}

// restoreLocked rebuilds one graph from its spilled form. The digest is
// recomputed from content, never trusted from disk.
func (r *GraphRegistry) restoreLocked(pg *persistedGraph) error {
	if _, dup := r.graphs[pg.ID]; dup {
		return fmt.Errorf("duplicate id")
	}
	if pg.N <= 0 || pg.Revision <= 0 {
		return fmt.Errorf("malformed header (n=%d revision=%d)", pg.N, pg.Revision)
	}
	g := graph.New(pg.N)
	for _, e := range pg.Edges {
		g.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]), e[2])
	}
	g.SortAdj()
	head := &revision{
		num:    pg.Revision,
		digest: canonicalGraphDigest(g),
		g:      g,
		traces: make(map[graph.NodeID]*sourceTrace, len(pg.Traces)),
		stale:  make(map[graph.NodeID]*staleTrace, len(pg.Stale)),
	}
	bytes := graphBytes(g)
	for _, pt := range pg.Traces {
		if len(pt.Dist) != g.N() || (pt.Parent != nil && len(pt.Parent) != g.N()) {
			return fmt.Errorf("trace for source %d has wrong length", pt.Src)
		}
		tr := &sourceTrace{dist: pt.Dist, parent: pt.Parent, entries: make(map[string]struct{})}
		tr.bytes = traceBytes(tr.dist, tr.parent)
		head.traces[graph.NodeID(pt.Src)] = tr
		bytes += tr.bytes
	}
	for _, ps := range pg.Stale {
		if len(ps.Dist) != g.N() || len(ps.Parent) != g.N() || len(ps.BaseKeys) != len(ps.BaseWeights) {
			return fmt.Errorf("stale trace for source %d is malformed", ps.Src)
		}
		st := &staleTrace{dist: ps.Dist, parent: ps.Parent, base: make(map[uint64]int64, len(ps.BaseKeys))}
		for i, k := range ps.BaseKeys {
			st.base[k] = ps.BaseWeights[i]
		}
		st.bytes = staleTraceBytes(st)
		head.stale[graph.NodeID(ps.Src)] = st
		bytes += st.bytes
	}
	rg := &regGraph{
		id:        pg.ID,
		createdAt: time.Unix(0, pg.CreatedNS),
		head:      head,
		bytes:     bytes,
	}
	if pg.PatchedNS != 0 {
		rg.patchedAt = time.Unix(0, pg.PatchedNS)
	}
	rg.el = r.lru.PushFront(rg)
	r.graphs[pg.ID] = rg
	r.bytes += rg.bytes
	r.evictLocked(rg)
	return nil
}

// Flush spills every resident graph (traces accumulated since the last
// register/PATCH included). No-op without persistence.
func (r *GraphRegistry) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dir == "" {
		return nil
	}
	var first error
	for _, rg := range r.graphs {
		if err := r.writeLocked(rg); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// spillLocked is the best-effort per-mutation spill (register/PATCH). A
// failed spill never fails the mutation — persistence degrades, serving
// doesn't — but it does surface in the next Flush.
func (r *GraphRegistry) spillLocked(rg *regGraph) {
	if r.dir == "" {
		return
	}
	_ = r.writeLocked(rg)
}

func (r *GraphRegistry) unspillLocked(id string) {
	if r.dir == "" {
		return
	}
	_ = os.Remove(filepath.Join(r.dir, id+".json"))
}

func (r *GraphRegistry) writeLocked(rg *regGraph) error {
	pg := persistedGraph{
		ID:        rg.id,
		Revision:  rg.head.num,
		N:         rg.head.g.N(),
		CreatedNS: rg.createdAt.UnixNano(),
	}
	if !rg.patchedAt.IsZero() {
		pg.PatchedNS = rg.patchedAt.UnixNano()
	}
	for _, e := range rg.head.g.Edges() {
		pg.Edges = append(pg.Edges, [3]int64{int64(e.U), int64(e.V), e.W})
	}
	for src, tr := range rg.head.traces {
		if src == apspTraceKey {
			continue // cache-entry addresses only; nothing to warm-start
		}
		pg.Traces = append(pg.Traces, persistedTrace{Src: int32(src), Dist: tr.dist, Parent: tr.parent})
	}
	sort.Slice(pg.Traces, func(a, b int) bool { return pg.Traces[a].Src < pg.Traces[b].Src })
	for src, st := range rg.head.stale {
		ps := persistedStale{Src: int32(src), Dist: st.dist, Parent: st.parent}
		ps.BaseKeys = make([]uint64, 0, len(st.base))
		for k := range st.base {
			ps.BaseKeys = append(ps.BaseKeys, k)
		}
		sort.Slice(ps.BaseKeys, func(a, b int) bool { return ps.BaseKeys[a] < ps.BaseKeys[b] })
		ps.BaseWeights = make([]int64, len(ps.BaseKeys))
		for i, k := range ps.BaseKeys {
			ps.BaseWeights[i] = st.base[k]
		}
		pg.Stale = append(pg.Stale, ps)
	}
	sort.Slice(pg.Stale, func(a, b int) bool { return pg.Stale[a].Src < pg.Stale[b].Src })

	raw, err := json.Marshal(&pg)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(r.dir, "."+rg.id+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(r.dir, rg.id+".json")); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
