package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dsssp/internal/obs/trace"
)

// tracingServer builds a server with tracing-relevant knobs under test
// control; everything else matches testServer.
func tracingServer(t *testing.T, sampleRate float64, recent, retained int) *Server {
	t.Helper()
	s, err := New(Config{
		HistoryDir: t.TempDir(), Workers: 4, SweepParallel: 2, Rev: "test",
		TraceSampleRate: sampleRate, TraceRecent: recent, TraceRetained: retained,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// doTraced issues one request with a freshly minted traceparent and
// returns the recorder plus the minted trace ID.
func doTraced(t *testing.T, s *Server, method, path, body string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	sc := trace.MintContext()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	var req *http.Request
	if rd != nil {
		req = httptest.NewRequest(method, path, rd)
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	req.Header.Set(trace.TraceparentHeader, sc.Traceparent())
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w, sc.TraceID.String()
}

const tracingBody = `{"graph":{"family":"random","n":64,"seed":7,"weights":{"kind":"uniform","max_w":64}}}`

func TestTraceparentEchoValid(t *testing.T) {
	s := tracingServer(t, 1.0, 0, 0)
	sc := trace.MintContext()
	req := httptest.NewRequest("POST", "/v1/sssp", strings.NewReader(tracingBody))
	req.Header.Set(trace.TraceparentHeader, sc.Traceparent())
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	echo := w.Header().Get(TraceparentHeader)
	esc, ok := trace.ParseTraceparent(echo)
	if !ok {
		t.Fatalf("echoed traceparent %q does not parse", echo)
	}
	if esc.TraceID != sc.TraceID {
		t.Fatalf("echo trace ID = %s, want the client's %s", esc.TraceID, sc.TraceID)
	}
	if !esc.Sampled {
		t.Fatalf("echo %q not marked sampled at sample rate 1.0", echo)
	}
	// The span ID half must be the server root's, not a byte-for-byte
	// replay of what the client sent: a downstream joiner would otherwise
	// parent onto the wrong span.
	if esc.SpanID == sc.SpanID {
		t.Fatalf("echo %q replays the client's span ID instead of the server root's", echo)
	}
	if got := w.Header().Get(RequestIDHeader); got != sc.TraceID.String() {
		t.Fatalf("request ID %q not unified with trace ID %s", got, sc.TraceID)
	}
}

func TestTraceparentMalformedMintsFresh(t *testing.T) {
	s := tracingServer(t, 1.0, 0, 0)
	for _, bad := range []string{
		"not-a-traceparent",
		"00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01", // uppercase hex
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // forbidden version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace ID
	} {
		req := httptest.NewRequest("POST", "/v1/sssp", strings.NewReader(tracingBody))
		req.Header.Set(trace.TraceparentHeader, bad)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("%q: status = %d: %s", bad, w.Code, w.Body.String())
		}
		echo := w.Header().Get(TraceparentHeader)
		esc, ok := trace.ParseTraceparent(echo)
		if !ok {
			t.Fatalf("%q: minted echo %q does not parse", bad, echo)
		}
		if strings.Contains(bad, esc.TraceID.String()) {
			t.Fatalf("%q: server adopted a trace ID from a malformed header", bad)
		}
		if got := w.Header().Get(RequestIDHeader); got != esc.TraceID.String() {
			t.Fatalf("%q: request ID %q != minted trace ID %s", bad, got, esc.TraceID.String())
		}
	}
}

func TestTraceUnsampledNoEcho(t *testing.T) {
	s := tracingServer(t, -1, 0, 0)
	w := do(t, s, "POST", "/v1/sssp", tracingBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	if echo := w.Header().Get(TraceparentHeader); echo != "" {
		t.Fatalf("unsampled request without inbound traceparent echoed %q", echo)
	}
	if got := w.Header().Get(RequestIDHeader); len(got) != 32 {
		t.Fatalf("request ID %q is not a 32-hex trace ID", got)
	}
}

// TestSingleflightTraceShared pins the trace semantics of deduplicated
// cache misses: every concurrent waiter gets its own root span tree, but
// only the singleflight leader carries an engine span — the followers'
// cache.lookup spans are marked result=shared (or hit, if they arrived
// after completion). Run under -race this also exercises the recorder's
// and span tree's concurrency.
func TestSingleflightTraceShared(t *testing.T) {
	s := tracingServer(t, 1.0, 0, 0)
	const waiters = 8
	for attempt := 0; attempt < 5; attempt++ {
		body := fmt.Sprintf(
			`{"graph":{"family":"random","n":384,"seed":%d,"weights":{"kind":"uniform","max_w":384}}}`,
			100+attempt)
		ids := make([]string, waiters)
		var wg sync.WaitGroup
		gate := make(chan struct{})
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sc := trace.MintContext()
				ids[i] = sc.TraceID.String()
				req := httptest.NewRequest("POST", "/v1/sssp", strings.NewReader(body))
				req.Header.Set(trace.TraceparentHeader, sc.Traceparent())
				<-gate
				w := httptest.NewRecorder()
				s.Handler().ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					t.Errorf("waiter %d: status %d: %s", i, w.Code, w.Body.String())
				}
			}(i)
		}
		close(gate)
		wg.Wait()
		if t.Failed() {
			return
		}

		rec := s.tracer.Recorder()
		engines, shared := 0, 0
		for _, id := range ids {
			tr := rec.Get(id)
			if tr == nil {
				t.Fatalf("trace %s missing from the flight recorder", id)
			}
			hasEngine := false
			for _, sp := range tr.Spans {
				if sp.Name == "engine" {
					hasEngine = true
				}
				if sp.Name == "cache.lookup" && sp.Attrs["result"] == "shared" {
					shared++
				}
			}
			if hasEngine {
				engines++
			}
		}
		// One key, so at most one simulation ever ran — regardless of how
		// the requests interleaved.
		if engines != 1 {
			t.Fatalf("%d engine spans across %d identical requests, want exactly 1", engines, waiters)
		}
		if shared > 0 {
			return // observed genuine singleflight sharing; all invariants held
		}
		// Every follower landed after completion (pure cache hits): valid,
		// but not the interleaving under test. Retry with a fresh key.
	}
	t.Skip("never observed singleflight sharing in 5 attempts; dedup invariant (1 engine) held each time")
}

// TestTraceTreeRoundsConservation is the acceptance criterion: for a
// computed query, GET /debug/traces/{id} returns one connected span tree
// rooted at the HTTP request, and the engine-phase leaf spans' rounds
// sum exactly to the response's metrics.rounds.
func TestTraceTreeRoundsConservation(t *testing.T) {
	s := tracingServer(t, 1.0, 0, 0)
	w, traceID := doTraced(t, s, "POST", "/v1/sssp?trace=1", tracingBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp SSSPResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Metrics.Rounds <= 0 {
		t.Fatalf("computed response lacks metrics.rounds: %s", w.Body.String())
	}

	dreq := httptest.NewRequest("GET", "/debug/traces/"+traceID, nil)
	dw := httptest.NewRecorder()
	s.TraceHandler().ServeHTTP(dw, dreq)
	if dw.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s: status %d: %s", traceID, dw.Code, dw.Body.String())
	}
	var tr trace.Trace
	if err := json.Unmarshal(dw.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != traceID {
		t.Fatalf("trace ID = %s, want %s", tr.TraceID, traceID)
	}

	// Connectivity: exactly one root, every other span's parent present.
	byID := make(map[string]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		byID[sp.SpanID] = true
	}
	roots := 0
	for _, sp := range tr.Spans {
		if sp.ParentID == "" {
			roots++
			if sp.Name != "HTTP sssp" {
				t.Fatalf("root span is %q, want %q", sp.Name, "HTTP sssp")
			}
		} else if !byID[sp.ParentID] {
			t.Fatalf("span %s (%s) has dangling parent %s", sp.SpanID, sp.Name, sp.ParentID)
		}
	}
	if roots != 1 {
		t.Fatalf("%d roots in the span tree, want 1", roots)
	}

	// Conservation: phase rounds sum to the response's total.
	var phaseSum, engineRounds int64
	phaseSpans := 0
	for _, sp := range tr.Spans {
		if strings.HasPrefix(sp.Name, "phase:") {
			phaseSpans++
			v, ok := sp.Attrs["rounds"].(float64)
			if !ok {
				t.Fatalf("phase span %q lacks a numeric rounds attr: %#v", sp.Name, sp.Attrs)
			}
			phaseSum += int64(v)
		}
		if sp.Name == "engine" {
			if v, ok := sp.Attrs["rounds"].(float64); ok {
				engineRounds = int64(v)
			}
		}
	}
	if phaseSpans == 0 {
		t.Fatal("no engine-phase spans in the trace")
	}
	if phaseSum != resp.Metrics.Rounds {
		t.Fatalf("phase spans sum to %d rounds, response metrics.rounds = %d", phaseSum, resp.Metrics.Rounds)
	}
	if engineRounds != resp.Metrics.Rounds {
		t.Fatalf("engine span rounds attr = %d, want %d", engineRounds, resp.Metrics.Rounds)
	}
}

// TestFlightRecorderRetainsErrorAfterFlood pins the retention bias at the
// service level: an errored request survives a flood of fast successes
// that overflows the recent ring many times over.
func TestFlightRecorderRetainsErrorAfterFlood(t *testing.T) {
	s := tracingServer(t, 1.0, 4, 4)
	w, errID := doTraced(t, s, "POST", "/v1/sssp", `{"graph": nope}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad body: status = %d, want 400", w.Code)
	}
	for i := 0; i < 50; i++ {
		if w := do(t, s, "POST", "/v1/sssp", tracingBody); w.Code != http.StatusOK {
			t.Fatalf("flood %d: status %d: %s", i, w.Code, w.Body.String())
		}
	}
	tr := s.tracer.Recorder().Get(errID)
	if tr == nil {
		t.Fatalf("errored trace %s evicted by %d fast successes (recent=4, retained=4)", errID, 50)
	}
	if tr.Status != http.StatusBadRequest {
		t.Fatalf("retained trace status = %d, want 400", tr.Status)
	}

	// And it is reachable through the errors filter on the list endpoint.
	dreq := httptest.NewRequest("GET", "/debug/traces?status=400", nil)
	dw := httptest.NewRecorder()
	s.TraceHandler().ServeHTTP(dw, dreq)
	var list []*trace.Trace
	if err := json.Unmarshal(dw.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, lt := range list {
		if lt.TraceID == errID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s not in the status=400 list (%d traces)", errID, len(list))
	}
}

// TestUnsampledCachedHitCheaper pins that sampling, not tracing's mere
// presence, is what costs: the cached-hit fast path allocates strictly
// less per request when the request is unsampled. The zero-allocation
// floor of the tracing kernel itself is pinned in the trace package
// (TestUnsampledZeroAlloc); here the comparison runs through the full
// handler stack.
func TestUnsampledCachedHitCheaper(t *testing.T) {
	measure := func(s *Server) float64 {
		// Warm the cache so every measured request is a pure hit.
		if w := do(t, s, "POST", "/v1/sssp", tracingBody); w.Code != http.StatusOK {
			t.Fatalf("warmup: status %d: %s", w.Code, w.Body.String())
		}
		h := s.Handler()
		return testing.AllocsPerRun(200, func() {
			req := httptest.NewRequest("POST", "/v1/sssp", strings.NewReader(tracingBody))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				panic(w.Body.String())
			}
		})
	}
	unsampled := measure(tracingServer(t, -1, 0, 0))
	sampled := measure(tracingServer(t, 1.0, 0, 0))
	if unsampled >= sampled {
		t.Fatalf("unsampled cached hit allocates %.1f/run, sampled %.1f/run — tracing is not free when disabled",
			unsampled, sampled)
	}
}

// BenchmarkCachedHit is the benchmark pin for the fast path: compare
// ns/op and allocs/op between unsampled and sampled serving of a pure
// cache hit.
func BenchmarkCachedHit(b *testing.B) {
	for _, bc := range []struct {
		name string
		rate float64
	}{
		{"unsampled", -1},
		{"sampled", 1.0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s, err := New(Config{
				HistoryDir: b.TempDir(), Workers: 4, SweepParallel: 2, Rev: "bench",
				TraceSampleRate: bc.rate,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			h := s.Handler()
			req := httptest.NewRequest("POST", "/v1/sssp", strings.NewReader(tracingBody))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("warmup: %d: %s", w.Code, w.Body.String())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest("POST", "/v1/sssp", strings.NewReader(tracingBody))
				h.ServeHTTP(httptest.NewRecorder(), req)
			}
		})
	}
}
