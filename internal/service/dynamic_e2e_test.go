package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"dsssp/internal/graph"
)

// ciGraphJSON is ciGraph() as an inline wire spec (see registry_test.go
// for the classification story: reweighting {0,2} down to 1 dirties
// source 0, leaves source 1 untouched).
const ciGraphJSON = `{"n":4,"edges":[[0,1,1],[1,2,1],[2,3,1],[0,3,1],[0,2,10]]}`

func decodeBody(t *testing.T, w *httptest.ResponseRecorder, status int, into any) {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status %d, want %d: %s", w.Code, status, w.Body.Bytes())
	}
	if err := json.Unmarshal(w.Body.Bytes(), into); err != nil {
		t.Fatalf("decoding %s: %v", w.Body.Bytes(), err)
	}
}

// TestDynamicGraphLifecycle walks the registered-graph serving path over
// the wire in both models: register → query (miss, then hit) → PATCH →
// the untouched source is still a hit with byte-identical distances, the
// dirty source recomputes with the improved ones.
func TestDynamicGraphLifecycle(t *testing.T) {
	for _, model := range []string{"congest", "sleeping"} {
		t.Run(model, func(t *testing.T) {
			s := testServer(t)
			w := do(t, s, "POST", "/v1/graphs", `{"graph":`+ciGraphJSON+`}`)
			var info GraphInfo
			decodeBody(t, w, http.StatusCreated, &info)
			if info.Revision != 1 || info.N != 4 || info.M != 5 {
				t.Fatalf("register info = %+v", info)
			}

			// Re-registering identical content is idempotent: 200, same handle.
			w = do(t, s, "POST", "/v1/graphs", `{"graph":`+ciGraphJSON+`}`)
			var again GraphInfo
			decodeBody(t, w, http.StatusOK, &again)
			if again.ID != info.ID {
				t.Fatalf("idempotent register minted %q, want %q", again.ID, info.ID)
			}

			query := func(src int) (*httptest.ResponseRecorder, SSSPResponse) {
				body := fmt.Sprintf(`{"graph":{"graph_id":%q},"source":%d,"options":{"model":%q}}`, info.ID, src, model)
				w := do(t, s, "POST", "/v1/sssp", body)
				var resp SSSPResponse
				decodeBody(t, w, http.StatusOK, &resp)
				return w, resp
			}

			w, r0 := query(0)
			if w.Header().Get("X-Dsssp-Cache") != "miss" || w.Header().Get("X-Dsssp-Graph-Revision") != "1" {
				t.Fatalf("first query: cache=%s rev=%s", w.Header().Get("X-Dsssp-Cache"), w.Header().Get("X-Dsssp-Graph-Revision"))
			}
			if !reflect.DeepEqual(r0.Dist, []int64{0, 1, 2, 1}) {
				t.Fatalf("dist from 0 = %v", r0.Dist)
			}
			_, r1 := query(1)
			if !reflect.DeepEqual(r1.Dist, []int64{1, 0, 1, 2}) {
				t.Fatalf("dist from 1 = %v", r1.Dist)
			}
			if w, _ := query(0); w.Header().Get("X-Dsssp-Cache") != "hit" {
				t.Fatal("repeat query missed the cache")
			}

			// PATCH: the chord drops to 1 — source 0 improves, source 1 cannot.
			w = do(t, s, "PATCH", "/v1/graphs/"+info.ID+"/edges",
				`{"deltas":[{"op":"reweight","u":0,"v":2,"w":1}]}`)
			var pi PatchInfo
			decodeBody(t, w, http.StatusOK, &pi)
			if pi.Revision != 2 || pi.SourcesKept != 1 || pi.SourcesDropped != 1 {
				t.Fatalf("patch info = %+v", pi)
			}

			w, r1b := query(1)
			if w.Header().Get("X-Dsssp-Cache") != "hit" {
				t.Fatal("untouched source recomputed after PATCH (entry not migrated)")
			}
			if w.Header().Get("X-Dsssp-Graph-Revision") != "2" {
				t.Fatalf("revision header = %s, want 2", w.Header().Get("X-Dsssp-Graph-Revision"))
			}
			if !reflect.DeepEqual(r1b.Dist, r1.Dist) {
				t.Fatalf("untouched source's distances changed: %v vs %v", r1b.Dist, r1.Dist)
			}
			w, r0b := query(0)
			if w.Header().Get("X-Dsssp-Cache") != "miss" {
				t.Fatal("dirty source served from cache after PATCH")
			}
			if !reflect.DeepEqual(r0b.Dist, []int64{0, 1, 1, 1}) {
				t.Fatalf("dist from 0 after patch = %v, want [0 1 1 1]", r0b.Dist)
			}

			// Registry surfaces in listing, stats, and delete.
			var list GraphListResponse
			decodeBody(t, do(t, s, "GET", "/v1/graphs", ""), http.StatusOK, &list)
			if len(list.Graphs) != 1 || list.Graphs[0].Revision != 2 {
				t.Fatalf("list = %+v", list)
			}
			var st StatsResponse
			decodeBody(t, do(t, s, "GET", "/v1/stats", ""), http.StatusOK, &st)
			if st.Registry.Graphs != 1 || st.Registry.Revisions != 2 {
				t.Fatalf("stats registry = %+v", st.Registry)
			}
			if w := do(t, s, "DELETE", "/v1/graphs/"+info.ID, ""); w.Code != http.StatusOK {
				t.Fatalf("delete: %d %s", w.Code, w.Body.Bytes())
			}
			if w := do(t, s, "GET", "/v1/graphs/"+info.ID, ""); w.Code != http.StatusNotFound {
				t.Fatalf("get after delete: %d", w.Code)
			}
		})
	}
}

func TestDynamicGraphValidation(t *testing.T) {
	s := testServer(t)
	var info GraphInfo
	decodeBody(t, do(t, s, "POST", "/v1/graphs", `{"graph":`+ciGraphJSON+`}`), http.StatusCreated, &info)

	for name, tc := range map[string]struct {
		method, path, body string
		status             int
	}{
		"query-unknown-handle": {"POST", "/v1/sssp", `{"graph":{"graph_id":"g-nope"},"source":0}`, http.StatusNotFound},
		"patch-unknown-handle": {"PATCH", "/v1/graphs/g-nope/edges", `{"deltas":[{"op":"delete","u":0,"v":1}]}`, http.StatusNotFound},
		"handle-plus-inline":   {"POST", "/v1/sssp", `{"graph":{"graph_id":"` + info.ID + `","n":4,"edges":[[0,1,1]]},"source":0}`, http.StatusBadRequest},
		"register-with-handle": {"POST", "/v1/graphs", `{"graph":{"graph_id":"` + info.ID + `"}}`, http.StatusBadRequest},
		"patch-empty-batch":    {"PATCH", "/v1/graphs/" + info.ID + "/edges", `{"deltas":[]}`, http.StatusBadRequest},
		"patch-bad-op":         {"PATCH", "/v1/graphs/" + info.ID + "/edges", `{"deltas":[{"op":"upsert","u":0,"v":1,"w":1}]}`, http.StatusBadRequest},
		"patch-delete-missing": {"PATCH", "/v1/graphs/" + info.ID + "/edges", `{"deltas":[{"op":"delete","u":1,"v":3}]}`, http.StatusBadRequest},
		"patch-out-of-range":   {"PATCH", "/v1/graphs/" + info.ID + "/edges", `{"deltas":[{"op":"insert","u":0,"v":9,"w":1}]}`, http.StatusBadRequest},
	} {
		t.Run(name, func(t *testing.T) {
			if w := do(t, s, tc.method, tc.path, tc.body); w.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.status, w.Body.Bytes())
			}
		})
	}
	// Failed patches must not have advanced the revision.
	var got GraphInfo
	decodeBody(t, do(t, s, "GET", "/v1/graphs/"+info.ID, ""), http.StatusOK, &got)
	if got.Revision != 1 {
		t.Fatalf("failed patches advanced revision to %d", got.Revision)
	}
}

// TestDynamicAPSPIncremental: after single-source queries have traced some
// rows, an APSP over the handle recomputes only the missing sources and
// reports the split — and the assembled distances are byte-identical to a
// from-scratch APSP of the same content posted inline.
func TestDynamicAPSPIncremental(t *testing.T) {
	s := testServer(t)
	var info GraphInfo
	decodeBody(t, do(t, s, "POST", "/v1/graphs", `{"graph":`+ciGraphJSON+`}`), http.StatusCreated, &info)

	// Trace rows for sources 0 and 1.
	for src := 0; src < 2; src++ {
		body := fmt.Sprintf(`{"graph":{"graph_id":%q},"source":%d}`, info.ID, src)
		if w := do(t, s, "POST", "/v1/sssp", body); w.Code != 200 {
			t.Fatalf("sssp: %d %s", w.Code, w.Body.Bytes())
		}
	}

	w := do(t, s, "POST", "/v1/apsp", fmt.Sprintf(`{"graph":{"graph_id":%q}}`, info.ID))
	var incremental APSPResponse
	decodeBody(t, w, http.StatusOK, &incremental)
	if incremental.Incr == nil || incremental.Incr.SourcesReused != 2 || incremental.Incr.SourcesRecomputed != 2 {
		t.Fatalf("incr split = %+v", incremental.Incr)
	}
	if got := w.Header().Get("X-Dsssp-Incr"); got != "reused=2 recomputed=2" {
		t.Fatalf("X-Dsssp-Incr = %q", got)
	}

	var scratch APSPResponse
	decodeBody(t, do(t, s, "POST", "/v1/apsp", `{"graph":`+ciGraphJSON+`}`), http.StatusOK, &scratch)
	if !reflect.DeepEqual(incremental.Dist, scratch.Dist) {
		t.Fatalf("incremental APSP distances differ from scratch:\nincr  %v\nfresh %v", incremental.Dist, scratch.Dist)
	}

	// Cache keys are content-addressed: the inline from-scratch run above
	// has the same digest as the registered graph, so its (history-free)
	// body now serves the handle query as a plain cache hit.
	var shared APSPResponse
	w = do(t, s, "POST", "/v1/apsp", fmt.Sprintf(`{"graph":{"graph_id":%q}}`, info.ID))
	decodeBody(t, w, http.StatusOK, &shared)
	if w.Header().Get("X-Dsssp-Cache") != "hit" || shared.Incr != nil {
		t.Fatalf("content-shared APSP: cache=%s incr=%+v", w.Header().Get("X-Dsssp-Cache"), shared.Incr)
	}

	// A different seed misses the body cache but finds every row traced:
	// the pure all-reused path (distances are seed-independent).
	var full APSPResponse
	w = do(t, s, "POST", "/v1/apsp", fmt.Sprintf(`{"graph":{"graph_id":%q},"seed":5}`, info.ID))
	decodeBody(t, w, http.StatusOK, &full)
	if full.Incr == nil || full.Incr.SourcesReused != 4 || full.Incr.SourcesRecomputed != 0 {
		t.Fatalf("all-reused APSP split = %+v", full.Incr)
	}
	if !reflect.DeepEqual(full.Dist, scratch.Dist) {
		t.Fatal("fully-reused APSP distances differ from scratch")
	}
}

// ciGraphPatchedJSON is ciGraph() after the chord reweight {0,2}: 10 → 1,
// as an inline wire spec — the from-scratch oracle for repaired answers.
const ciGraphPatchedJSON = `{"n":4,"edges":[[0,1,1],[1,2,1],[2,3,1],[0,3,1],[0,2,1]]}`

// TestRepairServing walks the affected-region repair path over the wire:
// a query traces a source, a PATCH dirties it (stale trace kept), and the
// re-query is served by repair — flagged in header, body, and /v1/stats —
// with distances byte-identical to a from-scratch run of the new content.
func TestRepairServing(t *testing.T) {
	s := testServer(t)
	var info GraphInfo
	decodeBody(t, do(t, s, "POST", "/v1/graphs", `{"graph":`+ciGraphJSON+`}`), http.StatusCreated, &info)

	query := func(src int) (*httptest.ResponseRecorder, SSSPResponse) {
		w := do(t, s, "POST", "/v1/sssp", fmt.Sprintf(`{"graph":{"graph_id":%q},"source":%d}`, info.ID, src))
		var resp SSSPResponse
		decodeBody(t, w, http.StatusOK, &resp)
		return w, resp
	}

	// First query recomputes (nothing to repair from) and records the trace.
	w, _ := query(0)
	if got := w.Header().Get("X-Dsssp-Incr"); got != "recomputed" {
		t.Fatalf("first query X-Dsssp-Incr = %q, want recomputed", got)
	}

	// The chord drops to 1: source 0 goes dirty but keeps its stale trace.
	var pi PatchInfo
	decodeBody(t, do(t, s, "PATCH", "/v1/graphs/"+info.ID+"/edges",
		`{"deltas":[{"op":"reweight","u":0,"v":2,"w":1}]}`), http.StatusOK, &pi)
	if pi.SourcesRepairable != 1 {
		t.Fatalf("patch info = %+v", pi)
	}

	// The re-query is served by repair, not recomputation.
	w, repaired := query(0)
	if w.Header().Get("X-Dsssp-Cache") != "miss" || w.Header().Get("X-Dsssp-Incr") != "repaired" {
		t.Fatalf("repair headers: cache=%s incr=%s", w.Header().Get("X-Dsssp-Cache"), w.Header().Get("X-Dsssp-Incr"))
	}
	if repaired.Incr == nil || repaired.Incr.Served != "repaired" || repaired.Incr.AffectedVertices == 0 {
		t.Fatalf("repair incr block = %+v", repaired.Incr)
	}
	// The repair promoted the trace to the head revision: the next query is
	// served from the exact trace (Affected == 0), still without simulation.
	// (This must run before the inline oracle below — that query caches the
	// canonical body under the same content digest, turning handle queries
	// into plain hits.)
	if _, again := query(0); again.Incr == nil || again.Incr.Served != "repaired" ||
		again.Incr.AffectedVertices != 0 || !reflect.DeepEqual(again.Dist, repaired.Dist) {
		t.Fatalf("post-repair re-query not served from the promoted trace: %+v", again.Incr)
	}

	var fresh SSSPResponse
	decodeBody(t, do(t, s, "POST", "/v1/sssp", `{"graph":`+ciGraphPatchedJSON+`,"source":0}`), http.StatusOK, &fresh)
	if !reflect.DeepEqual(repaired.Dist, fresh.Dist) {
		t.Fatalf("repaired distances diverge from scratch: %v vs %v", repaired.Dist, fresh.Dist)
	}

	// A path query rides the same witness tree: repaired distance and path
	// must be byte-identical to the from-scratch tree extraction.
	w = do(t, s, "POST", "/v1/path", fmt.Sprintf(`{"graph":{"graph_id":%q},"source":0,"target":2}`, info.ID))
	var repairedPath PathResponse
	decodeBody(t, w, http.StatusOK, &repairedPath)
	if w.Header().Get("X-Dsssp-Incr") != "repaired" || repairedPath.Incr == nil {
		t.Fatalf("path repair: incr=%s block=%+v", w.Header().Get("X-Dsssp-Incr"), repairedPath.Incr)
	}
	var freshPath PathResponse
	decodeBody(t, do(t, s, "POST", "/v1/path", `{"graph":`+ciGraphPatchedJSON+`,"source":0,"target":2}`), http.StatusOK, &freshPath)
	if repairedPath.Dist != freshPath.Dist || !reflect.DeepEqual(repairedPath.Path, freshPath.Path) {
		t.Fatalf("repaired path diverges: dist %d path %v, want dist %d path %v",
			repairedPath.Dist, repairedPath.Path, freshPath.Dist, freshPath.Path)
	}

	// The serving split is visible at /v1/stats.
	var st StatsResponse
	decodeBody(t, do(t, s, "GET", "/v1/stats", ""), http.StatusOK, &st)
	if st.Incr.SourcesRepaired < 2 {
		t.Fatalf("stats incr = %+v, want sources_repaired >= 2", st.Incr)
	}

	// ?trace=1 asks for the per-phase breakdown only a real simulation can
	// produce: repair must step aside.
	w = do(t, s, "POST", "/v1/sssp?trace=1", fmt.Sprintf(`{"graph":{"graph_id":%q},"source":0}`, info.ID))
	var traced SSSPResponse
	decodeBody(t, w, http.StatusOK, &traced)
	if traced.Incr != nil || len(traced.Phases) == 0 {
		t.Fatalf("trace=1 served by repair: incr=%+v phases=%d", traced.Incr, len(traced.Phases))
	}
}

// TestRepairDisabled pins the -repair-max-affected=-1 escape hatch: the
// dirty source recomputes from scratch, never touching the repair path.
func TestRepairDisabled(t *testing.T) {
	s, err := New(Config{HistoryDir: t.TempDir(), Workers: 4, Rev: "test", RepairMaxAffected: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	var info GraphInfo
	decodeBody(t, do(t, s, "POST", "/v1/graphs", `{"graph":`+ciGraphJSON+`}`), http.StatusCreated, &info)
	body := fmt.Sprintf(`{"graph":{"graph_id":%q},"source":0}`, info.ID)
	if w := do(t, s, "POST", "/v1/sssp", body); w.Code != http.StatusOK {
		t.Fatalf("seed query: %d", w.Code)
	}
	do(t, s, "PATCH", "/v1/graphs/"+info.ID+"/edges", `{"deltas":[{"op":"reweight","u":0,"v":2,"w":1}]}`)
	w := do(t, s, "POST", "/v1/sssp", body)
	var resp SSSPResponse
	decodeBody(t, w, http.StatusOK, &resp)
	if w.Header().Get("X-Dsssp-Incr") != "recomputed" || resp.Incr != nil {
		t.Fatalf("repair ran while disabled: incr=%s block=%+v", w.Header().Get("X-Dsssp-Incr"), resp.Incr)
	}
}

// TestRepairWarmStart spans two server lifetimes: the first traces and
// dirties a source, shuts down (flushing the registry spill), and the
// second — a fresh process sharing only -registry-dir — serves the same
// handle by repair without ever having computed anything.
func TestRepairWarmStart(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Server {
		t.Helper()
		s, err := New(Config{HistoryDir: t.TempDir(), Workers: 4, Rev: "test", RegistryDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s1 := mk()
	var info GraphInfo
	decodeBody(t, do(t, s1, "POST", "/v1/graphs", `{"graph":`+ciGraphJSON+`}`), http.StatusCreated, &info)
	if w := do(t, s1, "POST", "/v1/sssp", fmt.Sprintf(`{"graph":{"graph_id":%q},"source":0}`, info.ID)); w.Code != http.StatusOK {
		t.Fatalf("seed query: %d", w.Code)
	}
	do(t, s1, "PATCH", "/v1/graphs/"+info.ID+"/edges", `{"deltas":[{"op":"reweight","u":0,"v":2,"w":1}]}`)
	s1.Close() // the SIGTERM path: flush query-accumulated traces to disk

	s2 := mk()
	t.Cleanup(s2.Close)
	var got GraphInfo
	decodeBody(t, do(t, s2, "GET", "/v1/graphs/"+info.ID, ""), http.StatusOK, &got)
	if got.Revision != 2 || got.StaleSources != 1 {
		t.Fatalf("warm-started graph = %+v", got)
	}
	w := do(t, s2, "POST", "/v1/sssp", fmt.Sprintf(`{"graph":{"graph_id":%q},"source":0}`, info.ID))
	var resp SSSPResponse
	decodeBody(t, w, http.StatusOK, &resp)
	if w.Header().Get("X-Dsssp-Incr") != "repaired" {
		t.Fatalf("warm-started query X-Dsssp-Incr = %q, want repaired", w.Header().Get("X-Dsssp-Incr"))
	}
	var fresh SSSPResponse
	decodeBody(t, do(t, s2, "POST", "/v1/sssp", `{"graph":`+ciGraphPatchedJSON+`,"source":0}`), http.StatusOK, &fresh)
	if !reflect.DeepEqual(resp.Dist, fresh.Dist) {
		t.Fatalf("warm-started repair diverges: %v vs %v", resp.Dist, fresh.Dist)
	}
}

// TestPatchQueryRace hammers PATCH (toggling one edge weight between two
// contents) against concurrent queries on the same handle; under -race
// this exercises the registry/cache locking, and every response must be
// exactly the answer for one of the two revisions in flight — never a mix,
// never a stale third value.
func TestPatchQueryRace(t *testing.T) {
	s := testServer(t)
	var info GraphInfo
	decodeBody(t, do(t, s, "POST", "/v1/graphs", `{"graph":`+ciGraphJSON+`}`), http.StatusCreated, &info)

	// The two legal answers from source 3: chord at 10 (dist [0 1 2 1]
	// from 0 ⇒ from 3: [1 2 1 0]) and chord at 1.
	gA := ciGraph()
	gB, err := graph.ApplyDeltas(gA, []graph.EdgeDelta{{Op: graph.DeltaReweight, U: 0, V: 2, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	legal := map[string]bool{}
	for _, g := range []*graph.Graph{gA, gB} {
		b, _ := json.Marshal(graph.Dijkstra(g, 0))
		legal[string(b)] = true
	}

	const patches = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < patches; i++ {
			w := 1 + 9*(i%2) // 10, 1, 10, 1, …
			body := fmt.Sprintf(`{"deltas":[{"op":"reweight","u":0,"v":2,"w":%d}]}`, w)
			if res := do(t, s, "PATCH", "/v1/graphs/"+info.ID+"/edges", body); res.Code != 200 {
				t.Errorf("patch %d: %d %s", i, res.Code, res.Body.Bytes())
				return
			}
		}
	}()
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				w := do(t, s, "POST", "/v1/sssp", fmt.Sprintf(`{"graph":{"graph_id":%q},"source":0}`, info.ID))
				var resp SSSPResponse
				decodeBody(t, w, http.StatusOK, &resp)
				b, _ := json.Marshal(resp.Dist)
				if !legal[string(b)] {
					t.Errorf("query saw distances %s, not a legal revision's answer", b)
					return
				}
			}
		}()
	}
	wg.Wait()
}
