package service

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestStatusWriterFlusherPassthrough is the regression test for the
// streaming bug: the instrumented writer must still type-assert to
// http.Flusher (and forward the flush), or any handler that streams would
// silently buffer once wrapped.
func TestStatusWriterFlusherPassthrough(t *testing.T) {
	s := testServer(t)
	var sawFlusher bool
	h := s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		sawFlusher = ok
		if ok {
			w.Write([]byte("chunk"))
			f.Flush()
		}
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/healthz", nil))
	if !sawFlusher {
		t.Fatal("instrumented ResponseWriter does not type-assert to http.Flusher")
	}
	if !rec.Flushed {
		t.Fatal("Flush was not forwarded to the underlying writer")
	}

	// The unwrapped struct must also expose io.ReaderFrom (the sendfile
	// fast path) and keep the byte accounting Write performs.
	sw := &statusWriter{ResponseWriter: httptest.NewRecorder()}
	var w http.ResponseWriter = sw
	rf, ok := w.(io.ReaderFrom)
	if !ok {
		t.Fatal("statusWriter does not type-assert to io.ReaderFrom")
	}
	n, err := rf.ReadFrom(strings.NewReader("hello"))
	if err != nil || n != 5 {
		t.Fatalf("ReadFrom = (%d, %v), want (5, nil)", n, err)
	}
	if sw.bytes != 5 || sw.status != http.StatusOK {
		t.Fatalf("ReadFrom accounting: bytes=%d status=%d, want 5/200", sw.bytes, sw.status)
	}
}

// brokenWriter fails every body write — the shape of a client that hung up
// mid-response.
type brokenWriter struct {
	httptest.ResponseRecorder
}

func (w *brokenWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

// TestWriteErrorLogged asserts a failed response write surfaces in the
// completion log line instead of vanishing: truncated responses must be
// visible.
func TestWriteErrorLogged(t *testing.T) {
	var buf syncBuffer
	s, err := New(Config{
		HistoryDir: t.TempDir(), Workers: 2, Rev: "test",
		Logger: slog.New(slog.NewJSONHandler(&buf, nil)), SlowQueryThreshold: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	h := s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := w.Write([]byte("doomed")); err == nil {
			t.Error("broken writer reported success")
		}
	}))
	h.ServeHTTP(&brokenWriter{ResponseRecorder: *httptest.NewRecorder()}, httptest.NewRequest("GET", "/v1/healthz", nil))

	var completion map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] == "request" {
			completion = rec
		}
	}
	if completion == nil {
		t.Fatalf("no completion log line in %s", buf.String())
	}
	we, _ := completion["write_error"].(string)
	if !strings.Contains(we, io.ErrClosedPipe.Error()) {
		t.Fatalf("completion write_error = %q, want it to carry %q", we, io.ErrClosedPipe)
	}
}
