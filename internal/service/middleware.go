package service

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dsssp/internal/obs/trace"
)

// RequestIDHeader carries the per-request correlation ID: minted from the
// trace ID when absent, echoed when the client supplies a reasonable one,
// always set on the response and embedded in error JSON bodies — so one
// ID links the client's view, the completion log line, the metrics
// exemplars, and the flight-recorder trace.
const RequestIDHeader = "X-Dsssp-Request-Id"

// requestID returns the inbound header's ID if it is sane (short,
// printable ASCII — it gets logged and echoed verbatim) or the request's
// 32-hex trace ID, so logs, exemplars, and traces join on one key even
// for clients that send neither header.
func requestID(r *http.Request, sc trace.SpanContext) string {
	if id := r.Header.Get(RequestIDHeader); id != "" && len(id) <= 64 {
		ok := true
		for _, c := range id {
			if c <= ' ' || c > '~' {
				ok = false
				break
			}
		}
		if ok {
			return id
		}
	}
	return sc.TraceID.String()
}

// statusWriter wraps the ResponseWriter to capture the status code and
// body size for metrics/logging, carry the request ID to writeError, and
// convert the mux's own plain-text 404/405 replies into the service's
// JSON error shape so *every* non-2xx body is machine-readable.
type statusWriter struct {
	http.ResponseWriter
	requestID   string
	status      int
	bytes       int64
	intercepted bool // mux-generated error body suppressed, JSON written instead
	// writeErr is the first body-write failure (usually the client hanging
	// up mid-response). Writes to a dead connection return errors that
	// handlers routinely ignore, so the completion log line surfaces it —
	// a truncated response must be visible, not silent.
	writeErr error
}

// recordWriteErr keeps the first write failure for the completion log line.
func (w *statusWriter) recordWriteErr(err error) {
	if err != nil && w.writeErr == nil {
		w.writeErr = err
	}
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status != 0 {
		w.ResponseWriter.WriteHeader(code) // let net/http log the superfluous call
		return
	}
	w.status = code
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		strings.HasPrefix(w.Header().Get("Content-Type"), "text/plain") {
		// The bare ServeMux wrote this (our handlers always set JSON):
		// keep the status and Allow header, replace the text body.
		w.intercepted = true
		w.Header().Set("Content-Type", "application/json")
		w.ResponseWriter.WriteHeader(code)
		body, _ := json.Marshal(ErrorResponse{
			Error:     http.StatusText(code),
			Code:      errorCode(code),
			RequestID: w.requestID,
		})
		body = append(body, '\n')
		n, err := w.ResponseWriter.Write(body)
		w.recordWriteErr(err)
		w.bytes += int64(n)
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.intercepted {
		return len(b), nil // swallow the mux's plain-text body
	}
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.recordWriteErr(err)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards http.Flusher to the underlying writer. The embedded
// ResponseWriter hides optional interfaces behind the struct type, so
// without this passthrough any handler that type-asserts for streaming
// would silently lose flushing once instrumented.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom forwards io.ReaderFrom (the sendfile fast path) when the
// underlying writer provides it, falling back to a plain copy otherwise,
// with the same status/bytes/error accounting as Write.
func (w *statusWriter) ReadFrom(r io.Reader) (int64, error) {
	if w.intercepted {
		// Match Write: the mux's plain-text error body is being suppressed.
		return io.Copy(io.Discard, r)
	}
	if w.status == 0 {
		w.status = http.StatusOK
	}
	var (
		n   int64
		err error
	)
	if rf, ok := w.ResponseWriter.(io.ReaderFrom); ok {
		n, err = rf.ReadFrom(r)
	} else {
		n, err = io.Copy(w.ResponseWriter, r)
	}
	w.recordWriteErr(err)
	w.bytes += n
	return n, err
}

// dssspRequestID is the interface writeError uses to recover the request
// ID from whatever writer it was handed (the instrumented one in serving,
// a bare recorder in unit tests).
func (w *statusWriter) dssspRequestID() string { return w.requestID }

// TraceparentHeader is the response echo of the W3C propagation header:
// set (canonicalized) whenever the client sent one or the request was
// sampled, so callers can join their own traces to the flight recorder.
const TraceparentHeader = "Traceparent"

// rootSpanName names the root span for the bounded endpoint vocabulary.
// The query endpoints return constants so the unsampled fast path does
// not pay a concatenation allocation; everything else (debug, sweeps,
// health) allocates once, off the pinned path.
func rootSpanName(endpoint string) string {
	switch endpoint {
	case "sssp":
		return "HTTP sssp"
	case "apsp":
		return "HTTP apsp"
	case "path":
		return "HTTP path"
	}
	return "HTTP " + endpoint
}

// instrument wraps the mux with the per-request telemetry envelope:
// trace-root and request-ID assignment, in-flight/latency/status metrics,
// the one completion log line, slow-query logging, and panic recovery (a
// handler panic becomes a 500 JSON error, never a dead connection and
// never a dead server). The root span is started here — adopting the
// client's traceparent trace ID when one parses, minting otherwise — and
// ended here with the final status, so every child span a handler opens
// lands in one connected tree.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		endpoint := endpointLabel(r.URL.Path)
		parent, hadParent := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader))
		span, sc := s.tracer.StartRequest(rootSpanName(endpoint), parent)
		sw := &statusWriter{ResponseWriter: w, requestID: requestID(r, sc)}
		sw.Header().Set(RequestIDHeader, sw.requestID)
		if hadParent || sc.Sampled {
			// Unsolicited traceparent echo is skipped when unsampled: the
			// cached-hit fast path must not pay the header rendering.
			sw.Header().Set(TraceparentHeader, sc.Traceparent())
		}
		if span != nil {
			span.SetEndpoint(endpoint)
			span.SetAttr("method", r.Method)
			span.SetAttr("path", r.URL.Path)
			span.SetAttr("request_id", sw.requestID)
			// The request clone is sampled-only: WithContext allocates, and
			// the nil span needs no carrier (FromContext yields nil anyway).
			r = r.WithContext(trace.NewContext(r.Context(), span))
		}
		s.metrics.inFlight.With(endpoint).Inc()
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				span.SetError(fmt.Sprintf("panic: %v", p))
				writeError(sw, http.StatusInternalServerError, "internal panic: %v", p)
			}
			elapsed := time.Since(start)
			status := sw.status
			if status == 0 {
				status = http.StatusOK // handler wrote nothing at all
			}
			span.SetStatus(status)
			span.End()
			s.metrics.inFlight.With(endpoint).Dec()
			s.metrics.requests.With(endpoint, strconv.Itoa(status)).Inc()
			if sc.Sampled {
				s.metrics.latency.With(endpoint).ObserveExemplar(elapsed.Seconds(), span.TraceIDString())
			} else {
				s.metrics.latency.With(endpoint).Observe(elapsed.Seconds())
			}
			attrs := []slog.Attr{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("endpoint", endpoint),
				slog.Int("status", status),
				slog.Duration("latency", elapsed),
				slog.Int64("bytes", sw.bytes),
				slog.String("request_id", sw.requestID),
				slog.String("trace_id", sc.TraceID.String()),
			}
			if cacheState := sw.Header().Get("X-Dsssp-Cache"); cacheState != "" {
				attrs = append(attrs, slog.String("cache", cacheState))
			}
			if sw.writeErr != nil {
				attrs = append(attrs, slog.String("write_error", sw.writeErr.Error()))
			}
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
			if elapsed >= s.cfg.SlowQueryThreshold {
				s.metrics.slowQueries.Inc()
				s.logger.LogAttrs(r.Context(), slog.LevelWarn, "slow query",
					append(attrs, slog.Duration("threshold", s.cfg.SlowQueryThreshold))...)
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// errorCode maps a status to the stable machine-readable code clients
// switch on (the prose in "error" is for humans and may change).
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusRequestEntityTooLarge:
		return "body_too_large"
	case http.StatusUnprocessableEntity:
		return "unprocessable"
	case 499:
		return "cancelled"
	case http.StatusServiceUnavailable:
		return "overloaded"
	default:
		return "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	resp := ErrorResponse{Error: fmt.Sprintf(format, args...), Code: errorCode(status)}
	if rw, ok := w.(interface{ dssspRequestID() string }); ok {
		resp.RequestID = rw.dssspRequestID()
	}
	writeJSON(w, status, resp)
}
