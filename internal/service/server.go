// Package service is the long-running serving layer over the whole stack:
// an HTTP API that answers SSSP/APSP/path queries (inline graphs or
// generator specs) from a bounded worker pool behind a content-addressed
// result cache, runs scenario sweeps as cancellable async jobs whose
// reports land in an append-only history store, and chains that history
// through internal/benchdiff into per-scenario and per-phase envelope-ratio
// trends. The determinism the bench harness guarantees is what makes this
// sound: a query result is a pure function of (canonical graph, options),
// so cached bytes are indistinguishable from recomputation, and stored
// reports from different moments in history are directly comparable.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"dsssp"
	"dsssp/internal/graph"
	"dsssp/internal/harness"
	"dsssp/internal/obs"
)

// Config tunes a Server. The zero value serves with sane defaults except
// HistoryDir, which is required.
type Config struct {
	// HistoryDir is the append-only bench history directory (required).
	HistoryDir string
	// CacheBytes is the result cache's byte budget (default 64 MiB; <= 0
	// after defaulting disables storage but keeps request deduplication).
	CacheBytes int64
	// Workers bounds concurrently executing queries (default NumCPU).
	Workers int
	// MaxIntraWorkers caps a query's requested intra-round simulation
	// workers (QueryOptions.Workers); requests above the cap are clamped,
	// not rejected — the knob cannot change result bytes, only wall time.
	// Default NumCPU; set 1 to force sequential simulation. Note the cap
	// composes with Workers: a saturated query pool times per-query intra
	// workers can oversubscribe the machine, so busy deployments should
	// keep one of the two at 1.
	MaxIntraWorkers int
	// SweepParallel is the worker-pool size handed to sweeps that do not
	// set their own (default NumCPU).
	SweepParallel int
	// MaxConcurrentSweeps bounds sweeps running at once (default 1);
	// queued jobs wait their turn.
	MaxConcurrentSweeps int
	// Rev labels stored reports (a git revision; default "unknown").
	Rev string
	// MaxN caps requested graph sizes (default 4096).
	MaxN int
	// MaxEdges caps inline edge lists (default 1<<20).
	MaxEdges int
	// MaxBodyBytes caps request bodies (default 16 MiB).
	MaxBodyBytes int64
	// Logger receives one structured completion line per request plus
	// slow-query and lifecycle events (default: discard — the daemon
	// passes a real handler; tests stay quiet).
	Logger *slog.Logger
	// SlowQueryThreshold marks requests slower than this as slow queries
	// (logged at Warn, counted in dsssp_slow_queries_total; default 1s).
	SlowQueryThreshold time.Duration

	// now is the test hook for timestamps (default time.Now).
	now func() time.Time
}

func (c *Config) applyDefaults() {
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.MaxIntraWorkers <= 0 {
		c.MaxIntraWorkers = runtime.NumCPU()
	}
	if c.SweepParallel <= 0 {
		c.SweepParallel = runtime.NumCPU()
	}
	if c.MaxConcurrentSweeps <= 0 {
		c.MaxConcurrentSweeps = 1
	}
	if c.Rev == "" {
		c.Rev = "unknown"
	}
	if c.MaxN <= 0 {
		c.MaxN = 4096
	}
	if c.MaxEdges <= 0 {
		c.MaxEdges = 1 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.SlowQueryThreshold <= 0 {
		c.SlowQueryThreshold = time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// Server is the dsssp serving layer; construct with New, expose with
// Handler, stop with Close.
type Server struct {
	cfg      Config
	cache    *Cache
	store    *Store
	jobs     *jobSet
	querySem chan struct{}
	sweepSem chan struct{}
	mux      *http.ServeMux
	metrics  *serverMetrics
	logger   *slog.Logger
	started  time.Time

	// baseCtx parents every job so Close can cancel them; jobsWG waits for
	// their goroutines to observe it.
	baseCtx   context.Context
	cancelAll context.CancelFunc
	jobsWG    sync.WaitGroup
}

// New builds a Server (opening the history store) without binding a port.
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	store, err := OpenStore(cfg.HistoryDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	cache := NewCache(cfg.CacheBytes)
	s := &Server{
		cfg:       cfg,
		cache:     cache,
		store:     store,
		jobs:      newJobSet(),
		querySem:  make(chan struct{}, cfg.Workers),
		sweepSem:  make(chan struct{}, cfg.MaxConcurrentSweeps),
		mux:       http.NewServeMux(),
		metrics:   newServerMetrics(&cfg, cache, store),
		logger:    cfg.Logger,
		started:   cfg.now(),
		baseCtx:   ctx,
		cancelAll: cancel,
	}
	s.mux.Handle("GET /metrics", s.metrics.reg.Handler())
	s.mux.HandleFunc("POST /v1/sssp", s.handleSSSP)
	s.mux.HandleFunc("POST /v1/path", s.handlePath)
	s.mux.HandleFunc("POST /v1/apsp", s.handleAPSP)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	s.mux.HandleFunc("GET /v1/trends", s.handleTrends)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the HTTP handler, wrapped in the instrumentation
// middleware: request-ID assignment, per-endpoint metrics, one structured
// completion log line per request, and panic recovery (a handler panic
// becomes a 500 JSON error, never a dead connection and never a dead
// server).
func (s *Server) Handler() http.Handler {
	return s.instrument(s.mux)
}

// Metrics exposes the telemetry registry (the daemon mounts it on the
// debug listener too; tests scrape it directly).
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// Close cancels every running job and waits for them to finish. Call after
// the HTTP listener has drained (http.Server.Shutdown) so in-flight
// requests see consistent state.
func (s *Server) Close() {
	s.cancelAll()
	s.jobsWG.Wait()
}

// Store exposes the history store (the daemon reports its location).
func (s *Server) Store() *Store { return s.store }

func (s *Server) now() time.Time { return s.cfg.now() }

// --- query endpoints ---

func (s *Server) handleSSSP(w http.ResponseWriter, r *http.Request) {
	var req SSSPRequest
	if !s.decode(w, r, &req) {
		return
	}
	// ?trace=1 and options.record_phases both attach the per-phase
	// breakdown; folding trace into the options before the key is computed
	// keeps traced and untraced responses as distinct cache entries.
	req.Options.RecordPhases = req.Options.RecordPhases || wantTrace(r)
	g, opts, ok := s.prepare(w, req.Graph, req.Options)
	if !ok {
		return
	}
	if req.Source < 0 || req.Source >= int64(g.N()) {
		s.replyError(w, badf("source %d out of range [0,%d)", req.Source, g.N()))
		return
	}
	key := queryKey("sssp", g, req.Options, fmt.Sprintf("src=%d", req.Source))
	s.finishQuery(w, r, key, func() ([]byte, error) {
		res, err := dsssp.SSSP(g, graph.NodeID(req.Source), opts)
		if err != nil {
			return nil, err
		}
		phases := harness.PhasesFromSpans(res.Metrics.Spans)
		s.metrics.observePhases(phases)
		resp := SSSPResponse{
			N: g.N(), M: g.M(),
			Dist:           res.Dist,
			Unreachable:    countUnreachable(res.Dist),
			SubproblemsMax: res.SubproblemsMax,
			Metrics:        metricsJSON(res.Metrics),
		}
		if req.Options.RecordPhases {
			resp.Phases = phases
		}
		return json.Marshal(resp)
	})
}

// wantTrace reports whether the query string asks for the span-level
// trace (?trace=1): the per-phase round/energy/bits breakdown inline in
// the response.
func wantTrace(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true":
		return true
	}
	return false
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	var req PathRequest
	if !s.decode(w, r, &req) {
		return
	}
	g, opts, ok := s.prepare(w, req.Graph, req.Options)
	if !ok {
		return
	}
	for name, v := range map[string]int64{"source": req.Source, "target": req.Target} {
		if v < 0 || v >= int64(g.N()) {
			s.replyError(w, badf("%s %d out of range [0,%d)", name, v, g.N()))
			return
		}
	}
	key := queryKey("path", g, req.Options, fmt.Sprintf("src=%d|dst=%d", req.Source, req.Target))
	s.finishQuery(w, r, key, func() ([]byte, error) {
		tr, err := dsssp.SSSPTree(g, graph.NodeID(req.Source), opts)
		if err != nil {
			return nil, err
		}
		s.metrics.observePhases(harness.PhasesFromSpans(tr.Metrics.Spans))
		resp := PathResponse{Dist: tr.Dist[req.Target], Path: []int64{}, Metrics: metricsJSON(tr.Metrics)}
		if resp.Dist != graph.Inf {
			// Unreachable targets are an answer (dist = +Inf sentinel,
			// empty path), not an error.
			nodes, err := tr.PathTo(graph.NodeID(req.Target))
			if err != nil {
				return nil, err
			}
			for _, v := range nodes {
				resp.Path = append(resp.Path, int64(v))
			}
		}
		return json.Marshal(resp)
	})
}

func (s *Server) handleAPSP(w http.ResponseWriter, r *http.Request) {
	var req APSPRequest
	if !s.decode(w, r, &req) {
		return
	}
	req.Options.RecordPhases = req.Options.RecordPhases || wantTrace(r)
	g, opts, ok := s.prepare(w, req.Graph, req.Options)
	if !ok {
		return
	}
	key := queryKey("apsp", g, req.Options, fmt.Sprintf("seed=%d", req.Seed))
	s.finishQuery(w, r, key, func() ([]byte, error) {
		res, err := dsssp.APSP(g, opts, req.Seed)
		if err != nil {
			return nil, err
		}
		comp := res.Composition
		phases := harness.PhasesFromSpans(comp.Spans)
		s.metrics.observePhases(phases)
		resp := APSPResponse{
			N: g.N(), M: g.M(),
			Dist: res.Dist,
			Composition: CompositionJSON{
				Dilation: comp.Dilation, Congestion: comp.Congestion,
				MakespanAligned: comp.MakespanAligned, MakespanRandom: comp.MakespanRandom,
				MakespanSequential: comp.MakespanSequential, MaxMessageBits: comp.MaxMessageBits,
			},
		}
		if req.Options.RecordPhases {
			resp.Phases = phases
		}
		return json.Marshal(resp)
	})
}

// prepare builds the graph and options for a query, replying on error.
func (s *Server) prepare(w http.ResponseWriter, spec GraphSpec, qo QueryOptions) (*graph.Graph, *dsssp.Options, bool) {
	g, err := buildGraph(spec, s.cfg.MaxN, s.cfg.MaxEdges)
	if err != nil {
		s.replyError(w, err)
		return nil, nil, false
	}
	opts, err := resolveOptions(qo, s.cfg.Workers, s.cfg.MaxIntraWorkers)
	if err != nil {
		s.replyError(w, err)
		return nil, nil, false
	}
	return g, opts, true
}

// finishQuery funnels every query through the content-addressed cache and
// the bounded worker pool: hits skip the pool entirely; misses acquire a
// worker slot (respecting request cancellation while queued), compute,
// and leave their bytes behind. Identical concurrent misses collapse into
// one computation (every follower gets the leader's bytes, counted as a
// hit and marked X-Dsssp-Cache: hit).
func (s *Server) finishQuery(w http.ResponseWriter, r *http.Request, key string, compute func() ([]byte, error)) {
	body, hit, err := s.cache.GetOrCompute(key, func() ([]byte, error) {
		s.metrics.queueDepth.Inc()
		queued := time.Now()
		select {
		case s.querySem <- struct{}{}:
			s.metrics.queueDepth.Dec()
			s.metrics.queueWait.Observe(time.Since(queued).Seconds())
			s.metrics.poolBusy.Inc()
			defer func() {
				s.metrics.poolBusy.Dec()
				<-s.querySem
			}()
		case <-r.Context().Done():
			s.metrics.queueDepth.Dec()
			return nil, r.Context().Err()
		}
		return compute()
	})
	if err != nil {
		s.replyError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Dsssp-Cache", "hit")
	} else {
		w.Header().Set("X-Dsssp-Cache", "miss")
	}
	w.Write(body)
	w.Write([]byte("\n"))
}

// --- sweep endpoints ---

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decode(w, r, &req) {
		return
	}
	// Normalize the filter exactly like RunScenariosWith will: trim each
	// pattern, drop blanks, and treat an empty (or all-blank) list as "the
	// whole suite" — the pre-validation below must not enforce a stricter
	// grammar than the sweep itself.
	cleaned := req.Patterns[:0:0]
	for _, p := range req.Patterns {
		if p = strings.TrimSpace(p); p != "" {
			cleaned = append(cleaned, p)
		}
	}
	if len(cleaned) == 0 {
		cleaned = nil
	}
	req.Patterns = cleaned
	// Reject unknown patterns up front (cheap registry check) so a typo is
	// a 400, not a failed job discovered by polling.
	if req.Patterns != nil {
		if _, err := harness.Default(req.Quick).Select(req.Patterns); err != nil {
			s.replyError(w, badRequest{err})
			return
		}
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j, err := s.jobs.add(JobStatus{
		State:       JobQueued,
		Patterns:    req.Patterns,
		Quick:       req.Quick,
		SubmittedAt: s.now(),
	}, cancel)
	if err != nil {
		cancel()
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.metrics.jobsActive.With(string(JobQueued)).Inc()
	s.jobsWG.Add(1)
	go s.runJob(ctx, j, req)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.snapshots())
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no sweep job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no sweep job %q", r.PathValue("id"))
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.snapshot())
}

// --- observability endpoints ---

// StatsResponse is the GET /v1/stats body: a full operational snapshot —
// cache, worker pool, jobs by state, and history store — not cache-only.
type StatsResponse struct {
	Rev            string           `json:"rev"`
	UptimeNS       int64            `json:"uptime_ns"`
	Cache          CacheStats       `json:"cache"`
	Pool           PoolStats        `json:"pool"`
	Jobs           map[JobState]int `json:"jobs"`
	Store          StoreStats       `json:"store"`
	HistoryReports int              `json:"history_reports"`
}

// PoolStats is the query worker pool's instantaneous state.
type PoolStats struct {
	// Workers is the configured pool size.
	Workers int `json:"workers"`
	// InFlight is the number of slots currently executing a query.
	InFlight int `json:"in_flight"`
	// Queued is the number of query misses waiting for a slot.
	Queued int `json:"queued"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	storeStats, err := s.store.Stats()
	if err != nil {
		s.replyError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Rev:      s.cfg.Rev,
		UptimeNS: s.now().Sub(s.started).Nanoseconds(),
		Cache:    s.cache.Stats(),
		Pool: PoolStats{
			Workers:  s.cfg.Workers,
			InFlight: int(s.metrics.poolBusy.Value()),
			Queued:   int(s.metrics.queueDepth.Value()),
		},
		Jobs:           s.jobs.counts(),
		Store:          storeStats,
		HistoryReports: storeStats.Reports,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// --- plumbing ---

// decode parses a JSON request body strictly: unknown fields, trailing
// garbage, and oversized bodies are 400s with a JSON error body.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, "parsing request body: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after the JSON body")
		return false
	}
	return true
}

// replyError maps an error to its status: client mistakes are 400s,
// algorithm/simulation rejections 422s, cancellations 499 (the de facto
// client-closed-request code), everything else 500.
func (s *Server) replyError(w http.ResponseWriter, err error) {
	var br badRequest
	switch {
	case errors.As(err, &br):
		writeError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeError(w, 499, "request cancelled: %v", err)
	case isComputeError(err):
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// isComputeError recognizes algorithm-level rejections (invalid option
// combinations the wire validation cannot see, strict-CONGEST budget
// violations, round-cap overruns) — requests that were well-formed but
// unprocessable, as opposed to infrastructure failures.
func isComputeError(err error) bool {
	msg := err.Error()
	for _, prefix := range []string{"dsssp:", "simnet:", "core:", "proto:", "sched:"} {
		if strings.HasPrefix(msg, prefix) {
			return true
		}
	}
	return false
}
