// Package service is the long-running serving layer over the whole stack:
// an HTTP API that answers SSSP/APSP/path queries (inline graphs or
// generator specs) from a bounded worker pool behind a content-addressed
// result cache, runs scenario sweeps as cancellable async jobs whose
// reports land in an append-only history store, and chains that history
// through internal/benchdiff into per-scenario and per-phase envelope-ratio
// trends. The determinism the bench harness guarantees is what makes this
// sound: a query result is a pure function of (canonical graph, options),
// so cached bytes are indistinguishable from recomputation, and stored
// reports from different moments in history are directly comparable.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"dsssp"
	"dsssp/internal/graph"
	"dsssp/internal/harness"
	"dsssp/internal/incr"
	"dsssp/internal/obs"
	"dsssp/internal/obs/trace"
)

// Config tunes a Server. The zero value serves with sane defaults except
// HistoryDir, which is required.
type Config struct {
	// HistoryDir is the append-only bench history directory (required).
	HistoryDir string
	// CacheBytes is the result cache's byte budget (default 64 MiB; <= 0
	// after defaulting disables storage but keeps request deduplication).
	CacheBytes int64
	// GraphBytes is the dynamic-graph registry's byte budget: registered
	// graphs plus their per-source result traces, evicted whole-graph LRU
	// (default 256 MiB).
	GraphBytes int64
	// RegistryDir, when set, persists registered graphs (and their traces)
	// to disk on register/PATCH and reloads them on startup, so a redeploy
	// doesn't forget every registered graph. Empty disables persistence.
	RegistryDir string
	// RepairMaxAffected is the affected-region repair cutoff as a fraction
	// of n: a dirty source is repaired from its stale trace only while the
	// affected region stays within the fraction; past it the repair
	// abandons ship and the source recomputes from scratch (which also
	// re-mints a cacheable canonical body). 0 defaults to 0.5; negative
	// disables repair entirely.
	RepairMaxAffected float64
	// Workers bounds concurrently executing queries (default NumCPU).
	Workers int
	// MaxIntraWorkers caps a query's requested intra-round simulation
	// workers (QueryOptions.Workers); requests above the cap are clamped,
	// not rejected — the knob cannot change result bytes, only wall time.
	// Default NumCPU; set 1 to force sequential simulation. Note the cap
	// composes with Workers: a saturated query pool times per-query intra
	// workers can oversubscribe the machine, so busy deployments should
	// keep one of the two at 1.
	MaxIntraWorkers int
	// SweepParallel is the worker-pool size handed to sweeps that do not
	// set their own (default NumCPU).
	SweepParallel int
	// MaxConcurrentSweeps bounds sweeps running at once (default 1);
	// queued jobs wait their turn.
	MaxConcurrentSweeps int
	// Rev labels stored reports (a git revision; default "unknown").
	Rev string
	// MaxN caps requested graph sizes (default 4096).
	MaxN int
	// MaxEdges caps inline edge lists (default 1<<20).
	MaxEdges int
	// MaxBodyBytes caps request bodies (default 16 MiB).
	MaxBodyBytes int64
	// Logger receives one structured completion line per request plus
	// slow-query and lifecycle events (default: discard — the daemon
	// passes a real handler; tests stay quiet).
	Logger *slog.Logger
	// SlowQueryThreshold marks requests slower than this as slow queries
	// (logged at Warn, counted in dsssp_slow_queries_total; default 1s).
	// Traces at least this slow also land in the flight recorder's
	// retained ring.
	SlowQueryThreshold time.Duration
	// TraceSampleRate is the fraction of requests that record a span tree
	// into the flight recorder (0 defaults to 1.0 — record everything;
	// negative disables recording, leaving only trace-ID correlation).
	// Unsampled requests pay no tracing allocations.
	TraceSampleRate float64
	// TraceRecent is the flight recorder's recent-trace ring capacity
	// (default 256).
	TraceRecent int
	// TraceRetained is the flight recorder's slow/error retention ring
	// capacity (default 64).
	TraceRetained int

	// now is the test hook for timestamps (default time.Now).
	now func() time.Time
}

func (c *Config) applyDefaults() {
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.GraphBytes == 0 {
		c.GraphBytes = 256 << 20
	}
	if c.RepairMaxAffected == 0 {
		c.RepairMaxAffected = 0.5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.MaxIntraWorkers <= 0 {
		c.MaxIntraWorkers = runtime.NumCPU()
	}
	if c.SweepParallel <= 0 {
		c.SweepParallel = runtime.NumCPU()
	}
	if c.MaxConcurrentSweeps <= 0 {
		c.MaxConcurrentSweeps = 1
	}
	if c.Rev == "" {
		c.Rev = "unknown"
	}
	if c.MaxN <= 0 {
		c.MaxN = 4096
	}
	if c.MaxEdges <= 0 {
		c.MaxEdges = 1 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.SlowQueryThreshold <= 0 {
		c.SlowQueryThreshold = time.Second
	}
	if c.TraceSampleRate == 0 {
		c.TraceSampleRate = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// Server is the dsssp serving layer; construct with New, expose with
// Handler, stop with Close.
type Server struct {
	cfg      Config
	cache    *Cache
	store    *Store
	registry *GraphRegistry
	jobs     *jobSet
	querySem chan struct{}
	sweepSem chan struct{}
	mux      *http.ServeMux
	metrics  *serverMetrics
	tracer   *trace.Tracer
	logger   *slog.Logger
	started  time.Time

	// baseCtx parents every job so Close can cancel them; jobsWG waits for
	// their goroutines to observe it.
	baseCtx   context.Context
	cancelAll context.CancelFunc
	jobsWG    sync.WaitGroup
}

// New builds a Server (opening the history store) without binding a port.
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	store, err := OpenStore(cfg.HistoryDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	cache := NewCache(cfg.CacheBytes)
	registry := NewGraphRegistry(cfg.GraphBytes, cache, cfg.now)
	if cfg.RegistryDir != "" {
		restored, err := registry.EnablePersistence(cfg.RegistryDir)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("registry persistence: %w", err)
		}
		cfg.Logger.Info("registry persistence enabled",
			"dir", cfg.RegistryDir, "graphs_restored", restored)
	}
	metrics := newServerMetrics(&cfg, cache, store, registry)
	registry.bindMetrics(metrics)
	tracer := trace.New(trace.Config{
		SampleRate:    cfg.TraceSampleRate,
		Recent:        cfg.TraceRecent,
		Retained:      cfg.TraceRetained,
		SlowThreshold: cfg.SlowQueryThreshold,
	})
	s := &Server{
		cfg:       cfg,
		cache:     cache,
		store:     store,
		registry:  registry,
		jobs:      newJobSet(),
		querySem:  make(chan struct{}, cfg.Workers),
		sweepSem:  make(chan struct{}, cfg.MaxConcurrentSweeps),
		mux:       http.NewServeMux(),
		metrics:   metrics,
		tracer:    tracer,
		logger:    cfg.Logger,
		started:   cfg.now(),
		baseCtx:   ctx,
		cancelAll: cancel,
	}
	s.mux.Handle("GET /metrics", s.metrics.reg.Handler())
	s.mux.HandleFunc("POST /v1/sssp", s.handleSSSP)
	s.mux.HandleFunc("POST /v1/path", s.handlePath)
	s.mux.HandleFunc("POST /v1/apsp", s.handleAPSP)
	s.mux.HandleFunc("POST /v1/graphs", s.handleGraphRegister)
	s.mux.HandleFunc("GET /v1/graphs", s.handleGraphList)
	s.mux.HandleFunc("GET /v1/graphs/{id}", s.handleGraphGet)
	s.mux.HandleFunc("DELETE /v1/graphs/{id}", s.handleGraphDelete)
	s.mux.HandleFunc("PATCH /v1/graphs/{id}/edges", s.handleGraphPatch)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	s.mux.HandleFunc("GET /v1/trends", s.handleTrends)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the HTTP handler, wrapped in the instrumentation
// middleware: request-ID assignment, per-endpoint metrics, one structured
// completion log line per request, and panic recovery (a handler panic
// becomes a 500 JSON error, never a dead connection and never a dead
// server).
func (s *Server) Handler() http.Handler {
	return s.instrument(s.mux)
}

// Metrics exposes the telemetry registry (the daemon mounts it on the
// debug listener too; tests scrape it directly).
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// Tracer exposes the request tracer (the load generators and tests reach
// the flight recorder through it).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Close cancels every running job, waits for them to finish, and flushes
// the registry to its persistence directory (traces accumulated by queries
// since the last register/PATCH spill included). Call after the HTTP
// listener has drained (http.Server.Shutdown) so in-flight requests see
// consistent state.
func (s *Server) Close() {
	s.cancelAll()
	s.jobsWG.Wait()
	if err := s.registry.Flush(); err != nil {
		s.logger.Error("registry flush failed", "err", err)
	}
}

// Store exposes the history store (the daemon reports its location).
func (s *Server) Store() *Store { return s.store }

func (s *Server) now() time.Time { return s.cfg.now() }

// --- query endpoints ---

func (s *Server) handleSSSP(w http.ResponseWriter, r *http.Request) {
	var req SSSPRequest
	if !s.decode(w, r, &req) {
		return
	}
	// ?trace=1 and options.record_phases both attach the per-phase
	// breakdown; folding trace into the options before the key is computed
	// keeps traced and untraced responses as distinct cache entries.
	req.Options.RecordPhases = req.Options.RecordPhases || wantTrace(r)
	g, digest, opts, ref, ok := s.prepare(w, r, req.Graph, req.Options)
	if !ok {
		return
	}
	if req.Source < 0 || req.Source >= int64(g.N()) {
		s.replyError(w, badf("source %d out of range [0,%d)", req.Source, g.N()))
		return
	}
	parts := queryKeyParts("sssp", req.Options, fmt.Sprintf("src=%d", req.Source))
	repaired := false
	hit, ok := s.finishQuery(w, r, keyFromDigest(digest, parts), func(sp *trace.Span) ([]byte, bool, error) {
		// A cache miss on a registered graph first tries affected-region
		// repair of the source's remembered trace — skipped when the
		// request wants the per-phase breakdown, which only a real
		// simulation can produce. Repaired bodies are deliberately NOT
		// cached: they carry the incr block and no simulation metrics, so
		// they are not the key's canonical bytes; a later full recompute
		// (or the next cache hit on an already-canonical entry) re-mints
		// those.
		if !req.Options.RecordPhases {
			if rr := s.tryRepair(sp, ref, digest, g, graph.NodeID(req.Source)); rr != nil {
				repaired = true
				w.Header().Set("X-Dsssp-Incr", "repaired")
				resp := SSSPResponse{
					N: g.N(), M: g.M(),
					Dist:        rr.Dist,
					Unreachable: countUnreachable(rr.Dist),
					Incr:        queryIncr(rr, g.N()),
				}
				b, err := json.Marshal(resp)
				return b, false, err
			}
		}
		if ref != nil {
			w.Header().Set("X-Dsssp-Incr", "recomputed")
		}
		eng := sp.StartChild("engine")
		res, err := dsssp.SSSP(g, graph.NodeID(req.Source), opts)
		if err != nil {
			eng.SetError(err.Error())
			eng.End()
			return nil, false, err
		}
		phases := harness.PhasesFromSpans(res.Metrics.Spans)
		graftEnginePhases(eng, phases)
		eng.End()
		s.metrics.observePhases(phases, sp.TraceIDString())
		if ref != nil {
			// The distance row is what a future PATCH classifies this
			// source against; the witness tree is what a repair restarts
			// from; the parts string is how a PATCH re-addresses or
			// invalidates this response's cache entry.
			s.registry.Record(ref.id, digest, graph.NodeID(req.Source), res.Dist,
				graph.WitnessParents(g, graph.NodeID(req.Source), res.Dist), parts)
		}
		resp := SSSPResponse{
			N: g.N(), M: g.M(),
			Dist:           res.Dist,
			Unreachable:    countUnreachable(res.Dist),
			SubproblemsMax: res.SubproblemsMax,
			Metrics:        metricsJSON(res.Metrics),
		}
		if req.Options.RecordPhases {
			resp.Phases = phases
		}
		b, err := json.Marshal(resp)
		return b, true, err
	})
	if ok && ref != nil {
		s.countReuse(hit, repaired, 1)
	}
}

// tryRepair attempts affected-region repair for one source of a registered
// graph: resolve the remembered trace and its net changes, bound the
// affected region by the configured fraction of n, and run incr.Repair.
// nil means the caller must fall back to the full computation (no usable
// trace, repair disabled, or the region outgrew the cutoff). On success
// the repaired trace is promoted to the head revision, so the next PATCH
// classifies it and the next query serves it in O(n).
//
// A sampled request gets a repair span under sp, with the four repair
// phases (carve/seed/settle/witness) grafted as children carrying their
// measured wall times, and the affected-region sizes as attributes; the
// same per-phase split feeds dsssp_repair_phase_seconds so repaired
// queries have a breakdown story like computed ones.
func (s *Server) tryRepair(sp *trace.Span, ref *graphRef, digest [32]byte, g *graph.Graph, src graph.NodeID) *incr.RepairResult {
	if ref == nil || s.cfg.RepairMaxAffected < 0 {
		return nil
	}
	tr, changes, ok := s.registry.Repairable(ref.id, digest, src)
	if !ok {
		return nil
	}
	limit := 0
	if s.cfg.RepairMaxAffected > 0 {
		limit = int(s.cfg.RepairMaxAffected * float64(g.N()))
		if limit < 1 {
			limit = 1
		}
	}
	rsp := sp.StartChild("repair")
	rsp.SetAttr("source", int64(src))
	rsp.SetAttr("changes", len(changes))
	start := time.Now()
	rr, ok := incr.Repair(g, src, tr, changes, limit)
	s.metrics.repairSeconds.Observe(time.Since(start).Seconds())
	if !ok {
		s.metrics.incrRepairFallbacks.Inc()
		rsp.SetAttr("outcome", "fallback")
		rsp.End()
		return nil
	}
	s.metrics.incrSourcesRepaired.Inc()
	s.metrics.repairAffectedFraction.Observe(float64(rr.Affected) / float64(g.N()))
	rsp.SetAttr("outcome", "repaired")
	rsp.SetAttr("affected", rr.Affected)
	rsp.SetAttr("orphaned", rr.Orphaned)
	rsp.SetAttr("affected_fraction", float64(rr.Affected)/float64(g.N()))
	cursor := rsp.StartTime()
	for i, ns := range rr.PhaseNS {
		s.metrics.repairPhaseSeconds.With(incr.RepairPhaseNames[i]).Observe(float64(ns) / 1e9)
		rsp.Graft("repair:"+incr.RepairPhaseNames[i], cursor, time.Duration(ns))
		cursor = cursor.Add(time.Duration(ns))
	}
	rsp.End()
	s.registry.Record(ref.id, digest, src, rr.Dist, rr.Parent, "")
	return rr
}

func queryIncr(rr *incr.RepairResult, n int) *QueryIncrJSON {
	return &QueryIncrJSON{
		Served:           "repaired",
		AffectedVertices: rr.Affected,
		AffectedFraction: float64(rr.Affected) / float64(n),
	}
}

// countReuse feeds the registered-graph reuse counters: a cache hit is a
// source served without recomputation, a repaired miss was counted by
// tryRepair already, and everything else is a recompute.
func (s *Server) countReuse(hit, repaired bool, sources int64) {
	if hit {
		s.metrics.incrSourcesReused.Add(sources)
	} else if !repaired {
		s.metrics.incrSourcesRecomputed.Add(sources)
	}
}

// wantTrace reports whether the query string asks for the span-level
// trace (?trace=1): the per-phase round/energy/bits breakdown inline in
// the response.
func wantTrace(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true":
		return true
	}
	return false
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	var req PathRequest
	if !s.decode(w, r, &req) {
		return
	}
	g, digest, opts, ref, ok := s.prepare(w, r, req.Graph, req.Options)
	if !ok {
		return
	}
	for name, v := range map[string]int64{"source": req.Source, "target": req.Target} {
		if v < 0 || v >= int64(g.N()) {
			s.replyError(w, badf("%s %d out of range [0,%d)", name, v, g.N()))
			return
		}
	}
	parts := queryKeyParts("path", req.Options, fmt.Sprintf("src=%d|dst=%d", req.Source, req.Target))
	repaired := false
	hit, ok := s.finishQuery(w, r, keyFromDigest(digest, parts), func(sp *trace.Span) ([]byte, bool, error) {
		// A repaired trace answers a path query directly: the witness tree
		// IS the shortest-path tree, so the path is a parent walk from the
		// target — no simulation, no tree extraction.
		if !req.Options.RecordPhases {
			if rr := s.tryRepair(sp, ref, digest, g, graph.NodeID(req.Source)); rr != nil {
				repaired = true
				w.Header().Set("X-Dsssp-Incr", "repaired")
				resp := PathResponse{Dist: rr.Dist[req.Target], Path: []int64{}, Incr: queryIncr(rr, g.N())}
				if resp.Dist != graph.Inf {
					nodes := walkParents(rr.Parent, graph.NodeID(req.Source), graph.NodeID(req.Target))
					for _, v := range nodes {
						resp.Path = append(resp.Path, int64(v))
					}
				}
				b, err := json.Marshal(resp)
				return b, false, err
			}
		}
		if ref != nil {
			w.Header().Set("X-Dsssp-Incr", "recomputed")
		}
		eng := sp.StartChild("engine")
		tr, err := dsssp.SSSPTree(g, graph.NodeID(req.Source), opts)
		if err != nil {
			eng.SetError(err.Error())
			eng.End()
			return nil, false, err
		}
		pathPhases := harness.PhasesFromSpans(tr.Metrics.Spans)
		graftEnginePhases(eng, pathPhases)
		eng.End()
		s.metrics.observePhases(pathPhases, sp.TraceIDString())
		if ref != nil {
			// A path query is an SSSP from its source under the covers, so
			// its trace classifies (and migrates/invalidates) like one —
			// and it already carries the witness tree repair needs.
			s.registry.Record(ref.id, digest, graph.NodeID(req.Source), tr.Dist, tr.Parent, parts)
		}
		resp := PathResponse{Dist: tr.Dist[req.Target], Path: []int64{}, Metrics: metricsJSON(tr.Metrics)}
		if resp.Dist != graph.Inf {
			// Unreachable targets are an answer (dist = +Inf sentinel,
			// empty path), not an error.
			nodes, err := tr.PathTo(graph.NodeID(req.Target))
			if err != nil {
				return nil, false, err
			}
			for _, v := range nodes {
				resp.Path = append(resp.Path, int64(v))
			}
		}
		b, err := json.Marshal(resp)
		return b, true, err
	})
	if ok && ref != nil {
		s.countReuse(hit, repaired, 1)
	}
}

// walkParents reconstructs target → … → source from a witness parent tree
// — the exact orientation dsssp.TreeResult.PathTo returns, so a repaired
// path response is byte-identical to a computed one.
func walkParents(parent []graph.NodeID, source, target graph.NodeID) []graph.NodeID {
	path := []graph.NodeID{target}
	for v := target; v != source && parent[v] >= 0; {
		v = parent[v]
		path = append(path, v)
	}
	return path
}

func (s *Server) handleAPSP(w http.ResponseWriter, r *http.Request) {
	var req APSPRequest
	if !s.decode(w, r, &req) {
		return
	}
	req.Options.RecordPhases = req.Options.RecordPhases || wantTrace(r)
	g, digest, opts, ref, ok := s.prepare(w, r, req.Graph, req.Options)
	if !ok {
		return
	}
	parts := queryKeyParts("apsp", req.Options, fmt.Sprintf("seed=%d", req.Seed))
	var rowsReused, rowsRecomputed int64
	hit, ok := s.finishQuery(w, r, keyFromDigest(digest, parts), func(sp *trace.Span) ([]byte, bool, error) {
		// For a registered graph, fan out only to sources without a traced
		// row at this revision — and before fanning out, try affected-region
		// repair on each untraced source that still has a stale trace.
		// Per-source SSSP instances are independent, so a reused or repaired
		// row is byte-identical to what a re-run would produce; only the
		// Composition (which describes the instances actually run this time)
		// and the Incr split distinguish a partially-reused response from a
		// from-scratch one.
		var traced map[graph.NodeID][]int64
		if ref != nil {
			traced = s.registry.Rows(ref.id, digest)
		}
		missing := make([]graph.NodeID, 0, g.N())
		dist := make([][]int64, g.N())
		for v := 0; v < g.N(); v++ {
			if row, ok := traced[graph.NodeID(v)]; ok {
				dist[v] = row
			} else {
				missing = append(missing, graph.NodeID(v))
			}
		}
		repairedRows := 0
		if ref != nil && len(missing) > 0 {
			still := missing[:0]
			for _, src := range missing {
				if rr := s.tryRepair(sp, ref, digest, g, src); rr != nil {
					dist[src] = rr.Dist
					repairedRows++
				} else {
					still = append(still, src)
				}
			}
			missing = still
		}
		reused := g.N() - len(missing) - repairedRows
		resp := APSPResponse{N: g.N(), M: g.M(), Dist: dist}
		if len(missing) > 0 {
			eng := sp.StartChild("engine")
			eng.SetAttr("sources", len(missing))
			res, err := dsssp.APSPFrom(g, missing, opts, req.Seed)
			if err != nil {
				eng.SetError(err.Error())
				eng.End()
				return nil, false, err
			}
			for _, src := range missing {
				dist[src] = res.Dist[src]
			}
			comp := res.Composition
			phases := harness.PhasesFromSpans(comp.Spans)
			graftEnginePhases(eng, phases)
			eng.End()
			s.metrics.observePhases(phases, sp.TraceIDString())
			resp.Composition = CompositionJSON{
				Dilation: comp.Dilation, Congestion: comp.Congestion,
				MakespanAligned: comp.MakespanAligned, MakespanRandom: comp.MakespanRandom,
				MakespanSequential: comp.MakespanSequential, MaxMessageBits: comp.MaxMessageBits,
			}
			if req.Options.RecordPhases {
				resp.Phases = phases
			}
		}
		if ref != nil {
			// Recomputed rows are recorded with their witness trees so a
			// later PATCH demotes them to repairable stale traces instead of
			// forgetting them. (Repaired rows were promoted by tryRepair.)
			newRows := make(map[graph.NodeID]incr.Trace, len(missing))
			for _, src := range missing {
				newRows[src] = incr.Trace{Dist: dist[src], Parent: graph.WitnessParents(g, src, dist[src])}
			}
			// The whole-body entry is recorded only for a from-scratch run:
			// a partially-reused or repaired body is history-dependent (its
			// Composition and Incr depend on what happened to be traced), so
			// it must not become this key's cached bytes.
			bodyParts := parts
			if reused > 0 || repairedRows > 0 {
				bodyParts = ""
			}
			s.registry.RecordRows(ref.id, digest, newRows, bodyParts)
		}
		if reused > 0 || repairedRows > 0 {
			resp.Incr = &IncrJSON{SourcesReused: reused, SourcesRepaired: repairedRows, SourcesRecomputed: len(missing)}
			rowsReused, rowsRecomputed = int64(reused), int64(len(missing))
			if repairedRows > 0 {
				w.Header().Set("X-Dsssp-Incr", fmt.Sprintf("reused=%d repaired=%d recomputed=%d", reused, repairedRows, len(missing)))
			} else {
				w.Header().Set("X-Dsssp-Incr", fmt.Sprintf("reused=%d recomputed=%d", reused, len(missing)))
			}
			b, err := json.Marshal(resp)
			return b, false, err
		}
		b, err := json.Marshal(resp)
		return b, true, err
	})
	if ok && ref != nil {
		// A body-cache hit means every source was served without recompute;
		// a miss splits per the incremental assembly above (all-recompute
		// when nothing was traced; repaired rows were counted by tryRepair).
		if hit {
			s.metrics.incrSourcesReused.Add(int64(g.N()))
		} else {
			s.metrics.incrSourcesReused.Add(rowsReused)
			s.metrics.incrSourcesRecomputed.Add(rowsRecomputed)
		}
	}
}

// graphRef identifies the registered graph a query resolved (nil for
// inline/generator specs): the handle plus the head revision the query is
// pinned to. The resolved snapshot is immutable, so the query is
// consistent even if a PATCH lands mid-computation — it answers for the
// revision it resolved.
type graphRef struct {
	id       string
	revision int
}

// prepare resolves the graph (inline, generator, or registered handle)
// and options for a query, replying on error. For registered graphs the
// handle and revision travel in response headers, not the body: cached
// bodies are migrated verbatim across revisions on PATCH, so a body-borne
// revision number would go stale the moment an entry is carried forward.
// A sampled request gets a graph.resolve span recording where the graph
// came from (registry / inline / generator) and its size.
func (s *Server) prepare(w http.ResponseWriter, r *http.Request, spec GraphSpec, qo QueryOptions) (*graph.Graph, [32]byte, *dsssp.Options, *graphRef, bool) {
	sp := trace.FromContext(r.Context()).StartChild("graph.resolve")
	fail := func(err error) (*graph.Graph, [32]byte, *dsssp.Options, *graphRef, bool) {
		sp.SetError(err.Error())
		sp.End()
		s.replyError(w, err)
		return nil, [32]byte{}, nil, nil, false
	}
	opts, err := resolveOptions(qo, s.cfg.Workers, s.cfg.MaxIntraWorkers)
	if err != nil {
		return fail(err)
	}
	if spec.ID != "" {
		if spec.N != 0 || len(spec.Edges) > 0 || spec.Family != "" || spec.Seed != 0 || spec.Weights != nil {
			return fail(badf("graph.graph_id is mutually exclusive with inline and generator fields"))
		}
		g, digest, rev, err := s.registry.Resolve(spec.ID)
		if err != nil {
			return fail(err)
		}
		w.Header().Set("X-Dsssp-Graph-Id", spec.ID)
		w.Header().Set("X-Dsssp-Graph-Revision", strconv.Itoa(rev))
		sp.SetAttr("source", "registry")
		sp.SetAttr("graph_id", spec.ID)
		sp.SetAttr("revision", rev)
		sp.SetAttr("n", g.N())
		sp.End()
		return g, digest, opts, &graphRef{id: spec.ID, revision: rev}, true
	}
	g, err := buildGraph(spec, s.cfg.MaxN, s.cfg.MaxEdges)
	if err != nil {
		return fail(err)
	}
	if spec.Family != "" {
		sp.SetAttr("source", "generator")
	} else {
		sp.SetAttr("source", "inline")
	}
	sp.SetAttr("n", g.N())
	sp.End()
	return g, canonicalGraphDigest(g), opts, nil, true
}

// finishQuery funnels every query through the content-addressed cache and
// the bounded worker pool: hits skip the pool entirely; misses acquire a
// worker slot (respecting request cancellation while queued), compute,
// and leave their bytes behind. Identical concurrent misses collapse into
// one computation (every follower gets the leader's bytes, counted as a
// hit and marked X-Dsssp-Cache: hit). compute's second return value says
// whether its bytes may be cached — false for responses that are not pure
// functions of the key (the incremental-APSP assembly). Returns whether
// the response was a cache hit and whether it was served at all (ok=false
// means an error reply already went out).
//
// Tracing: the request's span tree gains a cache.lookup span labeled with
// the outcome (hit / shared / miss); only the flight leader additionally
// opens queue.wait and exec spans — a singleflight follower's trace shows
// the wait inside its own cache.lookup and carries no engine work, which
// is exactly what happened. compute receives the exec span to hang repair
// and engine children from.
func (s *Server) finishQuery(w http.ResponseWriter, r *http.Request, key string, compute func(sp *trace.Span) ([]byte, bool, error)) (hit, ok bool) {
	root := trace.FromContext(r.Context())
	cacheSp := root.StartChild("cache.lookup")
	body, outcome, err := s.cache.getOrCompute(key, func() ([]byte, bool, error) {
		qsp := root.StartChild("queue.wait")
		s.metrics.queueDepth.Inc()
		queued := time.Now()
		select {
		case s.querySem <- struct{}{}:
			s.metrics.queueDepth.Dec()
			s.metrics.queueWait.Observe(time.Since(queued).Seconds())
			qsp.End()
			s.metrics.poolBusy.Inc()
			defer func() {
				s.metrics.poolBusy.Dec()
				<-s.querySem
			}()
		case <-r.Context().Done():
			s.metrics.queueDepth.Dec()
			qsp.SetError("cancelled while queued")
			qsp.End()
			return nil, false, r.Context().Err()
		}
		execSp := root.StartChild("exec")
		b, cacheable, err := compute(execSp)
		if err != nil {
			execSp.SetError(err.Error())
		}
		execSp.End()
		return b, cacheable, err
	})
	cacheSp.SetAttr("result", outcome.String())
	cacheSp.End()
	hit = outcome != cacheMiss
	if err != nil {
		s.replyError(w, err)
		return false, false
	}
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Dsssp-Cache", "hit")
	} else {
		w.Header().Set("X-Dsssp-Cache", "miss")
	}
	w.Write(body)
	w.Write([]byte("\n"))
	return hit, true
}

// graftEnginePhases embeds the simulator's span ledger into the wall-clock
// trace as children of the engine span: the engine's measured interval is
// apportioned across the phases by round share (the ledger's clock is
// rounds, not seconds), so the trace's leaf intervals line up end to end
// under their parent and the per-phase `rounds` attributes sum exactly to
// the run's total rounds — the conservation law the span ledger guarantees
// and the /debug/traces consumers assert.
func graftEnginePhases(eng *trace.Span, phases []harness.PhaseStat) {
	if eng == nil || len(phases) == 0 {
		return
	}
	total := harness.PhaseRounds(phases)
	d := time.Since(eng.StartTime())
	cursor := eng.StartTime()
	for _, ph := range phases {
		var pd time.Duration
		if total > 0 {
			pd = time.Duration(int64(d) * ph.Rounds / total)
		}
		attrs := []trace.Attr{
			trace.Int64("rounds", ph.Rounds),
			trace.Int64("messages", ph.Messages),
			trace.Int64("awake_rounds", ph.AwakeRounds),
		}
		if ph.RoundsByDepth != "" {
			attrs = append(attrs, trace.String("rounds_by_depth", ph.RoundsByDepth))
		}
		eng.Graft("phase:"+ph.Phase, cursor, pd, attrs...)
		cursor = cursor.Add(pd)
	}
	eng.SetAttr("rounds", total)
}

// --- dynamic-graph endpoints ---

func (s *Server) handleGraphRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Graph.ID != "" {
		s.replyError(w, badf("graph.graph_id cannot be set when registering a graph"))
		return
	}
	g, err := buildGraph(req.Graph, s.cfg.MaxN, s.cfg.MaxEdges)
	if err != nil {
		s.replyError(w, err)
		return
	}
	info, created := s.registry.Register(g)
	code := http.StatusOK
	if created {
		code = http.StatusCreated
		s.logger.Info("graph registered",
			"graph_id", info.ID, "n", info.N, "m", info.M, "digest", info.Digest)
	}
	writeJSON(w, code, info)
}

func (s *Server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, GraphListResponse{Graphs: s.registry.List()})
}

func (s *Server) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	info, ok := s.registry.Get(r.PathValue("id"))
	if !ok {
		s.replyError(w, notfoundf("no registered graph %q (evicted or never registered)", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	if !s.registry.Remove(r.PathValue("id")) {
		s.replyError(w, notfoundf("no registered graph %q (evicted or never registered)", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"removed": true})
}

func (s *Server) handleGraphPatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req PatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	info, ok := s.registry.Get(id)
	if !ok {
		s.replyError(w, notfoundf("no registered graph %q (evicted or never registered)", id))
		return
	}
	deltas, err := parseDeltas(req.Deltas, info.N)
	if err != nil {
		s.replyError(w, err)
		return
	}
	pi, err := s.registry.Patch(id, deltas)
	if err != nil {
		s.replyError(w, err)
		return
	}
	s.logger.Info("graph patched",
		"graph_id", id, "revision", pi.Revision,
		"deltas", pi.DeltasApplied, "effects", pi.Effects,
		"sources_kept", pi.SourcesKept, "sources_dropped", pi.SourcesDropped,
		"sources_repairable", pi.SourcesRepairable,
		"entries_migrated", pi.EntriesMigrated, "entries_invalidated", pi.EntriesInvalidated)
	writeJSON(w, http.StatusOK, pi)
}

// --- sweep endpoints ---

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decode(w, r, &req) {
		return
	}
	// Normalize the filter exactly like RunScenariosWith will: trim each
	// pattern, drop blanks, and treat an empty (or all-blank) list as "the
	// whole suite" — the pre-validation below must not enforce a stricter
	// grammar than the sweep itself.
	cleaned := req.Patterns[:0:0]
	for _, p := range req.Patterns {
		if p = strings.TrimSpace(p); p != "" {
			cleaned = append(cleaned, p)
		}
	}
	if len(cleaned) == 0 {
		cleaned = nil
	}
	req.Patterns = cleaned
	// Reject unknown patterns up front (cheap registry check) so a typo is
	// a 400, not a failed job discovered by polling.
	if req.Patterns != nil {
		if _, err := harness.Default(req.Quick).Select(req.Patterns); err != nil {
			s.replyError(w, badRequest{err})
			return
		}
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j, err := s.jobs.add(JobStatus{
		State:       JobQueued,
		Patterns:    req.Patterns,
		Quick:       req.Quick,
		SubmittedAt: s.now(),
	}, cancel)
	if err != nil {
		cancel()
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.metrics.jobsActive.With(string(JobQueued)).Inc()
	s.jobsWG.Add(1)
	go s.runJob(ctx, j, req)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.snapshots())
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no sweep job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no sweep job %q", r.PathValue("id"))
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.snapshot())
}

// --- observability endpoints ---

// StatsResponse is the GET /v1/stats body: a full operational snapshot —
// cache, worker pool, jobs by state, and history store — not cache-only.
type StatsResponse struct {
	Rev            string           `json:"rev"`
	UptimeNS       int64            `json:"uptime_ns"`
	Cache          CacheStats       `json:"cache"`
	Registry       RegistryStats    `json:"registry"`
	Incr           IncrStats        `json:"incr"`
	Pool           PoolStats        `json:"pool"`
	Jobs           map[JobState]int `json:"jobs"`
	Store          StoreStats       `json:"store"`
	HistoryReports int              `json:"history_reports"`
}

// IncrStats is the registered-graph serving split since process start:
// per-source results served from cache/traces, rebuilt by affected-region
// repair, or recomputed from scratch — plus repairs that bailed to a full
// recompute.
type IncrStats struct {
	SourcesReused     int64 `json:"sources_reused"`
	SourcesRepaired   int64 `json:"sources_repaired"`
	SourcesRecomputed int64 `json:"sources_recomputed"`
	RepairFallbacks   int64 `json:"repair_fallbacks"`
}

// PoolStats is the query worker pool's instantaneous state.
type PoolStats struct {
	// Workers is the configured pool size.
	Workers int `json:"workers"`
	// InFlight is the number of slots currently executing a query.
	InFlight int `json:"in_flight"`
	// Queued is the number of query misses waiting for a slot.
	Queued int `json:"queued"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	storeStats, err := s.store.Stats()
	if err != nil {
		s.replyError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Rev:      s.cfg.Rev,
		UptimeNS: s.now().Sub(s.started).Nanoseconds(),
		Cache:    s.cache.Stats(),
		Registry: s.registry.Stats(),
		Incr: IncrStats{
			SourcesReused:     s.metrics.incrSourcesReused.Value(),
			SourcesRepaired:   s.metrics.incrSourcesRepaired.Value(),
			SourcesRecomputed: s.metrics.incrSourcesRecomputed.Value(),
			RepairFallbacks:   s.metrics.incrRepairFallbacks.Value(),
		},
		Pool: PoolStats{
			Workers:  s.cfg.Workers,
			InFlight: int(s.metrics.poolBusy.Value()),
			Queued:   int(s.metrics.queueDepth.Value()),
		},
		Jobs:           s.jobs.counts(),
		Store:          storeStats,
		HistoryReports: storeStats.Reports,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// --- plumbing ---

// decode parses a JSON request body strictly: unknown fields, trailing
// garbage, and oversized bodies are 400s with a JSON error body.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, "parsing request body: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after the JSON body")
		return false
	}
	return true
}

// replyError maps an error to its status: client mistakes are 400s,
// algorithm/simulation rejections 422s, cancellations 499 (the de facto
// client-closed-request code), everything else 500.
func (s *Server) replyError(w http.ResponseWriter, err error) {
	var br badRequest
	var nf notFoundErr
	switch {
	case errors.As(err, &nf):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.As(err, &br):
		writeError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeError(w, 499, "request cancelled: %v", err)
	case isComputeError(err):
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// isComputeError recognizes algorithm-level rejections (invalid option
// combinations the wire validation cannot see, strict-CONGEST budget
// violations, round-cap overruns) — requests that were well-formed but
// unprocessable, as opposed to infrastructure failures.
func isComputeError(err error) bool {
	msg := err.Error()
	for _, prefix := range []string{"dsssp:", "simnet:", "core:", "proto:", "sched:"} {
		if strings.HasPrefix(msg, prefix) {
			return true
		}
	}
	return false
}
