package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dsssp"
)

// JobState is a sweep job's lifecycle state.
type JobState string

// Job states: queued → running → one of the terminal three.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// SweepRequest is the POST /v1/sweeps body.
type SweepRequest struct {
	// Patterns select scenarios by exact name or glob ("all" or empty for
	// the whole suite) — the dsssp.RunScenarios vocabulary.
	Patterns []string `json:"patterns,omitempty"`
	// Quick shrinks scenario sizes to smoke-test scale.
	Quick bool `json:"quick"`
	// Parallel bounds the sweep's worker pool (0 = server default).
	Parallel int `json:"parallel,omitempty"`
}

// JobStatus is the GET /v1/sweeps/{id} snapshot.
type JobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Patterns []string `json:"patterns,omitempty"`
	Quick    bool     `json:"quick"`
	// Done/Total track live sweep progress (scenarios completed so far).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Failures counts scenarios that failed verification so far.
	Failures int `json:"failures"`
	// Error explains failed/cancelled states.
	Error string `json:"error,omitempty"`
	// Report is the history-store entry name of the finished report (done
	// state only) — fetchable under the store and chained by /v1/trends.
	Report      string     `json:"report,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// job pairs a status snapshot with its cancellation handle.
type job struct {
	mu     sync.Mutex
	status JobStatus
	cancel context.CancelFunc
}

func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	st.Patterns = append([]string(nil), j.status.Patterns...)
	return st
}

// Job-set bounds: the history store is the durable record, job entries
// are operational state — so pending work is backpressured and finished
// records eventually rotate out instead of growing forever.
const (
	// maxPendingJobs bounds queued+running jobs; submits beyond it get a
	// 503 until the backlog drains.
	maxPendingJobs = 16
	// maxJobRecords bounds retained job entries; the oldest *terminal*
	// jobs are evicted past it (live jobs are never evicted).
	maxJobRecords = 256
)

// jobSet owns every submitted job, keyed by ID in submission order.
type jobSet struct {
	mu    sync.Mutex
	byID  map[string]*job
	order []string
	seq   int
}

func newJobSet() *jobSet {
	return &jobSet{byID: make(map[string]*job)}
}

// add registers a new job, or returns an error when too many jobs are
// still pending. It also prunes the oldest finished jobs beyond the
// retention bound.
func (js *jobSet) add(status JobStatus, cancel context.CancelFunc) (*job, error) {
	js.mu.Lock()
	defer js.mu.Unlock()
	pending := 0
	for _, id := range js.order {
		switch js.byID[id].snapshot().State {
		case JobQueued, JobRunning:
			pending++
		}
	}
	if pending >= maxPendingJobs {
		return nil, fmt.Errorf("service: %d sweep jobs already pending (limit %d) — wait for the backlog to drain", pending, maxPendingJobs)
	}
	js.seq++
	status.ID = fmt.Sprintf("sweep-%04d", js.seq)
	j := &job{status: status, cancel: cancel}
	js.byID[status.ID] = j
	js.order = append(js.order, status.ID)
	for len(js.order) > maxJobRecords {
		evicted := false
		for i, id := range js.order {
			if st := js.byID[id].snapshot().State; st == JobDone || st == JobFailed || st == JobCancelled {
				delete(js.byID, id)
				js.order = append(js.order[:i], js.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything retained is live; the pending cap bounds this
		}
	}
	return j, nil
}

func (js *jobSet) get(id string) (*job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.byID[id]
	return j, ok
}

func (js *jobSet) snapshots() []JobStatus {
	js.mu.Lock()
	ids := append([]string(nil), js.order...)
	js.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := js.get(id); ok {
			out = append(out, j.snapshot())
		}
	}
	return out
}

func (js *jobSet) counts() map[JobState]int {
	out := make(map[JobState]int)
	for _, st := range js.snapshots() {
		out[st.State]++
	}
	return out
}

// runJob executes one sweep job end to end: wait for a sweep slot, run the
// scenario sweep with live progress, and land the finished report in the
// history store. The job's context is cancelled by DELETE /v1/sweeps/{id}
// and by server shutdown; RunScenariosWith stops at scenario granularity
// and reports the cancellation descriptively, which becomes the job error.
func (s *Server) runJob(ctx context.Context, j *job, req SweepRequest) {
	defer s.jobsWG.Done()
	// One sweep at a time by default: sweeps are whole-machine affairs and
	// the query pool keeps serving while they run.
	select {
	case s.sweepSem <- struct{}{}:
		defer func() { <-s.sweepSem }()
	case <-ctx.Done():
		s.finishJob(j, JobCancelled, "", fmt.Sprintf("cancelled while queued: %v", context.Cause(ctx)))
		return
	}

	now := s.now()
	j.mu.Lock()
	j.status.State = JobRunning
	j.status.StartedAt = &now
	id := j.status.ID
	j.mu.Unlock()
	s.metrics.jobsActive.With(string(JobQueued)).Dec()
	s.metrics.jobsActive.With(string(JobRunning)).Inc()
	s.logger.Info("sweep job started", "job", id, "patterns", req.Patterns, "quick", req.Quick)

	parallel := req.Parallel
	if parallel <= 0 {
		parallel = s.cfg.SweepParallel
	}
	rep, err := dsssp.RunScenariosWith(ctx, req.Patterns, dsssp.SweepOptions{
		Quick:    req.Quick,
		Parallel: parallel,
		Progress: func(done, total int, r dsssp.ScenarioResult) {
			j.mu.Lock()
			j.status.Done, j.status.Total = done, total
			if !r.OK {
				j.status.Failures++
			}
			j.mu.Unlock()
		},
	})
	if err != nil {
		state := JobFailed
		var ce *dsssp.SweepCancelError
		if errors.As(err, &ce) {
			// A cancelled sweep is not a broken one: surface the partial
			// progress but do not store the partial report — history holds
			// only complete, comparable sweeps.
			state = JobCancelled
		}
		s.finishJob(j, state, "", err.Error())
		return
	}
	entry, err := s.store.Save(rep, s.cfg.Rev, s.now())
	if err != nil {
		s.finishJob(j, JobFailed, "", fmt.Sprintf("sweep finished but storing the report failed: %v", err))
		return
	}
	s.finishJob(j, JobDone, entry.Name, "")
}

func (s *Server) finishJob(j *job, state JobState, report, errMsg string) {
	now := s.now()
	j.mu.Lock()
	prev := j.status.State
	j.status.State = state
	j.status.Report = report
	j.status.Error = errMsg
	j.status.FinishedAt = &now
	id := j.status.ID
	j.mu.Unlock()
	s.metrics.jobsActive.With(string(prev)).Dec()
	s.metrics.jobsFinished.With(string(state)).Inc()
	if errMsg != "" {
		s.logger.Warn("sweep job finished", "job", id, "state", string(state), "error", errMsg)
	} else {
		s.logger.Info("sweep job finished", "job", id, "state", string(state), "report", report)
	}
}
