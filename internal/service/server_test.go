package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dsssp/internal/graph"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{HistoryDir: t.TempDir(), Workers: 4, SweepParallel: 2, Rev: "test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// do issues one request against the handler and returns the recorder.
func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// wantErrorJSON asserts a 4xx/5xx response with a JSON {"error": ...} body.
func wantErrorJSON(t *testing.T, w *httptest.ResponseRecorder, status int, substr string) {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status = %d, want %d (body %s)", w.Code, status, w.Body.String())
	}
	var e ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("non-JSON error body %q: %v", w.Body.String(), err)
	}
	if e.Error == "" || !strings.Contains(e.Error, substr) {
		t.Fatalf("error %q does not mention %q", e.Error, substr)
	}
}

func TestBadInputsAre4xxJSON(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		name, method, path, body string
		status                   int
		substr                   string
	}{
		{"malformed-json", "POST", "/v1/sssp", `{"graph": nope}`, 400, "parsing request body"},
		{"unknown-field", "POST", "/v1/sssp", `{"grap": {}}`, 400, "unknown field"},
		{"trailing-garbage", "POST", "/v1/sssp", `{"graph":{"family":"path","n":8}} trailing`, 400, "trailing data"},
		{"no-edges", "POST", "/v1/sssp", `{"graph":{"n":4}}`, 400, "no edges"},
		{"unknown-family", "POST", "/v1/sssp", `{"graph":{"family":"hypercube","n":8}}`, 400, "unknown graph family"},
		{"n-too-small", "POST", "/v1/sssp", `{"graph":{"family":"path","n":2}}`, 400, "n in [4,"},
		{"n-too-big", "POST", "/v1/sssp", `{"graph":{"family":"path","n":999999}}`, 400, "n in [4,"},
		{"self-loop", "POST", "/v1/sssp", `{"graph":{"n":4,"edges":[[1,1,1]]}}`, 400, "self-loop"},
		{"edge-range", "POST", "/v1/sssp", `{"graph":{"n":4,"edges":[[0,9,1]]}}`, 400, "out of range"},
		{"negative-weight", "POST", "/v1/sssp", `{"graph":{"n":4,"edges":[[0,1,-5]]}}`, 400, "negative weight"},
		{"family-and-edges", "POST", "/v1/sssp", `{"graph":{"family":"path","n":8,"edges":[[0,1,1]]}}`, 400, "mutually exclusive"},
		{"bad-weights", "POST", "/v1/sssp", `{"graph":{"family":"random","n":8,"weights":{"kind":"gaussian"}}}`, 400, "unknown weight kind"},
		{"source-range", "POST", "/v1/sssp", `{"graph":{"family":"path","n":8},"source":42}`, 400, "source 42 out of range"},
		{"bad-model", "POST", "/v1/sssp", `{"graph":{"family":"path","n":8},"options":{"model":"quantum"}}`, 400, "unknown model"},
		{"bad-eps", "POST", "/v1/sssp", `{"graph":{"family":"path","n":8},"options":{"eps_num":3,"eps_den":2}}`, 400, "ε must be in (0,1)"},
		{"path-target-range", "POST", "/v1/path", `{"graph":{"family":"path","n":8},"target":-1}`, 400, "target -1 out of range"},
		{"strict-sleeping", "POST", "/v1/sssp", `{"graph":{"family":"path","n":8},"options":{"model":"sleeping","strict_congest":true}}`, 422, "StrictCongest"},
		{"sweep-bad-pattern", "POST", "/v1/sweeps", `{"patterns":["no-such-scenario*"],"quick":true}`, 400, "matches no scenario"},
		{"sweep-unknown-job", "GET", "/v1/sweeps/sweep-9999", "", 404, "no sweep job"},
		{"trends-empty-history", "GET", "/v1/trends", "", 404, "at least 2 stored reports"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantErrorJSON(t, do(t, s, tc.method, tc.path, tc.body), tc.status, tc.substr)
		})
	}
}

func TestSSSPQuery(t *testing.T) {
	s := testServer(t)
	// 0 -2- 1 -1- 2 -5- 3, plus a disconnected pair {4,5}.
	body := `{"graph":{"n":6,"edges":[[0,1,2],[1,2,1],[2,3,5],[4,5,1]]},"source":0}`
	w := do(t, s, "POST", "/v1/sssp", body)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Dsssp-Cache"); got != "miss" {
		t.Fatalf("first query cache header = %q", got)
	}
	var resp SSSPResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 2, 3, 8, graph.Inf, graph.Inf}
	if len(resp.Dist) != len(want) {
		t.Fatalf("dist = %v", resp.Dist)
	}
	for i := range want {
		if resp.Dist[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, resp.Dist[i], want[i])
		}
	}
	if resp.Unreachable != 2 || resp.N != 6 || resp.M != 4 {
		t.Fatalf("resp header fields = %+v", resp)
	}
	if resp.Metrics.Rounds <= 0 || resp.Metrics.Messages <= 0 {
		t.Fatalf("metrics = %+v", resp.Metrics)
	}

	// A permutation of the same edge set (and a duplicated heavier edge)
	// is the same canonical graph — it must be a cache hit with the exact
	// same bytes.
	perm := `{"graph":{"n":6,"edges":[[4,5,1],[2,1,1],[3,2,5],[1,0,2],[0,1,7]]},"source":0}`
	w2 := do(t, s, "POST", "/v1/sssp", perm)
	if w2.Code != 200 || w2.Header().Get("X-Dsssp-Cache") != "hit" {
		t.Fatalf("permuted graph: status %d, cache %q", w2.Code, w2.Header().Get("X-Dsssp-Cache"))
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("cache hit bytes differ from the original response")
	}

	// A different source is a different computation.
	w3 := do(t, s, "POST", "/v1/sssp", `{"graph":{"n":6,"edges":[[0,1,2],[1,2,1],[2,3,5],[4,5,1]]},"source":3}`)
	if w3.Code != 200 || w3.Header().Get("X-Dsssp-Cache") != "miss" {
		t.Fatalf("different source: status %d, cache %q", w3.Code, w3.Header().Get("X-Dsssp-Cache"))
	}
}

func TestSSSPGeneratorSpecAndPhases(t *testing.T) {
	s := testServer(t)
	body := `{"graph":{"family":"random","n":32,"seed":7,"weights":{"kind":"uniform","max_w":32}},"options":{"record_phases":true}}`
	w := do(t, s, "POST", "/v1/sssp", body)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp SSSPResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != 32 || len(resp.Dist) != 32 || resp.Dist[0] != 0 {
		t.Fatalf("resp = %+v", resp)
	}
	if len(resp.Phases) == 0 {
		t.Fatal("record_phases did not attach a phase breakdown")
	}
	var phaseRounds int64
	for _, ph := range resp.Phases {
		phaseRounds += ph.Rounds
	}
	if phaseRounds != resp.Metrics.Rounds {
		t.Fatalf("phase rounds %d do not partition total %d", phaseRounds, resp.Metrics.Rounds)
	}
}

func TestPathQuery(t *testing.T) {
	s := testServer(t)
	base := `{"graph":{"n":5,"edges":[[0,1,2],[1,2,1],[0,2,9],[3,4,1]]},"source":0,"target":%s}`
	w := do(t, s, "POST", "/v1/path", strings.Replace(base, "%s", "2", 1))
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp PathResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Dist != 3 {
		t.Fatalf("dist = %d, want 3", resp.Dist)
	}
	// PathTo returns target-first, source-last.
	if len(resp.Path) != 3 || resp.Path[0] != 2 || resp.Path[2] != 0 {
		t.Fatalf("path = %v", resp.Path)
	}
	// Unreachable target: an answer, not an error.
	w = do(t, s, "POST", "/v1/path", strings.Replace(base, "%s", "4", 1))
	if w.Code != 200 {
		t.Fatalf("unreachable target: status %d: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Dist != graph.Inf || len(resp.Path) != 0 {
		t.Fatalf("unreachable: dist=%d path=%v", resp.Dist, resp.Path)
	}
}

func TestAPSPQuery(t *testing.T) {
	s := testServer(t)
	w := do(t, s, "POST", "/v1/apsp", `{"graph":{"family":"random","n":12,"seed":3},"seed":42}`)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp APSPResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != 12 || len(resp.Dist) != 12 || len(resp.Dist[0]) != 12 {
		t.Fatalf("resp = %+v", resp)
	}
	for i := 0; i < 12; i++ {
		if resp.Dist[i][i] != 0 {
			t.Fatalf("dist[%d][%d] = %d", i, i, resp.Dist[i][i])
		}
	}
	if resp.Composition.MakespanRandom <= 0 || resp.Composition.Congestion <= 0 {
		t.Fatalf("composition = %+v", resp.Composition)
	}
	// Same request → cached bytes.
	w2 := do(t, s, "POST", "/v1/apsp", `{"graph":{"family":"random","n":12,"seed":3},"seed":42}`)
	if w2.Header().Get("X-Dsssp-Cache") != "hit" || !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("identical APSP request did not hit the cache byte-identically")
	}
}

func TestStatsAndHealthz(t *testing.T) {
	s := testServer(t)
	if w := do(t, s, "GET", "/healthz", ""); w.Code != 200 || !strings.Contains(w.Body.String(), "true") {
		t.Fatalf("healthz: %d %s", w.Code, w.Body.String())
	}
	do(t, s, "POST", "/v1/sssp", `{"graph":{"family":"path","n":8}}`)
	do(t, s, "POST", "/v1/sssp", `{"graph":{"family":"path","n":8}}`)
	w := do(t, s, "GET", "/v1/stats", "")
	if w.Code != 200 {
		t.Fatalf("stats: %d %s", w.Code, w.Body.String())
	}
	var st StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Rev != "test" || st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	if w := do(t, s, "GET", "/v1/sssp", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/sssp = %d, want 405", w.Code)
	}
}
