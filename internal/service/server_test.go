package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dsssp/internal/graph"
	"dsssp/internal/harness"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{HistoryDir: t.TempDir(), Workers: 4, SweepParallel: 2, Rev: "test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// do issues one request against the handler and returns the recorder.
func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// wantErrorJSON asserts a 4xx/5xx response with a well-formed JSON error
// body: prose in "error", a stable machine-readable "code", and a
// "request_id" matching the response header.
func wantErrorJSON(t *testing.T, w *httptest.ResponseRecorder, status int, substr string) {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status = %d, want %d (body %s)", w.Code, status, w.Body.String())
	}
	var e ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("non-JSON error body %q: %v", w.Body.String(), err)
	}
	if e.Error == "" || !strings.Contains(e.Error, substr) {
		t.Fatalf("error %q does not mention %q", e.Error, substr)
	}
	if e.Code == "" {
		t.Fatalf("error body %s lacks a machine-readable code", w.Body.String())
	}
	hdr := w.Header().Get(RequestIDHeader)
	if hdr == "" || e.RequestID != hdr {
		t.Fatalf("request id: body %q vs header %q", e.RequestID, hdr)
	}
}

func TestBadInputsAre4xxJSON(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		name, method, path, body string
		status                   int
		substr                   string
	}{
		{"malformed-json", "POST", "/v1/sssp", `{"graph": nope}`, 400, "parsing request body"},
		{"unknown-field", "POST", "/v1/sssp", `{"grap": {}}`, 400, "unknown field"},
		{"trailing-garbage", "POST", "/v1/sssp", `{"graph":{"family":"path","n":8}} trailing`, 400, "trailing data"},
		{"no-edges", "POST", "/v1/sssp", `{"graph":{"n":4}}`, 400, "no edges"},
		{"unknown-family", "POST", "/v1/sssp", `{"graph":{"family":"hypercube","n":8}}`, 400, "unknown graph family"},
		{"n-too-small", "POST", "/v1/sssp", `{"graph":{"family":"path","n":2}}`, 400, "n in [4,"},
		{"n-too-big", "POST", "/v1/sssp", `{"graph":{"family":"path","n":999999}}`, 400, "n in [4,"},
		{"self-loop", "POST", "/v1/sssp", `{"graph":{"n":4,"edges":[[1,1,1]]}}`, 400, "self-loop"},
		{"edge-range", "POST", "/v1/sssp", `{"graph":{"n":4,"edges":[[0,9,1]]}}`, 400, "out of range"},
		{"negative-weight", "POST", "/v1/sssp", `{"graph":{"n":4,"edges":[[0,1,-5]]}}`, 400, "negative weight"},
		{"family-and-edges", "POST", "/v1/sssp", `{"graph":{"family":"path","n":8,"edges":[[0,1,1]]}}`, 400, "mutually exclusive"},
		{"bad-weights", "POST", "/v1/sssp", `{"graph":{"family":"random","n":8,"weights":{"kind":"gaussian"}}}`, 400, "unknown weight kind"},
		{"source-range", "POST", "/v1/sssp", `{"graph":{"family":"path","n":8},"source":42}`, 400, "source 42 out of range"},
		{"bad-model", "POST", "/v1/sssp", `{"graph":{"family":"path","n":8},"options":{"model":"quantum"}}`, 400, "unknown model"},
		{"bad-eps", "POST", "/v1/sssp", `{"graph":{"family":"path","n":8},"options":{"eps_num":3,"eps_den":2}}`, 400, "ε must be in (0,1)"},
		{"path-target-range", "POST", "/v1/path", `{"graph":{"family":"path","n":8},"target":-1}`, 400, "target -1 out of range"},
		{"strict-sleeping", "POST", "/v1/sssp", `{"graph":{"family":"path","n":8},"options":{"model":"sleeping","strict_congest":true}}`, 422, "StrictCongest"},
		{"sweep-bad-pattern", "POST", "/v1/sweeps", `{"patterns":["no-such-scenario*"],"quick":true}`, 400, "matches no scenario"},
		{"sweep-unknown-job", "GET", "/v1/sweeps/sweep-9999", "", 404, "no sweep job"},
		{"trends-empty-history", "GET", "/v1/trends", "", 404, "at least 2 stored reports"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantErrorJSON(t, do(t, s, tc.method, tc.path, tc.body), tc.status, tc.substr)
		})
	}
}

func TestSSSPQuery(t *testing.T) {
	s := testServer(t)
	// 0 -2- 1 -1- 2 -5- 3, plus a disconnected pair {4,5}.
	body := `{"graph":{"n":6,"edges":[[0,1,2],[1,2,1],[2,3,5],[4,5,1]]},"source":0}`
	w := do(t, s, "POST", "/v1/sssp", body)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Dsssp-Cache"); got != "miss" {
		t.Fatalf("first query cache header = %q", got)
	}
	var resp SSSPResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 2, 3, 8, graph.Inf, graph.Inf}
	if len(resp.Dist) != len(want) {
		t.Fatalf("dist = %v", resp.Dist)
	}
	for i := range want {
		if resp.Dist[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, resp.Dist[i], want[i])
		}
	}
	if resp.Unreachable != 2 || resp.N != 6 || resp.M != 4 {
		t.Fatalf("resp header fields = %+v", resp)
	}
	if resp.Metrics.Rounds <= 0 || resp.Metrics.Messages <= 0 {
		t.Fatalf("metrics = %+v", resp.Metrics)
	}

	// A permutation of the same edge set (and a duplicated heavier edge)
	// is the same canonical graph — it must be a cache hit with the exact
	// same bytes.
	perm := `{"graph":{"n":6,"edges":[[4,5,1],[2,1,1],[3,2,5],[1,0,2],[0,1,7]]},"source":0}`
	w2 := do(t, s, "POST", "/v1/sssp", perm)
	if w2.Code != 200 || w2.Header().Get("X-Dsssp-Cache") != "hit" {
		t.Fatalf("permuted graph: status %d, cache %q", w2.Code, w2.Header().Get("X-Dsssp-Cache"))
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("cache hit bytes differ from the original response")
	}

	// A different source is a different computation.
	w3 := do(t, s, "POST", "/v1/sssp", `{"graph":{"n":6,"edges":[[0,1,2],[1,2,1],[2,3,5],[4,5,1]]},"source":3}`)
	if w3.Code != 200 || w3.Header().Get("X-Dsssp-Cache") != "miss" {
		t.Fatalf("different source: status %d, cache %q", w3.Code, w3.Header().Get("X-Dsssp-Cache"))
	}
}

func TestSSSPGeneratorSpecAndPhases(t *testing.T) {
	s := testServer(t)
	body := `{"graph":{"family":"random","n":32,"seed":7,"weights":{"kind":"uniform","max_w":32}},"options":{"record_phases":true}}`
	w := do(t, s, "POST", "/v1/sssp", body)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp SSSPResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != 32 || len(resp.Dist) != 32 || resp.Dist[0] != 0 {
		t.Fatalf("resp = %+v", resp)
	}
	if len(resp.Phases) == 0 {
		t.Fatal("record_phases did not attach a phase breakdown")
	}
	var phaseRounds int64
	for _, ph := range resp.Phases {
		phaseRounds += ph.Rounds
	}
	if phaseRounds != resp.Metrics.Rounds {
		t.Fatalf("phase rounds %d do not partition total %d", phaseRounds, resp.Metrics.Rounds)
	}
}

func TestPathQuery(t *testing.T) {
	s := testServer(t)
	base := `{"graph":{"n":5,"edges":[[0,1,2],[1,2,1],[0,2,9],[3,4,1]]},"source":0,"target":%s}`
	w := do(t, s, "POST", "/v1/path", strings.Replace(base, "%s", "2", 1))
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp PathResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Dist != 3 {
		t.Fatalf("dist = %d, want 3", resp.Dist)
	}
	// PathTo returns target-first, source-last.
	if len(resp.Path) != 3 || resp.Path[0] != 2 || resp.Path[2] != 0 {
		t.Fatalf("path = %v", resp.Path)
	}
	// Unreachable target: an answer, not an error.
	w = do(t, s, "POST", "/v1/path", strings.Replace(base, "%s", "4", 1))
	if w.Code != 200 {
		t.Fatalf("unreachable target: status %d: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Dist != graph.Inf || len(resp.Path) != 0 {
		t.Fatalf("unreachable: dist=%d path=%v", resp.Dist, resp.Path)
	}
}

func TestAPSPQuery(t *testing.T) {
	s := testServer(t)
	w := do(t, s, "POST", "/v1/apsp", `{"graph":{"family":"random","n":12,"seed":3},"seed":42}`)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp APSPResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != 12 || len(resp.Dist) != 12 || len(resp.Dist[0]) != 12 {
		t.Fatalf("resp = %+v", resp)
	}
	for i := 0; i < 12; i++ {
		if resp.Dist[i][i] != 0 {
			t.Fatalf("dist[%d][%d] = %d", i, i, resp.Dist[i][i])
		}
	}
	if resp.Composition.MakespanRandom <= 0 || resp.Composition.Congestion <= 0 {
		t.Fatalf("composition = %+v", resp.Composition)
	}
	// Same request → cached bytes.
	w2 := do(t, s, "POST", "/v1/apsp", `{"graph":{"family":"random","n":12,"seed":3},"seed":42}`)
	if w2.Header().Get("X-Dsssp-Cache") != "hit" || !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("identical APSP request did not hit the cache byte-identically")
	}
}

func TestStatsAndHealthz(t *testing.T) {
	s := testServer(t)
	if w := do(t, s, "GET", "/healthz", ""); w.Code != 200 || !strings.Contains(w.Body.String(), "true") {
		t.Fatalf("healthz: %d %s", w.Code, w.Body.String())
	}
	do(t, s, "POST", "/v1/sssp", `{"graph":{"family":"path","n":8}}`)
	do(t, s, "POST", "/v1/sssp", `{"graph":{"family":"path","n":8}}`)
	w := do(t, s, "GET", "/v1/stats", "")
	if w.Code != 200 {
		t.Fatalf("stats: %d %s", w.Code, w.Body.String())
	}
	var st StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Rev != "test" || st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The snapshot is full-stack: pool and store sections, not cache-only.
	if st.Pool.Workers != 4 || st.Pool.InFlight != 0 || st.Pool.Queued != 0 {
		t.Fatalf("pool stats = %+v", st.Pool)
	}
	if st.Store.Reports != 0 || st.Store.Appends != 0 {
		t.Fatalf("store stats = %+v", st.Store)
	}
	if st.Jobs == nil {
		t.Fatal("stats lacks the jobs-by-state section")
	}
}

// scrapeMetrics fetches /metrics through the instrumented handler and
// parses sample lines into name{labels} → value.
func scrapeMetrics(t *testing.T, s *Server) map[string]float64 {
	t.Helper()
	w := do(t, s, "GET", "/metrics", "")
	if w.Code != 200 {
		t.Fatalf("/metrics: %d %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(w.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		out[line[:idx]] = v
	}
	return out
}

// TestMetricsEndpoint drives queries through the full handler and asserts
// the Prometheus rendering reflects them: request counters by endpoint
// and code, cache hit/miss counters, pool gauges, and per-phase round
// histograms that conserve against the scenario totals.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	body := `{"graph":{"family":"random","n":24,"seed":9},"source":1}`
	do(t, s, "POST", "/v1/sssp", body)
	do(t, s, "POST", "/v1/sssp", body) // cache hit
	do(t, s, "POST", "/v1/sssp", `{"graph": nope}`)

	m := scrapeMetrics(t, s)
	for name, want := range map[string]float64{
		`dsssp_http_requests_total{endpoint="sssp",code="200"}`: 2,
		`dsssp_http_requests_total{endpoint="sssp",code="400"}`: 1,
		"dsssp_cache_hits_total":                                1,
		"dsssp_cache_misses_total":                              1,
		"dsssp_cache_singleflight_dedup_total":                  0,
		"dsssp_cache_entries":                                   1,
		"dsssp_query_pool_workers":                              4,
		"dsssp_query_queue_depth":                               0,
		"dsssp_query_pool_busy":                                 0,
		"dsssp_query_queue_wait_seconds_count":                  1,
	} {
		if m[name] != want {
			t.Errorf("%s = %v, want %v", name, m[name], want)
		}
	}
	if m[`dsssp_http_request_duration_seconds_count{endpoint="sssp"}`] != 3 {
		t.Errorf("latency count = %v, want 3", m[`dsssp_http_request_duration_seconds_count{endpoint="sssp"}`])
	}
	// Per-phase round histograms: one observation per phase for the single
	// computed query, and the _sum over phases conserves to the query's
	// total rounds (the span ledger is an exact partition).
	var resp SSSPResponse
	w := do(t, s, "POST", "/v1/sssp", body)
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var phaseSum float64
	found := 0
	for name, v := range m {
		if strings.HasPrefix(name, "dsssp_phase_rounds_sum{") {
			phaseSum += v
			found++
		}
	}
	if found == 0 {
		t.Fatal("no dsssp_phase_rounds series after a computed query")
	}
	if int64(phaseSum) != resp.Metrics.Rounds {
		t.Errorf("phase rounds sum %v != query rounds %d", phaseSum, resp.Metrics.Rounds)
	}
	// The /metrics scrape itself is instrumented, and counters are
	// monotonic scrape-over-scrape.
	m2 := scrapeMetrics(t, s)
	if m2[`dsssp_http_requests_total{endpoint="metrics",code="200"}`] < 1 {
		t.Error("the /metrics endpoint does not count itself")
	}
	for name, v := range m {
		if strings.Contains(name, "_total") && m2[name] < v {
			t.Errorf("counter %s went backwards: %v -> %v", name, v, m2[name])
		}
	}
}

// TestTraceQueryParam is the acceptance check for span-level query
// tracing: ?trace=1 attaches a per-phase breakdown whose round total
// equals the query's reported rounds, untraced queries stay lean, and the
// two response shapes are distinct cache entries.
func TestTraceQueryParam(t *testing.T) {
	s := testServer(t)
	body := `{"graph":{"family":"expander","n":32,"seed":11,"weights":{"kind":"uniform","max_w":32}},"source":2}`

	w := do(t, s, "POST", "/v1/sssp?trace=1", body)
	if w.Code != 200 {
		t.Fatalf("traced query: %d %s", w.Code, w.Body.String())
	}
	var traced SSSPResponse
	if err := json.Unmarshal(w.Body.Bytes(), &traced); err != nil {
		t.Fatal(err)
	}
	if len(traced.Phases) == 0 {
		t.Fatal("?trace=1 did not attach a phase breakdown")
	}
	if got := harness.PhaseRounds(traced.Phases); got != traced.Metrics.Rounds {
		t.Fatalf("trace rounds %d do not equal reported rounds %d", got, traced.Metrics.Rounds)
	}

	w = do(t, s, "POST", "/v1/sssp", body)
	var plain SSSPResponse
	if err := json.Unmarshal(w.Body.Bytes(), &plain); err != nil {
		t.Fatal(err)
	}
	if len(plain.Phases) != 0 {
		t.Fatal("untraced query carries a phase breakdown")
	}
	if w.Header().Get("X-Dsssp-Cache") != "miss" {
		t.Fatal("traced and untraced responses must be distinct cache entries")
	}
	if plain.Metrics.Rounds != traced.Metrics.Rounds {
		t.Fatalf("tracing changed the computation: %d vs %d rounds", plain.Metrics.Rounds, traced.Metrics.Rounds)
	}

	// Same for APSP.
	w = do(t, s, "POST", "/v1/apsp?trace=true", `{"graph":{"family":"random","n":12,"seed":3},"seed":42}`)
	var ar APSPResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Phases) == 0 {
		t.Fatal("?trace=true on /v1/apsp did not attach phases")
	}
}

// TestRequestLogging asserts the middleware emits exactly one structured
// completion line per request with the load-bearing fields, and a
// slow-query warning above the threshold.
func TestRequestLogging(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s, err := New(Config{
		HistoryDir: t.TempDir(), Workers: 2, Rev: "test",
		Logger: logger, SlowQueryThreshold: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	w := do(t, s, "POST", "/v1/sssp", `{"graph":{"family":"path","n":8}}`)
	if w.Code != 200 {
		t.Fatalf("query failed: %d %s", w.Code, w.Body.String())
	}
	id := w.Header().Get(RequestIDHeader)

	var completion, slow map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		switch rec["msg"] {
		case "request":
			if completion != nil {
				t.Fatalf("more than one completion line: %s", buf.String())
			}
			completion = rec
		case "slow query":
			slow = rec
		}
	}
	if completion == nil {
		t.Fatalf("no completion log line in %s", buf.String())
	}
	for key, want := range map[string]any{
		"method": "POST", "path": "/v1/sssp", "endpoint": "sssp",
		"status": float64(200), "cache": "miss", "request_id": id,
	} {
		if completion[key] != want {
			t.Errorf("completion[%q] = %v, want %v", key, completion[key], want)
		}
	}
	if _, ok := completion["latency"]; !ok {
		t.Error("completion line lacks latency")
	}
	if slow == nil {
		t.Error("no slow-query warning despite the 1ns threshold")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer (slog handlers may be called
// from any goroutine).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestMuxErrorsAreJSON asserts the mux-generated replies (wrong method,
// unknown route) are converted into the same JSON error shape as handler
// errors — every non-2xx body is machine-readable.
func TestMuxErrorsAreJSON(t *testing.T) {
	s := testServer(t)
	w := do(t, s, "GET", "/v1/sssp", "")
	wantErrorJSON(t, w, http.StatusMethodNotAllowed, "Method Not Allowed")
	var e ErrorResponse
	json.Unmarshal(w.Body.Bytes(), &e)
	if e.Code != "method_not_allowed" {
		t.Fatalf("code = %q", e.Code)
	}
	w = do(t, s, "GET", "/no/such/route", "")
	wantErrorJSON(t, w, http.StatusNotFound, "Not Found")
	json.Unmarshal(w.Body.Bytes(), &e)
	if e.Code != "not_found" {
		t.Fatalf("code = %q", e.Code)
	}
}

// TestErrorCodes pins the stable machine-readable code per status class.
func TestErrorCodes(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		method, path, body, code string
	}{
		{"POST", "/v1/sssp", `{"graph": nope}`, "bad_request"},
		{"GET", "/v1/sweeps/sweep-9999", "", "not_found"},
		{"POST", "/v1/sssp", `{"graph":{"family":"path","n":8},"options":{"model":"sleeping","strict_congest":true}}`, "unprocessable"},
	}
	for _, tc := range cases {
		w := do(t, s, tc.method, tc.path, tc.body)
		var e ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
			t.Fatalf("%s %s: non-JSON body %q", tc.method, tc.path, w.Body.String())
		}
		if e.Code != tc.code {
			t.Errorf("%s %s: code = %q, want %q", tc.method, tc.path, e.Code, tc.code)
		}
	}
}

// TestRequestIDEcho asserts a sane client-supplied ID is echoed and a
// junk one is replaced.
func TestRequestIDEcho(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set(RequestIDHeader, "client-chosen-42")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if got := w.Header().Get(RequestIDHeader); got != "client-chosen-42" {
		t.Fatalf("echoed id = %q", got)
	}
	req = httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set(RequestIDHeader, "bad\nid")
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	// A minted ID is the request's 32-hex trace ID, so logs, exemplars,
	// and the flight recorder join on one key.
	if got := w.Header().Get(RequestIDHeader); got == "bad\nid" || len(got) != 32 {
		t.Fatalf("junk inbound id not replaced with the trace ID: %q", got)
	}
}
