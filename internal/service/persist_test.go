package service

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dsssp/internal/graph"
	"dsssp/internal/incr"
)

// TestRegistryRepairableLifecycle walks a source through the full
// exact → stale → repaired promotion cycle at the registry level.
func TestRegistryRepairableLifecycle(t *testing.T) {
	r := NewGraphRegistry(1<<20, NewCache(1<<20), nil)
	info, _ := r.Register(ciGraph())
	g, digest, _, _ := r.Resolve(info.ID)

	dist := graph.Dijkstra(g, 0)
	parent := graph.WitnessParents(g, 0, dist)
	r.Record(info.ID, digest, 0, dist, parent, "sssp|src=0")

	// Exact head trace: repairable with zero changes.
	tr, changes, ok := r.Repairable(info.ID, digest, 0)
	if !ok || len(changes) != 0 {
		t.Fatalf("exact trace: ok=%v changes=%v", ok, changes)
	}
	if !reflect.DeepEqual(tr.Dist, dist) || !reflect.DeepEqual(tr.Parent, parent) {
		t.Fatal("exact trace does not round-trip")
	}

	// Tighten the chord: source 0 goes dirty but keeps a stale trace.
	pi, err := r.Patch(info.ID, []graph.EdgeDelta{{Op: graph.DeltaReweight, U: 0, V: 2, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if pi.SourcesDropped != 1 || pi.SourcesRepairable != 1 {
		t.Fatalf("patch info = %+v", pi)
	}
	ng, d2, _, _ := r.Resolve(info.ID)
	tr2, changes2, ok := r.Repairable(info.ID, d2, 0)
	if !ok || len(changes2) != 1 {
		t.Fatalf("stale trace: ok=%v changes=%v", ok, changes2)
	}
	if changes2[0].OldW != 10 || changes2[0].NewW != 1 {
		t.Fatalf("ledger resolved to %+v, want 10→1 on {0,2}", changes2[0])
	}
	// The old digest must not resolve anything.
	if _, _, ok := r.Repairable(info.ID, digest, 0); ok {
		t.Fatal("stale digest accepted")
	}

	// Repair and verify byte-identity, then promote.
	rr, ok := incr.Repair(ng, 0, tr2, changes2, 0)
	if !ok {
		t.Fatal("repair declined")
	}
	want := graph.Dijkstra(ng, 0)
	if !reflect.DeepEqual(rr.Dist, want) || !reflect.DeepEqual(rr.Parent, graph.WitnessParents(ng, 0, want)) {
		t.Fatal("repair diverges from oracle")
	}
	r.Record(info.ID, d2, 0, rr.Dist, rr.Parent, "")
	gi, _ := r.Get(info.ID)
	if gi.TracedSources != 1 || gi.StaleSources != 0 {
		t.Fatalf("promotion did not supersede the stale trace: %+v", gi)
	}
	if st := r.Stats(); st.StaleTraces != 0 {
		t.Fatalf("stats still count stale traces: %+v", st)
	}
}

// TestRegistryStaleLedgerStacks pins ledger composition across multiple
// patches between queries: repairing once after two patches must see the
// FIRST old weight diffed against the LAST new weight.
func TestRegistryStaleLedgerStacks(t *testing.T) {
	r := NewGraphRegistry(1<<20, NewCache(1<<20), nil)
	info, _ := r.Register(ciGraph())
	g, digest, _, _ := r.Resolve(info.ID)
	dist := graph.Dijkstra(g, 0)
	r.Record(info.ID, digest, 0, dist, graph.WitnessParents(g, 0, dist), "")

	for _, w := range []int64{2, 1} { // chord 10 → 2 → 1
		if _, err := r.Patch(info.ID, []graph.EdgeDelta{{Op: graph.DeltaReweight, U: 0, V: 2, W: w}}); err != nil {
			t.Fatal(err)
		}
	}
	ng, d3, _, _ := r.Resolve(info.ID)
	tr, changes, ok := r.Repairable(info.ID, d3, 0)
	if !ok || len(changes) != 1 || changes[0].OldW != 10 || changes[0].NewW != 1 {
		t.Fatalf("stacked ledger: ok=%v changes=%+v, want one {0,2} 10→1", ok, changes)
	}
	rr, ok := incr.Repair(ng, 0, tr, changes, 0)
	if !ok || !reflect.DeepEqual(rr.Dist, graph.Dijkstra(ng, 0)) {
		t.Fatalf("stacked repair diverges (ok=%v)", ok)
	}
}

// TestRegistryPersistenceRoundTrip spills a graph with exact and stale
// traces, reloads it in a fresh registry, and requires the warm-started
// state to serve and repair exactly like the original.
func TestRegistryPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cache := NewCache(1 << 20)
	r := NewGraphRegistry(1<<20, cache, nil)
	if _, err := r.EnablePersistence(dir); err != nil {
		t.Fatal(err)
	}
	info, _ := r.Register(ciGraph())
	g, digest, _, _ := r.Resolve(info.ID)
	// Exact trace for source 1 (stays clean), and one for source 0 that the
	// patch below will demote to stale.
	for _, src := range []graph.NodeID{0, 1} {
		dist := graph.Dijkstra(g, src)
		r.Record(info.ID, digest, src, dist, graph.WitnessParents(g, src, dist), "")
	}
	if _, err := r.Patch(info.ID, []graph.EdgeDelta{{Op: graph.DeltaReweight, U: 0, V: 2, W: 1}}); err != nil {
		t.Fatal(err)
	}
	// Queries since the last patch accumulate trace state only in memory —
	// Flush (the SIGTERM path) is what spills it.
	ng, d2, _, _ := r.Resolve(info.ID)
	dist3 := graph.Dijkstra(ng, 3)
	r.Record(info.ID, d2, 3, dist3, graph.WitnessParents(ng, 3, dist3), "")
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}

	// A fresh registry (fresh process) reloads everything.
	r2 := NewGraphRegistry(1<<20, NewCache(1<<20), nil)
	restored, err := r2.EnablePersistence(dir)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored %d graphs, want 1", restored)
	}
	g2, d2b, rev, err := r2.Resolve(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rev != 2 || d2b != d2 {
		t.Fatalf("restored head rev=%d digest match=%v", rev, d2b == d2)
	}
	if !reflect.DeepEqual(g2.Edges(), ng.Edges()) {
		t.Fatal("restored graph content diverges")
	}
	gi, _ := r2.Get(info.ID)
	if gi.TracedSources != 2 || gi.StaleSources != 1 {
		t.Fatalf("restored trace census = %+v", gi)
	}
	// The restored stale trace repairs to the oracle.
	tr, changes, ok := r2.Repairable(info.ID, d2b, 0)
	if !ok || len(changes) != 1 {
		t.Fatalf("restored stale: ok=%v changes=%v", ok, changes)
	}
	rr, ok := incr.Repair(g2, 0, tr, changes, 0)
	if !ok || !reflect.DeepEqual(rr.Dist, graph.Dijkstra(g2, 0)) {
		t.Fatalf("restored repair diverges (ok=%v)", ok)
	}
	// The restored exact trace serves with zero changes.
	if _, changes, ok := r2.Repairable(info.ID, d2b, 1); !ok || len(changes) != 0 {
		t.Fatalf("restored exact trace: ok=%v changes=%v", ok, changes)
	}
}

// TestRegistryPersistenceRemoveDeletesFile pins that dropping a graph
// (DELETE or eviction) also forgets it on disk.
func TestRegistryPersistenceRemoveDeletesFile(t *testing.T) {
	dir := t.TempDir()
	r := NewGraphRegistry(1<<20, NewCache(1<<20), nil)
	if _, err := r.EnablePersistence(dir); err != nil {
		t.Fatal(err)
	}
	info, _ := r.Register(ciGraph())
	path := filepath.Join(dir, info.ID+".json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("register did not spill: %v", err)
	}
	r.Remove(info.ID)
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("remove left the spill file behind: %v", err)
	}
	r2 := NewGraphRegistry(1<<20, NewCache(1<<20), nil)
	if restored, _ := r2.EnablePersistence(dir); restored != 0 {
		t.Fatalf("removed graph resurrected: %d restored", restored)
	}
}

// TestRegistryPersistenceIgnoresForeignFiles pins that a reload rejects a
// corrupt spill loudly instead of silently serving garbage.
func TestRegistryPersistenceCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "g-bogus.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewGraphRegistry(1<<20, NewCache(1<<20), nil)
	if _, err := r.EnablePersistence(dir); err == nil {
		t.Fatal("corrupt spill file accepted")
	}
}
