package service

import (
	"fmt"
	"hash/fnv"
	"sort"

	"dsssp"
	"dsssp/internal/graph"
	"dsssp/internal/harness"
	"dsssp/internal/simnet"
)

// badRequest marks an error as the client's fault (HTTP 400); everything
// else surfaces as a server-side failure.
type badRequest struct{ err error }

func (e badRequest) Error() string { return e.err.Error() }
func (e badRequest) Unwrap() error { return e.err }

func badf(format string, args ...any) error {
	return badRequest{fmt.Errorf(format, args...)}
}

// notFoundErr marks an error as naming a resource that is not there
// (HTTP 404).
type notFoundErr struct{ err error }

func (e notFoundErr) Error() string { return e.err.Error() }
func (e notFoundErr) Unwrap() error { return e.err }

func notfoundf(format string, args ...any) error {
	return notFoundErr{fmt.Errorf(format, args...)}
}

// GraphSpec describes a query's input graph, one of three ways:
//
//   - inline: "n" plus "edges" ([[u,v,w], …]); duplicate pairs merge under
//     the keep-min policy and the edge list is canonicalized (sorted), so
//     any permutation of the same edge set is the same graph — and hits
//     the same cache entry;
//   - generator: "family" (one of the registered generator families) plus
//     "n", "seed", and an optional weight spec — the graph is materialized
//     server-side exactly like the bench harness does it;
//   - registered: "graph_id" names a graph registered via POST /v1/graphs;
//     the query runs against its head revision (the handle's current
//     content after any PATCHes), mutually exclusive with every other
//     field.
type GraphSpec struct {
	// ID names a registered graph (POST /v1/graphs); mutually exclusive
	// with the inline and generator fields.
	ID    string     `json:"graph_id,omitempty"`
	N     int        `json:"n,omitempty"`
	Edges [][3]int64 `json:"edges,omitempty"`
	// Family selects a generator family (path, cycle, tree, grid, random,
	// cluster, star, expander, barbell, powerlaw, bfgadget, disconnected);
	// empty means inline edges.
	Family string `json:"family,omitempty"`
	// Seed names the generator's structure stream verbatim (omitted means
	// 0, a valid seed). The weight stream is derived, not shared: every
	// other spec axis — family, n, weight kind, max_w — is folded in
	// before decorrelation (see weightSeed), so two specs differing in any
	// field draw different weights even under the same bare Seed and
	// content-addressed cache keys cannot alias.
	Seed int64 `json:"seed,omitempty"`
	// Weights picks the generator's weight distribution (unit, uniform,
	// zero-heavy); default unit. Ignored for inline edges.
	Weights *WeightSpec `json:"weights,omitempty"`
}

// WeightSpec mirrors the harness weight vocabulary.
type WeightSpec struct {
	Kind string `json:"kind"`
	MaxW int64  `json:"max_w,omitempty"`
}

// QueryOptions mirrors dsssp.Options over the wire.
type QueryOptions struct {
	// Model is "congest" (default) or "sleeping".
	Model string `json:"model,omitempty"`
	// EpsNum/EpsDen set the cutter ε in (0,1); 0/0 means the default 1/2.
	EpsNum int64 `json:"eps_num,omitempty"`
	EpsDen int64 `json:"eps_den,omitempty"`
	// StrictCongest enforces the O(log n)-bit per-message budget.
	StrictCongest bool `json:"strict_congest,omitempty"`
	// MaxRounds caps the simulation (0 = a generous default).
	MaxRounds int64 `json:"max_rounds,omitempty"`
	// RecordPhases attaches the per-phase breakdown to the response.
	RecordPhases bool `json:"record_phases,omitempty"`
	// Workers requests intra-round parallel simulation for this query,
	// clamped to the server's MaxIntraWorkers cap (0 = sequential, the
	// default). Purely an execution knob: results are byte-identical for
	// every value, so it is deliberately excluded from the cache key — a
	// sequential and a parallel request for the same computation share one
	// cache entry.
	Workers int `json:"workers,omitempty"`
}

// SSSPRequest is the POST /v1/sssp body. Source defaults to node 0.
type SSSPRequest struct {
	Graph   GraphSpec    `json:"graph"`
	Source  int64        `json:"source"`
	Options QueryOptions `json:"options"`
}

// PathRequest is the POST /v1/path body: SSSP plus a path reconstruction
// from target back to source.
type PathRequest struct {
	Graph   GraphSpec    `json:"graph"`
	Source  int64        `json:"source"`
	Target  int64        `json:"target"`
	Options QueryOptions `json:"options"`
}

// APSPRequest is the POST /v1/apsp body; Seed seeds the random-delay
// composition (Section 1.1).
type APSPRequest struct {
	Graph   GraphSpec    `json:"graph"`
	Seed    int64        `json:"seed"`
	Options QueryOptions `json:"options"`
}

// MetricsJSON is the wire form of the simulator metrics (the per-edge and
// per-node vectors stay server-side; totals travel).
type MetricsJSON struct {
	Rounds          int64 `json:"rounds"`
	StrictRounds    int64 `json:"strict_rounds,omitempty"`
	Messages        int64 `json:"messages"`
	MaxEdgeMessages int64 `json:"max_edge_messages"`
	MaxMessageBits  int64 `json:"max_message_bits,omitempty"`
	MaxAwake        int64 `json:"max_awake,omitempty"`
	TotalAwake      int64 `json:"total_awake,omitempty"`
}

func metricsJSON(m simnet.Metrics) MetricsJSON {
	return MetricsJSON{
		Rounds: m.Rounds, StrictRounds: m.StrictRounds, Messages: m.Messages,
		MaxEdgeMessages: m.MaxEdgeMessages, MaxMessageBits: m.MaxMessageBits,
		MaxAwake: m.MaxAwake, TotalAwake: m.TotalAwake,
	}
}

// SSSPResponse is the POST /v1/sssp result. Dist uses the +Inf sentinel
// (1<<62) for unreachable nodes, mirrored in Unreachable. A response
// served by affected-region repair carries Incr instead of Metrics: no
// simulation ran, so there are no rounds/messages to report — the
// distances are still byte-identical to a full run's.
type SSSPResponse struct {
	N              int                 `json:"n"`
	M              int                 `json:"m"`
	Dist           []int64             `json:"dist"`
	Unreachable    int                 `json:"unreachable"`
	SubproblemsMax int                 `json:"subproblems_max,omitempty"`
	Metrics        MetricsJSON         `json:"metrics,omitzero"`
	Phases         []harness.PhaseStat `json:"phases,omitempty"`
	Incr           *QueryIncrJSON      `json:"incr,omitempty"`
}

// QueryIncrJSON is the incremental-serving block of a single-source
// response that skipped the full computation.
type QueryIncrJSON struct {
	// Served is how the result was produced without a full run:
	// "repaired" (affected-region repair of a stale trace).
	Served string `json:"served"`
	// AffectedVertices / AffectedFraction size the region the repair
	// rebuilt (0 when the remembered trace was already exact).
	AffectedVertices int     `json:"affected_vertices"`
	AffectedFraction float64 `json:"affected_fraction"`
}

// PathResponse is the POST /v1/path result: the exact distance and one
// shortest path target → … → source (both endpoints inclusive). Repaired
// responses carry Incr instead of Metrics (see SSSPResponse).
type PathResponse struct {
	Dist    int64          `json:"dist"`
	Path    []int64        `json:"path"`
	Metrics MetricsJSON    `json:"metrics,omitzero"`
	Incr    *QueryIncrJSON `json:"incr,omitempty"`
}

// CompositionJSON is the wire form of the APSP scheduling composition.
type CompositionJSON struct {
	Dilation           int64 `json:"dilation"`
	Congestion         int64 `json:"congestion"`
	MakespanAligned    int64 `json:"makespan_aligned"`
	MakespanRandom     int64 `json:"makespan_random"`
	MakespanSequential int64 `json:"makespan_sequential"`
	MaxMessageBits     int64 `json:"max_message_bits,omitempty"`
}

// APSPResponse is the POST /v1/apsp result. For registered graphs served
// incrementally, Incr reports the per-source reuse split and Composition
// covers only the recomputed instances (distance rows are byte-identical
// to a from-scratch run either way; the composition of instances that were
// never re-run is unknowable without re-running them).
type APSPResponse struct {
	N           int                 `json:"n"`
	M           int                 `json:"m"`
	Dist        [][]int64           `json:"dist"`
	Composition CompositionJSON     `json:"composition"`
	Phases      []harness.PhaseStat `json:"phases,omitempty"`
	Incr        *IncrJSON           `json:"incr,omitempty"`
}

// IncrJSON is the incremental-serving split of an APSP response: how many
// per-source instances were served from cached rows, rebuilt by
// affected-region repair, or actually re-run.
type IncrJSON struct {
	SourcesReused     int `json:"sources_reused"`
	SourcesRepaired   int `json:"sources_repaired,omitempty"`
	SourcesRecomputed int `json:"sources_recomputed"`
}

// RegisterRequest is the POST /v1/graphs body: the graph to register,
// inline or by generator spec (graph_id is, naturally, rejected here).
type RegisterRequest struct {
	Graph GraphSpec `json:"graph"`
}

// GraphListResponse is the GET /v1/graphs body.
type GraphListResponse struct {
	Graphs []GraphInfo `json:"graphs"`
}

// DeltaJSON is one edge mutation in a PATCH /v1/graphs/{id}/edges batch.
type DeltaJSON struct {
	// Op is "insert", "delete", or "reweight".
	Op string `json:"op"`
	U  int64  `json:"u"`
	V  int64  `json:"v"`
	// W is the weight for insert/reweight; ignored for delete.
	W int64 `json:"w,omitempty"`
}

// PatchRequest is the PATCH /v1/graphs/{id}/edges body: a batch of edge
// deltas applied atomically, producing one new revision.
type PatchRequest struct {
	Deltas []DeltaJSON `json:"deltas"`
}

// parseDeltas validates the wire deltas against the target graph's node
// range and maps them onto graph.EdgeDelta.
func parseDeltas(ds []DeltaJSON, n int) ([]graph.EdgeDelta, error) {
	if len(ds) == 0 {
		return nil, badf("deltas must be a non-empty array")
	}
	out := make([]graph.EdgeDelta, len(ds))
	for i, d := range ds {
		var op graph.DeltaOp
		switch d.Op {
		case "insert":
			op = graph.DeltaInsert
		case "delete":
			op = graph.DeltaDelete
		case "reweight":
			op = graph.DeltaReweight
		default:
			return nil, badf("delta %d: unknown op %q (insert, delete, reweight)", i, d.Op)
		}
		switch {
		case d.U == d.V:
			return nil, badf("delta %d: self-loop at node %d", i, d.U)
		case d.U < 0 || d.U >= int64(n) || d.V < 0 || d.V >= int64(n):
			return nil, badf("delta %d: endpoints {%d,%d} out of range [0,%d)", i, d.U, d.V, n)
		case op != graph.DeltaDelete && d.W < 0:
			return nil, badf("delta %d: negative weight %d", i, d.W)
		}
		out[i] = graph.EdgeDelta{Op: op, U: graph.NodeID(d.U), V: graph.NodeID(d.V), W: d.W}
	}
	return out, nil
}

// ErrorResponse is every non-2xx body: human prose in Error, a stable
// machine-readable Code (clients switch on it; the prose may change), and
// the request's correlation ID (also in the X-Dsssp-Request-Id header).
type ErrorResponse struct {
	Error     string `json:"error"`
	Code      string `json:"code"`
	RequestID string `json:"request_id,omitempty"`
}

// buildGraph validates a GraphSpec and materializes the graph, bounded by
// the server's size limits. Inline edge lists are canonicalized (sorted,
// duplicates merged keep-min) before insertion so the simulation — not
// just the cache key — is a pure function of the edge set.
func buildGraph(spec GraphSpec, maxN, maxEdges int) (*graph.Graph, error) {
	if spec.ID != "" {
		// Handles are resolved by the caller (Server.prepare); a spec that
		// reaches materialization with one set is a caller that cannot
		// honor it.
		return nil, badf("graph.graph_id is not accepted here (inline or generator spec required)")
	}
	if spec.Family != "" {
		return buildGeneratorGraph(spec, maxN)
	}
	if spec.N < 2 || spec.N > maxN {
		return nil, badf("graph.n must be in [2,%d], got %d", maxN, spec.N)
	}
	if len(spec.Edges) == 0 {
		return nil, badf("inline graph has no edges (set graph.edges or graph.family)")
	}
	if len(spec.Edges) > maxEdges {
		return nil, badf("graph has %d edges, limit %d", len(spec.Edges), maxEdges)
	}
	edges := make([][3]int64, len(spec.Edges))
	for i, e := range spec.Edges {
		u, v, w := e[0], e[1], e[2]
		if u > v {
			u, v = v, u
		}
		switch {
		case u == v:
			return nil, badf("edge %d: self-loop at node %d", i, u)
		case u < 0 || v >= int64(spec.N):
			return nil, badf("edge %d: endpoints {%d,%d} out of range [0,%d)", i, e[0], e[1], spec.N)
		case w < 0:
			return nil, badf("edge %d: negative weight %d", i, w)
		}
		edges[i] = [3]int64{u, v, w}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		if edges[a][1] != edges[b][1] {
			return edges[a][1] < edges[b][1]
		}
		return edges[a][2] < edges[b][2]
	})
	// Merge duplicates keep-min here, while they are adjacent in the sorted
	// list: AddEdge would apply the same policy, but at O(degree) per
	// duplicate — a cost an untrusted inline edge list must not control.
	// The sort above puts the minimum weight first within a pair, so
	// keeping the first occurrence is keep-min.
	dedup := edges[:0]
	for i, e := range edges {
		if i > 0 && e[0] == dedup[len(dedup)-1][0] && e[1] == dedup[len(dedup)-1][1] {
			continue
		}
		dedup = append(dedup, e)
	}
	g := graph.New(spec.N)
	for _, e := range dedup {
		g.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]), e[2])
	}
	g.SortAdj()
	return g, nil
}

func buildGeneratorGraph(spec GraphSpec, maxN int) (*graph.Graph, error) {
	if len(spec.Edges) > 0 {
		return nil, badf("graph.family and graph.edges are mutually exclusive")
	}
	fam := graph.Family(spec.Family)
	known := false
	for _, f := range graph.Families() {
		known = known || f == fam
	}
	if !known {
		return nil, badf("unknown graph family %q (families: %v)", spec.Family, graph.Families())
	}
	if spec.N < 4 || spec.N > maxN {
		return nil, badf("generator graphs need n in [4,%d], got %d", maxN, spec.N)
	}
	w := graph.UnitWeights
	if spec.Weights != nil {
		wseed := weightSeed(spec)
		switch spec.Weights.Kind {
		case "", string(harness.WeightUnit):
		case string(harness.WeightUniform):
			if spec.Weights.MaxW < 1 {
				return nil, badf("uniform weights need max_w >= 1")
			}
			w = graph.UniformWeights(spec.Weights.MaxW, wseed)
		case string(harness.WeightZeroHeavy):
			if spec.Weights.MaxW < 1 {
				return nil, badf("zero-heavy weights need max_w >= 1")
			}
			w = graph.ZeroHeavyWeights(spec.Weights.MaxW, wseed)
		default:
			return nil, badf("unknown weight kind %q (unit, uniform, zero-heavy)", spec.Weights.Kind)
		}
	}
	return graph.Make(fam, spec.N, w, spec.Seed), nil
}

// weightSeed derives a generator spec's weight-stream seed. The spec-seed
// contract: spec.Seed names the structure stream verbatim (graph.Make
// consumes it as-is), while the weight stream folds every other spec axis —
// family, n, weight kind, max_w — into the seed before an LCG decorrelation
// step. The fold is what keeps distinct specs distinct: a bare LCG of
// spec.Seed alone made every family sharing a seed (notably the omitted-
// seed default 0) draw the same weight stream. A spec therefore names
// exactly one reproducible graph in the service's namespace. (Harness
// scenarios additionally fold the scenario *name* into their seeds, so a
// spec does not reproduce a named scenario's graph — replay those through
// /v1/sweeps instead.)
//
// The derivation is part of the wire contract and pinned by
// TestWeightSeedContract: changing it silently repoints every cached
// generator-spec result.
func weightSeed(spec GraphSpec) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|", spec.Family, spec.N)
	if spec.Weights != nil {
		fmt.Fprintf(h, "%s|%d", spec.Weights.Kind, spec.Weights.MaxW)
	}
	x := spec.Seed ^ int64(h.Sum64())
	return x*6364136223846793005 + 1442695040888963407
}

// resolveOptions maps wire options onto dsssp.Options. The engine always
// records phases server-side — the span ledger does not change the
// schedule (pinned since PR 4), and every computed query feeds the
// per-phase round histograms in /metrics; the wire RecordPhases flag only
// controls whether the breakdown travels in the response (and, because it
// changes the bytes, the cache key). The wire Workers knob maps onto
// IntraWorkers clamped to the server's cap; it cannot affect response
// bytes, so it stays out of the cache key (asserted by the hash tests).
func resolveOptions(o QueryOptions, workers, intraCap int) (*dsssp.Options, error) {
	if o.Workers < 0 {
		return nil, badf("workers must be >= 0, got %d", o.Workers)
	}
	intra := o.Workers
	if intra > intraCap {
		intra = intraCap
	}
	opts := &dsssp.Options{
		EpsNum: o.EpsNum, EpsDen: o.EpsDen,
		MaxRounds:     o.MaxRounds,
		StrictCongest: o.StrictCongest,
		RecordPhases:  true,
		Workers:       workers,
		IntraWorkers:  intra,
	}
	switch o.Model {
	case "", "congest":
		opts.Model = dsssp.ModelCongest
	case "sleeping":
		opts.Model = dsssp.ModelSleeping
	default:
		return nil, badf("unknown model %q (congest, sleeping)", o.Model)
	}
	if o.EpsNum != 0 || o.EpsDen != 0 {
		if o.EpsNum <= 0 || o.EpsDen <= 0 || o.EpsNum >= o.EpsDen {
			return nil, badf("ε must be in (0,1), got %d/%d", o.EpsNum, o.EpsDen)
		}
	}
	if o.MaxRounds < 0 {
		return nil, badf("max_rounds must be >= 0, got %d", o.MaxRounds)
	}
	return opts, nil
}

func countUnreachable(dist []int64) int {
	n := 0
	for _, d := range dist {
		if d == graph.Inf {
			n++
		}
	}
	return n
}
