package service

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// entryOverhead approximates the per-entry bookkeeping bytes the Go heap
// pays beyond key and body: the list.Element (4 pointers + value header),
// the centry header, and the items map's bucket share. Charging it keeps
// the byte budget honest under many small entries — a cache full of
// 100-byte bodies behind 64-byte keys is mostly overhead, and a budget
// that only counted bodies would blow its memory target several-fold.
const entryOverhead = 128

// entryCost is the bytes an entry is charged against the budget: body,
// key, and fixed per-entry overhead.
func entryCost(key string, body []byte) int64 {
	return int64(len(key)) + int64(len(body)) + entryOverhead
}

// Cache is the content-addressed result cache: finished response bodies
// keyed by queryKey, evicted LRU under a byte budget, with in-flight
// deduplication — concurrent identical misses run the computation once and
// every waiter gets the same bytes. The whole-graph answers the paper's
// APSP ramification makes expensive are exactly cacheable (deterministic
// algorithms on content-addressed inputs), so repeats cost a map lookup.
//
// For registered graphs the key embeds the graph *revision* digest, which
// is what makes invalidation edge-granular: a PATCH migrates (Copy) the
// entries of sources its deltas provably cannot affect to the new
// revision's keys and drops (Invalidate) exactly the dirty ones, instead
// of orphaning the whole graph's worth of results.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List               // front = most recently used
	items   map[string]*list.Element // key → element holding *centry
	flights map[string]*flight

	hits, misses, evictions int64
	// shared counts hits served by another request's in-flight computation
	// (singleflight dedup) — a subset of hits.
	shared int64
}

type centry struct {
	key  string
	body []byte
}

// flight is one in-progress computation; followers block on done.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// NewCache returns a cache with the given byte budget (<= 0 disables
// storage; deduplication of concurrent identical requests still applies).
func NewCache(budget int64) *Cache {
	return &Cache{
		budget:  budget,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// cacheOutcome distinguishes how a getOrCompute call was served; the
// tracing layer labels each request's cache span with it (a singleflight
// follower is a "shared" hit: its bytes came from another request's
// in-flight computation, and its trace has no engine span of its own).
type cacheOutcome uint8

const (
	cacheMiss   cacheOutcome = iota // this caller ran compute
	cacheHit                        // resident entry
	cacheShared                     // another request's in-flight computation
)

func (o cacheOutcome) String() string {
	switch o {
	case cacheHit:
		return "hit"
	case cacheShared:
		return "shared"
	default:
		return "miss"
	}
}

// GetOrCompute returns the cached body for key, or runs compute exactly
// once per key at a time and caches its result. hit reports whether the
// bytes came from the cache or a concurrent identical computation (a
// "shared" hit) rather than this caller's own compute. Errors are never
// cached: a failed computation leaves no entry, so a transient failure
// doesn't poison the key. One exception to error propagation: when a
// flight leader fails with a context cancellation, that error is specific
// to the leader's hung-up client, not to the computation — a waiting
// follower (whose own connection is alive) takes over as the new leader
// instead of inheriting the 499. Genuine compute errors propagate to
// every waiter unretried.
func (c *Cache) GetOrCompute(key string, compute func() ([]byte, error)) (body []byte, hit bool, err error) {
	body, out, err := c.getOrCompute(key, func() ([]byte, bool, error) {
		b, err := compute()
		return b, true, err
	})
	return body, out != cacheMiss, err
}

// GetOrComputeEx is GetOrCompute for computations that decide at run time
// whether their bytes are cacheable: compute additionally returns store —
// false means the body is served (and shared with concurrent identical
// waiters) but not inserted, for responses that are not pure functions of
// the key (the incremental-APSP assembly, whose reuse split depends on
// what happened to be cached).
func (c *Cache) GetOrComputeEx(key string, compute func() ([]byte, bool, error)) (body []byte, hit bool, err error) {
	body, out, err := c.getOrCompute(key, compute)
	return body, out != cacheMiss, err
}

func (c *Cache) getOrCompute(key string, compute func() ([]byte, bool, error)) (body []byte, out cacheOutcome, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			c.hits++
			body = el.Value.(*centry).body
			c.mu.Unlock()
			return body, cacheHit, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			<-f.done
			if f.err != nil {
				if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
					continue // the leader's client died, not the computation
				}
				return nil, cacheMiss, f.err
			}
			c.mu.Lock()
			c.hits++ // served by the leader's computation, not our own
			c.shared++
			c.mu.Unlock()
			return f.body, cacheShared, nil
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.misses++
		c.mu.Unlock()
		c.lead(key, f, compute)
		return f.body, cacheMiss, f.err
	}
}

// lead runs the flight leader's computation and always releases the
// flight — even when compute panics (the HTTP layer recovers handler
// panics into a 500, so a panicking input must not leave followers parked
// on f.done forever and the key permanently poisoned). The panic
// propagates to the leader after cleanup; followers see a plain error.
func (c *Cache) lead(key string, f *flight, compute func() ([]byte, bool, error)) {
	completed := false
	store := false
	defer func() {
		c.mu.Lock()
		delete(c.flights, key)
		if completed && store && f.err == nil {
			c.insertLocked(key, f.body)
		}
		c.mu.Unlock()
		if !completed {
			f.body, f.err = nil, errors.New("service: computation panicked (see the leader request's error)")
		}
		close(f.done)
	}()
	f.body, store, f.err = compute()
	completed = true
}

// Copy duplicates the entry at src under dst (sharing the body bytes —
// entries are immutable) and reports whether src was resident. This is the
// reuse half of edge-granular invalidation: a PATCH carries an untouched
// source's result forward to the new revision's key without recomputing or
// copying the payload.
func (c *Cache) Copy(src, dst string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[src]
	if !ok {
		return false
	}
	c.insertLocked(dst, el.Value.(*centry).body)
	return true
}

// Invalidate removes the given keys and returns how many were resident —
// the dirty half of edge-granular invalidation (a PATCH drops exactly the
// sources its deltas can affect; everything else stays warm).
func (c *Cache) Invalidate(keys ...string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, key := range keys {
		if el, ok := c.items[key]; ok {
			c.removeLocked(el)
			n++
		}
	}
	return n
}

// insertLocked adds an entry and evicts LRU entries until the budget
// holds. Bodies whose charged cost exceeds the whole budget are served but
// not stored.
func (c *Cache) insertLocked(key string, body []byte) {
	if entryCost(key, body) > c.budget {
		return
	}
	if el, ok := c.items[key]; ok { // lost a race against a concurrent fill
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&centry{key: key, body: body})
	c.used += entryCost(key, body)
	for c.used > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
}

// removeLocked drops an entry and refunds its charged cost.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*centry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.used -= entryCost(e.key, e.body)
}

// CacheStats is the observable cache state (GET /v1/stats and the
// dsssp_cache_* metrics).
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// SingleflightDedup counts hits served by another request's in-flight
	// computation (concurrent identical misses collapsed); ⊆ Hits.
	SingleflightDedup int64 `json:"singleflight_dedup"`
	Entries           int   `json:"entries"`
	// BytesUsed is the charged footprint: bodies plus keys plus the fixed
	// per-entry overhead (see entryOverhead), so it tracks real memory,
	// not just payload bytes.
	BytesUsed int64 `json:"bytes_used"`
	Budget    int64 `json:"bytes_budget"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions, SingleflightDedup: c.shared,
		Entries: len(c.items), BytesUsed: c.used, Budget: c.budget,
	}
}
