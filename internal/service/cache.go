package service

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// Cache is the content-addressed result cache: finished response bodies
// keyed by queryKey, evicted LRU under a byte budget, with in-flight
// deduplication — concurrent identical misses run the computation once and
// every waiter gets the same bytes. The whole-graph answers the paper's
// APSP ramification makes expensive are exactly cacheable (deterministic
// algorithms on content-addressed inputs), so repeats cost a map lookup.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List               // front = most recently used
	items   map[string]*list.Element // key → element holding *centry
	flights map[string]*flight

	hits, misses, evictions int64
	// shared counts hits served by another request's in-flight computation
	// (singleflight dedup) — a subset of hits.
	shared int64
}

type centry struct {
	key  string
	body []byte
}

// flight is one in-progress computation; followers block on done.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// NewCache returns a cache with the given byte budget (<= 0 disables
// storage; deduplication of concurrent identical requests still applies).
func NewCache(budget int64) *Cache {
	return &Cache{
		budget:  budget,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// GetOrCompute returns the cached body for key, or runs compute exactly
// once per key at a time and caches its result. hit reports whether the
// bytes came from the cache or a concurrent identical computation (a
// "shared" hit) rather than this caller's own compute. Errors are never
// cached: a failed computation leaves no entry, so a transient failure
// doesn't poison the key. One exception to error propagation: when a
// flight leader fails with a context cancellation, that error is specific
// to the leader's hung-up client, not to the computation — a waiting
// follower (whose own connection is alive) takes over as the new leader
// instead of inheriting the 499. Genuine compute errors propagate to
// every waiter unretried.
func (c *Cache) GetOrCompute(key string, compute func() ([]byte, error)) (body []byte, hit bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			c.hits++
			body = el.Value.(*centry).body
			c.mu.Unlock()
			return body, true, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			<-f.done
			if f.err != nil {
				if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
					continue // the leader's client died, not the computation
				}
				return nil, false, f.err
			}
			c.mu.Lock()
			c.hits++ // served by the leader's computation, not our own
			c.shared++
			c.mu.Unlock()
			return f.body, true, nil
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.misses++
		c.mu.Unlock()
		c.lead(key, f, compute)
		return f.body, false, f.err
	}
}

// lead runs the flight leader's computation and always releases the
// flight — even when compute panics (the HTTP layer recovers handler
// panics into a 500, so a panicking input must not leave followers parked
// on f.done forever and the key permanently poisoned). The panic
// propagates to the leader after cleanup; followers see a plain error.
func (c *Cache) lead(key string, f *flight, compute func() ([]byte, error)) {
	completed := false
	defer func() {
		c.mu.Lock()
		delete(c.flights, key)
		if completed && f.err == nil {
			c.insertLocked(key, f.body)
		}
		c.mu.Unlock()
		if !completed {
			f.body, f.err = nil, errors.New("service: computation panicked (see the leader request's error)")
		}
		close(f.done)
	}()
	f.body, f.err = compute()
	completed = true
}

// insertLocked adds an entry and evicts LRU entries until the budget
// holds. Bodies larger than the whole budget are served but not stored.
func (c *Cache) insertLocked(key string, body []byte) {
	if int64(len(body)) > c.budget {
		return
	}
	if el, ok := c.items[key]; ok { // lost a race against a concurrent fill
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&centry{key: key, body: body})
	c.used += int64(len(body))
	for c.used > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*centry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.used -= int64(len(e.body))
		c.evictions++
	}
}

// CacheStats is the observable cache state (GET /v1/stats and the
// dsssp_cache_* metrics).
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// SingleflightDedup counts hits served by another request's in-flight
	// computation (concurrent identical misses collapsed); ⊆ Hits.
	SingleflightDedup int64 `json:"singleflight_dedup"`
	Entries           int   `json:"entries"`
	BytesUsed         int64 `json:"bytes_used"`
	Budget            int64 `json:"bytes_budget"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions, SingleflightDedup: c.shared,
		Entries: len(c.items), BytesUsed: c.used, Budget: c.budget,
	}
}
