// Package decomp builds the layered sparse covers of Section 3.2 of the
// paper: for each layer j, a sparse B^j-cover — a set of clusters with
// low-depth spanning trees such that every node's B^j-ball is fully inside
// some cluster and every node belongs to few clusters — plus the parent
// assignment between consecutive layers (Definition 3.4): parent(C)
// contains C and its B^(j+1)/2-neighborhood.
//
// The paper constructs covers with the Rozhon–Ghaffari network
// decomposition (Theorems 3.10–3.12), whose contribution is its distributed
// round/energy complexity. This package provides the construction as a
// deterministic centralized ("oracle") builder using Awerbuch–Peleg-style
// ball growing, which yields the same interface guarantees the downstream
// algorithms rely on — cover property, cluster-tree depth at most
// stretch·B^j with stretch O(log n), per-node cluster overlap O(log n) —
// and is used to install covers into the simulator. DESIGN.md documents
// this substitution; the experiment E4 measures the actual stretch and
// overlap against the theoretical caps, and package energybfs performs all
// cover *usage* (the activation cascade of Section 3.3) strictly in-model.
package decomp

import (
	"container/heap"
	"fmt"
	"math/bits"

	"dsssp/internal/graph"
)

// Membership is one node's view of one cluster it belongs to.
type Membership struct {
	// Cluster is the globally unique cluster ID.
	Cluster int32
	// Layer is the cover layer (0-based).
	Layer int
	// Depth is the node's depth in the cluster tree.
	Depth int64
	// Parent is the adjacency index toward the cluster-tree parent (-1 at
	// the cluster root).
	Parent int
	// Children are adjacency indexes of cluster-tree children.
	Children []int
	// ParentCluster is the ID of the assigned parent cluster at layer+1
	// (-1 at the top layer).
	ParentCluster int32
}

// LayerMeta describes one cover layer.
type LayerMeta struct {
	// Radius is B^j, the covered ball radius.
	Radius int64
	// MaxDepth is the maximum cluster-tree depth on this layer.
	MaxDepth int64
	// Period is the cluster protocol period used by package energybfs:
	// one full convergecast+broadcast cycle fits in a window.
	Period int64
	// Clusters counts clusters on this layer.
	Clusters int
}

// Cover is a layered sparse cover of (a subgraph of) a graph.
type Cover struct {
	// B is the layer base (B >= 2*stretch so parents cover half-radius
	// neighborhoods).
	B      int64
	Layers []LayerMeta
	// Node[v] lists v's memberships across all layers (nil for
	// non-participants).
	Node [][]Membership
	// ClusterCount is the total number of clusters.
	ClusterCount int
	// MaxDist is the distance the top layer covers (B^L >= 2*MaxDist).
	MaxDist int64
}

// Stretch returns the construction's stretch bound for an n-node graph:
// cluster radius <= Stretch(n) * B^j.
func Stretch(n int) int64 {
	if n < 2 {
		return 3
	}
	return 2*int64(bits.Len(uint(n-1))) + 3
}

// Base returns the layer base B = 2*Stretch(n), chosen so that a layer-j
// cluster plus its B^(j+1)/2-neighborhood fits inside a layer-(j+1) ball.
func Base(n int) int64 { return 2 * Stretch(n) }

// WeightFn gives the (positive) metric weight of node u's i-th incident
// edge. Nil means hop metric (all ones).
type WeightFn func(u graph.NodeID, i int) int64

// Build constructs a layered sparse cover of the participant-induced
// subgraph under the given metric, with layers 0..L where B^L >= 2*maxDist.
// participants == nil means all nodes. All weights must be >= 1.
func Build(g *graph.Graph, participants []bool, weight WeightFn, maxDist int64) (*Cover, error) {
	if maxDist < 1 {
		return nil, fmt.Errorf("decomp: maxDist must be >= 1, got %d", maxDist)
	}
	n := g.N()
	inSet := func(v graph.NodeID) bool { return participants == nil || participants[v] }
	w := weight
	if w == nil {
		w = func(graph.NodeID, int) int64 { return 1 }
	}

	cv := &Cover{B: Base(n), Node: make([][]Membership, n), MaxDist: maxDist}
	stretch := Stretch(n)
	radius := int64(1)
	clusterID := int32(0)
	// homes[j][v] = cluster whose creation covered v's layer-j ball.
	var homes [][]int32
	// centers[c] = center node of cluster c; layerOf[c] = its layer.
	var centers []graph.NodeID

	for layer := 0; ; layer++ {
		meta := LayerMeta{Radius: radius}
		var maxActualRadius int64
		home := make([]int32, n)
		for i := range home {
			home[i] = -1
		}
		// Deterministic ball growing: repeatedly take the lowest-ID
		// uncovered node, grow its ball until one more 2d-expansion less
		// than doubles it, and emit the expanded ball as a cluster.
		for v := 0; v < n; v++ {
			if !inSet(graph.NodeID(v)) || home[v] >= 0 {
				continue
			}
			r := radius
			for {
				inner := ballSize(g, graph.NodeID(v), r, inSet, w)
				outer := ballSize(g, graph.NodeID(v), r+2*radius, inSet, w)
				if outer <= 2*inner || r >= 2*stretch*radius {
					break
				}
				r += 2 * radius
			}
			cr := r + 2*radius
			dist, parent := ballTree(g, graph.NodeID(v), cr, inSet, w)
			for _, d := range dist {
				if d > maxActualRadius {
					maxActualRadius = d
				}
			}
			id := clusterID
			clusterID++
			centers = append(centers, graph.NodeID(v))
			meta.Clusters++
			// Members: the full expanded ball; homes: the inner ball.
			for u := 0; u < n; u++ {
				if dist[u] < 0 {
					continue
				}
				if dist[u] <= r && home[u] < 0 {
					home[u] = id
				}
				m := Membership{
					Cluster: id, Layer: layer, ParentCluster: -1,
					Depth: hopDepth(g, graph.NodeID(u), parent), Parent: parent[u],
				}
				if m.Depth > meta.MaxDepth {
					meta.MaxDepth = m.Depth
				}
				cv.Node[u] = append(cv.Node[u], m)
			}
			// Children lists from parent pointers.
			for u := 0; u < n; u++ {
				if dist[u] >= 0 && parent[u] >= 0 {
					p := g.Adj(graph.NodeID(u))[parent[u]].To
					pm := lastMembership(cv.Node[p], id)
					pi := indexOfNeighbor(g, p, graph.NodeID(u))
					pm.Children = append(pm.Children, pi)
				}
			}
		}
		meta.Period = 2*meta.MaxDepth + 4
		cv.Layers = append(cv.Layers, meta)
		homes = append(homes, home)
		if radius >= 2*maxDist {
			break
		}
		// Adaptive layer growth: the next radius is at least twice the
		// largest actual cluster radius of this layer, which guarantees the
		// Definition 3.4 parent containment (r_C <= d_{j+1}/2) directly
		// from measured geometry rather than the worst-case stretch bound;
		// the factor-4 floor bounds the layer count by log(maxDist).
		next := 4 * radius
		if 2*maxActualRadius > next {
			next = 2 * maxActualRadius
		}
		radius = next
		if len(cv.Layers) > 64 {
			return nil, fmt.Errorf("decomp: layer overflow (maxDist=%d)", maxDist)
		}
	}
	cv.ClusterCount = int(clusterID)
	// Monotone layer depths/periods: the activation-latency argument of
	// package energybfs (Lemma 3.7's condition) wants P_j non-decreasing in
	// j; padding a layer's depth bound only lengthens its windows.
	for j := 1; j < len(cv.Layers); j++ {
		if cv.Layers[j].MaxDepth < cv.Layers[j-1].MaxDepth {
			cv.Layers[j].MaxDepth = cv.Layers[j-1].MaxDepth
		}
		cv.Layers[j].Period = 2*cv.Layers[j].MaxDepth + 4
	}

	// Parent assignment: parent(C at layer j) = the layer j+1 cluster that
	// covered C's center's B^(j+1)-ball; it contains C plus its
	// B^(j+1)/2-neighborhood because C's radius <= stretch*B^j <= B^(j+1)/2.
	top := len(cv.Layers) - 1
	for v := 0; v < n; v++ {
		for i := range cv.Node[v] {
			m := &cv.Node[v][i]
			if m.Layer < top {
				m.ParentCluster = homes[m.Layer+1][centers[m.Cluster]]
			}
		}
	}
	return cv, nil
}

// ballSize counts participant nodes within metric distance r of v.
func ballSize(g *graph.Graph, v graph.NodeID, r int64, inSet func(graph.NodeID) bool, w WeightFn) int64 {
	dist, _ := ballTree(g, v, r, inSet, w)
	var c int64
	for _, d := range dist {
		if d >= 0 {
			c++
		}
	}
	return c
}

// ballTree runs bounded Dijkstra from v over participants and returns
// (metric distance or -1, BFS-tree parent adjacency index or -1).
func ballTree(g *graph.Graph, v graph.NodeID, r int64, inSet func(graph.NodeID) bool, w WeightFn) ([]int64, []int) {
	n := g.N()
	dist := make([]int64, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	if !inSet(v) {
		return dist, parent
	}
	dist[v] = 0
	pq := &distHeap{{v, 0}}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(distEntry)
		if top.d > dist[top.v] {
			continue
		}
		for i, h := range g.Adj(top.v) {
			if !inSet(h.To) {
				continue
			}
			wt := w(top.v, i)
			if wt < 1 {
				panic(fmt.Sprintf("decomp: non-positive metric weight at node %d edge %d", top.v, i))
			}
			nd := top.d + wt
			if nd > r {
				continue
			}
			if dist[h.To] < 0 || nd < dist[h.To] {
				dist[h.To] = nd
				// Record the parent as h.To's index of this edge.
				parent[h.To] = indexOfNeighborEdge(g, h.To, h.ID)
				heap.Push(pq, distEntry{h.To, nd})
			}
		}
	}
	return dist, parent
}

type distEntry struct {
	v graph.NodeID
	d int64
}

type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// hopDepth follows parent adjacency indexes to the root counting hops.
func hopDepth(g *graph.Graph, u graph.NodeID, parent []int) int64 {
	var d int64
	for parent[u] >= 0 {
		u = g.Adj(u)[parent[u]].To
		d++
		if d > int64(g.N()) {
			panic("decomp: parent cycle")
		}
	}
	return d
}

func indexOfNeighbor(g *graph.Graph, u, to graph.NodeID) int {
	for i, h := range g.Adj(u) {
		if h.To == to {
			return i
		}
	}
	panic("decomp: neighbor not found")
}

func indexOfNeighborEdge(g *graph.Graph, u graph.NodeID, id graph.EdgeID) int {
	for i, h := range g.Adj(u) {
		if h.ID == id {
			return i
		}
	}
	panic("decomp: edge not found")
}

func lastMembership(ms []Membership, cluster int32) *Membership {
	for i := len(ms) - 1; i >= 0; i-- {
		if ms[i].Cluster == cluster {
			return &ms[i]
		}
	}
	panic("decomp: membership not found")
}

// MaxOverlap returns the maximum number of clusters any single node
// belongs to (the paper's per-node O(log n)-per-layer sparsity measure).
func (c *Cover) MaxOverlap() int {
	m := 0
	for _, ms := range c.Node {
		if len(ms) > m {
			m = len(ms)
		}
	}
	return m
}

// MaxEdgeTreeOverlap returns the maximum, over edges, of the number of
// cluster trees using that edge (Theorem 3.10's O(log^4 n) measure).
func (c *Cover) MaxEdgeTreeOverlap(g *graph.Graph) int {
	cnt := make(map[graph.EdgeID]map[int32]bool)
	for v, ms := range c.Node {
		for _, m := range ms {
			if m.Parent >= 0 {
				id := g.Adj(graph.NodeID(v))[m.Parent].ID
				if cnt[id] == nil {
					cnt[id] = make(map[int32]bool)
				}
				cnt[id][m.Cluster] = true
			}
		}
	}
	best := 0
	for _, s := range cnt {
		if len(s) > best {
			best = len(s)
		}
	}
	return best
}
