package decomp

import (
	"testing"

	"dsssp/internal/graph"
)

// metricDist computes reference distances in the participant subgraph under
// the membership metric.
func metricDist(g *graph.Graph, from graph.NodeID, participants []bool, w WeightFn) []int64 {
	if w == nil {
		w = func(graph.NodeID, int) int64 { return 1 }
	}
	sub := graph.New(g.N())
	for _, e := range g.Edges() {
		if participants == nil || (participants[e.U] && participants[e.V]) {
			wt := int64(1)
			for i, h := range g.Adj(e.U) {
				if h.ID == e.ID {
					wt = w(e.U, i)
				}
			}
			sub.AddEdge(e.U, e.V, wt)
		}
	}
	sub.SortAdj()
	return graph.Dijkstra(sub, from)
}

// verifyCover checks the cover property, tree validity, stretch, and parent
// containment on every layer.
func verifyCover(t *testing.T, g *graph.Graph, cv *Cover, participants []bool, w WeightFn) {
	t.Helper()
	n := g.N()
	inSet := func(v int) bool { return participants == nil || participants[v] }

	// Collect cluster -> member set and roots.
	members := make(map[int32]map[graph.NodeID]Membership)
	layerOf := make(map[int32]int)
	parentOf := make(map[int32]int32)
	for v := 0; v < n; v++ {
		for _, m := range cv.Node[v] {
			if members[m.Cluster] == nil {
				members[m.Cluster] = make(map[graph.NodeID]Membership)
			}
			members[m.Cluster][graph.NodeID(v)] = m
			layerOf[m.Cluster] = m.Layer
			parentOf[m.Cluster] = m.ParentCluster
		}
	}

	// Tree validity: one root per cluster, parent edges stay inside the
	// cluster and decrease depth by one, depth below the stretch bound.
	for cid, ms := range members {
		layer := layerOf[cid]
		radius := cv.Layers[layer].Radius
		roots := 0
		for v, m := range ms {
			if m.Parent < 0 {
				roots++
				if m.Depth != 0 {
					t.Fatalf("cluster %d root %d depth %d", cid, v, m.Depth)
				}
				continue
			}
			p := g.Adj(v)[m.Parent].To
			pm, ok := ms[p]
			if !ok {
				t.Fatalf("cluster %d: node %d's tree parent %d not a member", cid, v, p)
			}
			if pm.Depth != m.Depth-1 {
				t.Fatalf("cluster %d: node %d depth %d, parent depth %d", cid, v, m.Depth, pm.Depth)
			}
			if m.Depth > Stretch(n)*radius {
				t.Fatalf("cluster %d: depth %d exceeds stretch bound %d", cid, m.Depth, Stretch(n)*radius)
			}
		}
		if roots != 1 {
			t.Fatalf("cluster %d has %d roots", cid, roots)
		}
	}

	// Cover property per layer: every participant's radius-ball is inside
	// one cluster of that layer.
	for layer, meta := range cv.Layers {
		for v := 0; v < n; v++ {
			if !inSet(v) {
				continue
			}
			dist := metricDist(g, graph.NodeID(v), participants, w)
			ball := []graph.NodeID{}
			for u := 0; u < n; u++ {
				if inSet(u) && dist[u] >= 0 && dist[u] <= meta.Radius && dist[u] < graph.Inf {
					ball = append(ball, graph.NodeID(u))
				}
			}
			found := false
			for _, m := range cv.Node[v] {
				if m.Layer != layer {
					continue
				}
				all := true
				for _, u := range ball {
					if _, ok := members[m.Cluster][u]; !ok {
						all = false
						break
					}
				}
				if all {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("layer %d: node %d's ball (%d nodes) not covered", layer, v, len(ball))
			}
		}
	}

	// Parent containment (Definition 3.4): parent(C) contains C and its
	// B^(j+1)/2-neighborhood.
	top := len(cv.Layers) - 1
	for cid, ms := range members {
		layer := layerOf[cid]
		if layer == top {
			if parentOf[cid] != -1 {
				t.Fatalf("top cluster %d has parent %d", cid, parentOf[cid])
			}
			continue
		}
		pc := parentOf[cid]
		if pc < 0 {
			t.Fatalf("cluster %d (layer %d) lacks a parent", cid, layer)
		}
		half := cv.Layers[layer+1].Radius / 2
		for v := range ms {
			dist := metricDist(g, v, participants, w)
			for u := 0; u < n; u++ {
				if inSet(u) && dist[u] >= 0 && dist[u] <= half && dist[u] < graph.Inf {
					if _, ok := members[pc][graph.NodeID(u)]; !ok {
						t.Fatalf("cluster %d's parent %d misses node %d at distance %d from member %d",
							cid, pc, u, dist[u], v)
					}
				}
			}
		}
	}
}

func TestCoverPath(t *testing.T) {
	g := graph.Path(20, graph.UnitWeights)
	cv, err := Build(g, nil, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	verifyCover(t, g, cv, nil, nil)
}

func TestCoverGrid(t *testing.T) {
	g := graph.Grid2D(6, 6, graph.UnitWeights)
	cv, err := Build(g, nil, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	verifyCover(t, g, cv, nil, nil)
}

func TestCoverRandom(t *testing.T) {
	g := graph.RandomConnected(40, 40, graph.UnitWeights, 3)
	cv, err := Build(g, nil, nil, 12)
	if err != nil {
		t.Fatal(err)
	}
	verifyCover(t, g, cv, nil, nil)
}

func TestCoverClusters(t *testing.T) {
	g := graph.Clusters(4, 8, 5, graph.UnitWeights, 9)
	cv, err := Build(g, nil, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	verifyCover(t, g, cv, nil, nil)
}

func TestCoverWeightedMetric(t *testing.T) {
	g := graph.RandomConnected(25, 20, graph.UniformWeights(4, 7), 7)
	w := func(u graph.NodeID, i int) int64 { return g.Adj(u)[i].W }
	cv, err := Build(g, nil, w, 15)
	if err != nil {
		t.Fatal(err)
	}
	verifyCover(t, g, cv, nil, w)
}

func TestCoverParticipantsMask(t *testing.T) {
	g := graph.Path(16, graph.UnitWeights)
	participants := make([]bool, 16)
	for v := 0; v < 8; v++ {
		participants[v] = true
	}
	cv, err := Build(g, participants, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := 8; v < 16; v++ {
		if len(cv.Node[v]) != 0 {
			t.Fatalf("non-participant %d has memberships", v)
		}
	}
	verifyCover(t, g, cv, participants, nil)
}

func TestCoverOverlapModest(t *testing.T) {
	g := graph.RandomConnected(80, 120, graph.UnitWeights, 11)
	cv, err := Build(g, nil, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Per-node overlap across all layers stays O(log n * layers).
	budget := int(Stretch(g.N())) * len(cv.Layers) * 2
	if ov := cv.MaxOverlap(); ov > budget {
		t.Fatalf("overlap %d exceeds %d", ov, budget)
	}
	if cv.MaxEdgeTreeOverlap(g) > budget {
		t.Fatalf("edge-tree overlap %d exceeds %d", cv.MaxEdgeTreeOverlap(g), budget)
	}
}

func TestCoverTopLayerRadius(t *testing.T) {
	g := graph.Path(10, graph.UnitWeights)
	cv, err := Build(g, nil, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	topR := cv.Layers[len(cv.Layers)-1].Radius
	if topR < 2*7 {
		t.Fatalf("top radius %d < 2*maxDist", topR)
	}
}

func TestCoverBadMaxDist(t *testing.T) {
	if _, err := Build(graph.Path(3, graph.UnitWeights), nil, nil, 0); err == nil {
		t.Fatal("want error for maxDist < 1")
	}
}
