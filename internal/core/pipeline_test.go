package core

import (
	"strings"
	"testing"

	"dsssp/internal/graph"
	"dsssp/internal/simnet"
)

// checkLedgerConservation asserts the span ledger partitions the run's
// metrics exactly: per-phase rounds/messages/awake sum to the totals and
// the bit maxima agree — the invariant the BENCH `phases` breakdown rests
// on.
func checkLedgerConservation(t *testing.T, met simnet.Metrics) {
	t.Helper()
	if len(met.Spans) == 0 {
		t.Fatal("pipeline recorded no spans")
	}
	var rounds, msgs, awake, bits int64
	for _, s := range met.Spans {
		if _, known := PhaseByKey(s.Name); !known {
			t.Errorf("span %q is not a registered pipeline phase", s.Name)
		}
		rounds += s.Rounds
		msgs += s.Messages
		awake += s.AwakeRounds
		if s.MaxMessageBits > bits {
			bits = s.MaxMessageBits
		}
	}
	if rounds != met.Rounds {
		t.Errorf("phase rounds sum %d != Rounds %d", rounds, met.Rounds)
	}
	if msgs != met.Messages {
		t.Errorf("phase messages sum %d != Messages %d", msgs, met.Messages)
	}
	if awake != met.TotalAwake {
		t.Errorf("phase awake sum %d != TotalAwake %d", awake, met.TotalAwake)
	}
	if bits != met.MaxMessageBits {
		t.Errorf("phase bits max %d != MaxMessageBits %d", bits, met.MaxMessageBits)
	}
}

// TestPipelinePhasesRecorded: both recursions report every counter through
// the phase ledger, with the model-sensitive cut stage named per variant.
func TestPipelinePhasesRecorded(t *testing.T) {
	g := graph.RandomConnected(24, 24, graph.UniformWeights(8, 3), 3)
	sources := map[graph.NodeID]int64{0: 0, 12: 2}

	_, _, metC, err := RunCSSP(g, sources, Options{RecordPhases: true})
	if err != nil {
		t.Fatal(err)
	}
	checkLedgerConservation(t, metC)
	keysC := spanKeys(metC.Spans)
	for _, want := range []string{PhaseParticipate.Key, PhaseDecompose.Key, PhaseCutter.Key, PhaseBarrier.Key, PhaseMerge.Key, PhaseBase.Key} {
		if !keysC[want] {
			t.Errorf("congest run missing phase %q (got %v)", want, keysC)
		}
	}
	if keysC[PhaseBFSLayers.Key] {
		t.Error("congest run reported the energy cut stage")
	}

	_, _, metE, err := RunEnergyCSSP(g, sources, Options{RecordPhases: true})
	if err != nil {
		t.Fatal(err)
	}
	checkLedgerConservation(t, metE)
	keysE := spanKeys(metE.Spans)
	if !keysE[PhaseBFSLayers.Key] {
		t.Errorf("energy run missing phase %q (got %v)", PhaseBFSLayers.Key, keysE)
	}
	if keysE[PhaseCutter.Key] {
		t.Error("energy run reported the congest cut stage")
	}
}

func spanKeys(spans []simnet.SpanMetrics) map[string]bool {
	keys := make(map[string]bool)
	for _, s := range spans {
		keys[s.Name] = true
	}
	return keys
}

// TestPipelineStrictBitsInLedger: with strict CONGEST sizing on, the phase
// ledger carries per-phase bit maxima whose max is the run's.
func TestPipelineStrictBitsInLedger(t *testing.T) {
	g := graph.RandomConnected(16, 16, graph.UniformWeights(8, 7), 7)
	_, _, met, err := RunSSSP(g, 0, Options{StrictCongest: true, RecordPhases: true})
	if err != nil {
		t.Fatal(err)
	}
	checkLedgerConservation(t, met)
	if met.MaxMessageBits == 0 {
		t.Fatal("strict run measured no message bits")
	}
}

// TestPhaseRegistry: the phase descriptors renderers rely on.
func TestPhaseRegistry(t *testing.T) {
	if PhaseRun.Key != simnet.RootSpanName {
		t.Fatalf("PhaseRun.Key = %q must match simnet.RootSpanName %q", PhaseRun.Key, simnet.RootSpanName)
	}
	seen := make(map[string]bool)
	for i, p := range PipelinePhases() {
		if p.Key == "" || p.Title == "" || p.Ref == "" || p.Envelope == "" {
			t.Errorf("phase %d incompletely described: %+v", i, p)
		}
		if seen[p.Key] {
			t.Errorf("duplicate phase key %q", p.Key)
		}
		seen[p.Key] = true
		if got, ok := PhaseByKey(p.Key); !ok || got != p {
			t.Errorf("PhaseByKey(%q) = %+v, %v", p.Key, got, ok)
		}
		if PhaseRank(p.Key) != i {
			t.Errorf("PhaseRank(%q) = %d, want %d", p.Key, PhaseRank(p.Key), i)
		}
	}
	if _, ok := PhaseByKey("no-such-phase"); ok {
		t.Error("PhaseByKey accepted an unknown key")
	}
	if PhaseRank("no-such-phase") != len(PipelinePhases()) {
		t.Error("unknown keys must rank last")
	}
}

// TestNegativeOffsetErrorDeterministic: source validation iterates the
// sorted source set, so with several offending sources the error always
// names the smallest node ID — map-order nondeterminism in error text (and
// in anything seeded per source) is exactly what sortedSources removes.
func TestNegativeOffsetErrorDeterministic(t *testing.T) {
	g := graph.Path(12, graph.UnitWeights)
	sources := map[graph.NodeID]int64{9: -1, 2: -7, 5: -3}
	for i := 0; i < 20; i++ {
		for name, run := range map[string]func() error{
			"congest": func() error { _, _, _, err := RunCSSP(g, sources, Options{}); return err },
			"energy":  func() error { _, _, _, err := RunEnergyCSSP(g, sources, Options{}); return err },
		} {
			err := run()
			if err == nil || !strings.Contains(err.Error(), "offset -7 at source 2") {
				t.Fatalf("%s: err = %v, want the smallest offending source (2)", name, err)
			}
		}
	}
}

// TestPipelineMetricsUnchangedAcrossVariants: the two variants must keep
// reporting through identical pipelines — same phase keys at the cut stage
// aside, and byte-identical distances.
func TestPipelineVariantsAgree(t *testing.T) {
	g := graph.Clusters(3, 5, 4, graph.UniformWeights(5, 9), 9)
	sources := map[graph.NodeID]int64{1: 0, 8: 3}
	dc, _, _, err := RunCSSP(g, sources, Options{})
	if err != nil {
		t.Fatal(err)
	}
	de, _, _, err := RunEnergyCSSP(g, sources, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range dc {
		if dc[v] != de[v] {
			t.Fatalf("node %d: congest %d vs energy %d", v, dc[v], de[v])
		}
	}
}
