// Energy (sleeping-model) variant of the CSSP recursion — Theorem 3.15 and
// the headline Theorem 1.1: exact SSSP with Õ(n) time and polylogarithmic
// energy per node. The recursion skeleton is identical to the CONGEST
// variant (core.go); the model-sensitive pieces are swapped:
//
//   - the approximate cutter runs as a thresholded sleeping-model BFS over
//     the rounded-weight metric (package energybfs), on a layered sparse
//     cover built for this subproblem's participant component (the paper
//     rebuilds covers inside each recursion call via Theorem 3.14; here
//     the covers come from the decomp builder as an installed oracle —
//     the documented substitution in DESIGN.md — while every message of
//     the cover *usage* stays in-model);
//   - the component barriers use count-based periodic tree sweeps
//     (Section 3.1.1) so waiting costs O(1) awake rounds per window;
//   - the spanning forest (package forest) is already model-agnostic
//     (Theorem 3.1).
package core

import (
	"fmt"
	"sync"

	"dsssp/internal/bfs"
	"dsssp/internal/decomp"
	"dsssp/internal/energybfs"
	"dsssp/internal/forest"
	"dsssp/internal/graph"
	"dsssp/internal/proto"
	"dsssp/internal/simnet"
)

// coverProvider hands each recursion call the layered sparse cover for its
// component, built lazily over the registered participant set. It stands in
// for the in-model construction of Theorem 3.12/3.14 (see DESIGN.md).
type coverProvider struct {
	g *graph.Graph

	mu         sync.Mutex
	registered map[uint64]map[graph.NodeID]bool
	covers     map[coverKey]*decomp.Cover
}

type coverKey struct {
	path uint64
	comp graph.NodeID
}

func newCoverProvider(g *graph.Graph) *coverProvider {
	return &coverProvider{
		g:          g,
		registered: make(map[uint64]map[graph.NodeID]bool),
		covers:     make(map[coverKey]*decomp.Cover),
	}
}

// register declares that v participates in the call at the given path.
func (cp *coverProvider) register(path uint64, v graph.NodeID) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.registered[path] == nil {
		cp.registered[path] = make(map[graph.NodeID]bool)
	}
	cp.registered[path][v] = true
}

// get returns the cover of the component (identified by its forest leader)
// containing member, under the given metric, covering maxDist. All members
// of one component receive the identical cover.
func (cp *coverProvider) get(path uint64, comp, member graph.NodeID, weight decomp.WeightFn, maxDist int64) *decomp.Cover {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	key := coverKey{path, comp}
	if cv, ok := cp.covers[key]; ok {
		return cv
	}
	reg := cp.registered[path]
	// Component of member within the registered participant subgraph.
	participants := make([]bool, cp.g.N())
	stack := []graph.NodeID{member}
	participants[member] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range cp.g.Adj(u) {
			if reg[h.To] && !participants[h.To] {
				participants[h.To] = true
				stack = append(stack, h.To)
			}
		}
	}
	cv, err := decomp.Build(cp.g, participants, weight, maxDist)
	if err != nil {
		panic(fmt.Sprintf("core: cover build failed for path %d: %v", path, err))
	}
	cp.covers[key] = cv
	return cv
}

// cutterTag gives each call's energy cutter a disjoint high tag range
// (cluster sweep tags fan out below it).
func cutterTag(path uint64) uint64 { return (1 << 62) + path*(1<<21) }

// energyBarrier is the sleeping-model component barrier: windows of
// count-based tree sweeps anchored at a common round; the root announces a
// common start once the whole component (size known) has checked in.
// Returns that start round, with the node advanced to it.
func energyBarrier(mb *proto.Mailbox, t proto.Tree, tag uint64, size, anchor int64) int64 {
	if !t.InTree {
		return 0
	}
	// Window period: long enough that waiting for a sibling's recursion
	// costs few wakeups (the dominant per-call cost is the forest budget),
	// yet one sweep cycle (2*size+6 rounds) always fits.
	p := 2*size + 6
	if alt := forest.Duration(size) / 4; alt > p {
		p = alt
	}
	// Messages are stamped with the window index: a node inside its child
	// recursion can coincidentally be awake when a barrier message passes
	// by, buffering it; un-stamped stale messages would corrupt later
	// windows (counts double, broadcasts report old "keep waiting"s).
	type stamped struct {
		K int64
		V int64
	}
	for k := (mb.Round() - anchor) / p; ; k++ {
		w := anchor + k*p
		if w <= mb.Round() {
			continue
		}
		// Count sweep up (tolerant: absent subtrees contribute 0).
		sendRound := w + size - t.Depth
		count := int64(1)
		if len(t.Children) > 0 {
			mb.AdvanceTo(sendRound - 1)
			mb.SleepUntil(sendRound)
		} else {
			mb.AdvanceTo(sendRound)
		}
		for _, m := range mb.Take(tag) {
			if sm := m.Body.(stamped); sm.K == k {
				count += sm.V
			}
		}
		if t.Parent >= 0 {
			mb.Send(t.Parent, tag, stamped{k, count})
		}
		// Tolerant broadcast sweep down.
		start := int64(-1)
		dw := w + size + 2
		if t.Parent < 0 {
			if count == size {
				start = w + 2*p
			}
			mb.AdvanceTo(dw)
		} else {
			recv := dw + t.Depth - 1
			mb.AdvanceTo(recv)
			mb.SleepUntil(recv + 1)
			for _, m := range mb.Take(tag + 1) {
				if sm := m.Body.(stamped); sm.K == k {
					start = sm.V
				}
			}
		}
		for _, ch := range t.Children {
			mb.Send(ch, tag+1, stamped{k, start})
		}
		if start >= 0 {
			mb.AdvanceTo(start)
			return start
		}
	}
}

// recEnergy is the sleeping-model recursion; structure mirrors cssp.rec.
func (s *cssp) recEnergy(p callParams) int64 {
	mb := s.mb
	c := mb.C
	s.subproblems++
	entry := mb.Round()

	// (1) Participation exchange (all participants of one parent component
	// are awake at the common entry round).
	s.provider.register(p.path, c.ID())
	for i := 0; i < c.Degree(); i++ {
		if p.eligible == nil || p.eligible[i] {
			mb.Send(i, s.tag(p.path, offExch), struct{}{})
		}
	}
	mb.SleepUntil(entry + 1)
	elig := make([]bool, c.Degree())
	for _, m := range mb.Take(s.tag(p.path, offExch)) {
		if p.eligible == nil || p.eligible[m.NbIndex] {
			elig[m.NbIndex] = true
		}
	}
	eligFn := func(i int) bool { return elig[i] }

	// (2) Base case.
	if p.d == 1 {
		d := graph.Inf
		if p.offset >= 0 && p.offset <= 1 {
			d = p.offset
		}
		if p.offset == 0 {
			for i := 0; i < c.Degree(); i++ {
				if elig[i] && c.Weight(i) == 1 {
					mb.Send(i, s.tag(p.path, offBase), struct{}{})
				}
			}
		}
		mb.SleepUntil(entry + 2)
		if len(mb.Take(s.tag(p.path, offBase))) > 0 && d > 1 {
			d = 1
		}
		return d
	}

	// (3) Spanning forest (Theorem 3.1: already low-energy).
	fr := forest.Build(mb, forest.Params{
		Tag:        s.tag(p.path, offForest),
		StartRound: entry + 1,
		SizeBound:  p.sizeBound,
		Eligible:   eligFn,
	})

	// (4) Approximate cutter via thresholded energy BFS over rounded
	// weights (Lemma 2.1 + Theorem 3.14).
	rho := bfs.Rho(p.d, fr.Size, s.epsNum, s.epsDen)
	threshold := 2*p.d/rho + fr.Size + 1
	weightR := func(i int) int64 { return bfs.RoundWeight(c.Weight(i), rho) }
	cover := s.provider.get(p.path, fr.CompID, c.ID(),
		func(u graph.NodeID, i int) int64 { return bfs.RoundWeight(s.provider.g.Adj(u)[i].W, rho) },
		threshold)
	offR := energybfs.NotSource
	if p.offset == 0 {
		offR = 0
	} else if p.offset > 0 {
		offR = bfs.RoundWeight(p.offset, rho)
	}
	dr := energybfs.Run(mb, energybfs.Params{
		Tag:          cutterTag(p.path),
		StartRound:   entry + 1 + forest.Duration(p.sizeBound),
		Cover:        cover,
		Threshold:    threshold,
		SourceOffset: offR,
		Eligible:     eligFn,
		WeightOf:     weightR,
	})
	approx := graph.Inf
	if dr != graph.Inf {
		approx = dr * rho
	}
	inV1 := approx != graph.Inf && approx*s.epsDen <= p.d*(s.epsDen+s.epsNum)
	d1h := p.d / 2

	// (5) First recursion.
	d1 := graph.Inf
	if inV1 {
		d1 = s.recEnergy(callParams{
			path: 2 * p.path, d: d1h, offset: p.offset,
			sizeBound: fr.Size, eligible: elig,
		})
	}
	energyBarrier(mb, fr.Tree, s.tag(p.path, offBarrier1), fr.Size, entry)

	// (6) Cut offsets.
	inV2 := d1 != graph.Inf
	b := mb.Round()
	if inV2 {
		for i := 0; i < c.Degree(); i++ {
			if elig[i] {
				mb.Send(i, s.tag(p.path, offV2Exch), d1)
			}
		}
	}
	mb.SleepUntil(b + 1)
	offset2 := bfs.NotSource
	v2Msgs := mb.Take(s.tag(p.path, offV2Exch))
	if inV1 && !inV2 {
		for _, m := range v2Msgs {
			cand := m.Body.(int64) + c.Weight(m.NbIndex) - d1h
			if offset2 == bfs.NotSource || cand < offset2 {
				offset2 = cand
			}
		}
		if p.offset > d1h {
			if cand := p.offset - d1h; offset2 == bfs.NotSource || cand < offset2 {
				offset2 = cand
			}
		}
	}

	// (7) Second recursion.
	d2 := graph.Inf
	if inV1 && !inV2 {
		d2 = s.recEnergy(callParams{
			path: 2*p.path + 1, d: d1h, offset: offset2,
			sizeBound: fr.Size, eligible: elig,
		})
	}
	energyBarrier(mb, fr.Tree, s.tag(p.path, offBarrier2), fr.Size, entry)

	// (8) Combine.
	switch {
	case inV2:
		return d1
	case inV1 && d2 != graph.Inf:
		return d1h + d2
	default:
		return graph.Inf
	}
}

// RunEnergyCSSP computes exact closest-source distances in the sleeping
// model (Theorem 3.15): Õ(n) rounds and polylogarithmic awake rounds per
// node (energy). Zero weights are handled by the same scaling as RunCSSP.
func RunEnergyCSSP(g *graph.Graph, sources map[graph.NodeID]int64, opts Options) ([]int64, Stats, simnet.Metrics, error) {
	epsNum, epsDen := opts.eps()
	if epsNum <= 0 || epsDen <= 0 || epsNum >= epsDen {
		return nil, Stats{}, simnet.Metrics{}, fmt.Errorf("core: ε must be in (0,1), got %d/%d", epsNum, epsDen)
	}
	if opts.StrictCongest {
		return nil, Stats{}, simnet.Metrics{}, fmt.Errorf("core: StrictCongest applies to the CONGEST model, not the sleeping model")
	}
	for s, o := range sources {
		if o < 0 {
			return nil, Stats{}, simnet.Metrics{}, fmt.Errorf("core: negative offset %d at source %d", o, s)
		}
	}
	scale := int64(1)
	run := g
	for _, e := range g.Edges() {
		if e.W == 0 {
			scale = int64(g.N()) + 1
			run = g.Reweight(func(_ graph.EdgeID, w int64) int64 {
				if w == 0 {
					return 1
				}
				return w * scale
			})
			break
		}
	}
	var maxOff int64
	for _, o := range sources {
		if o*scale > maxOff {
			maxOff = o * scale
		}
	}
	d0, levels := startThreshold(run, maxOff)

	provider := newCoverProvider(run)
	eng := simnet.New(run, simnet.Config{Model: simnet.Sleeping, MaxRounds: opts.MaxRounds})
	res, err := eng.Run(func(c *simnet.Ctx) {
		mb := proto.NewMailbox(c)
		st := &cssp{mb: mb, epsNum: epsNum, epsDen: epsDen, provider: provider}
		off := bfs.NotSource
		if o, ok := sources[c.ID()]; ok {
			off = o * scale
		}
		d := st.recEnergy(callParams{path: 1, d: d0, offset: off, sizeBound: int64(c.N())})
		c.SetOutput(output{Dist: d, Subproblems: st.subproblems})
	})
	if err != nil {
		return nil, Stats{}, simnet.Metrics{}, err
	}
	dists := make([]int64, g.N())
	stats := Stats{Subproblems: make([]int, g.N()), Levels: levels}
	for v, o := range res.Outputs {
		out := o.(output)
		if out.Dist == graph.Inf {
			dists[v] = graph.Inf
		} else {
			dists[v] = out.Dist / scale
		}
		stats.Subproblems[v] = out.Subproblems
	}
	return dists, stats, res.Metrics, nil
}

// RunEnergySSSP is the single-source specialization of Theorem 1.1.
func RunEnergySSSP(g *graph.Graph, source graph.NodeID, opts Options) ([]int64, Stats, simnet.Metrics, error) {
	return RunEnergyCSSP(g, map[graph.NodeID]int64{source: 0}, opts)
}
