// Energy (sleeping-model) variant of the CSSP phase pipeline — Theorem 3.15
// and the headline Theorem 1.1: exact SSSP with Õ(n) time and
// polylogarithmic energy per node. The pipeline skeleton is shared with the
// CONGEST variant (pipeline.go); the model-sensitive stages are swapped via
// energyVariant:
//
//   - the approximate cutter runs as a thresholded sleeping-model BFS over
//     the rounded-weight metric (package energybfs), on a layered sparse
//     cover built for this subproblem's participant component (the paper
//     rebuilds covers inside each recursion call via Theorem 3.14; here
//     the covers come from the decomp builder as an installed oracle —
//     the documented substitution in DESIGN.md — while every message of
//     the cover *usage* stays in-model);
//   - the component barriers use count-based periodic tree sweeps
//     (Section 3.1.1) so waiting costs O(1) awake rounds per window;
//   - the spanning forest (package forest) is already model-agnostic
//     (Theorem 3.1).
package core

import (
	"fmt"
	"sync"

	"dsssp/internal/bfs"
	"dsssp/internal/decomp"
	"dsssp/internal/energybfs"
	"dsssp/internal/forest"
	"dsssp/internal/graph"
	"dsssp/internal/proto"
	"dsssp/internal/simnet"
)

// coverProvider hands each recursion call the layered sparse cover for its
// component, built lazily over the registered participant set. It stands in
// for the in-model construction of Theorem 3.12/3.14 (see DESIGN.md).
type coverProvider struct {
	g *graph.Graph

	mu         sync.Mutex
	registered map[uint64]map[graph.NodeID]bool
	covers     map[coverKey]*decomp.Cover
}

type coverKey struct {
	path uint64
	comp graph.NodeID
}

func newCoverProvider(g *graph.Graph) *coverProvider {
	return &coverProvider{
		g:          g,
		registered: make(map[uint64]map[graph.NodeID]bool),
		covers:     make(map[coverKey]*decomp.Cover),
	}
}

// register declares that v participates in the call at the given path.
func (cp *coverProvider) register(path uint64, v graph.NodeID) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.registered[path] == nil {
		cp.registered[path] = make(map[graph.NodeID]bool)
	}
	cp.registered[path][v] = true
}

// get returns the cover of the component (identified by its forest leader)
// containing member, under the given metric, covering maxDist. All members
// of one component receive the identical cover.
func (cp *coverProvider) get(path uint64, comp, member graph.NodeID, weight decomp.WeightFn, maxDist int64) *decomp.Cover {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	key := coverKey{path, comp}
	if cv, ok := cp.covers[key]; ok {
		return cv
	}
	reg := cp.registered[path]
	// Component of member within the registered participant subgraph.
	participants := make([]bool, cp.g.N())
	stack := []graph.NodeID{member}
	participants[member] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range cp.g.Adj(u) {
			if reg[h.To] && !participants[h.To] {
				participants[h.To] = true
				stack = append(stack, h.To)
			}
		}
	}
	cv, err := decomp.Build(cp.g, participants, weight, maxDist)
	if err != nil {
		panic(fmt.Sprintf("core: cover build failed for path %d: %v", path, err))
	}
	cp.covers[key] = cv
	return cv
}

// cutterTag gives each call's energy cutter a disjoint high tag range
// (cluster sweep tags fan out below it).
func cutterTag(path uint64) uint64 { return (1 << 62) + path*(1<<21) }

// energyBarrier is the sleeping-model component barrier: windows of
// count-based tree sweeps anchored at a common round; the root announces a
// common start once the whole component (size known) has checked in.
// Returns that start round, with the node advanced to it.
func energyBarrier(mb *proto.Mailbox, t proto.Tree, tag uint64, size, anchor int64) int64 {
	if !t.InTree {
		return 0
	}
	// Window period: long enough that waiting for a sibling's recursion
	// costs few wakeups (the dominant per-call cost is the forest budget),
	// yet one sweep cycle (2*size+6 rounds) always fits.
	p := 2*size + 6
	if alt := forest.Duration(size) / 4; alt > p {
		p = alt
	}
	// Messages are stamped with the window index: a node inside its child
	// recursion can coincidentally be awake when a barrier message passes
	// by, buffering it; un-stamped stale messages would corrupt later
	// windows (counts double, broadcasts report old "keep waiting"s).
	type stamped struct {
		K int64
		V int64
	}
	for k := (mb.Round() - anchor) / p; ; k++ {
		w := anchor + k*p
		if w <= mb.Round() {
			continue
		}
		// Count sweep up (tolerant: absent subtrees contribute 0).
		sendRound := w + size - t.Depth
		count := int64(1)
		if len(t.Children) > 0 {
			mb.AdvanceTo(sendRound - 1)
			mb.SleepUntil(sendRound)
		} else {
			mb.AdvanceTo(sendRound)
		}
		for _, m := range mb.Take(tag) {
			if sm := m.Body.(stamped); sm.K == k {
				count += sm.V
			}
		}
		if t.Parent >= 0 {
			mb.Send(t.Parent, tag, stamped{k, count})
		}
		// Tolerant broadcast sweep down.
		start := int64(-1)
		dw := w + size + 2
		if t.Parent < 0 {
			if count == size {
				start = w + 2*p
			}
			mb.AdvanceTo(dw)
		} else {
			recv := dw + t.Depth - 1
			mb.AdvanceTo(recv)
			mb.SleepUntil(recv + 1)
			for _, m := range mb.Take(tag + 1) {
				if sm := m.Body.(stamped); sm.K == k {
					start = sm.V
				}
			}
		}
		for _, ch := range t.Children {
			mb.Send(ch, tag+1, stamped{k, start})
		}
		if start >= 0 {
			mb.AdvanceTo(start)
			return start
		}
	}
}

// energyVariant instantiates the pipeline's model-sensitive stages for the
// sleeping model (Theorem 3.15): the bounded-hop BFS-layer cutter over
// rounded weights and the count-based periodic barrier.
type energyVariant struct{}

func (energyVariant) cutterPhase() Phase { return PhaseBFSLayers }

func (energyVariant) register(s *cssp, path uint64, v graph.NodeID) {
	s.provider.register(path, v)
}

func (energyVariant) cut(s *cssp, p callParams, entry int64, fr forest.Result, eligFn func(int) bool) int64 {
	c := s.mb.C
	rho := bfs.Rho(p.d, fr.Size, s.epsNum, s.epsDen)
	threshold := 2*p.d/rho + fr.Size + 1
	weightR := func(i int) int64 { return bfs.RoundWeight(c.Weight(i), rho) }
	cover := s.provider.get(p.path, fr.CompID, c.ID(),
		func(u graph.NodeID, i int) int64 { return bfs.RoundWeight(s.provider.g.Adj(u)[i].W, rho) },
		threshold)
	offR := energybfs.NotSource
	if p.offset == 0 {
		offR = 0
	} else if p.offset > 0 {
		offR = bfs.RoundWeight(p.offset, rho)
	}
	dr := energybfs.Run(s.mb, energybfs.Params{
		Tag:          cutterTag(p.path),
		StartRound:   entry + 1 + forest.Duration(p.sizeBound),
		Cover:        cover,
		Threshold:    threshold,
		SourceOffset: offR,
		Eligible:     eligFn,
		WeightOf:     weightR,
	})
	if dr == graph.Inf {
		return graph.Inf
	}
	return dr * rho
}

func (energyVariant) barrier(s *cssp, fr forest.Result, tag uint64, entry int64) {
	energyBarrier(s.mb, fr.Tree, tag, fr.Size, entry)
}

func (energyVariant) checkOffsets() bool { return false }

// RunEnergyCSSP computes exact closest-source distances in the sleeping
// model (Theorem 3.15): Õ(n) rounds and polylogarithmic awake rounds per
// node (energy). Zero weights are handled by the same scaling as RunCSSP.
func RunEnergyCSSP(g *graph.Graph, sources map[graph.NodeID]int64, opts Options) ([]int64, Stats, simnet.Metrics, error) {
	epsNum, epsDen, err := opts.validEps()
	if err != nil {
		return nil, Stats{}, simnet.Metrics{}, err
	}
	if opts.StrictCongest {
		return nil, Stats{}, simnet.Metrics{}, fmt.Errorf("core: StrictCongest applies to the CONGEST model, not the sleeping model")
	}
	pr, err := prepareProblem(g, sortedSources(sources))
	if err != nil {
		return nil, Stats{}, simnet.Metrics{}, err
	}

	provider := newCoverProvider(pr.run)
	eng := simnet.New(pr.run, simnet.Config{Model: simnet.Sleeping, MaxRounds: opts.MaxRounds, RecordSpans: opts.RecordPhases, Workers: opts.Workers})
	res, err := eng.Run(func(c *simnet.Ctx) {
		mb := proto.NewMailbox(c)
		st := &cssp{mb: mb, epsNum: epsNum, epsDen: epsDen, v: energyVariant{}, provider: provider}
		off := bfs.NotSource
		if o, ok := sources[c.ID()]; ok {
			off = o * pr.scale
		}
		d := st.runCall(callParams{path: 1, d: pr.d0, offset: off, sizeBound: int64(c.N())})
		c.SetOutput(output{Dist: d, Subproblems: st.subproblems})
	})
	if err != nil {
		return nil, Stats{}, simnet.Metrics{}, err
	}
	dists, stats := collectOutputs(g, res, pr.scale, pr.levels)
	return dists, stats, res.Metrics, nil
}

// RunEnergySSSP is the single-source specialization of Theorem 1.1.
func RunEnergySSSP(g *graph.Graph, source graph.NodeID, opts Options) ([]int64, Stats, simnet.Metrics, error) {
	return RunEnergyCSSP(g, map[graph.NodeID]int64{source: 0}, opts)
}
