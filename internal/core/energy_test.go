package core

import (
	"testing"

	"dsssp/internal/graph"
)

func checkEnergyExact(t *testing.T, g *graph.Graph, sources map[graph.NodeID]int64) {
	t.Helper()
	want := graph.MultiSourceDijkstra(g, sources)
	got, _, met, err := RunEnergyCSSP(g, sources, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("node %d: got %d, want %d", v, got[v], want[v])
		}
	}
	// The headline Theorem 1.1 shape: awake rounds far below running time.
	if met.MaxAwake*2 > met.Rounds {
		t.Fatalf("energy %d not below half the running time %d", met.MaxAwake, met.Rounds)
	}
}

func TestEnergyCSSPPath(t *testing.T) {
	checkEnergyExact(t, graph.Path(10, graph.UnitWeights), map[graph.NodeID]int64{0: 0})
}

func TestEnergyCSSPWeighted(t *testing.T) {
	checkEnergyExact(t, graph.Path(8, graph.UniformWeights(5, 3)), map[graph.NodeID]int64{0: 0})
}

func TestEnergyCSSPGridMultiSource(t *testing.T) {
	checkEnergyExact(t, graph.Grid2D(4, 4, graph.UniformWeights(3, 1)), map[graph.NodeID]int64{0: 0, 15: 1})
}

func TestEnergyCSSPRandom(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := graph.RandomConnected(14, 8, graph.UniformWeights(4, seed), seed)
		checkEnergyExact(t, g, map[graph.NodeID]int64{0: 0})
	}
}

func TestEnergyCSSPZeroWeights(t *testing.T) {
	checkEnergyExact(t, graph.Path(7, graph.ZeroHeavyWeights(3, 2)), map[graph.NodeID]int64{0: 0})
}

func TestEnergyCSSPDisconnected(t *testing.T) {
	g := graph.Disconnected(2, 6, 1, graph.UnitWeights, 3)
	want := graph.MultiSourceDijkstra(g, map[graph.NodeID]int64{0: 0})
	got, _, _, err := RunEnergyCSSP(g, map[graph.NodeID]int64{0: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("node %d: got %d, want %d", v, got[v], want[v])
		}
	}
}

func TestEnergySSSPMatchesCongestVariant(t *testing.T) {
	g := graph.Cycle(12, graph.UniformWeights(3, 7))
	a, _, _, err := RunSSSP(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, _, err := RunEnergySSSP(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d: congest %d vs energy %d", v, a[v], b[v])
		}
	}
}
