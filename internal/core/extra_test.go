package core

import (
	"testing"

	"dsssp/internal/graph"
)

// The dumbbell stresses the recursion with a long bridge between two dense
// regions — many recursion levels split across the bridge.
func TestCSSPDumbbell(t *testing.T) {
	g := graph.Dumbbell(6, 10, graph.UniformWeights(5, 3))
	checkExact(t, g, map[graph.NodeID]int64{0: 0})
}

// Polynomially large weights exercise the full log(nW) recursion depth.
func TestCSSPPolyWeights(t *testing.T) {
	g := graph.RandomConnected(24, 20, graph.UniformWeights(24*24*24, 5), 5)
	checkExact(t, g, map[graph.NodeID]int64{0: 0})
}

// All nodes as sources: dist must be 0 everywhere.
func TestCSSPAllSources(t *testing.T) {
	g := graph.Grid2D(4, 4, graph.UniformWeights(9, 7))
	sources := make(map[graph.NodeID]int64, g.N())
	for v := 0; v < g.N(); v++ {
		sources[graph.NodeID(v)] = 0
	}
	got, _, _, err := RunCSSP(g, sources, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range got {
		if d != 0 {
			t.Fatalf("node %d: %d, want 0", v, d)
		}
	}
}

// Determinism: two runs produce identical metrics and distances.
func TestCSSPDeterministic(t *testing.T) {
	g := graph.RandomConnected(40, 40, graph.UniformWeights(16, 11), 11)
	d1, _, m1, err := RunSSSP(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d2, _, m2, err := RunSSSP(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range d1 {
		if d1[v] != d2[v] {
			t.Fatalf("node %d distances differ", v)
		}
	}
	if m1.Messages != m2.Messages || m1.Rounds != m2.Rounds {
		t.Fatalf("metrics differ: %s vs %s", m1.String(), m2.String())
	}
}

// The traced variant must agree with the untraced one and actually record.
func TestCSSPTracedConsistent(t *testing.T) {
	g := graph.Cycle(10, graph.UniformWeights(3, 13))
	d1, _, m1, err := RunSSSP(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d2, _, m2, tr, err := RunCSSPTraced(g, map[graph.NodeID]int64{0: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range d1 {
		if d1[v] != d2[v] {
			t.Fatalf("node %d distances differ", v)
		}
	}
	if int64(len(tr)) != m2.Messages || m1.Messages != m2.Messages {
		t.Fatalf("trace %d entries, messages %d/%d", len(tr), m1.Messages, m2.Messages)
	}
}

// Cluster-family graphs: the recursion's component splits follow the
// natural cluster structure.
func TestCSSPClusterFamily(t *testing.T) {
	g := graph.Clusters(4, 7, 5, graph.UniformWeights(6, 17), 17)
	checkExact(t, g, map[graph.NodeID]int64{3: 0, 20: 4})
}

// A two-node graph, the smallest graph with an edge.
func TestCSSPTwoNodes(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 5)
	g.SortAdj()
	checkExact(t, g, map[graph.NodeID]int64{0: 0})
}

// Star graphs: a single hub, depth-1 recursion trees.
func TestCSSPStar(t *testing.T) {
	g := graph.Star(16, graph.UniformWeights(9, 19))
	checkExact(t, g, map[graph.NodeID]int64{5: 0})
}
