package core

import "math/bits"

// Phase describes one stage of the CSSP phase pipeline: the span-ledger key
// it reports under, the paper construct it implements, and the per-level
// round-envelope term the paper charges it with. The pipeline (pipeline.go)
// opens a ledger span around every stage, so BENCH reports can break a
// scenario's rounds down against exactly these terms — the per-phase
// accounting Forster–Nanongkai (arXiv:1711.01364) and Elkin
// (arXiv:1703.01939) use to argue their round bounds.
type Phase struct {
	// Key is the span-ledger / report identifier ("cutter", "barrier", …).
	Key string
	// Title is the human-readable stage name.
	Title string
	// Ref cites the paper construct the stage implements.
	Ref string
	// Envelope is the paper's per-recursion-level round bound for the
	// stage (n̂ = component size, D = the call's threshold).
	Envelope string
}

// The pipeline's phases. PhaseCutter and PhaseBFSLayers are the two
// instantiations of the model-sensitive cut stage: the CONGEST recursion
// runs the fragment cutter, the sleeping-model recursion runs bounded-hop
// BFS layers over the rounded metric.
var (
	// PhaseRun is the span every node starts in; it collects engine rounds
	// spent outside any pipeline stage (startup and teardown residue). Its
	// key must match the engine's implicit root span (simnet.RootSpanName).
	PhaseRun = Phase{
		Key: "run", Title: "Outside the pipeline",
		Ref: "—", Envelope: "O(1)",
	}
	PhaseParticipate = Phase{
		Key: "participate", Title: "Participation exchange",
		Ref: "Sec 2.3 (subproblem entry)", Envelope: "O(1)",
	}
	PhaseBase = Phase{
		Key: "base", Title: "Base case D = 1",
		Ref: "Sec 2.3 step 1", Envelope: "O(1)",
	}
	PhaseDecompose = Phase{
		Key: "decompose", Title: "Spanning-forest decomposition",
		Ref: "Thm 3.1", Envelope: "O(n̂ log n̂)",
	}
	PhaseCutter = Phase{
		Key: "cutter", Title: "Approximate cutter",
		Ref: "Lemma 2.1", Envelope: "O(n̂/ε)",
	}
	PhaseBFSLayers = Phase{
		Key: "bfs-layers", Title: "Bounded-hop BFS layers",
		Ref: "Thm 3.13/3.14 (energy cutter)", Envelope: "O((D/ρ + n̂) polylog)",
	}
	PhaseBarrier = Phase{
		Key: "barrier", Title: "Component barrier",
		Ref: "Sec 2.3 step 4 / Sec 3.1.1", Envelope: "O(n̂)",
	}
	PhaseMerge = Phase{
		Key: "merge", Title: "Cut offsets & merge",
		Ref: "Sec 2.3 steps 5–6", Envelope: "O(1)",
	}
)

// PipelinePhases returns every phase the pipeline can report, in execution
// order — renderers use the order for flamegraph-style tables and the Ref
// column for self-describing reports.
func PipelinePhases() []Phase {
	return []Phase{
		PhaseRun, PhaseParticipate, PhaseBase, PhaseDecompose,
		PhaseCutter, PhaseBFSLayers, PhaseBarrier, PhaseMerge,
	}
}

// PhaseByKey looks a phase up by its ledger key.
func PhaseByKey(key string) (Phase, bool) {
	for _, p := range PipelinePhases() {
		if p.Key == key {
			return p, true
		}
	}
	return Phase{}, false
}

// PhaseRank returns the phase's position in execution order (unknown keys
// sort last) — the deterministic ordering for breakdown tables.
func PhaseRank(key string) int {
	for i, p := range PipelinePhases() {
		if p.Key == key {
			return i
		}
	}
	return len(PipelinePhases())
}

// depthOf recovers the recursion depth from a call's heap path (path 1 is
// the root call at depth 0).
func depthOf(path uint64) int {
	return bits.Len64(path) - 1
}
