// Package core implements the paper's primary contribution: the recursive
// D-thresholded closest-source shortest path (CSSP) algorithm of
// Section 2.3, giving exact SSSP/CSSP in Õ(n) rounds with poly(log n)
// congestion per edge (Theorems 2.6 and 2.7) in the CONGEST model.
//
// The recursion on a subproblem (participants P, source offsets o, bound D):
//
//  1. D == 1: one exchange round resolves distances in {0, 1} (all weights
//     are >= 1; zero weights are removed up front by the Theorem 2.7
//     scaling described at RunCSSP).
//  2. Build a rooted spanning forest of the participant subgraph
//     (package forest) — the per-component coordination structure.
//  3. Run the approximate cutter (Lemma 2.1, package bfs) with W = D and
//     the configured ε; V1 = {v : dist'(v) <= D+εD} over-approximates
//     {v : dist(v) <= D}.
//  4. Recurse on (V1, o, D/2). Each connected component proceeds at its
//     own speed; a convergecast barrier over the component tree
//     re-synchronizes, with the root picking a start round Θ(|C|) ahead
//     (the paper's step 4).
//  5. V2 = nodes that learned dist <= D/2. Boundary nodes outside V2
//     compute offsets simulating the imaginary cut nodes x_{vu}
//     (offset = dist(v) + w(vu) − D/2), merged with any original source
//     offset above D/2, and the second recursion runs on (V1∖V2, X, D/2).
//  6. Results combine: dist = dist1 if in V2, D/2 + dist2 if the second
//     call succeeded, else ∞ for this threshold.
//
// Every subproblem owns a tag block derived from its recursion path, so
// messages from drifted sibling components are buffered, never confused.
package core

import (
	"fmt"
	"math/bits"

	"dsssp/internal/bfs"
	"dsssp/internal/forest"
	"dsssp/internal/graph"
	"dsssp/internal/proto"
	"dsssp/internal/simnet"
)

// Options configures the CSSP run.
type Options struct {
	// EpsNum/EpsDen is the cutter ε in (0,1); 0/0 defaults to 1/2.
	EpsNum, EpsDen int64
	// MaxRounds overrides the engine's safety cap (0 = engine default).
	MaxRounds int64
	// StrictCongest enforces the strict CONGEST bandwidth model: every
	// message is sized (proto.MessageBits) and the run fails loudly if any
	// exceeds the O(log n)-bit budget (proto.BitBudget). Congest model
	// only; metrics then report MaxMessageBits.
	StrictCongest bool
}

func (o Options) eps() (int64, int64) {
	if o.EpsNum == 0 && o.EpsDen == 0 {
		return 1, 2
	}
	return o.EpsNum, o.EpsDen
}

// Stats reports per-node structural measurements of one run.
type Stats struct {
	// Subproblems[v] counts the recursion calls node v participated in
	// (Lemma 2.4 bounds it by O(log D)).
	Subproblems []int
	// Levels is the recursion depth log2(D0).
	Levels int
}

// Output is a node's result.
type output struct {
	Dist        int64
	Subproblems int
}

// Tag block layout: each recursion call owns a 32-tag block indexed by its
// path in the binary recursion tree.
const (
	tagBlock    = 64
	offExch     = 0
	offBase     = 1
	offForest   = 2 // ..14 used by package forest
	offCutter   = 16
	offBarrier1 = 17 // +18
	offV2Exch   = 19
	offBarrier2 = 20 // +21
)

type cssp struct {
	mb             *proto.Mailbox
	epsNum, epsDen int64
	subproblems    int
	// provider supplies per-call covers in the energy variant (energy.go).
	provider *coverProvider
}

// startThreshold returns the initial power-of-two threshold D0 covering
// every finite distance, and the recursion depth.
func startThreshold(g *graph.Graph, maxOff int64) (int64, int) {
	bound := int64(g.N())*g.MaxWeight() + maxOff + 1
	levels := bits.Len64(uint64(bound))
	return int64(1) << levels, levels
}

type callParams struct {
	path      uint64 // 1-based heap index of this call in the recursion tree
	d         int64  // threshold (power of two)
	offset    int64  // source offset or bfs.NotSource
	sizeBound int64  // upper bound on this call's component sizes
	eligible  []bool // edges to co-participants of the parent call (nil=all)
}

func (s *cssp) tag(path uint64, off int) uint64 { return path*tagBlock + uint64(off) }

// rec executes one thresholded CSSP subproblem; only participants call it.
// All participants within one parent component enter at a common round.
// Returns dist(S,·) if <= d, else graph.Inf.
func (s *cssp) rec(p callParams) int64 {
	mb := s.mb
	c := mb.C
	s.subproblems++
	entry := mb.Round()

	// (1) Participation exchange: learn which neighbors are in this call.
	for i := 0; i < c.Degree(); i++ {
		if p.eligible == nil || p.eligible[i] {
			mb.Send(i, s.tag(p.path, offExch), struct{}{})
		}
	}
	mb.SleepUntil(entry + 1)
	elig := make([]bool, c.Degree())
	for _, m := range mb.Take(s.tag(p.path, offExch)) {
		if p.eligible == nil || p.eligible[m.NbIndex] {
			elig[m.NbIndex] = true
		}
	}
	eligFn := func(i int) bool { return elig[i] }

	// (2) Base case: distances in {0,1}.
	if p.d == 1 {
		d := graph.Inf
		if p.offset >= 0 && p.offset <= 1 {
			d = p.offset
		}
		if p.offset == 0 {
			for i := 0; i < c.Degree(); i++ {
				if elig[i] && c.Weight(i) == 1 {
					mb.Send(i, s.tag(p.path, offBase), struct{}{})
				}
			}
		}
		mb.SleepUntil(entry + 2)
		if len(mb.Take(s.tag(p.path, offBase))) > 0 && d > 1 {
			d = 1
		}
		return d
	}

	// (3) Spanning forest of the participant subgraph.
	fr := forest.Build(mb, forest.Params{
		Tag:        s.tag(p.path, offForest),
		StartRound: entry + 1,
		SizeBound:  p.sizeBound,
		Eligible:   eligFn,
	})

	// (4) Approximate cutter (Lemma 2.1) with W = D.
	approx := bfs.CutterFragment(mb, bfs.CutterParams{
		Tag:          s.tag(p.path, offCutter),
		StartRound:   entry + 1 + forest.Duration(p.sizeBound),
		W:            p.d,
		NHat:         fr.Size,
		EpsNum:       s.epsNum,
		EpsDen:       s.epsDen,
		SourceOffset: p.offset,
		Eligible:     eligFn,
	})
	// V1 membership: dist'(v) <= D + εD (inclusive: the cutter's additive
	// error bound is <= εW, so inclusion keeps every dist <= D node).
	inV1 := approx != graph.Inf && approx*s.epsDen <= p.d*(s.epsDen+s.epsNum)
	d1h := p.d / 2

	// (5) First recursion: (V1, S, D/2).
	d1 := graph.Inf
	if inV1 {
		d1 = s.rec(callParams{
			path: 2 * p.path, d: d1h, offset: p.offset,
			sizeBound: fr.Size, eligible: elig,
		})
	}
	proto.Barrier(mb, fr.Tree, s.tag(p.path, offBarrier1), fr.Size, -1)

	// (6) Cut offsets: V2 nodes announce their exact distances; boundary
	// nodes simulate the imaginary sources X.
	inV2 := d1 != graph.Inf
	b := mb.Round()
	if inV2 {
		for i := 0; i < c.Degree(); i++ {
			if elig[i] {
				mb.Send(i, s.tag(p.path, offV2Exch), d1)
			}
		}
	}
	mb.SleepUntil(b + 1)
	offset2 := bfs.NotSource
	v2Msgs := mb.Take(s.tag(p.path, offV2Exch))
	if inV1 && !inV2 {
		for _, m := range v2Msgs {
			cand := m.Body.(int64) + c.Weight(m.NbIndex) - d1h
			if cand < 0 {
				panic(fmt.Sprintf("core: node %d: negative cut offset %d", c.ID(), cand))
			}
			if offset2 == bfs.NotSource || cand < offset2 {
				offset2 = cand
			}
		}
		// An original source whose offset exceeds D/2 seeds paths that
		// never enter V2; carry it into the second call.
		if p.offset > d1h {
			if cand := p.offset - d1h; offset2 == bfs.NotSource || cand < offset2 {
				offset2 = cand
			}
		}
	}

	// (7) Second recursion: (V1∖V2, X, D/2).
	d2 := graph.Inf
	if inV1 && !inV2 {
		childElig := make([]bool, c.Degree())
		copy(childElig, elig)
		d2 = s.rec(callParams{
			path: 2*p.path + 1, d: d1h, offset: offset2,
			sizeBound: fr.Size, eligible: childElig,
		})
	}
	proto.Barrier(mb, fr.Tree, s.tag(p.path, offBarrier2), fr.Size, -1)

	// (8) Combine.
	switch {
	case inV2:
		return d1
	case inV1 && d2 != graph.Inf:
		return d1h + d2
	default:
		return graph.Inf
	}
}

// RunCSSPTraced is RunCSSP with per-message trace recording, used by the
// APSP scheduling composition.
func RunCSSPTraced(g *graph.Graph, sources map[graph.NodeID]int64, opts Options) ([]int64, Stats, simnet.Metrics, []simnet.TraceEntry, error) {
	d, st, met, tr, err := runCSSP(g, sources, opts, true)
	return d, st, met, tr, err
}

// RunCSSP computes exact closest-source distances dist(S, v) =
// min_{s in S}(offset(s) + dist(s, v)) for every node, in the CONGEST
// model, per Theorems 2.6 and 2.7 (non-negative integer weights; zero
// weights are handled by scaling every weight by n+1, mapping zeros to 1,
// and dividing the result — the scaling preserves exact distances because
// a shortest path gains less than n+1 from the zero-weight perturbation).
func RunCSSP(g *graph.Graph, sources map[graph.NodeID]int64, opts Options) ([]int64, Stats, simnet.Metrics, error) {
	d, st, met, _, err := runCSSP(g, sources, opts, false)
	return d, st, met, err
}

func runCSSP(g *graph.Graph, sources map[graph.NodeID]int64, opts Options, trace bool) ([]int64, Stats, simnet.Metrics, []simnet.TraceEntry, error) {
	epsNum, epsDen := opts.eps()
	if epsNum <= 0 || epsDen <= 0 || epsNum >= epsDen {
		return nil, Stats{}, simnet.Metrics{}, nil, fmt.Errorf("core: ε must be in (0,1), got %d/%d", epsNum, epsDen)
	}
	for s, o := range sources {
		if o < 0 {
			return nil, Stats{}, simnet.Metrics{}, nil, fmt.Errorf("core: negative offset %d at source %d", o, s)
		}
	}

	scale := int64(1)
	run := g
	hasZero := false
	for _, e := range g.Edges() {
		if e.W == 0 {
			hasZero = true
			break
		}
	}
	if hasZero {
		scale = int64(g.N()) + 1
		run = g.Reweight(func(_ graph.EdgeID, w int64) int64 {
			if w == 0 {
				return 1
			}
			return w * scale
		})
	}

	// D0 = smallest power of two covering every possible finite distance.
	var maxOff int64
	for _, o := range sources {
		if o*scale > maxOff {
			maxOff = o * scale
		}
	}
	d0, levels := startThreshold(run, maxOff)

	cfg := simnet.Config{Model: simnet.Congest, MaxRounds: opts.MaxRounds, RecordTrace: trace}
	if opts.StrictCongest {
		// The budget covers distance-sized payloads up to n·maxW+maxOff on
		// the (possibly zero-weight-rescaled) graph the engine actually runs.
		cfg.MessageBits = proto.MessageBits
		cfg.MaxMessageBits = proto.BitBudget(run.N(), run.MaxWeight()+maxOff)
	}
	eng := simnet.New(run, cfg)
	res, err := eng.Run(func(c *simnet.Ctx) {
		mb := proto.NewMailbox(c)
		st := &cssp{mb: mb, epsNum: epsNum, epsDen: epsDen}
		off := bfs.NotSource
		if o, ok := sources[c.ID()]; ok {
			off = o * scale
		}
		d := st.rec(callParams{path: 1, d: d0, offset: off, sizeBound: int64(c.N())})
		c.SetOutput(output{Dist: d, Subproblems: st.subproblems})
	})
	if err != nil {
		return nil, Stats{}, simnet.Metrics{}, nil, err
	}
	dists := make([]int64, g.N())
	stats := Stats{Subproblems: make([]int, g.N()), Levels: levels}
	for v, o := range res.Outputs {
		out := o.(output)
		if out.Dist == graph.Inf {
			dists[v] = graph.Inf
		} else {
			dists[v] = out.Dist / scale
		}
		stats.Subproblems[v] = out.Subproblems
	}
	return dists, stats, res.Metrics, res.Trace, nil
}

// RunSSSP computes exact single-source distances (Theorem 2.6/2.7
// specialized to one source).
func RunSSSP(g *graph.Graph, source graph.NodeID, opts Options) ([]int64, Stats, simnet.Metrics, error) {
	return RunCSSP(g, map[graph.NodeID]int64{source: 0}, opts)
}
