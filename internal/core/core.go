// Package core implements the paper's primary contribution: the recursive
// D-thresholded closest-source shortest path (CSSP) algorithm of
// Section 2.3, giving exact SSSP/CSSP in Õ(n) rounds with poly(log n)
// congestion per edge (Theorems 2.6 and 2.7) in the CONGEST model.
//
// The recursion on a subproblem (participants P, source offsets o, bound D)
// is an explicit phase pipeline (pipeline.go; phase descriptors in
// phase.go):
//
//  1. D == 1: one exchange round resolves distances in {0, 1} (all weights
//     are >= 1; zero weights are removed up front by the Theorem 2.7
//     scaling described at RunCSSP).
//  2. Build a rooted spanning forest of the participant subgraph
//     (package forest) — the per-component coordination structure.
//  3. Run the approximate cutter (Lemma 2.1, package bfs) with W = D and
//     the configured ε; V1 = {v : dist'(v) <= D+εD} over-approximates
//     {v : dist(v) <= D}.
//  4. Recurse on (V1, o, D/2). Each connected component proceeds at its
//     own speed; a convergecast barrier over the component tree
//     re-synchronizes, with the root picking a start round Θ(|C|) ahead
//     (the paper's step 4).
//  5. V2 = nodes that learned dist <= D/2. Boundary nodes outside V2
//     compute offsets simulating the imaginary cut nodes x_{vu}
//     (offset = dist(v) + w(vu) − D/2), merged with any original source
//     offset above D/2, and the second recursion runs on (V1∖V2, X, D/2).
//  6. Results combine: dist = dist1 if in V2, D/2 + dist2 if the second
//     call succeeded, else ∞ for this threshold.
//
// Every subproblem owns a tag block derived from its recursion path, so
// messages from drifted sibling components are buffered, never confused.
// Every pipeline stage reports its round/message/awake/bit spend into the
// engine's span ledger (simnet.SpanMetrics), keyed by phase and recursion
// depth; the per-phase counters partition the run's Metrics exactly.
package core

import (
	"fmt"
	"math/bits"

	"dsssp/internal/bfs"
	"dsssp/internal/forest"
	"dsssp/internal/graph"
	"dsssp/internal/proto"
	"dsssp/internal/simnet"
)

// Options configures the CSSP run.
type Options struct {
	// EpsNum/EpsDen is the cutter ε in (0,1); 0/0 defaults to 1/2.
	EpsNum, EpsDen int64
	// MaxRounds overrides the engine's safety cap (0 = engine default).
	MaxRounds int64
	// StrictCongest enforces the strict CONGEST bandwidth model: every
	// message is sized (proto.MessageBits) and the run fails loudly if any
	// exceeds the O(log n)-bit budget (proto.BitBudget). Congest model
	// only; metrics then report MaxMessageBits.
	StrictCongest bool
	// RecordPhases maintains the engine's span ledger around every
	// pipeline stage: Metrics.Spans then carries the per-(phase, depth)
	// round/message/awake/bit breakdown (an exact partition of the run's
	// totals). Opt-in, like trace recording: the ledger costs a little
	// bookkeeping in the engine's hot loop. The harness always enables it
	// (its reports carry the breakdown, so its perf sidecars measure the
	// instrumented engine); leave it off in micro-benchmarks that want the
	// bare engine.
	RecordPhases bool
	// Workers sets the engine's intra-round worker pool (simnet's
	// Config.Workers): 0 or 1 runs the simulation sequentially, larger
	// values resume each round's nodes concurrently with byte-identical
	// results.
	Workers int
}

func (o Options) eps() (int64, int64) {
	if o.EpsNum == 0 && o.EpsDen == 0 {
		return 1, 2
	}
	return o.EpsNum, o.EpsDen
}

// validEps resolves the configured ε and rejects values outside (0,1).
func (o Options) validEps() (int64, int64, error) {
	epsNum, epsDen := o.eps()
	if epsNum <= 0 || epsDen <= 0 || epsNum >= epsDen {
		return 0, 0, fmt.Errorf("core: ε must be in (0,1), got %d/%d", epsNum, epsDen)
	}
	return epsNum, epsDen, nil
}

// Stats reports per-node structural measurements of one run.
type Stats struct {
	// Subproblems[v] counts the recursion calls node v participated in
	// (Lemma 2.4 bounds it by O(log D)).
	Subproblems []int
	// Levels is the recursion depth log2(D0).
	Levels int
}

// Output is a node's result.
type output struct {
	Dist        int64
	Subproblems int
}

// Tag block layout: each recursion call owns a 32-tag block indexed by its
// path in the binary recursion tree.
const (
	tagBlock    = 64
	offExch     = 0
	offBase     = 1
	offForest   = 2 // ..14 used by package forest
	offCutter   = 16
	offBarrier1 = 17 // +18
	offV2Exch   = 19
	offBarrier2 = 20 // +21
)

type cssp struct {
	mb             *proto.Mailbox
	epsNum, epsDen int64
	subproblems    int
	// v supplies the model-sensitive pipeline stages (pipeline.go).
	v variant
	// provider supplies per-call covers in the energy variant (energy.go).
	provider *coverProvider
}

// startThreshold returns the initial power-of-two threshold D0 covering
// every finite distance, and the recursion depth.
func startThreshold(g *graph.Graph, maxOff int64) (int64, int) {
	bound := int64(g.N())*g.MaxWeight() + maxOff + 1
	levels := bits.Len64(uint64(bound))
	return int64(1) << levels, levels
}

type callParams struct {
	path      uint64 // 1-based heap index of this call in the recursion tree
	d         int64  // threshold (power of two)
	offset    int64  // source offset or bfs.NotSource
	sizeBound int64  // upper bound on this call's component sizes
	eligible  []bool // edges to co-participants of the parent call (nil=all)
}

func (s *cssp) tag(path uint64, off int) uint64 { return path*tagBlock + uint64(off) }

// congestVariant instantiates the pipeline's model-sensitive stages for the
// CONGEST model (Theorems 2.6/2.7): the fragment cutter of Lemma 2.1 and
// the event-driven convergecast barrier.
type congestVariant struct{}

func (congestVariant) cutterPhase() Phase { return PhaseCutter }

func (congestVariant) register(*cssp, uint64, graph.NodeID) {}

func (congestVariant) cut(s *cssp, p callParams, entry int64, fr forest.Result, eligFn func(int) bool) int64 {
	return bfs.CutterFragment(s.mb, bfs.CutterParams{
		Tag:          s.tag(p.path, offCutter),
		StartRound:   entry + 1 + forest.Duration(p.sizeBound),
		W:            p.d,
		NHat:         fr.Size,
		EpsNum:       s.epsNum,
		EpsDen:       s.epsDen,
		SourceOffset: p.offset,
		Eligible:     eligFn,
	})
}

func (congestVariant) barrier(s *cssp, fr forest.Result, tag uint64, _ int64) {
	proto.Barrier(s.mb, fr.Tree, tag, fr.Size, -1)
}

func (congestVariant) checkOffsets() bool { return true }

// RunCSSPTraced is RunCSSP with per-message trace recording, used by the
// APSP scheduling composition.
func RunCSSPTraced(g *graph.Graph, sources map[graph.NodeID]int64, opts Options) ([]int64, Stats, simnet.Metrics, []simnet.TraceEntry, error) {
	d, st, met, tr, err := runCSSP(g, sources, opts, true)
	return d, st, met, tr, err
}

// RunCSSP computes exact closest-source distances dist(S, v) =
// min_{s in S}(offset(s) + dist(s, v)) for every node, in the CONGEST
// model, per Theorems 2.6 and 2.7 (non-negative integer weights; zero
// weights are handled by scaling every weight by n+1, mapping zeros to 1,
// and dividing the result — the scaling preserves exact distances because
// a shortest path gains less than n+1 from the zero-weight perturbation).
func RunCSSP(g *graph.Graph, sources map[graph.NodeID]int64, opts Options) ([]int64, Stats, simnet.Metrics, error) {
	d, st, met, _, err := runCSSP(g, sources, opts, false)
	return d, st, met, err
}

func runCSSP(g *graph.Graph, sources map[graph.NodeID]int64, opts Options, trace bool) ([]int64, Stats, simnet.Metrics, []simnet.TraceEntry, error) {
	epsNum, epsDen, err := opts.validEps()
	if err != nil {
		return nil, Stats{}, simnet.Metrics{}, nil, err
	}
	pr, err := prepareProblem(g, sortedSources(sources))
	if err != nil {
		return nil, Stats{}, simnet.Metrics{}, nil, err
	}

	cfg := simnet.Config{Model: simnet.Congest, MaxRounds: opts.MaxRounds, RecordTrace: trace, RecordSpans: opts.RecordPhases, Workers: opts.Workers}
	if opts.StrictCongest {
		// The budget covers distance-sized payloads up to n·maxW+maxOff on
		// the (possibly zero-weight-rescaled) graph the engine actually runs.
		cfg.MessageBits = proto.MessageBits
		cfg.MaxMessageBits = proto.BitBudget(pr.run.N(), pr.run.MaxWeight()+pr.maxOff)
	}
	eng := simnet.New(pr.run, cfg)
	res, err := eng.Run(func(c *simnet.Ctx) {
		mb := proto.NewMailbox(c)
		st := &cssp{mb: mb, epsNum: epsNum, epsDen: epsDen, v: congestVariant{}}
		off := bfs.NotSource
		if o, ok := sources[c.ID()]; ok {
			off = o * pr.scale
		}
		d := st.runCall(callParams{path: 1, d: pr.d0, offset: off, sizeBound: int64(c.N())})
		c.SetOutput(output{Dist: d, Subproblems: st.subproblems})
	})
	if err != nil {
		return nil, Stats{}, simnet.Metrics{}, nil, err
	}
	dists, stats := collectOutputs(g, res, pr.scale, pr.levels)
	return dists, stats, res.Metrics, res.Trace, nil
}

// RunSSSP computes exact single-source distances (Theorem 2.6/2.7
// specialized to one source).
func RunSSSP(g *graph.Graph, source graph.NodeID, opts Options) ([]int64, Stats, simnet.Metrics, error) {
	return RunCSSP(g, map[graph.NodeID]int64{source: 0}, opts)
}
