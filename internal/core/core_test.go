package core

import (
	"math/bits"
	"testing"
	"testing/quick"

	"dsssp/internal/graph"
)

func checkExact(t *testing.T, g *graph.Graph, sources map[graph.NodeID]int64) {
	t.Helper()
	want := graph.MultiSourceDijkstra(g, sources)
	got, _, _, err := RunCSSP(g, sources, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("node %d: got %d, want %d", v, got[v], want[v])
		}
	}
}

func TestCSSPPathUnit(t *testing.T) {
	checkExact(t, graph.Path(9, graph.UnitWeights), map[graph.NodeID]int64{0: 0})
}

func TestCSSPPathWeighted(t *testing.T) {
	checkExact(t, graph.Path(9, graph.UniformWeights(20, 3)), map[graph.NodeID]int64{0: 0})
}

func TestCSSPGridMultiSource(t *testing.T) {
	checkExact(t, graph.Grid2D(5, 5, graph.UniformWeights(9, 1)),
		map[graph.NodeID]int64{0: 0, 24: 0})
}

func TestCSSPOffsets(t *testing.T) {
	checkExact(t, graph.Cycle(12, graph.UniformWeights(5, 2)),
		map[graph.NodeID]int64{0: 7, 6: 0, 3: 100})
}

func TestCSSPDisconnected(t *testing.T) {
	g := graph.Disconnected(2, 8, 3, graph.UniformWeights(5, 4), 4)
	sources := map[graph.NodeID]int64{0: 0}
	want := graph.MultiSourceDijkstra(g, sources)
	got, _, _, err := RunCSSP(g, sources, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("node %d: got %d, want %d (unreachable must be Inf)", v, got[v], want[v])
		}
	}
}

func TestCSSPZeroWeights(t *testing.T) {
	checkExact(t, graph.RandomConnected(24, 20, graph.ZeroHeavyWeights(6, 5), 5),
		map[graph.NodeID]int64{0: 0, 12: 2})
}

func TestCSSPSingleNode(t *testing.T) {
	g := graph.New(1)
	got, _, _, err := RunCSSP(g, map[graph.NodeID]int64{0: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("got %d", got[0])
	}
}

func TestCSSPNoSources(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights)
	got, _, _, err := RunCSSP(g, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range got {
		if d != graph.Inf {
			t.Fatalf("node %d: got %d, want Inf", v, d)
		}
	}
}

func TestCSSPMatchesReferenceRandom(t *testing.T) {
	f := func(seed int64, nRaw, wRaw uint8) bool {
		n := int(nRaw%28) + 3
		maxW := int64(wRaw%9) + 1
		g := graph.RandomConnected(n, n/2, graph.UniformWeights(maxW, seed), seed)
		off := seed % 5
		if off < 0 {
			off = -off
		}
		sources := map[graph.NodeID]int64{0: 0, graph.NodeID(n / 2): off}
		want := graph.MultiSourceDijkstra(g, sources)
		got, _, _, err := RunCSSP(g, sources, Options{})
		if err != nil {
			t.Logf("error: %v", err)
			return false
		}
		for v := range want {
			if got[v] != want[v] {
				t.Logf("n=%d seed=%d node %d: got %d want %d", n, seed, v, got[v], want[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCSSPEpsilonVariants(t *testing.T) {
	g := graph.RandomConnected(20, 15, graph.UniformWeights(7, 9), 9)
	want := graph.Dijkstra(g, 0)
	for _, eps := range [][2]int64{{1, 4}, {1, 2}, {3, 4}} {
		got, _, _, err := RunCSSP(g, map[graph.NodeID]int64{0: 0}, Options{EpsNum: eps[0], EpsDen: eps[1]})
		if err != nil {
			t.Fatalf("eps %v: %v", eps, err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("eps %v node %d: got %d want %d", eps, v, got[v], want[v])
			}
		}
	}
}

func TestCSSPCongestionPolylog(t *testing.T) {
	// Theorem 2.6's headline: per-edge congestion is polylog, no matter the
	// weights. Budget c·log^2(n)·log(D) with a generous constant.
	for _, n := range []int{48, 96} {
		g := graph.RandomConnected(n, n, graph.UniformWeights(int64(n), 11), 11)
		_, _, met, err := RunCSSP(g, map[graph.NodeID]int64{0: 0}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lg := int64(bits.Len(uint(n)))
		lgD := int64(bits.Len64(uint64(n) * uint64(n)))
		budget := 60 * lg * lgD
		if met.MaxEdgeMessages > budget {
			t.Fatalf("n=%d: congestion %d exceeds %d", n, met.MaxEdgeMessages, budget)
		}
	}
}

func TestCSSPSubproblemBound(t *testing.T) {
	// Lemma 2.4: every node participates in O(log D) subproblems.
	g := graph.RandomConnected(64, 64, graph.UniformWeights(64, 13), 13)
	_, stats, _, err := RunCSSP(g, map[graph.NodeID]int64{0: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	budget := 4 * stats.Levels
	for v, k := range stats.Subproblems {
		if k > budget {
			t.Fatalf("node %d in %d subproblems, budget %d (levels=%d)", v, k, budget, stats.Levels)
		}
	}
}

func TestRunSSSP(t *testing.T) {
	g := graph.Clusters(3, 8, 5, graph.UniformWeights(9, 17), 17)
	want := graph.Dijkstra(g, 5)
	got, _, _, err := RunSSSP(g, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("node %d: got %d want %d", v, got[v], want[v])
		}
	}
}

func TestCSSPRejectsBadEps(t *testing.T) {
	g := graph.Path(3, graph.UnitWeights)
	if _, _, _, err := RunCSSP(g, nil, Options{EpsNum: 2, EpsDen: 2}); err == nil {
		t.Fatal("want error for ε >= 1")
	}
	if _, _, _, err := RunCSSP(g, map[graph.NodeID]int64{0: -1}, Options{}); err == nil {
		t.Fatal("want error for negative offset")
	}
}
