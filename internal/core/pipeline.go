// The CSSP phase pipeline: the shared skeleton of the CONGEST and
// sleeping-model recursions. Both models run the same sequence of stages —
// participation exchange, base case, spanning-forest decomposition,
// approximate cut, first recursion, barrier, cut-offset merge, second
// recursion, barrier, combine — and differ only in two model-sensitive
// stages, supplied by a variant: the cut (fragment cutter vs bounded-hop
// BFS layers over rounded weights) and the component barrier (event-driven
// convergecast vs count-based periodic tree sweeps).
//
// Every stage runs inside a span of the engine's ledger (simnet.Config
// .RecordSpans), keyed by the stage's Phase and the call's recursion depth,
// so reports can break the paper's round bounds down per phase against
// per-phase envelopes. Opening and closing spans is engine-side accounting
// only: the pipeline's message and round schedule is byte-identical to the
// pre-pipeline monolithic recursions, which the conservation and golden
// tests pin.
package core

import (
	"fmt"
	"sort"

	"dsssp/internal/bfs"
	"dsssp/internal/forest"
	"dsssp/internal/graph"
	"dsssp/internal/simnet"
)

// variant supplies the model-sensitive stages of the pipeline.
type variant interface {
	// cutterPhase names the cut stage in the span ledger.
	cutterPhase() Phase
	// register declares the node's participation in the call before the
	// pipeline's first exchange (the energy variant feeds its cover
	// provider; engine-side only, never a message).
	register(s *cssp, path uint64, v graph.NodeID)
	// cut runs the approximate cutter (Lemma 2.1) and returns the node's
	// approximate distance, or graph.Inf.
	cut(s *cssp, p callParams, entry int64, fr forest.Result, eligFn func(int) bool) int64
	// barrier re-synchronizes the call's component after a child
	// recursion (the paper's step 4).
	barrier(s *cssp, fr forest.Result, tag uint64, entry int64)
	// checkOffsets enables the negative-cut-offset assertion in the merge
	// stage (the CONGEST recursion asserts; the energy recursion, whose
	// cutter works on a rounded metric, stays tolerant).
	checkOffsets() bool
}

// runCall executes one thresholded CSSP subproblem through the phase
// pipeline; only participants call it. All participants within one parent
// component enter at a common round. Returns dist(S,·) if <= p.d, else
// graph.Inf.
func (s *cssp) runCall(p callParams) int64 {
	mb := s.mb
	c := mb.C
	s.subproblems++
	entry := mb.Round()
	depth := depthOf(p.path)
	s.v.register(s, p.path, c.ID())

	// (1) Participation exchange: learn which neighbors are in this call.
	var elig []bool
	mb.Span(PhaseParticipate.Key, depth, func() {
		for i := 0; i < c.Degree(); i++ {
			if p.eligible == nil || p.eligible[i] {
				mb.Send(i, s.tag(p.path, offExch), struct{}{})
			}
		}
		mb.SleepUntil(entry + 1)
		elig = make([]bool, c.Degree())
		for _, m := range mb.Take(s.tag(p.path, offExch)) {
			if p.eligible == nil || p.eligible[m.NbIndex] {
				elig[m.NbIndex] = true
			}
		}
	})
	eligFn := func(i int) bool { return elig[i] }

	// (2) Base case: distances in {0, 1}.
	if p.d == 1 {
		d := graph.Inf
		mb.Span(PhaseBase.Key, depth, func() {
			if p.offset >= 0 && p.offset <= 1 {
				d = p.offset
			}
			if p.offset == 0 {
				for i := 0; i < c.Degree(); i++ {
					if elig[i] && c.Weight(i) == 1 {
						mb.Send(i, s.tag(p.path, offBase), struct{}{})
					}
				}
			}
			mb.SleepUntil(entry + 2)
			if len(mb.Take(s.tag(p.path, offBase))) > 0 && d > 1 {
				d = 1
			}
		})
		return d
	}

	// (3) Spanning forest of the participant subgraph — the per-component
	// coordination structure (Thm 3.1; model-agnostic).
	var fr forest.Result
	mb.Span(PhaseDecompose.Key, depth, func() {
		fr = forest.Build(mb, forest.Params{
			Tag:        s.tag(p.path, offForest),
			StartRound: entry + 1,
			SizeBound:  p.sizeBound,
			Eligible:   eligFn,
		})
	})

	// (4) Approximate cut (Lemma 2.1) with W = D — the model-sensitive
	// stage: fragment cutter in CONGEST, bounded-hop BFS layers over the
	// rounded metric in the sleeping model.
	approx := graph.Inf
	mb.Span(s.v.cutterPhase().Key, depth, func() {
		approx = s.v.cut(s, p, entry, fr, eligFn)
	})
	// V1 membership: dist'(v) <= D + εD (inclusive: the cutter's additive
	// error bound is <= εW, so inclusion keeps every dist <= D node).
	inV1 := approx != graph.Inf && approx*s.epsDen <= p.d*(s.epsDen+s.epsNum)
	d1h := p.d / 2

	// (5) First recursion: (V1, S, D/2).
	d1 := graph.Inf
	if inV1 {
		d1 = s.runCall(callParams{
			path: 2 * p.path, d: d1h, offset: p.offset,
			sizeBound: fr.Size, eligible: elig,
		})
	}
	mb.Span(PhaseBarrier.Key, depth, func() {
		s.v.barrier(s, fr, s.tag(p.path, offBarrier1), entry)
	})

	// (6) Cut offsets: V2 nodes announce their exact distances; boundary
	// nodes simulate the imaginary cut nodes x_{vu}.
	inV2 := d1 != graph.Inf
	offset2 := bfs.NotSource
	mb.Span(PhaseMerge.Key, depth, func() {
		b := mb.Round()
		if inV2 {
			for i := 0; i < c.Degree(); i++ {
				if elig[i] {
					mb.Send(i, s.tag(p.path, offV2Exch), d1)
				}
			}
		}
		mb.SleepUntil(b + 1)
		v2Msgs := mb.Take(s.tag(p.path, offV2Exch))
		if inV1 && !inV2 {
			for _, m := range v2Msgs {
				cand := m.Body.(int64) + c.Weight(m.NbIndex) - d1h
				if cand < 0 && s.v.checkOffsets() {
					panic(fmt.Sprintf("core: node %d: negative cut offset %d", c.ID(), cand))
				}
				if offset2 == bfs.NotSource || cand < offset2 {
					offset2 = cand
				}
			}
			// An original source whose offset exceeds D/2 seeds paths that
			// never enter V2; carry it into the second call.
			if p.offset > d1h {
				if cand := p.offset - d1h; offset2 == bfs.NotSource || cand < offset2 {
					offset2 = cand
				}
			}
		}
	})

	// (7) Second recursion: (V1∖V2, X, D/2).
	d2 := graph.Inf
	if inV1 && !inV2 {
		d2 = s.runCall(callParams{
			path: 2*p.path + 1, d: d1h, offset: offset2,
			sizeBound: fr.Size, eligible: elig,
		})
	}
	mb.Span(PhaseBarrier.Key, depth, func() {
		s.v.barrier(s, fr, s.tag(p.path, offBarrier2), entry)
	})

	// (8) Combine.
	switch {
	case inV2:
		return d1
	case inV1 && d2 != graph.Inf:
		return d1h + d2
	default:
		return graph.Inf
	}
}

// sourceOffset is one (source node, offset) pair of a CSSP instance.
type sourceOffset struct {
	v   graph.NodeID
	off int64
}

// sortedSources returns the source set in ascending node-ID order. Every
// place that seeds per-source work iterates this slice, never the map:
// Go's map order is randomized per run, and a run's error messages, traces,
// and span ledgers must be reproducible.
func sortedSources(sources map[graph.NodeID]int64) []sourceOffset {
	srcs := make([]sourceOffset, 0, len(sources))
	for v, off := range sources {
		srcs = append(srcs, sourceOffset{v, off})
	}
	sort.Slice(srcs, func(a, b int) bool { return srcs[a].v < srcs[b].v })
	return srcs
}

// problem is a prepared CSSP instance: the (possibly rescaled) graph the
// engine runs, the Theorem 2.7 weight scale, the largest rescaled source
// offset, and the starting threshold.
type problem struct {
	run    *graph.Graph
	scale  int64
	maxOff int64
	d0     int64
	levels int
}

// prepareProblem validates the sources, applies the Theorem 2.7 zero-weight
// rescaling, and derives the initial power-of-two threshold D0.
func prepareProblem(g *graph.Graph, srcs []sourceOffset) (problem, error) {
	for _, s := range srcs {
		if s.off < 0 {
			return problem{}, fmt.Errorf("core: negative offset %d at source %d", s.off, s.v)
		}
	}
	pr := problem{run: g, scale: 1}
	for _, e := range g.Edges() {
		if e.W == 0 {
			// Scaling every weight by n+1 (zeros to 1) preserves exact
			// distances: a shortest path gains less than n+1 from the
			// zero-weight perturbation.
			pr.scale = int64(g.N()) + 1
			pr.run = g.Reweight(func(_ graph.EdgeID, w int64) int64 {
				if w == 0 {
					return 1
				}
				return w * pr.scale
			})
			break
		}
	}
	for _, s := range srcs {
		if s.off*pr.scale > pr.maxOff {
			pr.maxOff = s.off * pr.scale
		}
	}
	pr.d0, pr.levels = startThreshold(pr.run, pr.maxOff)
	return pr, nil
}

// collectOutputs descales the per-node outputs into distances and stats.
func collectOutputs(g *graph.Graph, res *simnet.Result, scale int64, levels int) ([]int64, Stats) {
	dists := make([]int64, g.N())
	stats := Stats{Subproblems: make([]int, g.N()), Levels: levels}
	for v, o := range res.Outputs {
		out := o.(output)
		if out.Dist == graph.Inf {
			dists[v] = graph.Inf
		} else {
			dists[v] = out.Dist / scale
		}
		stats.Subproblems[v] = out.Subproblems
	}
	return dists, stats
}
