package core

import (
	"strings"
	"testing"

	"dsssp/internal/graph"
)

// Edge-case coverage for startThreshold and the Options ε plumbing: the
// recursion's correctness hangs on D0 strictly covering every finite
// distance and on ε staying inside (0,1), so the boundaries get explicit
// tests through both recursions.

func TestStartThresholdCoversDistances(t *testing.T) {
	cases := []struct {
		n, maxW int
		maxOff  int64
	}{
		{4, 1, 0},        // tiny unit graph, zero offset
		{4, 1, 100},      // offset dominates the bound
		{16, 9, 0},       // weights dominate
		{2, 1, 1 << 30},  // huge offset: levels from the offset alone
		{64, 4096, 1337}, // poly weights plus an offset
	}
	for _, tc := range cases {
		g := graph.RandomConnected(tc.n, tc.n, graph.UniformWeights(int64(tc.maxW), 3), 3)
		d0, levels := startThreshold(g, tc.maxOff)
		bound := int64(g.N())*g.MaxWeight() + tc.maxOff + 1
		if d0 <= 0 || d0&(d0-1) != 0 {
			t.Errorf("n=%d maxW=%d off=%d: D0=%d is not a positive power of two", tc.n, tc.maxW, tc.maxOff, d0)
		}
		if d0 < bound {
			t.Errorf("n=%d maxW=%d off=%d: D0=%d does not cover the distance bound %d", tc.n, tc.maxW, tc.maxOff, d0, bound)
		}
		if d0 >= 4*bound {
			t.Errorf("n=%d maxW=%d off=%d: D0=%d overshoots the bound %d by more than 2 doublings", tc.n, tc.maxW, tc.maxOff, d0, bound)
		}
		if int64(1)<<levels != d0 {
			t.Errorf("levels=%d inconsistent with D0=%d", levels, d0)
		}
	}
}

// TestEpsValidationBoundaries: ε must be accepted exactly on (0,1), with
// 0/0 defaulting to 1/2, through both recursions' entry validation.
func TestEpsValidationBoundaries(t *testing.T) {
	valid := []Options{
		{},                                       // default 1/2
		{EpsNum: 1, EpsDen: 2},                   // the default, spelled out
		{EpsNum: 1, EpsDen: 1 << 40},             // arbitrarily small ε validates
		{EpsNum: (1 << 40) - 1, EpsDen: 1 << 40}, // ε arbitrarily close to 1
	}
	for _, o := range valid {
		if _, _, err := o.validEps(); err != nil {
			t.Errorf("Options %+v rejected: %v", o, err)
		}
	}
	invalid := []Options{
		{EpsNum: 1, EpsDen: 1},  // ε = 1
		{EpsNum: 2, EpsDen: 1},  // ε > 1
		{EpsNum: -1, EpsDen: 2}, // negative numerator
		{EpsNum: 1, EpsDen: -2}, // negative denominator
		{EpsNum: 0, EpsDen: 2},  // ε = 0 (explicit zero numerator)
		{EpsNum: 3, EpsDen: 0},  // zero denominator
	}
	g := graph.Path(4, graph.UnitWeights)
	for _, o := range invalid {
		if _, _, err := o.validEps(); err == nil {
			t.Errorf("Options %+v accepted", o)
		}
		// The boundary must hold at both public entrypoints.
		if _, _, _, err := RunCSSP(g, map[graph.NodeID]int64{0: 0}, o); err == nil || !strings.Contains(err.Error(), "ε") {
			t.Errorf("RunCSSP accepted Options %+v (err=%v)", o, err)
		}
		if _, _, _, err := RunEnergyCSSP(g, map[graph.NodeID]int64{0: 0}, o); err == nil || !strings.Contains(err.Error(), "ε") {
			t.Errorf("RunEnergyCSSP accepted Options %+v (err=%v)", o, err)
		}
	}
}

// TestEpsExtremesRun: ε values near the validation boundaries must still
// produce exact distances (Lemma 2.1 holds for every ε in (0,1)).
func TestEpsExtremesRun(t *testing.T) {
	g := graph.RandomConnected(12, 12, graph.UniformWeights(4, 5), 5)
	want := graph.Dijkstra(g, 0)
	for _, o := range []Options{{EpsNum: 1, EpsDen: 16}, {EpsNum: 15, EpsDen: 16}} {
		got, _, _, err := RunSSSP(g, 0, o)
		if err != nil {
			t.Fatalf("eps %d/%d: %v", o.EpsNum, o.EpsDen, err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("eps %d/%d: node %d: got %d, want %d", o.EpsNum, o.EpsDen, v, got[v], want[v])
			}
		}
	}
}

// TestSingleNodeBothRecursions: a one-node graph (no edges) through both
// recursions — with a source, without a source, and with an offset.
func TestSingleNodeBothRecursions(t *testing.T) {
	g := graph.New(1)
	g.SortAdj()
	runs := map[string]func(map[graph.NodeID]int64) ([]int64, error){
		"congest": func(src map[graph.NodeID]int64) ([]int64, error) {
			d, _, _, err := RunCSSP(g, src, Options{})
			return d, err
		},
		"energy": func(src map[graph.NodeID]int64) ([]int64, error) {
			d, _, _, err := RunEnergyCSSP(g, src, Options{})
			return d, err
		},
	}
	for name, run := range runs {
		if d, err := run(map[graph.NodeID]int64{0: 0}); err != nil || d[0] != 0 {
			t.Errorf("%s single node source: d=%v err=%v, want [0]", name, d, err)
		}
		if d, err := run(map[graph.NodeID]int64{0: 5}); err != nil || d[0] != 5 {
			t.Errorf("%s single node offset: d=%v err=%v, want [5]", name, d, err)
		}
		if d, err := run(nil); err != nil || d[0] != graph.Inf {
			t.Errorf("%s single node no source: d=%v err=%v, want [+Inf]", name, d, err)
		}
	}
}

// TestNoSourcesBothRecursions: an empty source set must yield +Inf
// everywhere (not an error, matching MultiSourceDijkstra's convention) in
// both models.
func TestNoSourcesBothRecursions(t *testing.T) {
	g := graph.Grid2D(3, 3, graph.UniformWeights(3, 11))
	dc, _, _, err := RunCSSP(g, map[graph.NodeID]int64{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	de, _, _, err := RunEnergyCSSP(g, map[graph.NodeID]int64{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if dc[v] != graph.Inf || de[v] != graph.Inf {
			t.Fatalf("node %d: congest %d, energy %d, want +Inf in both", v, dc[v], de[v])
		}
	}
}

// TestMaxOffsetBothRecursions: a source offset far above any edge weight
// (so startThreshold's levels come from the offset) must still be exact —
// the offset rides the recursion as an imaginary-node distance.
func TestMaxOffsetBothRecursions(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights)
	const huge = int64(1) << 30
	sources := map[graph.NodeID]int64{0: huge, 3: 0}
	want := graph.MultiSourceDijkstra(g, sources)
	dc, _, _, err := RunCSSP(g, sources, Options{})
	if err != nil {
		t.Fatal(err)
	}
	de, _, _, err := RunEnergyCSSP(g, sources, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if dc[v] != want[v] || de[v] != want[v] {
			t.Fatalf("node %d: congest %d, energy %d, want %d", v, dc[v], de[v], want[v])
		}
	}
}

// TestZeroOffsetsAllSources: offsets of zero on every node short-circuit
// every distance to 0 in both recursions (the degenerate CSSP).
func TestZeroOffsetsAllSources(t *testing.T) {
	g := graph.Cycle(8, graph.UniformWeights(6, 13))
	sources := make(map[graph.NodeID]int64, g.N())
	for v := 0; v < g.N(); v++ {
		sources[graph.NodeID(v)] = 0
	}
	for name, run := range map[string]func() ([]int64, error){
		"congest": func() ([]int64, error) { d, _, _, err := RunCSSP(g, sources, Options{}); return d, err },
		"energy":  func() ([]int64, error) { d, _, _, err := RunEnergyCSSP(g, sources, Options{}); return d, err },
	} {
		d, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v, dv := range d {
			if dv != 0 {
				t.Fatalf("%s: node %d: %d, want 0", name, v, dv)
			}
		}
	}
}
