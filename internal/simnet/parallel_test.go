package simnet

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"dsssp/internal/graph"
)

// parallelWorkerCounts is the worker matrix the differential tests sweep:
// 1 (the sequential fast path a parallel config degrades to), a couple of
// genuine pool sizes, and whatever GOMAXPROCS happens to be on the host.
func parallelWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

// forceTinyBatches drops the pool's fan-out threshold to 1 for the duration
// of a test, so even the n≤23 randomized graphs actually cross the
// concurrent resume path instead of staying on the inline fallback.
func forceTinyBatches(t *testing.T) {
	t.Helper()
	testMinBatch = 1
	t.Cleanup(func() { testMinBatch = 0 })
}

// spanScriptProgram wraps scriptProgram with pseudo-random span open/close
// activity, so the differential tests cover ledger interning, per-span
// attribution, and first-open ordering — the state the parallel engine must
// reproduce byte-identically despite interning concurrently.
func spanScriptProgram(seed int64, model Model, steps int) Program {
	inner := scriptProgram(seed, model, steps)
	return func(c *Ctx) {
		x := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(c.ID()))
		depth := 0
		for s := 0; s < 3; s++ {
			x = splitmix64(x)
			switch x % 3 {
			case 0:
				c.OpenSpan(fmt.Sprintf("phase%d", x>>8%5), depth)
				depth++
			case 1:
				if depth > 0 {
					c.CloseSpan()
					depth--
				}
			case 2:
				c.Next()
			}
		}
		inner(c)
	}
}

// TestParallelMatchesOracle runs the randomized differential corpus through
// the parallel engine at several worker counts, asserting exactly equal
// Metrics, Outputs, Trace, and error text against the frozen oracle
// scheduler — the same bar the sequential engine is held to — over both
// models and with strict-CONGEST enforcement on.
func TestParallelMatchesOracle(t *testing.T) {
	forceTinyBatches(t)
	for seed := int64(0); seed < 40; seed++ {
		for _, model := range []Model{Congest, Sleeping} {
			for _, strict := range []bool{false, true} {
				n := int(splitmix64(uint64(seed))%22) + 2
				g := equivGraph(seed, n)
				cfg := Config{Model: model, RecordTrace: true, StrictCongest: strict, MaxRounds: 1 << 20}
				p := scriptProgram(seed, model, 12)

				want, werr := New(g, cfg).runOracle(p)
				for _, w := range parallelWorkerCounts() {
					wcfg := cfg
					wcfg.Workers = w
					got, gerr := New(g, wcfg).Run(p)

					name := fmt.Sprintf("seed=%d model=%s strict=%v n=%d workers=%d", seed, model, strict, n, w)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("%s: error divergence: oracle=%v parallel=%v", name, werr, gerr)
					}
					if werr != nil {
						if werr.Error() != gerr.Error() {
							t.Fatalf("%s: error text divergence:\noracle:   %v\nparallel: %v", name, werr, gerr)
						}
						continue
					}
					if !reflect.DeepEqual(want.Metrics, got.Metrics) {
						t.Fatalf("%s: metrics divergence:\noracle:   %+v\nparallel: %+v", name, want.Metrics, got.Metrics)
					}
					if !reflect.DeepEqual(want.Outputs, got.Outputs) {
						t.Fatalf("%s: outputs divergence", name)
					}
					if !reflect.DeepEqual(want.Trace, got.Trace) {
						t.Fatalf("%s: trace divergence (oracle %d entries, parallel %d)", name, len(want.Trace), len(got.Trace))
					}
				}
			}
		}
	}
}

// TestParallelSpanLedgerMatchesSequential pins the parallel span ledger —
// row order included — to the sequential engine's, with message-bit
// measurement on so per-span MaxMessageBits attribution is covered too.
func TestParallelSpanLedgerMatchesSequential(t *testing.T) {
	forceTinyBatches(t)
	bits := func(msg any) int64 { return int64(msg.(uint64)%512) + 1 }
	for seed := int64(0); seed < 30; seed++ {
		for _, model := range []Model{Congest, Sleeping} {
			n := int(splitmix64(uint64(seed)+77)%22) + 2
			g := equivGraph(seed, n)
			cfg := Config{Model: model, RecordTrace: true, RecordSpans: true, MessageBits: bits, MaxRounds: 1 << 20}
			p := spanScriptProgram(seed, model, 10)

			want, werr := New(g, cfg).Run(p)
			for _, w := range parallelWorkerCounts() {
				wcfg := cfg
				wcfg.Workers = w
				got, gerr := New(g, wcfg).Run(p)

				name := fmt.Sprintf("seed=%d model=%s n=%d workers=%d", seed, model, n, w)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s: error divergence: sequential=%v parallel=%v", name, werr, gerr)
				}
				if werr != nil {
					if werr.Error() != gerr.Error() {
						t.Fatalf("%s: error text divergence:\nsequential: %v\nparallel:   %v", name, werr, gerr)
					}
					continue
				}
				if !reflect.DeepEqual(want.Metrics.Spans, got.Metrics.Spans) {
					t.Fatalf("%s: span ledger divergence:\nsequential: %+v\nparallel:   %+v", name, want.Metrics.Spans, got.Metrics.Spans)
				}
				if !reflect.DeepEqual(want.Metrics, got.Metrics) {
					t.Fatalf("%s: metrics divergence:\nsequential: %+v\nparallel:   %+v", name, want.Metrics, got.Metrics)
				}
				if !reflect.DeepEqual(want.Outputs, got.Outputs) {
					t.Fatalf("%s: outputs divergence", name)
				}
				if !reflect.DeepEqual(want.Trace, got.Trace) {
					t.Fatalf("%s: trace divergence", name)
				}
			}
		}
	}
}

// TestParallelErrorPaths pins the scheduler-visible error paths (deadlock,
// MaxRounds, node panic, strict-CONGEST overload) to the sequential error
// text at every worker count — in particular that the lowest-ID panicking
// node wins error selection regardless of which worker hit it first.
func TestParallelErrorPaths(t *testing.T) {
	forceTinyBatches(t)
	cases := []struct {
		name string
		cfg  Config
		prog Program
	}{
		{
			name: "deadlock",
			cfg:  Config{Model: Congest},
			prog: func(c *Ctx) {
				if c.ID() == 0 {
					return
				}
				c.WaitMessage(-1)
			},
		},
		{
			name: "maxrounds",
			cfg:  Config{Model: Sleeping, MaxRounds: 64},
			prog: func(c *Ctx) { c.SleepUntil(1000) },
		},
		{
			name: "panic-lowest-id-wins",
			cfg:  Config{Model: Congest},
			prog: func(c *Ctx) {
				// Every node panics in round 0; the reported error must name
				// node 0 — the one the sequential resume order hits first.
				panic(fmt.Sprintf("boom from %d", c.ID()))
			},
		},
		{
			name: "strict-congest",
			cfg:  Config{Model: Congest, StrictCongest: true},
			prog: func(c *Ctx) {
				c.Send(0, uint64(1))
				c.Send(0, uint64(2))
				c.Next()
			},
		},
	}
	for _, tc := range cases {
		g := graph.Path(40, graph.UnitWeights)
		_, werr := New(g, tc.cfg).Run(tc.prog)
		if werr == nil {
			t.Fatalf("%s: expected a sequential error", tc.name)
		}
		for _, w := range parallelWorkerCounts() {
			cfg := tc.cfg
			cfg.Workers = w
			_, gerr := New(g, cfg).Run(tc.prog)
			if gerr == nil {
				t.Fatalf("%s workers=%d: expected an error", tc.name, w)
			}
			if werr.Error() != gerr.Error() {
				t.Fatalf("%s workers=%d: error text divergence:\nsequential: %v\nparallel:   %v", tc.name, w, werr, gerr)
			}
		}
	}
}

// floodProgram is an O(total work) = O(m) broadcast: node 0 seeds a token,
// every other node parks until one arrives, forwards once, and halts. Wide
// graphs produce full-width batches (the pool's saturation case); the path
// graph produces n sequential singleton rounds (the pool's degenerate
// case) while still walking the 10^5-node memory layout end to end.
func floodProgram(c *Ctx) {
	if c.ID() == 0 {
		for i := 0; i < c.Degree(); i++ {
			c.Send(i, uint64(1))
		}
		c.Next()
		c.SetOutput(int64(0))
		return
	}
	in := c.WaitMessage(-1)
	hops := in[0].Msg.(uint64)
	for i := 0; i < c.Degree(); i++ {
		c.Send(i, hops+1)
	}
	c.Next()
	c.SetOutput(int64(hops))
}

// TestParallelLargeNSmoke runs the n=10^5 memory-engineering targets (path,
// random, star) through sequential and 4-worker engines and asserts
// identical results. Opt-out with -short: the point of the run is the
// large allocation footprint, which is exactly what a quick test pass
// wants to skip.
func TestParallelLargeNSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n smoke test skipped with -short")
	}
	const n = 100_000
	graphs := map[string]*graph.Graph{
		"path":   graph.Path(n, graph.UnitWeights),
		"random": graph.RandomConnected(n, 2*n, graph.UnitWeights, 7),
		"star":   graph.Star(n, graph.UnitWeights),
	}
	for name, g := range graphs {
		cfg := Config{Model: Congest, MaxRounds: 1 << 20}
		want, werr := New(g, cfg).Run(floodProgram)
		if werr != nil {
			t.Fatalf("%s: sequential run failed: %v", name, werr)
		}
		cfg.Workers = 4
		got, gerr := New(g, cfg).Run(floodProgram)
		if gerr != nil {
			t.Fatalf("%s: parallel run failed: %v", name, gerr)
		}
		if !reflect.DeepEqual(want.Metrics, got.Metrics) {
			t.Fatalf("%s: metrics divergence at n=%d:\nsequential: %+v\nparallel:   %+v", name, n, &want.Metrics, &got.Metrics)
		}
		if !reflect.DeepEqual(want.Outputs, got.Outputs) {
			t.Fatalf("%s: outputs divergence at n=%d", name, n)
		}
	}
}
