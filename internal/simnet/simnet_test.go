package simnet

import (
	"strings"
	"testing"

	"dsssp/internal/graph"
)

func TestFloodCongest(t *testing.T) {
	// Simple BFS flood on a path: node 0 starts, everyone learns distance.
	g := graph.Path(6, graph.UnitWeights)
	e := New(g, Config{Model: Congest, StrictCongest: true})
	res, err := e.Run(func(c *Ctx) {
		dist := int64(-1)
		if c.ID() == 0 {
			dist = 0
			for i := 0; i < c.Degree(); i++ {
				c.Send(i, int64(1))
			}
			c.SetOutput(dist)
			return
		}
		for {
			msgs := c.WaitMessage(100)
			for _, m := range msgs {
				d := m.Msg.(int64)
				if dist == -1 {
					dist = d
					for i := 0; i < c.Degree(); i++ {
						if i != m.NbIndex {
							c.Send(i, d+1)
						}
					}
				}
			}
			if dist >= 0 {
				c.SetOutput(dist)
				return
			}
			if c.Round() >= 99 {
				c.SetOutput(dist)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if res.Outputs[v].(int64) != int64(v) {
			t.Fatalf("node %d output %v, want %d", v, res.Outputs[v], v)
		}
	}
	if res.Metrics.Messages != 5 {
		t.Fatalf("messages=%d, want 5", res.Metrics.Messages)
	}
	if res.Metrics.MaxEdgeMessages != 1 {
		t.Fatalf("congestion=%d, want 1", res.Metrics.MaxEdgeMessages)
	}
	if res.Metrics.Rounds != 6 {
		t.Fatalf("rounds=%d, want 6", res.Metrics.Rounds)
	}
}

func TestSleepingLosesMessages(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	e := New(g, Config{Model: Sleeping})
	res, err := e.Run(func(c *Ctx) {
		switch c.ID() {
		case 0:
			c.Next()           // round 0 -> 1
			c.Send(0, "lost")  // sent in round 1; node 1 sleeps in round 1
			c.Next()           // round 1 -> 2
			c.Send(0, "heard") // sent in round 2; node 1 wakes at 2
			c.Next()
		case 1:
			msgs := c.SleepUntil(2) // awake rounds: 0 and 2
			if len(msgs) != 0 {
				t.Errorf("unexpected early messages: %v", msgs)
			}
			msgs = c.Next() // receives what arrived in round 2
			got := make([]string, 0, len(msgs))
			for _, m := range msgs {
				got = append(got, m.Msg.(string))
			}
			c.SetOutput(strings.Join(got, ","))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[1].(string) != "heard" {
		t.Fatalf("node 1 got %q, want \"heard\"", res.Outputs[1])
	}
	if res.Metrics.LostMessages != 1 {
		t.Fatalf("lost=%d, want 1", res.Metrics.LostMessages)
	}
	// Node 1 awake rounds: 0, 2, 3 = 3; node 0 awake 0,1,2,3 = 4.
	if res.Metrics.PerNodeAwake[1] != 3 {
		t.Fatalf("node 1 awake %d, want 3", res.Metrics.PerNodeAwake[1])
	}
	if res.Metrics.MaxAwake != 4 {
		t.Fatalf("max awake %d, want 4", res.Metrics.MaxAwake)
	}
}

func TestCongestNeverLoses(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	e := New(g, Config{Model: Congest})
	res, err := e.Run(func(c *Ctx) {
		switch c.ID() {
		case 0:
			c.Next()
			c.Send(0, 42)
			c.Next()
		case 1:
			msgs := c.SleepUntil(5) // logically always awake in CONGEST
			if len(msgs) != 1 || msgs[0].Msg.(int) != 42 {
				t.Errorf("want the message despite sleeping: %v", msgs)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.LostMessages != 0 {
		t.Fatal("congest mode must not lose messages")
	}
}

func TestRoundSkipping(t *testing.T) {
	// Two nodes sleeping for a long time: the engine must jump, not iterate.
	g := graph.Path(2, graph.UnitWeights)
	e := New(g, Config{Model: Sleeping})
	res, err := e.Run(func(c *Ctx) {
		c.SleepUntil(1 << 30)
		c.SetOutput(c.Round())
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0].(int64) != 1<<30 {
		t.Fatalf("woke at %v", res.Outputs[0])
	}
	if res.Metrics.MaxAwake != 2 {
		t.Fatalf("awake=%d, want 2", res.Metrics.MaxAwake)
	}
}

func TestWaitMessageDeadline(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	e := New(g, Config{Model: Congest})
	res, err := e.Run(func(c *Ctx) {
		if c.ID() == 1 {
			msgs := c.WaitMessage(50)
			c.SetOutput([]any{c.Round(), len(msgs)})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs[1].([]any)
	if out[0].(int64) != 50 || out[1].(int) != 0 {
		t.Fatalf("got %v, want round 50 with 0 msgs", out)
	}
}

func TestWaitMessageWokenByArrival(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	e := New(g, Config{Model: Congest})
	res, err := e.Run(func(c *Ctx) {
		switch c.ID() {
		case 0:
			c.SleepUntil(7)
			c.Send(0, "ping") // sent in round 7
			c.Next()
		case 1:
			msgs := c.WaitMessage(1000)
			c.SetOutput([]any{c.Round(), msgs[0].Msg.(string)})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs[1].([]any)
	if out[0].(int64) != 8 || out[1].(string) != "ping" {
		t.Fatalf("got %v, want [8 ping]", out)
	}
}

func TestDeadlockDetected(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	e := New(g, Config{Model: Congest})
	_, err := e.Run(func(c *Ctx) {
		if c.ID() == 0 {
			return // halts
		}
		c.WaitMessage(-1) // never satisfied
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestNodePanicPropagates(t *testing.T) {
	g := graph.Path(3, graph.UnitWeights)
	e := New(g, Config{Model: Congest})
	_, err := e.Run(func(c *Ctx) {
		if c.ID() == 1 {
			panic("boom")
		}
		c.SleepUntil(100)
	})
	if err == nil || !strings.Contains(err.Error(), "node 1 panicked: boom") {
		t.Fatalf("got %v", err)
	}
}

func TestMaxRoundsEnforced(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	e := New(g, Config{Model: Sleeping, MaxRounds: 10})
	_, err := e.Run(func(c *Ctx) {
		c.SleepUntil(100)
	})
	if err == nil || !strings.Contains(err.Error(), "MaxRounds") {
		t.Fatalf("got %v", err)
	}
}

func TestStrictCongestViolation(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	e := New(g, Config{Model: Congest, StrictCongest: true})
	_, err := e.Run(func(c *Ctx) {
		if c.ID() == 0 {
			c.Send(0, 1)
			c.Send(0, 2) // two messages, same edge, same direction, same round
		}
		c.Next()
	})
	if err == nil || !strings.Contains(err.Error(), "CONGEST violation") {
		t.Fatalf("got %v", err)
	}
}

func TestMegaroundAccounting(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	e := New(g, Config{Model: Congest})
	res, err := e.Run(func(c *Ctx) {
		if c.ID() == 0 {
			for k := 0; k < 5; k++ {
				c.Send(0, k)
			}
		}
		c.Next()
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 rounds total; round 0 carried load 5 => strict = 2 + (5-1) = 6.
	if res.Metrics.Rounds != 2 || res.Metrics.StrictRounds != 6 {
		t.Fatalf("rounds=%d strict=%d, want 2,6", res.Metrics.Rounds, res.Metrics.StrictRounds)
	}
}

func TestNeighborIndexAndReverse(t *testing.T) {
	g := graph.Star(4, graph.UnitWeights)
	e := New(g, Config{Model: Congest})
	res, err := e.Run(func(c *Ctx) {
		if c.ID() == 2 {
			c.SendID(0, "hi")
		}
		msgs := c.Next()
		for _, m := range msgs {
			// The center's NbIndex must point back at node 2.
			c.SetOutput(c.NeighborID(m.NbIndex))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0].(graph.NodeID) != 2 {
		t.Fatalf("reverse index broken: %v", res.Outputs[0])
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.RandomConnected(40, 60, graph.UnitWeights, 5)
	run := func() []any {
		e := New(g, Config{Model: Congest})
		res, err := e.Run(func(c *Ctx) {
			// Everyone floods its ID for 3 rounds; output = sorted digest of
			// all received (from, round) pairs via a running hash.
			var h uint64 = 1469598103934665603
			mix := func(x uint64) { h ^= x; h *= 1099511628211 }
			for r := 0; r < 3; r++ {
				for i := 0; i < c.Degree(); i++ {
					c.Send(i, uint64(c.ID())<<32|uint64(r))
				}
				for _, m := range c.Next() {
					mix(m.Msg.(uint64))
					mix(uint64(m.From))
				}
			}
			c.SetOutput(h)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d nondeterministic: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTraceRecording(t *testing.T) {
	g := graph.Path(3, graph.UnitWeights)
	e := New(g, Config{Model: Congest, RecordTrace: true})
	res, err := e.Run(func(c *Ctx) {
		if c.ID() == 1 {
			c.Send(0, "a") // to node 0 over edge 0: dir=1 (1>0)
			c.Send(1, "b") // to node 2 over edge 1: dir=0
		}
		c.Next()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 2 {
		t.Fatalf("trace len %d", len(res.Trace))
	}
	if res.Trace[0].Dir != 1 || res.Trace[1].Dir != 0 {
		t.Fatalf("trace dirs: %+v", res.Trace)
	}
}

func TestDroppedAfterHalt(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	e := New(g, Config{Model: Congest})
	res, err := e.Run(func(c *Ctx) {
		if c.ID() == 1 {
			return // halts immediately in round 0
		}
		c.Next()
		c.Send(0, "too late") // round 1
		c.Next()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.DroppedAfterHalt != 1 {
		t.Fatalf("droppedAfterHalt=%d", res.Metrics.DroppedAfterHalt)
	}
}

func TestSleepUntilPastPanics(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	e := New(g, Config{Model: Congest})
	_, err := e.Run(func(c *Ctx) {
		c.SleepUntil(0) // current round is 0: must panic
	})
	if err == nil || !strings.Contains(err.Error(), "SleepUntil") {
		t.Fatalf("got %v", err)
	}
}

func TestSleepUntilAtLeastClamps(t *testing.T) {
	g := graph.Path(1, graph.UnitWeights)
	e := New(g, Config{Model: Sleeping})
	res, err := e.Run(func(c *Ctx) {
		c.SleepUntilAtLeast(0)
		c.SetOutput(c.Round())
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0].(int64) != 1 {
		t.Fatalf("round %v, want 1", res.Outputs[0])
	}
}

func TestWaitMessageInSleepingPanics(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	e := New(g, Config{Model: Sleeping})
	_, err := e.Run(func(c *Ctx) {
		c.WaitMessage(10)
	})
	if err == nil || !strings.Contains(err.Error(), "only valid in Congest") {
		t.Fatalf("got %v", err)
	}
}

func TestManyNodesStress(t *testing.T) {
	// A quick scale smoke test: flood on a 2000-node random graph.
	g := graph.RandomConnected(2000, 3000, graph.UnitWeights, 9)
	e := New(g, Config{Model: Congest})
	ref := graph.BFSDist(g, 0)
	res, err := e.Run(func(c *Ctx) {
		dist := int64(-1)
		deadline := int64(c.N() + 10)
		if c.ID() == 0 {
			dist = 0
			for i := 0; i < c.Degree(); i++ {
				c.Send(i, int64(1))
			}
		}
		for dist == -1 {
			msgs := c.WaitMessage(deadline)
			for _, m := range msgs {
				if dist == -1 {
					dist = m.Msg.(int64)
					for i := 0; i < c.Degree(); i++ {
						c.Send(i, dist+1)
					}
				}
			}
			if c.Round() >= deadline {
				break
			}
		}
		c.SetOutput(dist)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if int64(res.Outputs[v].(int64)) != ref[v] {
			t.Fatalf("node %d: got %v want %d", v, res.Outputs[v], ref[v])
		}
	}
}
