package simnet

import "dsssp/internal/graph"

// wakeQueue is the engine's round scheduler: a calendar/bucket queue. Wakes
// inside the sliding window [base, base+bucketWindow) land in O(1) ring
// buckets (one per round); only far-future deadlines — SleepUntil jumps
// beyond the window, long WaitMessage deadlines — spill into a typed binary
// min-heap. The common Next()/SleepUntil(+small) traffic therefore never
// touches the heap, and nothing here boxes through interface{}.
//
// Entries carry the owning node's seq at push time; an entry whose seq no
// longer matches the node's is stale (the node was rescheduled, e.g. a
// parked node woken by a message before its deadline) and is skipped at
// drain time, exactly like the heap-only scheduler this replaces.
type wakeQueue struct {
	buckets [bucketWindow][]bucketWake
	// inRing counts entries currently in the ring (including stale ones).
	inRing int
	// base is the smallest round the ring can currently hold; it only grows.
	base int64
	// far is a (round, id)-ordered min-heap for rounds >= base+bucketWindow.
	far []wakeEntry
}

const (
	bucketWindow = 1 << 10
	bucketMask   = bucketWindow - 1
)

type bucketWake struct {
	id  graph.NodeID
	seq int64
}

type wakeEntry struct {
	round int64
	id    graph.NodeID
	seq   int64
}

// push schedules node id to wake at round (with the node's current seq).
// round must be >= base; the engine only ever schedules future rounds.
func (q *wakeQueue) push(round int64, id graph.NodeID, seq int64) {
	if round < q.base+bucketWindow {
		q.buckets[round&bucketMask] = append(q.buckets[round&bucketMask], bucketWake{id, seq})
		q.inRing++
		return
	}
	q.far = heapPushWake(q.far, wakeEntry{round, id, seq})
}

// next returns the earliest round holding at least one (possibly stale)
// entry, or false when the queue is empty. Ring buckets between the old and
// new base are scanned at most once over the whole run because base is
// monotone; an empty ring jumps straight to the heap minimum, so idle
// stretches cost O(log) rather than O(gap).
func (q *wakeQueue) next() (int64, bool) {
	if q.inRing == 0 && len(q.far) == 0 {
		return 0, false
	}
	for {
		if q.inRing > 0 {
			for len(q.buckets[q.base&bucketMask]) == 0 {
				q.base++
				q.migrate()
			}
			return q.base, true
		}
		q.base = q.far[0].round
		q.migrate()
	}
}

// take removes and returns round's bucket. The returned slice aliases the
// bucket's backing array, which is reused for a later round only after base
// has advanced a full window — i.e. well after the caller is done with it.
func (q *wakeQueue) take(round int64) []bucketWake {
	b := q.buckets[round&bucketMask]
	q.buckets[round&bucketMask] = b[:0]
	q.inRing -= len(b)
	return b
}

// migrate moves heap entries that advancing base has brought inside the
// window into their ring buckets.
func (q *wakeQueue) migrate() {
	for len(q.far) > 0 && q.far[0].round < q.base+bucketWindow {
		var e wakeEntry
		e, q.far = heapPopWake(q.far)
		q.buckets[e.round&bucketMask] = append(q.buckets[e.round&bucketMask], bucketWake{e.id, e.seq})
		q.inRing++
	}
}

func wakeLess(a, b wakeEntry) bool {
	if a.round != b.round {
		return a.round < b.round
	}
	return a.id < b.id
}

// heapPushWake / heapPopWake implement a plain binary min-heap on a typed
// slice: unlike container/heap there is no interface{} boxing, so pushing a
// wake entry does not allocate.
func heapPushWake(h []wakeEntry, e wakeEntry) []wakeEntry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !wakeLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

func heapPopWake(h []wakeEntry) (wakeEntry, []wakeEntry) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h) && wakeLess(h[l], h[s]) {
			s = l
		}
		if r < len(h) && wakeLess(h[r], h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return top, h
}
