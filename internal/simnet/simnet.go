// Package simnet implements the synchronous message-passing model of
// distributed computing used by the paper (CONGEST), together with its
// sleeping-model extension where nodes may sleep and messages sent to a
// sleeping node are lost (Section 1.2 of the paper).
//
// Each node runs a Program in its own coroutine and communicates with the
// engine through a Ctx. Execution proceeds in lock-step rounds:
//
//   - A node is awake in exactly the rounds in which it executes (each
//     yield point — Next, SleepUntil, WaitMessage — ends one awake round).
//   - A message sent in round r is received iff the destination is awake in
//     round r; it is handed to the destination at its next resume.
//   - In Congest mode all nodes are logically always awake: messages are
//     never lost and WaitMessage allows event-driven execution. The engine
//     still skips nodes with nothing to do; that is a simulation
//     optimization, not a model change.
//   - In Sleeping mode the engine counts each node's awake rounds — the
//     paper's energy measure — and drops messages to sleeping nodes.
//
// The engine is deterministic: nodes are resumed and their messages
// delivered in node-ID order, so a run is a pure function of the graph,
// the program, and the per-node inputs.
//
// # Execution core
//
// The scheduler is a calendar (bucket) queue: wakes in the near window are
// O(1) ring-bucket appends, and only far-future SleepUntil/WaitMessage
// deadlines fall back to a typed binary heap (see wakeQueue). Node programs
// are iter.Pull coroutines rather than channel-synchronized goroutines, so
// a resume/yield pair is a direct coroutine switch — no Go-scheduler round
// trip, channel locks, or park/unpark — and a node that merely calls Next()
// on an empty inbox costs little more than a function call.
//
// # Intra-round parallelism
//
// The model gives rounds no internal ordering semantics: within a round
// every awake node acts on the state it held at the round's start, and all
// sends land at the end of the round. The engine exploits exactly that
// independence when Config.Workers > 1: each round's batch of resumes fans
// out over a persistent worker pool (see resumePool), while everything with
// cross-node effects — queue updates, halt accounting, span attribution,
// message delivery, error selection — is deferred to a deterministic
// barrier that replays it on the engine goroutine in node-ID order. A
// parallel run is therefore byte-identical to a sequential one in Metrics,
// Outputs, Trace, span ledger, and error text (enforced by the oracle
// differential tests in this package).
//
// # Memory layout
//
// Per-node scheduling state (wake round, queue seq, yield kind, halted,
// park deadline) lives in struct-of-arrays form on the Engine, so the hot
// take/filter loops scan dense arrays instead of striding over the full
// node structs. Buffers are pooled across rounds: each node's inbox is
// double-buffered (see Ctx.Next for the resulting ownership rule) and
// outboxes are reused, with the initial buffers for all nodes carved from
// three shared degree-proportional arenas — at n=10^5 that is three
// allocations instead of ~3n, and growth past a node's carve falls back to
// the heap transparently. The trace buffer is preallocated from the edge
// count.
package simnet

import (
	"fmt"
	"iter"
	"slices"
	"sync"

	"dsssp/internal/graph"
)

// Model selects the execution model.
type Model int

// Execution models.
const (
	// Congest is the standard synchronous CONGEST model: all nodes are
	// always awake, messages are never lost.
	Congest Model = iota + 1
	// Sleeping is the sleeping (energy) model: nodes are awake only in the
	// rounds they execute, and messages to sleeping nodes are lost.
	Sleeping
)

func (m Model) String() string {
	switch m {
	case Congest:
		return "congest"
	case Sleeping:
		return "sleeping"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Config configures an Engine.
type Config struct {
	Model Model
	// MaxRounds aborts the run if the round counter exceeds it.
	// 0 means a generous default of 1<<40.
	MaxRounds int64
	// RecordTrace records one TraceEntry per message (for the APSP
	// scheduling analysis).
	RecordTrace bool
	// StrictCongest makes the run fail if more than one message crosses an
	// edge in the same direction in the same round (the literal CONGEST
	// constraint). Leave false for algorithms that multiplex subroutines
	// and rely on megaround accounting (Section 3.1.3).
	StrictCongest bool
	// MessageBits, if non-nil, estimates the wire size of every sent
	// message in bits; the maximum is reported in Metrics.MaxMessageBits.
	// Leave nil to skip the (reflection-heavy) measurement on hot paths.
	MessageBits func(msg any) int64
	// MaxMessageBits, when > 0 and MessageBits is set, is the strict
	// CONGEST bandwidth budget: the run fails loudly as soon as any single
	// message exceeds it. The paper's model allows O(log n)-bit messages;
	// callers derive the concrete budget from the graph (see
	// proto.BitBudget).
	MaxMessageBits int64
	// RecordSpans maintains the span ledger (see span.go): programs may
	// open/close named spans via Ctx, and the engine attributes every
	// round, message, awake round, and message bit measurement to exactly
	// one open span, reported in Metrics.Spans.
	RecordSpans bool
	// Workers sets the intra-round worker pool for this run. Within a
	// round every awake node acts independently, so the engine fans the
	// round's coroutine resumes out over Workers goroutines and re-merges
	// at a deterministic per-round barrier: queue updates, halts, span
	// attribution, and message delivery all replay on the engine goroutine
	// in node-ID order. Metrics, Outputs, Trace, the span ledger, and
	// error text are byte-identical to the sequential engine for every
	// value. 0 or 1 means sequential (the default); values above
	// runtime.GOMAXPROCS rarely help.
	Workers int
}

// Inbound is a received message.
type Inbound struct {
	From graph.NodeID
	// NbIndex is the receiver's adjacency index of the edge the message
	// arrived on.
	NbIndex int
	// Round is the round in which the message was sent (and received).
	Round int64
	Msg   any
}

// TraceEntry records one message for scheduling analysis.
type TraceEntry struct {
	Round int64
	Edge  graph.EdgeID
	// Dir is 0 if sent by the canonical (smaller-ID) endpoint, 1 otherwise.
	Dir byte
}

// Metrics aggregates the complexity measures the paper's theorems bound.
type Metrics struct {
	// Rounds is the number of rounds elapsed (last active round + 1).
	Rounds int64
	// StrictRounds is the runtime after expanding every round into
	// max(1, max_e per-direction load) strict CONGEST rounds (megaround
	// accounting, Section 3.1.3).
	StrictRounds int64
	// Messages is the total number of messages sent.
	Messages int64
	// LostMessages counts messages sent to sleeping nodes (Sleeping mode).
	LostMessages int64
	// DroppedAfterHalt counts messages sent to halted nodes.
	DroppedAfterHalt int64
	// MaxEdgeMessages is the maximum, over undirected edges, of the total
	// messages carried (both directions) — the paper's congestion measure.
	MaxEdgeMessages int64
	// MaxMessageBits is the largest single message observed, in bits
	// (0 unless Config.MessageBits was set) — the strict CONGEST
	// bandwidth measure.
	MaxMessageBits int64
	// TotalAwake is the sum over nodes of awake rounds.
	TotalAwake int64
	// MaxAwake is the maximum over nodes of awake rounds — the paper's
	// energy complexity measure.
	MaxAwake int64
	// PerEdgeMessages holds total messages per undirected edge.
	PerEdgeMessages []int64
	// PerNodeAwake holds awake rounds per node.
	PerNodeAwake []int64
	// Spans is the span ledger in first-open order (only when
	// Config.RecordSpans): Rounds/Messages/AwakeRounds partition the
	// corresponding totals above, MaxMessageBits is a per-span maximum.
	Spans []SpanMetrics
}

func (m *Metrics) String() string {
	return fmt.Sprintf("rounds=%d strict=%d msgs=%d lost=%d maxEdge=%d maxAwake=%d totalAwake=%d",
		m.Rounds, m.StrictRounds, m.Messages, m.LostMessages, m.MaxEdgeMessages, m.MaxAwake, m.TotalAwake)
}

// Program is the code run by every node. The Ctx gives access to the node's
// local view. A Program must only interact with the world through its Ctx;
// when it returns, the node halts.
type Program func(*Ctx)

// Result is the outcome of a completed run.
type Result struct {
	// Outputs holds the value each node passed to Ctx.SetOutput (nil if
	// none).
	Outputs []any
	Metrics Metrics
	// Trace holds per-message entries when Config.RecordTrace is set.
	Trace []TraceEntry
}

const defaultMaxRounds = int64(1) << 40

type yieldKind int8

const (
	yieldRun  yieldKind = iota + 1 // scheduled wake
	yieldPark                      // Congest WaitMessage
	yieldHalt                      // program returned
)

type outMsg struct {
	nbIndex int
	// span is the sender's open span at Send time (0 unless
	// Config.RecordSpans) — message attribution must not shift when a node
	// switches phases between sending and the end-of-round flush.
	span int32
	msg  any
}

// nodeState holds the per-node state the scheduler does not scan per entry:
// the coroutine handles, the message buffers, and the (cold) output/error/
// span fields. The hot scheduling scalars — kind, halted, wake round, park
// deadline, queue seq — live in struct-of-arrays form on the Engine, so the
// stale-entry filter and batch loops touch dense arrays only.
type nodeState struct {
	id graph.NodeID

	// resume/stop drive the node's iter.Pull coroutine; yieldFn is the
	// coroutine's yield, stashed so Ctx.yield can switch back to the
	// engine. yieldFn returning false means the engine called stop — the
	// node must unwind (Ctx.yield panics errKilled, recovered in the
	// coroutine wrapper).
	resume  func() (struct{}, bool)
	stop    func()
	yieldFn func(struct{}) bool

	// ctx is the node's handle, embedded to avoid a separate allocation
	// per node.
	ctx Ctx

	inbox []Inbound
	// spare is the inbox double-buffer: the slice handed out at the last
	// take becomes the fill buffer at the next one (see Ctx.take), so
	// steady-state message delivery stops allocating.
	spare  []Inbound
	outbox []outMsg

	output any
	perr   error

	// spanStack holds the node's open ledger spans (innermost last); empty
	// means the root span. Unused unless Config.RecordSpans.
	spanStack []int32
	// openSeq counts this node's OpenSpan calls; combined with the wake
	// round and node ID it forms the deterministic first-open key that
	// lets parallel runs reproduce the sequential ledger order (span.go).
	openSeq int64
	// resumeSpan is the span the node was in when the engine resumed it
	// this round, captured before the resume runs so the post-barrier pass
	// can attribute the awake round without re-reading mutated state.
	resumeSpan int32
}

// Engine executes one Program on every node of a graph.
type Engine struct {
	g   *graph.Graph
	cfg Config

	nodes []nodeState

	// Struct-of-arrays scheduling state, indexed by node ID (see nodeState).
	// During a parallel resume phase workers write only their own nodes'
	// elements; everything else happens on the engine goroutine.
	kind         []yieldKind
	halted       []bool
	wakeRound    []int64
	parkDeadline []int64 // <0: none
	seq          []int64 // invalidates stale queue entries
	awakeEpoch   []int64

	// met points at the in-flight run's metrics (resumeOne needs the
	// per-node awake counters).
	met *Metrics

	// revFlat[revOff[u]+i] is the neighbor's adjacency index of the edge
	// that is u's i-th edge (flat layout; EdgeIDs and adjacency offsets are
	// dense, so no map is needed).
	revOff  []int32
	revFlat []int32

	// pool is the intra-round worker pool, non-nil only while a parallel
	// Run drives the round loop (Config.Workers > 1).
	pool *resumePool

	// Span ledger (Config.RecordSpans): interned (name, depth) spans and
	// their counters; index 0 is the root span every node starts in. In a
	// parallel run spanMu guards interning (the one engine-shared mutation
	// node programs perform) and spanFirst tracks each span's minimal
	// (round, node, open-seq) key, which reproduces the sequential
	// first-open order at ledger-emit time.
	spanIDs   map[spanKey]int32
	spans     []SpanMetrics
	spanMu    sync.Mutex
	spanFirst []spanFirstKey
}

// New creates an engine for one run over g. The graph must have sorted
// adjacency lists (all generators guarantee this).
func New(g *graph.Graph, cfg Config) *Engine {
	if cfg.Model != Congest && cfg.Model != Sleeping {
		panic("simnet: config needs an explicit Model")
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = defaultMaxRounds
	}
	e := &Engine{g: g, cfg: cfg}
	e.buildReverseIndex()
	return e
}

func (e *Engine) buildReverseIndex() {
	g := e.g
	n := g.N()
	e.revOff = make([]int32, n+1)
	for u := 0; u < n; u++ {
		e.revOff[u+1] = e.revOff[u] + int32(g.Degree(graph.NodeID(u)))
	}
	e.revFlat = make([]int32, e.revOff[n])
	// slots[id] remembers the first-seen endpoint of edge id; EdgeIDs are
	// dense 0..m-1, so a flat slice replaces a map here.
	type slot struct {
		u    graph.NodeID
		iAdj int32
	}
	slots := make([]slot, g.M())
	for i := range slots {
		slots[i].u = -1
	}
	for u := 0; u < n; u++ {
		off := e.revOff[u]
		for i, h := range g.Adj(graph.NodeID(u)) {
			if s := slots[h.ID]; s.u >= 0 {
				e.revFlat[off+int32(i)] = s.iAdj
				e.revFlat[e.revOff[s.u]+s.iAdj] = int32(i)
			} else {
				slots[h.ID] = slot{graph.NodeID(u), int32(i)}
			}
		}
	}
}

// start allocates the per-node state and wraps every node's program in an
// iter.Pull coroutine (started lazily at its first resume). Shared by the
// production scheduler and the frozen oracle scheduler in the tests.
func (e *Engine) start(p Program) *Result {
	n := e.g.N()
	e.nodes = make([]nodeState, n)
	e.kind = make([]yieldKind, n)
	e.halted = make([]bool, n)
	e.wakeRound = make([]int64, n)
	e.parkDeadline = make([]int64, n)
	e.seq = make([]int64, n)
	res := &Result{Outputs: make([]any, n)}
	res.Metrics.PerEdgeMessages = make([]int64, e.g.M())
	res.Metrics.PerNodeAwake = make([]int64, n)
	if e.cfg.RecordTrace {
		// The paper's algorithms carry polylog messages per edge; a few
		// multiples of m absorbs the common case without growth cascades.
		res.Trace = make([]TraceEntry, 0, 4*e.g.M()+16)
	}
	if e.cfg.RecordSpans {
		e.spanIDs = make(map[spanKey]int32)
		e.internSpan(RootSpanName, 0)
	}
	// Buffer arenas: the initial inbox/spare/outbox capacity of every node
	// is carved out of three shared chunks sized by degree (a node rarely
	// holds more than one message per incident edge per wake). Three
	// allocations replace ~3n individually grown slices at large n; a node
	// that outgrows its carve reallocates to the heap via plain append.
	total := 2 * e.g.M()
	inArena := make([]Inbound, 0, total)
	spArena := make([]Inbound, 0, total)
	outArena := make([]outMsg, 0, total)
	off := 0
	for i := 0; i < n; i++ {
		ns := &e.nodes[i]
		ns.id = graph.NodeID(i)
		deg := e.g.Degree(graph.NodeID(i))
		ns.inbox = inArena[off : off : off+deg]
		ns.spare = spArena[off : off : off+deg]
		ns.outbox = outArena[off : off : off+deg]
		off += deg
		ns.ctx = Ctx{eng: e, ns: ns}
		ns.resume, ns.stop = iter.Pull(func(yield func(struct{}) bool) {
			ns.yieldFn = yield
			defer func() {
				if r := recover(); r != nil {
					if r == errKilled {
						// Engine-initiated shutdown; unwind quietly.
						return
					}
					ns.perr = fmt.Errorf("node %d panicked: %v", ns.id, r)
				}
				e.kind[ns.id] = yieldHalt
			}()
			p(&ns.ctx)
		})
	}
	return res
}

// resumeOne performs the node-local half of one wake: epoch/awake counters,
// the span snapshot, the round stamp, and the coroutine switch itself. It
// touches only state owned by node id (distinct array elements, the node's
// own struct), which is what makes it safe to run for all batched nodes
// concurrently; every cross-node effect waits for the post-barrier pass.
func (e *Engine) resumeOne(id graph.NodeID, cur int64) {
	ns := &e.nodes[id]
	e.awakeEpoch[id] = cur
	e.met.PerNodeAwake[id]++
	if e.cfg.RecordSpans {
		ns.resumeSpan = ns.curSpan()
	}
	e.wakeRound[id] = cur
	ns.resume()
}

// Run executes the program on all nodes until every node halts (or an error
// such as deadlock, round overflow, or a node panic occurs). Run may be
// called only once per Engine.
func (e *Engine) Run(p Program) (*Result, error) {
	res := e.start(p)
	defer e.shutdown()
	e.met = &res.Metrics

	if e.cfg.Workers > 1 {
		e.pool = newResumePool(e, e.cfg.Workers)
		defer e.pool.close()
		if e.cfg.RecordSpans {
			// The root span was interned in start, before parallel keying
			// was active; pin it to the minimal key so it stays first.
			e.spanFirst = append(e.spanFirst, spanFirstKey{round: -1, node: -1})
		}
	}

	n := e.g.N()
	met := &res.Metrics
	q := &wakeQueue{}
	// All nodes wake at round 0.
	for i := 0; i < n; i++ {
		q.push(0, graph.NodeID(i), 0)
	}

	halted := 0
	parked := 0
	// Per-round directed-edge load tracking (epoch trick).
	dirLoad := make([]int64, 2*e.g.M())
	dirSeen := make([]int64, 2*e.g.M())
	for i := range dirSeen {
		dirSeen[i] = -1
	}
	e.awakeEpoch = make([]int64, n)
	for i := range e.awakeEpoch {
		e.awakeEpoch[i] = -1
	}

	var cur int64 = -1
	spanPrev := int64(-1) // last round whose elapsed interval was attributed
	batch := make([]graph.NodeID, 0, n)
	for halted < n {
		r, ok := q.next()
		if !ok {
			if parked > 0 {
				return nil, fmt.Errorf("simnet: deadlock at round %d: %d node(s) parked in WaitMessage with no pending wakeups", cur, parked)
			}
			return nil, fmt.Errorf("simnet: internal error: no wakeups and %d unhalted nodes", n-halted)
		}
		cur = r
		if cur > e.cfg.MaxRounds {
			return nil, fmt.Errorf("simnet: exceeded MaxRounds=%d", e.cfg.MaxRounds)
		}
		batch = batch[:0]
		for _, bw := range q.take(cur) {
			if e.halted[bw.id] || e.seq[bw.id] != bw.seq {
				continue // stale entry
			}
			if e.kind[bw.id] == yieldPark {
				// Deadline expiry of a parked node.
				e.kind[bw.id] = yieldRun
				parked--
			}
			batch = append(batch, bw.id)
		}
		// Resume each awake node in ID order (bucket entries arrive in
		// push order, so sort; singleton batches — the common case — skip
		// it).
		if len(batch) > 1 {
			slices.Sort(batch)
		}
		// Attribute the elapsed interval ending at this round to the span
		// of the earliest-resumed node (see span.go: the rule that makes
		// per-span rounds an exact partition of Metrics.Rounds). Read
		// before any resume mutates span stacks.
		if e.cfg.RecordSpans && len(batch) > 0 {
			e.spans[e.nodes[batch[0]].curSpan()].Rounds += cur - spanPrev
			spanPrev = cur
		}
		// Resume phase: within the round every batched node acts
		// independently, so the coroutine resumes may run concurrently.
		// Small batches stay inline — the barrier handoff would cost more
		// than it buys.
		if e.pool != nil && len(batch) >= e.pool.minBatch {
			e.pool.runRound(batch, cur)
		} else {
			for _, id := range batch {
				e.resumeOne(id, cur)
			}
		}
		// Post-barrier pass in node-ID order: exactly the engine-side
		// effects the sequential engine interleaves with the resumes —
		// error selection (lowest node ID wins, matching the order the
		// sequential engine hits a panic in), awake/span accounting, halt
		// bookkeeping, and wake-queue pushes.
		for _, id := range batch {
			ns := &e.nodes[id]
			if ns.perr != nil {
				e.halted[id] = true // coroutine has exited
				return nil, ns.perr
			}
			met.TotalAwake++
			if e.cfg.RecordSpans {
				e.spans[ns.resumeSpan].AwakeRounds++
			}
			switch e.kind[id] {
			case yieldHalt:
				e.halted[id] = true
				halted++
				res.Outputs[id] = ns.output
			case yieldPark:
				parked++
				if e.parkDeadline[id] >= 0 {
					e.seq[id]++
					q.push(e.parkDeadline[id], id, e.seq[id])
				}
			case yieldRun:
				e.seq[id]++
				q.push(e.wakeRound[id], id, e.seq[id])
			}
		}
		// Deliver this round's messages in sender-ID order.
		var maxLoad int64 = 1
		for _, id := range batch {
			ns := &e.nodes[id]
			if len(ns.outbox) == 0 {
				continue
			}
			adj := e.g.Adj(id)
			rev := e.revFlat[e.revOff[id]:]
			for _, om := range ns.outbox {
				h := adj[om.nbIndex]
				met.Messages++
				met.PerEdgeMessages[h.ID]++
				if e.cfg.RecordSpans {
					e.spans[om.span].Messages++
				}
				if e.cfg.MessageBits != nil {
					b := e.cfg.MessageBits(om.msg)
					if b > met.MaxMessageBits {
						met.MaxMessageBits = b
					}
					if e.cfg.RecordSpans && b > e.spans[om.span].MaxMessageBits {
						e.spans[om.span].MaxMessageBits = b
					}
					if e.cfg.MaxMessageBits > 0 && b > e.cfg.MaxMessageBits {
						return nil, fmt.Errorf(
							"simnet: strict CONGEST violation: node %d sent a %d-bit message (%T) over edge %d in round %d, exceeding the %d-bit budget",
							id, b, om.msg, h.ID, cur, e.cfg.MaxMessageBits)
					}
				}
				dirBit := int64(0)
				if id > h.To {
					dirBit = 1
				}
				di := 2*int64(h.ID) + dirBit
				if dirSeen[di] != cur {
					dirSeen[di] = cur
					dirLoad[di] = 0
				}
				dirLoad[di]++
				if dirLoad[di] > maxLoad {
					maxLoad = dirLoad[di]
				}
				if e.cfg.StrictCongest && dirLoad[di] > 1 {
					return nil, fmt.Errorf("simnet: strict CONGEST violation on edge %d (round %d)", h.ID, cur)
				}
				if e.cfg.RecordTrace {
					res.Trace = append(res.Trace, TraceEntry{cur, h.ID, byte(dirBit)})
				}
				switch {
				case e.halted[h.To]:
					met.DroppedAfterHalt++
				case e.cfg.Model == Sleeping && e.awakeEpoch[h.To] != cur:
					met.LostMessages++
				default:
					dst := &e.nodes[h.To]
					dst.inbox = append(dst.inbox, Inbound{
						From:    id,
						NbIndex: int(rev[om.nbIndex]),
						Round:   cur,
						Msg:     om.msg,
					})
					if e.kind[h.To] == yieldPark {
						e.kind[h.To] = yieldRun
						e.wakeRound[h.To] = cur + 1
						e.seq[h.To]++
						parked--
						q.push(cur+1, h.To, e.seq[h.To])
					}
				}
			}
			ns.outbox = ns.outbox[:0]
		}
		met.StrictRounds += maxLoad - 1
	}
	met.Rounds = cur + 1
	met.StrictRounds += met.Rounds
	for _, c := range met.PerEdgeMessages {
		if c > met.MaxEdgeMessages {
			met.MaxEdgeMessages = c
		}
	}
	for _, a := range met.PerNodeAwake {
		if a > met.MaxAwake {
			met.MaxAwake = a
		}
	}
	if e.cfg.RecordSpans {
		met.Spans = e.ledger()
	}
	return res, nil
}

// shutdown terminates any still-live node coroutines: stop makes the
// coroutine's pending (or next) yield return false, which Ctx.yield turns
// into an errKilled unwind. Safe on halted and never-started nodes.
func (e *Engine) shutdown() {
	for i := range e.nodes {
		e.nodes[i].stop()
	}
}

type killSentinel struct{}

func (killSentinel) Error() string { return "simnet: engine shut down" }

var errKilled error = killSentinel{}
