// Package simnet implements the synchronous message-passing model of
// distributed computing used by the paper (CONGEST), together with its
// sleeping-model extension where nodes may sleep and messages sent to a
// sleeping node are lost (Section 1.2 of the paper).
//
// Each node runs a Program in its own goroutine and communicates with the
// engine through a Ctx. Execution proceeds in lock-step rounds:
//
//   - A node is awake in exactly the rounds in which it executes (each
//     yield point — Next, SleepUntil, WaitMessage — ends one awake round).
//   - A message sent in round r is received iff the destination is awake in
//     round r; it is handed to the destination at its next resume.
//   - In Congest mode all nodes are logically always awake: messages are
//     never lost and WaitMessage allows event-driven execution. The engine
//     still skips nodes with nothing to do; that is a simulation
//     optimization, not a model change.
//   - In Sleeping mode the engine counts each node's awake rounds — the
//     paper's energy measure — and drops messages to sleeping nodes.
//
// The engine is deterministic: nodes are resumed and their messages
// delivered in node-ID order, so a run is a pure function of the graph,
// the program, and the per-node inputs.
package simnet

import (
	"container/heap"
	"fmt"

	"dsssp/internal/graph"
)

// Model selects the execution model.
type Model int

// Execution models.
const (
	// Congest is the standard synchronous CONGEST model: all nodes are
	// always awake, messages are never lost.
	Congest Model = iota + 1
	// Sleeping is the sleeping (energy) model: nodes are awake only in the
	// rounds they execute, and messages to sleeping nodes are lost.
	Sleeping
)

func (m Model) String() string {
	switch m {
	case Congest:
		return "congest"
	case Sleeping:
		return "sleeping"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Config configures an Engine.
type Config struct {
	Model Model
	// MaxRounds aborts the run if the round counter exceeds it.
	// 0 means a generous default of 1<<40.
	MaxRounds int64
	// RecordTrace records one TraceEntry per message (for the APSP
	// scheduling analysis).
	RecordTrace bool
	// StrictCongest makes the run fail if more than one message crosses an
	// edge in the same direction in the same round (the literal CONGEST
	// constraint). Leave false for algorithms that multiplex subroutines
	// and rely on megaround accounting (Section 3.1.3).
	StrictCongest bool
	// MessageBits, if non-nil, estimates the wire size of every sent
	// message in bits; the maximum is reported in Metrics.MaxMessageBits.
	// Leave nil to skip the (reflection-heavy) measurement on hot paths.
	MessageBits func(msg any) int64
	// MaxMessageBits, when > 0 and MessageBits is set, is the strict
	// CONGEST bandwidth budget: the run fails loudly as soon as any single
	// message exceeds it. The paper's model allows O(log n)-bit messages;
	// callers derive the concrete budget from the graph (see
	// proto.BitBudget).
	MaxMessageBits int64
}

// Inbound is a received message.
type Inbound struct {
	From graph.NodeID
	// NbIndex is the receiver's adjacency index of the edge the message
	// arrived on.
	NbIndex int
	// Round is the round in which the message was sent (and received).
	Round int64
	Msg   any
}

// TraceEntry records one message for scheduling analysis.
type TraceEntry struct {
	Round int64
	Edge  graph.EdgeID
	// Dir is 0 if sent by the canonical (smaller-ID) endpoint, 1 otherwise.
	Dir byte
}

// Metrics aggregates the complexity measures the paper's theorems bound.
type Metrics struct {
	// Rounds is the number of rounds elapsed (last active round + 1).
	Rounds int64
	// StrictRounds is the runtime after expanding every round into
	// max(1, max_e per-direction load) strict CONGEST rounds (megaround
	// accounting, Section 3.1.3).
	StrictRounds int64
	// Messages is the total number of messages sent.
	Messages int64
	// LostMessages counts messages sent to sleeping nodes (Sleeping mode).
	LostMessages int64
	// DroppedAfterHalt counts messages sent to halted nodes.
	DroppedAfterHalt int64
	// MaxEdgeMessages is the maximum, over undirected edges, of the total
	// messages carried (both directions) — the paper's congestion measure.
	MaxEdgeMessages int64
	// MaxMessageBits is the largest single message observed, in bits
	// (0 unless Config.MessageBits was set) — the strict CONGEST
	// bandwidth measure.
	MaxMessageBits int64
	// TotalAwake is the sum over nodes of awake rounds.
	TotalAwake int64
	// MaxAwake is the maximum over nodes of awake rounds — the paper's
	// energy complexity measure.
	MaxAwake int64
	// PerEdgeMessages holds total messages per undirected edge.
	PerEdgeMessages []int64
	// PerNodeAwake holds awake rounds per node.
	PerNodeAwake []int64
}

func (m *Metrics) String() string {
	return fmt.Sprintf("rounds=%d strict=%d msgs=%d lost=%d maxEdge=%d maxAwake=%d totalAwake=%d",
		m.Rounds, m.StrictRounds, m.Messages, m.LostMessages, m.MaxEdgeMessages, m.MaxAwake, m.TotalAwake)
}

// Program is the code run by every node. The Ctx gives access to the node's
// local view. A Program must only interact with the world through its Ctx;
// when it returns, the node halts.
type Program func(*Ctx)

// Result is the outcome of a completed run.
type Result struct {
	// Outputs holds the value each node passed to Ctx.SetOutput (nil if
	// none).
	Outputs []any
	Metrics Metrics
	// Trace holds per-message entries when Config.RecordTrace is set.
	Trace []TraceEntry
}

const defaultMaxRounds = int64(1) << 40

type yieldKind int

const (
	yieldRun  yieldKind = iota + 1 // scheduled wake
	yieldPark                      // Congest WaitMessage
	yieldHalt                      // program returned
)

type outMsg struct {
	nbIndex int
	msg     any
}

type nodeState struct {
	id     graph.NodeID
	resume chan struct{}
	yield  chan struct{}

	inbox  []Inbound
	outbox []outMsg

	kind         yieldKind
	wakeRound    int64
	parkDeadline int64 // <0: none
	seq          int64 // invalidates stale heap entries
	halted       bool
	output       any
	perr         error
}

// Engine executes one Program on every node of a graph.
type Engine struct {
	g   *graph.Graph
	cfg Config

	nodes []*nodeState
	// rev[u][i] is v's adjacency index of the edge that is u's i-th edge.
	rev [][]int32

	killed bool
}

// New creates an engine for one run over g. The graph must have sorted
// adjacency lists (all generators guarantee this).
func New(g *graph.Graph, cfg Config) *Engine {
	if cfg.Model != Congest && cfg.Model != Sleeping {
		panic("simnet: config needs an explicit Model")
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = defaultMaxRounds
	}
	e := &Engine{g: g, cfg: cfg}
	e.buildReverseIndex()
	return e
}

func (e *Engine) buildReverseIndex() {
	g := e.g
	// For each edge, remember each endpoint's adjacency index.
	type slot struct {
		u    graph.NodeID
		iAdj int32
	}
	firstSeen := make(map[graph.EdgeID]slot, g.M())
	e.rev = make([][]int32, g.N())
	for u := 0; u < g.N(); u++ {
		e.rev[u] = make([]int32, g.Degree(graph.NodeID(u)))
	}
	for u := 0; u < g.N(); u++ {
		for i, h := range g.Adj(graph.NodeID(u)) {
			if s, ok := firstSeen[h.ID]; ok {
				e.rev[u][i] = s.iAdj
				e.rev[s.u][s.iAdj] = int32(i)
			} else {
				firstSeen[h.ID] = slot{graph.NodeID(u), int32(i)}
			}
		}
	}
}

type wakeEntry struct {
	round int64
	id    graph.NodeID
	seq   int64
}

type wakeHeap []wakeEntry

func (h wakeHeap) Len() int { return len(h) }
func (h wakeHeap) Less(i, j int) bool {
	if h[i].round != h[j].round {
		return h[i].round < h[j].round
	}
	return h[i].id < h[j].id
}
func (h wakeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wakeHeap) Push(x interface{}) { *h = append(*h, x.(wakeEntry)) }
func (h *wakeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run executes the program on all nodes until every node halts (or an error
// such as deadlock, round overflow, or a node panic occurs). Run may be
// called only once per Engine.
func (e *Engine) Run(p Program) (*Result, error) {
	n := e.g.N()
	e.nodes = make([]*nodeState, n)
	res := &Result{
		Outputs: make([]any, n),
	}
	met := &res.Metrics
	met.PerEdgeMessages = make([]int64, e.g.M())
	met.PerNodeAwake = make([]int64, n)

	for i := 0; i < n; i++ {
		ns := &nodeState{
			id:     graph.NodeID(i),
			resume: make(chan struct{}),
			yield:  make(chan struct{}),
		}
		e.nodes[i] = ns
		ctx := &Ctx{eng: e, ns: ns}
		go func(ns *nodeState, ctx *Ctx) {
			defer func() {
				if r := recover(); r != nil {
					if r == errKilled {
						// Engine-initiated shutdown; exit quietly
						// without another yield handshake.
						return
					}
					ns.perr = fmt.Errorf("node %d panicked: %v", ns.id, r)
				}
				ns.kind = yieldHalt
				ns.yield <- struct{}{}
			}()
			<-ns.resume
			if e.killed {
				panic(errKilled)
			}
			p(ctx)
		}(ns, ctx)
	}

	// All nodes wake at round 0.
	wh := make(wakeHeap, 0, n)
	for i := 0; i < n; i++ {
		wh = append(wh, wakeEntry{0, graph.NodeID(i), 0})
	}
	heap.Init(&wh)

	halted := 0
	parked := 0
	// Per-round directed-edge load tracking (epoch trick).
	dirLoad := make([]int64, 2*e.g.M())
	dirSeen := make([]int64, 2*e.g.M())
	for i := range dirSeen {
		dirSeen[i] = -1
	}
	awakeEpoch := make([]int64, n)
	for i := range awakeEpoch {
		awakeEpoch[i] = -1
	}

	defer e.shutdown()

	var cur int64 = -1
	batch := make([]graph.NodeID, 0, n)
	for halted < n {
		if wh.Len() == 0 {
			if parked > 0 {
				return nil, fmt.Errorf("simnet: deadlock at round %d: %d node(s) parked in WaitMessage with no pending wakeups", cur, parked)
			}
			return nil, fmt.Errorf("simnet: internal error: no wakeups and %d unhalted nodes", n-halted)
		}
		cur = wh[0].round
		if cur > e.cfg.MaxRounds {
			return nil, fmt.Errorf("simnet: exceeded MaxRounds=%d", e.cfg.MaxRounds)
		}
		batch = batch[:0]
		for wh.Len() > 0 && wh[0].round == cur {
			we := heap.Pop(&wh).(wakeEntry)
			ns := e.nodes[we.id]
			if ns.halted || ns.seq != we.seq {
				continue // stale entry
			}
			if ns.kind == yieldPark {
				// Deadline expiry of a parked node.
				ns.kind = yieldRun
				parked--
			}
			batch = append(batch, we.id)
		}
		// Resume each awake node in ID order (heap pops give ID order for
		// equal rounds).
		for _, id := range batch {
			ns := e.nodes[id]
			awakeEpoch[id] = cur
			met.PerNodeAwake[id]++
			met.TotalAwake++
			ns.wakeRound = cur
			ns.resume <- struct{}{}
			<-ns.yield
			if ns.perr != nil {
				ns.halted = true // goroutine has exited
				return nil, ns.perr
			}
			switch ns.kind {
			case yieldHalt:
				ns.halted = true
				halted++
				res.Outputs[id] = ns.output
			case yieldPark:
				parked++
				if ns.parkDeadline >= 0 {
					ns.seq++
					heap.Push(&wh, wakeEntry{ns.parkDeadline, id, ns.seq})
				}
			case yieldRun:
				ns.seq++
				heap.Push(&wh, wakeEntry{ns.wakeRound, id, ns.seq})
			}
		}
		// Deliver this round's messages in sender-ID order.
		var maxLoad int64 = 1
		for _, id := range batch {
			ns := e.nodes[id]
			if len(ns.outbox) == 0 {
				continue
			}
			adj := e.g.Adj(id)
			for _, om := range ns.outbox {
				h := adj[om.nbIndex]
				met.Messages++
				met.PerEdgeMessages[h.ID]++
				if e.cfg.MessageBits != nil {
					b := e.cfg.MessageBits(om.msg)
					if b > met.MaxMessageBits {
						met.MaxMessageBits = b
					}
					if e.cfg.MaxMessageBits > 0 && b > e.cfg.MaxMessageBits {
						return nil, fmt.Errorf(
							"simnet: strict CONGEST violation: node %d sent a %d-bit message (%T) over edge %d in round %d, exceeding the %d-bit budget",
							id, b, om.msg, h.ID, cur, e.cfg.MaxMessageBits)
					}
				}
				dirBit := int64(0)
				if id > h.To {
					dirBit = 1
				}
				di := 2*int64(h.ID) + dirBit
				if dirSeen[di] != cur {
					dirSeen[di] = cur
					dirLoad[di] = 0
				}
				dirLoad[di]++
				if dirLoad[di] > maxLoad {
					maxLoad = dirLoad[di]
				}
				if e.cfg.StrictCongest && dirLoad[di] > 1 {
					return nil, fmt.Errorf("simnet: strict CONGEST violation on edge %d (round %d)", h.ID, cur)
				}
				if e.cfg.RecordTrace {
					res.Trace = append(res.Trace, TraceEntry{cur, h.ID, byte(dirBit)})
				}
				dst := e.nodes[h.To]
				switch {
				case dst.halted:
					met.DroppedAfterHalt++
				case e.cfg.Model == Sleeping && awakeEpoch[h.To] != cur:
					met.LostMessages++
				default:
					dst.inbox = append(dst.inbox, Inbound{
						From:    id,
						NbIndex: int(e.rev[id][om.nbIndex]),
						Round:   cur,
						Msg:     om.msg,
					})
					if dst.kind == yieldPark {
						dst.kind = yieldRun
						dst.wakeRound = cur + 1
						dst.seq++
						parked--
						heap.Push(&wh, wakeEntry{cur + 1, h.To, dst.seq})
					}
				}
			}
			ns.outbox = ns.outbox[:0]
		}
		met.StrictRounds += maxLoad - 1
	}
	met.Rounds = cur + 1
	met.StrictRounds += met.Rounds
	for _, c := range met.PerEdgeMessages {
		if c > met.MaxEdgeMessages {
			met.MaxEdgeMessages = c
		}
	}
	for _, a := range met.PerNodeAwake {
		if a > met.MaxAwake {
			met.MaxAwake = a
		}
	}
	return res, nil
}

// shutdown unblocks and terminates any still-running node goroutines.
func (e *Engine) shutdown() {
	e.killed = true
	for _, ns := range e.nodes {
		if ns == nil || ns.halted {
			continue
		}
		// The node is blocked waiting for resume (yieldRun/yieldPark) or
		// has already delivered a halt yield consumed above. Resume it so
		// it can observe the kill flag and exit.
	drain:
		for {
			select {
			case ns.resume <- struct{}{}:
				// It will panic(errKilled) and exit without yielding.
				break drain
			case <-ns.yield:
				if ns.kind == yieldHalt {
					ns.halted = true
					break drain
				}
			}
		}
	}
}

type killSentinel struct{}

func (killSentinel) Error() string { return "simnet: engine shut down" }

var errKilled error = killSentinel{}
