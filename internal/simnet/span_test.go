package simnet

import (
	"reflect"
	"strings"
	"testing"

	"dsssp/internal/graph"
)

func spanByName(t *testing.T, spans []SpanMetrics, name string, depth int) SpanMetrics {
	t.Helper()
	for _, s := range spans {
		if s.Name == name && s.Depth == depth {
			return s
		}
	}
	t.Fatalf("span (%q, %d) missing from ledger %+v", name, depth, spans)
	return SpanMetrics{}
}

// checkSpanConservation asserts the ledger partition invariants against the
// global metrics: rounds, messages, and awake rounds sum exactly; message
// bits agree on the maximum.
func checkSpanConservation(t *testing.T, met Metrics) {
	t.Helper()
	var rounds, msgs, awake, bits int64
	for _, s := range met.Spans {
		rounds += s.Rounds
		msgs += s.Messages
		awake += s.AwakeRounds
		if s.MaxMessageBits > bits {
			bits = s.MaxMessageBits
		}
	}
	if rounds != met.Rounds {
		t.Errorf("span rounds sum %d != Metrics.Rounds %d", rounds, met.Rounds)
	}
	if msgs != met.Messages {
		t.Errorf("span messages sum %d != Metrics.Messages %d", msgs, met.Messages)
	}
	if awake != met.TotalAwake {
		t.Errorf("span awake sum %d != Metrics.TotalAwake %d", awake, met.TotalAwake)
	}
	if bits != met.MaxMessageBits {
		t.Errorf("span bits max %d != Metrics.MaxMessageBits %d", bits, met.MaxMessageBits)
	}
}

// TestSpanAttribution runs a two-phase program and checks every counter
// lands in the span that was open when the engine accounted it.
func TestSpanAttribution(t *testing.T) {
	g := graph.Path(3, graph.UnitWeights)
	eng := New(g, Config{Model: Congest, RecordSpans: true, MessageBits: func(any) int64 { return 7 }})
	res, err := eng.Run(func(c *Ctx) {
		// Round 0 (root span): everyone idles one round.
		c.Next()
		// Phase "a" at depth 0: each node messages its neighbors, then
		// receives (round 2).
		c.OpenSpan("a", 0)
		for i := 0; i < c.Degree(); i++ {
			c.Send(i, "hi")
		}
		c.Next()
		c.CloseSpan()
		// Phase "b" at depth 1: node 0 sleeps two extra rounds so the
		// elapsed interval is attributed to b (node 0 is the
		// earliest-resumed node of round 5).
		c.OpenSpan("b", 1)
		if c.ID() == 0 {
			c.SleepUntil(c.Round() + 3)
		}
		c.CloseSpan()
	})
	if err != nil {
		t.Fatal(err)
	}
	met := res.Metrics
	checkSpanConservation(t, met)

	root := spanByName(t, met.Spans, RootSpanName, 0)
	a := spanByName(t, met.Spans, "a", 0)
	b := spanByName(t, met.Spans, "b", 1)
	// Messages: all 4 (2 per inner edge direction… path of 3 has 2 edges,
	// each endpoint sends on each incident edge: degree sum = 4) sent
	// inside "a".
	if a.Messages != 4 || root.Messages != 0 || b.Messages != 0 {
		t.Errorf("message attribution: root=%d a=%d b=%d, want 0/4/0", root.Messages, a.Messages, b.Messages)
	}
	if a.MaxMessageBits != 7 || b.MaxMessageBits != 0 {
		t.Errorf("bit attribution: a=%d b=%d, want 7/0", a.MaxMessageBits, b.MaxMessageBits)
	}
	// Awake rounds attribute to the span the node yielded in — the phase
	// that scheduled the wake. Rounds 0 and 1 were scheduled from the root
	// span (round 1's wake comes from the Next() before "a" opens), round
	// 2 from inside "a", and node 0's round-5 wake from inside "b".
	if root.AwakeRounds != 6 || a.AwakeRounds != 3 || b.AwakeRounds != 1 {
		t.Errorf("awake attribution: root=%d a=%d b=%d, want 6/3/1", root.AwakeRounds, a.AwakeRounds, b.AwakeRounds)
	}
	// Round intervals: rounds 0–1 belong to root, round 2 to "a", and the
	// 3-round sleep interval ending at round 5 to "b".
	if root.Rounds != 2 || a.Rounds != 1 || b.Rounds != 3 {
		t.Errorf("round attribution: root=%d a=%d b=%d, want 2/1/3", root.Rounds, a.Rounds, b.Rounds)
	}
}

// TestSpanUnmatchedClose: closing without an open span is a program bug the
// engine must surface as a node panic, not silent corruption.
func TestSpanUnmatchedClose(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	eng := New(g, Config{Model: Congest, RecordSpans: true})
	_, err := eng.Run(func(c *Ctx) { c.CloseSpan() })
	if err == nil || !strings.Contains(err.Error(), "CloseSpan without an open span") {
		t.Fatalf("err = %v, want unmatched-close panic", err)
	}
}

// TestSpanDisabledNoLedger: without RecordSpans the span calls are no-ops
// and the ledger stays empty, so existing Metrics comparisons (the oracle
// equivalence suite) see identical structs.
func TestSpanDisabledNoLedger(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	eng := New(g, Config{Model: Congest})
	res, err := eng.Run(func(c *Ctx) {
		c.OpenSpan("a", 0)
		c.Next()
		c.CloseSpan()
		c.CloseSpan() // would panic if the ledger were active
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Spans != nil {
		t.Fatalf("ledger recorded despite RecordSpans=false: %+v", res.Metrics.Spans)
	}
}

// TestSpanSleepingModel: the ledger works identically in the sleeping
// model, where skipped rounds (sleep intervals) dominate.
func TestSpanSleepingModel(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	eng := New(g, Config{Model: Sleeping, RecordSpans: true})
	res, err := eng.Run(func(c *Ctx) {
		c.OpenSpan("work", 2)
		c.SleepUntil(10 + int64(c.ID()))
		c.CloseSpan()
	})
	if err != nil {
		t.Fatal(err)
	}
	checkSpanConservation(t, res.Metrics)
	w := spanByName(t, res.Metrics.Spans, "work", 2)
	if w.Rounds == 0 || w.AwakeRounds != 2 {
		t.Errorf("work span = %+v, want the sleep interval and 2 awake rounds", w)
	}
}

func TestMergeSpans(t *testing.T) {
	a := []SpanMetrics{
		{Name: "cutter", Depth: 1, Rounds: 10, Messages: 5, AwakeRounds: 3, MaxMessageBits: 40},
		{Name: "run", Depth: 0, Rounds: 1},
	}
	b := []SpanMetrics{
		{Name: "cutter", Depth: 1, Rounds: 7, Messages: 2, AwakeRounds: 1, MaxMessageBits: 55},
		{Name: "barrier", Depth: 0, Rounds: 4},
	}
	got := MergeSpans(a, b)
	want := []SpanMetrics{
		{Name: "barrier", Depth: 0, Rounds: 4},
		{Name: "run", Depth: 0, Rounds: 1},
		{Name: "cutter", Depth: 1, Rounds: 17, Messages: 7, AwakeRounds: 4, MaxMessageBits: 55},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeSpans = %+v, want %+v", got, want)
	}
	if MergeSpans() != nil || MergeSpans(nil, nil) != nil {
		t.Fatal("MergeSpans of nothing must be nil")
	}
}
