package simnet

import (
	"fmt"
	"sort"

	"dsssp/internal/graph"
)

// Ctx is a node program's handle to the simulated world. All methods must
// be called only from within the node's own Program invocation (the node's
// coroutine); handing a Ctx to another goroutine is not supported.
type Ctx struct {
	eng *Engine
	ns  *nodeState
}

// ID returns this node's identifier.
func (c *Ctx) ID() graph.NodeID { return c.ns.id }

// N returns the number of nodes in the network (standard global knowledge).
func (c *Ctx) N() int { return c.eng.g.N() }

// Model returns the execution model of this run.
func (c *Ctx) Model() Model { return c.eng.cfg.Model }

// Round returns the current round number.
func (c *Ctx) Round() int64 { return c.eng.wakeRound[c.ns.id] }

// Degree returns the number of incident edges.
func (c *Ctx) Degree() int { return c.eng.g.Degree(c.ns.id) }

// NeighborID returns the node at the other end of incident edge i.
func (c *Ctx) NeighborID(i int) graph.NodeID { return c.eng.g.Adj(c.ns.id)[i].To }

// Weight returns the weight of incident edge i.
func (c *Ctx) Weight(i int) int64 { return c.eng.g.Adj(c.ns.id)[i].W }

// EdgeID returns the global edge identifier of incident edge i.
func (c *Ctx) EdgeID(i int) graph.EdgeID { return c.eng.g.Adj(c.ns.id)[i].ID }

// NeighborIndex returns the adjacency index of the (first) edge to node v,
// or -1 if v is not a neighbor.
func (c *Ctx) NeighborIndex(v graph.NodeID) int {
	adj := c.eng.g.Adj(c.ns.id)
	i := sort.Search(len(adj), func(k int) bool { return adj[k].To >= v })
	if i < len(adj) && adj[i].To == v {
		return i
	}
	return -1
}

// Send queues a message on incident edge i for delivery at the end of the
// current round. The destination receives it iff it is awake this round.
func (c *Ctx) Send(i int, msg any) {
	if i < 0 || i >= c.Degree() {
		panic(fmt.Sprintf("simnet: node %d: Send to invalid neighbor index %d (degree %d)", c.ns.id, i, c.Degree()))
	}
	om := outMsg{nbIndex: i, msg: msg}
	if c.eng.cfg.RecordSpans {
		om.span = c.ns.curSpan()
	}
	c.ns.outbox = append(c.ns.outbox, om)
}

// SendID sends to neighbor v (panics if v is not adjacent).
func (c *Ctx) SendID(v graph.NodeID, msg any) {
	i := c.NeighborIndex(v)
	if i < 0 {
		panic(fmt.Sprintf("simnet: node %d: SendID to non-neighbor %d", c.ns.id, v))
	}
	c.Send(i, msg)
}

// SetOutput records this node's output value, returned from Engine.Run.
func (c *Ctx) SetOutput(v any) { c.ns.output = v }

// Next ends the current round and resumes the node in the next round.
// It returns the messages received since the previous resume.
//
// Ownership: the returned slice is only valid until the node's next
// receive call (Next, SleepUntil, SleepUntilAtLeast, or WaitMessage) — the
// engine recycles the backing buffer to keep delivery allocation-free.
// Consume the messages before yielding again (all in-tree algorithms do);
// copy them if they must outlive the round. The same rule applies to every
// method returning []Inbound.
func (c *Ctx) Next() []Inbound {
	c.eng.wakeRound[c.ns.id]++
	c.yield(yieldRun)
	return c.take()
}

// SleepUntil ends the current round and sleeps until round r (exclusive of
// the rounds in between: in Sleeping mode, messages sent during them are
// lost). r must be strictly greater than the current round.
func (c *Ctx) SleepUntil(r int64) []Inbound {
	if r <= c.eng.wakeRound[c.ns.id] {
		panic(fmt.Sprintf("simnet: node %d: SleepUntil(%d) not after current round %d", c.ns.id, r, c.eng.wakeRound[c.ns.id]))
	}
	c.eng.wakeRound[c.ns.id] = r
	c.yield(yieldRun)
	return c.take()
}

// SleepUntilAtLeast is SleepUntil clamped to the next round; use it when the
// target round may already have passed due to budget slack.
func (c *Ctx) SleepUntilAtLeast(r int64) []Inbound {
	if r <= c.eng.wakeRound[c.ns.id] {
		r = c.eng.wakeRound[c.ns.id] + 1
	}
	return c.SleepUntil(r)
}

// WaitMessage parks the node until a message arrives (resuming in the round
// after the arrival) or until round deadline, whichever is first. A negative
// deadline means no deadline; the engine reports a deadlock if every
// unhalted node ends up parked without a deadline.
//
// WaitMessage is only available in Congest mode: in the sleeping model a
// node cannot be woken by a message (messages to sleeping nodes are lost).
func (c *Ctx) WaitMessage(deadline int64) []Inbound {
	if c.eng.cfg.Model != Congest {
		panic(fmt.Sprintf("simnet: node %d: WaitMessage is only valid in Congest mode", c.ns.id))
	}
	if len(c.ns.inbox) > 0 {
		// A message is already pending; behave like Next.
		return c.Next()
	}
	if deadline >= 0 && deadline <= c.eng.wakeRound[c.ns.id] {
		panic(fmt.Sprintf("simnet: node %d: WaitMessage deadline %d not after current round %d", c.ns.id, deadline, c.eng.wakeRound[c.ns.id]))
	}
	c.eng.parkDeadline[c.ns.id] = deadline
	c.yield(yieldPark)
	return c.take()
}

// take hands the filled inbox to the program and installs the spare buffer
// for the engine to fill next. The handed-out slice becomes the spare at
// the following take, so each buffer is overwritten only after the program
// has had a full wake cycle to consume it (the ownership rule on Next).
func (c *Ctx) take() []Inbound {
	b := c.ns.inbox
	c.ns.inbox = c.ns.spare[:0]
	c.ns.spare = b
	return b
}

// yield switches control back to the engine until the node's next resume —
// a direct coroutine switch, not a Go-scheduler round trip. A false return
// from the coroutine yield means the engine shut the run down.
func (c *Ctx) yield(kind yieldKind) {
	c.eng.kind[c.ns.id] = kind
	if !c.ns.yieldFn(struct{}{}) {
		panic(errKilled)
	}
}
