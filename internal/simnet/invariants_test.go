package simnet

import (
	"testing"
	"testing/quick"

	"dsssp/internal/graph"
)

// Property: every sent message is accounted for exactly once — delivered,
// lost to a sleeper, or dropped after halt — on random sleep/send schedules.
func TestMessageConservation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 2
		g := graph.RandomConnected(n, n, graph.UnitWeights, seed)
		eng := New(g, Config{Model: Sleeping})
		var delivered int64
		res, err := eng.Run(func(c *Ctx) {
			// Pseudo-random per-node schedule derived from the id.
			x := uint64(seed)*2654435761 + uint64(c.ID())*40503
			for r := 0; r < 12; r++ {
				x = x*6364136223846793005 + 1442695040888963407
				if x%3 == 0 && c.Degree() > 0 {
					c.Send(int(x/7)%c.Degree(), int64(r))
				}
				if x%5 == 0 {
					c.SleepUntil(c.Round() + 1 + int64(x%4))
				} else {
					c.Next()
				}
			}
			c.SetOutput(int64(0))
		})
		if err != nil {
			return false
		}
		for _, pe := range res.Metrics.PerEdgeMessages {
			_ = pe
		}
		// Delivered = total - lost - dropped; recompute from the node side
		// is not visible here, so check the arithmetic identity instead.
		delivered = res.Metrics.Messages - res.Metrics.LostMessages - res.Metrics.DroppedAfterHalt
		return delivered >= 0 && delivered <= res.Metrics.Messages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-edge message counts sum to the total.
func TestPerEdgeSumsToTotal(t *testing.T) {
	g := graph.Cycle(8, graph.UnitWeights)
	eng := New(g, Config{Model: Congest})
	res, err := eng.Run(func(c *Ctx) {
		for r := 0; r < 5; r++ {
			c.Send(r%c.Degree(), r)
			c.Next()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, pe := range res.Metrics.PerEdgeMessages {
		sum += pe
	}
	if sum != res.Metrics.Messages {
		t.Fatalf("per-edge sum %d != total %d", sum, res.Metrics.Messages)
	}
}

// Sleeping-model determinism: identical runs give identical metrics.
func TestSleepingDeterminism(t *testing.T) {
	g := graph.RandomConnected(30, 40, graph.UnitWeights, 9)
	run := func() Metrics {
		eng := New(g, Config{Model: Sleeping})
		res, err := eng.Run(func(c *Ctx) {
			for r := 0; r < 8; r++ {
				c.Send(int(c.ID())%c.Degree(), r)
				if (int(c.ID())+r)%2 == 0 {
					c.SleepUntil(c.Round() + 2)
				} else {
					c.Next()
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	a, b := run(), run()
	if a.Messages != b.Messages || a.LostMessages != b.LostMessages ||
		a.Rounds != b.Rounds || a.TotalAwake != b.TotalAwake {
		t.Fatalf("nondeterministic metrics:\n%v\n%v", a.String(), b.String())
	}
}

// TotalAwake equals the sum of per-node awake counts.
func TestAwakeAccounting(t *testing.T) {
	g := graph.Path(5, graph.UnitWeights)
	eng := New(g, Config{Model: Sleeping})
	res, err := eng.Run(func(c *Ctx) {
		c.SleepUntil(int64(c.ID())*3 + 1)
		c.Next()
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, a := range res.Metrics.PerNodeAwake {
		sum += a
	}
	if sum != res.Metrics.TotalAwake {
		t.Fatalf("awake sum %d != total %d", sum, res.Metrics.TotalAwake)
	}
	// Each node: awake at rounds 0, id*3+1, id*3+2 => 3 awake rounds
	// (node 0: rounds 0,1,2 = 3 as well).
	for v, a := range res.Metrics.PerNodeAwake {
		if a != 3 {
			t.Fatalf("node %d awake %d, want 3", v, a)
		}
	}
}

// An empty graph (no edges, one node) runs and halts cleanly.
func TestMinimalGraph(t *testing.T) {
	g := graph.New(1)
	eng := New(g, Config{Model: Congest})
	res, err := eng.Run(func(c *Ctx) {
		c.Next()
		c.SetOutput("done")
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != "done" || res.Metrics.Rounds != 2 {
		t.Fatalf("outputs=%v rounds=%d", res.Outputs, res.Metrics.Rounds)
	}
}
