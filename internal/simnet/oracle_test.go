package simnet

import (
	"fmt"

	"dsssp/internal/graph"
)

// runOracle is a frozen port of the engine's original scheduler — a global
// (round, id) binary heap popped one entry at a time — kept verbatim as a
// differential-testing oracle for the bucket-queue scheduler in Run. It
// shares start, Ctx, and shutdown with the production path, so any
// divergence in Metrics, Outputs, Trace, or error text is attributable to
// the scheduler rewrite.
//
// Do not "improve" this code: its value is being the old semantics. (The
// only edits since freezing are mechanical field relocations tracking the
// struct-of-arrays layout change — ns.kind → e.kind[id] and friends.)
func (e *Engine) runOracle(p Program) (*Result, error) {
	res := e.start(p)
	defer e.shutdown()

	n := e.g.N()
	met := &res.Metrics

	// All nodes wake at round 0.
	var wh []wakeEntry
	for i := 0; i < n; i++ {
		wh = heapPushWake(wh, wakeEntry{0, graph.NodeID(i), 0})
	}

	halted := 0
	parked := 0
	dirLoad := make([]int64, 2*e.g.M())
	dirSeen := make([]int64, 2*e.g.M())
	for i := range dirSeen {
		dirSeen[i] = -1
	}
	awakeEpoch := make([]int64, n)
	for i := range awakeEpoch {
		awakeEpoch[i] = -1
	}

	var cur int64 = -1
	batch := make([]graph.NodeID, 0, n)
	for halted < n {
		if len(wh) == 0 {
			if parked > 0 {
				return nil, fmt.Errorf("simnet: deadlock at round %d: %d node(s) parked in WaitMessage with no pending wakeups", cur, parked)
			}
			return nil, fmt.Errorf("simnet: internal error: no wakeups and %d unhalted nodes", n-halted)
		}
		cur = wh[0].round
		if cur > e.cfg.MaxRounds {
			return nil, fmt.Errorf("simnet: exceeded MaxRounds=%d", e.cfg.MaxRounds)
		}
		batch = batch[:0]
		for len(wh) > 0 && wh[0].round == cur {
			var we wakeEntry
			we, wh = heapPopWake(wh)
			if e.halted[we.id] || e.seq[we.id] != we.seq {
				continue // stale entry
			}
			if e.kind[we.id] == yieldPark {
				// Deadline expiry of a parked node.
				e.kind[we.id] = yieldRun
				parked--
			}
			batch = append(batch, we.id)
		}
		// Resume each awake node in ID order (heap pops give ID order for
		// equal rounds).
		for _, id := range batch {
			ns := &e.nodes[id]
			awakeEpoch[id] = cur
			met.PerNodeAwake[id]++
			met.TotalAwake++
			e.wakeRound[id] = cur
			ns.resume()
			if ns.perr != nil {
				e.halted[id] = true // goroutine has exited
				return nil, ns.perr
			}
			switch e.kind[id] {
			case yieldHalt:
				e.halted[id] = true
				halted++
				res.Outputs[id] = ns.output
			case yieldPark:
				parked++
				if e.parkDeadline[id] >= 0 {
					e.seq[id]++
					wh = heapPushWake(wh, wakeEntry{e.parkDeadline[id], id, e.seq[id]})
				}
			case yieldRun:
				e.seq[id]++
				wh = heapPushWake(wh, wakeEntry{e.wakeRound[id], id, e.seq[id]})
			}
		}
		// Deliver this round's messages in sender-ID order.
		var maxLoad int64 = 1
		for _, id := range batch {
			ns := &e.nodes[id]
			if len(ns.outbox) == 0 {
				continue
			}
			adj := e.g.Adj(id)
			for _, om := range ns.outbox {
				h := adj[om.nbIndex]
				met.Messages++
				met.PerEdgeMessages[h.ID]++
				if e.cfg.MessageBits != nil {
					b := e.cfg.MessageBits(om.msg)
					if b > met.MaxMessageBits {
						met.MaxMessageBits = b
					}
					if e.cfg.MaxMessageBits > 0 && b > e.cfg.MaxMessageBits {
						return nil, fmt.Errorf(
							"simnet: strict CONGEST violation: node %d sent a %d-bit message (%T) over edge %d in round %d, exceeding the %d-bit budget",
							id, b, om.msg, h.ID, cur, e.cfg.MaxMessageBits)
					}
				}
				dirBit := int64(0)
				if id > h.To {
					dirBit = 1
				}
				di := 2*int64(h.ID) + dirBit
				if dirSeen[di] != cur {
					dirSeen[di] = cur
					dirLoad[di] = 0
				}
				dirLoad[di]++
				if dirLoad[di] > maxLoad {
					maxLoad = dirLoad[di]
				}
				if e.cfg.StrictCongest && dirLoad[di] > 1 {
					return nil, fmt.Errorf("simnet: strict CONGEST violation on edge %d (round %d)", h.ID, cur)
				}
				if e.cfg.RecordTrace {
					res.Trace = append(res.Trace, TraceEntry{cur, h.ID, byte(dirBit)})
				}
				switch {
				case e.halted[h.To]:
					met.DroppedAfterHalt++
				case e.cfg.Model == Sleeping && awakeEpoch[h.To] != cur:
					met.LostMessages++
				default:
					dst := &e.nodes[h.To]
					dst.inbox = append(dst.inbox, Inbound{
						From:    id,
						NbIndex: int(e.revFlat[e.revOff[id]+int32(om.nbIndex)]),
						Round:   cur,
						Msg:     om.msg,
					})
					if e.kind[h.To] == yieldPark {
						e.kind[h.To] = yieldRun
						e.wakeRound[h.To] = cur + 1
						e.seq[h.To]++
						parked--
						wh = heapPushWake(wh, wakeEntry{cur + 1, h.To, e.seq[h.To]})
					}
				}
			}
			ns.outbox = ns.outbox[:0]
		}
		met.StrictRounds += maxLoad - 1
	}
	met.Rounds = cur + 1
	met.StrictRounds += met.Rounds
	for _, c := range met.PerEdgeMessages {
		if c > met.MaxEdgeMessages {
			met.MaxEdgeMessages = c
		}
	}
	for _, a := range met.PerNodeAwake {
		if a > met.MaxAwake {
			met.MaxAwake = a
		}
	}
	return res, nil
}
