package simnet

import (
	"fmt"
	"sort"

	"dsssp/internal/graph"
)

// Span ledger: named, depth-indexed execution regions whose complexity
// counters the engine maintains alongside the global Metrics. Algorithms
// built as phase pipelines (internal/core) open a span around each phase;
// the engine then attributes every complexity unit it accounts globally to
// exactly one open span, so the per-span ledger is a partition of the run:
//
//   - an awake round is attributed to the span the node was in when it
//     yielded (sum over spans = Metrics.TotalAwake);
//   - a message is attributed to the sender's span at Send time (sum =
//     Metrics.Messages), and its measured bit size raises that span's
//     MaxMessageBits (max over spans = Metrics.MaxMessageBits);
//   - wall-clock rounds are attributed as intervals: when the engine
//     processes round r after previously processing round r', the r-r'
//     elapsed rounds belong to the span of the earliest-resumed node of
//     round r (sum over spans = Metrics.Rounds). Components may drift
//     through different phases concurrently; the earliest-resumed-node rule
//     is the deterministic tiebreak.
//
// The exact-partition property is what lets downstream reports prove their
// breakdowns against the scenario totals (see the conservation tests in
// internal/harness).

// RootSpanName is the name of the implicit span every node starts in; it
// collects whatever the program does outside any explicitly opened span.
const RootSpanName = "run"

// SpanMetrics is the ledger row of one (name, depth) span, aggregated over
// all nodes. Rounds/Messages/AwakeRounds partition the corresponding global
// metrics; MaxMessageBits is a per-span maximum.
type SpanMetrics struct {
	Name  string
	Depth int
	// Rounds is the wall-clock rounds attributed to the span.
	Rounds int64
	// Messages is the number of messages sent from within the span.
	Messages int64
	// AwakeRounds is the summed node-awake rounds spent in the span.
	AwakeRounds int64
	// MaxMessageBits is the largest single message sent from within the
	// span (0 unless Config.MessageBits is set).
	MaxMessageBits int64
}

type spanKey struct {
	name  string
	depth int32
}

// internSpan returns the ledger index of the (name, depth) span, creating
// it on first use. Execution is single-goroutine, so first-open order — and
// with it the ledger order — is deterministic.
func (e *Engine) internSpan(name string, depth int) int32 {
	k := spanKey{name, int32(depth)}
	if id, ok := e.spanIDs[k]; ok {
		return id
	}
	id := int32(len(e.spans))
	e.spanIDs[k] = id
	e.spans = append(e.spans, SpanMetrics{Name: name, Depth: depth})
	return id
}

// spanFirstKey is the position of one OpenSpan call in the sequential
// execution order: rounds ascend, nodes resume in ID order within a round,
// and a node's opens within one wake ascend by its open counter. The
// minimum key over a span's opens is therefore the span's sequential
// first-open position — keys are unique (each open increments seq), so the
// ordering is total.
type spanFirstKey struct {
	round int64
	node  graph.NodeID
	seq   int64
}

func (a spanFirstKey) less(b spanFirstKey) bool {
	if a.round != b.round {
		return a.round < b.round
	}
	if a.node != b.node {
		return a.node < b.node
	}
	return a.seq < b.seq
}

// internSpanPar is internSpan for parallel runs: interning is the one
// engine-shared mutation node programs perform during a concurrent resume
// phase, so it takes the ledger mutex, and it tracks each span's minimal
// first-open key so ledger can emit the spans in the order a sequential run
// would have created them.
func (e *Engine) internSpanPar(name string, depth int, k spanFirstKey) int32 {
	e.spanMu.Lock()
	defer e.spanMu.Unlock()
	sk := spanKey{name, int32(depth)}
	if id, ok := e.spanIDs[sk]; ok {
		if k.less(e.spanFirst[id]) {
			e.spanFirst[id] = k
		}
		return id
	}
	id := int32(len(e.spans))
	e.spanIDs[sk] = id
	e.spans = append(e.spans, SpanMetrics{Name: name, Depth: depth})
	e.spanFirst = append(e.spanFirst, k)
	return id
}

// ledger returns the run's Metrics.Spans. Sequential runs hand the interned
// slice out as-is (creation order is first-open order); parallel runs
// reorder by first-open key, which reproduces the sequential order exactly
// — span IDs on the stacks stay internal, so only this final view needs the
// permutation.
func (e *Engine) ledger() []SpanMetrics {
	if e.pool == nil {
		return e.spans
	}
	order := make([]int32, len(e.spans))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		return e.spanFirst[order[a]].less(e.spanFirst[order[b]])
	})
	out := make([]SpanMetrics, len(order))
	for i, id := range order {
		out[i] = e.spans[id]
	}
	return out
}

// curSpan is the node's innermost open span (the root span if none).
func (ns *nodeState) curSpan() int32 {
	if n := len(ns.spanStack); n > 0 {
		return ns.spanStack[n-1]
	}
	return 0
}

// OpenSpan opens a ledger span named name at the given recursion depth and
// makes it the node's current attribution target until the matching
// CloseSpan. Spans nest; all nodes opening the same (name, depth) share one
// ledger row. A no-op unless Config.RecordSpans is set.
func (c *Ctx) OpenSpan(name string, depth int) {
	if !c.eng.cfg.RecordSpans {
		return
	}
	e := c.eng
	var id int32
	if e.pool != nil {
		// wakeRound[id] always equals the node's current round while its
		// program runs (resumeOne stamps it before the coroutine switch).
		c.ns.openSeq++
		id = e.internSpanPar(name, depth, spanFirstKey{
			round: e.wakeRound[c.ns.id],
			node:  c.ns.id,
			seq:   c.ns.openSeq,
		})
	} else {
		id = e.internSpan(name, depth)
	}
	c.ns.spanStack = append(c.ns.spanStack, id)
}

// CloseSpan closes the node's innermost open span, restoring the enclosing
// one as the attribution target. A no-op unless Config.RecordSpans is set;
// panics on an unmatched close — always a pipeline bug.
func (c *Ctx) CloseSpan() {
	if !c.eng.cfg.RecordSpans {
		return
	}
	if len(c.ns.spanStack) == 0 {
		panic(fmt.Sprintf("simnet: node %d: CloseSpan without an open span", c.ns.id))
	}
	c.ns.spanStack = c.ns.spanStack[:len(c.ns.spanStack)-1]
}

// MergeSpans sums span-metric lists by (name, depth): Rounds, Messages, and
// AwakeRounds add, MaxMessageBits takes the maximum. The result is sorted
// by (depth, name), so merging is deterministic regardless of input order —
// the aggregation the APSP composition applies across its per-source
// instances. Returns nil when no input row exists.
func MergeSpans(lists ...[]SpanMetrics) []SpanMetrics {
	byKey := make(map[spanKey]int)
	var out []SpanMetrics
	for _, list := range lists {
		for _, s := range list {
			k := spanKey{s.Name, int32(s.Depth)}
			i, ok := byKey[k]
			if !ok {
				i = len(out)
				byKey[k] = i
				out = append(out, SpanMetrics{Name: s.Name, Depth: s.Depth})
			}
			out[i].Rounds += s.Rounds
			out[i].Messages += s.Messages
			out[i].AwakeRounds += s.AwakeRounds
			if s.MaxMessageBits > out[i].MaxMessageBits {
				out[i].MaxMessageBits = s.MaxMessageBits
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Depth != out[b].Depth {
			return out[a].Depth < out[b].Depth
		}
		return out[a].Name < out[b].Name
	})
	return out
}
