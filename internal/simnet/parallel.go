package simnet

import (
	"sync"
	"sync/atomic"

	"dsssp/internal/graph"
)

// resumePool fans one round's coroutine resumes out over a persistent set
// of workers. The engine goroutine publishes the round's batch, releases
// the workers through the start channel, works a share itself, and joins
// them at the WaitGroup barrier — after which it alone replays every
// cross-node effect in node-ID order (see Engine.Run). The channel send
// happens-before the worker's receive and each worker's writes happen-
// before the engine's Wait return, so the pool adds no ordering beyond the
// barrier itself; workers touch only per-node state (resumeOne) plus the
// mutex-guarded span interner.
//
// iter.Pull coroutines explicitly support sequential resumes from
// different goroutines, so a node migrating between workers round to round
// is fine; what would not be fine — two concurrent resumes of one node —
// cannot happen because the batch partition assigns each node to exactly
// one worker per round.
type resumePool struct {
	e *Engine
	// workers counts the engine goroutine itself; workers-1 goroutines run.
	workers int
	// minBatch gates fan-out per round: below it the barrier handoff costs
	// more than the parallel resumes save, so the engine resumes inline.
	minBatch int

	batch []graph.NodeID
	round int64
	next  atomic.Int64
	start chan struct{}
	wg    sync.WaitGroup
}

// resumeChunk is the unit of work-stealing: workers grab index ranges of
// this size from the shared cursor, balancing uneven program step costs
// without per-node atomic traffic.
const resumeChunk = 16

// testMinBatch, when > 0, overrides the pool's fan-out threshold — the
// differential tests force tiny batches through the concurrent path.
var testMinBatch int

func newResumePool(e *Engine, workers int) *resumePool {
	p := &resumePool{
		e:       e,
		workers: workers,
		// Calibrated on the dense-round benchmark: below ~64 resumes per
		// helper the barrier handoff costs more than the fan-out saves, so
		// awake-sparse workloads (CSSP averages <1 awake node per round)
		// stay on the inline path and pay nothing for Workers>1.
		minBatch: workers * 4 * resumeChunk,
		start:    make(chan struct{}),
	}
	if testMinBatch > 0 {
		p.minBatch = testMinBatch
	}
	for i := 0; i < workers-1; i++ {
		go func() {
			for range p.start {
				p.drain()
				p.wg.Done()
			}
		}()
	}
	return p
}

// runRound resumes every node in batch concurrently and returns after all
// resumes have yielded back. Caller is the engine goroutine.
func (p *resumePool) runRound(batch []graph.NodeID, round int64) {
	p.batch = batch
	p.round = round
	p.next.Store(0)
	// minBatch guarantees at least 4 chunks per worker, so every helper
	// woken here has work waiting at the cursor.
	p.wg.Add(p.workers - 1)
	for i := 0; i < p.workers-1; i++ {
		p.start <- struct{}{}
	}
	p.drain()
	p.wg.Wait()
}

func (p *resumePool) drain() {
	n := int64(len(p.batch))
	for {
		i := p.next.Add(resumeChunk) - resumeChunk
		if i >= n {
			return
		}
		end := min(i+resumeChunk, n)
		for _, id := range p.batch[i:end] {
			p.e.resumeOne(id, p.round)
		}
	}
}

// close retires the worker goroutines. Must be called before the engine's
// shutdown stops the coroutines, so no worker can be mid-resume when a
// coroutine is torn down (Run's defer ordering arranges exactly that).
func (p *resumePool) close() {
	close(p.start)
}
