package simnet

import (
	"fmt"
	"testing"

	"dsssp/internal/graph"
)

// denseProgram keeps every node awake for a fixed number of rounds, each
// resume doing `spin` LCG steps of private arithmetic. Batches are
// full-width (n) every round — the workload the intra-round pool exists
// for — with per-resume cost tunable via spin.
func denseProgram(rounds, spin int) func(*Ctx) {
	return func(c *Ctx) {
		acc := uint64(c.ID())
		for r := 0; r < rounds; r++ {
			for i := 0; i < spin; i++ {
				acc = acc*6364136223846793005 + 1442695040888963407
			}
			c.Next()
		}
		c.SetOutput(int64(acc >> 1))
	}
}

// BenchmarkDenseRounds measures resume-phase scaling when every round's
// ready batch is the whole graph. This is the pool's saturation case;
// contrast with BenchmarkE1CongestCSSPIntra (package dsssp), whose CSSP
// workload averages well under one awake node per round and therefore
// cannot benefit from intra-round fan-out.
func BenchmarkDenseRounds(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14} {
		g := graph.Star(n, graph.UnitWeights)
		prog := denseProgram(64, 64)
		for _, w := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := New(g, Config{Model: Congest, MaxRounds: 1 << 20, Workers: w}).Run(prog); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFlood100k runs the large-n memory-engineering target: a full
// broadcast over 10^5 nodes (random m=2n), dominated by one huge
// full-width wave. Exercises the arena-carved inboxes at scale alongside
// the pool.
func BenchmarkFlood100k(b *testing.B) {
	const n = 100_000
	g := graph.RandomConnected(n, 2*n, graph.UnitWeights, 7)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := New(g, Config{Model: Congest, MaxRounds: 1 << 20, Workers: w}).Run(floodProgram); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
