package simnet

import (
	"fmt"
	"reflect"
	"testing"

	"dsssp/internal/graph"
)

// splitmix64 is the step function driving the random node scripts.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// scriptProgram returns a deterministic pseudo-random Program: every node
// derives an op stream (sends, Next, SleepUntil jumps near and far,
// WaitMessage with and without deadline, early halts) from (seed, id) and
// folds everything it receives into a hash it outputs. The stream reacts to
// received payloads, so scheduling divergences between engines cascade into
// different outputs, metrics, and traces.
func scriptProgram(seed int64, model Model, steps int) Program {
	return func(c *Ctx) {
		x := splitmix64(uint64(seed) ^ (uint64(c.ID())+1)*0x9e3779b97f4a7c15)
		var h uint64 = 1469598103934665603
		mix := func(v uint64) { h ^= v; h *= 1099511628211 }
		consume := func(in []Inbound) {
			for _, m := range in {
				mix(uint64(m.From))
				mix(uint64(m.Round))
				mix(m.Msg.(uint64))
			}
		}
		for s := 0; s < steps; s++ {
			x = splitmix64(x)
			if c.Degree() > 0 && x%3 != 0 {
				k := int(x>>8)%2 + 1
				for j := 0; j < k; j++ {
					c.Send(int(x>>uint(16+4*j))%c.Degree(), h^x)
				}
			}
			x = splitmix64(x)
			switch x % 7 {
			case 0, 1, 2:
				consume(c.Next())
			case 3:
				consume(c.SleepUntil(c.Round() + 1 + int64(x>>5)%4))
			case 4:
				// Far-future jump: exercises the heap fallback behind the
				// bucket window.
				consume(c.SleepUntil(c.Round() + 1 + int64(x>>5)%3000))
			case 5:
				if model == Congest {
					consume(c.WaitMessage(c.Round() + 1 + int64(x>>5)%9))
				} else {
					consume(c.Next())
				}
			case 6:
				if x>>40%5 == 0 {
					c.SetOutput(h)
					return // early halt
				}
				consume(c.Next())
			}
		}
		c.SetOutput(h ^ uint64(c.Round()))
	}
}

func equivGraph(seed int64, n int) *graph.Graph {
	switch seed % 4 {
	case 0:
		return graph.Path(n, graph.UnitWeights)
	case 1:
		return graph.Cycle(n, graph.UnitWeights)
	case 2:
		return graph.Star(n, graph.UnitWeights)
	default:
		return graph.RandomConnected(n, 2*n, graph.UnitWeights, seed)
	}
}

// TestSchedulerMatchesOracle runs randomized programs through both the
// production scheduler (bucket queue, batched handshakes, pooled buffers)
// and the frozen pre-rewrite oracle scheduler, asserting exactly equal
// Metrics, Outputs, Trace, and error text in both models.
func TestSchedulerMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		for _, model := range []Model{Congest, Sleeping} {
			n := int(splitmix64(uint64(seed))%22) + 2
			g := equivGraph(seed, n)
			cfg := Config{Model: model, RecordTrace: true, MaxRounds: 1 << 20}
			p := scriptProgram(seed, model, 12)

			want, werr := New(g, cfg).runOracle(p)
			got, gerr := New(g, cfg).Run(p)

			name := fmt.Sprintf("seed=%d model=%s n=%d", seed, model, n)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s: error divergence: oracle=%v new=%v", name, werr, gerr)
			}
			if werr != nil {
				if werr.Error() != gerr.Error() {
					t.Fatalf("%s: error text divergence:\noracle: %v\nnew:    %v", name, werr, gerr)
				}
				continue
			}
			if !reflect.DeepEqual(want.Metrics, got.Metrics) {
				t.Fatalf("%s: metrics divergence:\noracle: %+v\nnew:    %+v", name, want.Metrics, got.Metrics)
			}
			if !reflect.DeepEqual(want.Outputs, got.Outputs) {
				t.Fatalf("%s: outputs divergence:\noracle: %v\nnew:    %v", name, want.Outputs, got.Outputs)
			}
			if !reflect.DeepEqual(want.Trace, got.Trace) {
				t.Fatalf("%s: trace divergence (oracle %d entries, new %d)", name, len(want.Trace), len(got.Trace))
			}
		}
	}
}

// TestSchedulerMatchesOracleOnErrors pins the scheduler-visible error paths
// (deadlock, MaxRounds, node panic) to the oracle's exact behavior.
func TestSchedulerMatchesOracleOnErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		prog Program
	}{
		{
			name: "deadlock",
			cfg:  Config{Model: Congest},
			prog: func(c *Ctx) {
				if c.ID() == 0 {
					return
				}
				c.WaitMessage(-1)
			},
		},
		{
			name: "maxrounds",
			cfg:  Config{Model: Sleeping, MaxRounds: 64},
			prog: func(c *Ctx) { c.SleepUntil(1000) },
		},
		{
			name: "panic",
			cfg:  Config{Model: Congest},
			prog: func(c *Ctx) {
				if c.ID() == 1 {
					panic("boom")
				}
				c.SleepUntil(50)
			},
		},
	}
	for _, tc := range cases {
		g := graph.Path(4, graph.UnitWeights)
		_, werr := New(g, tc.cfg).runOracle(tc.prog)
		_, gerr := New(g, tc.cfg).Run(tc.prog)
		if werr == nil || gerr == nil {
			t.Fatalf("%s: expected errors, oracle=%v new=%v", tc.name, werr, gerr)
		}
		if werr.Error() != gerr.Error() {
			t.Fatalf("%s: error text divergence:\noracle: %v\nnew:    %v", tc.name, werr, gerr)
		}
	}
}
