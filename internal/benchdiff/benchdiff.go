// Package benchdiff compares dsssp-bench JSON reports (the BENCH_*.json
// artifacts) across PRs: scenarios are aligned by their stable name, every
// measured metric and measured/envelope ratio is diffed, and configurable
// thresholds turn ratio drift into a hard regression verdict — the
// machinery behind the CI gate (cmd/dsssp-diff).
//
// Because harness reports are deterministic — same scenario list ⇒ byte-
// identical results on any machine at any parallelism — every non-zero
// delta is a real behavior change, not noise; the thresholds only decide
// which changes are large enough to block a merge. The one exception is
// the opt-in perf sidecar (harness.Result.Perf, wall_ns/allocs): it is
// machine-dependent by design and deliberately excluded from comparison
// and gating, so perf-annotated reports diff clean against plain ones.
package benchdiff

import (
	"fmt"

	"dsssp/internal/harness"
)

// Thresholds configures what counts as a regression.
type Thresholds struct {
	// EnvelopeWorsen is the maximum tolerated relative worsening of any
	// measured/envelope ratio before the scenario regresses: 0.10 lets a
	// ratio grow by 10% (new <= old × 1.10). Negative disables ratio
	// gating. Applies to the rounds, congestion, awake, and message-bits
	// ratios wherever both reports claim the same envelope.
	EnvelopeWorsen float64
	// AllowNewFailures keeps a scenario that verified in the old report
	// but fails in the new one from being a regression (it is still
	// counted and reported). Default false: new failures gate.
	AllowNewFailures bool
	// FailOnRemoved treats scenarios present in the old report but missing
	// from the new one as regressions (a silently dropped workload can
	// hide a regression). Default false: removals are reported only.
	FailOnRemoved bool
	// PhaseWorsen gates the per-phase round breakdown: a pipeline phase
	// whose rounds/envelope ratio worsens by more than this fraction
	// regresses the scenario, so a slowdown localized in (say) the cutter
	// gates even while the scenario total stays inside EnvelopeWorsen.
	// Negative disables per-phase gating. Phases only carry a ratio where
	// the scenario claims a rounds envelope (CONGEST pipelines).
	PhaseWorsen float64
	// PhaseMinDelta is the minimum absolute per-phase rounds movement
	// before PhaseWorsen applies: tiny phases (a few rounds) would
	// otherwise gate on trivially small shifts that the scenario-level
	// ratio absorbs.
	PhaseMinDelta int64
}

// DefaultThresholds is the CI gate configuration: 10% envelope-ratio slack
// per scenario, 25% per pipeline phase (at least 16 rounds of movement),
// new failures and nothing else blocking.
func DefaultThresholds() Thresholds {
	return Thresholds{EnvelopeWorsen: 0.10, PhaseWorsen: 0.25, PhaseMinDelta: 16}
}

// Status classifies one aligned scenario.
type Status string

// Statuses.
const (
	// StatusUnchanged: every compared metric is identical.
	StatusUnchanged Status = "unchanged"
	// StatusChanged: metrics moved but within thresholds.
	StatusChanged Status = "changed"
	// StatusRegressed: at least one gated check failed.
	StatusRegressed Status = "regressed"
	// StatusAdded / StatusRemoved: present on only one side.
	StatusAdded   Status = "added"
	StatusRemoved Status = "removed"
)

// MetricDelta is one metric of one scenario, old vs new. Ratios are
// measured/envelope and are only compared when both sides claim an
// envelope; Ratio values are negative when no envelope applies.
type MetricDelta struct {
	Metric   string  `json:"metric"`
	Old      int64   `json:"old"`
	New      int64   `json:"new"`
	OldRatio float64 `json:"old_ratio,omitempty"`
	NewRatio float64 `json:"new_ratio,omitempty"`
	// RelChange is (NewRatio-OldRatio)/OldRatio when ratios apply and
	// OldRatio > 0, else (New-Old)/Old when Old > 0, else 0.
	RelChange float64 `json:"rel_change,omitempty"`
	// Regressed marks a ratio worsening beyond Thresholds.EnvelopeWorsen.
	Regressed bool `json:"regressed,omitempty"`
}

// Delta is one scenario's comparison.
type Delta struct {
	Scenario string `json:"scenario"`
	Status   Status `json:"status"`
	// Metrics holds the per-metric movements (empty for added/removed).
	Metrics []MetricDelta `json:"metrics,omitempty"`
	// Reasons explains a regressed status, one line per gated check.
	Reasons []string `json:"reasons,omitempty"`
	// OldOK/NewOK echo the verification flags.
	OldOK bool `json:"old_ok"`
	NewOK bool `json:"new_ok"`
}

// SuiteInfo summarizes one side of the comparison.
type SuiteInfo struct {
	Suite     string `json:"suite"`
	Quick     bool   `json:"quick"`
	Scenarios int    `json:"scenarios"`
	Failures  int    `json:"failures"`
}

// DiffSchema versions the diff's own JSON output.
const DiffSchema = "dsssp-diff/v1"

// Diff is the full comparison of two reports.
type Diff struct {
	Schema     string     `json:"schema"`
	Old        SuiteInfo  `json:"old_suite"`
	New        SuiteInfo  `json:"new_suite"`
	Thresholds Thresholds `json:"thresholds"`
	Deltas     []Delta    `json:"deltas"`

	Unchanged   int `json:"unchanged"`
	Changed     int `json:"changed"`
	Regressed   int `json:"regressed"`
	Added       int `json:"added"`
	Removed     int `json:"removed"`
	NewFailures int `json:"new_failures"`

	// OK is the gate verdict: no regressions under the thresholds.
	OK bool `json:"ok"`
}

// Compare aligns two reports by scenario name and applies the thresholds.
// The reports must come from the same suite flavor (suite name and quick
// flag): diffing a quick sweep against a full one would compare different
// graphs and always "regress".
func Compare(old, new harness.Report, th Thresholds) (Diff, error) {
	if old.Suite != new.Suite || old.Quick != new.Quick {
		return Diff{}, fmt.Errorf(
			"benchdiff: incomparable reports: old is suite %q (quick=%v), new is suite %q (quick=%v)",
			old.Suite, old.Quick, new.Suite, new.Quick)
	}
	d := Diff{
		Schema:     DiffSchema,
		Old:        suiteInfo(old),
		New:        suiteInfo(new),
		Thresholds: th,
		OK:         true,
	}
	oldBy := byName(old)
	newBy := byName(new)

	// Old-report order first (aligned + removed), then additions in
	// new-report order — stable and diff-friendly output.
	for _, or := range old.Results {
		nr, ok := newBy[or.Scenario]
		if !ok {
			delta := Delta{Scenario: or.Scenario, Status: StatusRemoved, OldOK: or.OK}
			if th.FailOnRemoved {
				delta.Status = StatusRegressed
				delta.Reasons = append(delta.Reasons, "scenario removed from the new report")
			}
			d.add(delta)
			continue
		}
		if or.OK && !nr.OK {
			d.NewFailures++
		}
		d.add(compareOne(or, nr, th))
	}
	for _, nr := range new.Results {
		if _, ok := oldBy[nr.Scenario]; !ok {
			delta := Delta{Scenario: nr.Scenario, Status: StatusAdded, NewOK: nr.OK}
			if !nr.OK {
				d.NewFailures++ // failing and previously absent = newly failing
				if !th.AllowNewFailures {
					delta.Status = StatusRegressed
					delta.Reasons = append(delta.Reasons, fmt.Sprintf("added scenario fails verification: %s", nr.Err))
				}
			}
			d.add(delta)
		}
	}
	return d, nil
}

func (d *Diff) add(delta Delta) {
	d.Deltas = append(d.Deltas, delta)
	switch delta.Status {
	case StatusUnchanged:
		d.Unchanged++
	case StatusChanged:
		d.Changed++
	case StatusRegressed:
		d.Regressed++
		d.OK = false
	case StatusAdded:
		d.Added++
	case StatusRemoved:
		d.Removed++
	}
}

func suiteInfo(r harness.Report) SuiteInfo {
	return SuiteInfo{Suite: r.Suite, Quick: r.Quick, Scenarios: r.Scenarios, Failures: r.Failures}
}

func byName(r harness.Report) map[string]harness.Result {
	m := make(map[string]harness.Result, len(r.Results))
	for _, res := range r.Results {
		m[res.Scenario] = res
	}
	return m
}

// compareOne diffs one aligned scenario pair.
func compareOne(or, nr harness.Result, th Thresholds) Delta {
	delta := Delta{Scenario: or.Scenario, OldOK: or.OK, NewOK: nr.OK}

	// Same name, different experiment: the ε / strict dimensions are part
	// of a scenario's identity (Result echoes them for exactly this
	// check), so a silent redefinition always gates — comparing metrics
	// across different workloads would be meaningless either way.
	if or.EpsNum != nr.EpsNum || or.EpsDen != nr.EpsDen || or.Strict != nr.Strict ||
		or.Family != nr.Family || or.Model != nr.Model || or.Alg != nr.Alg {
		delta.Status = StatusRegressed
		delta.Reasons = append(delta.Reasons, fmt.Sprintf(
			"scenario redefined under the same name: %s/%s/%s eps %d/%d strict %v → %s/%s/%s eps %d/%d strict %v — rename it or regenerate the baseline",
			or.Model, or.Alg, or.Family, or.EpsNum, or.EpsDen, or.Strict,
			nr.Model, nr.Alg, nr.Family, nr.EpsNum, nr.EpsDen, nr.Strict))
		return delta
	}

	type metricPair struct {
		name     string
		old, new int64
		oldEnv   int64
		newEnv   int64
	}
	var metrics []metricPair
	// The enveloped (gateable) metrics come from the shared vocabulary the
	// trend chain uses too, so pairwise gating and N-report series can
	// never drift apart.
	oldEnv, newEnv := envelopedMetrics(or), envelopedMetrics(nr)
	for i := range oldEnv {
		metrics = append(metrics, metricPair{oldEnv[i].name, oldEnv[i].value, newEnv[i].value, oldEnv[i].env, newEnv[i].env})
	}
	metrics = append(metrics, []metricPair{
		{"messages", or.Messages, nr.Messages, 0, 0},
		// Un-enveloped metrics still participate in change detection, so a
		// drifted baseline is flagged (and TestBaselineCurrent forces a
		// regeneration) even when no ratio gates: the megaround account,
		// energy totals, the +Inf population, and the whole Section 1.1
		// APSP composition (its random-delay makespan is a headline claim).
		{"strict_rounds", or.StrictRounds, nr.StrictRounds, 0, 0},
		{"total_awake", or.TotalAwake, nr.TotalAwake, 0, 0},
		{"unreachable", int64(or.Unreachable), int64(nr.Unreachable), 0, 0},
		{"dilation", or.Dilation, nr.Dilation, 0, 0},
		{"apsp_congestion", or.Congestion, nr.Congestion, 0, 0},
		{"makespan_aligned", or.MakespanAligned, nr.MakespanAligned, 0, 0},
		{"makespan_random", or.MakespanRandom, nr.MakespanRandom, 0, 0},
		{"makespan_sequential", or.MakespanSequential, nr.MakespanSequential, 0, 0},
	}...)
	anyChange := false
	for _, m := range metrics {
		if m.old == 0 && m.new == 0 {
			continue
		}
		md := MetricDelta{Metric: m.name, Old: m.old, New: m.new, OldRatio: -1, NewRatio: -1}
		if m.oldEnv > 0 && m.newEnv > 0 {
			md.OldRatio = float64(m.old) / float64(m.oldEnv)
			md.NewRatio = float64(m.new) / float64(m.newEnv)
			if md.OldRatio > 0 {
				md.RelChange = (md.NewRatio - md.OldRatio) / md.OldRatio
			}
			if th.EnvelopeWorsen >= 0 && md.NewRatio > md.OldRatio*(1+th.EnvelopeWorsen) {
				md.Regressed = true
				delta.Reasons = append(delta.Reasons, fmt.Sprintf(
					"%s envelope ratio worsened %.3f → %.3f (%+.1f%%, threshold %+.0f%%)",
					m.name, md.OldRatio, md.NewRatio, 100*md.RelChange, 100*th.EnvelopeWorsen))
			}
		} else if m.old > 0 {
			md.RelChange = float64(m.new-m.old) / float64(m.old)
		}
		if m.old != m.new {
			anyChange = true
		}
		delta.Metrics = append(delta.Metrics, md)
	}
	comparePhases(&delta, or, nr, th, &anyChange)

	regressed := len(delta.Reasons) > 0
	if or.OK && !nr.OK {
		delta.Reasons = append(delta.Reasons, fmt.Sprintf("verification newly fails: %s", nr.Err))
		if !th.AllowNewFailures {
			regressed = true
		}
		anyChange = true
	}
	switch {
	case regressed:
		delta.Status = StatusRegressed
	case anyChange || or.DistHash != nr.DistHash:
		delta.Status = StatusChanged
	default:
		delta.Status = StatusUnchanged
	}
	return delta
}

// comparePhases diffs the per-phase round breakdowns of one aligned
// scenario pair. Each phase becomes a "phase:<key>" MetricDelta whose ratio
// is the phase's rounds against the scenario's rounds envelope — the
// per-phase ratios sum to the scenario's r(rounds), so a slowdown hiding
// inside one stage (a cutter that doubled while the barrier shrank) gates
// individually under Thresholds.PhaseWorsen even when the total stays flat.
func comparePhases(delta *Delta, or, nr harness.Result, th Thresholds, anyChange *bool) {
	if len(or.Phases) == 0 && len(nr.Phases) == 0 {
		return
	}
	newBy := make(map[string]harness.PhaseStat, len(nr.Phases))
	for _, p := range nr.Phases {
		newBy[p.Phase] = p
	}
	oldSeen := make(map[string]bool, len(or.Phases))
	// Old-report phase order first, then phases new to this report — the
	// same stable alignment Compare uses for scenarios.
	for _, op := range or.Phases {
		oldSeen[op.Phase] = true
		comparePhase(delta, op, newBy[op.Phase], or, nr, th, anyChange)
	}
	for _, np := range nr.Phases {
		if !oldSeen[np.Phase] {
			comparePhase(delta, harness.PhaseStat{Phase: np.Phase}, np, or, nr, th, anyChange)
		}
	}
}

func comparePhase(delta *Delta, op, np harness.PhaseStat, or, nr harness.Result, th Thresholds, anyChange *bool) {
	if op.Rounds == 0 && np.Rounds == 0 {
		return
	}
	md := MetricDelta{Metric: "phase:" + op.Phase, Old: op.Rounds, New: np.Rounds, OldRatio: -1, NewRatio: -1}
	if or.Envelope.Rounds > 0 && nr.Envelope.Rounds > 0 {
		md.OldRatio = float64(op.Rounds) / float64(or.Envelope.Rounds)
		md.NewRatio = float64(np.Rounds) / float64(nr.Envelope.Rounds)
		if md.OldRatio > 0 {
			md.RelChange = (md.NewRatio - md.OldRatio) / md.OldRatio
		}
		minDelta := th.PhaseMinDelta
		if minDelta < 1 {
			minDelta = 1
		}
		if th.PhaseWorsen >= 0 && md.NewRatio > md.OldRatio*(1+th.PhaseWorsen) && np.Rounds-op.Rounds >= minDelta {
			md.Regressed = true
			delta.Reasons = append(delta.Reasons, fmt.Sprintf(
				"phase %q round share worsened %.4f → %.4f of the rounds envelope (%d → %d rounds, threshold %+.0f%% and ≥%d rounds)",
				op.Phase, md.OldRatio, md.NewRatio, op.Rounds, np.Rounds, 100*th.PhaseWorsen, minDelta))
		}
	} else if op.Rounds > 0 {
		md.RelChange = float64(np.Rounds-op.Rounds) / float64(op.Rounds)
	}
	if op.Rounds != np.Rounds {
		*anyChange = true
	}
	delta.Metrics = append(delta.Metrics, md)
}
