package benchdiff

import (
	"bytes"
	"strings"
	"testing"

	"dsssp/internal/harness"
)

func report(results ...harness.Result) harness.Report {
	return harness.BuildReport("default", true, results)
}

func res(name string, rounds, roundsEnv int64) harness.Result {
	return harness.Result{
		Scenario: name, Family: "random", Model: "congest", Alg: "sssp",
		N: 32, M: 64, Rounds: rounds, MaxEdgeMessages: 10, Messages: 100,
		Envelope: harness.Envelope{Rounds: roundsEnv, Congestion: 100},
		DistHash: "abc", OK: true,
	}
}

func TestCompareUnchanged(t *testing.T) {
	old := report(res("a", 1000, 10000), res("b", 2000, 10000))
	d, err := Compare(old, old, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK || d.Unchanged != 2 || d.Changed+d.Regressed+d.Added+d.Removed != 0 {
		t.Fatalf("self-diff not clean: %+v", d)
	}
}

func TestCompareRegression(t *testing.T) {
	old := report(res("a", 1000, 10000))
	// +5% rounds: within the 10% gate.
	within, err := Compare(old, report(res("a", 1050, 10000)), DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !within.OK || within.Changed != 1 || within.Regressed != 0 {
		t.Fatalf("+5%% should pass the 10%% gate: %+v", within)
	}
	// +25% rounds: regression.
	beyond, err := Compare(old, report(res("a", 1250, 10000)), DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if beyond.OK || beyond.Regressed != 1 {
		t.Fatalf("+25%% should fail the 10%% gate: %+v", beyond)
	}
	if len(beyond.Deltas) != 1 || beyond.Deltas[0].Status != StatusRegressed {
		t.Fatalf("bad delta: %+v", beyond.Deltas)
	}
	if !strings.Contains(strings.Join(beyond.Deltas[0].Reasons, "\n"), "rounds envelope ratio worsened") {
		t.Fatalf("missing reason: %+v", beyond.Deltas[0].Reasons)
	}
	// Disabled gate tolerates anything.
	loose, err := Compare(old, report(res("a", 9000, 10000)), Thresholds{EnvelopeWorsen: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !loose.OK {
		t.Fatalf("disabled gate still regressed: %+v", loose)
	}
}

// TestCompareEnvelopeRecalibration: when the envelope itself changes (a
// deliberate recalibration), the gate compares ratios, not raw metrics —
// the same measurement under a doubled envelope halves the ratio and must
// pass even though rounds moved.
func TestCompareEnvelopeRecalibration(t *testing.T) {
	old := report(res("a", 5000, 10000))
	d, err := Compare(old, report(res("a", 5500, 20000)), DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK {
		t.Fatalf("ratio improved 0.50→0.275 yet gate failed: %+v", d)
	}
}

func TestCompareNewFailure(t *testing.T) {
	old := report(res("a", 1000, 10000))
	bad := res("a", 1000, 10000)
	bad.OK = false
	bad.Err = "distances disagree with the sequential reference"
	d, err := Compare(old, report(bad), DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if d.OK || d.NewFailures != 1 || d.Regressed != 1 {
		t.Fatalf("new failure must gate: %+v", d)
	}
	tolerant, err := Compare(old, report(bad), Thresholds{EnvelopeWorsen: 0.10, AllowNewFailures: true})
	if err != nil {
		t.Fatal(err)
	}
	if !tolerant.OK || tolerant.NewFailures != 1 {
		t.Fatalf("AllowNewFailures should pass but still count: %+v", tolerant)
	}
}

func TestCompareAddedRemoved(t *testing.T) {
	old := report(res("a", 1000, 10000), res("gone", 500, 10000))
	new := report(res("a", 1000, 10000), res("fresh", 700, 10000))
	d, err := Compare(old, new, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK || d.Added != 1 || d.Removed != 1 {
		t.Fatalf("added/removed miscounted: %+v", d)
	}
	strict, err := Compare(old, new, Thresholds{EnvelopeWorsen: 0.10, FailOnRemoved: true})
	if err != nil {
		t.Fatal(err)
	}
	if strict.OK || strict.Regressed != 1 {
		t.Fatalf("FailOnRemoved should gate: %+v", strict)
	}
	// An added scenario that fails verification gates even as an addition.
	badNew := res("fresh", 700, 10000)
	badNew.OK = false
	badNew.Err = "boom"
	d2, err := Compare(report(res("a", 1000, 10000)), report(res("a", 1000, 10000), badNew), DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if d2.OK {
		t.Fatalf("failing added scenario must gate: %+v", d2)
	}
	if d2.NewFailures != 1 {
		t.Fatalf("failing added scenario must count as a new failure: %+v", d2)
	}
}

// TestCompareCompositionMetrics: the APSP composition columns (and other
// un-enveloped metrics) have no ratio gate, but any drift must surface as
// StatusChanged — that is what keeps the checked-in baseline honest.
func TestCompareCompositionMetrics(t *testing.T) {
	mk := func(makespan int64) harness.Result {
		r := res("apsp", 1000, 10000)
		r.Alg = "apsp"
		r.Dilation, r.Congestion = 500, 300
		r.MakespanRandom = makespan
		return r
	}
	d, err := Compare(report(mk(700)), report(mk(900)), DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK || d.Changed != 1 {
		t.Fatalf("makespan drift must be StatusChanged (and pass the ratio gate): %+v", d)
	}
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, d, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "makespan_random 700 → 900") {
		t.Errorf("markdown hides the drifted composition metric:\n%s", buf.String())
	}
}

// TestCompareRedefinedScenario: changing a scenario's ε/strict (or
// family/model/alg) without renaming it must gate — the two rows are
// different experiments and their metrics are incomparable.
func TestCompareRedefinedScenario(t *testing.T) {
	old := res("a", 1000, 10000)
	redefined := res("a", 1000, 10000)
	redefined.Strict = true
	redefined.EpsNum, redefined.EpsDen = 1, 4
	d, err := Compare(report(old), report(redefined), DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if d.OK || d.Regressed != 1 {
		t.Fatalf("silent redefinition must gate: %+v", d)
	}
	if !strings.Contains(strings.Join(d.Deltas[0].Reasons, ";"), "redefined under the same name") {
		t.Fatalf("missing redefinition reason: %+v", d.Deltas[0].Reasons)
	}
}

func TestCompareRefusesMixedSuites(t *testing.T) {
	old := harness.BuildReport("default", true, nil)
	new := harness.BuildReport("default", false, nil)
	if _, err := Compare(old, new, DefaultThresholds()); err == nil {
		t.Fatal("quick vs full comparison accepted")
	}
	other := harness.BuildReport("custom", true, nil)
	if _, err := Compare(old, other, DefaultThresholds()); err == nil {
		t.Fatal("mixed suite names accepted")
	}
}

func TestWriteMarkdown(t *testing.T) {
	old := report(res("a", 1000, 10000), res("same", 10, 100))
	d, err := Compare(old, report(res("a", 1300, 10000), res("same", 10, 100)), DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, d, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"a", "regressed", "0.100 → 0.130", "Verdict: **FAIL**", "## Regressions"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "| same |") {
		t.Errorf("changedOnly table lists an unchanged scenario:\n%s", out)
	}
	var all bytes.Buffer
	if err := WriteMarkdown(&all, d, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(all.String(), "| same |") {
		t.Errorf("full table misses unchanged scenario:\n%s", all.String())
	}
	var js bytes.Buffer
	if err := WriteJSON(&js, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), DiffSchema) {
		t.Errorf("JSON missing schema: %s", js.String())
	}
}

// TestCompareBitsRatio: the strict-CONGEST message-bits envelope takes part
// in the gate like every other ratio.
func TestCompareBitsRatio(t *testing.T) {
	mk := func(bits int64) harness.Result {
		r := res("strict", 1000, 10000)
		r.Strict = true
		r.MaxMessageBits = bits
		r.Envelope.MessageBits = 100
		return r
	}
	d, err := Compare(report(mk(40)), report(mk(60)), DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if d.OK {
		t.Fatalf("bits ratio 0.4→0.6 must gate at 10%%: %+v", d)
	}
	if !strings.Contains(strings.Join(d.Deltas[0].Reasons, ";"), "bits envelope ratio") {
		t.Fatalf("missing bits reason: %+v", d.Deltas[0].Reasons)
	}
}

// TestComparePerfSidecarIgnored: the wall-time/allocation sidecar is
// machine-dependent, so a report annotated with -perf must diff as
// unchanged against the plain baseline — and perf drift must never gate.
func TestComparePerfSidecarIgnored(t *testing.T) {
	old := report(res("a", 1000, 10000))
	annotated := res("a", 1000, 10000)
	annotated.Perf = &harness.Perf{WallNS: 123456789, Allocs: 42, AllocBytes: 4096}
	d, err := Compare(old, report(annotated), DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK || d.Unchanged != 1 || d.Changed+d.Regressed != 0 {
		t.Fatalf("perf sidecar leaked into the diff: %+v", d)
	}
	// And in the other direction (baseline has perf, new run does not).
	d, err = Compare(report(annotated), old, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK || d.Unchanged != 1 {
		t.Fatalf("perf sidecar removal gated: %+v", d)
	}
}
