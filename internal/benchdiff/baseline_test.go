package benchdiff

import (
	"context"
	"os"
	"testing"

	"dsssp/internal/harness"
)

const baselinePath = "testdata/BENCH_quick_baseline.json"

func readBaseline(t *testing.T) harness.Report {
	t.Helper()
	f, err := os.Open(baselinePath)
	if err != nil {
		t.Fatalf("checked-in baseline missing: %v (regenerate with `go run ./cmd/dsssp-bench -quick -q -json %s`)", err, baselinePath)
	}
	defer f.Close()
	rep, err := harness.ReadJSON(f)
	if err != nil {
		t.Fatalf("baseline unreadable (schema drift? regenerate it): %v", err)
	}
	return rep
}

// TestBaselineCurrent is the in-repo form of the CI gate: a fresh quick
// sweep diffed against the checked-in baseline must show zero regressions
// AND zero changes — the sweep is deterministic, so any drift means either
// the algorithms or the scenario suite changed, and the baseline has to be
// regenerated deliberately in the same commit.
func TestBaselineCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("quick sweep in -short mode")
	}
	baseline := readBaseline(t)
	scns, err := harness.Default(true).Select(nil)
	if err != nil {
		t.Fatal(err)
	}
	results, err := harness.Run(context.Background(), scns, harness.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := harness.BuildReport("default", true, results)
	d, err := Compare(baseline, fresh, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK {
		for _, delta := range d.Deltas {
			for _, reason := range delta.Reasons {
				t.Errorf("%s: %s", delta.Scenario, reason)
			}
		}
		t.Fatal("fresh sweep regresses against the checked-in baseline")
	}
	if d.Changed+d.Added+d.Removed > 0 {
		t.Fatalf("sweep drifted from the baseline (%d changed, %d added, %d removed): regenerate %s in this commit",
			d.Changed, d.Added, d.Removed, baselinePath)
	}
}
