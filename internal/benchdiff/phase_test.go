package benchdiff

import (
	"strings"
	"testing"

	"dsssp/internal/harness"
)

func resWithPhases(name string, roundsEnv int64, phases ...harness.PhaseStat) harness.Result {
	r := res(name, 0, roundsEnv)
	for _, p := range phases {
		r.Rounds += p.Rounds
	}
	r.Phases = phases
	return r
}

// TestPhaseGateLocalizedRegression: a slowdown confined to one phase gates
// under PhaseWorsen even when the scenario-level rounds ratio stays inside
// EnvelopeWorsen (the other phases shrink to compensate).
func TestPhaseGateLocalizedRegression(t *testing.T) {
	old := report(resWithPhases("a", 100000,
		harness.PhaseStat{Phase: "decompose", Rounds: 9000},
		harness.PhaseStat{Phase: "cutter", Rounds: 1000},
	))
	// Total 10000 → 10000: the scenario ratio is flat, but the cutter
	// doubled at decompose's expense.
	shifted := report(resWithPhases("a", 100000,
		harness.PhaseStat{Phase: "decompose", Rounds: 8000},
		harness.PhaseStat{Phase: "cutter", Rounds: 2000},
	))
	d, err := Compare(old, shifted, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if d.OK || d.Regressed != 1 {
		t.Fatalf("localized phase regression passed the gate: %+v", d)
	}
	reasons := strings.Join(d.Deltas[0].Reasons, "\n")
	if !strings.Contains(reasons, `phase "cutter"`) {
		t.Fatalf("reason does not name the phase: %q", reasons)
	}
}

// TestPhaseGateMinDelta: tiny phases move a few rounds without gating — the
// absolute PhaseMinDelta floor absorbs them (they still mark the scenario
// changed).
func TestPhaseGateMinDelta(t *testing.T) {
	old := report(resWithPhases("a", 100000,
		harness.PhaseStat{Phase: "decompose", Rounds: 10000},
		harness.PhaseStat{Phase: "merge", Rounds: 4},
	))
	small := report(resWithPhases("a", 100000,
		harness.PhaseStat{Phase: "decompose", Rounds: 10000},
		harness.PhaseStat{Phase: "merge", Rounds: 12},
	))
	d, err := Compare(old, small, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK {
		t.Fatalf("+8 rounds on a 4-round phase gated despite PhaseMinDelta=16: %+v", d)
	}
	if d.Changed != 1 {
		t.Fatalf("phase movement not detected as a change: %+v", d)
	}
}

// TestPhaseGateDisabled: a negative PhaseWorsen turns per-phase gating off.
func TestPhaseGateDisabled(t *testing.T) {
	old := report(resWithPhases("a", 100000, harness.PhaseStat{Phase: "cutter", Rounds: 1000}))
	worse := report(resWithPhases("a", 100000, harness.PhaseStat{Phase: "cutter", Rounds: 5000}))
	th := DefaultThresholds()
	th.PhaseWorsen = -1
	th.EnvelopeWorsen = -1 // the scenario total would gate otherwise
	d, err := Compare(old, worse, th)
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK {
		t.Fatalf("disabled phase gate still regressed: %+v", d)
	}
}

// TestPhaseGateNewPhase: a phase appearing from nowhere with substantial
// rounds gates (its old ratio is 0, so any growth beyond the floor trips).
func TestPhaseGateNewPhase(t *testing.T) {
	old := report(resWithPhases("a", 100000, harness.PhaseStat{Phase: "decompose", Rounds: 10000}))
	grown := report(resWithPhases("a", 100000,
		harness.PhaseStat{Phase: "decompose", Rounds: 10000},
		harness.PhaseStat{Phase: "bfs-layers", Rounds: 3000},
	))
	d, err := Compare(old, grown, Thresholds{EnvelopeWorsen: -1, PhaseWorsen: 0.25, PhaseMinDelta: 16})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK {
		t.Fatalf("new 3000-round phase passed the gate: %+v", d)
	}
}

// TestPhaseDeltasInMetrics: phase rows surface as phase:<key> metric deltas
// so the JSON diff (and the markdown "other deltas" column) carries them.
func TestPhaseDeltasInMetrics(t *testing.T) {
	old := report(resWithPhases("a", 100000, harness.PhaseStat{Phase: "cutter", Rounds: 1000}))
	moved := report(resWithPhases("a", 100000, harness.PhaseStat{Phase: "cutter", Rounds: 1100}))
	d, err := Compare(old, moved, Thresholds{EnvelopeWorsen: -1, PhaseWorsen: -1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range d.Deltas[0].Metrics {
		if m.Metric == "phase:cutter" {
			found = true
			if m.Old != 1000 || m.New != 1100 {
				t.Fatalf("phase delta = %+v, want 1000 → 1100", m)
			}
			if m.OldRatio != 0.01 || m.NewRatio != 0.011 {
				t.Fatalf("phase ratios = %+v, want 0.01 → 0.011", m)
			}
		}
	}
	if !found {
		t.Fatalf("no phase:cutter metric delta: %+v", d.Deltas[0].Metrics)
	}
}

// TestPhaseSelfDiffUnchanged: phases must not destabilize the
// baseline-currency invariant — a self-diff with phases stays unchanged.
func TestPhaseSelfDiffUnchanged(t *testing.T) {
	rep := report(resWithPhases("a", 100000,
		harness.PhaseStat{Phase: "decompose", Rounds: 9000, Messages: 50},
		harness.PhaseStat{Phase: "cutter", Rounds: 1000, Messages: 20, RoundsByDepth: "600/400"},
	))
	d, err := Compare(rep, rep, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK || d.Unchanged != 1 {
		t.Fatalf("self-diff with phases not clean: %+v", d)
	}
}
