package benchdiff

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dsssp/internal/harness"
)

func phased(name string, rounds, roundsEnv int64, phases ...harness.PhaseStat) harness.Result {
	r := res(name, rounds, roundsEnv)
	r.Phases = phases
	return r
}

func TestChainSeries(t *testing.T) {
	reps := []harness.Report{
		report(
			phased("a", 1000, 10000, harness.PhaseStat{Phase: "decompose", Rounds: 800}),
			res("b", 2000, 10000),
		),
		report(
			phased("a", 1100, 10000, harness.PhaseStat{Phase: "decompose", Rounds: 900}),
			res("b", 2000, 10000),
		),
		report(
			phased("a", 1210, 10000, harness.PhaseStat{Phase: "decompose", Rounds: 1000}),
			res("c", 500, 10000), // b removed, c added
		),
	}
	labels := []string{"t0", "t1", "t2"}
	tr, err := Chain(reps, labels, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Schema != TrendSchema || tr.Suite != "default" || !tr.Quick {
		t.Fatalf("header: %+v", tr)
	}
	if len(tr.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(tr.Steps))
	}

	find := func(scn string) ScenarioTrend {
		for _, st := range tr.Scenarios {
			if st.Scenario == scn {
				return st
			}
		}
		t.Fatalf("scenario %q missing from trend", scn)
		panic("unreachable")
	}
	a := find("a")
	if want := []bool{true, true, true}; !boolsEqual(a.Present, want) {
		t.Fatalf("a.Present = %v", a.Present)
	}
	b := find("b")
	if want := []bool{true, true, false}; !boolsEqual(b.Present, want) {
		t.Fatalf("b.Present = %v", b.Present)
	}

	// The chain's ratio series must be exactly what pairwise Compare
	// reports for the same metric — the two views share one vocabulary.
	var rounds *TrendSeries
	for i := range a.Metrics {
		if a.Metrics[i].Metric == "rounds" {
			rounds = &a.Metrics[i]
		}
	}
	if rounds == nil {
		t.Fatal("no rounds series for scenario a")
	}
	for i := 0; i+1 < len(reps); i++ {
		d, err := Compare(reps[i], reps[i+1], DefaultThresholds())
		if err != nil {
			t.Fatal(err)
		}
		for _, delta := range d.Deltas {
			if delta.Scenario != "a" {
				continue
			}
			for _, m := range delta.Metrics {
				if m.Metric != "rounds" {
					continue
				}
				if rounds.Ratios[i] != m.OldRatio || rounds.Ratios[i+1] != m.NewRatio {
					t.Fatalf("step %d: chain ratios (%v, %v) disagree with Compare (%v, %v)",
						i, rounds.Ratios[i], rounds.Ratios[i+1], m.OldRatio, m.NewRatio)
				}
			}
		}
	}

	// Per-phase series: values are the phase's rounds, ratios against the
	// scenario rounds envelope (the quantity PhaseWorsen gates).
	if len(a.Phases) != 1 || a.Phases[0].Metric != "phase:decompose" {
		t.Fatalf("phases = %+v", a.Phases)
	}
	ph := a.Phases[0]
	wantVals := []int64{800, 900, 1000}
	for i, v := range wantVals {
		if ph.Values[i] != v {
			t.Fatalf("phase values = %v, want %v", ph.Values, wantVals)
		}
		if want := float64(v) / 10000; ph.Ratios[i] != want {
			t.Fatalf("phase ratio[%d] = %v, want %v", i, ph.Ratios[i], want)
		}
	}

	// Absent report slots read as not-present with sentinel ratios.
	var bRounds TrendSeries
	for _, s := range b.Metrics {
		if s.Metric == "rounds" {
			bRounds = s
		}
	}
	if bRounds.Ratios[2] != -1 || bRounds.Values[2] != 0 {
		t.Fatalf("removed scenario should have sentinel point, got %v / %v", bRounds.Values, bRounds.Ratios)
	}
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestChainGatesSteps(t *testing.T) {
	reps := []harness.Report{
		report(res("a", 1000, 10000)),
		report(res("a", 1050, 10000)), // +5%: within gate
		report(res("a", 2000, 10000)), // +90%: regression
	}
	tr, err := Chain(reps, nil, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if tr.OK {
		t.Fatal("chain with a regressing step must not be OK")
	}
	if !tr.Steps[0].OK || tr.Steps[1].OK || tr.Steps[1].Regressed != 1 {
		t.Fatalf("steps = %+v", tr.Steps)
	}
	// nil labels default to r0..rN-1.
	if tr.Labels[0] != "r0" || tr.Labels[2] != "r2" {
		t.Fatalf("labels = %v", tr.Labels)
	}
}

func TestChainErrors(t *testing.T) {
	if _, err := Chain([]harness.Report{report(res("a", 1, 10))}, nil, DefaultThresholds()); err == nil {
		t.Fatal("single report must error")
	}
	full := harness.BuildReport("default", false, []harness.Result{res("a", 1, 10)})
	if _, err := Chain([]harness.Report{report(res("a", 1, 10)), full}, nil, DefaultThresholds()); err == nil {
		t.Fatal("mixed quick/full chain must error")
	}
	if _, err := Chain([]harness.Report{report(), report()}, []string{"only-one"}, DefaultThresholds()); err == nil {
		t.Fatal("label/report count mismatch must error")
	}
}

func TestTrendMarkdownAndJSON(t *testing.T) {
	reps := []harness.Report{
		report(phased("a", 1000, 10000, harness.PhaseStat{Phase: "decompose", Rounds: 800})),
		report(phased("a", 1100, 10000, harness.PhaseStat{Phase: "decompose", Rounds: 900})),
	}
	tr, err := Chain(reps, []string{"base", "head"}, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	var md bytes.Buffer
	if err := WriteTrendMarkdown(&md, tr); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, want := range []string{
		"# Bench trends",
		"base → head",
		"| a | rounds | 0.100 | 0.110 |",
		"| a | phase:decompose | 0.080 | 0.090 |",
		"Verdict: **PASS**",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	// The trend must survive a JSON round trip (the /v1/trends payload).
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trend
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != TrendSchema || len(back.Scenarios) != 1 || len(back.Scenarios[0].Phases) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
