package benchdiff

import (
	"fmt"
	"io"
	"strings"

	"dsssp/internal/harness"
)

// TrendSchema versions the trend JSON (the /v1/trends payload and the
// dsssp-diff -trend artifact).
const TrendSchema = "dsssp-trend/v1"

// Trend is the history-aware view of a chain of reports: where Compare
// answers "did this PR regress against the last baseline", Chain answers
// "where has every scenario's envelope ratio been heading" — per-scenario
// and per-phase measured/envelope time series over N reports, plus the
// pairwise gate verdicts between consecutive reports.
type Trend struct {
	Schema string `json:"schema"`
	Suite  string `json:"suite"`
	Quick  bool   `json:"quick"`
	// Labels name the reports, oldest first (timestamps, git revs, file
	// names — whatever the caller stores them under).
	Labels    []string        `json:"labels"`
	Scenarios []ScenarioTrend `json:"scenarios"`
	// Steps are the pairwise Compare verdicts between consecutive reports.
	Steps []Step `json:"steps"`
	// OK is true when every step passes its gate.
	OK bool `json:"ok"`
}

// Step summarizes one consecutive-pair comparison of the chain.
type Step struct {
	From        string `json:"from"`
	To          string `json:"to"`
	Unchanged   int    `json:"unchanged"`
	Changed     int    `json:"changed"`
	Regressed   int    `json:"regressed"`
	Added       int    `json:"added"`
	Removed     int    `json:"removed"`
	NewFailures int    `json:"new_failures"`
	OK          bool   `json:"ok"`
}

// ScenarioTrend is one scenario's series across the chain. Present/OK are
// indexed like Trend.Labels; series values at reports where the scenario is
// absent are 0 with ratio -1.
type ScenarioTrend struct {
	Scenario string `json:"scenario"`
	Present  []bool `json:"present"`
	OK       []bool `json:"ok"`
	// Metrics holds the enveloped scenario metrics (rounds, congestion,
	// awake, bits); Phases the per-phase round shares, named
	// "phase:<key>", with ratios against the scenario's rounds envelope —
	// exactly the quantities Compare gates pairwise.
	Metrics []TrendSeries `json:"metrics,omitempty"`
	Phases  []TrendSeries `json:"phases,omitempty"`
}

// TrendSeries is one metric's trajectory: Values are the measured numbers,
// Ratios the measured/envelope ratios (-1 where the report lacks the
// scenario or claims no envelope). Both are indexed like Trend.Labels.
type TrendSeries struct {
	Metric string    `json:"metric"`
	Values []int64   `json:"values"`
	Ratios []float64 `json:"ratios"`
}

// envMetric pairs a measured value with its envelope; the shared metric
// vocabulary of Compare (pairwise deltas) and Chain (N-report series).
type envMetric struct {
	name       string
	value, env int64
}

// envelopedMetrics lists the gateable metrics of a result in render order.
func envelopedMetrics(r harness.Result) []envMetric {
	return []envMetric{
		{"rounds", r.Rounds, r.Envelope.Rounds},
		{"congestion", r.MaxEdgeMessages, r.Envelope.Congestion},
		{"awake", r.MaxAwake, r.Envelope.MaxAwake},
		{"bits", r.MaxMessageBits, r.Envelope.MessageBits},
	}
}

// Chain aligns a chronological chain of reports (oldest first) by scenario
// name and builds the trend: every enveloped metric and every pipeline
// phase becomes a ratio time series, and every consecutive pair is gated
// with Compare under the thresholds. All reports must come from the same
// suite flavor. labels may be nil (reports are then labeled r0, r1, …) or
// must match len(reports).
func Chain(reports []harness.Report, labels []string, th Thresholds) (Trend, error) {
	if len(reports) < 2 {
		return Trend{}, fmt.Errorf("benchdiff: a trend needs at least 2 reports, got %d", len(reports))
	}
	if labels == nil {
		labels = make([]string, len(reports))
		for i := range labels {
			labels[i] = fmt.Sprintf("r%d", i)
		}
	}
	if len(labels) != len(reports) {
		return Trend{}, fmt.Errorf("benchdiff: %d labels for %d reports", len(labels), len(reports))
	}
	t := Trend{
		Schema: TrendSchema,
		Suite:  reports[0].Suite,
		Quick:  reports[0].Quick,
		Labels: labels,
		OK:     true,
	}
	// The pairwise comparisons double as the suite-flavor validation:
	// Compare rejects mixed suite/quick chains.
	for i := 0; i+1 < len(reports); i++ {
		d, err := Compare(reports[i], reports[i+1], th)
		if err != nil {
			return Trend{}, fmt.Errorf("%s vs %s: %w", labels[i], labels[i+1], err)
		}
		step := Step{
			From: labels[i], To: labels[i+1],
			Unchanged: d.Unchanged, Changed: d.Changed, Regressed: d.Regressed,
			Added: d.Added, Removed: d.Removed, NewFailures: d.NewFailures,
			OK: d.OK,
		}
		t.Steps = append(t.Steps, step)
		if !d.OK {
			t.OK = false
		}
	}

	// Scenario order: first appearance across the chain, so long-lived
	// scenarios lead and later additions append — stable as history grows.
	byName := make([]map[string]harness.Result, len(reports))
	var order []string
	seen := make(map[string]bool)
	for i, rep := range reports {
		byName[i] = make(map[string]harness.Result, len(rep.Results))
		for _, r := range rep.Results {
			byName[i][r.Scenario] = r
			if !seen[r.Scenario] {
				seen[r.Scenario] = true
				order = append(order, r.Scenario)
			}
		}
	}

	for _, name := range order {
		st := ScenarioTrend{
			Scenario: name,
			Present:  make([]bool, len(reports)),
			OK:       make([]bool, len(reports)),
		}
		// Metric series, aligned by the fixed enveloped-metric vocabulary.
		metricNames := []string{"rounds", "congestion", "awake", "bits"}
		series := make(map[string]*TrendSeries, len(metricNames)+4)
		for _, m := range metricNames {
			series[m] = newSeries(m, len(reports))
		}
		// Phase series in first-appearance order, like scenarios.
		var phaseOrder []string
		for i := range reports {
			r, ok := byName[i][name]
			if !ok {
				continue
			}
			st.Present[i], st.OK[i] = true, r.OK
			for _, m := range envelopedMetrics(r) {
				s := series[m.name]
				s.Values[i] = m.value
				if m.env > 0 {
					s.Ratios[i] = float64(m.value) / float64(m.env)
				}
			}
			for _, ph := range r.Phases {
				key := "phase:" + ph.Phase
				s, ok := series[key]
				if !ok {
					s = newSeries(key, len(reports))
					series[key] = s
					phaseOrder = append(phaseOrder, key)
				}
				s.Values[i] = ph.Rounds
				if r.Envelope.Rounds > 0 {
					s.Ratios[i] = float64(ph.Rounds) / float64(r.Envelope.Rounds)
				}
			}
		}
		for _, m := range metricNames {
			if s := series[m]; !s.empty() {
				st.Metrics = append(st.Metrics, *s)
			}
		}
		for _, key := range phaseOrder {
			if s := series[key]; !s.empty() {
				st.Phases = append(st.Phases, *s)
			}
		}
		t.Scenarios = append(t.Scenarios, st)
	}
	return t, nil
}

func newSeries(name string, n int) *TrendSeries {
	s := &TrendSeries{Metric: name, Values: make([]int64, n), Ratios: make([]float64, n)}
	for i := range s.Ratios {
		s.Ratios[i] = -1
	}
	return s
}

// empty reports whether the series carries no signal at all — every value
// zero and no envelope anywhere — so all-zero metrics (awake on CONGEST
// runs, bits outside strict mode) stay out of the trend.
func (s *TrendSeries) empty() bool {
	for i := range s.Values {
		if s.Values[i] != 0 || s.Ratios[i] >= 0 {
			return false
		}
	}
	return true
}

// WriteTrendMarkdown renders the trend table: one row per scenario×metric
// (and scenario×phase), ratio columns oldest → newest, and the net drift
// over the chain. The CI artifact and the /v1/trends?format=markdown view.
func WriteTrendMarkdown(w io.Writer, t Trend) error {
	var b strings.Builder
	b.WriteString("# Bench trends\n\n")
	fmt.Fprintf(&b, "Suite **%s**%s · %d reports: %s\n\n",
		t.Suite, quickMark(t.Quick), len(t.Labels), strings.Join(t.Labels, " → "))
	b.WriteString("Each cell is a measured/envelope ratio (lower is better; creep toward 1\n")
	b.WriteString("is a complexity regression). `phase:*` rows are that pipeline phase's\n")
	b.WriteString("share of the scenario's rounds envelope. drift is the relative change of\n")
	b.WriteString("the ratio over the whole chain.\n\n")

	for _, step := range t.Steps {
		mark := "pass"
		if !step.OK {
			mark = fmt.Sprintf("**FAIL** (%d regressed)", step.Regressed)
		}
		extra := ""
		if step.NewFailures > 0 {
			extra = fmt.Sprintf(", %d new failures", step.NewFailures)
		}
		fmt.Fprintf(&b, "- %s → %s: %s — %d unchanged, %d changed, %d added, %d removed%s\n",
			step.From, step.To, mark, step.Unchanged, step.Changed, step.Added, step.Removed, extra)
	}

	fmt.Fprintf(&b, "\n| scenario | metric | %s | drift |\n", strings.Join(t.Labels, " | "))
	b.WriteString("|---|---|" + strings.Repeat("---|", len(t.Labels)) + "---|\n")
	rows := 0
	for _, st := range t.Scenarios {
		for _, s := range append(append([]TrendSeries(nil), st.Metrics...), st.Phases...) {
			cells := make([]string, len(s.Ratios))
			for i, r := range s.Ratios {
				switch {
				case !st.Present[i]:
					cells[i] = "·"
				case r < 0:
					cells[i] = fmt.Sprintf("%d", s.Values[i])
				default:
					cells[i] = fmt.Sprintf("%.3f", r)
				}
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", st.Scenario, s.Metric, strings.Join(cells, " | "), drift(s))
			rows++
		}
	}
	if rows == 0 {
		b.WriteString("\nNo enveloped metrics in this chain.\n")
	}
	verdict := "**PASS**"
	if !t.OK {
		verdict = "**FAIL**"
	}
	fmt.Fprintf(&b, "\nVerdict: %s\n", verdict)
	_, err := io.WriteString(w, b.String())
	return err
}

// drift summarizes a series end to end: the relative ratio change between
// the first and last reports where it applies.
func drift(s TrendSeries) string {
	first, last := -1.0, -1.0
	for _, r := range s.Ratios {
		if r >= 0 {
			if first < 0 {
				first = r
			}
			last = r
		}
	}
	switch {
	case first < 0 || last < 0:
		return "-"
	case first == 0:
		if last == 0 {
			return "→ 0%"
		}
		return "↗ new"
	}
	rel := (last - first) / first
	arrow := "→"
	if rel > 0.005 {
		arrow = "↗"
	} else if rel < -0.005 {
		arrow = "↘"
	}
	return fmt.Sprintf("%s %+.1f%%", arrow, 100*rel)
}
