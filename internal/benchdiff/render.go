package benchdiff

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteJSON emits the diff as indented JSON (the machine-readable artifact
// a dashboard or a later PR can consume).
func WriteJSON(w io.Writer, d Diff) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteMarkdown renders the diff as a delta table. With changedOnly, rows
// whose every metric is identical are summarized in one count instead of
// listed — the usual CI view; the full table is for humans chasing a
// regression.
func WriteMarkdown(w io.Writer, d Diff, changedOnly bool) error {
	var b strings.Builder
	b.WriteString("# Bench diff\n\n")
	fmt.Fprintf(&b, "Old: suite **%s**%s · %d scenarios · %d failures\n",
		d.Old.Suite, quickMark(d.Old.Quick), d.Old.Scenarios, d.Old.Failures)
	fmt.Fprintf(&b, "New: suite **%s**%s · %d scenarios · %d failures\n\n",
		d.New.Suite, quickMark(d.New.Quick), d.New.Scenarios, d.New.Failures)
	fmt.Fprintf(&b, "%d unchanged · %d changed · %d regressed · %d added · %d removed · %d new failures\n\n",
		d.Unchanged, d.Changed, d.Regressed, d.Added, d.Removed, d.NewFailures)
	if th := d.Thresholds.EnvelopeWorsen; th >= 0 {
		fmt.Fprintf(&b, "Gate: envelope ratios may worsen at most %+.0f%%; ", 100*th)
	} else {
		b.WriteString("Gate: envelope ratios not gated; ")
	}
	if th := d.Thresholds.PhaseWorsen; th >= 0 {
		fmt.Fprintf(&b, "per-phase round shares at most %+.0f%% (≥%d rounds moved); ", 100*th, d.Thresholds.PhaseMinDelta)
	} else {
		b.WriteString("per-phase round shares not gated; ")
	}
	if d.Thresholds.AllowNewFailures {
		b.WriteString("new verification failures tolerated.\n")
	} else {
		b.WriteString("new verification failures block.\n")
	}

	rows := 0
	for _, delta := range d.Deltas {
		if changedOnly && delta.Status == StatusUnchanged {
			continue
		}
		rows++
	}
	if rows > 0 {
		b.WriteString("\n| scenario | status | rounds | congestion | awake | bits | r(rounds) | r(congestion) | r(awake) | r(bits) | other deltas |\n")
		b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|\n")
		for _, delta := range d.Deltas {
			if changedOnly && delta.Status == StatusUnchanged {
				continue
			}
			cell := func(name string) string { return metricCell(delta, name) }
			rcell := func(name string) string { return ratioCell(delta, name) }
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s | %s | %s | %s | %s |\n",
				delta.Scenario, statusMark(delta),
				cell("rounds"), cell("congestion"), cell("awake"), cell("bits"),
				rcell("rounds"), rcell("congestion"), rcell("awake"), rcell("bits"),
				otherDeltas(delta))
		}
	}
	var reasons []string
	for _, delta := range d.Deltas {
		for _, r := range delta.Reasons {
			reasons = append(reasons, fmt.Sprintf("- **%s**: %s", delta.Scenario, r))
		}
	}
	if len(reasons) > 0 {
		b.WriteString("\n## Regressions\n\n")
		b.WriteString(strings.Join(reasons, "\n"))
		b.WriteString("\n")
	}
	verdict := "**PASS**"
	if !d.OK {
		verdict = "**FAIL**"
	}
	fmt.Fprintf(&b, "\nVerdict: %s\n", verdict)
	_, err := io.WriteString(w, b.String())
	return err
}

func quickMark(quick bool) string {
	if quick {
		return " (quick)"
	}
	return ""
}

func statusMark(d Delta) string {
	switch d.Status {
	case StatusRegressed:
		return "✗ regressed"
	case StatusUnchanged:
		return "unchanged"
	default:
		return string(d.Status)
	}
}

// tableMetrics are the metrics with their own table columns; everything
// else that moved lands in the "other deltas" cell so a row never reads as
// unchanged while a hidden metric (say, an APSP makespan) drifted.
var tableMetrics = map[string]bool{"rounds": true, "congestion": true, "awake": true, "bits": true}

func otherDeltas(d Delta) string {
	var parts []string
	for _, m := range d.Metrics {
		if tableMetrics[m.Metric] || m.Old == m.New {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %d → %d", m.Metric, m.Old, m.New))
	}
	if len(parts) == 0 {
		return "·"
	}
	return strings.Join(parts, ", ")
}

func findMetric(d Delta, name string) (MetricDelta, bool) {
	for _, m := range d.Metrics {
		if m.Metric == name {
			return m, true
		}
	}
	return MetricDelta{}, false
}

// metricCell renders "old → new (+x%)", or "·" when the metric is absent
// or did not move.
func metricCell(d Delta, name string) string {
	m, ok := findMetric(d, name)
	if !ok {
		return "·"
	}
	if m.Old == m.New {
		return fmt.Sprintf("%d", m.Old)
	}
	pct := ""
	if m.Old > 0 {
		pct = fmt.Sprintf(" (%+.1f%%)", 100*float64(m.New-m.Old)/float64(m.Old))
	}
	return fmt.Sprintf("%d → %d%s", m.Old, m.New, pct)
}

// ratioCell renders the envelope-ratio movement, bolding a gated failure.
func ratioCell(d Delta, name string) string {
	m, ok := findMetric(d, name)
	if !ok || m.OldRatio < 0 || m.NewRatio < 0 {
		return "-"
	}
	if m.OldRatio == m.NewRatio {
		return fmt.Sprintf("%.3f", m.NewRatio)
	}
	s := fmt.Sprintf("%.3f → %.3f", m.OldRatio, m.NewRatio)
	if m.Regressed {
		return "**" + s + "**"
	}
	return s
}
