package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	c := MintContext()
	h := c.Traceparent()
	if len(h) != 55 {
		t.Fatalf("traceparent length = %d, want 55 (%q)", len(h), h)
	}
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected own output", h)
	}
	if got != c {
		t.Fatalf("round trip: got %+v want %+v", got, c)
	}
	if !got.Sampled {
		t.Fatal("minted context must be sampled")
	}
}

func TestTraceparentParseValid(t *testing.T) {
	c, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if !ok {
		t.Fatal("valid traceparent rejected")
	}
	if c.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace ID = %s", c.TraceID)
	}
	if c.SpanID.String() != "b7ad6b7169203331" {
		t.Fatalf("span ID = %s", c.SpanID)
	}
	if !c.Sampled {
		t.Fatal("flags 01 must parse as sampled")
	}
	if c2, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00"); !ok || c2.Sampled {
		t.Fatal("flags 00 must parse as unsampled")
	}
	// A future version may append fields after the flags.
	if _, ok := ParseTraceparent("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); !ok {
		t.Fatal("future-version traceparent with extra field must parse")
	}
}

func TestTraceparentParseMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",     // missing flags
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-1",   // short flags
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",  // uppercase hex
		"00-0af7651916cd43dd8448eb211c80319c-B7AD6B7169203331-01",  // uppercase span
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",  // zero trace ID
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",  // zero span ID
		"00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01",  // non-hex
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // forbidden version
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01x", // version-00 trailing junk
		"0x-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // non-hex version
		"00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // wrong separator
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", h)
		}
	}
}

func TestMintIDsUnique(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		id := MintTraceID()
		if id.IsZero() {
			t.Fatal("minted zero trace ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %s after %d mints", id, i)
		}
		seen[id] = true
	}
}

func TestSpanTree(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	root, sc := tr.StartRequest("HTTP /v1/sssp", SpanContext{})
	if root == nil {
		t.Fatal("sampled StartRequest returned nil span")
	}
	if !sc.Sampled || !sc.Valid() {
		t.Fatalf("bad root context %+v", sc)
	}
	root.SetEndpoint("sssp")
	root.SetStatus(200)
	root.SetAttr("method", "POST")

	cacheSp := root.StartChild("cache.lookup")
	cacheSp.SetAttr("result", "miss")
	cacheSp.End()

	exec := root.StartChild("exec")
	exec.Graft("phase:frontier", exec.StartTime(), 3*time.Millisecond, Int64("rounds", 17))
	exec.SetAttr("rounds", int64(17))
	exec.End()
	root.End()

	got := tr.Recorder().Get(sc.TraceID.String())
	if got == nil {
		t.Fatal("trace not in recorder after root End")
	}
	if got.Endpoint != "sssp" || got.Status != 200 || got.Error {
		t.Fatalf("trace header %+v", got)
	}
	if len(got.Spans) != 4 {
		t.Fatalf("span count = %d, want 4", len(got.Spans))
	}
	// Exactly one root; every other span's parent is present.
	ids := make(map[string]bool, len(got.Spans))
	for _, s := range got.Spans {
		ids[s.SpanID] = true
	}
	roots := 0
	for _, s := range got.Spans {
		if s.ParentID == "" {
			roots++
			if s.Name != "HTTP /v1/sssp" {
				t.Fatalf("root span name %q", s.Name)
			}
			if s.Attrs["method"] != "POST" {
				t.Fatalf("root attrs %v", s.Attrs)
			}
			continue
		}
		if !ids[s.ParentID] {
			t.Fatalf("span %s has dangling parent %s", s.SpanID, s.ParentID)
		}
	}
	if roots != 1 {
		t.Fatalf("roots = %d, want 1", roots)
	}
	var sawGraft bool
	for _, s := range got.Spans {
		if s.Name == "phase:frontier" {
			sawGraft = true
			if s.DurationNano != int64(3*time.Millisecond) {
				t.Fatalf("graft duration %d", s.DurationNano)
			}
			if v, _ := s.Attrs["rounds"].(int64); v != 17 {
				t.Fatalf("graft attrs %v", s.Attrs)
			}
		}
	}
	if !sawGraft {
		t.Fatal("grafted span missing")
	}
}

func TestRootAdoptsParentContext(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	parent, _ := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	root, sc := tr.StartRequest("HTTP", parent)
	if sc.TraceID != parent.TraceID {
		t.Fatalf("trace ID not adopted: %s", sc.TraceID)
	}
	if sc.SpanID == parent.SpanID {
		t.Fatal("root must mint its own span ID")
	}
	root.End()
	got := tr.Recorder().Get(parent.TraceID.String())
	if got == nil {
		t.Fatal("trace not recorded")
	}
	// The remote parent is carried as an attribute, not a dangling ParentID.
	if got.Spans[0].ParentID != "" {
		t.Fatalf("root ParentID %q, want empty", got.Spans[0].ParentID)
	}
	if got.Spans[0].Attrs["remote_parent_span"] != parent.SpanID.String() {
		t.Fatalf("remote parent attr %v", got.Spans[0].Attrs)
	}
}

func TestUnsampledStillMintsIDs(t *testing.T) {
	tr := New(Config{SampleRate: -1})
	sp, sc := tr.StartRequest("HTTP", SpanContext{})
	if sp != nil {
		t.Fatal("unsampled StartRequest must return nil span")
	}
	if sc.TraceID.IsZero() || sc.SpanID.IsZero() {
		t.Fatalf("unsampled context must still carry IDs: %+v", sc)
	}
	if sc.Sampled {
		t.Fatal("unsampled context marked sampled")
	}
	// Inbound trace IDs are preserved for log correlation even unsampled.
	parent, _ := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	_, sc2 := tr.StartRequest("HTTP", parent)
	if sc2.TraceID != parent.TraceID {
		t.Fatal("unsampled request must keep the inbound trace ID")
	}
	if sc2.Sampled {
		t.Fatal("unsampled request must clear the sampled flag")
	}
}

func TestFractionalSampling(t *testing.T) {
	tr := New(Config{SampleRate: 0.25})
	sampled := 0
	for i := 0; i < 100; i++ {
		sp, _ := tr.StartRequest("r", SpanContext{})
		if sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 25 {
		t.Fatalf("deterministic 1-in-4 sampling got %d/100", sampled)
	}
}

// TestUnsampledZeroAlloc pins the acceptance criterion: tracing disabled
// by sampling adds no allocations on the request path.
func TestUnsampledZeroAlloc(t *testing.T) {
	tr := New(Config{SampleRate: -1})
	parent, _ := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	allocs := testing.AllocsPerRun(1000, func() {
		sp, sc := tr.StartRequest("HTTP /v1/sssp", parent)
		child := sp.StartChild("cache.lookup")
		child.SetAttr("result", "hit")
		child.End()
		sp.SetStatus(200)
		sp.End()
		_ = sc
	})
	if allocs != 0 {
		t.Fatalf("unsampled request path allocates %.1f/op, want 0", allocs)
	}
}

func TestSpanCap(t *testing.T) {
	tr := New(Config{SampleRate: 1, MaxSpans: 4})
	root, sc := tr.StartRequest("HTTP", SpanContext{})
	for i := 0; i < 10; i++ {
		c := root.StartChild("c")
		c.End()
	}
	root.Graft("g", root.StartTime(), time.Millisecond)
	root.End()
	got := tr.Recorder().Get(sc.TraceID.String())
	if got == nil {
		t.Fatal("capped trace not recorded")
	}
	if len(got.Spans) > 4 {
		t.Fatalf("span cap leaked: %d spans", len(got.Spans))
	}
	if got.DroppedSpans == 0 {
		t.Fatal("dropped count not recorded")
	}
}

func TestRecorderRetentionBias(t *testing.T) {
	tr := New(Config{SampleRate: 1, Recent: 8, Retained: 4, SlowThreshold: time.Hour})
	// One errored request…
	root, errSC := tr.StartRequest("HTTP /v1/sssp", SpanContext{})
	root.SetStatus(400)
	root.SetError("bad graph spec")
	root.End()
	// …then a flood of fast successes large enough to churn the recent ring.
	for i := 0; i < 50; i++ {
		sp, _ := tr.StartRequest("HTTP /v1/sssp", SpanContext{})
		sp.SetStatus(200)
		sp.End()
	}
	got := tr.Recorder().Get(errSC.TraceID.String())
	if got == nil {
		t.Fatal("errored trace evicted despite retention bias")
	}
	if !got.Error || got.Status != 400 {
		t.Fatalf("retained trace %+v", got)
	}
	errs := tr.Recorder().Traces(Filter{Errors: true})
	if len(errs) != 1 || errs[0].TraceID != errSC.TraceID.String() {
		t.Fatalf("error filter returned %d traces", len(errs))
	}
}

func TestRecorderFilters(t *testing.T) {
	tr := New(Config{SampleRate: 1, SlowThreshold: time.Hour})
	mk := func(endpoint string, status int) string {
		sp, sc := tr.StartRequest("HTTP", SpanContext{})
		sp.SetEndpoint(endpoint)
		sp.SetStatus(status)
		sp.End()
		return sc.TraceID.String()
	}
	mk("sssp", 200)
	apspID := mk("apsp", 200)
	mk("sssp", 422)

	if got := tr.Recorder().Traces(Filter{Endpoint: "apsp"}); len(got) != 1 || got[0].TraceID != apspID {
		t.Fatalf("endpoint filter: %d traces", len(got))
	}
	if got := tr.Recorder().Traces(Filter{Status: 422}); len(got) != 1 {
		t.Fatalf("status filter: %d traces", len(got))
	}
	if got := tr.Recorder().Traces(Filter{Limit: 2}); len(got) != 2 {
		t.Fatalf("limit: %d traces", len(got))
	}
	// Newest first.
	all := tr.Recorder().Traces(Filter{})
	if len(all) != 3 || all[0].Status != 422 {
		t.Fatalf("ordering: %d traces, first status %d", len(all), all[0].Status)
	}
	if got := tr.Recorder().Traces(Filter{MinDuration: time.Hour}); len(got) != 0 {
		t.Fatalf("min-duration filter: %d traces", len(got))
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	for i := 0; i < 3; i++ {
		sp, _ := tr.StartRequest("HTTP", SpanContext{})
		sp.SetStatus(200)
		sp.End()
	}
	var buf bytes.Buffer
	if err := tr.Recorder().WriteJSONL(&buf, Filter{}); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var tc Trace
		if err := json.Unmarshal(sc.Bytes(), &tc); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if len(tc.TraceID) != 32 {
			t.Fatalf("trace ID %q", tc.TraceID)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("JSONL lines = %d, want 3", lines)
	}
}

func TestContextHelpers(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	sp, _ := tr.StartRequest("HTTP", SpanContext{})
	ctx := NewContext(t.Context(), sp)
	if FromContext(ctx) != sp {
		t.Fatal("FromContext lost the span")
	}
	if FromContext(t.Context()) != nil {
		t.Fatal("empty context must yield the nil no-op span")
	}
	if NewContext(t.Context(), nil) != t.Context() {
		t.Fatal("NewContext(nil span) must not wrap the context")
	}
	sp.End()
}

func TestSpanError(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	root, sc := tr.StartRequest("HTTP", SpanContext{})
	c := root.StartChild("exec")
	c.SetError("compute exploded")
	c.SetError("second message ignored")
	c.End()
	root.SetStatus(200) // error bubbles from the span even on 200
	root.End()
	got := tr.Recorder().Get(sc.TraceID.String())
	if got == nil || !got.Error {
		t.Fatal("span error must mark the trace errored")
	}
	for _, s := range got.Spans {
		if s.Name == "exec" && s.Error != "compute exploded" {
			t.Fatalf("span error %q", s.Error)
		}
	}
	if strings.Contains(got.Spans[0].Error+got.Spans[1].Error, "second") {
		t.Fatal("SetError must keep the first message")
	}
}
