package trace

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// FlightRecorder keeps a bounded window of finished traces in memory:
// a "recent" ring holding the newest N traces regardless of outcome, and
// a "retained" ring that only admits interesting traces — errored or
// slower than the slow-query threshold — so a flood of fast cache hits
// cannot evict the one failed request an operator needs to see. Lookup
// checks both rings; total memory is bounded by the two capacities times
// the per-trace span cap.
type FlightRecorder struct {
	slowThreshold time.Duration

	mu       sync.Mutex
	recent   ring
	retained ring
}

// ring is a fixed-capacity FIFO of traces, newest at the logical end.
type ring struct {
	buf   []*Trace
	head  int // index of the oldest element
	count int
}

func newRing(capacity int) ring { return ring{buf: make([]*Trace, capacity)} }

func (r *ring) push(t *Trace) {
	if len(r.buf) == 0 {
		return
	}
	if r.count < len(r.buf) {
		r.buf[(r.head+r.count)%len(r.buf)] = t
		r.count++
		return
	}
	r.buf[r.head] = t
	r.head = (r.head + 1) % len(r.buf)
}

// at returns the i-th newest trace (0 = newest).
func (r *ring) at(i int) *Trace {
	return r.buf[(r.head+r.count-1-i)%len(r.buf)]
}

func newFlightRecorder(recent, retained int, slow time.Duration) *FlightRecorder {
	return &FlightRecorder{
		slowThreshold: slow,
		recent:        newRing(recent),
		retained:      newRing(retained),
	}
}

// interesting is the retention-bias predicate: errors and slow requests
// survive the recent ring's churn.
func (f *FlightRecorder) interesting(t *Trace) bool {
	return t.Error || t.Status >= 400 || time.Duration(t.DurationNano) >= f.slowThreshold
}

func (f *FlightRecorder) add(t *Trace) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recent.push(t)
	if f.interesting(t) {
		f.retained.push(t)
	}
}

// Filter selects traces from the recorder. The zero value matches
// everything.
type Filter struct {
	// MinDuration keeps only traces at least this slow.
	MinDuration time.Duration
	// Status keeps only traces with this exact HTTP status (0 = any).
	Status int
	// Errors keeps only traces marked errored.
	Errors bool
	// Endpoint keeps only traces with this endpoint label ("" = any).
	Endpoint string
	// Limit caps the result count (0 = a server-chosen default of 100).
	Limit int
}

func (fl Filter) match(t *Trace) bool {
	if fl.MinDuration > 0 && time.Duration(t.DurationNano) < fl.MinDuration {
		return false
	}
	if fl.Status != 0 && t.Status != fl.Status {
		return false
	}
	if fl.Errors && !t.Error {
		return false
	}
	if fl.Endpoint != "" && t.Endpoint != fl.Endpoint {
		return false
	}
	return true
}

// Traces returns matching traces newest-first. Retained-only traces
// (already evicted from the recent ring) are appended after the recent
// window, still newest-first within each group; duplicates are removed.
func (f *FlightRecorder) Traces(fl Filter) []*Trace {
	limit := fl.Limit
	if limit <= 0 {
		limit = 100
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Trace, 0, min(limit, f.recent.count+f.retained.count))
	seen := make(map[string]bool, f.recent.count)
	for i := 0; i < f.recent.count && len(out) < limit; i++ {
		t := f.recent.at(i)
		if fl.match(t) {
			out = append(out, t)
			seen[t.TraceID] = true
		}
	}
	for i := 0; i < f.retained.count && len(out) < limit; i++ {
		t := f.retained.at(i)
		if !seen[t.TraceID] && fl.match(t) {
			out = append(out, t)
		}
	}
	return out
}

// Get returns the trace with the given 32-hex ID, or nil. Both rings are
// searched, so an errored trace stays addressable after the recent ring
// has churned past it.
func (f *FlightRecorder) Get(id string) *Trace {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := 0; i < f.recent.count; i++ {
		if t := f.recent.at(i); t.TraceID == id {
			return t
		}
	}
	for i := 0; i < f.retained.count; i++ {
		if t := f.retained.at(i); t.TraceID == id {
			return t
		}
	}
	return nil
}

// WriteJSONL streams matching traces to w, one JSON trace per line,
// newest first — the export format the CI smoke job archives.
func (f *FlightRecorder) WriteJSONL(w io.Writer, fl Filter) error {
	enc := json.NewEncoder(w) // Encode appends the newline
	for _, t := range f.Traces(fl) {
		if err := enc.Encode(t); err != nil {
			return err
		}
	}
	return nil
}
