// Package trace is a dependency-free request-scoped tracing kernel for
// the serving tier: W3C traceparent propagation, explicit parent-child
// spans with attributes and monotonic timing, and a bounded in-memory
// flight recorder with slow/error retention bias (recorder.go).
//
// The paper's contribution is an accounting argument — every round,
// awake-round, and message is attributed to exactly one algorithm phase —
// and this package extends that attribution discipline up the stack: one
// causally-linked span tree per request, from the HTTP edge through queue
// wait, cache lookup, registry resolution, and repair down to the
// simulator's per-phase round intervals, so a single slow query can be
// explained the way a sweep report explains an aggregate.
//
// Sampling is the cost model: an unsampled request gets a nil *Span, and
// every Span method is nil-safe and allocation-free on nil — pinned by
// TestUnsampledZeroAlloc — so tracing disabled by sampling adds nothing
// to the cached-hit fast path.
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the W3C 16-byte trace identifier.
type TraceID [16]byte

// SpanID is the W3C 8-byte span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is the all-zero (invalid) trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the all-zero (invalid) span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// idState drives ID minting: a splitmix64 sequence seeded once from
// crypto/rand. IDs need uniqueness, not unpredictability, and the atomic
// step keeps minting allocation-free — crypto/rand on every request would
// heap-allocate through the io.Reader interface.
var idState atomic.Uint64

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

// rand64 returns the next splitmix64 output; safe for concurrent use and
// never allocates.
func rand64() uint64 {
	x := idState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// MintTraceID returns a fresh non-zero trace ID.
func MintTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		binary.BigEndian.PutUint64(t[:8], rand64())
		binary.BigEndian.PutUint64(t[8:], rand64())
	}
	return t
}

// MintSpanID returns a fresh non-zero span ID.
func MintSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		binary.BigEndian.PutUint64(s[:], rand64())
	}
	return s
}

// SpanContext is the propagated trace position: the wire contents of a
// W3C traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether both IDs are non-zero (the W3C validity rule).
func (c SpanContext) Valid() bool { return !c.TraceID.IsZero() && !c.SpanID.IsZero() }

// MintContext returns a fresh sampled root context (a new trace).
func MintContext() SpanContext {
	return SpanContext{TraceID: MintTraceID(), SpanID: MintSpanID(), Sampled: true}
}

// TraceparentHeader is the W3C propagation header name.
const TraceparentHeader = "traceparent"

// ParseTraceparent parses a W3C traceparent header
// ("00-<32 hex>-<16 hex>-<2 hex>"). Malformed or all-zero inputs return
// ok=false — the caller mints a fresh trace instead of propagating junk.
// Per spec, an unknown version is accepted as long as the version-00
// prefix parses; hex must be lowercase.
func ParseTraceparent(h string) (SpanContext, bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	if len(h) > 55 && (h[0] == '0' && h[1] == '0' || h[55] != '-') {
		return SpanContext{}, false // version 00 is exactly 55 chars; later versions may append "-..."
	}
	var c SpanContext
	if !hexDecodeLower(c.TraceID[:], h[3:35]) || !hexDecodeLower(c.SpanID[:], h[36:52]) {
		return SpanContext{}, false
	}
	var flags [1]byte
	if !hexDecodeLower(flags[:], h[53:55]) {
		return SpanContext{}, false
	}
	if h[0] == 'f' && h[1] == 'f' { // version 0xff is forbidden
		return SpanContext{}, false
	}
	if !isHexLower(h[0]) || !isHexLower(h[1]) {
		return SpanContext{}, false
	}
	if !c.Valid() {
		return SpanContext{}, false
	}
	c.Sampled = flags[0]&0x01 != 0
	return c, true
}

// Traceparent renders the context as a version-00 traceparent value.
func (c SpanContext) Traceparent() string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, c.TraceID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, c.SpanID[:])
	if c.Sampled {
		b = append(b, "-01"...)
	} else {
		b = append(b, "-00"...)
	}
	return string(b)
}

func isHexLower(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f'
}

// hexDecodeLower decodes src (lowercase hex only — the W3C grammar) into
// dst, returning false on any invalid byte.
func hexDecodeLower(dst []byte, src string) bool {
	for i := 0; i < len(dst); i++ {
		hi, lo := src[2*i], src[2*i+1]
		if !isHexLower(hi) || !isHexLower(lo) {
			return false
		}
		dst[i] = unhex(hi)<<4 | unhex(lo)
	}
	return true
}

func unhex(c byte) byte {
	if c <= '9' {
		return c - '0'
	}
	return c - 'a' + 10
}

// Attr is one span attribute. Values must be JSON-marshalable; the
// helpers below cover the kinds the serving layer uses.
type Attr struct {
	Key   string
	Value any
}

// String returns a string attribute.
func String(k, v string) Attr { return Attr{k, v} }

// Int64 returns an integer attribute.
func Int64(k string, v int64) Attr { return Attr{k, v} }

// Int returns an integer attribute.
func Int(k string, v int) Attr { return Attr{k, int64(v)} }

// Float64 returns a float attribute.
func Float64(k string, v float64) Attr { return Attr{k, v} }

// Config tunes a Tracer. The zero value samples everything into a
// default-sized recorder.
type Config struct {
	// SampleRate is the fraction of requests that record a span tree:
	// >= 1 records all, <= 0 records none (IDs are still mintable for
	// correlation), in between records deterministically every ~1/rate-th
	// request. 0 is "none", not "default" — callers wanting the default
	// pass 1.
	SampleRate float64
	// Recent is the flight recorder's recent-trace ring capacity
	// (default 256).
	Recent int
	// Retained is the slow/error retention ring capacity (default 64).
	Retained int
	// SlowThreshold routes traces at least this slow into the retained
	// ring (default 1s).
	SlowThreshold time.Duration
	// MaxSpans bounds one trace's span count; spans past the cap are
	// dropped and counted on the root (default 512). An APSP repair loop
	// over thousands of sources must not hold an unbounded tree alive.
	MaxSpans int
}

// Tracer mints request traces and feeds finished ones to its flight
// recorder. Safe for concurrent use.
type Tracer struct {
	rate     float64
	every    uint64 // 0<rate<1: sample when counter%every == 0
	counter  atomic.Uint64
	maxSpans int
	rec      *FlightRecorder
}

// New builds a Tracer and its flight recorder.
func New(cfg Config) *Tracer {
	if cfg.Recent <= 0 {
		cfg.Recent = 256
	}
	if cfg.Retained <= 0 {
		cfg.Retained = 64
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = time.Second
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 512
	}
	t := &Tracer{
		rate:     cfg.SampleRate,
		maxSpans: cfg.MaxSpans,
		rec:      newFlightRecorder(cfg.Recent, cfg.Retained, cfg.SlowThreshold),
	}
	if cfg.SampleRate > 0 && cfg.SampleRate < 1 {
		t.every = uint64(1 / cfg.SampleRate)
		if t.every < 1 {
			t.every = 1
		}
	}
	return t
}

// Recorder exposes the tracer's flight recorder (the /debug/traces
// surface reads it).
func (t *Tracer) Recorder() *FlightRecorder { return t.rec }

// sample is the per-request sampling decision: deterministic every-Nth
// for fractional rates, so a steady load yields a steady trace stream
// rather than a lucky burst.
func (t *Tracer) sample() bool {
	switch {
	case t.rate >= 1:
		return true
	case t.rate <= 0:
		return false
	default:
		return t.counter.Add(1)%t.every == 0
	}
}

// StartRequest opens the root span of one request's trace. parent is the
// inbound propagation context (the zero SpanContext when the client sent
// none): its trace ID is adopted, and the root span records it as its
// parent so the caller's trace links up. When the tracer declines to
// sample, the span is nil — every Span method no-ops on nil without
// allocating — and the returned SpanContext still carries a usable trace
// ID (inherited or minted) for request-ID and log correlation.
func (t *Tracer) StartRequest(name string, parent SpanContext) (*Span, SpanContext) {
	if t == nil || !t.sample() {
		if !parent.Valid() {
			// Correlation IDs only; no recording.
			parent.TraceID = MintTraceID()
			parent.SpanID = MintSpanID()
		}
		parent.Sampled = false
		return nil, parent
	}
	tid := parent.TraceID
	if tid.IsZero() {
		tid = MintTraceID()
	}
	at := &activeTrace{tracer: t, id: tid, start: time.Now()}
	sp := &Span{
		at:     at,
		id:     MintSpanID(),
		parent: parent.SpanID, // zero when the trace starts here
		name:   name,
		begin:  at.start,
	}
	at.root = sp
	at.open = 1
	return sp, SpanContext{TraceID: tid, SpanID: sp.id, Sampled: true}
}

// activeTrace accumulates one request's finished spans until the root
// ends, then finalizes into a Trace for the recorder.
type activeTrace struct {
	tracer *Tracer
	id     TraceID
	start  time.Time

	mu       sync.Mutex
	spans    []SpanData
	open     int
	dropped  int
	root     *Span
	endpoint string
	status   int
	isErr    bool
}

// Span is one region of a sampled request. A nil *Span is a valid,
// allocation-free no-op — the unsampled case — so instrumentation sites
// never branch on sampling.
type Span struct {
	at     *activeTrace
	id     SpanID
	parent SpanID
	name   string
	begin  time.Time
	attrs  []Attr
	errMsg string
	ended  bool
}

// SpanData is the exported (JSON) form of a finished span.
type SpanData struct {
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// StartUnixNano is wall-clock; DurationNano is measured on the
	// monotonic clock, so spans order and nest correctly even across a
	// wall-clock step.
	StartUnixNano int64          `json:"start_unix_ns"`
	DurationNano  int64          `json:"duration_ns"`
	Attrs         map[string]any `json:"attrs,omitempty"`
	Error         string         `json:"error,omitempty"`
}

// Trace is one finished request trace: the flat span list (every
// non-root span's ParentID names another span in the list — the
// connectivity the /debug/traces consumers verify) plus denormalized
// root fields the flight recorder filters on.
type Trace struct {
	TraceID       string     `json:"trace_id"`
	Endpoint      string     `json:"endpoint,omitempty"`
	Status        int        `json:"status,omitempty"`
	Error         bool       `json:"error,omitempty"`
	StartUnixNano int64      `json:"start_unix_ns"`
	DurationNano  int64      `json:"duration_ns"`
	DroppedSpans  int        `json:"dropped_spans,omitempty"`
	Spans         []SpanData `json:"spans"`
}

// StartChild opens a child span. Returns nil (still safe to use) on a
// nil receiver or when the trace's span cap is exhausted.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	at := s.at
	at.mu.Lock()
	if at.open+len(at.spans) >= at.tracer.maxSpans {
		at.dropped++
		at.mu.Unlock()
		return nil
	}
	at.open++
	at.mu.Unlock()
	return &Span{at: at, id: MintSpanID(), parent: s.id, name: name, begin: time.Now()}
}

// SetAttr attaches one attribute (no-op on nil).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, value})
}

// SetError marks the span failed (no-op on nil). The first message wins.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	if s.errMsg == "" {
		s.errMsg = msg
	}
}

// SetEndpoint denormalizes the request's endpoint label onto the trace
// for recorder filtering (root span only; no-op on nil).
func (s *Span) SetEndpoint(endpoint string) {
	if s == nil {
		return
	}
	s.at.mu.Lock()
	s.at.endpoint = endpoint
	s.at.mu.Unlock()
}

// SetStatus denormalizes the HTTP status onto the trace (no-op on nil).
func (s *Span) SetStatus(status int) {
	if s == nil {
		return
	}
	s.at.mu.Lock()
	s.at.status = status
	s.at.mu.Unlock()
}

// StartTime is the span's begin instant (zero on nil); Graft callers use
// it to place synthetic children inside the parent's interval.
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.begin
}

// Context is the span's propagation context (zero on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.at.id, SpanID: s.id, Sampled: true}
}

// TraceIDString is the trace's 32-hex ID ("" on nil) — the exemplar and
// log join key.
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	return s.at.id.String()
}

// Graft appends an already-finished child span with explicit timing —
// how the simulator's span ledger (whose "time" is rounds, not wall
// clock) is embedded into the wall-clock tree: the caller apportions the
// parent's measured interval across the ledger rows. No-op on nil.
func (s *Span) Graft(name string, start time.Time, d time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	at := s.at
	var m map[string]any
	if len(attrs) > 0 {
		m = make(map[string]any, len(attrs))
		for _, a := range attrs {
			m[a.Key] = a.Value
		}
	}
	at.mu.Lock()
	defer at.mu.Unlock()
	if at.open+len(at.spans) >= at.tracer.maxSpans {
		at.dropped++
		return
	}
	at.spans = append(at.spans, SpanData{
		SpanID:        MintSpanID().String(),
		ParentID:      s.id.String(),
		Name:          name,
		StartUnixNano: start.UnixNano(),
		DurationNano:  int64(d),
	})
	at.spans[len(at.spans)-1].Attrs = m
}

// End finishes the span; ending the root finalizes the trace and hands
// it to the flight recorder. No-op on nil; double End is a no-op too
// (the instrumented error paths may End defensively).
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	d := time.Since(s.begin)
	sd := SpanData{
		SpanID:        s.id.String(),
		Name:          s.name,
		StartUnixNano: s.begin.UnixNano(),
		DurationNano:  int64(d),
		Error:         s.errMsg,
	}
	if !s.parent.IsZero() {
		sd.ParentID = s.parent.String()
	}
	at := s.at
	if s == at.root {
		// The root's wire parent (the caller's span) is not in this trace;
		// leave ParentID empty so the local tree has exactly one root, and
		// carry the remote parent as an attribute instead.
		if !s.parent.IsZero() {
			sd.ParentID = ""
			s.attrs = append(s.attrs, Attr{"remote_parent_span", s.parent.String()})
		}
	}
	if len(s.attrs) > 0 {
		sd.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			sd.Attrs[a.Key] = a.Value
		}
	}
	if s.errMsg != "" {
		at.mu.Lock()
		at.isErr = true
		at.mu.Unlock()
	}
	at.mu.Lock()
	at.spans = append(at.spans, sd)
	at.open--
	if s != at.root {
		at.mu.Unlock()
		return
	}
	tr := &Trace{
		TraceID:       at.id.String(),
		Endpoint:      at.endpoint,
		Status:        at.status,
		Error:         at.isErr || at.status >= 400,
		StartUnixNano: at.start.UnixNano(),
		DurationNano:  int64(d),
		DroppedSpans:  at.dropped,
		Spans:         at.spans,
	}
	at.mu.Unlock()
	at.tracer.rec.add(tr)
}

// ctxKey carries the current span through context.Context.
type ctxKey struct{}

// NewContext returns ctx with the span attached (ctx unchanged when the
// span is nil — FromContext then returns nil, keeping the no-op chain).
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span attached to ctx, or nil (the universal
// no-op span) when none is.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
