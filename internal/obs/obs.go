// Package obs is a dependency-free telemetry kernel for the serving tier:
// a registry of named counters, gauges, and fixed-bucket histograms —
// optionally split by label values — rendered in the Prometheus text
// exposition format. Every mutation is a single atomic operation, so hot
// paths (per-request, per-phase, per-cache-lookup) pay no lock and the
// package is -race-clean by construction; the only mutexes guard series
// creation, which happens once per (metric, label-values) pair.
//
// The paper's claims are resource envelopes — rounds, awake time, message
// bits — and this registry is how those resources become observable per
// live query instead of per offline sweep: the serving layer feeds each
// query's per-phase round counts into histograms here, next to the plain
// operational signals (latency, queue depth, cache hit rates).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's Prometheus type.
type Kind string

// The three supported metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Registry holds metric families and renders them; construct with
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric: a kind, a help string, a label-key schema,
// and the set of instantiated series (one for empty label keys).
type family struct {
	name      string
	help      string
	kind      Kind
	labelKeys []string
	buckets   []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // label-values key → *Counter/*Gauge/*Histogram
	order  []string       // creation order; render sorts

	fn func() float64 // Func metrics: value read at scrape time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register creates (or panics on a conflicting duplicate of) a family.
// Duplicate registration is a programmer error — metrics are meant to be
// created once at construction and threaded to their instrumentation
// sites, never looked up by name on a hot path.
func (r *Registry) register(name, help string, kind Kind, labelKeys []string, buckets []float64, fn func() float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, k := range labelKeys {
		if !validName(k) {
			panic(fmt.Sprintf("obs: invalid label key %q on %q", k, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelKeys: append([]string(nil), labelKeys...),
		buckets:   buckets,
		series:    make(map[string]any),
		fn:        fn,
	}
	r.families[name] = f
	return f
}

// validName checks the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// seriesKey joins label values unambiguously (0xff cannot appear in UTF-8
// text, so values containing commas or quotes cannot collide).
func seriesKey(values []string) string { return strings.Join(values, "\xff") }

// with returns the series for the given label values, creating it on
// first use via make. Panics on label arity mismatch (programmer error).
func (f *family) with(values []string, make func() any) any {
	if len(values) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labelKeys), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := make()
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// --- counters ---

// Counter is a monotonically increasing count of events.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n panics (counters are monotonic).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil, nil)
	return f.with(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family split by label values.
type CounterVec struct{ f *family }

// CounterVec registers a counter family with the given label keys.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, labelKeys, nil, nil)}
}

// With returns (creating on first use) the counter for the label values.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.with(labelValues, func() any { return &Counter{} }).(*Counter)
}

// --- gauges ---

// Gauge is an instantaneous integer level (queue depth, in-flight count).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil, nil)
	return f.with(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family split by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers a gauge family with the given label keys.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, labelKeys, nil, nil)}
}

// With returns (creating on first use) the gauge for the label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.with(labelValues, func() any { return &Gauge{} }).(*Gauge)
}

// --- scrape-time function metrics ---

// CounterFunc registers a counter whose value is read from fn at scrape
// time. fn must be monotonic (e.g. an existing subsystem's own hit
// counter) and safe for concurrent calls.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, KindCounter, nil, nil, fn)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, KindGauge, nil, nil, fn)
}

// --- histograms ---

// Histogram is a fixed-bucket distribution. Buckets are cumulative-≤ at
// render time (Prometheus le semantics); internally each slot counts its
// own interval so Observe touches exactly one bucket counter. A scrape
// concurrent with observations may see a bucket increment before the
// matching _count/_sum increments — each individual series stays
// monotonic, which is what rate() needs.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Int64 // len(bounds)+1; last is +Inf
	count     atomic.Int64
	sumBits   atomic.Uint64              // float64 bits, CAS-accumulated
	exemplars []atomic.Pointer[exemplar] // len(bounds)+1, latest per bucket
}

// exemplar pins one observed value to the trace that produced it, so a
// histogram bucket in a dashboard can deep-link to a concrete request in
// the flight recorder. Last write per bucket wins.
type exemplar struct {
	value   float64
	traceID string
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, len(bounds) if none
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and, when traceID is non-empty,
// stores it as the containing bucket's exemplar (rendered in the
// OpenMetrics "# {trace_id=…} value" form).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&exemplar{value: v, traceID: traceID})
}

// Count reads the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reads the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
}

// checkBuckets validates histogram bounds: non-empty, strictly ascending,
// finite (the +Inf bucket is implicit).
func checkBuckets(name string, bounds []float64) []float64 {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q has no buckets", name))
	}
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic(fmt.Sprintf("obs: histogram %q bucket %v is not finite", name, b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending at %v", name, b))
		}
	}
	return append([]float64(nil), bounds...)
}

// Histogram registers an unlabeled fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, KindHistogram, nil, checkBuckets(name, buckets), nil)
	return f.with(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family split by label values; every series
// shares the family's bucket bounds.
type HistogramVec struct{ f *family }

// HistogramVec registers a histogram family with the given label keys.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, KindHistogram, labelKeys, checkBuckets(name, buckets), nil)}
}

// With returns (creating on first use) the histogram for the label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.with(labelValues, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// --- standard bucket layouts ---

// LatencyBuckets covers request latencies in seconds, 1ms–10s.
var LatencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// ExpBuckets returns n bounds start, start·factor, start·factor², …
// (factor > 1) — the natural layout for round counts, whose envelopes are
// polylog so interesting differences are multiplicative.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}
