package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// scrape renders the registry and parses it back into sample → value,
// failing the test on any line that is not valid exposition format.
func scrape(t *testing.T, r *Registry) map[string]float64 {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatalf("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("sample line %q has no value", line)
		}
		name, valStr := line[:idx], line[idx+1:]
		var v float64
		if valStr == "+Inf" {
			v = math.Inf(1)
		} else {
			f, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("sample %q value %q: %v", name, valStr, err)
			}
			v = f
		}
		if _, dup := out[name]; dup {
			t.Fatalf("duplicate sample %q", name)
		}
		out[name] = v
	}
	return out
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.")
	c.Add(3)
	cv := r.CounterVec("by_endpoint_total", "Per-endpoint requests.", "endpoint", "code")
	cv.With("sssp", "200").Add(2)
	cv.With("apsp", "400").Inc()
	g := r.Gauge("queue_depth", "Waiting requests.")
	g.Set(7)
	g.Dec()
	r.GaugeFunc("temperature", "Scrape-time gauge.", func() float64 { return 1.5 })
	r.CounterFunc("external_hits_total", "Scrape-time counter.", func() float64 { return 9 })
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	got := scrape(t, r)
	want := map[string]float64{
		"requests_total": 3,
		`by_endpoint_total{endpoint="sssp",code="200"}`: 2,
		`by_endpoint_total{endpoint="apsp",code="400"}`: 1,
		"queue_depth":                       6,
		"temperature":                       1.5,
		"external_hits_total":               9,
		`latency_seconds_bucket{le="0.1"}`:  1,
		`latency_seconds_bucket{le="1"}`:    2,
		`latency_seconds_bucket{le="+Inf"}`: 3,
		"latency_seconds_sum":               5.55,
		"latency_seconds_count":             3,
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %v, want %v", name, got[name], w)
		}
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	// le is inclusive: an observation exactly on a bound lands in that
	// bucket, matching Prometheus semantics.
	h.Observe(1)
	h.Observe(2)
	h.Observe(2.5)
	h.Observe(100)
	got := scrape(t, r)
	for name, want := range map[string]float64{
		`h_bucket{le="1"}`:    1,
		`h_bucket{le="2"}`:    2,
		`h_bucket{le="4"}`:    3,
		`h_bucket{le="+Inf"}`: 4,
		"h_count":             4,
	} {
		if got[name] != want {
			t.Errorf("%s = %v, want %v", name, got[name], want)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("c_total", "", "path").With(`a"b\c` + "\n").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `c_total{path="a\"b\\c\n"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("rendered %q, want a line %q", sb.String(), want)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	cases := map[string]func(r *Registry){
		"duplicate-name":   func(r *Registry) { r.Counter("x_total", ""); r.Gauge("x_total", "") },
		"bad-name":         func(r *Registry) { r.Counter("2bad", "") },
		"bad-label-key":    func(r *Registry) { r.CounterVec("ok_total", "", "bad-key") },
		"arity-mismatch":   func(r *Registry) { r.CounterVec("ok_total", "", "a", "b").With("only-one") },
		"counter-negative": func(r *Registry) { r.Counter("ok_total", "").Add(-1) },
		"empty-buckets":    func(r *Registry) { r.Histogram("h", "", nil) },
		"unsorted-buckets": func(r *Registry) { r.Histogram("h", "", []float64{2, 1}) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn(NewRegistry())
		})
	}
}

// TestConcurrentHammer drives counters, gauges, and histograms from many
// goroutines while a scraper renders concurrently, asserting (under
// -race) that rendering never tears: every scraped counter is monotonic
// scrape-over-scrape, every line parses, and the final totals are exact.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "")
	cv := r.CounterVec("events_by_kind_total", "", "kind")
	g := r.Gauge("level", "")
	hv := r.HistogramVec("dist", "", ExpBuckets(1, 2, 8), "phase")

	const (
		workers = 8
		perW    = 2000
	)
	kinds := []string{"a", "b", "c"}
	phases := []string{"p0", "p1"}

	done := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		prev := make(map[string]float64)
		for {
			got := scrape(t, r)
			for name, v := range got {
				if strings.HasSuffix(name, "_sum") || name == "level" {
					continue // gauges move both ways; float sums aren't compared
				}
				if p, ok := prev[name]; ok && v < p {
					t.Errorf("counter %s went backwards: %v -> %v", name, p, v)
				}
				prev[name] = v
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.Inc()
				cv.With(kinds[i%len(kinds)]).Inc()
				g.Add(1)
				g.Add(-1)
				hv.With(phases[i%len(phases)]).Observe(float64(i % 300))
			}
		}(w)
	}
	wg.Wait()
	close(done)
	scrapes.Wait()

	got := scrape(t, r)
	if got["events_total"] != workers*perW {
		t.Fatalf("events_total = %v, want %d", got["events_total"], workers*perW)
	}
	var byKind float64
	for _, k := range kinds {
		byKind += got[fmt.Sprintf("events_by_kind_total{kind=%q}", k)]
	}
	if byKind != workers*perW {
		t.Fatalf("sum over kinds = %v, want %d", byKind, workers*perW)
	}
	if got["level"] != 0 {
		t.Fatalf("level = %v, want 0", got["level"])
	}
	var hcount float64
	for _, p := range phases {
		hcount += got[fmt.Sprintf("dist_count{phase=%q}", p)]
	}
	if hcount != workers*perW {
		t.Fatalf("histogram count = %v, want %d", hcount, workers*perW)
	}
}

func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})

	// Plain Observe leaves rendering exemplar-free.
	h.Observe(0.05)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("exemplar rendered without ObserveExemplar:\n%s", buf.String())
	}

	h.ObserveExemplar(0.05, "0af7651916cd43dd8448eb211c80319c")
	h.ObserveExemplar(0.5, "") // empty trace ID: counted, no exemplar stored
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `lat_seconds_bucket{le="0.1"} 2 # {trace_id="0af7651916cd43dd8448eb211c80319c"} 0.05`
	if !strings.Contains(out, want) {
		t.Fatalf("exemplar missing from containing bucket:\nwant line %q\ngot:\n%s", want, out)
	}
	if !strings.Contains(out, "lat_seconds_bucket{le=\"1\"} 3\n") {
		t.Fatalf("empty-trace-ID observation leaked an exemplar:\n%s", out)
	}
	// Exemplars replace per bucket: a newer slow request wins its bucket.
	h.ObserveExemplar(0.07, "b7ad6b7169203331b7ad6b7169203331")
	buf.Reset()
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `# {trace_id="b7ad6b7169203331b7ad6b7169203331"} 0.07`) {
		t.Fatalf("exemplar not replaced:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "0af7651916cd43dd8448eb211c80319c") {
		t.Fatalf("stale exemplar survived in the same bucket:\n%s", buf.String())
	}
}
