package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and series
// by label values, so consecutive scrapes of a quiescent registry are
// byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		if f.fn != nil {
			fmt.Fprintf(bw, "%s %s\n", f.name, formatValue(f.fn()))
			continue
		}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		series := make(map[string]any, len(keys))
		for _, k := range keys {
			series[k] = f.series[k]
		}
		f.mu.Unlock()
		sort.Strings(keys)
		for _, k := range keys {
			var values []string
			if k != "" || len(f.labelKeys) > 0 {
				values = strings.Split(k, "\xff")
			}
			switch s := series[k].(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(f.labelKeys, values, "", ""), s.Value())
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(f.labelKeys, values, "", ""), s.Value())
			case *Histogram:
				cum := int64(0)
				for i, b := range f.buckets {
					cum += s.counts[i].Load()
					fmt.Fprintf(bw, "%s_bucket%s %d%s\n", f.name, labelString(f.labelKeys, values, "le", formatValue(b)), cum, exemplarSuffix(s, i))
				}
				cum += s.counts[len(f.buckets)].Load()
				fmt.Fprintf(bw, "%s_bucket%s %d%s\n", f.name, labelString(f.labelKeys, values, "le", "+Inf"), cum, exemplarSuffix(s, len(f.buckets)))
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labelString(f.labelKeys, values, "", ""), formatValue(s.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labelString(f.labelKeys, values, "", ""), s.Count())
			}
		}
	}
	return bw.Flush()
}

// Handler serves the registry at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// labelString renders {k1="v1",…}, appending the extra pair (histogram
// le) when set; empty when there are no pairs at all.
func labelString(keys, values []string, extraKey, extraValue string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		// %q escapes quotes, backslashes, and newlines exactly as the
		// exposition format's label-value escapes require.
		fmt.Fprintf(&b, "%s=%q", k, v)
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// exemplarSuffix renders bucket i's exemplar in the OpenMetrics form
// (" # {trace_id=\"…\"} value"), or "" when the bucket has none — buckets
// without exemplars render exactly as before, so the suffix is purely
// additive for existing consumers.
func exemplarSuffix(h *Histogram, i int) string {
	ex := h.exemplars[i].Load()
	if ex == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s", ex.traceID, formatValue(ex.value))
}

// escapeHelp keeps HELP lines single-line.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, "\\", `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip form, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
