package proto

import (
	"strings"
	"testing"

	"dsssp/internal/graph"
	"dsssp/internal/simnet"
)

func TestMessageBitsSizing(t *testing.T) {
	cases := []struct {
		name string
		msg  any
		want int64
	}{
		{"bool", true, 1},
		{"zero int", int64(0), 2},    // sign + 1 magnitude bit
		{"int 255", int64(255), 9},   // sign + 8
		{"negative", int64(-255), 9}, // magnitude of -255
		{"uint", uint64(1024), 11},   // Len64(1024)
		{"struct", struct{ A, B int64 }{3, 4}, (1 + 2) + (1 + 3)},
		{"empty struct", struct{}{}, 0},
		{"envelope", Envelope{Tag: 7, Body: int64(1)}, 3 + 2}, // Len64(7) + (sign+1)
		{"nil body", Envelope{Tag: 1, Body: nil}, 1 + 1},
		{"slice charges elements", []int64{1, 1, 1, 1}, 8 + 4*2},
		{"string", "ab", 8 + 16},
	}
	for _, c := range cases {
		if got := MessageBits(c.msg); got != c.want {
			t.Errorf("%s: MessageBits(%v) = %d, want %d", c.name, c.msg, got, c.want)
		}
	}
	// A Θ(n) payload must be charged Θ(n) bits — no smuggling a vector
	// inside "one message".
	big := make([]int64, 1000)
	if got := MessageBits(big); got < 1000 {
		t.Errorf("1000-element slice sized at only %d bits", got)
	}
}

func TestBitBudgetMonotone(t *testing.T) {
	if BitBudget(16, 1) <= 0 {
		t.Fatal("non-positive budget")
	}
	if BitBudget(1024, 1024) <= BitBudget(16, 1) {
		t.Error("budget must grow with n·maxW")
	}
	// O(log n): doubling n adds O(1) words' worth of bits.
	d := BitBudget(2048, 16) - BitBudget(1024, 16)
	if d <= 0 || d > 64 {
		t.Errorf("budget growth per doubling = %d bits, want a small positive constant", d)
	}
}

// TestStrictBudgetEnforced: the engine must fail loudly the moment a
// message exceeds MaxMessageBits, and must report MaxMessageBits in the
// metrics when sizing is on.
func TestStrictBudgetEnforced(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)

	// Within budget: runs clean and measures.
	eng := simnet.New(g, simnet.Config{Model: simnet.Congest, MessageBits: MessageBits, MaxMessageBits: 64})
	res, err := eng.Run(func(c *simnet.Ctx) {
		if c.ID() == 0 {
			c.Send(0, Envelope{Tag: 1, Body: int64(42)})
		}
		c.Next()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MaxMessageBits == 0 {
		t.Error("MaxMessageBits not measured")
	}

	// Oversized: loud failure naming the offender.
	eng = simnet.New(g, simnet.Config{Model: simnet.Congest, MessageBits: MessageBits, MaxMessageBits: 64})
	_, err = eng.Run(func(c *simnet.Ctx) {
		if c.ID() == 0 {
			c.Send(0, Envelope{Tag: 1, Body: make([]int64, 64)})
		}
		c.Next()
	})
	if err == nil {
		t.Fatal("oversized message accepted")
	}
	if !strings.Contains(err.Error(), "strict CONGEST violation") || !strings.Contains(err.Error(), "64-bit budget") {
		t.Errorf("violation not descriptive: %v", err)
	}

	// No budget: sizing only, never fails.
	eng = simnet.New(g, simnet.Config{Model: simnet.Congest, MessageBits: MessageBits})
	res, err = eng.Run(func(c *simnet.Ctx) {
		if c.ID() == 0 {
			c.Send(0, Envelope{Tag: 1, Body: make([]int64, 64)})
		}
		c.Next()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MaxMessageBits < 64 {
		t.Errorf("big message sized at %d bits", res.Metrics.MaxMessageBits)
	}
}
