package proto

import (
	"testing"

	"dsssp/internal/graph"
	"dsssp/internal/simnet"
)

// testTree builds each node's Tree view for the rooted tree given by parent
// node IDs (parent[root] == root). The tree edges must exist in g.
func testTree(g *graph.Graph, parent []graph.NodeID) func(c *simnet.Ctx) Tree {
	depth := make([]int64, g.N())
	for v := range parent {
		d := int64(0)
		for u := graph.NodeID(v); parent[u] != u; u = parent[u] {
			d++
		}
		depth[v] = d
	}
	var root graph.NodeID
	for v := range parent {
		if parent[v] == graph.NodeID(v) {
			root = graph.NodeID(v)
		}
	}
	return func(c *simnet.Ctx) Tree {
		t := Tree{InTree: true, Root: root, Parent: -1, Depth: depth[c.ID()]}
		for i := 0; i < c.Degree(); i++ {
			nb := c.NeighborID(i)
			if parent[c.ID()] == nb && c.ID() != root {
				t.Parent = i
			} else if parent[nb] == c.ID() {
				t.Children = append(t.Children, i)
			}
		}
		return t
	}
}

func pathParents(n int) []graph.NodeID {
	p := make([]graph.NodeID, n)
	for i := 1; i < n; i++ {
		p[i] = graph.NodeID(i - 1)
	}
	return p
}

func sum(a, b any) any { return a.(int64) + b.(int64) }

func TestAggregateBroadcastSum(t *testing.T) {
	g := graph.Path(7, graph.UnitWeights)
	tv := testTree(g, pathParents(7))
	e := simnet.New(g, simnet.Config{Model: simnet.Congest})
	res, err := e.Run(func(c *simnet.Ctx) {
		m := NewMailbox(c)
		total := AggregateBroadcast(m, tv(c), 10, int64(c.ID()), sum, -1)
		c.SetOutput(total)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0 + 1 + 2 + 3 + 4 + 5 + 6)
	for v, out := range res.Outputs {
		if out.(int64) != want {
			t.Fatalf("node %d got %v, want %d", v, out, want)
		}
	}
}

func TestAggregateUpRootOnly(t *testing.T) {
	g := graph.Star(5, graph.UnitWeights)
	parent := []graph.NodeID{0, 0, 0, 0, 0}
	tv := testTree(g, parent)
	e := simnet.New(g, simnet.Config{Model: simnet.Congest})
	res, err := e.Run(func(c *simnet.Ctx) {
		m := NewMailbox(c)
		agg, isRoot := AggregateUp(m, tv(c), 3, int64(1), sum, -1)
		if isRoot {
			c.SetOutput(agg)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0].(int64) != 5 {
		t.Fatalf("root aggregate %v, want 5", res.Outputs[0])
	}
	for v := 1; v < 5; v++ {
		if res.Outputs[v] != nil {
			t.Fatalf("non-root %d has output %v", v, res.Outputs[v])
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	g := graph.Path(6, graph.UnitWeights)
	tv := testTree(g, pathParents(6))
	e := simnet.New(g, simnet.Config{Model: simnet.Congest})
	res, err := e.Run(func(c *simnet.Ctx) {
		m := NewMailbox(c)
		// Nodes become "done" at very different times.
		m.SleepUntilAtLeast(int64(c.ID()) * 13)
		start := Barrier(m, tv(c), 20, 6, -1)
		if c.Round() != start {
			t.Errorf("node %d resumed at %d, want %d", c.ID(), c.Round(), start)
		}
		c.SetOutput(start)
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Outputs[0].(int64)
	for v, out := range res.Outputs {
		if out.(int64) != first {
			t.Fatalf("node %d start %v != %d", v, out, first)
		}
	}
	if first < 5*13 {
		t.Fatalf("start %d before the slowest node was done", first)
	}
}

func TestSweepUpDownSleeping(t *testing.T) {
	g := graph.Path(8, graph.UnitWeights)
	tv := testTree(g, pathParents(8))
	const windowStart, depthBound = 5, 8
	e := simnet.New(g, simnet.Config{Model: simnet.Sleeping})
	res, err := e.Run(func(c *simnet.Ctx) {
		m := NewMailbox(c)
		tr := tv(c)
		agg, isRoot := SweepUp(m, tr, 30, windowStart, depthBound, int64(1), sum)
		var rootVal any
		if isRoot {
			if agg.(int64) != 8 {
				t.Errorf("root sweep aggregate %v, want 8", agg)
			}
			rootVal = int64(100)
		}
		down := SweepDown(m, tr, 31, windowStart+depthBound+1, rootVal, nil)
		c.SetOutput(down)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range res.Outputs {
		if out.(int64) != 100 {
			t.Fatalf("node %d got %v from sweep down", v, out)
		}
	}
	// Energy: initial wake + at most 2 awake rounds per sweep (+1 slack).
	if res.Metrics.MaxAwake > 6 {
		t.Fatalf("max awake %d, want <= 6", res.Metrics.MaxAwake)
	}
	if res.Metrics.LostMessages != 0 {
		t.Fatalf("sweeps lost %d messages", res.Metrics.LostMessages)
	}
}

func TestSweepDownTransform(t *testing.T) {
	// Depth rebasing: each hop adds 1 to the value, so node at depth d
	// receives base+d.
	g := graph.Path(5, graph.UnitWeights)
	tv := testTree(g, pathParents(5))
	e := simnet.New(g, simnet.Config{Model: simnet.Sleeping})
	res, err := e.Run(func(c *simnet.Ctx) {
		m := NewMailbox(c)
		tr := tv(c)
		var rootVal any
		if tr.Parent < 0 {
			rootVal = int64(40)
		}
		v := SweepDown(m, tr, 9, 3, rootVal, func(x any) any { return x.(int64) + 1 })
		c.SetOutput(v)
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range res.Outputs {
		if out.(int64) != int64(41+v) {
			t.Fatalf("node %d got %v, want %d", v, out, 41+v)
		}
	}
}

func TestMailboxBuffersOutOfPhaseMessages(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	e := simnet.New(g, simnet.Config{Model: simnet.Congest})
	res, err := e.Run(func(c *simnet.Ctx) {
		m := NewMailbox(c)
		switch c.ID() {
		case 0:
			m.Send(0, 77, "early") // a message for a phase node 1 enters later
			m.Next()
		case 1:
			// First handle an unrelated phase; the tag-77 message must be
			// buffered, not lost.
			if got := m.WaitTag(55, 10); len(got) != 0 {
				t.Errorf("unexpected tag-55 messages: %v", got)
			}
			msgs := m.Take(77)
			if len(msgs) != 1 || msgs[0].Body.(string) != "early" {
				t.Errorf("buffered message missing: %v", msgs)
			}
			c.SetOutput(len(msgs))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[1].(int) != 1 {
		t.Fatal("tag buffering failed")
	}
}

func TestExchange(t *testing.T) {
	g := graph.Cycle(4, graph.UnitWeights)
	e := simnet.New(g, simnet.Config{Model: simnet.Congest})
	res, err := e.Run(func(c *simnet.Ctx) {
		m := NewMailbox(c)
		got := Exchange(m, 5, func(i int) (any, bool) { return int64(c.ID()), true })
		total := int64(0)
		for _, msg := range got {
			total += msg.Body.(int64)
		}
		c.SetOutput(total)
	})
	if err != nil {
		t.Fatal(err)
	}
	// On a cycle each node hears both neighbors.
	want := []int64{1 + 3, 0 + 2, 1 + 3, 0 + 2}
	for v, out := range res.Outputs {
		if out.(int64) != want[v] {
			t.Fatalf("node %d sum %v, want %d", v, out, want[v])
		}
	}
}

func TestWaitTagCountTimeout(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights)
	e := simnet.New(g, simnet.Config{Model: simnet.Congest})
	_, err := e.Run(func(c *simnet.Ctx) {
		m := NewMailbox(c)
		if c.ID() == 0 {
			_, ok := m.WaitTagCount(9, 2, 15)
			if ok {
				t.Error("expected timeout")
			}
			if c.Round() < 15 {
				t.Errorf("returned early at %d", c.Round())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdvanceToOverrunPanics(t *testing.T) {
	g := graph.Path(1, graph.UnitWeights)
	e := simnet.New(g, simnet.Config{Model: simnet.Sleeping})
	_, err := e.Run(func(c *simnet.Ctx) {
		m := NewMailbox(c)
		m.SleepUntil(10)
		m.AdvanceTo(5)
	})
	if err == nil {
		t.Fatal("want overrun panic surfaced as run error")
	}
}

func TestSweepSingleton(t *testing.T) {
	// A single-node tree: root is also a leaf.
	g := graph.New(1)
	e := simnet.New(g, simnet.Config{Model: simnet.Sleeping})
	res, err := e.Run(func(c *simnet.Ctx) {
		m := NewMailbox(c)
		tr := Tree{InTree: true, Root: 0, Parent: -1}
		agg, isRoot := SweepUp(m, tr, 1, 2, 3, int64(7), sum)
		if !isRoot || agg.(int64) != 7 {
			t.Errorf("singleton sweep: %v %v", agg, isRoot)
		}
		v := SweepDown(m, tr, 2, 7, int64(9), nil)
		c.SetOutput(v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0].(int64) != 9 {
		t.Fatalf("got %v", res.Outputs[0])
	}
}
