// Package proto provides the coordination primitives shared by every
// distributed algorithm in this repository:
//
//   - Mailbox: tag-based message dispatch over a simnet.Ctx. Algorithms are
//     built from phases that may drift between connected components
//     (Section 2.3 of the paper), so a message can arrive for a phase the
//     receiver has not entered yet; the mailbox buffers by tag instead of
//     dropping.
//   - Rooted-tree aggregation: event-driven convergecast/broadcast for the
//     CONGEST model, and one-shot depth-indexed sweeps (2 awake rounds per
//     node) for the sleeping model (Section 3.1.1 of the paper).
//   - Barriers: the paper's "all of C done → root picks a start round
//     Θ(|C|) in the future → broadcast" synchronization step.
package proto

import (
	"fmt"

	"dsssp/internal/graph"
	"dsssp/internal/simnet"
)

// Envelope is the wire format of every message sent through a Mailbox.
type Envelope struct {
	Tag  uint64
	Body any
}

// Msg is a received, tag-matched message.
type Msg struct {
	From    graph.NodeID
	NbIndex int
	Round   int64
	Body    any
}

// Mailbox wraps a simnet.Ctx with tag-based buffering.
type Mailbox struct {
	C *simnet.Ctx

	byTag map[uint64][]Msg
}

// NewMailbox creates a mailbox over ctx.
func NewMailbox(ctx *simnet.Ctx) *Mailbox {
	return &Mailbox{C: ctx, byTag: make(map[uint64][]Msg)}
}

// Send queues an Envelope{tag, body} on incident edge i.
func (m *Mailbox) Send(i int, tag uint64, body any) {
	m.C.Send(i, Envelope{Tag: tag, Body: body})
}

// Round returns the current round.
func (m *Mailbox) Round() int64 { return m.C.Round() }

func (m *Mailbox) pump(in []simnet.Inbound) {
	for _, ib := range in {
		env, ok := ib.Msg.(Envelope)
		if !ok {
			panic(fmt.Sprintf("proto: node %d received non-Envelope message %T", m.C.ID(), ib.Msg))
		}
		m.byTag[env.Tag] = append(m.byTag[env.Tag], Msg{
			From:    ib.From,
			NbIndex: ib.NbIndex,
			Round:   ib.Round,
			Body:    env.Body,
		})
	}
}

// Next advances one round, buffering arrivals.
func (m *Mailbox) Next() { m.pump(m.C.Next()) }

// SleepUntil sleeps until round r, buffering arrivals (in Sleeping mode,
// messages sent while asleep are lost by the model, not by the mailbox).
func (m *Mailbox) SleepUntil(r int64) { m.pump(m.C.SleepUntil(r)) }

// SleepUntilAtLeast clamps r to the future and sleeps.
func (m *Mailbox) SleepUntilAtLeast(r int64) { m.pump(m.C.SleepUntilAtLeast(r)) }

// AdvanceTo sleeps until round r; it is a no-op if the node is already in
// round r and panics if the node has overrun r (a scheduling bug).
func (m *Mailbox) AdvanceTo(r int64) {
	cur := m.C.Round()
	switch {
	case cur == r:
		return
	case cur > r:
		panic(fmt.Sprintf("proto: node %d overran scheduled round %d (now at %d)", m.C.ID(), r, cur))
	default:
		m.SleepUntil(r)
	}
}

// Pump buffers externally received inbounds (e.g. from a direct
// Ctx.WaitMessage call made by an algorithm that manages its own wake
// schedule).
func (m *Mailbox) Pump(in []simnet.Inbound) { m.pump(in) }

// Span runs f inside an open ledger span (see simnet.SpanMetrics): every
// round, message, and awake round the engine accounts while f executes —
// including all mailbox traffic f sends — is attributed to the (name,
// depth) span. Spans nest; panics propagate with the span closed. A no-op
// wrapper when the engine does not record spans.
func (m *Mailbox) Span(name string, depth int, f func()) {
	m.C.OpenSpan(name, depth)
	defer m.C.CloseSpan()
	f()
}

// Take drains and returns all buffered messages with the given tag.
func (m *Mailbox) Take(tag uint64) []Msg {
	q := m.byTag[tag]
	if len(q) > 0 {
		delete(m.byTag, tag)
	}
	return q
}

// Pending reports how many messages are buffered for tag.
func (m *Mailbox) Pending(tag uint64) int { return len(m.byTag[tag]) }

// WaitTag blocks (event-driven; Congest mode only) until at least one
// message with the given tag is buffered or the deadline round passes, then
// drains and returns them. A negative deadline waits indefinitely (the
// engine's deadlock detection is the backstop).
func (m *Mailbox) WaitTag(tag uint64, deadline int64) []Msg {
	for {
		if q := m.Take(tag); len(q) > 0 {
			return q
		}
		if deadline >= 0 && m.C.Round() >= deadline {
			return nil
		}
		m.pump(m.C.WaitMessage(deadline))
	}
}

// WaitTagCount blocks until at least want messages with the tag have been
// buffered (draining them incrementally), or the deadline passes; it returns
// all collected messages and whether the count was reached.
func (m *Mailbox) WaitTagCount(tag uint64, want int, deadline int64) ([]Msg, bool) {
	var acc []Msg
	for {
		acc = append(acc, m.Take(tag)...)
		if len(acc) >= want {
			return acc, true
		}
		if deadline >= 0 && m.C.Round() >= deadline {
			return acc, false
		}
		m.pump(m.C.WaitMessage(deadline))
	}
}

// Tree is one node's view of a rooted spanning tree. Parent and Children are
// adjacency indexes of this node's incident edges; Parent is -1 at the root.
// A node with InTree == false ignores tree operations (returns zero values).
type Tree struct {
	InTree   bool
	Root     graph.NodeID
	Parent   int
	Children []int
	Depth    int64
}

// Combine merges two aggregation values (both may be nil; the helpers skip
// nil child contributions only if the combiner cannot handle them — by
// convention our combiners treat their arguments as already-valid values).
type Combine func(a, b any) any

// AggregateUp performs an event-driven convergecast (Congest mode): every
// node waits for one value from each child, combines them with its own, and
// sends the result to its parent. The root returns (aggregate, true); other
// nodes return (nil, false). Panics on deadline expiry — a protocol bug.
func AggregateUp(m *Mailbox, t Tree, tag uint64, mine any, combine Combine, deadline int64) (any, bool) {
	if !t.InTree {
		return nil, false
	}
	acc := mine
	msgs, ok := m.WaitTagCount(tag, len(t.Children), deadline)
	if !ok {
		panic(fmt.Sprintf("proto: node %d: AggregateUp(tag=%d) missed %d/%d children by round %d",
			m.C.ID(), tag, len(t.Children)-len(msgs), len(t.Children), deadline))
	}
	for _, msg := range msgs {
		acc = combine(acc, msg.Body)
	}
	if t.Parent < 0 {
		return acc, true
	}
	m.Send(t.Parent, tag, acc)
	return nil, false
}

// BroadcastDown distributes a value from the root to the whole tree
// (event-driven; Congest mode). The root passes its value in rootVal; other
// nodes receive their parent's value. Every node returns the value.
func BroadcastDown(m *Mailbox, t Tree, tag uint64, rootVal any, deadline int64) any {
	if !t.InTree {
		return nil
	}
	val := rootVal
	if t.Parent >= 0 {
		msgs := m.WaitTag(tag, deadline)
		if len(msgs) == 0 {
			panic(fmt.Sprintf("proto: node %d: BroadcastDown(tag=%d) timed out at round %d", m.C.ID(), tag, deadline))
		}
		val = msgs[0].Body
	}
	for _, ch := range t.Children {
		m.Send(ch, tag, val)
	}
	return val
}

// AggregateBroadcast runs AggregateUp then BroadcastDown of the aggregate,
// so every tree node learns the tree-wide aggregate.
func AggregateBroadcast(m *Mailbox, t Tree, tag uint64, mine any, combine Combine, deadline int64) any {
	agg, isRoot := AggregateUp(m, t, tag, mine, combine, deadline)
	var rootVal any
	if isRoot {
		rootVal = agg
	}
	return BroadcastDown(m, t, tag+1, rootVal, deadline)
}

// Barrier implements the paper's component synchronization (Section 2.3,
// step 4): each node enters when it is locally done; the root picks a common
// start round sizeBound+slack ahead and broadcasts it; every node sleeps
// until that round. sizeBound must be an upper bound on the tree depth.
// Nodes with t.InTree == false must not call Barrier.
func Barrier(m *Mailbox, t Tree, tag uint64, sizeBound int64, deadline int64) int64 {
	if !t.InTree {
		return 0
	}
	_, isRoot := AggregateUp(m, t, tag, nil, func(a, b any) any { return nil }, deadline)
	var rootVal any
	if isRoot {
		rootVal = m.C.Round() + sizeBound + 2
	}
	start := BroadcastDown(m, t, tag+1, rootVal, deadline).(int64)
	m.SleepUntilAtLeast(start)
	return start
}

// SweepUp performs a one-shot depth-indexed convergecast inside the window
// starting at windowStart: the node at depth d listens in round
// windowStart+depthBound-d-1 and sends to its parent in round
// windowStart+depthBound-d. Every node is awake for at most 2 rounds
// (Section 3.1.1's schedule, one-shot form). depthBound must be >= the tree
// depth. Works in both models. The root returns (aggregate, true) once the
// window completes; all nodes return after round windowStart+depthBound.
func SweepUp(m *Mailbox, t Tree, tag uint64, windowStart, depthBound int64, mine any, combine Combine) (any, bool) {
	if !t.InTree {
		return nil, false
	}
	if t.Depth > depthBound {
		panic(fmt.Sprintf("proto: node %d: SweepUp depth %d exceeds bound %d", m.C.ID(), t.Depth, depthBound))
	}
	sendRound := windowStart + depthBound - t.Depth
	acc := mine
	if len(t.Children) > 0 {
		m.AdvanceTo(sendRound - 1) // awake while children send
		m.SleepUntil(sendRound)
		for _, msg := range m.Take(tag) {
			acc = combine(acc, msg.Body)
		}
	} else {
		m.AdvanceTo(sendRound)
	}
	if t.Parent < 0 {
		return acc, true
	}
	// The send is flushed by the node's next yield, whichever helper
	// performs it; no extra awake round is needed.
	m.Send(t.Parent, tag, acc)
	return nil, false
}

// SweepDown performs a one-shot depth-indexed broadcast in the window
// starting at windowStart: the node at depth d receives in round
// windowStart+d-1 and sends to its children in round windowStart+d. The
// transform hook (optional) rewrites the value as it descends: it receives
// the value from the parent and returns the value to forward. Every node
// returns its (possibly transformed) value; at most 2 awake rounds per node.
func SweepDown(m *Mailbox, t Tree, tag uint64, windowStart int64, rootVal any, transform func(any) any) any {
	if !t.InTree {
		return nil
	}
	val := rootVal
	if t.Parent >= 0 {
		recvRound := windowStart + t.Depth - 1
		m.AdvanceTo(recvRound)
		m.SleepUntil(recvRound + 1)
		msgs := m.Take(tag)
		if len(msgs) == 0 {
			panic(fmt.Sprintf("proto: node %d: SweepDown(tag=%d) missed parent message in round %d", m.C.ID(), tag, recvRound))
		}
		val = msgs[0].Body
	} else {
		m.AdvanceTo(windowStart)
	}
	if transform != nil {
		val = transform(val)
	}
	for _, ch := range t.Children {
		m.Send(ch, tag, val)
	}
	return val
}

// Exchange sends a value on each incident edge selected by pick (pick
// returns the value and true to send) in the current round, advances one
// round, and returns the messages received with the tag. All participating
// neighbors must call Exchange in the same round.
func Exchange(m *Mailbox, tag uint64, pick func(i int) (any, bool)) []Msg {
	for i := 0; i < m.C.Degree(); i++ {
		if v, ok := pick(i); ok {
			m.Send(i, tag, v)
		}
	}
	m.Next()
	return m.Take(tag)
}
