package proto

import (
	"fmt"
	"math/bits"
	"reflect"
)

// Strict-CONGEST message sizing. The CONGEST model allows O(log n)-bit
// messages; this file provides the two halves of enforcing that budget in
// simulation: an estimator of a message's information content in bits
// (plugged into simnet.Config.MessageBits) and the calibrated budget
// derived from the graph (simnet.Config.MaxMessageBits).

// MessageBits estimates the wire size of a message in bits. Envelopes are
// sized as tag + body; everything else is sized by information content:
// integers cost a sign bit plus the bits of their magnitude, booleans one
// bit, structs the sum of their fields, and variable-length containers
// (slices, maps, strings) a length header plus their elements — so a
// payload smuggling a Θ(n)-sized slice is charged Θ(n) bits and trips the
// strict budget instead of hiding inside "one message".
func MessageBits(msg any) int64 {
	if env, ok := msg.(Envelope); ok {
		return uintBits(env.Tag) + valueBits(reflect.ValueOf(env.Body))
	}
	return valueBits(reflect.ValueOf(msg))
}

// lenHeader is the charge for a variable-length container's length field.
const lenHeader = 8

func valueBits(v reflect.Value) int64 {
	if !v.IsValid() { // nil interface: presence bit only
		return 1
	}
	switch v.Kind() {
	case reflect.Bool:
		return 1
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n := v.Int()
		if n < 0 {
			n = -n
		}
		return 1 + uintBits(uint64(n))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return uintBits(v.Uint())
	case reflect.Float32, reflect.Float64:
		return 64
	case reflect.String:
		return lenHeader + 8*int64(v.Len())
	case reflect.Struct:
		var total int64
		for i := 0; i < v.NumField(); i++ {
			total += valueBits(v.Field(i))
		}
		return total
	case reflect.Slice, reflect.Array:
		total := int64(lenHeader)
		for i := 0; i < v.Len(); i++ {
			total += valueBits(v.Index(i))
		}
		return total
	case reflect.Map:
		total := int64(lenHeader)
		iter := v.MapRange()
		for iter.Next() {
			total += valueBits(iter.Key()) + valueBits(iter.Value())
		}
		return total
	case reflect.Ptr, reflect.Interface:
		if v.IsNil() {
			return 1
		}
		return 1 + valueBits(v.Elem())
	default:
		panic(fmt.Sprintf("proto: MessageBits cannot size a %s", v.Kind()))
	}
}

func uintBits(u uint64) int64 {
	if u == 0 {
		return 1
	}
	return int64(bits.Len64(u))
}

// BitBudget returns the strict-CONGEST per-message budget for a graph with
// n nodes and maximum edge weight maxW: a fixed number of O(log(n·maxW))-bit
// words. Distances (and the recursion's subproblem tags) need log(n·maxW)
// bits each, and the largest protocol payloads are structs of a handful of
// such fields, so the budget is word·Words with generous headroom — like
// the harness envelopes, the constants are calibrated once against the
// seed implementation and changing them is a deliberate act.
func BitBudget(n int, maxW int64) int64 {
	if n < 2 {
		n = 2
	}
	if maxW < 1 {
		maxW = 1
	}
	word := int64(bits.Len64(uint64(n)*uint64(maxW))) + 2 // one distance-sized field
	const words = 8                                       // largest payload is ~3 words (tag + a few fields); ~2.5× headroom
	return words * word
}
