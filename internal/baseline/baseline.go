// Package baseline implements the classic distributed shortest-path
// algorithms the paper's introduction (Section 1.1) uses as comparison
// points:
//
//   - BellmanFord: the folklore O(n)-time algorithm whose message complexity
//     is Θ(mn) and whose per-edge congestion is Θ(n) in the worst case.
//   - Dijkstra: the direct distributed implementation of Dijkstra's
//     algorithm — a leader repeatedly extracts the global minimum over a
//     spanning tree — with O(nD) time and O(n^2 + m) messages.
//   - AlwaysAwakeBFS: plain BFS in the sleeping model with every node awake
//     every round, so its energy equals its running time Θ(D); the paper's
//     energy-efficient BFS (package energybfs) is measured against it.
package baseline

import (
	"dsssp/internal/graph"
	"dsssp/internal/proto"
	"dsssp/internal/simnet"
)

// BellmanFord computes exact single-source distances in the Congest model:
// every node re-broadcasts its estimate whenever it improves; after n rounds
// all estimates are exact.
func BellmanFord(g *graph.Graph, source graph.NodeID) ([]int64, simnet.Metrics, error) {
	eng := simnet.New(g, simnet.Config{Model: simnet.Congest})
	res, err := eng.Run(func(c *simnet.Ctx) {
		end := int64(c.N()) + 1
		dist := graph.Inf
		if c.ID() == source {
			dist = 0
			for i := 0; i < c.Degree(); i++ {
				c.Send(i, int64(0))
			}
		}
		for c.Round() < end {
			improved := false
			for _, m := range c.WaitMessage(end) {
				if d, ok := m.Msg.(int64); ok {
					if cand := d + c.Weight(m.NbIndex); cand < dist {
						dist = cand
						improved = true
					}
				}
			}
			if improved {
				for i := 0; i < c.Degree(); i++ {
					c.Send(i, dist)
				}
			}
		}
		c.SetOutput(dist)
	})
	if err != nil {
		return nil, simnet.Metrics{}, err
	}
	return outputs(res), res.Metrics, nil
}

// dijkstra message bodies.
type djMin struct {
	Dist int64
	ID   graph.NodeID
}

// Dijkstra runs the direct distributed Dijkstra: a hop-BFS tree is built
// from the source, then each iteration convergecasts the minimum tentative
// distance of unvisited nodes, broadcasts the winner, and lets the winner
// relax its edges. Time O(n·D), messages O(n·(n+D)).
func Dijkstra(g *graph.Graph, source graph.NodeID) ([]int64, simnet.Metrics, error) {
	eng := simnet.New(g, simnet.Config{Model: simnet.Congest})
	res, err := eng.Run(func(c *simnet.Ctx) {
		mb := proto.NewMailbox(c)
		tree, inComp := buildBFSTree(mb, source)
		if !inComp {
			// Unreachable component: no participation.
			c.SetOutput(graph.Inf)
			return
		}
		const (
			tagDepth = 10
			tagIter  = 100 // iteration k uses tags tagIter+3k..tagIter+3k+2
		)
		// Tree building left everyone at round 2n+4; agree on the max tree
		// depth with two scheduled sweeps so every node computes the same
		// iteration schedule.
		n := int64(c.N())
		maxCombine := func(a, b any) any { return maxI64(a.(int64), b.(int64)) }
		agg0, isRoot0 := proto.SweepUp(mb, tree, tagDepth, 2*n+5, n, tree.Depth, maxCombine)
		var rv any
		if isRoot0 {
			rv = agg0
		}
		maxDepth := proto.SweepDown(mb, tree, tagDepth+1, 3*n+7, rv, nil).(int64)

		dist := graph.Inf
		if c.ID() == source {
			dist = 0
		}
		visited := false
		iterLen := 2*maxDepth + 6
		base := 4*n + 9
		mb.SleepUntilAtLeast(base)
		for k := int64(0); ; k++ {
			t0 := base + k*iterLen
			tag := tagIter + 3*uint64(k)
			mine := djMin{Dist: graph.Inf, ID: c.ID()}
			if !visited {
				mine = djMin{Dist: dist, ID: c.ID()}
			}
			agg, isRoot := proto.SweepUp(mb, tree, tag, t0, maxDepth, mine, func(a, b any) any {
				x, y := a.(djMin), b.(djMin)
				if y.Dist < x.Dist || (y.Dist == x.Dist && y.ID < x.ID) {
					return y
				}
				return x
			})
			var rootVal any
			if isRoot {
				rootVal = agg
			}
			winner := proto.SweepDown(mb, tree, tag+1, t0+maxDepth+1, rootVal, nil).(djMin)
			if winner.Dist == graph.Inf {
				break // all reachable nodes visited
			}
			relaxAt := t0 + 2*maxDepth + 2
			mb.AdvanceTo(relaxAt)
			if winner.ID == c.ID() {
				visited = true
				for i := 0; i < c.Degree(); i++ {
					mb.Send(i, tag+2, dist+c.Weight(i))
				}
			}
			mb.SleepUntil(relaxAt + 1)
			for _, m := range mb.Take(tag + 2) {
				if d := m.Body.(int64); d < dist {
					dist = d
				}
			}
		}
		c.SetOutput(dist)
	})
	if err != nil {
		return nil, simnet.Metrics{}, err
	}
	return outputs(res), res.Metrics, nil
}

// buildBFSTree floods from the root and returns this node's view of the
// hop-BFS tree (parent = first sender). Nodes outside the root's component
// return inComp == false. All nodes leave at round 2n+4.
func buildBFSTree(mb *proto.Mailbox, root graph.NodeID) (proto.Tree, bool) {
	c := mb.C
	const tagFlood, tagChild = 1, 2
	n := int64(c.N())
	floodEnd := n + 1
	t := proto.Tree{InTree: true, Root: root, Parent: -1, Depth: 0}
	inComp := c.ID() == root
	if inComp {
		for i := 0; i < c.Degree(); i++ {
			mb.Send(i, tagFlood, int64(1))
		}
	} else {
		for !inComp && mb.Round() < floodEnd {
			mb.Pump(c.WaitMessage(floodEnd))
			if msgs := mb.Take(tagFlood); len(msgs) > 0 {
				inComp = true
				t.Parent = msgs[0].NbIndex
				t.Depth = msgs[0].Body.(int64)
				for i := 0; i < c.Degree(); i++ {
					if i != t.Parent {
						mb.Send(i, tagFlood, t.Depth+1)
					}
				}
			}
		}
	}
	mb.SleepUntilAtLeast(floodEnd + 1)
	if inComp && t.Parent >= 0 {
		mb.Send(t.Parent, tagChild, true)
	}
	mb.SleepUntil(floodEnd + 2)
	for _, m := range mb.Take(tagChild) {
		t.Children = append(t.Children, m.NbIndex)
	}
	mb.SleepUntil(2*n + 4)
	mb.Take(tagFlood) // discard duplicate flood arrivals
	t.InTree = inComp
	return t, inComp
}

// AlwaysAwakeBFS computes hop distances from the sources in the Sleeping
// model with every node awake in every round — the energy-naive baseline:
// MaxAwake equals the running time.
func AlwaysAwakeBFS(g *graph.Graph, sources map[graph.NodeID]bool, threshold int64) ([]int64, simnet.Metrics, error) {
	eng := simnet.New(g, simnet.Config{Model: simnet.Sleeping})
	res, err := eng.Run(func(c *simnet.Ctx) {
		dist := graph.Inf
		if sources[c.ID()] {
			dist = 0
			for i := 0; i < c.Degree(); i++ {
				c.Send(i, int64(1))
			}
		}
		for r := int64(0); r <= threshold; r++ {
			for _, m := range c.Next() {
				if d := m.Msg.(int64); d < dist {
					dist = d
					if d < threshold {
						for i := 0; i < c.Degree(); i++ {
							if i != m.NbIndex {
								c.Send(i, d+1)
							}
						}
					}
				}
			}
		}
		c.SetOutput(dist)
	})
	if err != nil {
		return nil, simnet.Metrics{}, err
	}
	return outputs(res), res.Metrics, nil
}

func outputs(res *simnet.Result) []int64 {
	out := make([]int64, len(res.Outputs))
	for i, v := range res.Outputs {
		out[i] = v.(int64)
	}
	return out
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
