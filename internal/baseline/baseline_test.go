package baseline

import (
	"testing"
	"testing/quick"

	"dsssp/internal/graph"
)

func TestBellmanFordPath(t *testing.T) {
	g := graph.Path(10, graph.UniformWeights(5, 1))
	want := graph.Dijkstra(g, 0)
	got, met, err := BellmanFord(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("d[%d]=%d, want %d", v, got[v], want[v])
		}
	}
	if met.Rounds > int64(g.N())+2 {
		t.Fatalf("rounds %d exceed n+2", met.Rounds)
	}
}

func TestBellmanFordMatchesReference(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 3
		g := graph.RandomConnected(n, n, graph.UniformWeights(9, seed), seed)
		want := graph.Dijkstra(g, 0)
		got, _, err := BellmanFord(g, 0)
		if err != nil {
			return false
		}
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBellmanFordCongestionGrows(t *testing.T) {
	// Worst-case gadget: a unit-weight path 0..k plus a sink adjacent to
	// every path node i with weight 2(k-i)+1, so the sink's estimate
	// improves at every hop of the path wave and is re-broadcast each time:
	// per-edge congestion grows linearly with n.
	k := 40
	g := graph.New(k + 2)
	for i := 0; i < k; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	sink := graph.NodeID(k + 1)
	for i := 0; i <= k; i++ {
		g.AddEdge(graph.NodeID(i), sink, int64(2*(k-i)+1))
	}
	g.SortAdj()
	got, met, err := BellmanFord(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.Dijkstra(g, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("d[%d]=%d, want %d", v, got[v], want[v])
		}
	}
	if met.MaxEdgeMessages < int64(k/2) {
		t.Fatalf("expected Θ(n) congestion, got %d", met.MaxEdgeMessages)
	}
}

func TestDijkstraMatchesReference(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%25) + 3
		g := graph.RandomConnected(n, n/2, graph.UniformWeights(9, seed), seed)
		want := graph.Dijkstra(g, 0)
		got, _, err := Dijkstra(g, 0)
		if err != nil {
			return false
		}
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraDisconnected(t *testing.T) {
	g := graph.Disconnected(2, 8, 2, graph.UniformWeights(5, 3), 3)
	got, _, err := Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.Dijkstra(g, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("d[%d]=%d, want %d", v, got[v], want[v])
		}
	}
}

func TestDijkstraTimeScalesWithNTimesD(t *testing.T) {
	// On a path, D = n-1, so distributed Dijkstra needs Ω(n·D) = Ω(n^2)
	// rounds — the weakness our CSSP avoids.
	g := graph.Path(32, graph.UnitWeights)
	_, met, err := Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if met.Rounds < int64(32*32) {
		t.Fatalf("rounds=%d, expected Ω(n^2) on a path", met.Rounds)
	}
}

func TestAlwaysAwakeBFS(t *testing.T) {
	g := graph.Grid2D(8, 8, graph.UnitWeights)
	want := graph.BFSDist(g, 0)
	got, met, err := AlwaysAwakeBFS(g, map[graph.NodeID]bool{0: true}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("d[%d]=%d, want %d", v, got[v], want[v])
		}
	}
	// Energy equals time for the naive baseline.
	if met.MaxAwake != met.Rounds {
		t.Fatalf("maxAwake=%d rounds=%d: baseline should be awake throughout", met.MaxAwake, met.Rounds)
	}
	if met.LostMessages != 0 {
		t.Fatalf("always-awake baseline lost %d messages", met.LostMessages)
	}
}
