// Package sched demonstrates the paper's APSP implication (Section 1.1):
// because the CSSP algorithm has poly(log n) congestion per edge, n
// independent SSSP instances — one per source — can run concurrently under
// random-delay scheduling [LMR94, Gha15] with near-optimal makespan Õ(n).
//
// The composition works on recorded edge-usage traces: SSSP instances are
// oblivious to each other (their message schedules do not depend on
// concurrent traffic), so executing instance i delayed by r_i rounds and
// serializing each composed round r into max_e load_e(r) strict CONGEST
// rounds is a faithful schedule. The package measures:
//
//   - dilation T (the longest single instance),
//   - congestion C (max total messages through an edge over all instances),
//   - the makespan of the aligned composition (all delays zero),
//   - the makespan of the random-delay composition (delays uniform in
//     [0, C)), which the scheduling theorem bounds by Õ(C + T),
//   - the trivial sequential composition (Σ of instance durations).
package sched

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"

	"dsssp/internal/graph"
	"dsssp/internal/simnet"
)

// Trace is one instance's recorded messages.
type Trace struct {
	Entries []simnet.TraceEntry
	// Rounds is the instance's round count (its dilation).
	Rounds int64
	// MaxMessageBits is the largest message the instance sent, in bits
	// (0 when the runner did not measure it). The strict-CONGEST APSP
	// composition needs every instance inside the O(log n)-bit budget —
	// the scheduling theorem serializes rounds, never splits messages.
	MaxMessageBits int64
	// Spans is the instance's span ledger (nil when the runner did not
	// record spans): the per-phase breakdown of the rounds and messages
	// the instance contributes to the composition.
	Spans []simnet.SpanMetrics
}

// Composition is the result of scheduling a set of traces together.
type Composition struct {
	// Dilation is the maximum instance duration.
	Dilation int64
	// Congestion is the maximum total messages per edge across instances.
	Congestion int64
	// MakespanAligned is the serialized length with all delays zero.
	MakespanAligned int64
	// MakespanRandom is the serialized length under seeded random delays.
	MakespanRandom int64
	// MakespanSequential is the sum of instance durations.
	MakespanSequential int64
	// MaxMessageBits is the largest message any instance sent (0 when the
	// traces carry no measurement).
	MaxMessageBits int64
	// Spans is the merged span ledger of all instances (nil when the
	// traces carry none): per-phase rounds/messages/awake sums and bit
	// maxima across every composed instance, so the APSP report can break
	// its totals down by pipeline phase like the single-source runs do.
	Spans []simnet.SpanMetrics
}

// Compose computes the composition metrics for the given traces over a
// graph with m edges. Random delays are drawn uniformly from [0, C) with
// the given seed, where C is the measured congestion.
func Compose(m int, traces []Trace, seed int64) Composition {
	var comp Composition
	perEdge := make([]int64, m)
	spanLists := make([][]simnet.SpanMetrics, 0, len(traces))
	for _, tr := range traces {
		if tr.Rounds > comp.Dilation {
			comp.Dilation = tr.Rounds
		}
		if tr.MaxMessageBits > comp.MaxMessageBits {
			comp.MaxMessageBits = tr.MaxMessageBits
		}
		comp.MakespanSequential += tr.Rounds
		if len(tr.Spans) > 0 {
			spanLists = append(spanLists, tr.Spans)
		}
		for _, e := range tr.Entries {
			perEdge[e.Edge]++
		}
	}
	comp.Spans = simnet.MergeSpans(spanLists...)
	for _, c := range perEdge {
		if c > comp.Congestion {
			comp.Congestion = c
		}
	}
	zero := make([]int64, len(traces))
	comp.MakespanAligned = makespan(m, traces, zero)
	delays := make([]int64, len(traces))
	rng := rand.New(rand.NewSource(seed))
	span := comp.Congestion
	if span < 1 {
		span = 1
	}
	for i := range delays {
		delays[i] = rng.Int63n(span)
	}
	comp.MakespanRandom = makespan(m, traces, delays)
	return comp
}

// makespan serializes the delayed composition: composed round r needs
// max(1, max_e per-direction load at r) strict CONGEST rounds.
//
// The computation is all flat arrays — no maps, no interface-driven sorts:
// composed send rounds are bucketed per directed edge (2m dense indices)
// with a counting pass + prefix sums, each edge's bucket is sorted with the
// specialized slices.Sort for int64, and the per-round maximum load lives
// in a horizon-sized slice. This is what lets an n-instance APSP
// composition stay in the noise next to the simulations that produced it.
func makespan(m int, traces []Trace, delays []int64) int64 {
	var horizon int64
	total := 0
	for i, tr := range traces {
		d := delays[i]
		if tr.Rounds+d > horizon {
			horizon = tr.Rounds + d
		}
		total += len(tr.Entries)
	}
	if total == 0 {
		return horizon
	}
	// Counting pass: off[di+1] ends as the bucket start of directed edge
	// di (= 2*edge + dir), then a fill pass groups the composed rounds.
	off := make([]int32, 2*m+1)
	for _, tr := range traces {
		for _, e := range tr.Entries {
			off[2*int32(e.Edge)+int32(e.Dir)+1]++
		}
	}
	for i := 1; i <= 2*m; i++ {
		off[i] += off[i-1]
	}
	rounds := make([]int64, total)
	fill := make([]int32, 2*m)
	copy(fill, off[:2*m])
	var maxRound int64
	for i, tr := range traces {
		d := delays[i]
		for _, e := range tr.Entries {
			di := 2*int32(e.Edge) + int32(e.Dir)
			rounds[fill[di]] = e.Round + d
			fill[di]++
			if e.Round+d > maxRound {
				maxRound = e.Round + d
			}
		}
	}
	// maxLoad[r] = max over directed edges of the messages an edge carries
	// in composed round r; each bucket is a concatenation of per-trace
	// sorted runs, so sort it and scan for equal-round runs.
	maxLoad := make([]int64, maxRound+1)
	for di := 0; di < 2*m; di++ {
		rs := rounds[off[di]:off[di+1]]
		if len(rs) == 0 {
			continue
		}
		slices.Sort(rs)
		run := int64(0)
		for i := range rs {
			if i > 0 && rs[i] == rs[i-1] {
				run++
			} else {
				run = 1
			}
			if run > maxLoad[rs[i]] {
				maxLoad[rs[i]] = run
			}
		}
	}
	totalSpan := horizon
	for _, l := range maxLoad {
		if l > 1 {
			totalSpan += l - 1
		}
	}
	return totalSpan
}

// SSSPRunner produces the trace of one SSSP instance from the given source.
type SSSPRunner func(g *graph.Graph, source graph.NodeID) (Trace, error)

// APSP runs one SSSP instance per source (all n sources unless sources is
// non-nil), composes the traces, and returns the composition together with
// per-source distance agreement checking hooks left to the caller.
func APSP(g *graph.Graph, sources []graph.NodeID, run SSSPRunner, seed int64) (Composition, error) {
	return APSPParallel(g, sources, run, seed, 1)
}

// APSPParallel is APSP with the per-source instances fanned out over a pool
// of `workers` goroutines (workers <= 1 means sequential). The instances are
// independent simulations sharing nothing, so this is safe and near-linear;
// traces are collected in source order and the random delays are seeded, so
// the composition is byte-identical to a sequential run. The runner is
// invoked concurrently and must only touch per-source state.
func APSPParallel(g *graph.Graph, sources []graph.NodeID, run SSSPRunner, seed int64, workers int) (Composition, error) {
	if sources == nil {
		sources = make([]graph.NodeID, g.N())
		for i := range sources {
			sources[i] = graph.NodeID(i)
		}
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	traces := make([]Trace, len(sources))
	if workers <= 1 {
		for i, s := range sources {
			tr, err := run(g, s)
			if err != nil {
				return Composition{}, fmt.Errorf("sched: SSSP from %d: %w", s, err)
			}
			traces[i] = tr
		}
		return Compose(g.M(), traces, seed), nil
	}
	idx := make(chan int)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				if errs[w] != nil {
					continue // keep draining so the producer never blocks
				}
				tr, err := run(g, sources[i])
				if err != nil {
					errs[w] = fmt.Errorf("sched: SSSP from %d: %w", sources[i], err)
					continue
				}
				traces[i] = tr
			}
		}(w)
	}
	for i := range sources {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Composition{}, err
		}
	}
	return Compose(g.M(), traces, seed), nil
}
