package sched

import (
	"testing"

	"dsssp/internal/graph"
	"dsssp/internal/simnet"
)

func TestComposeBasics(t *testing.T) {
	// Two instances, both using edge 0 in round 0: aligned must serialize
	// (+1), a delayed composition must not.
	a := Trace{Rounds: 3, Entries: []simnet.TraceEntry{{Round: 0, Edge: 0, Dir: 0}}}
	b := Trace{Rounds: 3, Entries: []simnet.TraceEntry{{Round: 0, Edge: 0, Dir: 0}}}
	c := Compose(1, []Trace{a, b}, 1)
	if c.Dilation != 3 || c.Congestion != 2 || c.MakespanSequential != 6 {
		t.Fatalf("composition %+v", c)
	}
	if c.MakespanAligned != 4 { // horizon 3 + one serialization
		t.Fatalf("aligned=%d, want 4", c.MakespanAligned)
	}
}

func TestComposeNoConflicts(t *testing.T) {
	a := Trace{Rounds: 5, Entries: []simnet.TraceEntry{{Round: 0, Edge: 0, Dir: 0}}}
	b := Trace{Rounds: 5, Entries: []simnet.TraceEntry{{Round: 1, Edge: 0, Dir: 0}}}
	c := Compose(1, []Trace{a, b}, 1)
	if c.MakespanAligned != 5 {
		t.Fatalf("no-conflict aligned=%d, want 5", c.MakespanAligned)
	}
}

func TestComposeDirectionsIndependent(t *testing.T) {
	// Same edge, opposite directions, same round: no serialization needed
	// (CONGEST allows one message per direction).
	a := Trace{Rounds: 2, Entries: []simnet.TraceEntry{{Round: 0, Edge: 0, Dir: 0}}}
	b := Trace{Rounds: 2, Entries: []simnet.TraceEntry{{Round: 0, Edge: 0, Dir: 1}}}
	c := Compose(1, []Trace{a, b}, 1)
	if c.MakespanAligned != 2 {
		t.Fatalf("aligned=%d, want 2", c.MakespanAligned)
	}
}

func TestRandomDelaysBeatAligned(t *testing.T) {
	// 20 identical wave instances sweeping across 25 edges for 100 rounds:
	// aligned stacks all 20 on the same edge every round (makespan ~ 20T),
	// random delays spread them (makespan ~ C + T).
	const m, nInst, rounds = 25, 20, 100
	traces := make([]Trace, nInst)
	for i := range traces {
		es := make([]simnet.TraceEntry, rounds)
		for r := range es {
			es[r] = simnet.TraceEntry{Round: int64(r), Edge: graph.EdgeID(r % m), Dir: 0}
		}
		traces[i] = Trace{Rounds: rounds, Entries: es}
	}
	c := Compose(m, traces, 7)
	if c.MakespanAligned < nInst*rounds/2 {
		t.Fatalf("aligned %d unexpectedly small", c.MakespanAligned)
	}
	if c.MakespanRandom*3 >= c.MakespanAligned {
		t.Fatalf("random %d not far better than aligned %d", c.MakespanRandom, c.MakespanAligned)
	}
	if c.MakespanRandom >= c.MakespanSequential {
		t.Fatalf("random %d not better than sequential %d", c.MakespanRandom, c.MakespanSequential)
	}
}

func TestMakespanBoundHolds(t *testing.T) {
	// The scheduling theorem shape: random-delay makespan = O(C + T) with
	// modest constants, far below C*T for many bursty instances.
	traces := make([]Trace, 40)
	for i := range traces {
		es := make([]simnet.TraceEntry, 10)
		for r := range es {
			es[r] = simnet.TraceEntry{Round: int64(r * 3), Edge: 0, Dir: 0}
		}
		traces[i] = Trace{Rounds: 30, Entries: es}
	}
	c := Compose(1, traces, 3)
	bound := 4 * (c.Congestion + c.Dilation)
	if c.MakespanRandom > bound {
		t.Fatalf("random makespan %d exceeds 4(C+T)=%d", c.MakespanRandom, bound)
	}
}

func TestAPSPWithRealTraces(t *testing.T) {
	// End-to-end: record real Bellman-Ford-ish floods per source and
	// compose. Uses a tiny flood program for speed.
	g := graph.RandomConnected(24, 24, graph.UnitWeights, 5)
	run := func(g *graph.Graph, s graph.NodeID) (Trace, error) {
		eng := simnet.New(g, simnet.Config{Model: simnet.Congest, RecordTrace: true})
		res, err := eng.Run(func(c *simnet.Ctx) {
			d := int64(-1)
			end := int64(c.N())
			if c.ID() == s {
				d = 0
				for i := 0; i < c.Degree(); i++ {
					c.Send(i, int64(1))
				}
			}
			for c.Round() < end {
				for _, m := range c.WaitMessage(end) {
					if d == -1 {
						d = m.Msg.(int64)
						for i := 0; i < c.Degree(); i++ {
							c.Send(i, d+1)
						}
					}
				}
				if d != -1 {
					break
				}
			}
		})
		if err != nil {
			return Trace{}, err
		}
		return Trace{Entries: res.Trace, Rounds: res.Metrics.Rounds}, nil
	}
	comp, err := APSP(g, nil, run, 11)
	if err != nil {
		t.Fatal(err)
	}
	if comp.MakespanRandom > comp.MakespanSequential {
		t.Fatalf("random %d worse than sequential %d", comp.MakespanRandom, comp.MakespanSequential)
	}
	if comp.Congestion < 2 {
		t.Fatalf("expected overlapping edge usage, congestion=%d", comp.Congestion)
	}
}
