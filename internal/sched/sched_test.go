package sched

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dsssp/internal/graph"
	"dsssp/internal/simnet"
)

// makespanRef is the pre-flat-array makespan (maps + sort.Slice), kept as
// the reference the rewritten implementation is pinned against.
func makespanRef(m int, traces []Trace, delays []int64) int64 {
	type key struct {
		edge graph.EdgeID
		dir  byte
	}
	rounds := make(map[key][]int64)
	var horizon int64
	for i, tr := range traces {
		d := delays[i]
		if tr.Rounds+d > horizon {
			horizon = tr.Rounds + d
		}
		for _, e := range tr.Entries {
			k := key{e.Edge, e.Dir}
			rounds[k] = append(rounds[k], e.Round+d)
		}
	}
	maxLoad := make(map[int64]int64)
	for _, rs := range rounds {
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		run := int64(0)
		for i := 0; i < len(rs); i++ {
			if i > 0 && rs[i] == rs[i-1] {
				run++
			} else {
				run = 1
			}
			if run > maxLoad[rs[i]] {
				maxLoad[rs[i]] = run
			}
		}
	}
	total := horizon
	for _, l := range maxLoad {
		total += l - 1
	}
	return total
}

// TestMakespanPinnedFixedTraces pins makespan on hand-computed fixed traces
// so the flat-array rewrite provably reproduces the map-based original.
func TestMakespanPinnedFixedTraces(t *testing.T) {
	traces := []Trace{
		{Rounds: 4, Entries: []simnet.TraceEntry{
			{Round: 0, Edge: 0, Dir: 0}, {Round: 1, Edge: 0, Dir: 0}, {Round: 2, Edge: 1, Dir: 1},
		}},
		{Rounds: 3, Entries: []simnet.TraceEntry{
			{Round: 0, Edge: 0, Dir: 0}, {Round: 1, Edge: 1, Dir: 1}, {Round: 2, Edge: 0, Dir: 0},
		}},
		{Rounds: 5, Entries: []simnet.TraceEntry{
			{Round: 4, Edge: 1, Dir: 0},
		}},
	}
	aligned := makespan(2, traces, []int64{0, 0, 0})
	if aligned != 6 { // horizon 5, edge0/dir0 carries load 2 in round 0
		t.Fatalf("aligned makespan %d, want 6", aligned)
	}
	delayed := makespan(2, traces, []int64{0, 1, 2})
	if delayed != 9 { // horizon 7, load 2 in rounds 1 (e0d0) and 2 (e1d1)
		t.Fatalf("delayed makespan %d, want 9", delayed)
	}
	for _, delays := range [][]int64{{0, 0, 0}, {0, 1, 2}, {3, 0, 5}} {
		if got, want := makespan(2, traces, delays), makespanRef(2, traces, delays); got != want {
			t.Fatalf("delays %v: makespan %d, reference %d", delays, got, want)
		}
	}
	if makespan(2, nil, nil) != 0 {
		t.Fatal("empty composition must have zero makespan")
	}
}

// TestMakespanMatchesReferenceRandom cross-checks the flat-array makespan
// against the map-based reference on randomized traces and delays.
func TestMakespanMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for it := 0; it < 200; it++ {
		m := rng.Intn(8) + 1
		nTr := rng.Intn(6) + 1
		traces := make([]Trace, nTr)
		delays := make([]int64, nTr)
		for i := range traces {
			rounds := int64(rng.Intn(20) + 1)
			k := rng.Intn(12)
			es := make([]simnet.TraceEntry, 0, k)
			for j := 0; j < k; j++ {
				es = append(es, simnet.TraceEntry{
					Round: rng.Int63n(rounds),
					Edge:  graph.EdgeID(rng.Intn(m)),
					Dir:   byte(rng.Intn(2)),
				})
			}
			sort.Slice(es, func(a, b int) bool { return es[a].Round < es[b].Round })
			traces[i] = Trace{Rounds: rounds, Entries: es}
			delays[i] = rng.Int63n(10)
		}
		if got, want := makespan(m, traces, delays), makespanRef(m, traces, delays); got != want {
			t.Fatalf("iteration %d: makespan %d, reference %d (m=%d, traces=%+v, delays=%v)",
				it, got, want, m, traces, delays)
		}
	}
}

// TestComposePinned pins the full Compose output (including the seeded
// random-delay makespan) on a fixed input, guarding the Section 1.1
// composition numbers across refactors.
func TestComposePinned(t *testing.T) {
	a := Trace{Rounds: 6, Entries: []simnet.TraceEntry{
		{Round: 0, Edge: 0, Dir: 0}, {Round: 2, Edge: 1, Dir: 0}, {Round: 4, Edge: 2, Dir: 1},
	}, MaxMessageBits: 48}
	b := Trace{Rounds: 4, Entries: []simnet.TraceEntry{
		{Round: 0, Edge: 0, Dir: 0}, {Round: 1, Edge: 1, Dir: 0}, {Round: 2, Edge: 2, Dir: 1},
	}, MaxMessageBits: 32}
	got := Compose(3, []Trace{a, b}, 42)
	want := Composition{
		Dilation:           6,
		Congestion:         2,
		MakespanAligned:    7, // horizon 6 + one serialization on edge 0
		MakespanRandom:     makespanRef(3, []Trace{a, b}, composeDelays(2, 2, 42)),
		MakespanSequential: 10,
		MaxMessageBits:     48,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Compose = %+v, want %+v", got, want)
	}
}

// composeDelays replays Compose's seeded delay draw so pins stay honest if
// the congestion value ever changes.
func composeDelays(nTraces int, congestion int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	span := congestion
	if span < 1 {
		span = 1
	}
	delays := make([]int64, nTraces)
	for i := range delays {
		delays[i] = rng.Int63n(span)
	}
	return delays
}

func TestComposeBasics(t *testing.T) {
	// Two instances, both using edge 0 in round 0: aligned must serialize
	// (+1), a delayed composition must not.
	a := Trace{Rounds: 3, Entries: []simnet.TraceEntry{{Round: 0, Edge: 0, Dir: 0}}}
	b := Trace{Rounds: 3, Entries: []simnet.TraceEntry{{Round: 0, Edge: 0, Dir: 0}}}
	c := Compose(1, []Trace{a, b}, 1)
	if c.Dilation != 3 || c.Congestion != 2 || c.MakespanSequential != 6 {
		t.Fatalf("composition %+v", c)
	}
	if c.MakespanAligned != 4 { // horizon 3 + one serialization
		t.Fatalf("aligned=%d, want 4", c.MakespanAligned)
	}
}

func TestComposeNoConflicts(t *testing.T) {
	a := Trace{Rounds: 5, Entries: []simnet.TraceEntry{{Round: 0, Edge: 0, Dir: 0}}}
	b := Trace{Rounds: 5, Entries: []simnet.TraceEntry{{Round: 1, Edge: 0, Dir: 0}}}
	c := Compose(1, []Trace{a, b}, 1)
	if c.MakespanAligned != 5 {
		t.Fatalf("no-conflict aligned=%d, want 5", c.MakespanAligned)
	}
}

func TestComposeDirectionsIndependent(t *testing.T) {
	// Same edge, opposite directions, same round: no serialization needed
	// (CONGEST allows one message per direction).
	a := Trace{Rounds: 2, Entries: []simnet.TraceEntry{{Round: 0, Edge: 0, Dir: 0}}}
	b := Trace{Rounds: 2, Entries: []simnet.TraceEntry{{Round: 0, Edge: 0, Dir: 1}}}
	c := Compose(1, []Trace{a, b}, 1)
	if c.MakespanAligned != 2 {
		t.Fatalf("aligned=%d, want 2", c.MakespanAligned)
	}
}

func TestRandomDelaysBeatAligned(t *testing.T) {
	// 20 identical wave instances sweeping across 25 edges for 100 rounds:
	// aligned stacks all 20 on the same edge every round (makespan ~ 20T),
	// random delays spread them (makespan ~ C + T).
	const m, nInst, rounds = 25, 20, 100
	traces := make([]Trace, nInst)
	for i := range traces {
		es := make([]simnet.TraceEntry, rounds)
		for r := range es {
			es[r] = simnet.TraceEntry{Round: int64(r), Edge: graph.EdgeID(r % m), Dir: 0}
		}
		traces[i] = Trace{Rounds: rounds, Entries: es}
	}
	c := Compose(m, traces, 7)
	if c.MakespanAligned < nInst*rounds/2 {
		t.Fatalf("aligned %d unexpectedly small", c.MakespanAligned)
	}
	if c.MakespanRandom*3 >= c.MakespanAligned {
		t.Fatalf("random %d not far better than aligned %d", c.MakespanRandom, c.MakespanAligned)
	}
	if c.MakespanRandom >= c.MakespanSequential {
		t.Fatalf("random %d not better than sequential %d", c.MakespanRandom, c.MakespanSequential)
	}
}

func TestMakespanBoundHolds(t *testing.T) {
	// The scheduling theorem shape: random-delay makespan = O(C + T) with
	// modest constants, far below C*T for many bursty instances.
	traces := make([]Trace, 40)
	for i := range traces {
		es := make([]simnet.TraceEntry, 10)
		for r := range es {
			es[r] = simnet.TraceEntry{Round: int64(r * 3), Edge: 0, Dir: 0}
		}
		traces[i] = Trace{Rounds: 30, Entries: es}
	}
	c := Compose(1, traces, 3)
	bound := 4 * (c.Congestion + c.Dilation)
	if c.MakespanRandom > bound {
		t.Fatalf("random makespan %d exceeds 4(C+T)=%d", c.MakespanRandom, bound)
	}
}

func TestAPSPWithRealTraces(t *testing.T) {
	// End-to-end: record real Bellman-Ford-ish floods per source and
	// compose. Uses a tiny flood program for speed.
	g := graph.RandomConnected(24, 24, graph.UnitWeights, 5)
	run := func(g *graph.Graph, s graph.NodeID) (Trace, error) {
		eng := simnet.New(g, simnet.Config{Model: simnet.Congest, RecordTrace: true})
		res, err := eng.Run(func(c *simnet.Ctx) {
			d := int64(-1)
			end := int64(c.N())
			if c.ID() == s {
				d = 0
				for i := 0; i < c.Degree(); i++ {
					c.Send(i, int64(1))
				}
			}
			for c.Round() < end {
				for _, m := range c.WaitMessage(end) {
					if d == -1 {
						d = m.Msg.(int64)
						for i := 0; i < c.Degree(); i++ {
							c.Send(i, d+1)
						}
					}
				}
				if d != -1 {
					break
				}
			}
		})
		if err != nil {
			return Trace{}, err
		}
		return Trace{Entries: res.Trace, Rounds: res.Metrics.Rounds}, nil
	}
	comp, err := APSP(g, nil, run, 11)
	if err != nil {
		t.Fatal(err)
	}
	if comp.MakespanRandom > comp.MakespanSequential {
		t.Fatalf("random %d worse than sequential %d", comp.MakespanRandom, comp.MakespanSequential)
	}
	if comp.Congestion < 2 {
		t.Fatalf("expected overlapping edge usage, congestion=%d", comp.Congestion)
	}
}
