package graph

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func edgesOf(g *Graph) []EdgeTriple {
	return g.Edges() // already canonical u<v; order is construction order
}

func TestApplyDeltasBasic(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	g.SortAdj()

	ng, err := ApplyDeltas(g, []EdgeDelta{
		{Op: DeltaInsert, U: 2, V: 3, W: 7},
		{Op: DeltaReweight, U: 0, V: 1, W: 9},
		{Op: DeltaDelete, U: 1, V: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]NodeID]int64{{0, 1}: 9, {2, 3}: 7}
	got := map[[2]NodeID]int64{}
	for _, e := range edgesOf(ng) {
		got[[2]NodeID{e.U, e.V}] = e.W
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("patched edge set = %v, want %v", got, want)
	}
	// The original is untouched.
	if g.M() != 2 || len(g.Adj(0)) != 1 || g.Adj(0)[0].W != 5 {
		t.Fatalf("ApplyDeltas mutated its input: M=%d adj0=%v", g.M(), g.Adj(0))
	}
}

func TestApplyDeltasInsertKeepMin(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 4)
	g.SortAdj()
	// Higher-weight insert is a no-op; lower-weight insert wins.
	ng, err := ApplyDeltas(g, []EdgeDelta{
		{Op: DeltaInsert, U: 1, V: 0, W: 9},
		{Op: DeltaInsert, U: 0, V: 1, W: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := ng.M(); m != 1 {
		t.Fatalf("M = %d, want 1", m)
	}
	if w := ng.Adj(0)[0].W; w != 2 {
		t.Fatalf("weight = %d, want keep-min 2", w)
	}
}

func TestApplyDeltasInsertThenDeleteWithinBatch(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.SortAdj()
	ng, err := ApplyDeltas(g, []EdgeDelta{
		{Op: DeltaInsert, U: 1, V: 2, W: 5},
		{Op: DeltaDelete, U: 1, V: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ng.M() != 1 {
		t.Fatalf("M = %d, want 1 (insert-then-delete cancels)", ng.M())
	}
}

func TestApplyDeltasErrors(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.SortAdj()
	for _, tc := range []struct {
		name string
		d    EdgeDelta
		want string
	}{
		{"self-loop", EdgeDelta{Op: DeltaInsert, U: 1, V: 1, W: 1}, "self-loop"},
		{"out-of-range", EdgeDelta{Op: DeltaInsert, U: 0, V: 3, W: 1}, "out of range"},
		{"negative-weight", EdgeDelta{Op: DeltaInsert, U: 0, V: 2, W: -1}, "negative weight"},
		{"delete-missing", EdgeDelta{Op: DeltaDelete, U: 0, V: 2}, "does not exist"},
		{"reweight-missing", EdgeDelta{Op: DeltaReweight, U: 0, V: 2, W: 1}, "does not exist"},
		{"unknown-op", EdgeDelta{Op: DeltaOp(9), U: 0, V: 2, W: 1}, "unknown op"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ApplyDeltas(g, []EdgeDelta{tc.d}); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestApplyDeltasCanonical pins the content-purity property the serving
// layer's revision digests rely on: a patched graph is a pure function of
// its final edge set — identical to building that edge set from scratch,
// and identical across delta orders that land on the same set.
func TestApplyDeltasCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(8)
		g := Make(FamilyRandom, n, UniformWeights(16, rng.Int63()), rng.Int63())

		// Build a random valid batch against g: deleted pairs are never
		// referenced again within the batch (reweighting or re-deleting a
		// pair a prior delta removed is, correctly, an error).
		var deltas []EdgeDelta
		deleted := map[uint64]bool{}
		es := g.Edges()
		for i := 0; i < 6; i++ {
			switch rng.Intn(3) {
			case 0:
				u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
				if u == v || deleted[pairKey(u, v)] {
					continue
				}
				deltas = append(deltas, EdgeDelta{Op: DeltaInsert, U: u, V: v, W: int64(rng.Intn(16))})
			case 1:
				if len(es) > 0 {
					e := es[rng.Intn(len(es))]
					if deleted[pairKey(e.U, e.V)] {
						continue
					}
					deltas = append(deltas, EdgeDelta{Op: DeltaReweight, U: e.U, V: e.V, W: int64(rng.Intn(16))})
				}
			case 2:
				if len(es) > 1 {
					e := es[rng.Intn(len(es))]
					if deleted[pairKey(e.U, e.V)] {
						continue
					}
					deleted[pairKey(e.U, e.V)] = true
					deltas = append(deltas, EdgeDelta{Op: DeltaDelete, U: e.U, V: e.V})
				}
			}
		}
		if len(deltas) == 0 {
			continue
		}
		ng, err := ApplyDeltas(g, deltas)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Rebuild from scratch from ng's edge set; must be identical —
		// same canonical edge order, same adjacency, same EdgeIDs.
		fresh := New(n)
		for _, e := range ng.Edges() {
			fresh.AddEdge(e.U, e.V, e.W)
		}
		fresh.SortAdj()
		if !reflect.DeepEqual(ng.Edges(), fresh.Edges()) {
			t.Fatalf("trial %d: patched graph is not canonical:\n got %v\nwant %v", trial, ng.Edges(), fresh.Edges())
		}
		for v := 0; v < n; v++ {
			if !reflect.DeepEqual(ng.Adj(NodeID(v)), fresh.Adj(NodeID(v))) {
				t.Fatalf("trial %d: adjacency of %d differs", trial, v)
			}
		}
	}
}
