package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in a plain text format:
//
//	n <nodes>
//	<u> <v> <w>    (one line per edge, in EdgeID order)
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format. Blank lines and lines
// starting with '#' are ignored. Repeated {u,v} lines merge under AddEdge's
// keep-min policy, so round-tripping any input yields a canonical list.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if g == nil {
			if len(fields) != 2 || fields[0] != "n" {
				return nil, fmt.Errorf("graph: line %d: expected header \"n <count>\", got %q", line, text)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", line, fields[1])
			}
			g = New(n)
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: expected \"u v w\", got %q", line, text)
		}
		u, err1 := strconv.ParseInt(fields[0], 10, 32)
		v, err2 := strconv.ParseInt(fields[1], 10, 32)
		wt, err3 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
		}
		if u == v || u < 0 || v < 0 || int(u) >= g.N() || int(v) >= g.N() || wt < 0 {
			return nil, fmt.Errorf("graph: line %d: invalid edge %d-%d (w=%d)", line, u, v, wt)
		}
		g.AddEdge(NodeID(u), NodeID(v), wt)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	g.SortAdj()
	return g, nil
}

// WriteDOT writes the graph in Graphviz DOT format; labelDist optionally
// annotates nodes with distances (pass nil to skip; Inf prints as "∞").
func WriteDOT(w io.Writer, g *Graph, labelDist []int64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph G {")
	if labelDist != nil {
		for v := 0; v < g.N(); v++ {
			d := "∞"
			if labelDist[v] < Inf {
				d = strconv.FormatInt(labelDist[v], 10)
			}
			fmt.Fprintf(bw, "  %d [label=\"%d (%s)\"];\n", v, v, d)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "  %d -- %d [label=\"%d\"];\n", e.U, e.V, e.W)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
