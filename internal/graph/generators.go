package graph

import (
	"fmt"
	"math/rand"
)

// WeightFn assigns a weight to the i-th generated edge. Generators call it
// once per edge in a deterministic order, so a seeded WeightFn yields
// reproducible graphs.
type WeightFn func(i int) int64

// UnitWeights assigns weight 1 to every edge (the BFS/unweighted setting).
func UnitWeights(int) int64 { return 1 }

// UniformWeights returns a WeightFn drawing uniformly from [1, maxW] using
// the given seed.
func UniformWeights(maxW int64, seed int64) WeightFn {
	if maxW < 1 {
		panic("graph: UniformWeights needs maxW >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	return func(int) int64 { return 1 + rng.Int63n(maxW) }
}

// ZeroHeavyWeights returns a WeightFn that emits weight 0 with probability
// 1/4 and otherwise uniform in [1,maxW]; used to exercise the Thm 2.7
// zero-weight extension.
func ZeroHeavyWeights(maxW int64, seed int64) WeightFn {
	rng := rand.New(rand.NewSource(seed))
	return func(int) int64 {
		if rng.Intn(4) == 0 {
			return 0
		}
		return 1 + rng.Int63n(maxW)
	}
}

// Path returns the n-node path 0-1-2-...-(n-1).
func Path(n int, w WeightFn) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), w(i))
	}
	g.SortAdj()
	return g
}

// Cycle returns the n-node cycle (n >= 3).
func Cycle(n int, w WeightFn) *Graph {
	if n < 3 {
		panic("graph: Cycle needs n >= 3")
	}
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(NodeID(i), NodeID((i+1)%n), w(i))
	}
	g.SortAdj()
	return g
}

// Star returns the n-node star centered at node 0.
func Star(n int, w WeightFn) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, NodeID(i), w(i-1))
	}
	g.SortAdj()
	return g
}

// CompleteBinaryTree returns a complete binary tree on n nodes (node i's
// parent is (i-1)/2).
func CompleteBinaryTree(n int, w WeightFn) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(NodeID((i-1)/2), NodeID(i), w(i-1))
	}
	g.SortAdj()
	return g
}

// Grid2D returns the rows x cols grid graph; node (r,c) has index r*cols+c.
func Grid2D(rows, cols int, w WeightFn) *Graph {
	g := New(rows * cols)
	i := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := NodeID(r*cols + c)
			if c+1 < cols {
				g.AddEdge(id, id+1, w(i))
				i++
			}
			if r+1 < rows {
				g.AddEdge(id, NodeID((r+1)*cols+c), w(i))
				i++
			}
		}
	}
	g.SortAdj()
	return g
}

// RandomTree returns a uniformly-ish random spanning tree on n nodes: node i
// attaches to a uniformly random earlier node (a random recursive tree).
func RandomTree(n int, w WeightFn, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 1; i < n; i++ {
		p := NodeID(rng.Intn(i))
		g.AddEdge(p, NodeID(i), w(i-1))
	}
	g.SortAdj()
	return g
}

// RandomConnected returns a connected graph: a random recursive tree plus
// `extra` additional distinct non-tree edges chosen uniformly at random.
func RandomConnected(n, extra int, w WeightFn, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	i := 0
	for v := 1; v < n; v++ {
		p := NodeID(rng.Intn(v))
		g.AddEdge(p, NodeID(v), w(i))
		i++
	}
	type pair struct{ a, b NodeID }
	used := make(map[pair]bool, n+extra)
	for v := 1; v < n; v++ {
		for _, h := range g.adj[v] {
			if h.To < NodeID(v) {
				used[pair{h.To, NodeID(v)}] = true
			}
		}
	}
	maxExtra := n*(n-1)/2 - (n - 1)
	if extra > maxExtra {
		extra = maxExtra
	}
	for added := 0; added < extra; {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if used[pair{a, b}] {
			continue
		}
		used[pair{a, b}] = true
		g.AddEdge(a, b, w(i))
		i++
		added++
	}
	g.SortAdj()
	return g
}

// Dumbbell returns two cliques of size k joined by a path of length bridge;
// a classic high-diameter, high-congestion stress shape. Total nodes:
// 2k + max(bridge-1, 0).
func Dumbbell(k, bridge int, w WeightFn) *Graph {
	if k < 1 || bridge < 1 {
		panic("graph: Dumbbell needs k >= 1, bridge >= 1")
	}
	n := 2*k + bridge - 1
	g := New(n)
	i := 0
	clique := func(base int) {
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				g.AddEdge(NodeID(base+a), NodeID(base+b), w(i))
				i++
			}
		}
	}
	clique(0)
	clique(k + bridge - 1)
	// Path from node k-1 (in clique A) through intermediate nodes
	// k..k+bridge-2 to node k+bridge-1 (the first node of clique B).
	prev := NodeID(k - 1)
	for j := 0; j < bridge; j++ {
		next := NodeID(k + j)
		g.AddEdge(prev, next, w(i))
		i++
		prev = next
	}
	g.SortAdj()
	return g
}

// Clusters returns `c` dense clusters of size `k` arranged in a ring, with
// single bridge edges between consecutive clusters; each cluster is a random
// connected subgraph with intraExtra extra edges. Good for exercising sparse
// covers and network decomposition.
func Clusters(c, k, intraExtra int, w WeightFn, seed int64) *Graph {
	if c < 2 || k < 1 {
		panic("graph: Clusters needs c >= 2, k >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(c * k)
	i := 0
	for ci := 0; ci < c; ci++ {
		base := ci * k
		for v := 1; v < k; v++ {
			g.AddEdge(NodeID(base+rng.Intn(v)), NodeID(base+v), w(i))
			i++
		}
		for e := 0; e < intraExtra; e++ {
			a := base + rng.Intn(k)
			b := base + rng.Intn(k)
			if a == b || g.HasEdge(NodeID(a), NodeID(b)) {
				continue
			}
			g.AddEdge(NodeID(a), NodeID(b), w(i))
			i++
		}
	}
	for ci := 0; ci < c; ci++ {
		a := ci*k + rng.Intn(k)
		b := ((ci+1)%c)*k + rng.Intn(k)
		if !g.HasEdge(NodeID(a), NodeID(b)) {
			g.AddEdge(NodeID(a), NodeID(b), w(i))
			i++
		}
	}
	g.SortAdj()
	return g
}

// Expander returns a 2d-regular-ish expander on n nodes: the union of d
// seeded random Hamiltonian cycles (duplicate edges are skipped, so degrees
// may fall slightly below 2d). A union of random cycles is an expander with
// high probability, giving the low-diameter, well-connected regime where the
// paper's polylog congestion bounds are easiest to see.
func Expander(n, d int, w WeightFn, seed int64) *Graph {
	if n < 3 || d < 1 {
		panic("graph: Expander needs n >= 3, d >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	i := 0
	for c := 0; c < d; c++ {
		perm := rng.Perm(n)
		for j := 0; j < n; j++ {
			a, b := NodeID(perm[j]), NodeID(perm[(j+1)%n])
			if a == b || g.HasEdge(a, b) {
				continue
			}
			g.AddEdge(a, b, w(i))
			i++
		}
	}
	g.SortAdj()
	return g
}

// Barbell returns the classic barbell on ~n nodes: two cliques of size n/3
// joined by a path of the remaining nodes. It maximizes the bottleneck-edge
// congestion of any all-pairs workload and is a standard worst case for
// random-delay scheduling.
func Barbell(n int, w WeightFn) *Graph {
	k := n / 3
	if k < 2 {
		k = 2
	}
	bridge := n - 2*k + 1
	if bridge < 1 {
		bridge = 1
	}
	return Dumbbell(k, bridge, w)
}

// PowerLaw returns a Barabási–Albert preferential-attachment graph: nodes
// arrive one at a time and attach `m` edges to existing nodes chosen with
// probability proportional to degree (by sampling a uniform endpoint of a
// uniform existing edge). Heavy-tailed degrees stress the per-edge congestion
// accounting around hubs.
func PowerLaw(n, m int, w WeightFn, seed int64) *Graph {
	if n < 2 || m < 1 {
		panic("graph: PowerLaw needs n >= 2, m >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	i := 0
	// Endpoint multiset: each edge contributes both endpoints, so a uniform
	// draw lands on v with probability deg(v)/2m.
	var ends []NodeID
	g.AddEdge(0, 1, w(i))
	i++
	ends = append(ends, 0, 1)
	for v := 2; v < n; v++ {
		added := 0
		for attempt := 0; added < m && attempt < 4*m+16; attempt++ {
			t := ends[rng.Intn(len(ends))]
			if t == NodeID(v) || g.HasEdge(NodeID(v), t) {
				continue
			}
			g.AddEdge(NodeID(v), t, w(i))
			i++
			ends = append(ends, NodeID(v), t)
			added++
		}
		if added == 0 { // keep it connected no matter what
			t := NodeID(rng.Intn(v))
			g.AddEdge(NodeID(v), t, w(i))
			i++
			ends = append(ends, NodeID(v), t)
		}
	}
	g.SortAdj()
	return g
}

// BellmanFordGadget is the classic Bellman-Ford worst case: a unit-weight
// path of k+1 nodes plus a sink adjacent to every path node with weights
// that improve at every hop of the wave, forcing Θ(k) re-broadcasts per
// sink edge. Weights are structural (the WeightFn convention does not
// apply): path edges are 1, the chord from path node i to the sink is
// 2(k-i)+1. Total nodes: k+2.
func BellmanFordGadget(k int) *Graph {
	if k < 1 {
		panic("graph: BellmanFordGadget needs k >= 1")
	}
	g := New(k + 2)
	for i := 0; i < k; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), 1)
	}
	sink := NodeID(k + 1)
	for i := 0; i <= k; i++ {
		g.AddEdge(NodeID(i), sink, int64(2*(k-i)+1))
	}
	g.SortAdj()
	return g
}

// Disconnected returns a graph made of `parts` independent random connected
// components of size n each; used to test multi-component behavior.
func Disconnected(parts, n, extra int, w WeightFn, seed int64) *Graph {
	g := New(parts * n)
	i := 0
	rng := rand.New(rand.NewSource(seed))
	for p := 0; p < parts; p++ {
		base := p * n
		for v := 1; v < n; v++ {
			g.AddEdge(NodeID(base+rng.Intn(v)), NodeID(base+v), w(i))
			i++
		}
		for e := 0; e < extra; e++ {
			a := base + rng.Intn(n)
			b := base + rng.Intn(n)
			if a == b || g.HasEdge(NodeID(a), NodeID(b)) {
				continue
			}
			g.AddEdge(NodeID(a), NodeID(b), w(i))
			i++
		}
	}
	g.SortAdj()
	return g
}

// Family names a generator for the experiment harness.
type Family string

// Families used throughout the experiment harness.
const (
	FamilyPath     Family = "path"
	FamilyCycle    Family = "cycle"
	FamilyTree     Family = "tree"
	FamilyGrid     Family = "grid"
	FamilyRandom   Family = "random"
	FamilyCluster  Family = "cluster"
	FamilyStar     Family = "star"
	FamilyExpander Family = "expander"
	FamilyBarbell  Family = "barbell"
	FamilyPowerLaw Family = "powerlaw"
	// FamilyBFGadget is the Bellman-Ford congestion worst case; its weights
	// are structural, so the WeightFn passed to Make is ignored.
	FamilyBFGadget Family = "bfgadget"
	// FamilyDisconnected is several independent random components;
	// exercises the unreachable-vertex (+Inf distance) contract of every
	// algorithm — sources never reach the other components.
	FamilyDisconnected Family = "disconnected"
)

// Families lists every named family, in the order the harness sweeps them.
func Families() []Family {
	return []Family{
		FamilyPath, FamilyCycle, FamilyTree, FamilyGrid, FamilyRandom,
		FamilyCluster, FamilyStar, FamilyExpander, FamilyBarbell,
		FamilyPowerLaw, FamilyBFGadget, FamilyDisconnected,
	}
}

// Make builds a graph of the named family with n nodes (approximately, for
// grid/cluster) and the given weight function and seed.
func Make(f Family, n int, w WeightFn, seed int64) *Graph {
	switch f {
	case FamilyPath:
		return Path(n, w)
	case FamilyCycle:
		return Cycle(n, w)
	case FamilyTree:
		return CompleteBinaryTree(n, w)
	case FamilyGrid:
		side := 1
		for side*side < n {
			side++
		}
		return Grid2D(side, side, w)
	case FamilyRandom:
		return RandomConnected(n, n, w, seed)
	case FamilyCluster:
		k := 8
		c := (n + k - 1) / k
		if c < 2 {
			c = 2
		}
		return Clusters(c, k, k, w, seed)
	case FamilyStar:
		return Star(n, w)
	case FamilyExpander:
		return Expander(n, 2, w, seed)
	case FamilyBarbell:
		return Barbell(n, w)
	case FamilyPowerLaw:
		return PowerLaw(n, 2, w, seed)
	case FamilyBFGadget:
		return BellmanFordGadget(n - 2)
	case FamilyDisconnected:
		parts := 3
		if n < 3*4 {
			parts = 2
		}
		size := n / parts
		return Disconnected(parts, size, size/2, w, seed)
	default:
		panic(fmt.Sprintf("graph: unknown family %q", f))
	}
}
