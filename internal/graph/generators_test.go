package graph

import (
	"testing"
)

// TestGeneratorDeterminism: same seed ⇒ identical graph (edge set, edge
// order, and weights) for every named family, including the expander,
// barbell, and power-law additions. The simulator's determinism — and hence
// the harness's byte-identical reports — rests on this.
func TestGeneratorDeterminism(t *testing.T) {
	for _, fam := range Families() {
		for _, n := range []int{16, 47, 100} {
			a := Make(fam, n, UniformWeights(int64(n), 99), 5)
			b := Make(fam, n, UniformWeights(int64(n), 99), 5)
			if a.N() != b.N() || a.M() != b.M() {
				t.Fatalf("%s/n=%d: size mismatch: (%d,%d) vs (%d,%d)",
					fam, n, a.N(), a.M(), b.N(), b.M())
			}
			ea, eb := a.Edges(), b.Edges()
			for i := range ea {
				if ea[i] != eb[i] {
					t.Fatalf("%s/n=%d: edge %d differs: %+v vs %+v", fam, n, i, ea[i], eb[i])
				}
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("%s/n=%d: invalid graph: %v", fam, n, err)
			}
		}
	}
}

// TestGeneratorSeedSensitivity: seeded families must actually use the seed —
// different seeds should give different graphs (structure or weights).
func TestGeneratorSeedSensitivity(t *testing.T) {
	for _, fam := range []Family{FamilyRandom, FamilyCluster, FamilyExpander, FamilyPowerLaw} {
		n := 64
		a := Make(fam, n, UniformWeights(int64(n), 99), 5)
		b := Make(fam, n, UniformWeights(int64(n), 99), 6)
		same := a.N() == b.N() && a.M() == b.M()
		if same {
			ea, eb := a.Edges(), b.Edges()
			for i := range ea {
				if ea[i] != eb[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: seeds 5 and 6 produced identical graphs", fam)
		}
	}
}

// TestNewFamiliesConnected: the harness verifies distances against
// sequential references assuming one component; the new families must
// deliver that at every size the suite uses.
func TestNewFamiliesConnected(t *testing.T) {
	for _, fam := range []Family{FamilyStar, FamilyExpander, FamilyBarbell, FamilyPowerLaw} {
		for _, n := range []int{16, 64, 256} {
			g := Make(fam, n, UnitWeights, 3)
			if _, k := Components(g); k != 1 {
				t.Errorf("%s/n=%d: %d components, want 1", fam, n, k)
			}
		}
	}
}

// TestPowerLawHasHubs: preferential attachment should produce a max degree
// well above the average (heavy tail), which is the point of the family.
func TestPowerLawHasHubs(t *testing.T) {
	g := PowerLaw(512, 2, UnitWeights, 7)
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	avg := 2 * g.M() / g.N()
	if maxDeg < 4*avg {
		t.Errorf("max degree %d not hub-like (avg %d)", maxDeg, avg)
	}
}

// TestExpanderLowDiameter: the expander family should have O(log n) hop
// diameter — that is the property the scenarios lean on.
func TestExpanderLowDiameter(t *testing.T) {
	g := Expander(512, 2, UnitWeights, 7)
	if d := HopDiameter(g); d > 20 {
		t.Errorf("hop diameter %d, want O(log n) (~<=20 for n=512)", d)
	}
}
