package graph

import (
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5,0", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	id := g.AddEdge(0, 1, 7)
	if id != 0 {
		t.Fatalf("first edge id = %d, want 0", id)
	}
	id = g.AddEdge(1, 2, 3)
	if id != 1 {
		t.Fatalf("second edge id = %d, want 1", id)
	}
	if g.M() != 2 {
		t.Fatalf("m = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge inconsistent")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"self-loop", func() { New(2).AddEdge(1, 1, 1) }},
		{"out-of-range", func() { New(2).AddEdge(0, 2, 1) }},
		{"negative-weight", func() { New(2).AddEdge(0, 1, -1) }},
		{"negative-n", func() { New(-1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.f()
		})
	}
}

func TestAddEdgeKeepMin(t *testing.T) {
	g := New(4)
	first := g.AddEdge(0, 1, 7)
	// Same pair, either orientation: the existing edge is kept, M() stays
	// put, and the weight canonicalizes to the minimum seen.
	if id := g.AddEdge(1, 0, 9); id != first {
		t.Fatalf("duplicate (heavier) returned id %d, want %d", id, first)
	}
	if w := g.Adj(0)[0].W; w != 7 {
		t.Fatalf("heavier duplicate changed weight to %d, want 7", w)
	}
	if id := g.AddEdge(0, 1, 3); id != first {
		t.Fatalf("duplicate (lighter) returned id %d, want %d", id, first)
	}
	if g.M() != 1 {
		t.Fatalf("m = %d after duplicates, want 1", g.M())
	}
	// Both halves must agree on the canonical minimum.
	for _, u := range []NodeID{0, 1} {
		if w := g.Adj(u)[0].W; w != 3 {
			t.Fatalf("node %d half weight = %d, want 3", u, w)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Unrelated edges still get fresh IDs after a merge.
	if id := g.AddEdge(2, 3, 1); id != 1 {
		t.Fatalf("post-merge fresh edge id = %d, want 1", id)
	}
}

func TestAddEdgeKeepMinDistances(t *testing.T) {
	// A graph built with duplicate insertions must be indistinguishable
	// from one built from the canonical (min-weight) edge set.
	dup := New(3)
	dup.AddEdge(0, 1, 5)
	dup.AddEdge(0, 1, 2)
	dup.AddEdge(1, 2, 4)
	dup.AddEdge(2, 1, 9)
	canon := New(3)
	canon.AddEdge(0, 1, 2)
	canon.AddEdge(1, 2, 4)
	got, want := Dijkstra(dup, 0), Dijkstra(canon, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	if dup.M() != canon.M() {
		t.Fatalf("m = %d, want %d", dup.M(), canon.M())
	}
}

func TestCloneKeepsDuplicateIndex(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	c := g.Clone()
	if id := c.AddEdge(1, 0, 2); id != 0 {
		t.Fatalf("clone lost the duplicate index: got fresh id %d", id)
	}
	if c.M() != 1 {
		t.Fatalf("clone m = %d, want 1", c.M())
	}
	if g.Adj(0)[0].W != 5 {
		t.Fatal("clone merge mutated the original")
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1, 5)
	g.AddEdge(0, 2, 9)
	es := g.Edges()
	if len(es) != 2 {
		t.Fatalf("len = %d", len(es))
	}
	if es[0].U != 1 || es[0].V != 3 || es[0].W != 5 {
		t.Fatalf("edge 0 = %+v", es[0])
	}
	if es[1].U != 0 || es[1].V != 2 || es[1].W != 9 {
		t.Fatalf("edge 1 = %+v", es[1])
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Path(4, UnitWeights)
	c := g.Clone()
	c.AddEdge(0, 3, 2)
	if g.M() == c.M() {
		t.Fatal("clone shares edge count")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReweight(t *testing.T) {
	g := Path(3, func(i int) int64 { return int64(i + 1) })
	r := g.Reweight(func(_ EdgeID, w int64) int64 { return w * 10 })
	if r.Adj(0)[0].W != 10 {
		t.Fatalf("got %d", r.Adj(0)[0].W)
	}
	if g.Adj(0)[0].W != 1 {
		t.Fatal("original mutated")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsShape(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"path", Path(5, UnitWeights), 5, 4},
		{"cycle", Cycle(5, UnitWeights), 5, 5},
		{"star", Star(6, UnitWeights), 6, 5},
		{"cbt", CompleteBinaryTree(7, UnitWeights), 7, 6},
		{"grid", Grid2D(3, 4, UnitWeights), 12, 17},
		{"tree", RandomTree(20, UnitWeights, 1), 20, 19},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() != tc.n || tc.g.M() != tc.m {
				t.Fatalf("got n=%d m=%d, want %d,%d", tc.g.N(), tc.g.M(), tc.n, tc.m)
			}
			if err := tc.g.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := RandomConnected(50, 30, UniformWeights(9, seed), seed)
		if _, k := Components(g); k != 1 {
			t.Fatalf("seed %d: %d components", seed, k)
		}
		if g.M() != 49+30 {
			t.Fatalf("seed %d: m=%d", seed, g.M())
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomConnectedExtraCap(t *testing.T) {
	// Requesting more extra edges than fit must clamp, not loop forever.
	g := RandomConnected(4, 100, UnitWeights, 3)
	if g.M() != 6 {
		t.Fatalf("m=%d, want complete graph 6", g.M())
	}
}

func TestDumbbell(t *testing.T) {
	g := Dumbbell(4, 3, UnitWeights)
	if g.N() != 10 {
		t.Fatalf("n=%d", g.N())
	}
	if _, k := Components(g); k != 1 {
		t.Fatal("dumbbell disconnected")
	}
	if d := HopDiameter(g); d != 5 {
		t.Fatalf("diameter=%d, want 5", d)
	}
}

func TestClustersConnected(t *testing.T) {
	g := Clusters(4, 6, 4, UnitWeights, 7)
	if _, k := Components(g); k != 1 {
		t.Fatal("clusters graph disconnected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnectedParts(t *testing.T) {
	g := Disconnected(3, 10, 2, UnitWeights, 5)
	if _, k := Components(g); k != 3 {
		t.Fatalf("components=%d, want 3", k)
	}
}

func TestMakeFamilies(t *testing.T) {
	for _, f := range []Family{FamilyPath, FamilyCycle, FamilyTree, FamilyGrid, FamilyRandom, FamilyCluster} {
		g := Make(f, 30, UnitWeights, 1)
		if g.N() < 30 {
			t.Fatalf("%s: n=%d < 30", f, g.N())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
	}
}

func TestDijkstraPath(t *testing.T) {
	g := Path(5, func(i int) int64 { return int64(i + 1) }) // weights 1,2,3,4
	d := Dijkstra(g, 0)
	want := []int64{0, 1, 3, 6, 10}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("d[%d]=%d, want %d", i, d[i], w)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := Disconnected(2, 5, 0, UnitWeights, 1)
	d := Dijkstra(g, 0)
	for v := 5; v < 10; v++ {
		if d[v] != Inf {
			t.Fatalf("d[%d]=%d, want Inf", v, d[v])
		}
	}
}

func TestMultiSourceOffsets(t *testing.T) {
	g := Path(5, UnitWeights)
	d := MultiSourceDijkstra(g, map[NodeID]int64{0: 10, 4: 0})
	want := []int64{10, 5, 4, 3, 0} // wait: from 4 with offset 0: 4->0 dists 4,3,2,1,0; from 0 offset 10: 10,11,..
	want = []int64{4, 3, 2, 1, 0}
	_ = want
	expect := []int64{4, 3, 2, 1, 0}
	for i := range expect {
		m := int64(10 + i)
		if int64(4-i) < m {
			m = int64(4 - i)
		}
		if d[i] != m {
			t.Fatalf("d[%d]=%d, want %d", i, d[i], m)
		}
	}
}

func TestBFSDistGrid(t *testing.T) {
	g := Grid2D(3, 3, UnitWeights)
	d := BFSDist(g, 0)
	if d[8] != 4 {
		t.Fatalf("corner-to-corner = %d, want 4", d[8])
	}
	d2 := BFSDist(g, 0, 8)
	if d2[4] != 2 {
		t.Fatalf("multi-source center = %d, want 2", d2[4])
	}
}

func TestHopDiameter(t *testing.T) {
	if d := HopDiameter(Path(6, UnitWeights)); d != 5 {
		t.Fatalf("path diameter=%d", d)
	}
	if d := HopDiameter(Cycle(6, UnitWeights)); d != 3 {
		t.Fatalf("cycle diameter=%d", d)
	}
	approx := HopDiameterApprox(Path(64, UnitWeights))
	if approx != 63 {
		t.Fatalf("path approx diameter=%d", approx)
	}
}

// Property: Dijkstra distances satisfy the triangle inequality over every
// edge, and every finite distance is witnessed by some tight incoming edge.
func TestDijkstraProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, extraRaw uint8) bool {
		n := int(nRaw%60) + 2
		extra := int(extraRaw % 40)
		g := RandomConnected(n, extra, UniformWeights(20, seed), seed)
		d := Dijkstra(g, 0)
		for _, e := range g.Edges() {
			if d[e.U] > d[e.V]+e.W || d[e.V] > d[e.U]+e.W {
				return false
			}
		}
		for v := 1; v < n; v++ {
			tight := false
			for _, h := range g.Adj(NodeID(v)) {
				if d[h.To]+h.W == d[v] {
					tight = true
					break
				}
			}
			if !tight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: multi-source Dijkstra equals the min over per-source runs.
func TestMultiSourceMatchesMinOfSingles(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 3
		g := RandomConnected(n, n/2, UniformWeights(9, seed), seed)
		srcs := map[NodeID]int64{0: 0, NodeID(n / 2): 3, NodeID(n - 1): 1}
		got := MultiSourceDijkstra(g, srcs)
		for v := 0; v < n; v++ {
			want := Inf
			for s, off := range srcs {
				if d := Dijkstra(g, s)[v] + off; d < want {
					want = d
				}
			}
			if got[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsLabels(t *testing.T) {
	g := Disconnected(2, 4, 0, UnitWeights, 2)
	comp, k := Components(g)
	if k != 2 {
		t.Fatalf("k=%d", k)
	}
	for v := 0; v < 4; v++ {
		if comp[v] != 0 {
			t.Fatalf("comp[%d]=%d", v, comp[v])
		}
	}
	for v := 4; v < 8; v++ {
		if comp[v] != 1 {
			t.Fatalf("comp[%d]=%d", v, comp[v])
		}
	}
}

func TestWeightedDiameterUpper(t *testing.T) {
	g := Path(4, func(int) int64 { return 5 })
	if d := WeightedDiameterUpper(g); d != 20 {
		t.Fatalf("got %d", d)
	}
	if d := WeightedDiameterUpper(New(3)); d != 1 {
		t.Fatalf("edgeless got %d", d)
	}
}

func TestZeroHeavyWeights(t *testing.T) {
	w := ZeroHeavyWeights(10, 1)
	sawZero, sawPos := false, false
	for i := 0; i < 100; i++ {
		x := w(i)
		if x == 0 {
			sawZero = true
		}
		if x > 0 {
			sawPos = true
		}
		if x < 0 || x > 10 {
			t.Fatalf("weight %d out of range", x)
		}
	}
	if !sawZero || !sawPos {
		t.Fatal("expected a mix of zero and positive weights")
	}
}
