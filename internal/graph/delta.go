package graph

import (
	"fmt"
	"sort"
)

// DeltaOp names one edge-delta operation.
type DeltaOp uint8

// Edge-delta operations.
const (
	// DeltaInsert adds edge {U,V} with weight W. Inserting a pair that
	// already exists merges under the same keep-min policy as AddEdge, so a
	// patched graph stays a pure function of its edge set.
	DeltaInsert DeltaOp = iota + 1
	// DeltaDelete removes edge {U,V} (W is ignored). Deleting a missing
	// edge is an error: the caller's picture of the graph is stale, and a
	// silent no-op would hide that.
	DeltaDelete
	// DeltaReweight sets edge {U,V}'s weight to W exactly — up or down,
	// unlike the insert merge. Reweighting a missing edge is an error.
	DeltaReweight
)

func (op DeltaOp) String() string {
	switch op {
	case DeltaInsert:
		return "insert"
	case DeltaDelete:
		return "delete"
	case DeltaReweight:
		return "reweight"
	default:
		return fmt.Sprintf("delta-op(%d)", uint8(op))
	}
}

// EdgeDelta is one edge mutation in a batch.
type EdgeDelta struct {
	Op   DeltaOp
	U, V NodeID
	W    int64
}

func (d EdgeDelta) String() string {
	if d.Op == DeltaDelete {
		return fmt.Sprintf("%s{%d,%d}", d.Op, d.U, d.V)
	}
	return fmt.Sprintf("%s{%d,%d}w=%d", d.Op, d.U, d.V, d.W)
}

// ApplyDeltas returns a new graph equal to g with the deltas applied in
// order, leaving g untouched. The node count is fixed; only edges change.
// The result is rebuilt from the patched edge set in canonical order
// (sorted by endpoints), so — like every generator- or inline-built graph —
// it is a pure function of its edge set: EdgeIDs are reassigned densely and
// two delta paths reaching the same edge set produce identical graphs,
// which is what lets the serving layer content-address patched revisions.
//
// Validation is strict: self-loops, out-of-range endpoints, and negative
// weights are rejected, as are deletes/reweights of edges that do not exist
// at that point in the batch (insert-then-delete within one batch is fine).
func ApplyDeltas(g *Graph, deltas []EdgeDelta) (*Graph, error) {
	// Working weight map of the patched edge set, seeded from g.
	weights := make(map[uint64]int64, g.M()+len(deltas))
	for _, e := range g.Edges() {
		weights[pairKey(e.U, e.V)] = e.W
	}
	for i, d := range deltas {
		if d.U == d.V {
			return nil, fmt.Errorf("graph: delta %d (%s): self-loop at node %d", i, d, d.U)
		}
		if d.U < 0 || int(d.U) >= g.n || d.V < 0 || int(d.V) >= g.n {
			return nil, fmt.Errorf("graph: delta %d (%s): endpoints out of range [0,%d)", i, d, g.n)
		}
		key := pairKey(d.U, d.V)
		w, exists := weights[key]
		switch d.Op {
		case DeltaInsert:
			if d.W < 0 {
				return nil, fmt.Errorf("graph: delta %d (%s): negative weight", i, d)
			}
			if !exists || d.W < w {
				weights[key] = d.W
			}
		case DeltaDelete:
			if !exists {
				return nil, fmt.Errorf("graph: delta %d (%s): edge does not exist", i, d)
			}
			delete(weights, key)
		case DeltaReweight:
			if d.W < 0 {
				return nil, fmt.Errorf("graph: delta %d (%s): negative weight", i, d)
			}
			if !exists {
				return nil, fmt.Errorf("graph: delta %d (%s): edge does not exist", i, d)
			}
			weights[key] = d.W
		default:
			return nil, fmt.Errorf("graph: delta %d: unknown op %d", i, uint8(d.Op))
		}
	}
	keys := make([]uint64, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	ng := New(g.n)
	for _, k := range keys {
		ng.AddEdge(NodeID(k>>32), NodeID(uint32(k)), weights[k])
	}
	ng.SortAdj()
	return ng, nil
}
