// Package graph provides the weighted undirected graph substrate used by all
// distributed algorithms in this repository: graph construction, generators
// for the workload families of the experiments, structural properties, and
// sequential reference algorithms (Dijkstra, BFS) used to verify the
// distributed implementations.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node; nodes are numbered 0..N-1.
type NodeID int32

// EdgeID identifies an undirected edge; edges are numbered 0..M-1. Both
// directions of an edge share the EdgeID, which is what the per-edge
// congestion accounting keys on.
type EdgeID int32

// Inf is the distance value used for "unreachable / above threshold".
const Inf = int64(1) << 62

// Half is one directed half of an undirected edge as seen from one endpoint.
type Half struct {
	To NodeID
	W  int64
	ID EdgeID
}

// Graph is an undirected weighted simple graph (self-loops are rejected;
// duplicate edges canonicalize under the keep-min policy — see AddEdge).
// The zero value is an empty graph; use New.
type Graph struct {
	n   int
	m   int
	adj [][]Half
	// index maps a canonical endpoint pair (min<<32 | max) to its EdgeID,
	// so AddEdge can detect duplicates in O(1) and the keep-min policy is
	// cheap enough to be unconditional. The map insert taxes every
	// AddEdge, including generator paths that never produce duplicates —
	// a deliberate trade: graph construction is noise next to the
	// simulations run on the graph, and an unconditional policy is what
	// makes a Graph a pure function of its edge set (the serving layer's
	// cache-keying invariant) with no "trusted builder" carve-outs.
	index map[uint64]EdgeID
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{n: n, adj: make([][]Half, n), index: make(map[uint64]EdgeID)}
}

func pairKey(u, v NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts an undirected edge {u,v} with weight w and returns its
// EdgeID. Weights must be non-negative. Self-loops are rejected.
//
// Duplicate edges canonicalize under the keep-min policy: adding {u,v} when
// the pair already exists keeps the minimum of the two weights on the
// existing edge and returns the existing EdgeID — M() does not grow. The
// policy makes a graph a pure function of its edge *set* (insertion
// multiplicity never changes distances, and min is the only merge under
// which shortest paths are preserved), which is what lets the serving
// layer's content-addressed cache key on a canonical edge list.
func (g *Graph) AddEdge(u, v NodeID, w int64) EdgeID {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if u < 0 || int(u) >= g.n || v < 0 || int(v) >= g.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range (n=%d)", u, v, g.n))
	}
	if w < 0 {
		panic(fmt.Sprintf("graph: negative weight %d on edge {%d,%d}", w, u, v))
	}
	if g.index == nil {
		g.index = make(map[uint64]EdgeID)
	}
	key := pairKey(u, v)
	if id, dup := g.index[key]; dup {
		g.setWeightIfLess(u, id, w)
		g.setWeightIfLess(v, id, w)
		return id
	}
	id := EdgeID(g.m)
	g.index[key] = id
	g.adj[u] = append(g.adj[u], Half{To: v, W: w, ID: id})
	g.adj[v] = append(g.adj[v], Half{To: u, W: w, ID: id})
	g.m++
	return id
}

// setWeightIfLess lowers the weight of u's half of edge id to w if smaller.
func (g *Graph) setWeightIfLess(u NodeID, id EdgeID, w int64) {
	for i := range g.adj[u] {
		if g.adj[u][i].ID == id && w < g.adj[u][i].W {
			g.adj[u][i].W = w
		}
	}
}

// Adj returns the adjacency list of u. The returned slice is owned by the
// graph and must not be modified.
func (g *Graph) Adj(u NodeID) []Half { return g.adj[u] }

// Degree returns the degree of u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// MaxWeight returns the maximum edge weight (0 for an edgeless graph).
func (g *Graph) MaxWeight() int64 {
	var mw int64
	for u := 0; u < g.n; u++ {
		for _, h := range g.adj[u] {
			if h.W > mw {
				mw = h.W
			}
		}
	}
	return mw
}

// HasEdge reports whether an edge {u,v} exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	for _, h := range g.adj[u] {
		if h.To == v {
			return true
		}
	}
	return false
}

// SortAdj sorts every adjacency list by (To, ID). The simulator relies on a
// canonical neighbor order for deterministic message scheduling; every
// generator calls this before returning.
func (g *Graph) SortAdj() {
	for u := range g.adj {
		a := g.adj[u]
		sort.Slice(a, func(i, j int) bool {
			if a[i].To != a[j].To {
				return a[i].To < a[j].To
			}
			return a[i].ID < a[j].ID
		})
	}
}

// Edges returns all undirected edges as (u,v,w) triples with u < v, indexed
// by EdgeID. The slice is freshly allocated.
func (g *Graph) Edges() []EdgeTriple {
	out := make([]EdgeTriple, g.m)
	seen := make([]bool, g.m)
	for u := 0; u < g.n; u++ {
		for _, h := range g.adj[u] {
			if seen[h.ID] {
				continue
			}
			seen[h.ID] = true
			a, b := NodeID(u), h.To
			if a > b {
				a, b = b, a
			}
			out[h.ID] = EdgeTriple{U: a, V: b, W: h.W, ID: h.ID}
		}
	}
	return out
}

// EdgeTriple is an undirected edge with endpoints in canonical order (U < V).
type EdgeTriple struct {
	U, V NodeID
	W    int64
	ID   EdgeID
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	ng := &Graph{n: g.n, m: g.m, adj: make([][]Half, g.n), index: make(map[uint64]EdgeID, len(g.index))}
	for u := range g.adj {
		ng.adj[u] = append([]Half(nil), g.adj[u]...)
	}
	for k, id := range g.index {
		ng.index[k] = id
	}
	return ng
}

// Reweight returns a copy of the graph with every edge weight mapped through
// f (keyed by EdgeID so both halves stay consistent).
func (g *Graph) Reweight(f func(EdgeID, int64) int64) *Graph {
	ng := g.Clone()
	for u := range ng.adj {
		for i := range ng.adj[u] {
			h := &ng.adj[u][i]
			h.W = f(h.ID, h.W)
		}
	}
	return ng
}

// Validate checks internal consistency (paired halves, weight agreement,
// edge count) and returns an error describing the first violation.
func (g *Graph) Validate() error {
	type dir struct {
		u, v NodeID
		w    int64
	}
	halves := make(map[EdgeID][]dir)
	total := 0
	for u := 0; u < g.n; u++ {
		for _, h := range g.adj[u] {
			if h.To < 0 || int(h.To) >= g.n {
				return fmt.Errorf("node %d: neighbor %d out of range", u, h.To)
			}
			halves[h.ID] = append(halves[h.ID], dir{NodeID(u), h.To, h.W})
			total++
		}
	}
	if total != 2*g.m {
		return fmt.Errorf("half count %d != 2m (m=%d)", total, g.m)
	}
	pairs := make(map[uint64]EdgeID, len(halves))
	for id, ds := range halves {
		if len(ds) != 2 {
			return fmt.Errorf("edge %d has %d halves", id, len(ds))
		}
		a, b := ds[0], ds[1]
		if a.u != b.v || a.v != b.u {
			return fmt.Errorf("edge %d: halves disagree on endpoints", id)
		}
		if a.w != b.w {
			return fmt.Errorf("edge %d: halves disagree on weight (%d vs %d)", id, a.w, b.w)
		}
		key := pairKey(a.u, a.v)
		if other, dup := pairs[key]; dup {
			return fmt.Errorf("edges %d and %d duplicate the pair {%d,%d} — AddEdge's keep-min policy should have merged them", other, id, a.u, a.v)
		}
		pairs[key] = id
	}
	return nil
}
