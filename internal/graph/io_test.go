package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := RandomConnected(30, 20, UniformWeights(9, 5), 5)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
	}
	want := Dijkstra(g, 0)
	got := Dijkstra(g2, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("distances differ after round trip at %d", v)
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := `# a triangle
n 3

0 1 5
1 2 3
# chord
0 2 10
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if d := Dijkstra(g, 0); d[2] != 8 {
		t.Fatalf("d[2]=%d, want 8", d[2])
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",            // empty
		"x 3",         // bad header
		"n 3\n0 0 1",  // self-loop
		"n 3\n0 9 1",  // out of range
		"n 3\n0 1 -2", // negative weight
		"n 3\n0 1",    // short line
		"n 3\na b c",  // garbage
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := Path(3, UnitWeights)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, []int64{0, 1, Inf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph G {", "0 -- 1", "1 -- 2", "(∞)", "(0)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}
