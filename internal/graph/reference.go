package graph

import "container/heap"

// Sequential reference algorithms. Every distributed algorithm in the
// repository is verified against these.

// Dijkstra returns exact single-source distances from s. Unreachable nodes
// get Inf. Weights must be non-negative.
func Dijkstra(g *Graph, s NodeID) []int64 {
	return MultiSourceDijkstra(g, map[NodeID]int64{s: 0})
}

// MultiSourceDijkstra returns, for each node v, min over sources s of
// offset(s) + dist(s,v) — the closest-source shortest path (CSSP) values
// with per-source offsets, matching Definition 2.3 plus the imaginary-node
// offsets used by the recursion in Section 2.3 of the paper.
func MultiSourceDijkstra(g *Graph, sources map[NodeID]int64) []int64 {
	dist := make([]int64, g.N())
	for i := range dist {
		dist[i] = Inf
	}
	pq := &nodeHeap{}
	for s, off := range sources {
		if off < 0 {
			panic("graph: negative source offset")
		}
		if off < dist[s] {
			dist[s] = off
		}
	}
	for v, d := range dist {
		if d < Inf {
			heap.Push(pq, nodeDist{NodeID(v), d})
		}
	}
	for pq.Len() > 0 {
		nd := heap.Pop(pq).(nodeDist)
		if nd.d > dist[nd.v] {
			continue
		}
		for _, h := range g.Adj(nd.v) {
			if nd.d+h.W < dist[h.To] {
				dist[h.To] = nd.d + h.W
				heap.Push(pq, nodeDist{h.To, dist[h.To]})
			}
		}
	}
	return dist
}

// BFSDist returns hop distances from the given sources (offset 0 each).
func BFSDist(g *Graph, sources ...NodeID) []int64 {
	dist := make([]int64, g.N())
	for i := range dist {
		dist[i] = Inf
	}
	queue := make([]NodeID, 0, len(sources))
	for _, s := range sources {
		if dist[s] != 0 {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.Adj(v) {
			if dist[h.To] == Inf {
				dist[h.To] = dist[v] + 1
				queue = append(queue, h.To)
			}
		}
	}
	return dist
}

// Components returns a component label per node (labels are 0..k-1 in order
// of first appearance) and the number of components.
func Components(g *Graph) ([]int, int) {
	comp := make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []NodeID
	for v := 0; v < g.N(); v++ {
		if comp[v] >= 0 {
			continue
		}
		comp[v] = next
		stack = append(stack[:0], NodeID(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range g.Adj(u) {
				if comp[h.To] < 0 {
					comp[h.To] = next
					stack = append(stack, h.To)
				}
			}
		}
		next++
	}
	return comp, next
}

// HopDiameter returns the maximum hop eccentricity over all nodes of the
// largest component (Inf-free); O(n·m), intended for test/bench graphs.
func HopDiameter(g *Graph) int64 {
	var diam int64
	for v := 0; v < g.N(); v++ {
		d := BFSDist(g, NodeID(v))
		for _, x := range d {
			if x < Inf && x > diam {
				diam = x
			}
		}
	}
	return diam
}

// HopDiameterApprox returns a 2-approximation of hop diameter using a double
// BFS sweep from node 0's component; cheap enough for large bench graphs.
func HopDiameterApprox(g *Graph) int64 {
	if g.N() == 0 {
		return 0
	}
	d0 := BFSDist(g, 0)
	far := NodeID(0)
	var best int64
	for v, d := range d0 {
		if d < Inf && d > best {
			best, far = d, NodeID(v)
		}
	}
	d1 := BFSDist(g, far)
	best = 0
	for _, d := range d1 {
		if d < Inf && d > best {
			best = d
		}
	}
	return best
}

// WeightedDiameterUpper returns n * maxWeight, the upper bound D used to
// start the thresholded recursion (clamped to at least 1).
func WeightedDiameterUpper(g *Graph) int64 {
	d := int64(g.N()) * g.MaxWeight()
	if d < 1 {
		d = 1
	}
	return d
}

type nodeDist struct {
	v NodeID
	d int64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
