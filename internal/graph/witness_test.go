package graph_test

import (
	"math/rand"
	"reflect"
	"testing"

	"dsssp/internal/graph"
)

// bruteWitness recomputes the min-ID witness rule from the definition
// (scan ALL neighbors, keep the smallest witnessing ID) without relying
// on adjacency sort order, as an oracle for WitnessParent's
// first-match-wins shortcut.
func bruteWitness(g *graph.Graph, source graph.NodeID, dist []int64) []graph.NodeID {
	parent := make([]graph.NodeID, g.N())
	for v := range parent {
		parent[v] = -1
		if graph.NodeID(v) == source || dist[v] == graph.Inf {
			continue
		}
		for _, h := range g.Adj(graph.NodeID(v)) {
			if dist[h.To] == graph.Inf || dist[h.To]+h.W != dist[v] {
				continue
			}
			if parent[v] < 0 || h.To < parent[v] {
				parent[v] = h.To
			}
		}
	}
	return parent
}

func TestWitnessParentsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	families := []graph.Family{graph.FamilyRandom, graph.FamilyGrid, graph.FamilyCluster, graph.FamilyExpander, graph.FamilyDisconnected}
	for _, fam := range families {
		for trial := 0; trial < 4; trial++ {
			n := 16 + rng.Intn(32)
			var w graph.WeightFn
			if trial%2 == 0 {
				w = graph.UniformWeights(6, rng.Int63())
			} else {
				w = graph.ZeroHeavyWeights(4, rng.Int63()) // dist-0 non-sources
			}
			g := graph.Make(fam, n, w, rng.Int63())
			s := graph.NodeID(rng.Intn(g.N())) // Make may round n (grids)
			dist := graph.Dijkstra(g, s)
			got := graph.WitnessParents(g, s, dist)
			want := bruteWitness(g, s, dist)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s n=%d s=%d: witness tree diverges from brute force\ngot =%v\nwant=%v", fam, n, s, got, want)
			}
			// Every parent must be tight, and the source/unreachables -1.
			for v, p := range got {
				if graph.NodeID(v) == s || dist[v] == graph.Inf {
					if p != -1 {
						t.Fatalf("%s: node %d should be parentless, got %d", fam, v, p)
					}
				} else if p < 0 {
					t.Fatalf("%s: reachable non-source %d has no parent", fam, v)
				}
			}
		}
	}
}

func TestWitnessParentPanicsOnInexactDist(t *testing.T) {
	g := graph.Make(graph.FamilyPath, 4, graph.UnitWeights, 1)
	dist := graph.Dijkstra(g, 0)
	dist[2] = 99 // not achievable by any neighbor
	defer func() {
		if recover() == nil {
			t.Fatal("WitnessParent accepted an inexact distance vector")
		}
	}()
	graph.WitnessParent(g, 2, dist)
}

func TestWitnessParentsLengthPanic(t *testing.T) {
	g := graph.Make(graph.FamilyPath, 4, graph.UnitWeights, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("WitnessParents accepted a short distance vector")
		}
	}()
	graph.WitnessParents(g, 0, []int64{0, 1})
}
