package graph

import "fmt"

// WitnessParent returns v's deterministic witness parent under the exact
// distance vector dist: the smallest-ID neighbor u with dist[u] + w(u,v) ==
// dist[v], or -1 when dist[v] == Inf (an unreachable node has no parent).
// This is precisely the tie-break the distributed tree extraction
// (dsssp.CSSPTree) applies, so the parent is a pure function of
// (graph, dist) — which is what lets the serving layer rebuild and repair
// witness trees without re-running the extraction round. Adjacency lists
// are sorted by neighbor ID (SortAdj), so the first witness found is the
// minimum-ID one.
//
// A finite dist[v] with no witnessing neighbor means dist is not an exact
// distance vector for g; like the distributed extraction, this panics
// rather than fabricating a tree.
func WitnessParent(g *Graph, v NodeID, dist []int64) NodeID {
	dv := dist[v]
	if dv == Inf {
		return -1
	}
	for _, h := range g.Adj(v) {
		du := dist[h.To]
		if du == Inf {
			continue
		}
		if du+h.W == dv {
			return h.To
		}
	}
	panic(fmt.Sprintf("graph: node %d has distance %d but no witness neighbor", v, dv))
}

// WitnessParents extracts the whole deterministic min-ID witness parent
// tree for an exact single-source distance vector: Parent[v] is
// WitnessParent(g, v, dist) for every non-source reachable v, and -1 at
// the source and at unreachable nodes — byte-identical to the Parent
// slice dsssp.SSSPTree computes distributedly (pinned by the witness
// tests). O(n + m).
func WitnessParents(g *Graph, source NodeID, dist []int64) []NodeID {
	if len(dist) != g.N() {
		panic(fmt.Sprintf("graph: distance vector has %d entries for an n=%d graph", len(dist), g.N()))
	}
	parent := make([]NodeID, g.N())
	for v := range parent {
		if NodeID(v) == source {
			parent[v] = -1
			continue
		}
		parent[v] = WitnessParent(g, NodeID(v), dist)
	}
	return parent
}
