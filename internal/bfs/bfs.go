// Package bfs implements the distributed shortest-path primitives of
// Section 2.1 of the paper for the CONGEST model:
//
//   - Fragment: an exact thresholded multi-source shortest-path computation
//     over positive integer edge weights (a distributed Dial/BFS: a node at
//     distance d fires in round start+d and relays across an edge of weight
//     w so the token lands at round start+d+w). Each edge direction carries
//     at most one token, giving O(1) congestion per edge per invocation.
//   - CutterFragment: the approximate cutter of Lemma 2.1 — the weight
//     rounding of Nanongkai [Nan14]: with rounding unit ρ = Θ(εW/n), run
//     Fragment over weights ⌈w/ρ⌉ up to depth O(n/ε) and scale back,
//     giving additive error < εW for all distances ≤ 2W.
//
// Fragments run inside a node Program (via proto.Mailbox) so the CSSP
// recursion of Section 2.3 can invoke them phase by phase; Run/RunCutter are
// standalone whole-graph wrappers used by tests, benches, and the public
// API.
package bfs

import (
	"fmt"

	"dsssp/internal/graph"
	"dsssp/internal/proto"
	"dsssp/internal/simnet"
)

// NotSource is the SourceOffset value marking a non-source node.
const NotSource = int64(-1)

// FragmentParams configures one thresholded multi-source shortest-path
// fragment. All participants must use identical Tag, StartRound, and
// Threshold values.
type FragmentParams struct {
	// Tag is the message tag for this fragment instance (one tag).
	Tag uint64
	// StartRound is the globally agreed round of BFS step 0.
	StartRound int64
	// Threshold is the inclusive distance threshold (Definition 2.3).
	Threshold int64
	// SourceOffset is the node's source offset (>= 0) or NotSource.
	SourceOffset int64
	// Eligible reports whether incident edge i may be used (e.g. only edges
	// to co-participants of the current subproblem). Nil means all edges.
	Eligible func(i int) bool
	// WeightOf returns the (possibly rounded) positive weight of incident
	// edge i. Nil means the graph weight.
	WeightOf func(i int) int64
}

// FragmentEnd returns the round at which every participant of a fragment
// with the given parameters is guaranteed to have finished (and to which it
// has advanced).
func FragmentEnd(startRound, threshold int64) int64 { return startRound + threshold + 1 }

// Fragment executes the thresholded shortest-path fragment and returns the
// node's distance, or graph.Inf if it exceeds the threshold. On return the
// node has advanced to FragmentEnd(p.StartRound, p.Threshold).
//
// Congest mode only (the sleeping-model counterpart is package energybfs).
func Fragment(mb *proto.Mailbox, p FragmentParams) int64 {
	c := mb.C
	weight := p.WeightOf
	if weight == nil {
		weight = c.Weight
	}
	eligible := p.Eligible
	if eligible == nil {
		eligible = func(int) bool { return true }
	}
	end := FragmentEnd(p.StartRound, p.Threshold)

	best := graph.Inf
	if p.SourceOffset >= 0 && p.SourceOffset <= p.Threshold {
		best = p.SourceOffset
	}
	fired := false
	// sched maps a future round to the relay values to send then.
	type relay struct {
		edge int
		val  int64
	}
	sched := make(map[int64][]relay)

	for {
		now := mb.Round()
		for _, msg := range mb.Take(p.Tag) {
			cand := msg.Body.(int64)
			if cand < best {
				best = cand
			}
		}
		if !fired && best <= p.Threshold && now >= p.StartRound+best {
			if now > p.StartRound+best {
				panic(fmt.Sprintf("bfs: node %d fired late: round %d > start %d + dist %d", c.ID(), now, p.StartRound, best))
			}
			fired = true
			for i := 0; i < c.Degree(); i++ {
				if !eligible(i) {
					continue
				}
				w := weight(i)
				if w < 1 {
					panic(fmt.Sprintf("bfs: node %d edge %d has non-positive weight %d", c.ID(), i, w))
				}
				nd := best + w
				if nd > p.Threshold {
					// A token above the threshold can never matter; skip it
					// to keep congestion at O(1).
					continue
				}
				sendAt := p.StartRound + nd - 1
				sched[sendAt] = append(sched[sendAt], relay{i, nd})
			}
		}
		for _, r := range sched[now] {
			mb.Send(r.edge, p.Tag, r.val)
		}
		delete(sched, now)
		if now >= end {
			break
		}
		next := end
		for r := range sched {
			if r < next {
				next = r
			}
		}
		if !fired && best <= p.Threshold && p.StartRound+best < next {
			next = p.StartRound + best
		}
		mb.Pump(c.WaitMessage(next))
	}
	if best > p.Threshold {
		return graph.Inf
	}
	return best
}

// CutterParams configures one Lemma 2.1 approximate-CSSP invocation.
// ε is the rational EpsNum/EpsDen in (0,1).
type CutterParams struct {
	Tag        uint64
	StartRound int64
	// W is the Lemma's scale: all distances <= 2W are captured, with
	// additive error < εW.
	W int64
	// NHat is an upper bound on the number of participating nodes.
	NHat int64
	// EpsNum/EpsDen is ε.
	EpsNum, EpsDen int64
	// SourceOffset is the node's source offset (>= 0) or NotSource,
	// in original (unrounded) weight units.
	SourceOffset int64
	Eligible     func(i int) bool
	// WeightOf optionally overrides the graph weight (original units).
	WeightOf func(i int) int64
}

// Rho returns the rounding unit ρ = max(1, ⌊εW/(n̂+1)⌋).
func Rho(w, nHat, epsNum, epsDen int64) int64 {
	r := (w * epsNum) / (epsDen * (nHat + 1))
	if r < 1 {
		r = 1
	}
	return r
}

// RoundWeight rounds an original weight w to max(1, ⌈w/ρ⌉).
func RoundWeight(w, rho int64) int64 {
	r := (w + rho - 1) / rho
	if r < 1 {
		r = 1
	}
	return r
}

// cutterThreshold is the rounded-unit depth needed to capture all original
// distances <= 2W: 2W/ρ + (n̂+1) hops of ceil-slack.
func cutterThreshold(w, rho, nHat int64) int64 { return 2*w/rho + nHat + 1 }

// CutterEnd returns the round at which every participant of a cutter with
// these parameters has finished.
func CutterEnd(p CutterParams) int64 {
	rho := Rho(p.W, p.NHat, p.EpsNum, p.EpsDen)
	return FragmentEnd(p.StartRound, cutterThreshold(p.W, rho, p.NHat))
}

// CutterFragment runs Lemma 2.1: it returns dist'(S,v) with
//
//	dist(S,v) <= dist'(S,v) < dist(S,v) + εW   when dist'(S,v) != Inf,
//	dist(S,v) > 2W                             when dist'(S,v) == Inf.
//
// On return the node has advanced to CutterEnd(p).
func CutterFragment(mb *proto.Mailbox, p CutterParams) int64 {
	if p.EpsNum <= 0 || p.EpsDen <= 0 || p.EpsNum >= p.EpsDen {
		panic(fmt.Sprintf("bfs: cutter needs ε in (0,1), got %d/%d", p.EpsNum, p.EpsDen))
	}
	if p.W < 1 {
		panic(fmt.Sprintf("bfs: cutter needs W >= 1, got %d", p.W))
	}
	weight := p.WeightOf
	if weight == nil {
		weight = mb.C.Weight
	}
	rho := Rho(p.W, p.NHat, p.EpsNum, p.EpsDen)
	offset := p.SourceOffset
	if offset >= 0 {
		offset = RoundWeight(offset, rho)
		if p.SourceOffset == 0 {
			offset = 0
		}
	}
	d := Fragment(mb, FragmentParams{
		Tag:          p.Tag,
		StartRound:   p.StartRound,
		Threshold:    cutterThreshold(p.W, rho, p.NHat),
		SourceOffset: offset,
		Eligible:     p.Eligible,
		WeightOf:     func(i int) int64 { return RoundWeight(weight(i), rho) },
	})
	if d == graph.Inf {
		return graph.Inf
	}
	return d * rho
}

// Run executes a whole-graph thresholded multi-source shortest-path
// computation in the Congest model and returns per-node distances
// (graph.Inf above the threshold) plus metrics. Sources map nodes to
// offsets (>= 0).
func Run(g *graph.Graph, sources map[graph.NodeID]int64, threshold int64) ([]int64, simnet.Metrics, error) {
	eng := simnet.New(g, simnet.Config{Model: simnet.Congest})
	res, err := eng.Run(func(c *simnet.Ctx) {
		mb := proto.NewMailbox(c)
		off := NotSource
		if o, ok := sources[c.ID()]; ok {
			off = o
		}
		d := Fragment(mb, FragmentParams{Tag: 1, StartRound: 0, Threshold: threshold, SourceOffset: off})
		c.SetOutput(d)
	})
	if err != nil {
		return nil, simnet.Metrics{}, err
	}
	return collect(res), res.Metrics, nil
}

// RunCutter executes a whole-graph Lemma 2.1 approximation in the Congest
// model and returns per-node approximate distances plus metrics.
func RunCutter(g *graph.Graph, sources map[graph.NodeID]int64, w int64, epsNum, epsDen int64) ([]int64, simnet.Metrics, error) {
	eng := simnet.New(g, simnet.Config{Model: simnet.Congest})
	res, err := eng.Run(func(c *simnet.Ctx) {
		mb := proto.NewMailbox(c)
		off := NotSource
		if o, ok := sources[c.ID()]; ok {
			off = o
		}
		d := CutterFragment(mb, CutterParams{
			Tag: 1, StartRound: 0, W: w, NHat: int64(g.N()),
			EpsNum: epsNum, EpsDen: epsDen, SourceOffset: off,
		})
		c.SetOutput(d)
	})
	if err != nil {
		return nil, simnet.Metrics{}, err
	}
	return collect(res), res.Metrics, nil
}

func collect(res *simnet.Result) []int64 {
	out := make([]int64, len(res.Outputs))
	for i, v := range res.Outputs {
		out[i] = v.(int64)
	}
	return out
}
