package bfs

import (
	"testing"
	"testing/quick"

	"dsssp/internal/graph"
)

func srcs(pairs ...int64) map[graph.NodeID]int64 {
	m := make(map[graph.NodeID]int64, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		m[graph.NodeID(pairs[i])] = pairs[i+1]
	}
	return m
}

func TestFragmentUnweightedPath(t *testing.T) {
	g := graph.Path(8, graph.UnitWeights)
	d, met, err := Run(g, srcs(0, 0), 100)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		if d[v] != int64(v) {
			t.Fatalf("d[%d]=%d", v, d[v])
		}
	}
	if met.MaxEdgeMessages > 2 {
		t.Fatalf("congestion %d > 2", met.MaxEdgeMessages)
	}
}

func TestFragmentThresholdCutsOff(t *testing.T) {
	g := graph.Path(10, graph.UnitWeights)
	d, _, err := Run(g, srcs(0, 0), 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 10; v++ {
		if v <= 4 && d[v] != int64(v) {
			t.Fatalf("d[%d]=%d, want %d", v, d[v], v)
		}
		if v > 4 && d[v] != graph.Inf {
			t.Fatalf("d[%d]=%d, want Inf", v, d[v])
		}
	}
}

func TestFragmentWeighted(t *testing.T) {
	g := graph.RandomConnected(60, 80, graph.UniformWeights(7, 3), 3)
	want := graph.Dijkstra(g, 0)
	d, met, err := Run(g, srcs(0, 0), graph.WeightedDiameterUpper(g))
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("d[%d]=%d, want %d", v, d[v], want[v])
		}
	}
	if met.MaxEdgeMessages > 2 {
		t.Fatalf("congestion %d > 2 (one token per direction)", met.MaxEdgeMessages)
	}
}

func TestFragmentMultiSourceOffsets(t *testing.T) {
	g := graph.Grid2D(6, 6, graph.UnitWeights)
	sources := srcs(0, 5, 35, 0)
	want := graph.MultiSourceDijkstra(g, sources)
	d, _, err := Run(g, sources, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if d[v] != want[v] {
			t.Fatalf("d[%d]=%d, want %d", v, d[v], want[v])
		}
	}
}

func TestFragmentDisconnected(t *testing.T) {
	g := graph.Disconnected(2, 6, 2, graph.UnitWeights, 4)
	d, _, err := Run(g, srcs(0, 0), 50)
	if err != nil {
		t.Fatal(err)
	}
	for v := 6; v < 12; v++ {
		if d[v] != graph.Inf {
			t.Fatalf("other component node %d got %d", v, d[v])
		}
	}
}

// Property: Fragment equals the sequential reference on random weighted
// graphs with random thresholds and multiple offset sources.
func TestFragmentMatchesReference(t *testing.T) {
	f := func(seed int64, nRaw, thRaw uint8) bool {
		n := int(nRaw%40) + 4
		g := graph.RandomConnected(n, n/2, graph.UniformWeights(9, seed), seed)
		sources := map[graph.NodeID]int64{0: 0, graph.NodeID(n / 2): int64(thRaw % 7)}
		th := int64(thRaw)%40 + 1
		ref := graph.MultiSourceDijkstra(g, sources)
		d, _, err := Run(g, sources, th)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			want := ref[v]
			if want > th {
				want = graph.Inf
			}
			if d[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCutterGuarantees(t *testing.T) {
	f := func(seed int64, nRaw uint8, epsPick uint8) bool {
		n := int(nRaw%50) + 4
		g := graph.RandomConnected(n, n, graph.UniformWeights(50, seed), seed)
		sources := map[graph.NodeID]int64{0: 0}
		ref := graph.MultiSourceDijkstra(g, sources)
		// W around half the max distance so both branches get exercised.
		var maxd int64 = 1
		for _, d := range ref {
			if d < graph.Inf && d > maxd {
				maxd = d
			}
		}
		w := maxd/2 + 1
		epsNum := int64(epsPick%4) + 1 // 1..4 over 8
		got, _, err := RunCutter(g, sources, w, epsNum, 8)
		if err != nil {
			return false
		}
		epsW := epsNum * w / 8
		for v := 0; v < n; v++ {
			if got[v] == graph.Inf {
				if ref[v] <= 2*w {
					return false // must capture everything within 2W
				}
				continue
			}
			if got[v] < ref[v] {
				return false // never underestimates
			}
			if got[v] > ref[v]+epsW {
				return false // additive error bound εW (strict < in paper)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCutterCongestionConstant(t *testing.T) {
	// Congestion of one cutter must stay O(1) regardless of n and weights.
	for _, n := range []int{50, 200, 400} {
		g := graph.RandomConnected(n, 2*n, graph.UniformWeights(int64(n), 7), 7)
		_, met, err := RunCutter(g, srcs(0, 0), graph.WeightedDiameterUpper(g)/2, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if met.MaxEdgeMessages > 2 {
			t.Fatalf("n=%d: cutter congestion %d > 2", n, met.MaxEdgeMessages)
		}
	}
}

func TestCutterTimeLinearInEps(t *testing.T) {
	g := graph.Path(64, graph.UniformWeights(1000, 1))
	w := graph.WeightedDiameterUpper(g)
	_, metHalf, err := RunCutter(g, srcs(0, 0), w, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, metEighth, err := RunCutter(g, srcs(0, 0), w, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	// ε/4 smaller => ~4x more rounds; allow generous slack.
	if metEighth.Rounds < 2*metHalf.Rounds {
		t.Fatalf("rounds did not scale with 1/ε: %d vs %d", metHalf.Rounds, metEighth.Rounds)
	}
}

func TestRhoAndRoundWeight(t *testing.T) {
	if r := Rho(1000, 9, 1, 2); r != 50 {
		t.Fatalf("rho=%d, want 50", r)
	}
	if r := Rho(3, 100, 1, 2); r != 1 {
		t.Fatalf("small rho=%d, want 1", r)
	}
	if w := RoundWeight(0, 5); w != 1 {
		t.Fatalf("zero weight rounds to %d, want 1", w)
	}
	if w := RoundWeight(11, 5); w != 3 {
		t.Fatalf("ceil broken: %d", w)
	}
}

func TestFragmentZeroWeightRejected(t *testing.T) {
	g := graph.Path(3, func(int) int64 { return 0 })
	_, _, err := Run(g, srcs(0, 0), 10)
	if err == nil {
		t.Fatal("want error for non-positive fragment weight")
	}
}
