package energybfs

import (
	"math/bits"
	"testing"
	"testing/quick"

	"dsssp/internal/graph"
)

func checkBFS(t *testing.T, g *graph.Graph, sources map[graph.NodeID]int64, threshold int64) {
	t.Helper()
	got, met, err := RunBFS(g, sources, threshold)
	if err != nil {
		t.Fatal(err)
	}
	ref := graph.MultiSourceDijkstra(g.Reweight(func(graph.EdgeID, int64) int64 { return 1 }), sources)
	for v := range ref {
		want := ref[v]
		if want > threshold {
			want = graph.Inf
		}
		if got[v] != want {
			t.Fatalf("node %d: got %d, want %d", v, got[v], want)
		}
	}
	if met.LostMessages != 0 {
		t.Fatalf("energy BFS lost %d messages — activation failed to outrun the frontier", met.LostMessages)
	}
}

func TestEnergyBFSPath(t *testing.T) {
	checkBFS(t, graph.Path(16, graph.UnitWeights), map[graph.NodeID]int64{0: 0}, 15)
}

func TestEnergyBFSGrid(t *testing.T) {
	checkBFS(t, graph.Grid2D(5, 5, graph.UnitWeights), map[graph.NodeID]int64{12: 0}, 8)
}

func TestEnergyBFSThreshold(t *testing.T) {
	checkBFS(t, graph.Path(20, graph.UnitWeights), map[graph.NodeID]int64{0: 0}, 6)
}

func TestEnergyBFSMultiSourceOffsets(t *testing.T) {
	checkBFS(t, graph.Cycle(14, graph.UnitWeights), map[graph.NodeID]int64{0: 2, 7: 0}, 9)
}

func TestEnergyBFSRandom(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%24) + 4
		g := graph.RandomConnected(n, n/2, graph.UnitWeights, seed)
		th := int64(n)
		got, met, err := RunBFS(g, map[graph.NodeID]int64{0: 0}, th)
		if err != nil {
			t.Logf("err: %v", err)
			return false
		}
		if met.LostMessages != 0 {
			t.Logf("lost %d", met.LostMessages)
			return false
		}
		ref := graph.BFSDist(g, 0)
		for v := range ref {
			want := ref[v]
			if want > th {
				want = graph.Inf
			}
			if got[v] != want {
				t.Logf("n=%d seed=%d v=%d got %d want %d", n, seed, v, got[v], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyBFSDisconnected(t *testing.T) {
	g := graph.Disconnected(2, 8, 2, graph.UnitWeights, 5)
	got, met, err := RunBFS(g, map[graph.NodeID]int64{0: 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for v := 8; v < 16; v++ {
		if got[v] != graph.Inf {
			t.Fatalf("node %d reachable? got %d", v, got[v])
		}
	}
	_ = met
}

func TestEnergyBFSWeightedMetric(t *testing.T) {
	// Rounded-weight metric (the Theorem 3.15 usage): cover and BFS share
	// the weighted metric.
	g := graph.RandomConnected(18, 12, graph.UniformWeights(3, 7), 7)
	ref := graph.Dijkstra(g, 0)
	var maxd int64 = 1
	for _, d := range ref {
		if d < graph.Inf && d > maxd {
			maxd = d
		}
	}
	cv, err := buildWeighted(g, maxd)
	if err != nil {
		t.Fatal(err)
	}
	got, met := runWeighted(t, g, cv, maxd)
	for v := range ref {
		if got[v] != ref[v] {
			t.Fatalf("node %d: got %d, want %d", v, got[v], ref[v])
		}
	}
	if met.LostMessages != 0 {
		t.Fatalf("lost %d messages", met.LostMessages)
	}
}

func TestEnergyBFSEnergySublinear(t *testing.T) {
	// Theorem 3.8/3.13 shape: on a path (D = n-1) the always-awake baseline
	// needs MaxAwake = Θ(rounds); the cover-driven BFS's energy must
	// diverge from its running time as n grows (the polylog constants are
	// large at these sizes — cf. the paper's log^18-style bounds — so the
	// assertion is on the divergence, and EXPERIMENTS.md reports the raw
	// curves).
	type point struct{ awake, rounds int64 }
	pts := map[int]point{}
	for _, n := range []int{128, 512} {
		g := graph.Path(n, graph.UnitWeights)
		_, met, err := RunBFS(g, map[graph.NodeID]int64{0: 0}, int64(n-1))
		if err != nil {
			t.Fatal(err)
		}
		pts[n] = point{met.MaxAwake, met.Rounds}
	}
	if 2*pts[512].awake > pts[512].rounds {
		t.Fatalf("n=512: energy %d not well below time %d", pts[512].awake, pts[512].rounds)
	}
	// Quadrupling n (and so D, and the rounds) must far less than quadruple
	// the energy.
	if pts[512].awake > 2*pts[128].awake {
		t.Fatalf("energy grew too fast: %d -> %d for n 128 -> 512", pts[128].awake, pts[512].awake)
	}
	_ = bits.Len(0)
}

func TestDurationExact(t *testing.T) {
	g := graph.Path(10, graph.UnitWeights)
	cv, err := decompBuild(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := Duration(cv, 9)
	got, _ := runWithRoundCheck(t, g, cv, 9)
	for v, r := range got {
		if r != want {
			t.Fatalf("node %d returned at %d, want %d", v, r, want)
		}
	}
}
