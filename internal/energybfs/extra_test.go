package energybfs

import (
	"testing"

	"dsssp/internal/decomp"
	"dsssp/internal/graph"
	"dsssp/internal/proto"
	"dsssp/internal/simnet"
)

// A cover can be reused across multiple BFS runs with different sources.
func TestCoverReuseAcrossSources(t *testing.T) {
	g := graph.Grid2D(6, 6, graph.UnitWeights)
	cv, err := decomp.Build(g, nil, nil, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []graph.NodeID{0, 35, 17} {
		eng := simnet.New(g, simnet.Config{Model: simnet.Sleeping})
		res, err := eng.Run(func(c *simnet.Ctx) {
			mb := proto.NewMailbox(c)
			off := NotSource
			if c.ID() == src {
				off = 0
			}
			d := Run(mb, Params{Tag: 1, StartRound: 0, Cover: cv, Threshold: 12, SourceOffset: off})
			c.SetOutput(d)
		})
		if err != nil {
			t.Fatal(err)
		}
		ref := graph.BFSDist(g, src)
		for v := 0; v < g.N(); v++ {
			want := ref[v]
			if want > 12 {
				want = graph.Inf
			}
			if res.Outputs[v].(int64) != want {
				t.Fatalf("src=%d node %d: got %v want %d", src, v, res.Outputs[v], want)
			}
		}
		if res.Metrics.LostMessages != 0 {
			t.Fatalf("src=%d: lost %d messages", src, res.Metrics.LostMessages)
		}
	}
}

// Threshold 1: only the source and its unit-distance neighbors resolve.
func TestThresholdOne(t *testing.T) {
	g := graph.Star(8, graph.UnitWeights)
	got, met, err := RunBFS(g, map[graph.NodeID]int64{1: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		want := graph.Inf
		switch v {
		case 1:
			want = 0
		case 0:
			want = 1
		}
		if got[v] != want {
			t.Fatalf("node %d: got %d want %d", v, got[v], want)
		}
	}
	if met.LostMessages != 0 {
		t.Fatalf("lost %d", met.LostMessages)
	}
}

// No sources at all: everyone reports Inf with near-zero energy after init.
func TestNoSources(t *testing.T) {
	g := graph.Path(12, graph.UnitWeights)
	got, met, err := RunBFS(g, nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range got {
		if d != graph.Inf {
			t.Fatalf("node %d: %d", v, d)
		}
	}
	// Only the init phase costs energy when nothing is relevant.
	if met.MaxAwake > 100 {
		t.Fatalf("sourceless run awake %d rounds", met.MaxAwake)
	}
}

// Offsets exceeding the threshold are ignored as sources.
func TestOversizedOffset(t *testing.T) {
	g := graph.Path(6, graph.UnitWeights)
	got, _, err := RunBFS(g, map[graph.NodeID]int64{0: 99, 5: 0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 4, 3, 2, 1, 0}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("node %d: got %d want %d", v, got[v], want[v])
		}
	}
}

// The step interval derived from a cover must respect the activation
// latency condition for every layer (Lemma 3.7's inequality).
func TestStepIntervalCondition(t *testing.T) {
	g := graph.RandomConnected(60, 60, graph.UnitWeights, 7)
	cv, err := decomp.Build(g, nil, nil, 30)
	if err != nil {
		t.Fatal(err)
	}
	i := StepInterval(cv)
	for _, l := range cv.Layers {
		if 6*l.Period > i*l.Radius {
			t.Fatalf("interval %d too small for layer radius %d period %d", i, l.Radius, l.Period)
		}
	}
}
