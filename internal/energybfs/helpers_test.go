package energybfs

import (
	"testing"

	"dsssp/internal/decomp"
	"dsssp/internal/graph"
	"dsssp/internal/proto"
	"dsssp/internal/simnet"
)

func decompBuild(g *graph.Graph, maxDist int64) (*decomp.Cover, error) {
	return decomp.Build(g, nil, nil, maxDist)
}

func buildWeighted(g *graph.Graph, maxDist int64) (*decomp.Cover, error) {
	w := func(u graph.NodeID, i int) int64 { return g.Adj(u)[i].W }
	return decomp.Build(g, nil, w, maxDist)
}

func runWeighted(t *testing.T, g *graph.Graph, cv *decomp.Cover, threshold int64) ([]int64, simnet.Metrics) {
	t.Helper()
	eng := simnet.New(g, simnet.Config{Model: simnet.Sleeping})
	res, err := eng.Run(func(c *simnet.Ctx) {
		mb := proto.NewMailbox(c)
		off := NotSource
		if c.ID() == 0 {
			off = 0
		}
		d := Run(mb, Params{
			Tag: 1, StartRound: 0, Cover: cv, Threshold: threshold,
			SourceOffset: off, WeightOf: c.Weight,
		})
		c.SetOutput(d)
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, g.N())
	for i, v := range res.Outputs {
		out[i] = v.(int64)
	}
	return out, res.Metrics
}

// runWithRoundCheck returns each node's return round.
func runWithRoundCheck(t *testing.T, g *graph.Graph, cv *decomp.Cover, threshold int64) ([]int64, simnet.Metrics) {
	t.Helper()
	eng := simnet.New(g, simnet.Config{Model: simnet.Sleeping})
	res, err := eng.Run(func(c *simnet.Ctx) {
		mb := proto.NewMailbox(c)
		off := NotSource
		if c.ID() == 0 {
			off = 0
		}
		Run(mb, Params{Tag: 1, StartRound: 0, Cover: cv, Threshold: threshold, SourceOffset: off})
		c.SetOutput(c.Round())
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, g.N())
	for i, v := range res.Outputs {
		out[i] = v.(int64)
	}
	return out, res.Metrics
}
