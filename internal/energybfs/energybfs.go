// Package energybfs implements the sleeping-model (energy) thresholded BFS
// of Section 3.3 of the paper (Theorem 3.8, and the from-scratch form of
// Theorems 3.13/3.14 with the cover supplied by package decomp):
//
//   - Clusters of the layered sparse cover run periodic convergecast +
//     broadcast cycles on their trees (Section 3.1.1): layer j uses period
//     P_j = Θ(B^j), so a node is awake O(1) rounds per cycle per cluster.
//   - A cluster is activated when its parent cluster is reached by the BFS
//     (Definition 3.5's relevance seeds the cascade: clusters whose parent
//     contains a source start active). A cluster deactivates once it has
//     been reached and all its child clusters are active (layer 0: once
//     all members are reached).
//   - The BFS advances one unit of the metric per fixed interval I, chosen
//     from the cover's measured depths so that the activation cascade
//     provably outruns the frontier (Lemma 3.7's condition): a layer-j
//     cluster is fully awake before any of its nodes can be reached.
//   - A node listens at BFS step rounds while one of its layer-0 clusters
//     is active, so token messages are never lost — the tests assert
//     LostMessages == 0 and exact distances.
//
// Tokens carry the receiver's distance; an edge of metric weight w relays
// from a node at distance d in the round of step d+w (a sleeping-model
// Dial scheme supporting the rounded weights and source offsets the energy
// CSSP of Theorem 3.15 needs).
package energybfs

import (
	"fmt"

	"dsssp/internal/decomp"
	"dsssp/internal/graph"
	"dsssp/internal/proto"
	"dsssp/internal/simnet"
)

// NotSource marks a non-source node.
const NotSource = int64(-1)

// Params configures one thresholded energy BFS over a prebuilt cover. All
// participants must pass identical Tag, StartRound, Cover, and Threshold.
type Params struct {
	// Tag is the base tag; the run uses Tag (tokens) and
	// Tag+1+2*cluster+{0,1} for cluster sweeps.
	Tag        uint64
	StartRound int64
	Cover      *decomp.Cover
	// Threshold is the inclusive metric distance bound (Definition 2.3);
	// it must be <= Cover.MaxDist.
	Threshold int64
	// SourceOffset is this node's offset (>= 0) or NotSource.
	SourceOffset int64
	// Eligible restricts usable edges (nil = all). Must agree with the
	// participant set the cover was built on.
	Eligible func(i int) bool
	// WeightOf is the metric weight of incident edge i (>= 1), matching
	// the cover's metric. Nil means unit weights (hop BFS).
	WeightOf func(i int) int64
}

// StepInterval returns the BFS pace I: rounds per unit of metric distance,
// large enough that one full activation hand-off (two cluster cycles of the
// parent plus the child window alignment) completes while the BFS crosses
// half a parent radius.
func StepInterval(cv *decomp.Cover) int64 {
	var best int64 = 1
	for _, l := range cv.Layers {
		need := 6 * ((l.Period + l.Radius - 1) / l.Radius)
		if need > best {
			best = need
		}
	}
	return best + 1
}

// initLen returns the initialization phase length: one cycle window per
// layer, scheduled top-down.
func initLen(cv *decomp.Cover) int64 {
	var sum int64
	for _, l := range cv.Layers {
		sum += l.Period
	}
	return sum
}

// Duration returns the full number of rounds a run occupies; every
// participant returns at StartRound + Duration. (The +1 shift lets callers
// invoke Run while already at StartRound.)
func Duration(cv *decomp.Cover, threshold int64) int64 {
	return 1 + initLen(cv) + (threshold+2)*StepInterval(cv) + 2
}

// membership tracks runtime state of one cluster membership.
type membership struct {
	m decomp.Membership
	// containsSource is learned during initialization.
	containsSource bool
	active         bool
	deactivated    bool
	// firstWindow is the earliest BFS-phase window index this membership
	// serves (set at activation).
	firstWindow int64
	// rootAgg accumulates the root's convergecast result within a window.
	rootAgg agg
}

type agg struct {
	AnyReached  bool
	ChildActive bool
	AllReached  bool
	AnySource   bool
}

func combineAgg(a, b agg) agg {
	return agg{
		AnyReached:  a.AnyReached || b.AnyReached,
		ChildActive: a.ChildActive && b.ChildActive,
		AllReached:  a.AllReached && b.AllReached,
		AnySource:   a.AnySource || b.AnySource,
	}
}

type downMsg struct {
	Reached    bool
	Deactivate bool
	Source     bool
}

// runner is the per-node event loop state.
type runner struct {
	mb        *proto.Mailbox
	p         Params
	cv        *decomp.Cover
	ms        []*membership
	byCluster map[int32]*membership

	bfsStart int64
	stepI    int64
	end      int64

	dist    int64
	weights []int64
	elig    []bool
	sent    []bool
}

// Run executes the thresholded energy BFS; only participants (nodes the
// cover was built over) may call it. Returns the node's distance, or
// graph.Inf above the threshold. The node returns at StartRound+Duration.
func Run(mb *proto.Mailbox, p Params) int64 {
	if p.Threshold > p.Cover.MaxDist {
		panic(fmt.Sprintf("energybfs: threshold %d exceeds cover MaxDist %d", p.Threshold, p.Cover.MaxDist))
	}
	c := mb.C
	r := &runner{
		mb: mb, p: p, cv: p.Cover,
		byCluster: make(map[int32]*membership),
		dist:      graph.Inf,
		bfsStart:  p.StartRound + 1 + initLen(p.Cover),
		stepI:     StepInterval(p.Cover),
	}
	r.end = p.StartRound + Duration(p.Cover, p.Threshold)
	for _, m := range p.Cover.Node[c.ID()] {
		mm := &membership{m: m}
		r.ms = append(r.ms, mm)
		r.byCluster[m.Cluster] = mm
	}
	r.weights = make([]int64, c.Degree())
	r.elig = make([]bool, c.Degree())
	r.sent = make([]bool, c.Degree())
	for i := 0; i < c.Degree(); i++ {
		r.elig[i] = p.Eligible == nil || p.Eligible(i)
		if p.WeightOf != nil {
			r.weights[i] = p.WeightOf(i)
		} else {
			r.weights[i] = 1
		}
		if r.weights[i] < 1 {
			panic(fmt.Sprintf("energybfs: node %d edge %d has metric weight %d", c.ID(), i, r.weights[i]))
		}
	}

	r.initPhase()
	r.bfsPhase()
	mb.AdvanceTo(r.end)
	if r.dist > p.Threshold {
		return graph.Inf
	}
	return r.dist
}

func (r *runner) tagUp(cl int32) uint64   { return r.p.Tag + 1 + 2*uint64(cl) }
func (r *runner) tagDown(cl int32) uint64 { return r.p.Tag + 2 + 2*uint64(cl) }

// initPhase runs one convergecast+broadcast cycle per cluster (top layer
// first) so every member learns which clusters contain sources; clusters
// whose parent contains a source (or top-layer clusters containing one)
// start active (the paper's initialization, Section 3.3).
func (r *runner) initPhase() {
	top := len(r.cv.Layers) - 1
	isSource := r.p.SourceOffset >= 0 && r.p.SourceOffset <= r.p.Threshold
	// Window start per layer, top-down.
	starts := make([]int64, len(r.cv.Layers))
	at := r.p.StartRound + 1
	for j := top; j >= 0; j-- {
		starts[j] = at
		at += r.cv.Layers[j].Period
	}
	// Event loop over this node's init duties.
	for {
		next := r.end
		for _, mm := range r.ms {
			for _, d := range r.dutyRounds(mm, starts[mm.m.Layer]) {
				if d > r.mb.Round() && d < next {
					next = d
				}
			}
		}
		if next >= r.bfsStart {
			break
		}
		r.mb.SleepUntil(next)
		now := r.mb.Round()
		for _, mm := range r.ms {
			r.serveWindow(mm, starts[mm.m.Layer], now, agg{AnySource: isSource, ChildActive: true, AllReached: true}, true)
		}
	}
	// Pre-activation: top-layer clusters containing sources; below, any
	// cluster whose parent contains a source.
	for _, mm := range r.ms {
		pre := false
		if mm.m.Layer == top {
			pre = mm.containsSource
		} else if pm, ok := r.byCluster[mm.m.ParentCluster]; ok {
			pre = pm.containsSource
		}
		if pre {
			mm.active = true
			mm.firstWindow = 0
		}
	}
	if isSource {
		r.dist = r.p.SourceOffset
	}
}

// dutyRounds lists this membership's wake rounds within the cycle window
// starting at w (four depth-indexed rounds; leaves and the root skip some).
func (r *runner) dutyRounds(mm *membership, w int64) []int64 {
	ld := r.cv.Layers[mm.m.Layer].MaxDepth
	d := mm.m.Depth
	rounds := make([]int64, 0, 4)
	if len(mm.m.Children) > 0 {
		rounds = append(rounds, w+ld-d-1)
	}
	rounds = append(rounds, w+ld-d)
	bStart := w + ld + 1
	if d > 0 {
		rounds = append(rounds, bStart+d-1, bStart+d)
	} else {
		rounds = append(rounds, bStart)
	}
	return rounds
}

// serveWindow performs whatever duty round `now` is within the window
// starting at w. own is this node's convergecast contribution; init
// selects the initialization semantics (aggregate AnySource, apply nothing
// but containsSource).
func (r *runner) serveWindow(mm *membership, w int64, now int64, own agg, init bool) {
	ld := r.cv.Layers[mm.m.Layer].MaxDepth
	d := mm.m.Depth
	upSend := w + ld - d
	bStart := w + ld + 1
	cl := mm.m.Cluster
	switch now {
	case upSend:
		a := own
		for _, msg := range r.mb.Take(r.tagUp(cl)) {
			a = combineAgg(a, msg.Body.(agg))
		}
		if d > 0 {
			r.mb.Send(mm.m.Parent, r.tagUp(cl), a)
		} else {
			mm.rootAgg = a
		}
	case bStart + d: // root: bStart; others: process+forward round
		var dm downMsg
		if d == 0 {
			dm = r.decide(mm, init)
		} else {
			msgs := r.mb.Take(r.tagDown(cl))
			if len(msgs) == 0 {
				panic(fmt.Sprintf("energybfs: node %d missed broadcast of cluster %d at round %d", r.mb.C.ID(), cl, now))
			}
			dm = msgs[0].Body.(downMsg)
		}
		for _, ch := range mm.m.Children {
			r.mb.Send(ch, r.tagDown(cl), dm)
		}
		r.apply(mm, dm, w, init)
	}
	// Listen rounds (upSend-1 and bStart+d-1) need no action: being awake
	// is the point.
}

func (r *runner) decide(mm *membership, init bool) downMsg {
	a := mm.rootAgg
	if init {
		return downMsg{Source: a.AnySource}
	}
	deact := false
	if mm.m.Layer == 0 {
		deact = a.AllReached
	} else {
		deact = a.AnyReached && a.ChildActive
	}
	return downMsg{Reached: a.AnyReached, Deactivate: deact}
}

func (r *runner) apply(mm *membership, dm downMsg, w int64, init bool) {
	if init {
		mm.containsSource = dm.Source
		return
	}
	if dm.Reached {
		// Activate the child clusters this node belongs to.
		layer := mm.m.Layer
		p := r.cv.Layers[layer].Period
		kEnd := w + p // parent window end
		for _, other := range r.ms {
			if other.m.Layer == layer-1 && other.m.ParentCluster == mm.m.Cluster && !other.active && !other.deactivated {
				pc := r.cv.Layers[layer-1].Period
				other.active = true
				other.firstWindow = (kEnd - r.bfsStart + pc - 1) / pc
			}
		}
	}
	if dm.Deactivate {
		mm.deactivated = true
	}
}

// bfsPhase runs the main loop: cluster cycles plus BFS steps.
func (r *runner) bfsPhase() {
	c := r.mb.C
	lastStepRound := r.bfsStart + (r.p.Threshold+1)*r.stepI
	for {
		now := r.mb.Round()
		// Process tokens (pumped by the last sleep).
		r.drainTokens()
		// Serve cluster windows scheduled for this round.
		for _, mm := range r.ms {
			if !mm.active || mm.deactivated {
				continue
			}
			p := r.cv.Layers[mm.m.Layer].Period
			if now < r.bfsStart {
				continue
			}
			k := (now - r.bfsStart) / p
			if k < mm.firstWindow {
				continue
			}
			w := r.bfsStart + k*p
			r.serveWindow(mm, w, now, agg{
				AnyReached:  r.dist != graph.Inf,
				ChildActive: r.childClustersActive(mm),
				AllReached:  r.dist != graph.Inf,
				AnySource:   false,
			}, false)
		}
		// Send relays due now (step rounds).
		if r.dist != graph.Inf && r.isStepRound(now) {
			step := (now - r.bfsStart) / r.stepI
			for i := 0; i < c.Degree(); i++ {
				if r.elig[i] && !r.sent[i] && r.dist+r.weights[i] == step && step <= r.p.Threshold {
					r.mb.Send(i, r.p.Tag, step)
					r.sent[i] = true
				}
			}
		}
		// Next wake.
		next := r.end
		for _, mm := range r.ms {
			if !mm.active || mm.deactivated {
				continue
			}
			p := r.cv.Layers[mm.m.Layer].Period
			base := r.bfsStart + maxI64(mm.firstWindow, (maxI64(now+1-r.bfsStart, 0))/p)*p
			for w := base; w <= base+p; w += p {
				for _, d := range r.dutyRounds(mm, w) {
					if d > now && d < next {
						next = d
					}
				}
			}
		}
		if r.listening() || r.dist != graph.Inf {
			if s := r.nextStepRound(now); s < next && s <= lastStepRound {
				next = s
			}
		}
		if next >= r.end {
			return
		}
		r.mb.SleepUntil(next)
	}
}

func (r *runner) drainTokens() {
	for _, msg := range r.mb.Take(r.p.Tag) {
		d := msg.Body.(int64)
		if d < r.dist {
			r.dist = d
			for i := range r.sent {
				r.sent[i] = false
			}
		}
	}
}

func (r *runner) childClustersActive(mm *membership) bool {
	layer := mm.m.Layer
	if layer == 0 {
		return true
	}
	for _, other := range r.ms {
		if other.m.Layer == layer-1 && other.m.ParentCluster == mm.m.Cluster && !other.active && !other.deactivated {
			return false
		}
	}
	return true
}

func (r *runner) listening() bool {
	for _, mm := range r.ms {
		if mm.m.Layer == 0 && mm.active && !mm.deactivated {
			return true
		}
	}
	return false
}

func (r *runner) isStepRound(now int64) bool {
	return now >= r.bfsStart && (now-r.bfsStart)%r.stepI == 0
}

func (r *runner) nextStepRound(now int64) int64 {
	if now < r.bfsStart {
		return r.bfsStart
	}
	return now + r.stepI - (now-r.bfsStart)%r.stepI
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RunBFS is the standalone whole-graph wrapper (Theorem 3.13/3.14 shape):
// it builds the layered cover for the hop metric and computes thresholded
// hop distances from the sources in the Sleeping model.
func RunBFS(g *graph.Graph, sources map[graph.NodeID]int64, threshold int64) ([]int64, simnet.Metrics, error) {
	cv, err := decomp.Build(g, nil, nil, threshold)
	if err != nil {
		return nil, simnet.Metrics{}, err
	}
	eng := simnet.New(g, simnet.Config{Model: simnet.Sleeping})
	res, err := eng.Run(func(c *simnet.Ctx) {
		mb := proto.NewMailbox(c)
		off := NotSource
		if o, ok := sources[c.ID()]; ok {
			off = o
		}
		d := Run(mb, Params{
			Tag: 1, StartRound: 0, Cover: cv, Threshold: threshold, SourceOffset: off,
		})
		c.SetOutput(d)
	})
	if err != nil {
		return nil, simnet.Metrics{}, err
	}
	out := make([]int64, g.N())
	for i, v := range res.Outputs {
		out[i] = v.(int64)
	}
	return out, res.Metrics, nil
}
