package incr_test

import (
	"math/rand"
	"reflect"
	"testing"

	"dsssp/internal/graph"
	"dsssp/internal/incr"
)

// traceFor builds the exact Trace (Dijkstra distances + min-ID witness
// tree) the registry would remember for a source.
func traceFor(g *graph.Graph, s graph.NodeID) incr.Trace {
	dist := graph.Dijkstra(g, s)
	return incr.Trace{Dist: dist, Parent: graph.WitnessParents(g, s, dist)}
}

// ledgerRecord mirrors the registry's base-weight ledger discipline: each
// PATCH adds the pairs it touches at their *pre-patch* weight, first
// touch wins — so the ledger always holds the weight on the graph the
// trace was exact for, composably across stacked patches.
func ledgerRecord(ledger map[uint64]int64, pre *graph.Graph, deltas []graph.EdgeDelta) {
	for _, d := range deltas {
		k := incr.PairKey(d.U, d.V)
		if _, ok := ledger[k]; !ok {
			ledger[k] = incr.BaseWeight(pre, d.U, d.V)
		}
	}
}

// checkRepair runs Repair and demands byte-identical distances and
// witness trees vs a from-scratch oracle on the patched graph.
func checkRepair(t *testing.T, label string, g *graph.Graph, s graph.NodeID, tr incr.Trace, ledger map[uint64]int64) *incr.RepairResult {
	t.Helper()
	rr, ok := incr.Repair(g, s, tr, incr.NetChanges(ledger, g), 0)
	if !ok {
		t.Fatalf("%s: repair bailed with unbounded budget", label)
	}
	wantDist := graph.Dijkstra(g, s)
	if !reflect.DeepEqual(rr.Dist, wantDist) {
		t.Fatalf("%s: repaired distances diverge from Dijkstra\nchanges=%v\ntrace=%v\ngot =%v\nwant=%v",
			label, incr.NetChanges(ledger, g), tr.Dist, rr.Dist, wantDist)
	}
	wantParent := graph.WitnessParents(g, s, wantDist)
	if !reflect.DeepEqual(rr.Parent, wantParent) {
		t.Fatalf("%s: repaired witness tree diverges\nchanges=%v\ngot =%v\nwant=%v",
			label, incr.NetChanges(ledger, g), rr.Parent, wantParent)
	}
	return rr
}

// TestRepairDifferential is the acceptance anchor for the repair engine:
// across the four classification-test graph families × randomized mixed
// insert/delete/reweight delta sequences, a repaired trace must be
// byte-identical — distances AND min-ID witness tree — to a from-scratch
// rerun. Two cadences are exercised: "eager" repairs after every batch
// (single-batch ledgers), "stacked" lets several batches accumulate in
// one ledger before repairing (the registry's behavior when a dirty
// source is patched repeatedly between queries). Low-spread weights force
// plenty of equality-witness ties, so tree flips are genuinely covered.
func TestRepairDifferential(t *testing.T) {
	families := []graph.Family{graph.FamilyRandom, graph.FamilyGrid, graph.FamilyCluster, graph.FamilyExpander}
	rng := rand.New(rand.NewSource(7))
	totalAffected, totalRepairs := 0, 0

	for _, fam := range families {
		for trial := 0; trial < 5; trial++ {
			n := 16 + rng.Intn(24)
			g := graph.Make(fam, n, graph.UniformWeights(5, rng.Int63()), rng.Int63())
			stacked := trial%2 == 1

			sources := []graph.NodeID{0, graph.NodeID(rng.Intn(g.N()))}
			traces := make(map[graph.NodeID]incr.Trace, len(sources))
			ledgers := make(map[graph.NodeID]map[uint64]int64, len(sources))
			for _, s := range sources {
				traces[s] = traceFor(g, s)
				ledgers[s] = map[uint64]int64{}
			}

			for round := 0; round < 4; round++ {
				deltas := randomBatch(rng, g, 1+rng.Intn(4))
				if len(deltas) == 0 {
					continue
				}
				ng, err := graph.ApplyDeltas(g, deltas)
				if err != nil {
					t.Fatalf("%s trial %d: %v", fam, trial, err)
				}
				for _, s := range sources {
					ledgerRecord(ledgers[s], g, deltas)
				}
				g = ng
				if stacked && round < 3 {
					continue // let the ledger accumulate across batches
				}
				for _, s := range sources {
					rr := checkRepair(t, string(fam), g, s, traces[s], ledgers[s])
					totalAffected += rr.Affected
					totalRepairs++
					// Promote, exactly like the registry after a repair.
					traces[s] = incr.Trace{Dist: rr.Dist, Parent: rr.Parent}
					ledgers[s] = map[uint64]int64{}
				}
			}
		}
	}
	if totalAffected == 0 {
		t.Fatalf("vacuous run: %d repairs never touched a vertex", totalRepairs)
	}
	t.Logf("%d repairs, %d vertices rebuilt", totalRepairs, totalAffected)
}

// TestRepairDisconnection pins the Inf↔finite transitions: deleting a cut
// edge sends a whole region to +Inf (orphans with no boundary offer), and
// re-inserting it brings the region back — byte-identical both ways.
func TestRepairDisconnection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		n := 12 + rng.Intn(16)
		// A path graph makes every edge a cut edge.
		g := graph.Make(graph.FamilyPath, n, graph.UniformWeights(4, rng.Int63()), rng.Int63())
		s := graph.NodeID(rng.Intn(n))
		tr := traceFor(g, s)

		e := g.Edges()[rng.Intn(g.M())]
		cut := []graph.EdgeDelta{{Op: graph.DeltaDelete, U: e.U, V: e.V}}
		ledger := map[uint64]int64{}
		ledgerRecord(ledger, g, cut)
		ng, err := graph.ApplyDeltas(g, cut)
		if err != nil {
			t.Fatal(err)
		}
		rr := checkRepair(t, "cut", ng, s, tr, ledger)
		if countInf(rr.Dist) == 0 && int(s) != 0 && int(s) != n-1 {
			// Cutting an interior path edge must strand one side unless the
			// source sits at an end and the cut is behind it — in which case
			// the other side is stranded instead; either way some node is
			// unreachable on a path after any cut.
			t.Fatalf("cut {%d,%d} from source %d stranded nobody: %v", e.U, e.V, s, rr.Dist)
		}

		// Reconnect at a different weight and repair the repaired trace.
		tr2 := incr.Trace{Dist: rr.Dist, Parent: rr.Parent}
		heal := []graph.EdgeDelta{{Op: graph.DeltaInsert, U: e.U, V: e.V, W: e.W + int64(rng.Intn(3))}}
		ledger2 := map[uint64]int64{}
		ledgerRecord(ledger2, ng, heal)
		hg, err := graph.ApplyDeltas(ng, heal)
		if err != nil {
			t.Fatal(err)
		}
		rr2 := checkRepair(t, "heal", hg, s, tr2, ledger2)
		if countInf(rr2.Dist) != 0 {
			t.Fatalf("healed path still has unreachable nodes: %v", rr2.Dist)
		}
	}
}

func countInf(dist []int64) int {
	c := 0
	for _, d := range dist {
		if d == graph.Inf {
			c++
		}
	}
	return c
}

// TestRepairTargeted pins the hand-picked corner cases the fuzz could
// only hit by luck.
func TestRepairTargeted(t *testing.T) {
	// Square 0-1-2-3 with a heavy chord {0,2}: the serve-smoke graph.
	square := func() *graph.Graph {
		g := graph.New(4)
		g.AddEdge(0, 1, 1)
		g.AddEdge(1, 2, 1)
		g.AddEdge(2, 3, 1)
		g.AddEdge(0, 3, 1)
		g.AddEdge(0, 2, 10)
		g.SortAdj()
		return g
	}

	t.Run("equality-witness-flip", func(t *testing.T) {
		// dist(0→2)=2 via 1 (min-ID witness) — tightening the chord to 2
		// leaves every distance intact but mints witness 0 < 1 for node 2.
		g := square()
		tr := traceFor(g, 0)
		deltas := []graph.EdgeDelta{{Op: graph.DeltaReweight, U: 0, V: 2, W: 2}}
		ledger := map[uint64]int64{}
		ledgerRecord(ledger, g, deltas)
		ng, err := graph.ApplyDeltas(g, deltas)
		if err != nil {
			t.Fatal(err)
		}
		rr := checkRepair(t, "flip", ng, 0, tr, ledger)
		if !reflect.DeepEqual(rr.Dist, tr.Dist) {
			t.Fatalf("distances should be untouched by the equality tie: %v vs %v", rr.Dist, tr.Dist)
		}
		if rr.Parent[2] != 0 || tr.Parent[2] != 1 {
			t.Fatalf("witness flip not captured: old parent[2]=%d, new parent[2]=%d", tr.Parent[2], rr.Parent[2])
		}
	})

	t.Run("repeated-patches-net-zero", func(t *testing.T) {
		// Bump the same edge +1 twice, then restore it: the stacked ledger
		// must cancel to an empty change set and serve the trace verbatim.
		g := square()
		tr := traceFor(g, 0)
		ledger := map[uint64]int64{}
		cur := g
		for _, w := range []int64{2, 3, 1} {
			d := []graph.EdgeDelta{{Op: graph.DeltaReweight, U: 1, V: 2, W: w}}
			ledgerRecord(ledger, cur, d)
			next, err := graph.ApplyDeltas(cur, d)
			if err != nil {
				t.Fatal(err)
			}
			cur = next
		}
		if ch := incr.NetChanges(ledger, cur); len(ch) != 0 {
			t.Fatalf("net-zero patch stack left changes: %v", ch)
		}
		rr := checkRepair(t, "net-zero", cur, 0, tr, ledger)
		if rr.Affected != 0 {
			t.Fatalf("net-zero repair touched %d vertices", rr.Affected)
		}
	})

	t.Run("repeated-patches-same-edge", func(t *testing.T) {
		// Same edge patched thrice to a genuinely new weight: the ledger
		// must diff the FIRST old weight against the LAST new one.
		g := square()
		tr := traceFor(g, 3)
		ledger := map[uint64]int64{}
		cur := g
		for _, w := range []int64{5, 2, 7} {
			d := []graph.EdgeDelta{{Op: graph.DeltaReweight, U: 0, V: 3, W: w}}
			ledgerRecord(ledger, cur, d)
			next, err := graph.ApplyDeltas(cur, d)
			if err != nil {
				t.Fatal(err)
			}
			cur = next
		}
		ch := incr.NetChanges(ledger, cur)
		if len(ch) != 1 || ch[0].OldW != 1 || ch[0].NewW != 7 {
			t.Fatalf("stacked same-edge ledger resolved to %v, want one {0,3} 1→7", ch)
		}
		checkRepair(t, "same-edge", cur, 3, tr, ledger)
	})

	t.Run("zero-weight-ties", func(t *testing.T) {
		// Zero-weight edges create dist-0 non-sources; repair must keep the
		// min-ID discipline through them.
		rng := rand.New(rand.NewSource(23))
		for trial := 0; trial < 6; trial++ {
			n := 12 + rng.Intn(12)
			g := graph.Make(graph.FamilyRandom, n, graph.ZeroHeavyWeights(4, rng.Int63()), rng.Int63())
			s := graph.NodeID(rng.Intn(g.N()))
			tr := traceFor(g, s)
			deltas := randomBatch(rng, g, 1+rng.Intn(3))
			if len(deltas) == 0 {
				continue
			}
			ledger := map[uint64]int64{}
			ledgerRecord(ledger, g, deltas)
			ng, err := graph.ApplyDeltas(g, deltas)
			if err != nil {
				t.Fatal(err)
			}
			checkRepair(t, "zero-heavy", ng, s, tr, ledger)
		}
	})
}

// TestRepairBudget pins the fallback contract: a tiny affected budget
// makes Repair decline (ok=false, nil result) rather than answer, and a
// budget of n never declines.
func TestRepairBudget(t *testing.T) {
	g := graph.Make(graph.FamilyPath, 32, graph.UnitWeights, 1)
	tr := traceFor(g, 0)
	// Deleting the first edge orphans the other 31 vertices.
	deltas := []graph.EdgeDelta{{Op: graph.DeltaDelete, U: 0, V: 1}}
	ledger := map[uint64]int64{}
	ledgerRecord(ledger, g, deltas)
	ng, err := graph.ApplyDeltas(g, deltas)
	if err != nil {
		t.Fatal(err)
	}
	changes := incr.NetChanges(ledger, ng)
	if rr, ok := incr.Repair(ng, 0, tr, changes, 5); ok || rr != nil {
		t.Fatalf("repair of 31 orphans under budget 5 should decline, got %+v", rr)
	}
	rr, ok := incr.Repair(ng, 0, tr, changes, 32)
	if !ok {
		t.Fatal("repair under a budget of n declined")
	}
	if rr.Orphaned != 31 || rr.Affected != 31 {
		t.Fatalf("expected 31 orphaned/affected, got %d/%d", rr.Orphaned, rr.Affected)
	}
}

// TestRepairFreshSlices pins that Repair never aliases the trace: the
// result slices are caller-owned even for the zero-change fast path.
func TestRepairFreshSlices(t *testing.T) {
	g := graph.Make(graph.FamilyRandom, 16, graph.UnitWeights, 3)
	tr := traceFor(g, 0)
	rr, ok := incr.Repair(g, 0, tr, nil, 0)
	if !ok {
		t.Fatal("zero-change repair declined")
	}
	if !reflect.DeepEqual(rr.Dist, tr.Dist) || !reflect.DeepEqual(rr.Parent, tr.Parent) {
		t.Fatal("zero-change repair must reproduce the trace verbatim")
	}
	rr.Dist[1]++
	rr.Parent[1] = -2
	if rr.Dist[1] == tr.Dist[1] || rr.Parent[1] == tr.Parent[1] {
		t.Fatal("repair result aliases the trace slices")
	}
}

// TestRepairMalformedTrace pins the defensive contract: wrong-length
// traces decline instead of panicking or answering.
func TestRepairMalformedTrace(t *testing.T) {
	g := graph.Make(graph.FamilyRandom, 16, graph.UnitWeights, 3)
	tr := traceFor(g, 0)
	if _, ok := incr.Repair(g, 0, incr.Trace{Dist: tr.Dist[:10], Parent: tr.Parent}, nil, 0); ok {
		t.Fatal("short distance vector accepted")
	}
	if _, ok := incr.Repair(g, 0, incr.Trace{Dist: tr.Dist, Parent: tr.Parent[:10]}, nil, 0); ok {
		t.Fatal("short parent vector accepted")
	}
	if _, ok := incr.Repair(g, -1, tr, nil, 0); ok {
		t.Fatal("out-of-range source accepted")
	}
}

// BenchmarkRepairSmallDelta is the CI-tracked microbenchmark: one ±1
// reweight of a witness-tree edge on an n=10⁴ random graph — the exact
// shape of the serving layer's dynamic-load patches — repaired from a
// remembered trace. Compare against the ~minutes-scale full simulation
// the dirty-source path used to pay (EXPERIMENTS.md).
func BenchmarkRepairSmallDelta(b *testing.B) {
	const n = 10_000
	g := graph.Make(graph.FamilyRandom, n, graph.UniformWeights(int64(n), 1), 1)
	tr := traceFor(g, 0)
	// A tree edge is tight by construction, so raising it genuinely
	// orphans a subtree (the interesting direction).
	var ch incr.NetChange
	for v := 1; v < n; v++ {
		if p := tr.Parent[v]; p >= 0 {
			w := incr.BaseWeight(g, p, graph.NodeID(v))
			ch = incr.NetChange{U: p, V: graph.NodeID(v), OldW: w, NewW: w + 1}
			break
		}
	}
	changes := []incr.NetChange{ch}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := incr.Repair(g, 0, tr, changes, 0); !ok {
			b.Fatal("repair declined")
		}
	}
}
