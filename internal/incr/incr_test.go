package incr_test

import (
	"math/rand"
	"reflect"
	"testing"

	"dsssp/internal/graph"
	"dsssp/internal/incr"
)

// --- unit tests of the classification rules ---

func distFor(g *graph.Graph, s graph.NodeID) []int64 { return graph.Dijkstra(g, s) }

func TestEffectDirtyDecrease(t *testing.T) {
	// Path 0-1-2 with unit weights, node 3 isolated.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.SortAdj()
	dist := distFor(g, 0) // [0,1,2,Inf]

	for _, tc := range []struct {
		name  string
		e     incr.Effect
		dirty bool
	}{
		// dist[0]+1 = 1 < 2 = dist[2]: shortens.
		{"strictly-shorter", incr.Effect{U: 0, V: 2, Kind: incr.EffectDecrease, W: 1}, true},
		// dist[0]+2 = 2 = dist[2]: no distance change, but a new witness —
		// the deterministic tree may switch parents, so it must count.
		{"equal-mints-witness", incr.Effect{U: 0, V: 2, Kind: incr.EffectDecrease, W: 2}, true},
		// dist[0]+3 = 3 > 2: slack, invisible.
		{"slack", incr.Effect{U: 0, V: 2, Kind: incr.EffectDecrease, W: 3}, false},
		// Finite → unreachable endpoint: connects new territory, dirty.
		{"reaches-unreachable", incr.Effect{U: 2, V: 3, Kind: incr.EffectDecrease, W: 5}, true},
	} {
		if got := incr.EffectDirty(tc.e, dist); got != tc.dirty {
			t.Errorf("%s: EffectDirty = %v, want %v", tc.name, got, tc.dirty)
		}
	}

	// Both endpoints unreachable: outside the source's world entirely.
	g2 := graph.New(4)
	g2.AddEdge(0, 1, 1)
	g2.AddEdge(2, 3, 1)
	g2.SortAdj()
	d2 := distFor(g2, 0)
	if incr.EffectDirty(incr.Effect{U: 2, V: 3, Kind: incr.EffectDecrease, W: 0}, d2) {
		t.Error("decrease between two unreachable nodes classified dirty")
	}
}

func TestEffectDirtyIncrease(t *testing.T) {
	// Square with a chord: 0-1-2-3-0 unit weights plus {0,2} at weight 10.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 1)
	g.AddEdge(0, 2, 10)
	g.SortAdj()
	dist := distFor(g, 0) // [0,1,2,1]

	// {0,1} is tight (dist[0]+1 == dist[1]): raising it is dirty.
	if !incr.EffectDirty(incr.Effect{U: 0, V: 1, Kind: incr.EffectIncrease, W: 1}, dist) {
		t.Error("tight-edge increase classified untouched")
	}
	// {0,2} at weight 10 is slack (dist[0]+10 != dist[2]): raising or
	// deleting it is invisible from source 0.
	if incr.EffectDirty(incr.Effect{U: 0, V: 2, Kind: incr.EffectIncrease, W: 10}, dist) {
		t.Error("slack-edge increase classified dirty")
	}

	// Unreachable endpoint: cannot be tight.
	g2 := graph.New(3)
	g2.AddEdge(1, 2, 1)
	g2.SortAdj()
	d2 := distFor(g2, 0) // [0,Inf,Inf]
	if incr.EffectDirty(incr.Effect{U: 1, V: 2, Kind: incr.EffectIncrease, W: 1}, d2) {
		t.Error("increase in an unreachable component classified dirty")
	}
}

func TestEffectsResolution(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	g.SortAdj()

	// No-ops drop out: keep-min-losing insert, same-weight reweight.
	effs, err := incr.Effects(g, []graph.EdgeDelta{
		{Op: graph.DeltaInsert, U: 0, V: 1, W: 9},
		{Op: graph.DeltaReweight, U: 1, V: 2, W: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(effs) != 0 {
		t.Fatalf("no-op batch produced effects %v", effs)
	}

	// A second delta on the same pair resolves against the first's result:
	// delete {0,1} then insert it back cheaper = increase at the old weight
	// followed by a decrease to the new one.
	effs, err = incr.Effects(g, []graph.EdgeDelta{
		{Op: graph.DeltaDelete, U: 0, V: 1},
		{Op: graph.DeltaInsert, U: 0, V: 1, W: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []incr.Effect{
		{U: 0, V: 1, Kind: incr.EffectIncrease, W: 5},
		{U: 0, V: 1, Kind: incr.EffectDecrease, W: 2},
	}
	if !reflect.DeepEqual(effs, want) {
		t.Fatalf("effects = %v, want %v", effs, want)
	}

	// Inserting over a tombstone at a high weight is a real decrease (the
	// pair no longer exists), not a keep-min no-op against the old weight.
	effs, err = incr.Effects(g, []graph.EdgeDelta{
		{Op: graph.DeltaDelete, U: 0, V: 1},
		{Op: graph.DeltaInsert, U: 0, V: 1, W: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(effs) != 2 || effs[1].Kind != incr.EffectDecrease || effs[1].W != 100 {
		t.Fatalf("insert-over-tombstone effects = %v", effs)
	}

	if _, err := incr.Effects(g, []graph.EdgeDelta{{Op: graph.DeltaDelete, U: 0, V: 2}}); err == nil {
		t.Fatal("delete of a missing edge resolved without error")
	}
}

// --- differential property test ---

// witnessParents derives the deterministic min-ID witness parent of every
// node from an exact distance vector: the smallest neighbor u with
// dist[u] + w(u,v) == dist[v]. This is the tree the serving layer's
// deterministic engines expose, so "untouched" must preserve it exactly,
// not just the distances.
func witnessParents(g *graph.Graph, dist []int64) []graph.NodeID {
	parents := make([]graph.NodeID, g.N())
	for v := 0; v < g.N(); v++ {
		parents[v] = -1
		if dist[v] == 0 || dist[v] == graph.Inf {
			continue
		}
		for _, h := range g.Adj(graph.NodeID(v)) {
			if dist[h.To] != graph.Inf && dist[h.To]+h.W == dist[v] {
				if parents[v] == -1 || h.To < parents[v] {
					parents[v] = h.To
				}
			}
		}
	}
	return parents
}

// TestDirtySourcesDifferential is the soundness test for the whole
// incremental path: over several graph families and randomized delta
// sequences, every source classified *untouched* must have byte-identical
// distances AND an identical min-ID witness tree on the patched graph —
// verified against a from-scratch Dijkstra. (Dirty sources carry no claim;
// the serving layer recomputes them.) It also checks the classification is
// not vacuous: across the run, both outcomes must actually occur.
func TestDirtySourcesDifferential(t *testing.T) {
	families := []graph.Family{graph.FamilyRandom, graph.FamilyGrid, graph.FamilyCluster, graph.FamilyExpander}
	rng := rand.New(rand.NewSource(42))
	totalDirty, totalUntouched := 0, 0

	for _, fam := range families {
		for trial := 0; trial < 6; trial++ {
			n := 16 + rng.Intn(24)
			g := graph.Make(fam, n, graph.UniformWeights(8, rng.Int63()), rng.Int63())

			// Trace every source on the pre-patch graph.
			traces := make(map[graph.NodeID][]int64, n)
			for s := 0; s < n; s++ {
				traces[graph.NodeID(s)] = graph.Dijkstra(g, graph.NodeID(s))
			}

			// A sequence of random batches, reclassifying after each.
			for round := 0; round < 3; round++ {
				deltas := randomBatch(rng, g, 1+rng.Intn(4))
				if len(deltas) == 0 {
					continue
				}
				ng, err := graph.ApplyDeltas(g, deltas)
				if err != nil {
					t.Fatalf("%s trial %d: %v", fam, trial, err)
				}
				effects, err := incr.Effects(g, deltas)
				if err != nil {
					t.Fatalf("%s trial %d: %v", fam, trial, err)
				}
				dirty, untouched := incr.DirtySources(effects, traces)
				totalDirty += len(dirty)
				totalUntouched += len(untouched)

				for _, s := range untouched {
					want := graph.Dijkstra(ng, s)
					if !reflect.DeepEqual(traces[s], want) {
						t.Fatalf("%s trial %d round %d: source %d classified untouched but distances changed\ndeltas=%v\nold=%v\nnew=%v",
							fam, trial, round, s, deltas, traces[s], want)
					}
					oldTree := witnessParents(g, traces[s])
					newTree := witnessParents(ng, want)
					if !reflect.DeepEqual(oldTree, newTree) {
						t.Fatalf("%s trial %d round %d: source %d untouched but witness tree changed\ndeltas=%v\nold=%v\nnew=%v",
							fam, trial, round, s, deltas, oldTree, newTree)
					}
				}
				// Advance: dirty sources get fresh traces (as the serving
				// layer would on their next query), untouched keep theirs.
				for _, s := range dirty {
					traces[s] = graph.Dijkstra(ng, s)
				}
				g = ng
			}
		}
	}
	if totalDirty == 0 || totalUntouched == 0 {
		t.Fatalf("classification is vacuous: dirty=%d untouched=%d", totalDirty, totalUntouched)
	}
	t.Logf("classified %d dirty, %d untouched across all trials", totalDirty, totalUntouched)
}

// randomBatch builds a random valid delta batch against g, never touching
// a pair it has already deleted in the same batch.
func randomBatch(rng *rand.Rand, g *graph.Graph, size int) []graph.EdgeDelta {
	var deltas []graph.EdgeDelta
	deleted := map[[2]graph.NodeID]bool{}
	key := func(u, v graph.NodeID) [2]graph.NodeID {
		if u > v {
			u, v = v, u
		}
		return [2]graph.NodeID{u, v}
	}
	es := g.Edges()
	n := g.N()
	for i := 0; i < size; i++ {
		switch rng.Intn(4) {
		case 0: // insert (random pair, may or may not exist)
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u == v || deleted[key(u, v)] {
				continue
			}
			deltas = append(deltas, graph.EdgeDelta{Op: graph.DeltaInsert, U: u, V: v, W: int64(rng.Intn(10))})
		case 1, 2: // reweight an existing edge (up or down)
			if len(es) == 0 {
				continue
			}
			e := es[rng.Intn(len(es))]
			if deleted[key(e.U, e.V)] {
				continue
			}
			deltas = append(deltas, graph.EdgeDelta{Op: graph.DeltaReweight, U: e.U, V: e.V, W: int64(rng.Intn(10))})
		case 3: // delete an existing edge
			if len(es) == 0 {
				continue
			}
			e := es[rng.Intn(len(es))]
			if deleted[key(e.U, e.V)] {
				continue
			}
			deleted[key(e.U, e.V)] = true
			deltas = append(deltas, graph.EdgeDelta{Op: graph.DeltaDelete, U: e.U, V: e.V})
		}
	}
	return deltas
}
