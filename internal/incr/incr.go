// Package incr implements delta-aware incremental recomputation for the
// serving layer's registered graphs: given a batch of edge deltas and the
// cached per-source result traces of the pre-patch revision, it classifies
// each cached source as *untouched* — the deltas provably cannot change any
// distance or any shortest-path witness from that source, so the cached
// result is byte-identical to a from-scratch recompute on the patched
// graph — or *dirty*, in which case the source must be recomputed.
//
// The classification is the per-source structure-survival argument from
// Agarwal–Ramachandran–King–Pontecorvi's deterministic APSP: an edge update
// can only affect the sources whose shortest-path structure the edge
// participates in, and for everything else the per-source tree (and hence
// the distance vector) survives verbatim. Concretely, with dist the exact
// distance vector from a source:
//
//   - a weight *decrease* of {u,v} to w (including an insert, a decrease
//     from +Inf) is relevant iff dist[u]+w <= dist[v] or dist[v]+w <=
//     dist[u]: strict < can shorten a path; equality cannot change
//     distances but mints a new witness, which can change the
//     deterministic (min-ID witness) shortest-path tree — so both count
//     as dirty, keeping trees exact, not just distances;
//   - a weight *increase* of {u,v} from w (including a delete, an increase
//     to +Inf) is relevant iff the edge is tight at its old weight:
//     dist[u]+w == dist[v] or dist[v]+w == dist[u]. A slack edge lies on
//     no shortest path and witnesses nothing, so raising its weight is
//     invisible from this source. (Tightness cannot appear at the *new*
//     weight: dist already satisfies dist[v] <= dist[u]+w_old < dist[u]+w_new.)
//
// Within a batch the effects are tested in order against the same dist
// vector: if every prefix of effects is untouched, dist is still the exact
// distance vector of each intermediate graph, so the next test remains
// sound; the first dirty effect ends the argument (the source is dirty
// regardless of what follows).
package incr

import (
	"fmt"
	"sort"

	"dsssp/internal/graph"
)

// EffectKind classifies a delta's resolved direction.
type EffectKind uint8

// Effect kinds.
const (
	// EffectDecrease is an insert or a downward reweight; W is the new
	// effective weight.
	EffectDecrease EffectKind = iota + 1
	// EffectIncrease is a delete or an upward reweight; W is the old
	// weight (the one tightness is tested at).
	EffectIncrease
)

// Effect is one delta resolved against the pre-patch graph into the form
// the per-source test consumes. Resolution happens once per batch; the
// O(1)-per-effect test then runs once per cached source.
type Effect struct {
	U, V graph.NodeID
	Kind EffectKind
	// W is the new weight for a decrease, the old weight for an increase.
	W int64
}

// Effects resolves a delta batch against the pre-patch graph g into the
// per-source test form, dropping no-ops (inserting an edge that already
// exists at a lower-or-equal weight, reweighting to the current weight).
// The deltas must be valid for g — callers apply graph.ApplyDeltas first
// (or in the same breath) and surface its errors; Effects repeats only the
// existence checks it needs to resolve old weights.
func Effects(g *graph.Graph, deltas []graph.EdgeDelta) ([]Effect, error) {
	// Working weights of the evolving edge set, so a batch that touches the
	// same pair twice resolves the second delta against the first's result.
	weights := make(map[uint64]int64, len(deltas))
	lookup := func(u, v graph.NodeID) (int64, bool) {
		if w, ok := weights[pairKey(u, v)]; ok {
			return w, w >= 0
		}
		for _, h := range g.Adj(u) {
			if h.To == v {
				return h.W, true
			}
		}
		return 0, false
	}
	set := func(u, v graph.NodeID, w int64) { weights[pairKey(u, v)] = w }

	var out []Effect
	for i, d := range deltas {
		if d.U == d.V || d.U < 0 || int(d.U) >= g.N() || d.V < 0 || int(d.V) >= g.N() {
			return nil, fmt.Errorf("incr: delta %d (%s): invalid endpoints", i, d)
		}
		old, exists := lookup(d.U, d.V)
		switch d.Op {
		case graph.DeltaInsert:
			if d.W < 0 {
				return nil, fmt.Errorf("incr: delta %d (%s): negative weight", i, d)
			}
			if exists && d.W >= old {
				continue // keep-min: no-op
			}
			out = append(out, Effect{U: d.U, V: d.V, Kind: EffectDecrease, W: d.W})
			set(d.U, d.V, d.W)
		case graph.DeltaDelete:
			if !exists {
				return nil, fmt.Errorf("incr: delta %d (%s): edge does not exist", i, d)
			}
			out = append(out, Effect{U: d.U, V: d.V, Kind: EffectIncrease, W: old})
			set(d.U, d.V, -1) // tombstone
		case graph.DeltaReweight:
			if d.W < 0 {
				return nil, fmt.Errorf("incr: delta %d (%s): negative weight", i, d)
			}
			if !exists {
				return nil, fmt.Errorf("incr: delta %d (%s): edge does not exist", i, d)
			}
			switch {
			case d.W == old:
				continue
			case d.W < old:
				out = append(out, Effect{U: d.U, V: d.V, Kind: EffectDecrease, W: d.W})
			default:
				out = append(out, Effect{U: d.U, V: d.V, Kind: EffectIncrease, W: old})
			}
			set(d.U, d.V, d.W)
		default:
			return nil, fmt.Errorf("incr: delta %d: unknown op %d", i, uint8(d.Op))
		}
	}
	return out, nil
}

// pairKey mirrors graph's canonical pair encoding (min<<32 | max).
func pairKey(u, v graph.NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// SourceDirty reports whether the effect batch can change any distance or
// any shortest-path witness seen from the source whose exact distance
// vector is dist — the "tree-overlap test". False means the cached result
// (distances *and* the min-ID-witness tree) is byte-identical on the
// patched graph and may be served straight from cache.
func SourceDirty(effects []Effect, dist []int64) bool {
	for _, e := range effects {
		if EffectDirty(e, dist) {
			return true
		}
	}
	return false
}

// EffectDirty is SourceDirty for a single effect.
func EffectDirty(e Effect, dist []int64) bool {
	du, dv := dist[e.U], dist[e.V]
	switch e.Kind {
	case EffectDecrease:
		// Both endpoints unreachable: the new edge lives entirely outside
		// the source's reachable region and cannot shorten anything (and
		// the Inf+w sums below would be meaningless).
		if du == graph.Inf && dv == graph.Inf {
			return false
		}
		// One finite endpoint always dirties against an Inf endpoint
		// (du+e.W <= Inf), which the comparisons below get right as long
		// as the finite sums cannot overflow past Inf; weights are
		// validated non-negative and graph.Inf is 1<<62, so finite
		// distances (< Inf) plus a legal weight stay well below overflow
		// for every graph this repository can build.
		return minSum(du, e.W) <= dv || minSum(dv, e.W) <= du
	case EffectIncrease:
		if du == graph.Inf || dv == graph.Inf {
			// An edge with an unreachable endpoint cannot be tight; and if
			// exactly one endpoint were unreachable the cached dist would
			// contradict the edge's existence — conservatively untouched
			// either way, since nothing reachable runs through it.
			return false
		}
		return du+e.W == dv || dv+e.W == du
	default:
		panic(fmt.Sprintf("incr: unknown effect kind %d", uint8(e.Kind)))
	}
}

// minSum is du+w saturating at graph.Inf so an unreachable endpoint never
// wraps past the sentinel.
func minSum(d, w int64) int64 {
	if d >= graph.Inf {
		return graph.Inf
	}
	return d + w
}

// DirtySources splits the traced sources into dirty and untouched under
// the effect batch. traces maps source → its exact distance vector on the
// pre-patch graph; both returned slices are sorted for deterministic
// iteration downstream (cache migration, metrics, logs).
func DirtySources(effects []Effect, traces map[graph.NodeID][]int64) (dirty, untouched []graph.NodeID) {
	for s, dist := range traces {
		if SourceDirty(effects, dist) {
			dirty = append(dirty, s)
		} else {
			untouched = append(untouched, s)
		}
	}
	sort.Slice(dirty, func(a, b int) bool { return dirty[a] < dirty[b] })
	sort.Slice(untouched, func(a, b int) bool { return untouched[a] < untouched[b] })
	return dirty, untouched
}
