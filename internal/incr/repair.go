package incr

import (
	"container/heap"
	"time"

	"dsssp/internal/graph"
)

// This file is the affected-region repair engine: given a source's
// remembered exact distance vector and min-ID witness parent tree (a
// Trace) plus the net per-edge weight transitions since the trace was
// exact (NetChanges), it recomputes exactly the region the transitions
// can reach — decreases seed a priority-queue relaxation from their
// improved endpoints; increases first carve out the subtree of vertices
// whose witness path ran through a tightened-away edge, then re-relax the
// cut from its boundary — and re-derives witness parents only where the
// witness predicate could have flipped. The arithmetic is the same
// Inf-saturating arithmetic and the tie-break the same min-ID rule as the
// full algorithm, so the repaired distance vector and parent tree are
// byte-identical to a from-scratch rerun (the differential fuzz suite is
// the acceptance anchor). This is the batch form of the
// Ramalingam–Reps-style dynamic SSSP update, applied to the per-source
// structure Agarwal–Ramachandran–King–Pontecorvi's deterministic APSP
// identifies as soundly reusable.

// Trace is one source's remembered per-source structure: the exact
// distance vector and the deterministic min-ID witness parent tree on the
// graph the trace was computed for. Both slices are treated as immutable
// by Repair (it copies before writing).
type Trace struct {
	Dist   []int64
	Parent []graph.NodeID
}

// NetChange is the net weight transition of one edge pair between the
// trace's graph and the graph being repaired toward. OldW / NewW of -1
// mean the pair was absent on that side; equal weights (a transition that
// cancelled out across stacked patches) should be filtered by the caller
// but are tolerated as no-ops.
type NetChange struct {
	U, V       graph.NodeID
	OldW, NewW int64
}

// RepairResult is a successful repair: fresh (caller-owned) exact
// distance and parent slices for the patched graph, plus the size of the
// affected region for observability.
type RepairResult struct {
	Dist   []int64
	Parent []graph.NodeID
	// Affected counts vertices whose label was rebuilt: orphaned by a
	// tightened-away witness edge, or relabeled by the re-relaxation.
	// The repair's work is proportional to this region (plus the degree
	// sum over it), not to n.
	Affected int
	// Orphaned counts the subset carved out of the old witness tree.
	Orphaned int
	// PhaseNS is the wall time spent in each repair phase, indexed by
	// RepairPhaseNames — the per-query breakdown the serving layer turns
	// into repair-phase spans and the dsssp_repair_phase_seconds
	// histogram. All zero for the empty-changes fast path, which runs no
	// phase at all.
	PhaseNS [4]int64
}

// RepairPhaseNames names the indices of RepairResult.PhaseNS: the four
// phases of the repair pipeline, in execution order.
var RepairPhaseNames = [4]string{"carve", "seed", "settle", "witness"}

// Repair rebuilds the exact distance vector and min-ID witness tree of
// source on g — the patched graph — from a trace that was exact before
// the net changes, touching only the affected region. maxAffected > 0
// bounds the region: when more than maxAffected vertices need rebuilding
// the repair abandons ship and returns ok=false, telling the caller a
// full recomputation is the better deal (and, in the serving layer, the
// one that re-mints a cacheable canonical body). maxAffected <= 0 means
// unbounded. ok=false is also returned for a malformed trace (wrong
// lengths) — never a wrong answer.
//
// With an empty change set this degenerates to serving the trace itself
// (Affected == 0), which is how warm-started and just-promoted traces
// answer in O(n) without a simulation.
func Repair(g *graph.Graph, source graph.NodeID, tr Trace, changes []NetChange, maxAffected int) (*RepairResult, bool) {
	n := g.N()
	if len(tr.Dist) != n || len(tr.Parent) != n || source < 0 || int(source) >= n {
		return nil, false
	}
	dist := append([]int64(nil), tr.Dist...)
	parent := append([]graph.NodeID(nil), tr.Parent...)
	if len(changes) == 0 {
		return &RepairResult{Dist: dist, Parent: parent}, true
	}

	// Per-phase wall clocks for the repair breakdown (RepairResult.PhaseNS);
	// abandoned repairs (ok=false) report nothing — the caller falls back to
	// a full recomputation, which has its own engine-phase accounting.
	var phaseNS [4]int64
	phaseStart := time.Now()
	markPhase := func(i int) {
		now := time.Now()
		phaseNS[i] = now.Sub(phaseStart).Nanoseconds()
		phaseStart = now
	}

	// Phase 1 — carve: a witness-tree edge whose weight rose (or which was
	// deleted) no longer witnesses its child, so the child and its whole
	// old-tree subtree lose their labels. Everything outside the carved set
	// keeps its old label as a valid upper bound: its old tree path avoids
	// every increased edge (an increased tree edge would have orphaned the
	// downstream part), and decreased edges only make paths shorter.
	touched := make([]bool, n) // vertex is in the affected region
	affected := 0
	overBudget := func() bool { return maxAffected > 0 && affected > maxAffected }

	var seeds []graph.NodeID
	for _, ch := range changes {
		if !increased(ch) {
			continue
		}
		if tr.Parent[ch.V] == ch.U && !touched[ch.V] {
			touched[ch.V] = true
			seeds = append(seeds, ch.V)
		}
		if tr.Parent[ch.U] == ch.V && !touched[ch.U] {
			touched[ch.U] = true
			seeds = append(seeds, ch.U)
		}
	}
	var orphans []graph.NodeID
	if len(seeds) > 0 {
		// Children index of the old tree, CSR-shaped: one O(n) counting
		// pass, no per-node allocation.
		childCount := make([]int32, n+1)
		for _, p := range tr.Parent {
			if p >= 0 {
				childCount[p+1]++
			}
		}
		for v := 0; v < n; v++ {
			childCount[v+1] += childCount[v]
		}
		children := make([]graph.NodeID, childCount[n])
		fill := append([]int32(nil), childCount[:n]...)
		for v, p := range tr.Parent {
			if p >= 0 {
				children[fill[p]] = graph.NodeID(v)
				fill[p]++
			}
		}
		stack := append([]graph.NodeID(nil), seeds...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			dist[v] = graph.Inf
			orphans = append(orphans, v)
			affected++
			if overBudget() {
				return nil, false
			}
			for _, c := range children[childCount[v]:childCount[v+1]] {
				if !touched[c] {
					touched[c] = true
					stack = append(stack, c)
				}
			}
		}
	}

	markPhase(0)

	// Phase 2 — seed the heap. Orphans take their best non-orphan boundary
	// offer; net decreases relax both directions at the current labels.
	// Every later improvement of a seed's donor re-relaxes the edge when
	// the donor pops, so stale offers are harmless upper bounds.
	pq := &repairHeap{}
	push := func(v graph.NodeID, d int64) { heap.Push(pq, repairItem{v, d}) }
	relax := func(from, to graph.NodeID, w int64) {
		df := dist[from]
		if df == graph.Inf {
			return
		}
		if nd := satSum(df, w); nd < dist[to] {
			dist[to] = nd
			if !touched[to] {
				touched[to] = true
				affected++
			}
			push(to, nd)
		}
	}
	for _, v := range orphans {
		best := graph.Inf
		for _, h := range g.Adj(v) {
			// Fellow orphans sit at Inf right now and are excluded by the
			// finiteness check; their eventual labels reach v through the
			// heap when they pop.
			if d := dist[h.To]; d < graph.Inf {
				if c := satSum(d, h.W); c < best {
					best = c
				}
			}
		}
		if best < graph.Inf {
			dist[v] = best
			push(v, best)
		}
	}
	for _, ch := range changes {
		if ch.NewW < 0 || (ch.OldW >= 0 && ch.NewW >= ch.OldW) {
			continue // not a net decrease
		}
		relax(ch.U, ch.V, ch.NewW)
		relax(ch.V, ch.U, ch.NewW)
	}
	if overBudget() {
		return nil, false
	}
	markPhase(1)

	// Phase 3 — Dijkstra over the affected frontier, lazy deletion,
	// saturating sums: identical discipline to the reference algorithm, so
	// the settled labels are the exact distances on g.
	for pq.Len() > 0 {
		it := heap.Pop(pq).(repairItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, h := range g.Adj(it.v) {
			relax(it.v, h.To, h.W)
		}
		if overBudget() {
			return nil, false
		}
	}

	markPhase(2)

	// Phase 4 — parents. The witness predicate at v (∃ neighbor u:
	// dist[u]+w(u,v) == dist[v], min ID wins) can flip only where an input
	// changed: v's own label, a neighbor's label, or an incident edge.
	// Everything else keeps its old parent verbatim.
	suspect := make([]bool, n)
	for _, ch := range changes {
		suspect[ch.U], suspect[ch.V] = true, true
	}
	for v := 0; v < n; v++ {
		if dist[v] == tr.Dist[v] {
			continue
		}
		suspect[v] = true
		for _, h := range g.Adj(graph.NodeID(v)) {
			suspect[h.To] = true
		}
	}
	for v := 0; v < n; v++ {
		if touched[v] {
			suspect[v] = true
		}
	}
	for v := 0; v < n; v++ {
		if !suspect[v] {
			continue
		}
		if graph.NodeID(v) == source {
			parent[v] = -1
			continue
		}
		parent[v] = graph.WitnessParent(g, graph.NodeID(v), dist)
	}
	markPhase(3)
	return &RepairResult{Dist: dist, Parent: parent, Affected: affected, Orphaned: len(orphans), PhaseNS: phaseNS}, true
}

// increased reports whether a net change raised the pair's effective
// weight: a delete, or a finite-to-larger-finite transition. A pure
// insert (OldW == -1) can never have witnessed anything.
func increased(ch NetChange) bool {
	if ch.OldW < 0 {
		return false
	}
	return ch.NewW < 0 || ch.NewW > ch.OldW
}

// satSum is d+w saturating at graph.Inf (shared semantics with minSum,
// spelled for a known-finite d in the hot loop).
func satSum(d, w int64) int64 {
	s := d + w
	if s >= graph.Inf || s < 0 {
		return graph.Inf
	}
	return s
}

type repairItem struct {
	v graph.NodeID
	d int64
}

type repairHeap []repairItem

func (h repairHeap) Len() int           { return len(h) }
func (h repairHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h repairHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *repairHeap) Push(x any)        { *h = append(*h, x.(repairItem)) }
func (h *repairHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NetChanges resolves a base-weight ledger — pair key → the pair's weight
// on the trace's graph, -1 for absent, as accumulated by the registry
// across every PATCH since the trace was exact — against the head graph
// into the repair engine's input, dropping transitions that cancelled
// out. Output order follows the canonical pair-key order so repair work
// is deterministic.
func NetChanges(base map[uint64]int64, g *graph.Graph) []NetChange {
	if len(base) == 0 {
		return nil
	}
	keys := make([]uint64, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sortUint64(keys)
	out := make([]NetChange, 0, len(keys))
	for _, k := range keys {
		u, v := graph.NodeID(k>>32), graph.NodeID(uint32(k))
		neww := int64(-1)
		for _, h := range g.Adj(u) {
			if h.To == v {
				neww = h.W
				break
			}
		}
		if oldw := base[k]; oldw != neww {
			out = append(out, NetChange{U: u, V: v, OldW: oldw, NewW: neww})
		}
	}
	return out
}

// BaseWeight looks up the canonical pair's weight on g for the ledger
// (-1 when absent) — the value NetChanges later diffs against the head.
func BaseWeight(g *graph.Graph, u, v graph.NodeID) int64 {
	for _, h := range g.Adj(u) {
		if h.To == v {
			return h.W
		}
	}
	return -1
}

// PairKey exposes the canonical pair encoding (min<<32 | max) the ledger
// is keyed by.
func PairKey(u, v graph.NodeID) uint64 { return pairKey(u, v) }

func sortUint64(a []uint64) {
	// Tiny inputs (a handful of patched pairs); insertion sort avoids the
	// sort.Slice closure allocation on the repair path.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
