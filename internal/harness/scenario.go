// Package harness is the scenario-sweep subsystem: a registry of named,
// self-describing graph workloads (family × weights × model × algorithm), a
// concurrent runner that fans independent simulations out over a worker
// pool, and a reporting layer that emits machine-readable JSON and markdown
// tables next to the paper's predicted polylog envelopes.
//
// Scenarios are pure descriptions — a Scenario is a value, an Execute turns
// it into a Result, and nothing in between touches shared state — so runs
// are deterministic regardless of the worker count: the same scenario list
// always yields byte-identical results.
package harness

import (
	"fmt"
	"hash/fnv"
	"math/bits"

	"dsssp/internal/graph"
	"dsssp/internal/proto"
)

// Algorithm names a distributed (or baseline) algorithm a scenario runs.
type Algorithm string

// Algorithms the harness can drive.
const (
	// AlgSSSP is the paper's exact single-source shortest path
	// (Theorems 2.6/2.7 in CONGEST, Theorem 3.15 in the sleeping model).
	AlgSSSP Algorithm = "sssp"
	// AlgCSSP is the multi-source closest-source variant with offsets
	// (Definition 2.3).
	AlgCSSP Algorithm = "cssp"
	// AlgBFS is hop-distance computation: the cover-driven low-energy BFS
	// in the sleeping model (Thms 3.13/3.14), plain distributed BFS in
	// CONGEST.
	AlgBFS Algorithm = "bfs"
	// AlgAPSP is the Section 1.1 composition: one CSSP instance per source
	// under random-delay scheduling.
	AlgAPSP Algorithm = "apsp"
	// AlgBellmanFord is the classic distributed Bellman-Ford baseline.
	AlgBellmanFord Algorithm = "bellman-ford"
	// AlgDijkstra is the sequential-style distributed Dijkstra baseline.
	AlgDijkstra Algorithm = "dijkstra"
)

// Model selects the execution model of a scenario.
type Model string

// Models.
const (
	ModelCongest  Model = "congest"
	ModelSleeping Model = "sleeping"
)

// WeightKind selects a weight distribution.
type WeightKind string

// Weight distributions.
const (
	// WeightUnit gives every edge weight 1 (the BFS/unweighted regime).
	WeightUnit WeightKind = "unit"
	// WeightUniform draws uniformly from [1, MaxW].
	WeightUniform WeightKind = "uniform"
	// WeightZeroHeavy mixes weight 0 (probability 1/4) with uniform
	// [1, MaxW], exercising the Theorem 2.7 zero-weight extension.
	WeightZeroHeavy WeightKind = "zero-heavy"
)

// WeightSpec describes a weight distribution; the concrete WeightFn is
// derived deterministically from the scenario seed.
type WeightSpec struct {
	Kind WeightKind `json:"kind"`
	// MaxW is the maximum weight for the seeded kinds (ignored for unit).
	MaxW int64 `json:"max_w,omitempty"`
}

// Scenario is one named, self-describing workload: everything needed to
// build a graph and run one algorithm on it, deterministically.
type Scenario struct {
	// Name uniquely identifies the scenario in the registry, conventionally
	// "<model>-<alg>/<family>/n=<n>".
	Name string `json:"name"`
	// Description says which claim of the paper the scenario exercises.
	Description string       `json:"description,omitempty"`
	Family      graph.Family `json:"family"`
	N           int          `json:"n"`
	Weights     WeightSpec   `json:"weights"`
	Model       Model        `json:"model"`
	Alg         Algorithm    `json:"alg"`
	// Sources is the number of sources for AlgCSSP (default 1; others
	// always use a single source, node 0).
	Sources int `json:"sources,omitempty"`
	// EpsNum/EpsDen override the cutter ε in (0,1) (0/0 = the algorithm
	// default of 1/2). Part of the scenario's stable identity, so the ε
	// sweep dimension survives the JSON round trip for diff tooling.
	EpsNum int64 `json:"eps_num,omitempty"`
	EpsDen int64 `json:"eps_den,omitempty"`
	// Strict runs the scenario in strict-CONGEST mode: every message is
	// sized and the run fails if any exceeds the O(log n)-bit budget
	// (proto.BitBudget). CONGEST SSSP/CSSP/APSP only.
	Strict bool `json:"strict,omitempty"`
	// Seed is the base seed; the graph-structure and weight seeds are
	// derived from it and the scenario name, so renaming or reseeding a
	// scenario changes its graph but nothing else does.
	Seed int64 `json:"seed"`
	// Workers bounds AlgAPSP's inner per-source pool (0 = 1, sequential;
	// the sweep-level pool in Run is usually the better lever).
	Workers int `json:"-"`
	// IntraWorkers is an execution knob, not part of the scenario's
	// identity: it sets the simulator's intra-round worker pool
	// (simnet.Config.Workers) for the pipeline algorithms. Results are
	// byte-identical for every value, so it is never serialized and never
	// feeds the name, seeds, or envelope. Set by the runner (see
	// RunOptions.IntraWorkers); the BFS and classic baselines ignore it.
	IntraWorkers int `json:"-"`
}

// Validate rejects scenarios the generators or algorithms would panic on.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("harness: scenario has no name")
	}
	if s.N < 4 {
		return fmt.Errorf("harness: scenario %q: N must be >= 4, got %d", s.Name, s.N)
	}
	switch s.Alg {
	case AlgSSSP, AlgCSSP, AlgBFS, AlgAPSP, AlgBellmanFord, AlgDijkstra:
	default:
		return fmt.Errorf("harness: scenario %q: unknown algorithm %q", s.Name, s.Alg)
	}
	switch s.Model {
	case ModelCongest, ModelSleeping:
	default:
		return fmt.Errorf("harness: scenario %q: unknown model %q", s.Name, s.Model)
	}
	if (s.Alg == AlgBellmanFord || s.Alg == AlgDijkstra || s.Alg == AlgAPSP) && s.Model != ModelCongest {
		return fmt.Errorf("harness: scenario %q: %s runs only in the congest model", s.Name, s.Alg)
	}
	switch s.Weights.Kind {
	case WeightUnit:
	case WeightUniform, WeightZeroHeavy:
		if s.Weights.MaxW < 1 {
			return fmt.Errorf("harness: scenario %q: %s weights need MaxW >= 1", s.Name, s.Weights.Kind)
		}
	default:
		return fmt.Errorf("harness: scenario %q: unknown weight kind %q", s.Name, s.Weights.Kind)
	}
	if s.Sources < 0 || s.Sources > s.N {
		return fmt.Errorf("harness: scenario %q: Sources %d out of range", s.Name, s.Sources)
	}
	if s.EpsNum != 0 || s.EpsDen != 0 {
		if s.EpsNum <= 0 || s.EpsDen <= 0 || s.EpsNum >= s.EpsDen {
			return fmt.Errorf("harness: scenario %q: ε must be in (0,1), got %d/%d", s.Name, s.EpsNum, s.EpsDen)
		}
		if s.Alg != AlgSSSP && s.Alg != AlgCSSP && s.Alg != AlgAPSP {
			return fmt.Errorf("harness: scenario %q: ε applies to the CSSP recursion (sssp/cssp/apsp), not %s", s.Name, s.Alg)
		}
	}
	if s.Strict {
		if s.Model != ModelCongest {
			return fmt.Errorf("harness: scenario %q: strict-CONGEST mode needs the congest model, got %s", s.Name, s.Model)
		}
		switch s.Alg {
		case AlgSSSP, AlgCSSP, AlgAPSP:
		default:
			return fmt.Errorf("harness: scenario %q: strict-CONGEST mode supports sssp/cssp/apsp, not %s", s.Name, s.Alg)
		}
	}
	found := false
	for _, f := range graph.Families() {
		if f == s.Family {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("harness: scenario %q: unknown family %q", s.Name, s.Family)
	}
	return nil
}

// seeds derives the (structure, weight) seeds from the base seed and name.
func (s *Scenario) seeds() (int64, int64) {
	h := fnv.New64a()
	h.Write([]byte(s.Name))
	base := s.Seed ^ int64(h.Sum64()&0x7fffffffffffffff)
	return base, base*6364136223846793005 + 1442695040888963407
}

// BuildGraph materializes the scenario's graph. Same scenario ⇒ identical
// graph (edges, order, and weights), which is what makes sweep results
// reproducible and diffable across PRs.
func (s *Scenario) BuildGraph() *graph.Graph {
	gseed, wseed := s.seeds()
	var w graph.WeightFn
	switch s.Weights.Kind {
	case WeightUniform:
		w = graph.UniformWeights(s.Weights.MaxW, wseed)
	case WeightZeroHeavy:
		w = graph.ZeroHeavyWeights(s.Weights.MaxW, wseed)
	default:
		w = graph.UnitWeights
	}
	return graph.Make(s.Family, s.N, w, gseed)
}

// SourceOffsets returns the deterministic CSSP source set: Sources nodes
// spread evenly over the ID space, with small increasing offsets to
// exercise the imaginary-node offsets of Section 2.3.
func (s *Scenario) SourceOffsets() map[graph.NodeID]int64 {
	k := s.Sources
	if k < 1 {
		k = 1
	}
	srcs := make(map[graph.NodeID]int64, k)
	for i := 0; i < k; i++ {
		srcs[graph.NodeID(i*s.N/k)] = int64(i)
	}
	return srcs
}

// Envelope holds the paper's asymptotic bounds instantiated with fixed,
// generous constants, so measured/predicted ratios are comparable across
// PRs: a ratio drifting toward (or past) 1 flags a complexity regression
// even while distances stay correct. Zero fields mean "no bound claimed".
type Envelope struct {
	// Rounds bounds time: Õ(n) for the paper's algorithms (Thms 2.6/2.7,
	// 3.15), Θ(n·D)-ish worst cases for the baselines are left unbounded.
	Rounds int64 `json:"rounds,omitempty"`
	// Congestion bounds max messages per edge: poly(log n) for CSSP/SSSP.
	Congestion int64 `json:"congestion,omitempty"`
	// MaxAwake bounds per-node awake rounds: poly(log n) in the sleeping
	// model (Thm 1.1).
	MaxAwake int64 `json:"max_awake,omitempty"`
	// MessageBits bounds the size of any single message: the strict
	// CONGEST O(log n)-bit budget (set only for Strict scenarios, where
	// the simulator enforces it).
	MessageBits int64 `json:"message_bits,omitempty"`
}

func lg(n int) int64 {
	if n < 2 {
		return 1
	}
	return int64(bits.Len(uint(n - 1)))
}

// PredictedEnvelope returns the scenario's envelope. The Õ(·) bounds hide
// polylog factors in both n and the weighted diameter D ≤ n·maxW (the
// recursion has log D levels), so the envelopes carry both. The constants
// are calibrated once against the seed implementation (with ~4× headroom)
// and must only change deliberately — they are the regression baseline.
func (s *Scenario) PredictedEnvelope() Envelope {
	n := int64(s.N)
	l := lg(s.N)
	maxW := s.Weights.MaxW
	if maxW < 1 {
		maxW = 1
	}
	if s.Family == graph.FamilyBFGadget {
		maxW = 2*n + 1 // the gadget's chord weights are structural, not from WeightSpec
	}
	ld := lg64(n * maxW) // recursion depth: log of the initial threshold D0
	// The strict-CONGEST bit budget grows with the effective weight range:
	// zero-weight graphs are rescaled by n+1 before the run (Thm 2.7), so
	// their distance values — and hence message payloads — are wider.
	bitW := maxW
	if s.Weights.Kind == WeightZeroHeavy {
		bitW = maxW * (n + 1)
	}
	var bits int64
	if s.Strict {
		bits = proto.BitBudget(s.N, bitW)
	}
	// The cutter's round cost per recursion level scales like 1/ε (the
	// fragment windows are Θ(D/ε) for the small-ε sweep); fold the
	// configured ε into the rounds envelope so the sweep stays comparable.
	epsFactor := int64(1)
	if s.EpsNum > 0 && s.EpsDen/s.EpsNum > 2 {
		epsFactor = (s.EpsDen + s.EpsNum - 1) / s.EpsNum / 2
	}
	switch s.Alg {
	case AlgSSSP, AlgCSSP:
		e := Envelope{Rounds: 64 * epsFactor * n * l * ld * ld, Congestion: 8 * l * l * ld * ld, MessageBits: bits}
		if s.Model == ModelSleeping {
			// The sleeping-model recursion pays polylog awake rounds
			// (Thm 3.15) but much larger constants in wall-clock rounds.
			e.Rounds = 0
			e.MaxAwake = 64 * l * l * ld * ld * ld
		}
		return e
	case AlgBFS:
		if s.Model == ModelSleeping {
			return Envelope{MaxAwake: 64 * l * l * l}
		}
		return Envelope{Rounds: 4 * n, Congestion: 8}
	case AlgAPSP:
		// Per-instance bounds; the composition metrics get their own
		// columns (random-delay makespan vs C+T) in the report.
		return Envelope{Rounds: 64 * epsFactor * n * l * ld * ld, Congestion: 8 * n * l * l * ld * ld, MessageBits: bits}
	default:
		return Envelope{}
	}
}

func lg64(n int64) int64 {
	if n < 2 {
		return 1
	}
	return int64(bits.Len64(uint64(n - 1)))
}
