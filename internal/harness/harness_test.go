package harness

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"dsssp/internal/graph"
)

func quickSubset(t *testing.T, patterns ...string) []Scenario {
	t.Helper()
	scns, err := Default(true).Select(patterns)
	if err != nil {
		t.Fatal(err)
	}
	if len(scns) == 0 {
		t.Fatal("empty selection")
	}
	return scns
}

// TestParallelMatchesSequential is the harness's core guarantee: a sweep
// over the worker pool produces byte-identical results — distances (via
// DistHash) and every metric — to a sequential run.
func TestParallelMatchesSequential(t *testing.T) {
	scns := quickSubset(t,
		"congest-sssp/path/*", "congest-sssp/random/*", "congest-cssp/*",
		"sleeping-bfs/path/*", "congest-apsp/random/*", "congest-bellman-ford/*")
	seq, err := Run(context.Background(), scns, RunOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), scns, RunOptions{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	var bseq, bpar bytes.Buffer
	if err := WriteJSON(&bseq, BuildReport("test", true, seq)); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&bpar, BuildReport("test", true, par)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bseq.Bytes(), bpar.Bytes()) {
		t.Fatalf("parallel run differs from sequential run:\n--- seq ---\n%s\n--- par ---\n%s",
			bseq.String(), bpar.String())
	}
	for _, r := range seq {
		if !r.OK {
			t.Errorf("%s failed verification: %s", r.Scenario, r.Err)
		}
	}
}

// TestDefaultSuiteValidates: every registered scenario must pass its own
// validation and build a non-trivial graph.
func TestDefaultSuiteValidates(t *testing.T) {
	for _, quick := range []bool{true, false} {
		reg := Default(quick)
		if reg.Len() == 0 {
			t.Fatal("empty default suite")
		}
		for _, name := range reg.Names() {
			s, ok := reg.Get(name)
			if !ok {
				t.Fatalf("Get(%q) failed", name)
			}
			if err := s.Validate(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
			g := s.BuildGraph()
			if g.N() < 4 || g.M() == 0 {
				t.Errorf("%s: degenerate graph n=%d m=%d", name, g.N(), g.M())
			}
		}
	}
}

func TestRegistryRejectsDuplicatesAndInvalid(t *testing.T) {
	r := NewRegistry()
	s := Scenario{
		Name: "x", Family: graph.FamilyPath, N: 8,
		Weights: WeightSpec{Kind: WeightUnit}, Model: ModelCongest, Alg: AlgSSSP,
	}
	if err := r.Register(s); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(s); err == nil {
		t.Error("duplicate name accepted")
	}
	bad := []Scenario{
		{Name: "", Family: graph.FamilyPath, N: 8, Weights: WeightSpec{Kind: WeightUnit}, Model: ModelCongest, Alg: AlgSSSP},
		{Name: "a", Family: graph.FamilyPath, N: 2, Weights: WeightSpec{Kind: WeightUnit}, Model: ModelCongest, Alg: AlgSSSP},
		{Name: "b", Family: "nope", N: 8, Weights: WeightSpec{Kind: WeightUnit}, Model: ModelCongest, Alg: AlgSSSP},
		{Name: "c", Family: graph.FamilyPath, N: 8, Weights: WeightSpec{Kind: "gauss"}, Model: ModelCongest, Alg: AlgSSSP},
		{Name: "d", Family: graph.FamilyPath, N: 8, Weights: WeightSpec{Kind: WeightUnit}, Model: "half-awake", Alg: AlgSSSP},
		{Name: "e", Family: graph.FamilyPath, N: 8, Weights: WeightSpec{Kind: WeightUnit}, Model: ModelCongest, Alg: "a-star"},
		{Name: "f", Family: graph.FamilyPath, N: 8, Weights: WeightSpec{Kind: WeightUnit}, Model: ModelSleeping, Alg: AlgAPSP},
		{Name: "g", Family: graph.FamilyPath, N: 8, Weights: WeightSpec{Kind: WeightUniform}, Model: ModelCongest, Alg: AlgSSSP},
	}
	for _, s := range bad {
		if err := r.Register(s); err == nil {
			t.Errorf("scenario %+v accepted, want validation error", s)
		}
	}
}

func TestSelectPatterns(t *testing.T) {
	reg := Default(true)
	all, err := reg.Select(nil)
	if err != nil || len(all) != reg.Len() {
		t.Fatalf("Select(nil) = %d scenarios, err %v; want all %d", len(all), err, reg.Len())
	}
	sssp, err := reg.Select([]string{"congest-sssp/*"})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sssp {
		if s.Alg != AlgSSSP || s.Model != ModelCongest {
			t.Errorf("pattern leaked %s", s.Name)
		}
	}
	if _, err := reg.Select([]string{"no-such-thing"}); err == nil {
		t.Error("bogus pattern accepted")
	}
	exact := all[0].Name
	one, err := reg.Select([]string{exact})
	if err != nil || len(one) != 1 || one[0].Name != exact {
		t.Errorf("exact-name select failed: %v %v", one, err)
	}
}

// TestRunCancellation: a cancelled context stops dispatching and marks the
// remaining scenarios as skipped instead of hanging.
func TestRunCancellation(t *testing.T) {
	scns := quickSubset(t, "all")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the sweep starts: everything skips
	results, err := Run(ctx, scns, RunOptions{Parallel: 2})
	if err == nil {
		t.Fatal("want ctx error")
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CancelError, got %T: %v", err, err)
	}
	if ce.Completed != 0 || ce.Skipped != len(scns) || ce.Total != len(scns) {
		t.Fatalf("CancelError counts = %+v, want 0 completed / %d skipped", ce, len(scns))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CancelError should unwrap to context.Canceled, got %v", err)
	}
	if len(results) != len(scns) {
		t.Fatalf("got %d results, want %d", len(results), len(scns))
	}
	for _, r := range results {
		if r.OK || !strings.HasPrefix(r.Err, "skipped:") {
			t.Fatalf("scenario %s should be skipped, got %+v", r.Scenario, r)
		}
	}
}

// TestRunCancellationMidSweep: cancelling between scenarios yields a
// partial set of real results plus explicitly skipped rows, and the
// CancelError accounts for both — a cancelled sweep is distinguishable
// from an ordinarily short one.
func TestRunCancellationMidSweep(t *testing.T) {
	scns := quickSubset(t, "all")
	if len(scns) < 3 {
		t.Skip("need at least 3 scenarios")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results, err := Run(ctx, scns, RunOptions{
		Parallel: 1,
		Progress: func(done, total int, r Result) {
			if done == 1 {
				cancel() // after the first scenario completes
			}
		},
	})
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CancelError, got %T: %v", err, err)
	}
	if ce.Completed < 1 || ce.Skipped < 1 || ce.Completed+ce.Skipped != ce.Total || ce.Total != len(scns) {
		t.Fatalf("inconsistent CancelError counts: %+v (n=%d)", ce, len(scns))
	}
	completed, skippedRows := 0, 0
	for _, r := range results {
		if strings.HasPrefix(r.Err, "skipped:") {
			skippedRows++
		} else {
			completed++
		}
	}
	if completed != ce.Completed || skippedRows != ce.Skipped {
		t.Fatalf("rows (completed=%d skipped=%d) disagree with CancelError %+v", completed, skippedRows, ce)
	}
	// The partial report the caller would build from these results carries
	// the skipped rows as failures — it cannot read as a clean short sweep.
	if rep := BuildReport("default", true, results); rep.Failures < skippedRows {
		t.Fatalf("report failures = %d, want >= %d skipped", rep.Failures, skippedRows)
	}
}

// TestExecuteNeverCrashes: a broken workload must produce an error Result,
// not take down the sweep — whether Validate catches it up front or the
// recover() in Execute converts a deeper panic.
func TestExecuteNeverCrashes(t *testing.T) {
	// Caught by Validate inside Execute.
	r := Execute(Scenario{
		Name: "broken", Family: graph.FamilyCycle, N: 8,
		Weights: WeightSpec{Kind: WeightUniform, MaxW: -1},
		Model:   ModelCongest, Alg: AlgSSSP,
	})
	if r.OK || r.Err == "" {
		t.Fatalf("want an error result, got %+v", r)
	}
	// Defense in depth: the recover path turns generator panics into Err.
	func() {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("Execute let a panic escape: %v", p)
			}
		}()
		r = executeUnvalidated(Scenario{
			Name: "panics", Family: graph.FamilyCycle, N: 8,
			Weights: WeightSpec{Kind: WeightUniform, MaxW: -1},
			Model:   ModelCongest, Alg: AlgSSSP,
		})
	}()
	if r.OK || !strings.HasPrefix(r.Err, "panic:") {
		t.Fatalf("want a panic-derived error result, got %+v", r)
	}
}

func TestProgressReporting(t *testing.T) {
	scns := quickSubset(t, "congest-bellman-ford/*", "congest-dijkstra/*")
	var calls int
	_, err := Run(context.Background(), scns, RunOptions{
		Parallel: 4,
		Progress: func(done, total int, r Result) {
			calls++
			if total != len(scns) || done < 1 || done > total {
				t.Errorf("bad progress (%d,%d)", done, total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(scns) {
		t.Errorf("progress called %d times, want %d", calls, len(scns))
	}
}

// TestReportRoundTrip: WriteJSON output parses back unchanged and the
// markdown writer renders every scenario row.
func TestReportRoundTrip(t *testing.T) {
	scns := quickSubset(t, "congest-bfs/*", "sleeping-bfs/*")
	results, err := Run(context.Background(), scns, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport("test", true, results)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scenarios != rep.Scenarios || back.Failures != rep.Failures || len(back.Results) != len(rep.Results) {
		t.Fatalf("round trip changed the report: %+v vs %+v", back, rep)
	}
	var md bytes.Buffer
	if err := WriteMarkdown(&md, rep); err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !strings.Contains(md.String(), r.Scenario) {
			t.Errorf("markdown missing scenario %s", r.Scenario)
		}
	}
	if _, err := ReadJSON(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
}

// TestEnvelopesHold: the calibrated envelopes are the regression baseline —
// every quick scenario must sit inside its predicted bounds.
func TestEnvelopesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	results, err := Run(context.Background(), Default(true).mustAll(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.OK {
			t.Errorf("%s failed: %s", r.Scenario, r.Err)
			continue
		}
		if e := r.Envelope.Rounds; e > 0 && r.Rounds > e {
			t.Errorf("%s: rounds %d exceed envelope %d", r.Scenario, r.Rounds, e)
		}
		if e := r.Envelope.Congestion; e > 0 && r.MaxEdgeMessages > e {
			t.Errorf("%s: congestion %d exceeds envelope %d", r.Scenario, r.MaxEdgeMessages, e)
		}
		if e := r.Envelope.MaxAwake; e > 0 && r.MaxAwake > e {
			t.Errorf("%s: awake %d exceeds envelope %d", r.Scenario, r.MaxAwake, e)
		}
	}
}

func (r *Registry) mustAll() []Scenario {
	s, err := r.Select(nil)
	if err != nil {
		panic(err)
	}
	return s
}

// TestAPSPInnerPoolDeterministic: the APSP scenario with an inner worker
// pool (the same pool machinery that parallelizes dsssp.APSP) must agree
// with the sequential execution bit for bit.
func TestAPSPInnerPoolDeterministic(t *testing.T) {
	base := Scenario{
		Name: "apsp-inner", Family: graph.FamilyRandom, N: 16,
		Weights: WeightSpec{Kind: WeightUniform, MaxW: 16},
		Model:   ModelCongest, Alg: AlgAPSP, Seed: 42,
	}
	seqS := base
	seqS.Workers = 1
	parS := base
	parS.Workers = 8
	seq := Execute(seqS)
	par := Execute(parS)
	if seq.Err != "" || par.Err != "" {
		t.Fatalf("errors: %q %q", seq.Err, par.Err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("inner pool changed the result:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestPerfSidecarKeepsMetricsIdentical runs the same scenarios with and
// without RunOptions.Perf and asserts the model-level results are exactly
// equal — the sidecar must only add wall_ns/allocs, never perturb the
// deterministic fields — and that allocations are measured only at
// Parallel == 1.
func TestPerfSidecarKeepsMetricsIdentical(t *testing.T) {
	scns, err := Default(true).Select([]string{"congest-bfs/*", "congest-bellman-ford/random/*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(scns) == 0 {
		t.Fatal("empty selection")
	}
	plain, err := Run(context.Background(), scns, RunOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	perf, err := Run(context.Background(), scns, RunOptions{Parallel: 1, Perf: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		p := perf[i]
		if p.Perf == nil {
			t.Fatalf("%s: missing perf sidecar", p.Scenario)
		}
		if p.Perf.WallNS <= 0 || p.Perf.Allocs <= 0 {
			t.Fatalf("%s: implausible perf sidecar %+v", p.Scenario, p.Perf)
		}
		p.Perf = nil
		if !reflect.DeepEqual(plain[i], p) {
			t.Fatalf("%s: perf run perturbed model metrics:\nplain: %+v\nperf:  %+v", p.Scenario, plain[i], p)
		}
	}
	// Parallel > 1: wall time only; the global allocation counters cannot
	// be attributed to a single scenario.
	wide, err := Run(context.Background(), scns, RunOptions{Parallel: 4, Perf: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range wide {
		if r.Perf == nil || r.Perf.WallNS <= 0 {
			t.Fatalf("%s: missing wall time at Parallel=4: %+v", r.Scenario, r.Perf)
		}
		if r.Perf.Allocs != 0 || r.Perf.AllocBytes != 0 {
			t.Fatalf("%s: allocs reported under concurrency: %+v", r.Scenario, r.Perf)
		}
	}
}
