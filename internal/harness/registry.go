package harness

import (
	"fmt"

	"dsssp/internal/graph"
)

// Registry holds named scenarios in registration order.
type Registry struct {
	byName map[string]Scenario
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Scenario)}
}

// Register validates and adds a scenario; duplicate names are rejected.
func (r *Registry) Register(s Scenario) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, dup := r.byName[s.Name]; dup {
		return fmt.Errorf("harness: duplicate scenario %q", s.Name)
	}
	r.byName[s.Name] = s
	r.order = append(r.order, s.Name)
	return nil
}

// MustRegister is Register that panics; for building static suites.
func (r *Registry) MustRegister(s Scenario) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Get returns the named scenario.
func (r *Registry) Get(name string) (Scenario, bool) {
	s, ok := r.byName[name]
	return s, ok
}

// Names returns all scenario names in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.order...)
}

// Len returns the number of registered scenarios.
func (r *Registry) Len() int { return len(r.order) }

// Select resolves patterns to scenarios in registration order. Each pattern
// is either an exact name or a glob where '*' matches any run of characters
// (including '/') and '?' one character — so "congest-sssp/*" selects every
// CONGEST SSSP scenario and "*/random/*" every random-family one. "all" or
// an empty pattern list selects everything. A pattern matching nothing is
// an error — it almost always means a typo.
func (r *Registry) Select(patterns []string) ([]Scenario, error) {
	all := len(patterns) == 0
	for _, p := range patterns {
		if p == "all" {
			all = true
		}
	}
	if all {
		out := make([]Scenario, 0, len(r.order))
		for _, name := range r.order {
			out = append(out, r.byName[name])
		}
		return out, nil
	}
	picked := make(map[string]bool)
	for _, p := range patterns {
		hit := false
		for _, name := range r.order {
			if name == p || globMatch(p, name) {
				picked[name] = true
				hit = true
			}
		}
		if !hit {
			return nil, fmt.Errorf("harness: pattern %q matches no scenario (try -list)", p)
		}
	}
	out := make([]Scenario, 0, len(picked))
	for _, name := range r.order {
		if picked[name] {
			out = append(out, r.byName[name])
		}
	}
	return out, nil
}

// globMatch reports whether name matches pattern: '*' matches any run of
// characters (separators included, unlike path.Match — scenario names are
// hierarchical and sweeps routinely select whole subtrees), '?' exactly one.
func globMatch(p, name string) bool {
	px, nx := 0, 0
	star, mark := -1, 0
	for nx < len(name) {
		switch {
		case px < len(p) && (p[px] == '?' || p[px] == name[nx]):
			px++
			nx++
		case px < len(p) && p[px] == '*':
			star, mark = px, nx
			px++
		case star >= 0:
			px = star + 1
			mark++
			nx = mark
		default:
			return false
		}
	}
	for px < len(p) && p[px] == '*' {
		px++
	}
	return px == len(p)
}

// Default builds the standard sweep suite. With quick=true the sizes shrink
// to smoke-test scale (CI runs `dsssp-bench -quick`). The suite covers
// every generator family on the flagship CONGEST SSSP, plus targeted
// sweeps per claim: sleeping-model energy bounds, multi-source CSSP,
// zero-weight handling, cutter ε sweeps, multi-component (+Inf) graphs,
// strict-CONGEST bit-budget enforcement, APSP composition, and the classic
// baselines for contrast.
func Default(quick bool) *Registry {
	r := NewRegistry()
	name := func(model Model, alg Algorithm, fam graph.Family, n int) string {
		return fmt.Sprintf("%s-%s/%s/n=%d", model, alg, fam, n)
	}

	ssspSizes := []int{64, 128, 256}
	if quick {
		ssspSizes = []int{32, 64}
	}
	// Flagship: CONGEST SSSP over every family — Õ(n) rounds and polylog
	// congestion should hold regardless of topology (Thms 2.6/2.7). The
	// Bellman-Ford gadget is registered below with the baselines, at the
	// baseline sizes, so the contrast rows pair up.
	for _, fam := range graph.Families() {
		if fam == graph.FamilyBFGadget {
			continue
		}
		for _, n := range ssspSizes {
			r.MustRegister(Scenario{
				Name:        name(ModelCongest, AlgSSSP, fam, n),
				Description: "Thm 2.6/2.7: exact SSSP in Õ(n) rounds, polylog congestion",
				Family:      fam, N: n,
				Weights: WeightSpec{Kind: WeightUniform, MaxW: int64(n)},
				Model:   ModelCongest, Alg: AlgSSSP, Seed: 7,
			})
		}
	}

	// Multi-source CSSP with offsets, including the zero-weight extension.
	csspSizes := []int{64, 128}
	if quick {
		csspSizes = []int{32}
	}
	for _, n := range csspSizes {
		r.MustRegister(Scenario{
			Name:        name(ModelCongest, AlgCSSP, graph.FamilyRandom, n),
			Description: "Def 2.3: closest-source distances with offsets, 4 sources",
			Family:      graph.FamilyRandom, N: n, Sources: 4,
			Weights: WeightSpec{Kind: WeightUniform, MaxW: int64(n)},
			Model:   ModelCongest, Alg: AlgCSSP, Seed: 11,
		})
		r.MustRegister(Scenario{
			Name:        fmt.Sprintf("congest-cssp/random-zerow/n=%d", n),
			Description: "Thm 2.7: zero-weight edges handled exactly",
			Family:      graph.FamilyRandom, N: n, Sources: 2,
			Weights: WeightSpec{Kind: WeightZeroHeavy, MaxW: int64(n)},
			Model:   ModelCongest, Alg: AlgCSSP, Seed: 13,
		})
	}

	// ε sweep (Lemma 2.1): the cutter's approximation parameter must not
	// affect exactness, only the round/congestion constants — the envelopes
	// fold ε in, so drifting ratios flag an ε-dependent regression.
	epsSizes := []int{64}
	epsValues := [][2]int64{{1, 8}, {1, 4}, {3, 4}}
	if quick {
		epsSizes = []int{32}
		epsValues = [][2]int64{{1, 4}, {3, 4}}
	}
	for _, n := range epsSizes {
		for _, eps := range epsValues {
			r.MustRegister(Scenario{
				Name:        fmt.Sprintf("congest-cssp/random/n=%d/eps=%d-%d", n, eps[0], eps[1]),
				Description: "Lemma 2.1: cutter ε sweep — exact for every ε in (0,1)",
				Family:      graph.FamilyRandom, N: n, Sources: 2,
				Weights: WeightSpec{Kind: WeightUniform, MaxW: int64(n)},
				Model:   ModelCongest, Alg: AlgCSSP,
				EpsNum: eps[0], EpsDen: eps[1], Seed: 17,
			})
		}
	}

	// Multi-component graphs: sources sit in one component, so every other
	// component must report the exact +Inf sentinel (and self-verify via
	// the Unreachable count). CSSP spreads its sources across components.
	for _, n := range csspSizes {
		r.MustRegister(Scenario{
			Name:        name(ModelCongest, AlgCSSP, graph.FamilyDisconnected, n),
			Description: "multi-component CSSP: sources in two of three components, +Inf in the third",
			Family:      graph.FamilyDisconnected, N: n, Sources: 2,
			Weights: WeightSpec{Kind: WeightUniform, MaxW: int64(n)},
			Model:   ModelCongest, Alg: AlgCSSP, Seed: 19,
		})
	}

	// Sleeping-model BFS: polylog awake rounds (Thms 3.13/3.14), with the
	// always-awake CONGEST BFS alongside for the energy contrast.
	bfsSizes := []int{128, 256}
	if quick {
		bfsSizes = []int{64}
	}
	for _, fam := range []graph.Family{graph.FamilyPath, graph.FamilyGrid, graph.FamilyExpander, graph.FamilyDisconnected} {
		for _, n := range bfsSizes {
			r.MustRegister(Scenario{
				Name:        name(ModelSleeping, AlgBFS, fam, n),
				Description: "Thm 3.13/3.14: BFS with polylog awake rounds per node",
				Family:      fam, N: n,
				Weights: WeightSpec{Kind: WeightUnit},
				Model:   ModelSleeping, Alg: AlgBFS, Seed: 3,
			})
			r.MustRegister(Scenario{
				Name:        name(ModelCongest, AlgBFS, fam, n),
				Description: "always-awake BFS baseline for the energy contrast",
				Family:      fam, N: n,
				Weights: WeightSpec{Kind: WeightUnit},
				Model:   ModelCongest, Alg: AlgBFS, Seed: 3,
			})
		}
	}

	// Sleeping-model exact SSSP (Thm 3.15 / Thm 1.1) — small sizes; the
	// recursion's wall-clock constants are large even though awake rounds
	// stay polylog.
	energySizes := []int{16, 24}
	if quick {
		energySizes = []int{12}
	}
	for _, n := range energySizes {
		r.MustRegister(Scenario{
			Name:        name(ModelSleeping, AlgSSSP, graph.FamilyRandom, n),
			Description: "Thm 3.15/1.1: exact SSSP with polylog awake rounds",
			Family:      graph.FamilyRandom, N: n,
			Weights: WeightSpec{Kind: WeightUniform, MaxW: 4},
			Model:   ModelSleeping, Alg: AlgSSSP, Seed: 7,
		})
	}

	// APSP composition (Section 1.1): barbell maximizes bottleneck
	// congestion, random is the typical case.
	apspSizes := []int{32, 48}
	if quick {
		apspSizes = []int{16}
	}
	for _, fam := range []graph.Family{graph.FamilyRandom, graph.FamilyBarbell} {
		for _, n := range apspSizes {
			r.MustRegister(Scenario{
				Name:        name(ModelCongest, AlgAPSP, fam, n),
				Description: "Sec 1.1: n CSSP instances under random-delay scheduling",
				Family:      fam, N: n,
				Weights: WeightSpec{Kind: WeightUniform, MaxW: int64(n)},
				Model:   ModelCongest, Alg: AlgAPSP, Seed: 42,
			})
		}
	}

	// Strict-CONGEST mode: the same algorithms with the O(log n)-bit
	// message budget enforced by the simulator — any oversized message
	// fails the scenario loudly. The zero-heavy row checks that the
	// Thm 2.7 rescaling stays inside the (wider) rescaled-word budget.
	strictSizes := []int{64, 128}
	strictAPSP := 32
	if quick {
		strictSizes = []int{32}
		strictAPSP = 16
	}
	strictName := func(alg Algorithm, fam graph.Family, n int) string {
		return fmt.Sprintf("%s-%s-strict/%s/n=%d", ModelCongest, alg, fam, n)
	}
	for _, n := range strictSizes {
		for _, fam := range []graph.Family{graph.FamilyRandom, graph.FamilyExpander} {
			r.MustRegister(Scenario{
				Name:        strictName(AlgSSSP, fam, n),
				Description: "strict CONGEST: exact SSSP with every message within the O(log n)-bit budget",
				Family:      fam, N: n,
				Weights: WeightSpec{Kind: WeightUniform, MaxW: int64(n)},
				Model:   ModelCongest, Alg: AlgSSSP, Strict: true, Seed: 7,
			})
		}
		r.MustRegister(Scenario{
			Name:        fmt.Sprintf("congest-cssp-strict/random-zerow/n=%d", n),
			Description: "strict CONGEST + Thm 2.7: zero-weight rescaling fits the rescaled-word budget",
			Family:      graph.FamilyRandom, N: n, Sources: 2,
			Weights: WeightSpec{Kind: WeightZeroHeavy, MaxW: int64(n)},
			Model:   ModelCongest, Alg: AlgCSSP, Strict: true, Seed: 13,
		})
	}
	r.MustRegister(Scenario{
		Name:        strictName(AlgAPSP, graph.FamilyRandom, strictAPSP),
		Description: "strict CONGEST APSP: every composed instance within the bit budget",
		Family:      graph.FamilyRandom, N: strictAPSP,
		Weights: WeightSpec{Kind: WeightUniform, MaxW: int64(strictAPSP)},
		Model:   ModelCongest, Alg: AlgAPSP, Strict: true, Seed: 42,
	})

	// Large-n scenarios (full suite only): n=10^5 graphs exercising the
	// engine's memory engineering and the intra-round worker pool at real
	// scale — the sizes where comparisons against Forster–Nanongkai-style
	// algorithms become meaningful. Low-diameter families keep the
	// always-awake BFS at O(n·diameter) total work; the CSSP pipelines stay
	// at the regular sizes (their Õ(n) rounds don't sweep at 10^5 yet).
	if !quick {
		hugeName := func(model Model, fam graph.Family, n int) string {
			return fmt.Sprintf("huge/%s-%s/%s/n=%d", model, AlgBFS, fam, n)
		}
		const hugeN = 100_000
		for _, fam := range []graph.Family{graph.FamilyRandom, graph.FamilyStar, graph.FamilyExpander} {
			r.MustRegister(Scenario{
				Name:        hugeName(ModelCongest, fam, hugeN),
				Description: "large-n smoke: BFS at n=10^5 through the arena-backed engine",
				Family:      fam, N: hugeN,
				Weights: WeightSpec{Kind: WeightUnit},
				Model:   ModelCongest, Alg: AlgBFS, Seed: 3,
			})
		}
		r.MustRegister(Scenario{
			Name:        hugeName(ModelSleeping, graph.FamilyStar, hugeN),
			Description: "large-n smoke: sleeping-model BFS at n=10^5, polylog awake rounds",
			Family:      graph.FamilyStar, N: hugeN,
			Weights: WeightSpec{Kind: WeightUnit},
			Model:   ModelSleeping, Alg: AlgBFS, Seed: 3,
		})
	}

	// Baselines on typical random graphs, plus the congestion contrast on
	// the Bellman-Ford worst-case gadget: its improving chords force Θ(n)
	// re-broadcasts per sink edge under Bellman-Ford, while the paper's
	// SSSP stays polylog on the same graph (the point of Thm 2.6/2.7).
	blSizes := []int{64, 128}
	if quick {
		blSizes = []int{32}
	}
	for _, n := range blSizes {
		r.MustRegister(Scenario{
			Name:        name(ModelCongest, AlgBellmanFord, graph.FamilyRandom, n),
			Description: "baseline: distributed Bellman-Ford",
			Family:      graph.FamilyRandom, N: n,
			Weights: WeightSpec{Kind: WeightUniform, MaxW: int64(n)},
			Model:   ModelCongest, Alg: AlgBellmanFord, Seed: 7,
		})
		r.MustRegister(Scenario{
			Name:        name(ModelCongest, AlgDijkstra, graph.FamilyRandom, n),
			Description: "baseline: distributed Dijkstra",
			Family:      graph.FamilyRandom, N: n,
			Weights: WeightSpec{Kind: WeightUniform, MaxW: int64(n)},
			Model:   ModelCongest, Alg: AlgDijkstra, Seed: 7,
		})
		r.MustRegister(Scenario{
			Name:        name(ModelCongest, AlgBellmanFord, graph.FamilyBFGadget, n),
			Description: "Bellman-Ford worst case: Θ(n) messages per sink edge",
			Family:      graph.FamilyBFGadget, N: n,
			Weights: WeightSpec{Kind: WeightUnit},
			Model:   ModelCongest, Alg: AlgBellmanFord, Seed: 7,
		})
		r.MustRegister(Scenario{
			Name:        name(ModelCongest, AlgSSSP, graph.FamilyBFGadget, n),
			Description: "Thm 2.6/2.7: polylog congestion on the Bellman-Ford worst case",
			Family:      graph.FamilyBFGadget, N: n,
			Weights: WeightSpec{Kind: WeightUnit},
			Model:   ModelCongest, Alg: AlgSSSP, Seed: 7,
		})
	}

	return r
}
