package harness

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden report files under testdata/")

// goldenPatterns is the fixed fast subset the golden files freeze: quick
// scenarios spanning the report's shapes — plain metrics, strict bit
// budgets, multi-component (+Inf) rows, and an ε-sweep row.
var goldenPatterns = []string{
	"congest-bfs/*",
	"congest-bellman-ford/random/*",
	"congest-cssp/disconnected/*",
	"congest-cssp/random/n=32/eps=*",
	"congest-sssp-strict/random/*",
}

// TestGoldenReports locks the exact bytes of the JSON and markdown reports:
// any change to metrics, schema, field order, or rendering shows up as a
// golden diff that has to be reviewed (regenerate with `go test
// ./internal/harness -run TestGolden -update`). The sweep runs at
// -parallel=1 and -parallel=8 and both must match the same golden, which
// pins the determinism contract along the way.
func TestGoldenReports(t *testing.T) {
	scns, err := Default(true).Select(goldenPatterns)
	if err != nil {
		t.Fatal(err)
	}
	if len(scns) == 0 {
		t.Fatal("golden selection is empty")
	}
	for _, parallel := range []int{1, 8} {
		results, err := Run(context.Background(), scns, RunOptions{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		rep := BuildReport("golden", true, results)
		var js, md, bd bytes.Buffer
		if err := WriteJSON(&js, rep); err != nil {
			t.Fatal(err)
		}
		if err := WriteMarkdown(&md, rep); err != nil {
			t.Fatal(err)
		}
		if err := WriteBreakdownMarkdown(&bd, rep); err != nil {
			t.Fatal(err)
		}
		if parallel == 1 && *updateGolden {
			writeGolden(t, "golden_report.json", js.Bytes())
			writeGolden(t, "golden_report.md", md.Bytes())
			writeGolden(t, "golden_breakdown.md", bd.Bytes())
		}
		compareGolden(t, "golden_report.json", js.Bytes(), parallel)
		compareGolden(t, "golden_report.md", md.Bytes(), parallel)
		compareGolden(t, "golden_breakdown.md", bd.Bytes(), parallel)
	}
}

func writeGolden(t *testing.T, name string, data []byte) {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("testdata", name), data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote testdata/%s (%d bytes)", name, len(data))
}

func compareGolden(t *testing.T, name string, got []byte, parallel int) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with -update): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("testdata/%s differs at -parallel=%d (%d vs %d bytes).\n"+
			"If the change is intentional, regenerate with:\n"+
			"  go test ./internal/harness -run TestGolden -update\ngot:\n%s",
			name, parallel, len(got), len(want), clip(got))
	}
}

func clip(b []byte) string {
	const max = 2000
	if len(b) <= max {
		return string(b)
	}
	return string(b[:max]) + "\n… (clipped)"
}
