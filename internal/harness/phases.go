package harness

import (
	"fmt"
	"sort"
	"strings"

	"dsssp/internal/core"
	"dsssp/internal/simnet"
)

// PhaseStat is one pipeline phase of a scenario's breakdown, aggregated
// over recursion depths. The counters partition the scenario-level metrics
// exactly (the engine's span ledger is an exact partition of its Metrics;
// see internal/simnet/span.go): summing Rounds/Messages/AwakeRounds over a
// result's phases reproduces the scenario's Rounds/Messages/TotalAwake, and
// the maximum MaxMessageBits reproduces the scenario's — asserted by
// TestPhaseConservation over the full quick sweep. For APSP, phases are
// merged across the composed instances, so only the summed metrics
// (messages) and the bit maximum tie back to the scenario row (its rounds
// column reports the heaviest single instance).
type PhaseStat struct {
	// Phase is the pipeline phase key (core.PipelinePhases).
	Phase string `json:"phase"`
	// Ref cites the paper construct the phase implements.
	Ref string `json:"ref,omitempty"`
	// Rounds is the wall-clock rounds attributed to the phase.
	Rounds int64 `json:"rounds"`
	// Messages is the number of messages sent from within the phase.
	Messages int64 `json:"messages,omitempty"`
	// AwakeRounds is the summed node-awake rounds spent in the phase.
	AwakeRounds int64 `json:"awake_rounds,omitempty"`
	// MaxMessageBits is the largest single message the phase sent (strict
	// scenarios only).
	MaxMessageBits int64 `json:"max_message_bits,omitempty"`
	// RoundsByDepth splits Rounds by recursion depth as "r0/r1/…" (depth 0
	// first; omitted when the phase only ever ran at depth 0). A compact
	// string keeps the flamegraph detail without exploding the JSON.
	RoundsByDepth string `json:"rounds_by_depth,omitempty"`
}

// PhasesFromSpans aggregates an engine span ledger into the per-phase
// breakdown — the exported entry point the serving layer uses to break a
// single query's metrics down the same way sweep reports do.
func PhasesFromSpans(spans []simnet.SpanMetrics) []PhaseStat {
	return phasesFromSpans(spans)
}

// PhaseRounds sums the per-phase round attribution. Because the span
// ledger partitions the engine's metrics exactly, this equals the run's
// total rounds — the conservation law the serving layer's ?trace=1
// consumers (and tests) rely on.
func PhaseRounds(phases []PhaseStat) int64 {
	var total int64
	for _, ph := range phases {
		total += ph.Rounds
	}
	return total
}

// phasesFromSpans aggregates an engine span ledger into the per-phase
// breakdown: spans sharing a phase key merge across recursion depths, with
// the depth split preserved in RoundsByDepth. Rows are ordered by pipeline
// execution order (core.PhaseRank), so reports read like the recursion
// runs.
func phasesFromSpans(spans []simnet.SpanMetrics) []PhaseStat {
	if len(spans) == 0 {
		return nil
	}
	idx := make(map[string]int)
	var out []PhaseStat
	depths := make(map[string][]int64)
	for _, sp := range spans {
		i, ok := idx[sp.Name]
		if !ok {
			i = len(out)
			idx[sp.Name] = i
			ps := PhaseStat{Phase: sp.Name}
			if ph, known := core.PhaseByKey(sp.Name); known {
				ps.Ref = ph.Ref
			}
			out = append(out, ps)
		}
		out[i].Rounds += sp.Rounds
		out[i].Messages += sp.Messages
		out[i].AwakeRounds += sp.AwakeRounds
		if sp.MaxMessageBits > out[i].MaxMessageBits {
			out[i].MaxMessageBits = sp.MaxMessageBits
		}
		d := depths[sp.Name]
		for len(d) <= sp.Depth {
			d = append(d, 0)
		}
		d[sp.Depth] += sp.Rounds
		depths[sp.Name] = d
	}
	for i := range out {
		if d := depths[out[i].Phase]; len(d) > 1 {
			parts := make([]string, len(d))
			for j, r := range d {
				parts[j] = fmt.Sprintf("%d", r)
			}
			out[i].RoundsByDepth = strings.Join(parts, "/")
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		ra, rb := core.PhaseRank(out[a].Phase), core.PhaseRank(out[b].Phase)
		if ra != rb {
			return ra < rb
		}
		return out[a].Phase < out[b].Phase
	})
	return out
}
