package harness

import (
	"context"
	"reflect"
	"testing"

	"dsssp/internal/simnet"
)

// TestPhaseConservationQuickSweep runs the full quick suite and asserts the
// acceptance invariant of the phase breakdown: per-phase counters sum
// exactly to the scenario-level metrics. For the pipeline algorithms
// (sssp/cssp) every metric conserves; for APSP the phases merge over all
// composed instances, so the summed metrics (messages) and the bit maximum
// tie back to the scenario row while rounds/awake are instance sums.
func TestPhaseConservationQuickSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("quick sweep in -short mode")
	}
	scns, err := Default(true).Select(nil)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(context.Background(), scns, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	withPhases := 0
	for _, r := range results {
		if r.Err != "" {
			t.Errorf("%s: %s", r.Scenario, r.Err)
			continue
		}
		isPipeline := r.Alg == string(AlgSSSP) || r.Alg == string(AlgCSSP) || r.Alg == string(AlgAPSP)
		if !isPipeline {
			if len(r.Phases) != 0 {
				t.Errorf("%s: non-pipeline algorithm reports phases", r.Scenario)
			}
			continue
		}
		if len(r.Phases) == 0 {
			t.Errorf("%s: pipeline scenario has no phase breakdown", r.Scenario)
			continue
		}
		withPhases++
		var rounds, msgs, awake, bits int64
		for _, ph := range r.Phases {
			rounds += ph.Rounds
			msgs += ph.Messages
			awake += ph.AwakeRounds
			if ph.MaxMessageBits > bits {
				bits = ph.MaxMessageBits
			}
		}
		if msgs != r.Messages {
			t.Errorf("%s: phase messages sum %d != %d", r.Scenario, msgs, r.Messages)
		}
		if bits != r.MaxMessageBits {
			t.Errorf("%s: phase bits max %d != %d", r.Scenario, bits, r.MaxMessageBits)
		}
		if r.Alg != string(AlgAPSP) {
			if rounds != r.Rounds {
				t.Errorf("%s: phase rounds sum %d != %d", r.Scenario, rounds, r.Rounds)
			}
			if awake != r.TotalAwake {
				t.Errorf("%s: phase awake sum %d != %d", r.Scenario, awake, r.TotalAwake)
			}
		} else if rounds < r.Rounds {
			// Merged over n instances, the round total must cover at least
			// the heaviest instance the scenario row reports.
			t.Errorf("%s: merged phase rounds %d below heaviest instance %d", r.Scenario, rounds, r.Rounds)
		}
	}
	if withPhases == 0 {
		t.Fatal("no scenario produced a phase breakdown")
	}
}

// TestPhasesFromSpans pins the aggregation: depths merge into one row per
// phase (pipeline-ordered), RoundsByDepth keeps the per-depth split, refs
// come from the core registry, and the root span sorts first.
func TestPhasesFromSpans(t *testing.T) {
	spans := []simnet.SpanMetrics{
		{Name: "run", Depth: 0, Rounds: 2, AwakeRounds: 3},
		{Name: "cutter", Depth: 0, Rounds: 40, Messages: 9, AwakeRounds: 12, MaxMessageBits: 33},
		{Name: "participate", Depth: 0, Rounds: 1, Messages: 4, AwakeRounds: 3},
		{Name: "cutter", Depth: 1, Rounds: 20, Messages: 5, AwakeRounds: 6, MaxMessageBits: 35},
		{Name: "participate", Depth: 1, Rounds: 1, Messages: 2, AwakeRounds: 2},
	}
	got := phasesFromSpans(spans)
	wantOrder := []string{"run", "participate", "cutter"}
	if len(got) != len(wantOrder) {
		t.Fatalf("got %d phases, want %d: %+v", len(got), len(wantOrder), got)
	}
	for i, name := range wantOrder {
		if got[i].Phase != name {
			t.Fatalf("phase %d = %q, want %q (pipeline order)", i, got[i].Phase, name)
		}
	}
	cutter := got[2]
	want := PhaseStat{
		Phase: "cutter", Ref: "Lemma 2.1", Rounds: 60, Messages: 14,
		AwakeRounds: 18, MaxMessageBits: 35, RoundsByDepth: "40/20",
	}
	if !reflect.DeepEqual(cutter, want) {
		t.Fatalf("cutter = %+v, want %+v", cutter, want)
	}
	if got[0].RoundsByDepth != "" {
		t.Errorf("run phase at a single depth must omit the depth split, got %q", got[0].RoundsByDepth)
	}
	if phasesFromSpans(nil) != nil {
		t.Error("empty ledger must aggregate to nil")
	}
}
