package harness

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"dsssp/internal/baseline"
	"dsssp/internal/core"
	"dsssp/internal/energybfs"
	"dsssp/internal/graph"
	"dsssp/internal/sched"
	"dsssp/internal/simnet"
)

// Result is the machine-readable outcome of one scenario run. Every
// model-level field is a pure function of the Scenario — so reports from
// parallel and sequential sweeps (and from different machines) are
// byte-identical and diffable across PRs. The one deliberate exception is
// the opt-in Perf sidecar, which exists precisely to carry the
// non-deterministic wall-time/allocation trajectory and is ignored by all
// determinism machinery (dist hashes, golden files, diff gating).
type Result struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	Family      string `json:"family"`
	Model       string `json:"model"`
	Alg         string `json:"alg"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	// EpsNum/EpsDen echo the scenario's cutter ε (0/0 = default 1/2) and
	// Strict its strict-CONGEST flag, so reports are self-describing and
	// the diff tool can refuse to align rows whose dimensions changed.
	EpsNum int64 `json:"eps_num,omitempty"`
	EpsDen int64 `json:"eps_den,omitempty"`
	Strict bool  `json:"strict,omitempty"`

	// Simulator metrics (per instance; for APSP, of the heaviest instance).
	Rounds          int64 `json:"rounds"`
	StrictRounds    int64 `json:"strict_rounds,omitempty"`
	Messages        int64 `json:"messages"`
	MaxEdgeMessages int64 `json:"max_edge_messages"`
	// MaxMessageBits is the largest single message in bits (strict
	// scenarios only — sizing is skipped elsewhere).
	MaxMessageBits int64 `json:"max_message_bits,omitempty"`
	MaxAwake       int64 `json:"max_awake,omitempty"`
	TotalAwake     int64 `json:"total_awake,omitempty"`
	SubproblemsMax int   `json:"subproblems_max,omitempty"`
	// Unreachable counts nodes at distance +Inf from the scenario's
	// sources (multi-component families; 0 elsewhere and for APSP).
	Unreachable int `json:"unreachable,omitempty"`

	// APSP composition metrics (Section 1.1), zero elsewhere.
	Dilation           int64 `json:"dilation,omitempty"`
	Congestion         int64 `json:"congestion,omitempty"`
	MakespanAligned    int64 `json:"makespan_aligned,omitempty"`
	MakespanRandom     int64 `json:"makespan_random,omitempty"`
	MakespanSequential int64 `json:"makespan_sequential,omitempty"`

	// Phases is the per-phase breakdown of the run (CSSP-pipeline
	// algorithms only): where the rounds, messages, and awake rounds went,
	// stage by stage. The counters partition the scenario-level metrics
	// exactly — see PhaseStat.
	Phases []PhaseStat `json:"phases,omitempty"`

	// Envelope is the paper's predicted bound for this scenario; compare
	// the measured columns against it across PRs.
	Envelope Envelope `json:"envelope"`

	// DistHash is an FNV-64a digest of the exact distance vector(s); OK
	// reports agreement with the sequential Dijkstra/BFS reference.
	DistHash string `json:"dist_hash"`
	OK       bool   `json:"ok"`
	Err      string `json:"err,omitempty"`

	// Perf is the opt-in wall-time/allocation sidecar (RunOptions.Perf /
	// dsssp-bench -perf). It is machine- and load-dependent by nature, so
	// it is excluded from everything determinism relies on: it never feeds
	// DistHash, it is omitted from reports when the flag is off (keeping
	// golden bytes stable), and cmd/dsssp-diff ignores it when gating.
	Perf *Perf `json:"perf,omitempty"`
}

// Perf records how expensive one scenario run was on the machine that ran
// it — the wall-time trajectory BENCH_*.json deliberately lacked before.
type Perf struct {
	// WallNS is the scenario's wall time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// Allocs/AllocBytes are the heap allocations the scenario performed.
	// The runtime counters are process-global, so they are measured only
	// when the sweep runs with Parallel == 1 (as the CI perf job does) and
	// reported as 0 otherwise.
	Allocs     int64 `json:"allocs,omitempty"`
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
}

// RunOptions tunes a sweep.
type RunOptions struct {
	// Parallel is the worker-pool size (0 = runtime.NumCPU(), 1 = run
	// sequentially in the calling goroutine's pool of one).
	Parallel int
	// Progress, if non-nil, is called after each scenario completes with
	// (completed count, total, that scenario's result). Calls are
	// serialized but arrive in completion order, not input order.
	Progress func(done, total int, r Result)
	// Perf attaches the wall-time/allocation sidecar to every result (see
	// Result.Perf). All model-level metrics stay byte-identical with the
	// flag off or on; only the perf fields differ between machines.
	Perf bool
	// IntraWorkers sets the simulator's intra-round worker pool for every
	// scenario (results are byte-identical for any value). 0 means auto:
	// when the sweep pool is a single worker (Parallel == 1) the otherwise
	// idle cores go to the run itself (runtime.NumCPU() intra workers);
	// any wider sweep keeps runs sequential, since scenario-level
	// parallelism already saturates the machine. Set to 1 to force
	// sequential simulation everywhere.
	IntraWorkers int
}

// Run executes the scenarios over a worker pool and returns results in
// input order. Independent simnet engines share nothing, so the sweep
// scales near-linearly with the pool; per-scenario seeds are derived from
// the scenario itself, so results are identical for any Parallel value.
//
// Cancellation: every worker checks ctx.Err() between scenarios, so a
// cancelled sweep stops at scenario granularity — scenarios already running
// finish, every undispatched one lands in the results as an explicitly
// skipped (failing) row, and the returned error is a *CancelError naming
// how many scenarios completed. A cancelled partial report can therefore
// never masquerade as an ordinarily short-but-successful sweep: the caller
// gets a descriptive error and the report itself carries the skipped rows
// as failures.
func Run(ctx context.Context, scenarios []Scenario, opt RunOptions) ([]Result, error) {
	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	if workers < 1 {
		workers = 1
	}
	// The allocation counters are process-global; attributing them to one
	// scenario is only meaningful when nothing else runs concurrently.
	measureAllocs := opt.Perf && workers == 1
	intra := opt.IntraWorkers
	if intra == 0 && workers == 1 {
		intra = runtime.NumCPU()
	}
	results := make([]Result, len(scenarios))
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		done    int
		skipCnt int
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				wasSkipped := false
				s := scenarios[i]
				s.IntraWorkers = intra
				if ctx.Err() != nil {
					results[i] = skipped(s, ctx.Err())
					wasSkipped = true
				} else if opt.Perf {
					results[i] = executeWithPerf(s, measureAllocs)
				} else {
					results[i] = Execute(s)
				}
				mu.Lock()
				done++
				if wasSkipped {
					skipCnt++
				}
				if opt.Progress != nil {
					opt.Progress(done, len(scenarios), results[i])
				}
				mu.Unlock()
			}
		}()
	}
	for i := range scenarios {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, &CancelError{Completed: len(scenarios) - skipCnt, Skipped: skipCnt, Total: len(scenarios), Cause: err}
	}
	return results, nil
}

// CancelError reports a sweep stopped by context cancellation: the partial
// results are still returned alongside it, with every unrun scenario
// present as a skipped failure.
type CancelError struct {
	// Completed scenarios actually ran (successfully or not); Skipped ones
	// were abandoned by the cancellation; Completed+Skipped == Total.
	Completed, Skipped, Total int
	// Cause is the context's error (context.Canceled or DeadlineExceeded).
	Cause error
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("harness: sweep cancelled after %d of %d scenarios (%d skipped): %v",
		e.Completed, e.Total, e.Skipped, e.Cause)
}

func (e *CancelError) Unwrap() error { return e.Cause }

// executeWithPerf runs a scenario under the perf sidecar. The Result's
// model-level fields are exactly Execute's; only the Perf sidecar is added.
func executeWithPerf(s Scenario, measureAllocs bool) Result {
	var m0, m1 runtime.MemStats
	if measureAllocs {
		runtime.ReadMemStats(&m0)
	}
	start := time.Now()
	r := Execute(s)
	perf := &Perf{WallNS: time.Since(start).Nanoseconds()}
	if measureAllocs {
		runtime.ReadMemStats(&m1)
		perf.Allocs = int64(m1.Mallocs - m0.Mallocs)
		perf.AllocBytes = int64(m1.TotalAlloc - m0.TotalAlloc)
	}
	r.Perf = perf
	return r
}

func skipped(s Scenario, err error) Result {
	return Result{
		Scenario: s.Name, Description: s.Description,
		Family: string(s.Family), Model: string(s.Model), Alg: string(s.Alg),
		N: s.N, Err: fmt.Sprintf("skipped: sweep cancelled before this scenario ran: %v", err),
	}
}

// Execute runs a single scenario to completion and never panics: invalid
// scenarios are rejected by Validate, and generator or simulator panics are
// converted into the Err field, so one bad workload cannot take down a
// sweep.
func Execute(s Scenario) Result {
	if err := s.Validate(); err != nil {
		r := resultHeader(s)
		r.Err = err.Error()
		return r
	}
	return executeUnvalidated(s)
}

func resultHeader(s Scenario) Result {
	return Result{
		Scenario: s.Name, Description: s.Description,
		Family: string(s.Family), Model: string(s.Model), Alg: string(s.Alg),
		N: s.N, EpsNum: s.EpsNum, EpsDen: s.EpsDen, Strict: s.Strict,
		Envelope: s.PredictedEnvelope(),
	}
}

func executeUnvalidated(s Scenario) (r Result) {
	r = resultHeader(s)
	defer func() {
		if p := recover(); p != nil {
			r.Err = fmt.Sprintf("panic: %v", p)
			r.OK = false
		}
	}()
	g := s.BuildGraph()
	r.N, r.M = g.N(), g.M()
	// RecordPhases: every pipeline scenario reports its per-phase
	// breakdown (Result.Phases); the ledger's cost is engine bookkeeping
	// only and never moves the model-level metrics.
	copt := core.Options{EpsNum: s.EpsNum, EpsDen: s.EpsDen, StrictCongest: s.Strict, RecordPhases: true, Workers: s.IntraWorkers}

	switch s.Alg {
	case AlgSSSP, AlgCSSP:
		sources := map[graph.NodeID]int64{0: 0}
		if s.Alg == AlgCSSP {
			sources = s.SourceOffsets()
		}
		run := core.RunCSSP
		if s.Model == ModelSleeping {
			run = core.RunEnergyCSSP
		}
		d, st, met, err := run(g, sources, copt)
		if err != nil {
			r.Err = err.Error()
			return r
		}
		fillMetrics(&r, met)
		r.SubproblemsMax = maxSub(st)
		finish(&r, d, graph.MultiSourceDijkstra(g, sources))
		return r

	case AlgBFS:
		// 2·approx+1 upper-bounds the true hop diameter (double-sweep is a
		// 2-approximation), so every reachable node gets a finite distance.
		threshold := 2*graph.HopDiameterApprox(g) + 1
		run := func(g *graph.Graph, threshold int64) ([]int64, simnet.Metrics, error) {
			return baseline.AlwaysAwakeBFS(g, map[graph.NodeID]bool{0: true}, threshold)
		}
		if s.Model == ModelSleeping {
			run = func(g *graph.Graph, threshold int64) ([]int64, simnet.Metrics, error) {
				return energybfs.RunBFS(g, map[graph.NodeID]int64{0: 0}, threshold)
			}
		}
		d, met, err := run(g, threshold)
		if err != nil {
			r.Err = err.Error()
			return r
		}
		fillMetrics(&r, met)
		finish(&r, d, graph.BFSDist(g, 0))
		return r

	case AlgBellmanFord:
		d, met, err := baseline.BellmanFord(g, 0)
		if err != nil {
			r.Err = err.Error()
			return r
		}
		fillMetrics(&r, met)
		finish(&r, d, graph.Dijkstra(g, 0))
		return r

	case AlgDijkstra:
		d, met, err := baseline.Dijkstra(g, 0)
		if err != nil {
			r.Err = err.Error()
			return r
		}
		fillMetrics(&r, met)
		finish(&r, d, graph.Dijkstra(g, 0))
		return r

	case AlgAPSP:
		workers := s.Workers
		if workers < 1 {
			workers = 1
		}
		dist := make([][]int64, g.N())
		var (
			mu       sync.Mutex
			maxR     int64
			maxEdge  int64
			totalMsg int64
		)
		runner := func(g *graph.Graph, src graph.NodeID) (sched.Trace, error) {
			d, _, met, tr, err := core.RunCSSPTraced(g, map[graph.NodeID]int64{src: 0}, copt)
			if err != nil {
				return sched.Trace{}, err
			}
			mu.Lock()
			dist[src] = d
			if met.Rounds > maxR {
				maxR = met.Rounds
			}
			if met.MaxEdgeMessages > maxEdge {
				maxEdge = met.MaxEdgeMessages
			}
			totalMsg += met.Messages
			mu.Unlock()
			return sched.Trace{Entries: tr, Rounds: met.Rounds, MaxMessageBits: met.MaxMessageBits, Spans: met.Spans}, nil
		}
		comp, err := sched.APSPParallel(g, nil, runner, s.Seed, workers)
		if err != nil {
			r.Err = err.Error()
			return r
		}
		r.Rounds, r.MaxEdgeMessages, r.Messages = maxR, maxEdge, totalMsg
		r.MaxMessageBits = comp.MaxMessageBits
		// Phases merged over all composed instances: the summed counters
		// (messages, awake) and the bit maximum tie back to the scenario
		// totals; rounds are per-instance sums, not the heaviest instance.
		r.Phases = phasesFromSpans(comp.Spans)
		r.Dilation, r.Congestion = comp.Dilation, comp.Congestion
		r.MakespanAligned, r.MakespanRandom = comp.MakespanAligned, comp.MakespanRandom
		r.MakespanSequential = comp.MakespanSequential
		h := fnv.New64a()
		ok := true
		for src := 0; src < g.N(); src++ {
			want := graph.Dijkstra(g, graph.NodeID(src))
			ok = ok && equalDists(dist[src], want)
			hashInto(h, dist[src])
		}
		r.DistHash = fmt.Sprintf("%016x", h.Sum64())
		r.OK = ok
		if !ok {
			r.Err = "distances disagree with the Dijkstra reference"
		}
		return r
	}
	r.Err = fmt.Sprintf("harness: unhandled algorithm %q", s.Alg)
	return r
}

func fillMetrics(r *Result, met simnet.Metrics) {
	r.Rounds, r.StrictRounds, r.Messages = met.Rounds, met.StrictRounds, met.Messages
	r.MaxEdgeMessages, r.MaxAwake, r.TotalAwake = met.MaxEdgeMessages, met.MaxAwake, met.TotalAwake
	r.MaxMessageBits = met.MaxMessageBits
	r.Phases = phasesFromSpans(met.Spans)
}

func maxSub(st core.Stats) int {
	m := 0
	for _, k := range st.Subproblems {
		if k > m {
			m = k
		}
	}
	return m
}

// finish verifies got against the sequential reference and records the hash.
// Unreachable nodes must agree on the exact +Inf sentinel — a huge-but-
// finite value would be a bug masked by plain equality on reachable rows,
// so the check is explicit.
func finish(r *Result, got, want []int64) {
	h := fnv.New64a()
	hashInto(h, got)
	r.DistHash = fmt.Sprintf("%016x", h.Sum64())
	r.OK = equalDists(got, want)
	if !r.OK {
		r.Err = "distances disagree with the sequential reference"
		return
	}
	for i, d := range got {
		if d == graph.Inf {
			r.Unreachable++
		} else if d > graph.Inf/2 {
			r.OK = false
			r.Err = fmt.Sprintf("node %d: near-Inf distance %d is neither finite nor the +Inf sentinel", i, d)
			return
		}
	}
}

func equalDists(got, want []int64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func hashInto(h interface{ Write([]byte) (int, error) }, dist []int64) {
	var buf [8]byte
	for _, d := range dist {
		for b := 0; b < 8; b++ {
			buf[b] = byte(uint64(d) >> (8 * b))
		}
		h.Write(buf[:])
	}
}
