// Package forest implements the deterministic distributed maximal spanning
// forest used throughout the paper: Theorem 2.2 (Boruvka in CONGEST:
// O(n log n) time, polylog congestion) and Theorem 3.1 (the low-energy
// adaptation: Õ(n) time, polylog energy). One code path serves both models
// because every step is statically scheduled.
//
// Structure of a phase (component count with outgoing edges shrinks by a
// constant factor per phase):
//
//  1. Every participant exchanges its component ID with its eligible
//     neighbors (1 round, 2 messages per edge).
//  2. Each component finds its minimum-EdgeID outgoing edge with a
//     depth-indexed sweep up its component tree and distributes it with a
//     sweep down (2 awake rounds per node per sweep — Section 3.1.1).
//  3. The endpoint owning the chosen edge (the "chooser") notifies the
//     other endpoint, which registers an incoming bridge.
//  4. The chooser pseudo-forest (component -> chosen target) is properly
//     colored with <= 6 colors via 4 Cole–Vishkin iterations; each
//     iteration is one bridge exchange plus two tree sweeps.
//  5. Six merge sub-steps, one per color: a component of color c asks its
//     target through the bridge; the target replies OK (join: the target is
//     stationary this sub-step), BUSY (the target itself is attempting to
//     move right now), or SELF (the bridge closed a mutual pair that
//     already merged). On OK the satellite adopts the target's identity:
//     a marker sweep up the old tree records the path from the bridgehead
//     to the old root (these parent pointers flip), and a broadcast sweep
//     down rebases every member's depth, component ID, color, and
//     outgoing-flag. Because targets never move while absorbing, depths are
//     consistent; because colors are proper along chooser pointers, a
//     component whose color is smaller than its target's always succeeds,
//     which yields the 1/6-progress bound behind the phase budget.
//
// Energy per node is O(1) per phase section (every wake is one of: the
// exchange, two rounds of a sweep, or a bridge round), giving O(log n)
// total — within Theorem 3.1's O(log^2 n) budget.
package forest

import (
	"fmt"
	"math/bits"
	"sort"

	"dsssp/internal/graph"
	"dsssp/internal/proto"
)

// Params configures one forest construction. All participants must pass
// identical Tag, StartRound, and SizeBound.
type Params struct {
	// Tag is the base message tag; the construction uses Tag..Tag+12.
	Tag uint64
	// StartRound is the common round at which the construction begins; all
	// participants must be at or before it.
	StartRound int64
	// SizeBound is an upper bound on the size of any connected component of
	// the participant subgraph (>= 1). Budgets derive from it.
	SizeBound int64
	// Eligible restricts the construction to a subgraph (nil = all edges).
	// Both endpoints of an edge must agree on its eligibility.
	Eligible func(i int) bool
}

// Result is one node's view of its component after the construction.
type Result struct {
	// Tree is the rooted spanning tree of this node's component.
	Tree proto.Tree
	// CompID identifies the component (the leader's node ID = Tree.Root).
	CompID graph.NodeID
	// Size is the number of nodes in the component.
	Size int64
}

// Message tag offsets.
const (
	tagExch = iota
	tagMinUp
	tagMinDown
	tagChosen
	tagColor
	tagCVUp
	tagCVDown
	tagReq
	tagAck
	tagAdoptUp
	tagAdoptDown
	tagSizeUp
	tagSizeDown
)

// ack verdicts.
const (
	ackOK = iota + 1
	ackBusy
	ackSelf
)

const numColors = 6 // Cole–Vishkin final palette after cvIters iterations
const cvIters = 4

type minVal struct {
	Valid bool
	Edge  graph.EdgeID
}

type ackBody struct {
	Verdict int
	Comp    graph.NodeID
	Color   int64
	HasOut  bool
	Depth   int64
}

type markerBody struct {
	Hops   int64
	Adopt  ackBody
	UDepth int64
}

type adoptDownBody struct {
	Noop        bool
	Adopt       ackBody
	UDepth      int64
	ParentDepth int64
}

// Phases returns the phase budget for a given component size bound:
// at least a 1/6 fraction of active components merges per phase, so
// 4*log2(S)+2 phases suffice (log base 6/5 of S, rounded up generously).
func Phases(sizeBound int64) int64 {
	if sizeBound < 2 {
		return 1
	}
	lg := int64(bits.Len64(uint64(sizeBound - 1))) // ceil(log2 S)
	return 4*lg + 2
}

func phaseLen(s int64) int64 { return 22*s + 68 }

// Duration returns the total number of rounds a construction with the given
// SizeBound occupies; every participant returns from Build exactly
// Duration(SizeBound) rounds after StartRound.
func Duration(sizeBound int64) int64 {
	return Phases(sizeBound)*phaseLen(sizeBound) + 2*(sizeBound+2) + 2
}

// node is the per-node construction state.
type node struct {
	mb  *proto.Mailbox
	p   Params
	s   int64 // SizeBound
	deg int

	eligible []bool

	compID   graph.NodeID
	color    int64
	hasOut   bool
	parent   int // nbIndex or -1
	children map[int]bool
	depth    int64

	nbComp     []graph.NodeID // per edge, neighbor's component this phase
	chosenEdge int            // my adjacency index of my component's chosen edge, or -1
	incoming   map[int]bool   // edges on which a chooser registered this phase

	// adopt bookkeeping (per sub-step)
	pathChild int
	pathHops  int64
	marker    *markerBody
}

func (f *node) tag(off int) uint64 { return f.p.Tag + uint64(off) }

func (f *node) tree() proto.Tree {
	t := proto.Tree{InTree: true, Root: f.compID, Parent: f.parent, Depth: f.depth}
	for ch := range f.children {
		t.Children = append(t.Children, ch)
	}
	sort.Ints(t.Children)
	return t
}

// Build runs the construction. Only participants call it; each returns its
// Result at round StartRound + Duration(SizeBound).
func Build(mb *proto.Mailbox, p Params) Result {
	if p.SizeBound < 1 {
		panic("forest: SizeBound must be >= 1")
	}
	f := &node{
		mb:         mb,
		p:          p,
		s:          p.SizeBound,
		deg:        mb.C.Degree(),
		compID:     mb.C.ID(),
		color:      int64(mb.C.ID()),
		parent:     -1,
		children:   make(map[int]bool),
		chosenEdge: -1,
	}
	f.eligible = make([]bool, f.deg)
	for i := 0; i < f.deg; i++ {
		f.eligible[i] = p.Eligible == nil || p.Eligible(i)
	}
	f.nbComp = make([]graph.NodeID, f.deg)

	phases := Phases(f.s)
	for ph := int64(0); ph < phases; ph++ {
		f.phase(p.StartRound + ph*phaseLen(f.s))
	}

	// Final size agreement.
	fin := p.StartRound + phases*phaseLen(f.s)
	agg, isRoot := proto.SweepUp(mb, f.tree(), f.tag(tagSizeUp), fin, f.s, int64(1),
		func(a, b any) any { return a.(int64) + b.(int64) })
	var rv any
	if isRoot {
		rv = agg
	}
	size := proto.SweepDown(mb, f.tree(), f.tag(tagSizeDown), fin+f.s+2, rv, nil).(int64)
	mb.AdvanceTo(p.StartRound + Duration(f.s))
	return Result{Tree: f.tree(), CompID: f.compID, Size: size}
}

func (f *node) phase(r0 int64) {
	mb := f.mb
	s := f.s

	// Colors restart from the (component-wide unique) component ID: CV
	// properness needs distinct inputs, and last phase's 6-color palette
	// is not distinct across components.
	f.color = int64(f.compID)

	// (1) Component-ID exchange.
	mb.AdvanceTo(r0)
	for i := 0; i < f.deg; i++ {
		if f.eligible[i] {
			mb.Send(i, f.tag(tagExch), f.compID)
		}
	}
	mb.SleepUntil(r0 + 1)
	for i := range f.nbComp {
		f.nbComp[i] = -1
	}
	for _, m := range mb.Take(f.tag(tagExch)) {
		f.nbComp[m.NbIndex] = m.Body.(graph.NodeID)
	}

	// (2) Minimum outgoing edge via two sweeps.
	mine := minVal{}
	for i := 0; i < f.deg; i++ {
		if f.eligible[i] && f.nbComp[i] >= 0 && f.nbComp[i] != f.compID {
			id := mb.C.EdgeID(i)
			if !mine.Valid || id < mine.Edge {
				mine = minVal{Valid: true, Edge: id}
			}
		}
	}
	combineMin := func(a, b any) any {
		x, y := a.(minVal), b.(minVal)
		if !x.Valid {
			return y
		}
		if !y.Valid {
			return x
		}
		if y.Edge < x.Edge {
			return y
		}
		return x
	}
	agg, isRoot := proto.SweepUp(mb, f.tree(), f.tag(tagMinUp), r0+2, s, mine, combineMin)
	var rv any
	if isRoot {
		rv = agg
	}
	chosen := proto.SweepDown(mb, f.tree(), f.tag(tagMinDown), r0+s+4, rv, nil).(minVal)
	f.hasOut = chosen.Valid
	f.chosenEdge = -1
	if chosen.Valid {
		for i := 0; i < f.deg; i++ {
			if f.eligible[i] && f.nbComp[i] >= 0 && f.nbComp[i] != f.compID && mb.C.EdgeID(i) == chosen.Edge {
				f.chosenEdge = i
			}
		}
	}

	// (3) Choice notification.
	a3 := r0 + 2*s + 6
	f.incoming = make(map[int]bool)
	mb.AdvanceTo(a3)
	if f.chosenEdge >= 0 {
		mb.Send(f.chosenEdge, f.tag(tagChosen), struct{}{})
	}
	mb.SleepUntil(a3 + 1)
	for _, m := range mb.Take(f.tag(tagChosen)) {
		f.incoming[m.NbIndex] = true
	}

	// (4) Cole–Vishkin coloring of the chooser pseudo-forest.
	a4 := r0 + 2*s + 8
	for t := 0; t < cvIters; t++ {
		f.cvIter(a4 + int64(t)*(2*s+6))
	}
	if f.hasOut && f.color >= numColors {
		panic(fmt.Sprintf("forest: node %d: CV color %d out of palette", mb.C.ID(), f.color))
	}

	// (5) Merge sub-steps, one per color.
	a5 := a4 + cvIters*(2*s+6)
	for c := int64(0); c < numColors; c++ {
		f.subStep(c, a5+c*(2*s+6))
	}
}

// cvIter performs one Cole–Vishkin iteration starting at round b: targets
// send their component's current color over incoming bridges; the chooser
// computes the new color; two sweeps distribute it component-wide.
func (f *node) cvIter(b int64) {
	mb := f.mb
	s := f.s
	if len(f.incoming) > 0 || f.chosenEdge >= 0 {
		mb.AdvanceTo(b)
		for e := range f.incoming {
			mb.Send(e, f.tag(tagColor), f.color)
		}
		mb.SleepUntil(b + 1)
	}
	if !f.hasOut {
		// Static components keep their color; they never move, so their
		// palette membership is irrelevant (see package comment).
		mb.Take(f.tag(tagColor))
		return
	}
	var myNew any
	if f.chosenEdge >= 0 {
		msgs := mb.Take(f.tag(tagColor))
		var tColor int64 = -1
		for _, m := range msgs {
			if m.NbIndex == f.chosenEdge {
				tColor = m.Body.(int64)
			}
		}
		if tColor < 0 {
			panic(fmt.Sprintf("forest: node %d: missing target color on bridge", mb.C.ID()))
		}
		myNew = cvStep(f.color, tColor)
	}
	up, isRoot := proto.SweepUp(mb, f.tree(), f.tag(tagCVUp), b+2, s, myNew, pickNonNil)
	var rv any
	if isRoot {
		rv = up
	}
	f.color = proto.SweepDown(mb, f.tree(), f.tag(tagCVDown), b+s+4, rv, nil).(int64)
}

// cvStep maps (mine, target) to the next color. When the colors coincide
// (possible only against a static target, which never conflicts), any
// self-derived bit keeps properness along active pointers.
func cvStep(mine, target int64) int64 {
	if mine == target {
		return mine & 1
	}
	i := int64(bits.TrailingZeros64(uint64(mine ^ target)))
	return 2*i + ((mine >> i) & 1)
}

func pickNonNil(a, b any) any {
	if a == nil {
		return b
	}
	return a
}

// subStep executes merge sub-step c starting at round sc.
func (f *node) subStep(c, sc int64) {
	mb := f.mb
	s := f.s
	attempting := f.hasOut && f.color == c
	chooserNow := attempting && f.chosenEdge >= 0

	if chooserNow || len(f.incoming) > 0 {
		mb.AdvanceTo(sc)
		if chooserNow {
			mb.Send(f.chosenEdge, f.tag(tagReq), f.compID)
		}
		mb.SleepUntil(sc + 1)
		for _, m := range mb.Take(f.tag(tagReq)) {
			switch {
			case m.Body.(graph.NodeID) == f.compID:
				mb.Send(m.NbIndex, f.tag(tagAck), ackBody{Verdict: ackSelf})
			case f.hasOut && f.color == c:
				mb.Send(m.NbIndex, f.tag(tagAck), ackBody{Verdict: ackBusy})
			default:
				mb.Send(m.NbIndex, f.tag(tagAck), ackBody{
					Verdict: ackOK, Comp: f.compID, Color: f.color, HasOut: f.hasOut, Depth: f.depth,
				})
				f.children[m.NbIndex] = true
			}
		}
	}
	if !attempting {
		return
	}

	// Adopt sweep A (marker up the old tree, old-depth schedule).
	f.marker = nil
	f.pathChild = -1
	f.pathHops = 0
	upStart := sc + 2
	sendRound := upStart + s - f.depth
	if len(f.children) > 0 {
		mb.AdvanceTo(sendRound - 1)
		mb.SleepUntil(sendRound)
	} else {
		mb.AdvanceTo(sendRound)
	}
	if chooserNow {
		// The chooser is awake at sc+1, so the ACK (sent in round sc+1) is
		// in the mailbox by now.
		for _, m := range mb.Take(f.tag(tagAck)) {
			ack := m.Body.(ackBody)
			if ack.Verdict == ackOK {
				f.marker = &markerBody{Hops: 0, Adopt: ack, UDepth: ack.Depth + 1}
			}
		}
	}
	for _, m := range mb.Take(f.tag(tagAdoptUp)) {
		mk := m.Body.(markerBody)
		f.pathChild = m.NbIndex
		f.pathHops = mk.Hops
		f.marker = &markerBody{Hops: mk.Hops, Adopt: mk.Adopt, UDepth: mk.UDepth}
	}
	if f.marker != nil && f.parent >= 0 {
		mb.Send(f.parent, f.tag(tagAdoptUp), markerBody{
			Hops: f.marker.Hops + 1, Adopt: f.marker.Adopt, UDepth: f.marker.UDepth,
		})
	}

	// Adopt sweep B (broadcast down the old tree, old-depth schedule).
	dwStart := sc + s + 3
	var body adoptDownBody
	if f.parent >= 0 {
		recvRound := dwStart + f.depth - 1
		mb.AdvanceTo(recvRound)
		mb.SleepUntil(recvRound + 1)
		msgs := mb.Take(f.tag(tagAdoptDown))
		if len(msgs) == 0 {
			panic(fmt.Sprintf("forest: node %d: missing adopt broadcast", mb.C.ID()))
		}
		body = msgs[0].Body.(adoptDownBody)
	} else {
		mb.AdvanceTo(dwStart)
		if f.marker == nil {
			body = adoptDownBody{Noop: true}
		} else {
			body = adoptDownBody{Adopt: f.marker.Adopt, UDepth: f.marker.UDepth}
		}
	}
	if body.Noop {
		for ch := range f.children {
			mb.Send(ch, f.tag(tagAdoptDown), body)
		}
		return
	}
	onPath := f.pathChild >= 0 || (f.marker != nil && f.pathChild < 0 && chooserNow)
	var newDepth int64
	if onPath {
		newDepth = body.UDepth + f.pathHops
	} else {
		newDepth = body.ParentDepth + 1
	}
	fwd := body
	fwd.ParentDepth = newDepth
	for ch := range f.children {
		mb.Send(ch, f.tag(tagAdoptDown), fwd)
	}
	// Apply the move: flip the path, adopt identity.
	oldParent := f.parent
	switch {
	case chooserNow && f.marker != nil:
		f.parent = f.chosenEdge
		if oldParent >= 0 {
			f.children[oldParent] = true
		}
	case f.pathChild >= 0:
		f.parent = f.pathChild
		delete(f.children, f.pathChild)
		if oldParent >= 0 {
			f.children[oldParent] = true
		}
	}
	f.compID = body.Adopt.Comp
	f.color = body.Adopt.Color
	f.hasOut = body.Adopt.HasOut
	f.depth = newDepth
	f.chosenEdge = -1
}
