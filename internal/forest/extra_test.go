package forest

import (
	"testing"

	"dsssp/internal/graph"
	"dsssp/internal/proto"
	"dsssp/internal/simnet"
)

// Dumbbell: two dense regions joined by a long bridge — stressing both
// fast clique merging and long-chain merging.
func TestForestDumbbell(t *testing.T) {
	g := graph.Dumbbell(8, 12, graph.UnitWeights)
	rs, _ := runForest(t, g, simnet.Congest)
	verifyForest(t, g, rs)
}

// Grid at moderate scale in the sleeping model.
func TestForestGridSleeping(t *testing.T) {
	g := graph.Grid2D(8, 8, graph.UnitWeights)
	rs, met := runForest(t, g, simnet.Sleeping)
	verifyForest(t, g, rs)
	if met.LostMessages != 0 {
		t.Fatalf("lost %d messages", met.LostMessages)
	}
}

// A larger stress in CONGEST: 512 nodes, denser graph.
func TestForestLargeRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("large forest stress")
	}
	g := graph.RandomConnected(512, 1024, graph.UnitWeights, 21)
	rs, _ := runForest(t, g, simnet.Congest)
	verifyForest(t, g, rs)
}

// Trees from two different SizeBound values must both be correct (budgets
// only change the schedule, not the result).
func TestForestSizeBoundSlack(t *testing.T) {
	g := graph.Cycle(12, graph.UnitWeights)
	for _, bound := range []int64{12, 40} {
		eng := simnet.New(g, simnet.Config{Model: simnet.Congest})
		res, err := eng.Run(func(c *simnet.Ctx) {
			mb := proto.NewMailbox(c)
			r := Build(mb, Params{Tag: 1, StartRound: 0, SizeBound: bound})
			c.SetOutput(r)
		})
		if err != nil {
			t.Fatalf("bound %d: %v", bound, err)
		}
		rs := make([]Result, g.N())
		for i, v := range res.Outputs {
			rs[i] = v.(Result)
		}
		verifyForest(t, g, rs)
	}
}

// Determinism across runs.
func TestForestDeterministic(t *testing.T) {
	g := graph.RandomConnected(48, 64, graph.UnitWeights, 5)
	a, ma := runForest(t, g, simnet.Congest)
	b, mb := runForest(t, g, simnet.Congest)
	for v := range a {
		if a[v].CompID != b[v].CompID || a[v].Tree.Depth != b[v].Tree.Depth {
			t.Fatalf("node %d differs across runs", v)
		}
	}
	if ma.Messages != mb.Messages {
		t.Fatalf("message counts differ: %d vs %d", ma.Messages, mb.Messages)
	}
}
