package forest

import (
	"math/bits"
	"testing"
	"testing/quick"

	"dsssp/internal/graph"
	"dsssp/internal/proto"
	"dsssp/internal/simnet"
)

// runForest builds a maximal spanning forest over the whole graph and
// returns per-node results plus metrics.
func runForest(t *testing.T, g *graph.Graph, model simnet.Model) ([]Result, simnet.Metrics) {
	t.Helper()
	eng := simnet.New(g, simnet.Config{Model: model})
	res, err := eng.Run(func(c *simnet.Ctx) {
		mb := proto.NewMailbox(c)
		r := Build(mb, Params{Tag: 1, StartRound: 0, SizeBound: int64(c.N())})
		c.SetOutput(r)
	})
	if err != nil {
		t.Fatalf("forest run failed: %v", err)
	}
	out := make([]Result, g.N())
	for i, v := range res.Outputs {
		out[i] = v.(Result)
	}
	return out, res.Metrics
}

// verifyForest checks every structural property of a spanning forest result.
func verifyForest(t *testing.T, g *graph.Graph, rs []Result) {
	t.Helper()
	comp, k := graph.Components(g)
	// Component sizes.
	sizes := make(map[int]int64)
	for v := range comp {
		sizes[comp[v]]++
	}
	// Leaders: exactly one root per component, compID equals its node ID.
	rootsSeen := make(map[int]graph.NodeID)
	for v, r := range rs {
		if !r.Tree.InTree {
			t.Fatalf("node %d not in tree", v)
		}
		if r.Size != sizes[comp[v]] {
			t.Fatalf("node %d size=%d, want %d", v, r.Size, sizes[comp[v]])
		}
		if r.Tree.Parent < 0 {
			if prev, ok := rootsSeen[comp[v]]; ok {
				t.Fatalf("component %d has two roots: %d and %d", comp[v], prev, v)
			}
			rootsSeen[comp[v]] = graph.NodeID(v)
			if r.CompID != graph.NodeID(v) {
				t.Fatalf("root %d has compID %d", v, r.CompID)
			}
			if r.Tree.Depth != 0 {
				t.Fatalf("root %d has depth %d", v, r.Tree.Depth)
			}
		}
	}
	if len(rootsSeen) != k {
		t.Fatalf("found %d roots, want %d components", len(rootsSeen), k)
	}
	// Every node agrees with its component's root on compID, and parent
	// links decrease depth by exactly 1.
	for v, r := range rs {
		if r.CompID != rs[rootsSeen[comp[v]]].CompID {
			t.Fatalf("node %d compID %d disagrees with root", v, r.CompID)
		}
		if r.Tree.Parent >= 0 {
			p := g.Adj(graph.NodeID(v))[r.Tree.Parent].To
			if comp[int(p)] != comp[v] {
				t.Fatalf("node %d parent %d in different component", v, p)
			}
			if rs[p].Tree.Depth != r.Tree.Depth-1 {
				t.Fatalf("node %d depth %d but parent %d depth %d", v, r.Tree.Depth, p, rs[p].Tree.Depth)
			}
		}
	}
	// Children lists mirror parent pointers exactly.
	type edgeKey struct{ parent, child graph.NodeID }
	childOf := make(map[edgeKey]bool)
	for v, r := range rs {
		for _, ch := range r.Tree.Children {
			childOf[edgeKey{graph.NodeID(v), g.Adj(graph.NodeID(v))[ch].To}] = true
		}
	}
	nParentLinks := 0
	for v, r := range rs {
		if r.Tree.Parent >= 0 {
			p := g.Adj(graph.NodeID(v))[r.Tree.Parent].To
			if !childOf[edgeKey{p, graph.NodeID(v)}] {
				t.Fatalf("node %d's parent %d does not list it as child", v, p)
			}
			nParentLinks++
		}
	}
	if len(childOf) != nParentLinks {
		t.Fatalf("children links %d != parent links %d", len(childOf), nParentLinks)
	}
	// Parent links per component = size-1 => spanning tree (acyclic by the
	// depth-decrease property, connected by counting).
	for cid, root := range rootsSeen {
		links := 0
		for v := range comp {
			if comp[v] == cid && rs[v].Tree.Parent >= 0 {
				links++
			}
		}
		if int64(links) != sizes[cid]-1 {
			t.Fatalf("component of root %d has %d parent links, want %d", root, links, sizes[cid]-1)
		}
	}
}

func TestForestPath(t *testing.T) {
	g := graph.Path(9, graph.UnitWeights)
	rs, _ := runForest(t, g, simnet.Congest)
	verifyForest(t, g, rs)
}

func TestForestCycle(t *testing.T) {
	g := graph.Cycle(8, graph.UnitWeights)
	rs, _ := runForest(t, g, simnet.Congest)
	verifyForest(t, g, rs)
}

func TestForestStar(t *testing.T) {
	g := graph.Star(10, graph.UnitWeights)
	rs, _ := runForest(t, g, simnet.Congest)
	verifyForest(t, g, rs)
}

func TestForestSingleNode(t *testing.T) {
	g := graph.New(1)
	rs, _ := runForest(t, g, simnet.Congest)
	if rs[0].Size != 1 || rs[0].CompID != 0 {
		t.Fatalf("singleton result %+v", rs[0])
	}
}

func TestForestDisconnected(t *testing.T) {
	g := graph.Disconnected(3, 7, 3, graph.UnitWeights, 11)
	rs, _ := runForest(t, g, simnet.Congest)
	verifyForest(t, g, rs)
}

func TestForestRandomMany(t *testing.T) {
	f := func(seed int64, nRaw uint8, extraRaw uint8) bool {
		n := int(nRaw%40) + 2
		g := graph.RandomConnected(n, int(extraRaw%60), graph.UnitWeights, seed)
		rs, _ := runForest(t, g, simnet.Congest)
		verifyForest(t, g, rs)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestForestSleepingMatchesCongest(t *testing.T) {
	g := graph.Clusters(4, 8, 6, graph.UnitWeights, 5)
	rsC, _ := runForest(t, g, simnet.Congest)
	rsS, metS := runForest(t, g, simnet.Sleeping)
	verifyForest(t, g, rsS)
	for v := range rsC {
		if rsC[v].CompID != rsS[v].CompID || rsC[v].Tree.Depth != rsS[v].Tree.Depth {
			t.Fatalf("node %d differs across models: %+v vs %+v", v, rsC[v], rsS[v])
		}
	}
	if metS.LostMessages != 0 {
		t.Fatalf("sleeping forest lost %d messages", metS.LostMessages)
	}
}

func TestForestEnergyPolylog(t *testing.T) {
	// Theorem 3.1 shape: max awake rounds must scale ~ log^2 n, far below
	// the running time.
	for _, n := range []int{64, 256} {
		g := graph.RandomConnected(n, n, graph.UnitWeights, 3)
		rs, met := runForest(t, g, simnet.Sleeping)
		verifyForest(t, g, rs)
		lg := int64(bits.Len(uint(n)))
		budget := 8 * lg * lg // generous constant on log^2 n
		if met.MaxAwake > budget {
			t.Fatalf("n=%d: MaxAwake=%d exceeds %d (log^2 budget)", n, met.MaxAwake, budget)
		}
		if met.MaxAwake*4 > met.Rounds {
			t.Fatalf("n=%d: energy %d not far below time %d", n, met.MaxAwake, met.Rounds)
		}
	}
}

func TestForestCongestionPolylog(t *testing.T) {
	for _, n := range []int{64, 256} {
		g := graph.RandomConnected(n, 2*n, graph.UnitWeights, 7)
		rs, met := runForest(t, g, simnet.Congest)
		verifyForest(t, g, rs)
		lg := int64(bits.Len(uint(n)))
		if met.MaxEdgeMessages > 40*lg {
			t.Fatalf("n=%d: per-edge congestion %d exceeds 40*log n", n, met.MaxEdgeMessages)
		}
	}
}

func TestForestEligibleSubgraph(t *testing.T) {
	// Restrict to even-weight edges: the forest must span the components of
	// the eligible subgraph only.
	g := graph.New(6)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3) // ineligible bridge
	g.AddEdge(3, 4, 2)
	g.AddEdge(4, 5, 2)
	g.SortAdj()
	eng := simnet.New(g, simnet.Config{Model: simnet.Congest})
	res, err := eng.Run(func(c *simnet.Ctx) {
		mb := proto.NewMailbox(c)
		r := Build(mb, Params{
			Tag: 1, StartRound: 0, SizeBound: int64(c.N()),
			Eligible: func(i int) bool { return c.Weight(i)%2 == 0 },
		})
		c.SetOutput(r)
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(v int) Result { return res.Outputs[v].(Result) }
	if get(0).CompID != get(2).CompID || get(3).CompID != get(5).CompID {
		t.Fatal("eligible components not merged")
	}
	if get(0).CompID == get(3).CompID {
		t.Fatal("ineligible bridge was used")
	}
	if get(0).Size != 3 || get(3).Size != 3 {
		t.Fatalf("sizes %d,%d want 3,3", get(0).Size, get(3).Size)
	}
}

func TestDurationIsExact(t *testing.T) {
	// Build must return exactly at StartRound+Duration for every node.
	g := graph.Grid2D(4, 4, graph.UnitWeights)
	eng := simnet.New(g, simnet.Config{Model: simnet.Congest})
	want := int64(100) + Duration(16)
	res, err := eng.Run(func(c *simnet.Ctx) {
		mb := proto.NewMailbox(c)
		mb.SleepUntilAtLeast(5)
		Build(mb, Params{Tag: 1, StartRound: 100, SizeBound: 16})
		c.SetOutput(c.Round())
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range res.Outputs {
		if out.(int64) != want {
			t.Fatalf("node %d returned at %v, want %d", v, out, want)
		}
	}
}

func TestCVStepProperness(t *testing.T) {
	// For any distinct pair, one CV step yields colors that differ from the
	// partner's new color under any choice of the partner's own bit.
	f := func(a, b uint16) bool {
		x, y := int64(a), int64(b)
		if x == y {
			return true
		}
		nx := cvStep(x, y)
		ny := cvStep(y, x)
		return nx != ny
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPhasesMonotone(t *testing.T) {
	if Phases(1) != 1 {
		t.Fatalf("Phases(1)=%d", Phases(1))
	}
	last := int64(0)
	for s := int64(2); s < 5000; s *= 2 {
		p := Phases(s)
		if p < last {
			t.Fatalf("Phases not monotone at %d", s)
		}
		last = p
	}
}
