// Command dsssp-diff is the regression gate over dsssp-bench JSON reports:
// it aligns the scenarios of two (or a chain of) BENCH_*.json artifacts by
// name, prints a delta table of rounds / per-edge congestion / awake rounds
// / message bits and their measured/envelope ratios, and exits nonzero
// when any scenario regresses beyond the configured thresholds — so CI can
// compare a fresh sweep against a checked-in baseline and block the merge.
// The per-phase round breakdowns gate individually too (-phase-threshold):
// a slowdown localized in one pipeline stage blocks even when the scenario
// total stays inside -threshold.
//
// Usage:
//
//	dsssp-diff old.json new.json                  # delta table, gate at +10%
//	dsssp-diff -threshold 0.05 old.json new.json  # tighter ratio gate
//	dsssp-diff -all old.json new.json             # include unchanged rows
//	dsssp-diff -json - old.json new.json          # machine-readable diff
//	dsssp-diff a.json b.json c.json               # chain: a→b, then b→c
//	dsssp-diff -trend trend.md a.json b.json c.json  # + ratio time series
//
// A chain writes one labeled markdown section per pair; -json emits a
// single Diff object for one pair and a JSON array for a chain. -trend
// renders the whole chain as one history-aware table — per-scenario and
// per-phase measured/envelope ratio series with end-to-end drift (the same
// view a running dsssp-serve exposes at /v1/trends).
//
// Exit status: 0 when every comparison passes, 1 on a regression, 2 on a
// usage or input error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dsssp/internal/benchdiff"
	"dsssp/internal/harness"
)

func main() {
	var (
		threshold     = flag.Float64("threshold", 0.10, "max tolerated relative worsening of any envelope ratio (negative disables)")
		phaseWorsen   = flag.Float64("phase-threshold", 0.25, "max tolerated relative worsening of any per-phase rounds/envelope ratio (negative disables)")
		phaseMinDelta = flag.Int64("phase-min-delta", 16, "minimum absolute per-phase rounds movement before -phase-threshold gates")
		allowFail     = flag.Bool("allow-new-failures", false, "do not gate on scenarios that newly fail verification")
		failRemoved   = flag.Bool("fail-removed", false, "treat scenarios missing from the newer report as regressions")
		showAll       = flag.Bool("all", false, "list unchanged scenarios too")
		jsonOut       = flag.String("json", "", "write the machine-readable diff to this file ('-' for stdout)")
		mdOut         = flag.String("markdown", "-", "write the delta table to this file ('-' for stdout, '' to suppress)")
		trendOut      = flag.String("trend", "", "write the chain's trend table (ratio time series over all reports) to this file ('-' for stdout)")
		quiet         = flag.Bool("q", false, "suppress the delta table (same as -markdown '')")
	)
	flag.Parse()
	// When stdout carries the machine-readable diff, drop the *default*
	// markdown-to-stdout target so the stream stays parseable; an explicit
	// `-markdown -` still wins (the user asked for both).
	if *jsonOut == "-" {
		mdExplicit := false
		flag.Visit(func(f *flag.Flag) { mdExplicit = mdExplicit || f.Name == "markdown" })
		if !mdExplicit {
			*mdOut = ""
		}
	}
	paths := flag.Args()
	if len(paths) < 2 {
		fmt.Fprintln(os.Stderr, "dsssp-diff: need at least two report files (old.json new.json ...)")
		flag.Usage()
		os.Exit(2)
	}

	th := benchdiff.Thresholds{
		EnvelopeWorsen:   *threshold,
		PhaseWorsen:      *phaseWorsen,
		PhaseMinDelta:    *phaseMinDelta,
		AllowNewFailures: *allowFail,
		FailOnRemoved:    *failRemoved,
	}

	reports := make([]harness.Report, len(paths))
	for i, p := range paths {
		rep, err := readReport(p)
		if err != nil {
			die(2, err)
		}
		reports[i] = rep
	}

	// Compare every consecutive pair first, then write: a chained -json
	// target gets one valid document (an array), never concatenated
	// objects, and a chained -markdown target gets a labeled section per
	// pair.
	diffs := make([]benchdiff.Diff, 0, len(paths)-1)
	ok := true
	for i := 0; i+1 < len(paths); i++ {
		diff, err := benchdiff.Compare(reports[i], reports[i+1], th)
		if err != nil {
			die(2, fmt.Errorf("%s vs %s: %w", paths[i], paths[i+1], err))
		}
		diffs = append(diffs, diff)
		if !diff.OK {
			ok = false
		}
	}

	if !*quiet && *mdOut != "" {
		if err := writeTo(*mdOut, func(f *os.File) error {
			for i, diff := range diffs {
				if len(diffs) > 1 {
					fmt.Fprintf(f, "<!-- %s → %s -->\n", paths[i], paths[i+1])
				}
				if err := benchdiff.WriteMarkdown(f, diff, !*showAll); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			die(2, err)
		}
	}
	if *trendOut != "" {
		// The trend is the thin chaining view: the same reports, rendered
		// as ratio time series instead of pairwise deltas. Report paths
		// double as the column labels.
		trend, err := benchdiff.Chain(reports, paths, th)
		if err != nil {
			die(2, err)
		}
		if err := writeTo(*trendOut, func(f *os.File) error {
			return benchdiff.WriteTrendMarkdown(f, trend)
		}); err != nil {
			die(2, err)
		}
	}
	if *jsonOut != "" {
		if err := writeTo(*jsonOut, func(f *os.File) error {
			if len(diffs) == 1 {
				return benchdiff.WriteJSON(f, diffs[0])
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			return enc.Encode(diffs)
		}); err != nil {
			die(2, err)
		}
	}
	for i, diff := range diffs {
		if !diff.OK {
			fmt.Fprintf(os.Stderr, "dsssp-diff: %d scenario(s) regressed between %s and %s\n",
				diff.Regressed, paths[i], paths[i+1])
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func readReport(path string) (harness.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return harness.Report{}, err
	}
	defer f.Close()
	rep, err := harness.ReadJSON(f)
	if err != nil {
		return harness.Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func writeTo(path string, write func(*os.File) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func die(code int, err error) {
	fmt.Fprintln(os.Stderr, "dsssp-diff:", err)
	os.Exit(code)
}
