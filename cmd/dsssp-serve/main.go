// Command dsssp-serve is the long-running serving daemon over the dsssp
// stack: an HTTP API answering SSSP/APSP/path queries from a bounded
// worker pool behind a content-addressed result cache, running scenario
// sweeps as cancellable async jobs whose reports accumulate in an
// append-only history directory, and serving history-aware bench trends
// chained through the same machinery as cmd/dsssp-diff.
//
// Usage:
//
//	dsssp-serve                             # serve on :8080, history in ./dsssp-history
//	dsssp-serve -addr :9000 -history /var/lib/dsssp -cache-bytes 268435456
//	dsssp-serve -rev $(git rev-parse --short HEAD)   # label stored reports
//	dsssp-serve -debug-addr 127.0.0.1:6060           # pprof + metrics debug listener
//	dsssp-serve -load http://localhost:8080          # hammer a running server
//
// Endpoints:
//
//	POST   /v1/sssp        exact SSSP (graph inline or by generator spec; ?trace=1 for phases)
//	POST   /v1/apsp        all-pairs via the Section 1.1 composition (?trace=1 for phases)
//	POST   /v1/path        distance + one shortest path source→target
//	POST   /v1/sweeps      submit an async scenario sweep → job ID
//	GET    /v1/sweeps      list jobs; GET /v1/sweeps/{id} live progress
//	DELETE /v1/sweeps/{id} cancel a job
//	GET    /v1/trends      envelope-ratio time series over stored reports
//	GET    /v1/stats       cache/pool/jobs/store snapshot
//	GET    /metrics        Prometheus text exposition
//	GET    /healthz        liveness
//
// With -debug-addr set, a second listener (keep it private) serves
// net/http/pprof under /debug/pprof/, a second /metrics mount, and the
// trace flight recorder under /debug/traces (list with filters, single
// trace by ID, JSONL export).
//
// Every request gets an X-Dsssp-Request-Id (the request's trace ID unless
// the client supplied its own), echoed in error JSON bodies and in the
// per-request completion log line (structured slog JSON on stderr), and a
// W3C traceparent is echoed/minted so client traces link to server spans.
//
// The process shuts down cleanly on SIGINT/SIGTERM: the listener drains,
// running sweep jobs are cancelled (partial sweeps are not stored), and
// the exit status is 0 — which is what the CI smoke job asserts.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dsssp/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		history     = flag.String("history", "dsssp-history", "append-only bench history directory")
		cacheBytes  = flag.Int64("cache-bytes", 64<<20, "result cache byte budget")
		graphBytes  = flag.Int64("graph-bytes", 256<<20, "dynamic-graph registry byte budget (registered graphs + per-source traces)")
		registryDir = flag.String("registry-dir", "", "spill registered graphs and their traces to this directory and warm-start from it on boot (empty = in-memory only)")
		repairMax   = flag.Float64("repair-max-affected", 0.5, "repair a dirty source only while the affected region stays under this fraction of the graph (0 = no cutoff, negative = disable repair)")
		workers     = flag.Int("workers", 0, "query worker pool size (0 = NumCPU)")
		intraCap    = flag.Int("max-intra", 0, "cap on a query's intra-round simulation workers (0 = NumCPU, 1 = force sequential; results are byte-identical either way)")
		sweeps      = flag.Int("max-sweeps", 1, "sweep jobs allowed to run concurrently")
		rev         = flag.String("rev", "", "git revision label for stored reports (default: git rev-parse --short HEAD, else \"unknown\")")
		maxN        = flag.Int("max-n", 4096, "largest accepted graph size")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof, /metrics, and /debug/traces on this private address (empty = disabled)")
		traceSample = flag.Float64("trace-sample", 1.0, "fraction of requests recorded into the trace flight recorder (1 = all, 0 = none; unsampled requests pay no tracing cost)")
		traceRecent = flag.Int("trace-recent", 256, "flight recorder: recent traces kept")
		traceKept   = flag.Int("trace-retained", 64, "flight recorder: slow/errored traces kept beyond the recent window")
		slowQuery   = flag.Duration("slow-query", time.Second, "log requests slower than this at Warn")
		logLevel    = flag.String("log-level", "info", "minimum log level (debug, info, warn, error)")
		load        = flag.String("load", "", "run the service-load workload against this base URL instead of serving")
		loadDynamic = flag.String("load-dynamic", "", "run the dynamic-graph workload (register, interleave PATCHes with per-source queries) against this base URL instead of serving")
		loadReqs    = flag.Int("load-requests", 200, "service-load: total requests")
		loadConc    = flag.Int("load-concurrency", 8, "service-load: concurrent clients")
		loadGraphs  = flag.Int("load-graphs", 4, "service-load: distinct graphs (requests >> graphs ⇒ cache-hit steady state)")
		loadN       = flag.Int("load-n", 48, "service-load: graph size")
		loadSrcs    = flag.Int("load-sources", 32, "dynamic load: distinct query sources")
		loadPatchEv = flag.Int("load-patch-every", 50, "dynamic load: one single-edge PATCH per this many queries")
		loadSeed    = flag.Int64("load-seed", 1, "dynamic load: graph and patch-stream seed")
		loadExpect  = flag.Bool("load-expect-repair", false, "dynamic load: fail unless at least one query was served by affected-region repair (when patches dirtied repairable sources)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *load != "" {
		runLoad(ctx, *load, service.LoadOptions{
			Concurrency: *loadConc, Requests: *loadReqs, Graphs: *loadGraphs, N: *loadN,
		})
		return
	}
	if *loadDynamic != "" {
		runLoadDynamic(ctx, *loadDynamic, service.DynamicLoadOptions{
			Concurrency: *loadConc, Requests: *loadReqs, N: *loadN,
			Sources: *loadSrcs, PatchEvery: *loadPatchEv, Seed: *loadSeed,
			ExpectRepair: *loadExpect,
		})
		return
	}

	if *rev == "" {
		*rev = gitRev()
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		die(fmt.Errorf("bad -log-level %q: %w", *logLevel, err))
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	srv, err := service.New(service.Config{
		HistoryDir:          *history,
		CacheBytes:          *cacheBytes,
		GraphBytes:          *graphBytes,
		RegistryDir:         *registryDir,
		RepairMaxAffected:   *repairMax,
		Workers:             *workers,
		MaxIntraWorkers:     *intraCap,
		MaxConcurrentSweeps: *sweeps,
		Rev:                 *rev,
		MaxN:                *maxN,
		Logger:              logger,
		SlowQueryThreshold:  *slowQuery,
		TraceSampleRate:     resolveSampleRate(*traceSample),
		TraceRecent:         *traceRecent,
		TraceRetained:       *traceKept,
	})
	if err != nil {
		die(err)
	}

	if *debugAddr != "" {
		// The debug listener is intentionally separate from the API
		// listener: pprof exposes heap contents and must never ride on the
		// public address. DefaultServeMux is avoided on both.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/metrics", srv.Metrics().Handler())
		dmux.Handle("/debug/traces", srv.TraceHandler())
		dmux.Handle("/debug/traces/", srv.TraceHandler())
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				logger.Error("debug listener failed", "addr", *debugAddr, "error", err.Error())
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "history", srv.Store().Dir(), "rev", *rev)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		die(err) // the listener failed outright (port taken, …)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests (bounded),
	// then cancel sweep jobs and wait for their goroutines.
	logger.Info("signal received, shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("draining listener", "error", err.Error())
	}
	srv.Close()
	logger.Info("clean shutdown")
}

// runLoad drives the service-load workload and prints the JSON report.
func runLoad(ctx context.Context, baseURL string, opt service.LoadOptions) {
	rep, err := service.RunLoad(ctx, nil, strings.TrimRight(baseURL, "/"), opt)
	if err != nil && !errors.Is(err, context.Canceled) {
		die(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
	fmt.Fprintf(os.Stderr, "dsssp-serve: load: %d requests, %.0f%% cache hits, %.1f req/s, %d errors\n",
		rep.Requests, 100*rep.HitRate, rep.RPS, rep.Errors)
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// runLoadDynamic drives the dynamic-graph workload and prints the JSON
// report: reuse rate plus the reused/repaired/recomputed latency split.
func runLoadDynamic(ctx context.Context, baseURL string, opt service.DynamicLoadOptions) {
	rep, err := service.RunLoadDynamic(ctx, nil, strings.TrimRight(baseURL, "/"), opt)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
	fmt.Fprintf(os.Stderr,
		"dsssp-serve: dynamic load: %d requests, %d patches, %.0f%% reuse: %d reused (p50 %.2fms), %d repaired (p50 %.2fms), %d recomputed (p50 %.2fms), %d errors\n",
		rep.Requests, rep.Patches, 100*rep.ReuseRate,
		rep.Reused, float64(rep.ReusedP50NS)/1e6,
		rep.Repaired, float64(rep.RepairedP50NS)/1e6,
		rep.Recomputed, float64(rep.RecomputedP50NS)/1e6, rep.Errors)
	if err != nil && !errors.Is(err, context.Canceled) {
		die(err)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// resolveSampleRate maps the flag's "0 = none" convention onto the
// Config's "0 = default, negative = none" one.
func resolveSampleRate(rate float64) float64 {
	if rate <= 0 {
		return -1
	}
	return rate
}

// gitRev best-effort resolves the working tree's short revision for
// labeling stored reports; services deployed from tarballs pass -rev.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "dsssp-serve:", err)
	os.Exit(1)
}
