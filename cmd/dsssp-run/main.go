// Command dsssp-run executes one algorithm on a generated graph and prints
// distances (optionally) and the complexity metrics.
//
// Usage:
//
//	dsssp-run -alg sssp -model congest -family random -n 256 -maxw 16 -source 0
//	dsssp-run -alg bfs -model sleeping -family path -n 512 -threshold 511
//	dsssp-run -alg apsp -n 64
package main

import (
	"flag"
	"fmt"
	"os"

	"dsssp"
	"dsssp/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dsssp-run:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		alg       = flag.String("alg", "sssp", "algorithm: sssp | bfs | apsp")
		model     = flag.String("model", "congest", "model: congest | sleeping")
		family    = flag.String("family", "random", "graph family (path|cycle|tree|grid|random|cluster|star|expander|barbell|powerlaw|bfgadget|disconnected)")
		n         = flag.Int("n", 128, "number of nodes")
		maxw      = flag.Int64("maxw", 8, "max edge weight (1 = unweighted)")
		seed      = flag.Int64("seed", 1, "generator / scheduling seed")
		source    = flag.Int("source", 0, "SSSP source")
		threshold = flag.Int64("threshold", -1, "BFS threshold (-1: n-1)")
		printDist = flag.Bool("dist", false, "print distances")
		graphFile = flag.String("graph", "", "read the graph from an edge-list file instead of generating one")
		dotOut    = flag.String("dot", "", "write the graph (with SSSP distances) as Graphviz DOT to this file")
	)
	flag.Parse()

	var g *graph.Graph
	if *graphFile != "" {
		f, err := os.Open(*graphFile)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = graph.ReadEdgeList(f)
		if err != nil {
			return err
		}
	} else {
		w := graph.UnitWeights
		if *maxw > 1 {
			w = graph.UniformWeights(*maxw, *seed)
		}
		g = graph.Make(graph.Family(*family), *n, w, *seed)
	}
	opts := &dsssp.Options{}
	switch *model {
	case "congest":
		opts.Model = dsssp.ModelCongest
	case "sleeping":
		opts.Model = dsssp.ModelSleeping
	default:
		return fmt.Errorf("unknown model %q", *model)
	}

	switch *alg {
	case "sssp":
		res, err := dsssp.SSSP(g, dsssp.NodeID(*source), opts)
		if err != nil {
			return err
		}
		fmt.Printf("n=%d m=%d model=%s\n%s\nmax subproblems per node: %d\n",
			g.N(), g.M(), *model, res.Metrics.String(), res.SubproblemsMax)
		if *printDist {
			fmt.Println(res.Dist)
		}
		if *dotOut != "" {
			f, err := os.Create(*dotOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := graph.WriteDOT(f, g, res.Dist); err != nil {
				return err
			}
			fmt.Println("wrote", *dotOut)
		}
	case "bfs":
		th := *threshold
		if th < 0 {
			th = int64(g.N() - 1)
		}
		res, err := dsssp.BFS(g, map[dsssp.NodeID]bool{dsssp.NodeID(*source): true}, th, opts)
		if err != nil {
			return err
		}
		fmt.Printf("n=%d m=%d model=%s threshold=%d\n%s\n", g.N(), g.M(), *model, th, res.Metrics.String())
		if *printDist {
			fmt.Println(res.Dist)
		}
	case "apsp":
		res, err := dsssp.APSP(g, opts, *seed)
		if err != nil {
			return err
		}
		c := res.Composition
		fmt.Printf("n=%d m=%d instances=%d\n", g.N(), g.M(), g.N())
		fmt.Printf("dilation=%d congestion=%d\n", c.Dilation, c.Congestion)
		fmt.Printf("makespan: aligned=%d random=%d sequential=%d\n",
			c.MakespanAligned, c.MakespanRandom, c.MakespanSequential)
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}
	return nil
}
