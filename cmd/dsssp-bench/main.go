// Command dsssp-bench regenerates the experiment tables E1–E9 of
// EXPERIMENTS.md (the paper has no empirical tables; these measure the
// quantities its theorems bound — see DESIGN.md section 4).
//
// Usage:
//
//	dsssp-bench             # all experiments at default sizes
//	dsssp-bench -exp e1,e5  # a subset
//	dsssp-bench -quick      # smaller sizes (used for smoke tests)
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"
	"strings"

	"dsssp"
	"dsssp/internal/baseline"
	"dsssp/internal/bfs"
	"dsssp/internal/core"
	"dsssp/internal/decomp"
	"dsssp/internal/energybfs"
	"dsssp/internal/forest"
	"dsssp/internal/graph"
	"dsssp/internal/proto"
	"dsssp/internal/simnet"
)

func main() {
	var (
		expFlag = flag.String("exp", "e1,e2,e3,e4,e5,e6,e7,e8,e9", "comma-separated experiments")
		quick   = flag.Bool("quick", false, "smaller sizes")
	)
	flag.Parse()
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	run := func(name string, f func(bool)) {
		if want[name] {
			f(*quick)
		}
	}
	run("e1", e1)
	run("e2", e2)
	run("e3", e3)
	run("e4", e4)
	run("e5", e5)
	run("e6", e6)
	run("e7", e7)
	run("e8", e8)
	run("e9", e9)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "dsssp-bench:", err)
	os.Exit(1)
}

func lg(n int) int64 { return int64(bits.Len(uint(n))) }

// E1 — Theorem 2.6/2.7: CSSP time Õ(n), congestion poly(log n), vs
// Bellman-Ford and distributed Dijkstra.
func e1(quick bool) {
	fmt.Println("== E1: CONGEST CSSP (Thm 2.6/2.7) vs baselines ==")
	fmt.Println("family    n     m     alg       rounds  rounds/n  maxEdgeMsgs  msgs/m")
	sizes := []int{64, 128, 256, 512}
	if quick {
		sizes = []int{32, 64}
	}
	for _, n := range sizes {
		g := graph.RandomConnected(n, 2*n, graph.UniformWeights(int64(n), 7), 7)
		d1, _, met, err := core.RunSSSP(g, 0, core.Options{})
		if err != nil {
			die(err)
		}
		row := func(alg string, m simnet.Metrics) {
			fmt.Printf("random  %5d %5d  %-9s %7d %8.1f %11d %7.1f\n",
				n, g.M(), alg, m.Rounds, float64(m.Rounds)/float64(n),
				m.MaxEdgeMessages, float64(m.Messages)/float64(g.M()))
		}
		row("cssp", met)
		d2, metBF, err := baseline.BellmanFord(g, 0)
		if err != nil {
			die(err)
		}
		row("bellman", metBF)
		check(d1, d2)
		// Worst-case gadget for Bellman-Ford (unit path + sink with
		// improving chords): its congestion is Θ(n) while CSSP stays
		// polylog on the same graph.
		gg := bfGadget(n)
		dg, _, metG, err := core.RunSSSP(gg, 0, core.Options{})
		if err != nil {
			die(err)
		}
		dgBF, metGBF, err := baseline.BellmanFord(gg, 0)
		if err != nil {
			die(err)
		}
		check(dg, dgBF)
		fmt.Printf("gadget  %5d %5d  %-9s %7d %8.1f %11d %7.1f\n",
			gg.N(), gg.M(), "cssp", metG.Rounds, float64(metG.Rounds)/float64(gg.N()),
			metG.MaxEdgeMessages, float64(metG.Messages)/float64(gg.M()))
		fmt.Printf("gadget  %5d %5d  %-9s %7d %8.1f %11d %7.1f\n",
			gg.N(), gg.M(), "bellman", metGBF.Rounds, float64(metGBF.Rounds)/float64(gg.N()),
			metGBF.MaxEdgeMessages, float64(metGBF.Messages)/float64(gg.M()))
		if !quick && n <= 128 {
			d3, metDj, err := baseline.Dijkstra(g, 0)
			if err != nil {
				die(err)
			}
			row("dijkstra", metDj)
			check(d1, d3)
		}
	}
	fmt.Println()
}

// bfGadget is the classic Bellman-Ford worst case: a unit-weight path plus
// a sink adjacent to every path node with weights that improve at every
// hop of the wave, forcing Θ(n) re-broadcasts per sink edge.
func bfGadget(k int) *graph.Graph {
	g := graph.New(k + 2)
	for i := 0; i < k; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	sink := graph.NodeID(k + 1)
	for i := 0; i <= k; i++ {
		g.AddEdge(graph.NodeID(i), sink, int64(2*(k-i)+1))
	}
	g.SortAdj()
	return g
}

// E2 — Lemma 2.1: approximate cutter error <= εW, time O(n/ε),
// congestion O(1).
func e2(quick bool) {
	fmt.Println("== E2: approximate cutter (Lemma 2.1) ==")
	fmt.Println("n     eps    rounds  rounds*eps/n  maxEdgeMsgs  maxErr/epsW")
	n := 256
	if quick {
		n = 64
	}
	g := graph.RandomConnected(n, 2*n, graph.UniformWeights(int64(n)*int64(n), 5), 5)
	ref := graph.Dijkstra(g, 0)
	var maxd int64 = 1
	for _, d := range ref {
		if d < graph.Inf && d > maxd {
			maxd = d
		}
	}
	w := maxd/2 + 1
	for _, eps := range [][2]int64{{1, 2}, {1, 4}, {1, 8}} {
		got, met, err := bfs.RunCutter(g, map[graph.NodeID]int64{0: 0}, w, eps[0], eps[1])
		if err != nil {
			die(err)
		}
		epsW := eps[0] * w / eps[1]
		worst := 0.0
		for v := range got {
			if got[v] == graph.Inf {
				continue
			}
			if e := float64(got[v]-ref[v]) / float64(epsW+1); e > worst {
				worst = e
			}
		}
		fmt.Printf("%5d %d/%d %8d %13.2f %12d %11.2f\n",
			n, eps[0], eps[1], met.Rounds,
			float64(met.Rounds)*float64(eps[0])/float64(eps[1])/float64(n),
			met.MaxEdgeMessages, worst)
	}
	fmt.Println()
}

// E3 — Theorem 2.2: maximal spanning forest.
func e3(quick bool) {
	fmt.Println("== E3: Boruvka maximal spanning forest (Thm 2.2) ==")
	fmt.Println("family    n     rounds  rounds/(n*lg n)  maxEdgeMsgs  maxEdgeMsgs/lg n")
	sizes := []int{64, 256, 1024}
	if quick {
		sizes = []int{32, 128}
	}
	for _, fam := range []graph.Family{graph.FamilyPath, graph.FamilyRandom, graph.FamilyCluster} {
		for _, n := range sizes {
			g := graph.Make(fam, n, graph.UnitWeights, 3)
			eng := simnet.New(g, simnet.Config{Model: simnet.Congest})
			res, err := eng.Run(func(c *simnet.Ctx) {
				mb := proto.NewMailbox(c)
				forest.Build(mb, forest.Params{Tag: 1, StartRound: 0, SizeBound: int64(c.N())})
			})
			if err != nil {
				die(err)
			}
			m := res.Metrics
			fmt.Printf("%-8s %5d %9d %16.1f %12d %17.1f\n",
				fam, g.N(), m.Rounds,
				float64(m.Rounds)/(float64(g.N())*float64(lg(g.N()))),
				m.MaxEdgeMessages, float64(m.MaxEdgeMessages)/float64(lg(g.N())))
		}
	}
	fmt.Println()
}

// E4 — Theorems 3.10/3.11 interface: sparse cover structure.
func e4(quick bool) {
	fmt.Println("== E4: layered sparse covers (interface of Thms 3.10/3.11) ==")
	fmt.Println("family    n    layers  clusters  maxNodeOverlap  maxEdgeTrees  cap(=Stretch*layers*2)")
	sizes := []int{128, 512}
	if quick {
		sizes = []int{64}
	}
	for _, fam := range []graph.Family{graph.FamilyPath, graph.FamilyGrid, graph.FamilyRandom} {
		for _, n := range sizes {
			g := graph.Make(fam, n, graph.UnitWeights, 3)
			cv, err := decomp.Build(g, nil, nil, int64(g.N()/2))
			if err != nil {
				die(err)
			}
			cap := int(decomp.Stretch(g.N())) * len(cv.Layers) * 2
			fmt.Printf("%-8s %5d %6d %9d %15d %13d %10d\n",
				fam, g.N(), len(cv.Layers), cv.ClusterCount,
				cv.MaxOverlap(), cv.MaxEdgeTreeOverlap(g), cap)
		}
	}
	fmt.Println()
}

// E5 — Theorems 3.8/3.13/3.14: low-energy BFS vs always-awake baseline.
func e5(quick bool) {
	fmt.Println("== E5: low-energy BFS (Thms 3.8/3.13/3.14) vs always-awake ==")
	fmt.Println("family    n     D     alg      rounds  maxAwake  awake/rounds")
	sizes := []int{128, 256, 512}
	if quick {
		sizes = []int{64, 128}
	}
	for _, fam := range []graph.Family{graph.FamilyPath, graph.FamilyGrid} {
		for _, n := range sizes {
			g := graph.Make(fam, n, graph.UnitWeights, 3)
			diam := graph.HopDiameterApprox(g)
			d1, metE, err := energybfs.RunBFS(g, map[graph.NodeID]int64{0: 0}, diam)
			if err != nil {
				die(err)
			}
			d2, metA, err := baseline.AlwaysAwakeBFS(g, map[graph.NodeID]bool{0: true}, diam)
			if err != nil {
				die(err)
			}
			check(d1, d2)
			fmt.Printf("%-8s %5d %5d  energy  %8d %9d %12.3f\n",
				fam, g.N(), diam, metE.Rounds, metE.MaxAwake, float64(metE.MaxAwake)/float64(metE.Rounds))
			fmt.Printf("%-8s %5d %5d  awake   %8d %9d %12.3f\n",
				fam, g.N(), diam, metA.Rounds, metA.MaxAwake, float64(metA.MaxAwake)/float64(metA.Rounds))
		}
	}
	fmt.Println()
}

// E6 — Theorem 3.1: low-energy spanning forest.
func e6(quick bool) {
	fmt.Println("== E6: low-energy forest (Thm 3.1) ==")
	fmt.Println("n      rounds   maxAwake  awake/lg^2(n)")
	sizes := []int{64, 256, 1024}
	if quick {
		sizes = []int{32, 128}
	}
	for _, n := range sizes {
		g := graph.RandomConnected(n, n, graph.UnitWeights, 3)
		eng := simnet.New(g, simnet.Config{Model: simnet.Sleeping})
		res, err := eng.Run(func(c *simnet.Ctx) {
			mb := proto.NewMailbox(c)
			forest.Build(mb, forest.Params{Tag: 1, StartRound: 0, SizeBound: int64(c.N())})
		})
		if err != nil {
			die(err)
		}
		m := res.Metrics
		fmt.Printf("%5d %9d %9d %13.2f\n", n, m.Rounds, m.MaxAwake,
			float64(m.MaxAwake)/float64(lg(n)*lg(n)))
	}
	fmt.Println()
}

// E7 — Theorem 3.15 / Theorem 1.1: low-energy exact SSSP.
func e7(quick bool) {
	fmt.Println("== E7: low-energy exact SSSP (Thm 3.15 / Thm 1.1) ==")
	fmt.Println("n     maxW  rounds    maxAwake  awake/rounds")
	sizes := []int{16, 24, 32}
	if quick {
		sizes = []int{12, 16}
	}
	for _, n := range sizes {
		g := graph.RandomConnected(n, n/2, graph.UniformWeights(4, 7), 7)
		d, _, met, err := core.RunEnergySSSP(g, 0, core.Options{})
		if err != nil {
			die(err)
		}
		want := graph.Dijkstra(g, 0)
		check(d, want)
		fmt.Printf("%5d %4d %9d %9d %12.3f\n", n, 4, met.Rounds, met.MaxAwake,
			float64(met.MaxAwake)/float64(met.Rounds))
	}
	fmt.Println()
}

// E8 — Section 1.1 APSP via random-delay scheduling.
func e8(quick bool) {
	fmt.Println("== E8: APSP composition (Section 1.1, matches BN19 shape) ==")
	fmt.Println("n    dilation  congestion  aligned  random  sequential  random/(C+T)")
	sizes := []int{32, 64}
	if quick {
		sizes = []int{16, 32}
	}
	for _, n := range sizes {
		g := graph.RandomConnected(n, 2*n, graph.UniformWeights(int64(n), 11), 11)
		res, err := dsssp.APSP(g, nil, 42)
		if err != nil {
			die(err)
		}
		c := res.Composition
		fmt.Printf("%4d %9d %11d %8d %7d %11d %13.2f\n",
			n, c.Dilation, c.Congestion, c.MakespanAligned, c.MakespanRandom,
			c.MakespanSequential, float64(c.MakespanRandom)/float64(c.Congestion+c.Dilation))
	}
	fmt.Println()
}

// E9 — ablations: ε sweep and the Lemma 2.4 subproblem bound.
func e9(quick bool) {
	fmt.Println("== E9: ablations ==")
	n := 128
	if quick {
		n = 64
	}
	g := graph.RandomConnected(n, n, graph.UniformWeights(int64(n), 13), 13)
	fmt.Println("eps    rounds  maxEdgeMsgs  maxSubproblems  levels")
	for _, eps := range [][2]int64{{1, 4}, {1, 2}, {3, 4}} {
		d, st, met, err := core.RunSSSP(g, 0, core.Options{EpsNum: eps[0], EpsDen: eps[1]})
		if err != nil {
			die(err)
		}
		check(d, graph.Dijkstra(g, 0))
		maxSub := 0
		for _, k := range st.Subproblems {
			if k > maxSub {
				maxSub = k
			}
		}
		fmt.Printf("%d/%d %8d %12d %15d %7d\n", eps[0], eps[1], met.Rounds, met.MaxEdgeMessages, maxSub, st.Levels)
	}
	fmt.Println()
}

func check(got, want []int64) {
	for v := range want {
		if got[v] != want[v] {
			die(fmt.Errorf("distance mismatch at node %d: %d vs %d", v, got[v], want[v]))
		}
	}
}
