package dsssp

import (
	"math/rand"
	"reflect"
	"testing"

	"dsssp/internal/graph"
	"dsssp/internal/incr"
)

// TestIncrementalServingDifferential is the end-to-end soundness test for
// delta-aware incremental recomputation at the engine level, in both
// models: serve every source the classifier calls untouched from the
// pre-patch engine results, recompute only the dirty ones via the partial
// APSP fan-out, and the assembled answer must be byte-identical to a
// from-scratch engine run on the patched graph — distances and
// shortest-path trees alike.
func TestIncrementalServingDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("engine-level incremental differential")
	}
	families := []graph.Family{graph.FamilyRandom, graph.FamilyGrid, graph.FamilyExpander}
	models := []Model{ModelCongest, ModelSleeping}
	rng := rand.New(rand.NewSource(1234))

	for _, fam := range families {
		for _, model := range models {
			for trial := 0; trial < 2; trial++ {
				n := 16
				seed := rng.Int63()
				g0 := graph.Make(fam, n, graph.UniformWeights(8, seed), seed)
				opts := &Options{Model: model}

				full0, err := APSP(g0, opts, 7)
				if err != nil {
					t.Fatalf("%s/%s: %v", fam, model, err)
				}

				deltas := randomEngineBatch(rng, g0, 1+rng.Intn(3))
				if len(deltas) == 0 {
					continue
				}
				g1, err := ApplyDeltas(g0, deltas)
				if err != nil {
					t.Fatalf("%s/%s: %v", fam, model, err)
				}
				effects, err := incr.Effects(g0, deltas)
				if err != nil {
					t.Fatalf("%s/%s: %v", fam, model, err)
				}
				traces := make(map[graph.NodeID][]int64, n)
				for s := 0; s < n; s++ {
					traces[graph.NodeID(s)] = full0.Dist[s]
				}
				dirty, untouched := incr.DirtySources(effects, traces)

				// The incremental fan-out: recompute dirty sources only.
				// (nil means "all" to APSPFrom, so an all-untouched batch
				// skips the partial run — there is nothing to recompute.)
				var partial *APSPResult
				if len(dirty) > 0 {
					partial, err = APSPFrom(g1, dirty, opts, 7)
					if err != nil {
						t.Fatalf("%s/%s: %v", fam, model, err)
					}
				}
				// The oracle: everything from scratch on the patched graph.
				full1, err := APSP(g1, opts, 7)
				if err != nil {
					t.Fatalf("%s/%s: %v", fam, model, err)
				}

				for _, s := range untouched {
					if !reflect.DeepEqual(full0.Dist[s], full1.Dist[s]) {
						t.Fatalf("%s/%s trial %d: source %d untouched but engine distances changed\ndeltas=%v\nold=%v\nnew=%v",
							fam, model, trial, s, deltas, full0.Dist[s], full1.Dist[s])
					}
				}
				for _, s := range dirty {
					if !reflect.DeepEqual(partial.Dist[s], full1.Dist[s]) {
						t.Fatalf("%s/%s trial %d: partial fan-out row %d differs from full run\ndeltas=%v\npartial=%v\nfull=%v",
							fam, model, trial, s, deltas, partial.Dist[s], full1.Dist[s])
					}
				}

				// Trees survive too: one engine tree extraction per combo on
				// an untouched source (witness parents are a pure function of
				// dist + graph, but this pins the actual engine output).
				if len(untouched) > 0 {
					s := untouched[0]
					tr0, err := SSSPTree(g0, s, opts)
					if err != nil {
						t.Fatal(err)
					}
					tr1, err := SSSPTree(g1, s, opts)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(tr0.Parent, tr1.Parent) {
						t.Fatalf("%s/%s trial %d: source %d untouched but engine tree changed\ndeltas=%v\nold=%v\nnew=%v",
							fam, model, trial, s, deltas, tr0.Parent, tr1.Parent)
					}
				}
			}
		}
	}
}

// TestRepairMatchesEngineTree closes the loop between affected-region
// repair and the engine itself, in both models: remember an engine run's
// distance vector and witness tree, patch the graph, repair — and the
// repaired labels must be byte-identical to a from-scratch engine tree
// extraction on the patched graph. This is the property that makes a
// repaired serving response indistinguishable from a recomputed one.
func TestRepairMatchesEngineTree(t *testing.T) {
	families := []graph.Family{graph.FamilyRandom, graph.FamilyGrid, graph.FamilyExpander}
	models := []Model{ModelCongest, ModelSleeping}
	rng := rand.New(rand.NewSource(99))

	for _, fam := range families {
		for _, model := range models {
			seed := rng.Int63()
			g0 := graph.Make(fam, 18, graph.UniformWeights(8, seed), seed)
			opts := &Options{Model: model}
			s := NodeID(rng.Intn(g0.N()))

			tr0, err := SSSPTree(g0, s, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", fam, model, err)
			}
			if !reflect.DeepEqual(tr0.Parent, WitnessParents(g0, s, tr0.Dist)) {
				t.Fatalf("%s/%s: engine tree is not the min-ID witness tree", fam, model)
			}

			deltas := randomEngineBatch(rng, g0, 1+rng.Intn(3))
			if len(deltas) == 0 {
				continue
			}
			g1, err := ApplyDeltas(g0, deltas)
			if err != nil {
				t.Fatalf("%s/%s: %v", fam, model, err)
			}
			// The base ledger the registry would keep: per touched pair, the
			// pre-patch weight (-1 when absent), diffed against the head.
			base := map[uint64]int64{}
			for _, d := range deltas {
				k := incr.PairKey(d.U, d.V)
				if _, ok := base[k]; !ok {
					base[k] = incr.BaseWeight(g0, d.U, d.V)
				}
			}
			changes := incr.NetChanges(base, g1)

			rr, ok := incr.Repair(g1, s, incr.Trace{Dist: tr0.Dist, Parent: tr0.Parent}, changes, 0)
			if !ok {
				t.Fatalf("%s/%s: repair declined with no budget", fam, model)
			}
			tr1, err := SSSPTree(g1, s, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", fam, model, err)
			}
			if !reflect.DeepEqual(rr.Dist, tr1.Dist) || !reflect.DeepEqual(rr.Parent, tr1.Parent) {
				t.Fatalf("%s/%s: repaired labels diverge from engine rerun\ndeltas=%v\nrepair dist=%v parent=%v\nengine dist=%v parent=%v",
					fam, model, deltas, rr.Dist, rr.Parent, tr1.Dist, tr1.Parent)
			}
		}
	}
}

// TestAPSPFromMatchesFullRun pins that a partial fan-out's rows are
// byte-identical to the same rows of a full APSP — the property that lets
// the serving layer mix cached and recomputed rows in one response.
func TestAPSPFromMatchesFullRun(t *testing.T) {
	g := graph.Make(graph.FamilyCluster, 20, graph.UniformWeights(6, 3), 3)
	opts := &Options{}
	full, err := APSP(g, opts, 11)
	if err != nil {
		t.Fatal(err)
	}
	subset := []graph.NodeID{2, 7, 13}
	part, err := APSPFrom(g, subset, opts, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subset {
		if !reflect.DeepEqual(part.Dist[s], full.Dist[s]) {
			t.Fatalf("row %d: partial %v != full %v", s, part.Dist[s], full.Dist[s])
		}
	}
	// Rows outside the subset are absent (nil), not silently zeroed.
	for s := 0; s < g.N(); s++ {
		in := false
		for _, x := range subset {
			in = in || x == graph.NodeID(s)
		}
		if !in && part.Dist[s] != nil {
			t.Fatalf("row %d computed despite not being requested", s)
		}
	}
}

// randomEngineBatch mirrors the incr test's batch generator: a random
// valid batch never referencing a pair it already deleted.
func randomEngineBatch(rng *rand.Rand, g *graph.Graph, size int) []EdgeDelta {
	var deltas []EdgeDelta
	deleted := map[[2]graph.NodeID]bool{}
	key := func(u, v graph.NodeID) [2]graph.NodeID {
		if u > v {
			u, v = v, u
		}
		return [2]graph.NodeID{u, v}
	}
	es := g.Edges()
	n := g.N()
	for i := 0; i < size; i++ {
		switch rng.Intn(4) {
		case 0:
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u == v || deleted[key(u, v)] {
				continue
			}
			deltas = append(deltas, EdgeDelta{Op: DeltaInsert, U: u, V: v, W: int64(rng.Intn(8))})
		case 1, 2:
			if len(es) == 0 {
				continue
			}
			e := es[rng.Intn(len(es))]
			if deleted[key(e.U, e.V)] {
				continue
			}
			deltas = append(deltas, EdgeDelta{Op: DeltaReweight, U: e.U, V: e.V, W: int64(rng.Intn(8))})
		case 3:
			if len(es) == 0 {
				continue
			}
			e := es[rng.Intn(len(es))]
			if deleted[key(e.U, e.V)] {
				continue
			}
			deleted[key(e.U, e.V)] = true
			deltas = append(deltas, EdgeDelta{Op: DeltaDelete, U: e.U, V: e.V})
		}
	}
	return deltas
}
