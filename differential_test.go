package dsssp

import (
	"fmt"
	"testing"

	"dsssp/internal/graph"
)

// Differential tests: every distributed algorithm, on randomized graphs
// across all families, weight kinds, ε values, and models, must agree
// exactly with the sequential Dijkstra/BFS references in
// internal/graph/reference.go. The corpus is deterministic (seeded), so a
// failure reproduces bit-for-bit.

// diffCase is one deterministic differential workload.
type diffCase struct {
	fam    graph.Family
	n      int
	kind   string // "unit" | "uniform" | "zero"
	maxW   int64
	seed   int64
	epsN   int64
	epsD   int64
	strict bool
}

func (c diffCase) String() string {
	return fmt.Sprintf("%s/n=%d/%s%d/seed=%d/eps=%d-%d/strict=%v",
		c.fam, c.n, c.kind, c.maxW, c.seed, c.epsN, c.epsD, c.strict)
}

func (c diffCase) build() *graph.Graph {
	var w graph.WeightFn
	switch c.kind {
	case "uniform":
		w = graph.UniformWeights(c.maxW, c.seed*3+1)
	case "zero":
		w = graph.ZeroHeavyWeights(c.maxW, c.seed*3+1)
	default:
		w = graph.UnitWeights
	}
	return graph.Make(c.fam, c.n, w, c.seed)
}

// checkCSSP runs CSSP under the case's options in the given model and
// compares against MultiSourceDijkstra. Sources are spread over the ID
// space with small offsets (the Section 2.3 imaginary-node regime).
func checkCSSP(t *testing.T, c diffCase, model Model) {
	t.Helper()
	g := c.build()
	sources := map[NodeID]int64{0: 0}
	if c.n >= 8 {
		sources[NodeID(g.N()/2)] = 2
	}
	opts := &Options{Model: model, EpsNum: c.epsN, EpsDen: c.epsD, StrictCongest: c.strict}
	res, err := CSSP(g, sources, opts)
	if err != nil {
		t.Fatalf("%s (%s): %v", c, model, err)
	}
	want := graph.MultiSourceDijkstra(g, sources)
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("%s (%s): dist[%d] = %d, want %d", c, model, v, res.Dist[v], want[v])
		}
	}
	if c.strict && res.Metrics.MaxMessageBits == 0 {
		t.Fatalf("%s: strict run did not measure message bits", c)
	}
}

// TestDifferentialCongest sweeps every family × weight kind at CONGEST
// scale against the sequential reference.
func TestDifferentialCongest(t *testing.T) {
	for _, fam := range graph.Families() {
		for _, kind := range []string{"unit", "uniform", "zero"} {
			if fam == graph.FamilyBFGadget && kind != "unit" {
				continue // structural weights
			}
			for seed := int64(1); seed <= 2; seed++ {
				c := diffCase{fam: fam, n: 24 + 8*int(seed), kind: kind, maxW: 9, seed: seed}
				checkCSSP(t, c, ModelCongest)
			}
		}
	}
}

// TestDifferentialEps sweeps the cutter ε: exactness must be ε-independent
// (Lemma 2.1 only changes the overshoot of the cut, never the final
// distances).
func TestDifferentialEps(t *testing.T) {
	eps := [][2]int64{{1, 8}, {1, 4}, {1, 3}, {1, 2}, {2, 3}, {3, 4}, {7, 8}}
	for _, e := range eps {
		for _, fam := range []graph.Family{graph.FamilyRandom, graph.FamilyBarbell, graph.FamilyDisconnected} {
			c := diffCase{fam: fam, n: 30, kind: "uniform", maxW: 11, seed: 5, epsN: e[0], epsD: e[1]}
			checkCSSP(t, c, ModelCongest)
		}
	}
	// ε is a knob of the sleeping-model recursion too.
	for _, e := range [][2]int64{{1, 4}, {3, 4}} {
		c := diffCase{fam: graph.FamilyRandom, n: 12, kind: "uniform", maxW: 4, seed: 2, epsN: e[0], epsD: e[1]}
		checkCSSP(t, c, ModelSleeping)
	}
}

// TestDifferentialSleeping: the energy recursion at small scale across
// structurally distinct families, including a multi-component one.
func TestDifferentialSleeping(t *testing.T) {
	for _, fam := range []graph.Family{graph.FamilyPath, graph.FamilyRandom, graph.FamilyCluster, graph.FamilyDisconnected} {
		for seed := int64(1); seed <= 2; seed++ {
			c := diffCase{fam: fam, n: 14, kind: "uniform", maxW: 4, seed: seed}
			checkCSSP(t, c, ModelSleeping)
		}
	}
}

// TestDifferentialStrict: strict-CONGEST enforcement must not change any
// distance — it only bounds the wire format — and the measured message
// sizes must sit inside the O(log n) budget for every family.
func TestDifferentialStrict(t *testing.T) {
	for _, fam := range graph.Families() {
		kind := "uniform"
		if fam == graph.FamilyBFGadget {
			kind = "unit"
		}
		c := diffCase{fam: fam, n: 32, kind: kind, maxW: 13, seed: 4, strict: true}
		checkCSSP(t, c, ModelCongest)
	}
	// Zero weights trigger the Thm 2.7 rescaling; the budget is derived
	// from the rescaled graph and must still hold.
	checkCSSP(t, diffCase{fam: graph.FamilyRandom, n: 32, kind: "zero", maxW: 13, seed: 4, strict: true}, ModelCongest)
}

// TestDifferentialBFS: hop distances in both models against BFSDist,
// including unreachable (+Inf) nodes in the disconnected family.
func TestDifferentialBFS(t *testing.T) {
	for _, fam := range []graph.Family{graph.FamilyPath, graph.FamilyGrid, graph.FamilyExpander, graph.FamilyDisconnected} {
		for _, model := range []Model{ModelCongest, ModelSleeping} {
			g := graph.Make(fam, 40, graph.UnitWeights, 9)
			threshold := 2*graph.HopDiameterApprox(g) + 1
			res, err := BFS(g, map[NodeID]bool{0: true}, threshold, &Options{Model: model})
			if err != nil {
				t.Fatalf("%s (%s): %v", fam, model, err)
			}
			want := graph.BFSDist(g, 0)
			for v := range want {
				if res.Dist[v] != want[v] {
					t.Fatalf("%s (%s): hop[%d] = %d, want %d", fam, model, v, res.Dist[v], want[v])
				}
			}
		}
	}
}

// TestDifferentialMultiComponent: every algorithm on disconnected graphs
// reports the exact +Inf sentinel (never a huge finite value) for nodes in
// sourceless components, and the shortest-path forest marks them
// parent-less.
func TestDifferentialMultiComponent(t *testing.T) {
	g := graph.Disconnected(3, 9, 4, graph.UniformWeights(6, 11), 11)
	comp, ncomp := graph.Components(g)
	if ncomp != 3 {
		t.Fatalf("want 3 components, got %d", ncomp)
	}
	for _, model := range []Model{ModelCongest, ModelSleeping} {
		res, err := SSSP(g, 0, &Options{Model: model})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		for v := 0; v < g.N(); v++ {
			if comp[v] == comp[0] {
				if res.Dist[v] == Inf {
					t.Fatalf("%s: reachable node %d reported +Inf", model, v)
				}
			} else if res.Dist[v] != Inf {
				t.Fatalf("%s: unreachable node %d reported %d, want the exact +Inf sentinel", model, v, res.Dist[v])
			}
		}
	}
	tree, err := SSSPTree(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Verify(g, map[NodeID]int64{0: 0}); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if comp[v] != comp[0] {
			if tree.Parent[v] != -1 {
				t.Fatalf("unreachable node %d has parent %d", v, tree.Parent[v])
			}
			if _, err := tree.PathTo(NodeID(v)); err == nil {
				t.Fatalf("unreachable node %d: PathTo must error", v)
			}
		}
	}
}

// FuzzCSSPDifferential is the fuzz form of the matrix: the seed corpus
// below is the deterministic checked-in corpus (run on every plain
// `go test`), and `go test -fuzz=FuzzCSSPDifferential` explores beyond it.
func FuzzCSSPDifferential(f *testing.F) {
	fams := graph.Families()
	f.Add(int64(1), uint8(0), uint8(24), uint8(5), uint8(1), uint8(2), false)
	f.Add(int64(7), uint8(4), uint8(40), uint8(16), uint8(1), uint8(4), true)
	f.Add(int64(3), uint8(11), uint8(30), uint8(0), uint8(3), uint8(4), false) // disconnected, unit weights
	f.Add(int64(9), uint8(8), uint8(36), uint8(9), uint8(7), uint8(8), true)   // barbell
	f.Add(int64(5), uint8(10), uint8(20), uint8(3), uint8(1), uint8(2), false) // bfgadget
	f.Fuzz(func(t *testing.T, seed int64, famIdx, nRaw, maxWRaw, epsN, epsD uint8, strict bool) {
		fam := fams[int(famIdx)%len(fams)]
		n := 8 + int(nRaw)%40
		maxW := int64(maxWRaw)%17 + 1
		var w graph.WeightFn = graph.UnitWeights
		if maxW > 1 {
			w = graph.UniformWeights(maxW, seed*3+1)
		}
		if fam == graph.FamilyCluster && n < 16 {
			n = 16 // Clusters needs at least two groups of 8
		}
		g := graph.Make(fam, n, w, seed)
		opts := &Options{StrictCongest: strict}
		if epsN > 0 && epsD > 0 && epsN%epsD != 0 && epsN < epsD {
			opts.EpsNum, opts.EpsDen = int64(epsN), int64(epsD)
		}
		sources := map[NodeID]int64{0: 0, NodeID(g.N() / 2): int64(seed % 5)}
		res, err := CSSP(g, sources, opts)
		if err != nil {
			t.Fatalf("CSSP(%s, n=%d, seed=%d): %v", fam, n, seed, err)
		}
		want := graph.MultiSourceDijkstra(g, sources)
		for v := range want {
			if res.Dist[v] != want[v] {
				t.Fatalf("CSSP(%s, n=%d, seed=%d, eps=%d/%d, strict=%v): dist[%d] = %d, want %d",
					fam, n, seed, opts.EpsNum, opts.EpsDen, strict, v, res.Dist[v], want[v])
			}
		}
	})
}
