package dsssp

import (
	"testing"

	"dsssp/internal/graph"
)

func TestSSSPQuickstart(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 5)
	g.SortAdj()
	res, err := SSSP(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 2, 3, 8}
	for v, d := range want {
		if res.Dist[v] != d {
			t.Fatalf("dist[%d]=%d, want %d", v, res.Dist[v], d)
		}
	}
	if res.SubproblemsMax == 0 {
		t.Fatal("missing subproblem stats")
	}
}

func TestCSSPBothModelsAgree(t *testing.T) {
	g := graph.RandomConnected(12, 8, graph.UniformWeights(4, 3), 3)
	sources := map[NodeID]int64{0: 0, 6: 1}
	a, err := CSSP(g, sources, &Options{Model: ModelCongest})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CSSP(g, sources, &Options{Model: ModelSleeping})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Dist {
		if a.Dist[v] != b.Dist[v] {
			t.Fatalf("node %d: %d vs %d", v, a.Dist[v], b.Dist[v])
		}
	}
	if b.Metrics.MaxAwake*2 > b.Metrics.Rounds {
		t.Fatalf("sleeping model energy %d not below half of %d rounds", b.Metrics.MaxAwake, b.Metrics.Rounds)
	}
}

func TestBFSBothModels(t *testing.T) {
	g := graph.Grid2D(5, 5, graph.UnitWeights)
	want := graph.BFSDist(g, 0)
	for _, m := range []Model{ModelCongest, ModelSleeping} {
		res, err := BFS(g, map[NodeID]bool{0: true}, 8, &Options{Model: m})
		if err != nil {
			t.Fatalf("model %d: %v", m, err)
		}
		for v := range want {
			w := want[v]
			if w > 8 {
				w = Inf
			}
			if res.Dist[v] != w {
				t.Fatalf("model %d node %d: got %d want %d", m, v, res.Dist[v], w)
			}
		}
	}
}

func TestAPSPEndToEnd(t *testing.T) {
	g := graph.RandomConnected(16, 16, graph.UniformWeights(5, 9), 9)
	res, err := APSP(g, nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < g.N(); s++ {
		want := graph.Dijkstra(g, NodeID(s))
		for v := range want {
			if res.Dist[s][v] != want[v] {
				t.Fatalf("dist[%d][%d]=%d, want %d", s, v, res.Dist[s][v], want[v])
			}
		}
	}
	c := res.Composition
	if c.MakespanRandom > c.MakespanSequential {
		t.Fatalf("random-delay makespan %d worse than sequential %d", c.MakespanRandom, c.MakespanSequential)
	}
	if c.Congestion <= 0 || c.Dilation <= 0 {
		t.Fatalf("bad composition %+v", c)
	}
	if c.Spans != nil {
		t.Fatalf("span ledger recorded without Options.RecordPhases: %+v", c.Spans)
	}
}

// TestAPSPRecordPhases: the public APSP threads each instance's span
// ledger into the composition, merged over all sources, with the summed
// message counters conserving against the merged instances.
func TestAPSPRecordPhases(t *testing.T) {
	g := graph.RandomConnected(12, 12, graph.UniformWeights(4, 9), 9)
	res, err := APSP(g, &Options{RecordPhases: true, Workers: 1}, 42)
	if err != nil {
		t.Fatal(err)
	}
	spans := res.Composition.Spans
	if len(spans) == 0 {
		t.Fatal("Options.RecordPhases produced no merged span ledger")
	}
	var msgs int64
	for _, s := range spans {
		msgs += s.Messages
	}
	var want int64
	for src := 0; src < g.N(); src++ {
		r, err := SSSP(g, NodeID(src), nil)
		if err != nil {
			t.Fatal(err)
		}
		want += r.Metrics.Messages
	}
	if msgs != want {
		t.Fatalf("merged span messages %d != summed instance messages %d", msgs, want)
	}
}

func TestUnknownModelRejected(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 1)
	g.SortAdj()
	if _, err := CSSP(g, map[NodeID]int64{0: 0}, &Options{Model: Model(99)}); err == nil {
		t.Fatal("want error")
	}
}
