package dsssp

import (
	"fmt"

	"dsssp/internal/graph"
	"dsssp/internal/proto"
	"dsssp/internal/simnet"
)

// TreeResult extends Result with shortest-path-tree structure.
type TreeResult struct {
	Result
	// Parent[v] is v's parent toward the closest source (-1 at sources and
	// unreachable nodes).
	Parent []NodeID
}

// CSSPTree computes exact closest-source distances plus a shortest-path
// forest: after the distance computation, one exchange round lets every
// node pick the neighbor that witnesses its distance (dist[u] + w(u,v) ==
// dist[v], ties broken by smallest node ID) — the standard distributed
// tree extraction, adding O(1) congestion.
func CSSPTree(g *Graph, sources map[NodeID]int64, opts *Options) (*TreeResult, error) {
	base, err := CSSP(g, sources, opts)
	if err != nil {
		return nil, err
	}
	// One synchronized exchange round in a fresh engine run: every node
	// announces its distance; each picks its witness parent.
	eng := simnet.New(g, simnet.Config{Model: simnet.Congest})
	res, err := eng.Run(func(c *simnet.Ctx) {
		mb := proto.NewMailbox(c)
		my := base.Dist[c.ID()]
		for i := 0; i < c.Degree(); i++ {
			mb.Send(i, 1, my)
		}
		mb.Next()
		parent := NodeID(-1)
		_, isSource := sources[c.ID()]
		if my != Inf && !isSource {
			for _, m := range mb.Take(1) {
				d := m.Body.(int64)
				if d == Inf {
					continue
				}
				if d+c.Weight(m.NbIndex) == my && (parent < 0 || m.From < parent) {
					parent = m.From
				}
			}
			if parent < 0 {
				panic(fmt.Sprintf("dsssp: node %d has distance %d but no witness neighbor", c.ID(), my))
			}
		}
		c.SetOutput(parent)
	})
	if err != nil {
		return nil, err
	}
	out := &TreeResult{Result: *base, Parent: make([]NodeID, g.N())}
	for v, p := range res.Outputs {
		out.Parent[v] = p.(NodeID)
	}
	// The extraction round's costs are part of the algorithm's account.
	out.Metrics.Messages += res.Metrics.Messages
	out.Metrics.Rounds += res.Metrics.Rounds
	return out, nil
}

// SSSPTree is CSSPTree from a single source.
func SSSPTree(g *Graph, source NodeID, opts *Options) (*TreeResult, error) {
	return CSSPTree(g, map[NodeID]int64{source: 0}, opts)
}

// PathTo reconstructs the path from v back to its closest source using a
// TreeResult (inclusive of both endpoints, source last). Unreachable nodes
// (Dist == Inf, in another component than every source) and corrupted
// parent pointers yield descriptive errors instead of a nil path or an
// unbounded walk.
func (t *TreeResult) PathTo(v NodeID) ([]NodeID, error) {
	if v < 0 || int(v) >= len(t.Dist) {
		return nil, fmt.Errorf("dsssp: PathTo(%d): node out of range [0,%d)", v, len(t.Dist))
	}
	if t.Dist[v] == Inf {
		return nil, fmt.Errorf("dsssp: PathTo(%d): node is unreachable from every source (distance +Inf, parent-less)", v)
	}
	path := []NodeID{v}
	for t.Parent[v] >= 0 {
		p := t.Parent[v]
		if int(p) >= len(t.Parent) {
			return nil, fmt.Errorf("dsssp: PathTo(%d): node %d has out-of-range parent %d — the TreeResult is corrupt", path[0], v, p)
		}
		v = p
		path = append(path, v)
		if len(path) > len(t.Parent) {
			return nil, fmt.Errorf("dsssp: PathTo(%d): parent pointers form a cycle through node %d after %d hops — the TreeResult is corrupt",
				path[0], v, len(path))
		}
	}
	return path, nil
}

// Verify checks a TreeResult against the graph: parents witness distances
// and paths lead to sources. Intended for tests and examples.
func (t *TreeResult) Verify(g *Graph, sources map[NodeID]int64) error {
	for v := 0; v < g.N(); v++ {
		id := NodeID(v)
		switch {
		case t.Dist[v] == Inf:
			if t.Parent[v] != -1 {
				return fmt.Errorf("unreachable node %d has parent %d", v, t.Parent[v])
			}
		case t.Parent[v] == -1:
			if _, ok := sources[id]; !ok {
				return fmt.Errorf("non-source node %d lacks a parent", v)
			}
		default:
			p := t.Parent[v]
			var w int64 = -1
			for _, h := range g.Adj(id) {
				if h.To == p {
					w = h.W
				}
			}
			if w < 0 {
				return fmt.Errorf("node %d's parent %d is not adjacent", v, p)
			}
			if t.Dist[p]+w != t.Dist[v] {
				return fmt.Errorf("node %d: parent %d does not witness distance (%d + %d != %d)",
					v, p, t.Dist[p], w, t.Dist[v])
			}
		}
	}
	return nil
}

var _ = graph.Inf // keep the import paired with the type aliases above
